// Benchmarks: one per table/figure of the paper's evaluation (run via
// `go test -bench=. -benchmem`), each regenerating its artefact at the
// smoke geometry and reporting the headline averages as custom metrics,
// plus microbenchmarks of the core structures. For publication-quality
// numbers use `redhip-bench -geometry scaled` (or paper).
package redhip_test

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"redhip"
)

// benchRunner builds an experiment runner small enough for benchmarks.
func benchRunner(b *testing.B) *redhip.Experiments {
	b.Helper()
	cfg := redhip.SmokeConfig()
	cfg.RefsPerCore = 20_000
	ex, err := redhip.NewExperiments(redhip.ExperimentOptions{Base: cfg, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	return ex
}

// reportAvg parses a figure's "average" column for the named row label
// and reports it as a benchmark metric. A missing row or an unparsable
// cell fails the benchmark: a silently absent metric would let a
// regression that breaks the table format go unnoticed.
func reportAvg(b *testing.B, f *redhip.PaperFigure, row, metric string) {
	b.Helper()
	for _, r := range f.Table.Rows {
		if r[0] != row {
			continue
		}
		cell := strings.TrimSuffix(strings.TrimPrefix(r[len(r)-1], "+"), "%")
		v, err := strconv.ParseFloat(cell, 64)
		if err != nil {
			b.Fatalf("row %q of %s: cannot parse average cell %q: %v", row, f.ID, r[len(r)-1], err)
		}
		b.ReportMetric(v, metric)
		return
	}
	b.Fatalf("row %q not found in %s", row, f.ID)
}

func BenchmarkTableI(b *testing.B) {
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		if r.TableI().String() == "" {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFig1EnergyBreakdown(b *testing.B) {
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		f, err := r.Fig1EnergyBreakdown()
		if err != nil {
			b.Fatal(err)
		}
		reportAvg(b, f, "L4", "L4_dyn_share_%")
	}
}

func BenchmarkFig6Speedup(b *testing.B) {
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		f, err := r.Fig6Speedup()
		if err != nil {
			b.Fatal(err)
		}
		reportAvg(b, f, "redhip", "redhip_speedup_%")
		reportAvg(b, f, "oracle", "oracle_speedup_%")
		reportAvg(b, f, "phased", "phased_speedup_%")
		reportAvg(b, f, "cbf", "cbf_speedup_%")
	}
}

func BenchmarkFig7DynamicEnergy(b *testing.B) {
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		f, err := r.Fig7DynamicEnergy()
		if err != nil {
			b.Fatal(err)
		}
		reportAvg(b, f, "redhip", "redhip_dyn_energy_%")
		reportAvg(b, f, "oracle", "oracle_dyn_energy_%")
	}
}

func BenchmarkFig8Metric(b *testing.B) {
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		if _, err := r.Fig8Metric(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9HitRatesBase(b *testing.B) {
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		f, err := r.Fig9HitRatesBase()
		if err != nil {
			b.Fatal(err)
		}
		reportAvg(b, f, "L1", "L1_hit_%")
	}
}

func BenchmarkFig10HitRatesReDHiP(b *testing.B) {
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		f, err := r.Fig10HitRatesReDHiP()
		if err != nil {
			b.Fatal(err)
		}
		reportAvg(b, f, "L4", "L4_hit_%")
	}
}

func BenchmarkFig11TableSize(b *testing.B) {
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		if _, err := r.Fig11TableSize(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12RecalPeriod(b *testing.B) {
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		if _, err := r.Fig12RecalPeriod(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13Inclusion(b *testing.B) {
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		f, err := r.Fig13Inclusion()
		if err != nil {
			b.Fatal(err)
		}
		reportAvg(b, f, "inclusive", "inclusive_saving_%")
		reportAvg(b, f, "exclusive", "exclusive_saving_%")
	}
}

func BenchmarkFig14PrefetchSpeedup(b *testing.B) {
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		f, err := r.Fig14PrefetchSpeedup()
		if err != nil {
			b.Fatal(err)
		}
		reportAvg(b, f, "SP+ReDHiP", "combined_speedup_%")
	}
}

func BenchmarkFig15PrefetchEnergy(b *testing.B) {
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		f, err := r.Fig15PrefetchEnergy()
		if err != nil {
			b.Fatal(err)
		}
		reportAvg(b, f, "SP+ReDHiP", "combined_dyn_energy_%")
	}
}

// --- microbenchmarks of the core structures -----------------------------------

func BenchmarkPredictionTableLookup(b *testing.B) {
	tb, err := redhip.NewPredictionTable(512<<10, 4)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 100000; i++ {
		tb.Set(redhip.Addr(i * 64).Block())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.PredictPresent(redhip.Addr(i * 64).Block())
	}
}

func BenchmarkPredictionTableSet(b *testing.B) {
	tb, err := redhip.NewPredictionTable(512<<10, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Set(redhip.Addr(i * 64).Block())
	}
}

func BenchmarkCBFLookup(b *testing.B) {
	cbf, err := redhip.NewCBF(512<<10, 4, 6, 0.02)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 100000; i++ {
		cbf.OnFill(redhip.Addr(i * 64).Block())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cbf.PredictPresent(redhip.Addr(i * 64).Block())
	}
}

// rewinder is the replay-source reset hook (workload.TraceSource).
type rewinder interface{ Rewind() }

// engineLoopBench measures sim.Run's steady-state reference loop by
// replaying pre-captured in-memory traces, so workload generation cost
// is excluded and the metric isolates the simulation core. refs/s is
// the headline number BENCH_baseline.json tracks across PRs.
func engineLoopBench(b *testing.B, scheme redhip.Scheme, workloadName string) {
	b.Helper()
	cfg := redhip.SmokeConfig()
	cfg.RefsPerCore = 50_000
	cfg.Scheme = scheme
	gen, err := redhip.WorkloadSources(workloadName, cfg.Cores, cfg.WorkloadScale, 1)
	if err != nil {
		b.Fatal(err)
	}
	srcs := make([]redhip.WorkloadSource, cfg.Cores)
	for c := range srcs {
		srcs[c] = redhip.ReplayTrace(redhip.CaptureTrace(gen[c], int(cfg.RefsPerCore)))
	}
	var refs uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range srcs {
			s.(rewinder).Rewind()
		}
		res, err := redhip.Run(cfg, srcs)
		if err != nil {
			b.Fatal(err)
		}
		refs += res.Refs
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(refs)/secs, "refs/s")
	}
}

func BenchmarkEngineLoop(b *testing.B) {
	b.Run("base", func(b *testing.B) { engineLoopBench(b, redhip.Base, "mcf") })
	b.Run("redhip", func(b *testing.B) { engineLoopBench(b, redhip.ReDHiP, "mcf") })
	b.Run("cbf", func(b *testing.B) { engineLoopBench(b, redhip.CBF, "mcf") })
	b.Run("oracle", func(b *testing.B) { engineLoopBench(b, redhip.Oracle, "mcf") })
}

func BenchmarkSimulatorThroughput(b *testing.B) {
	cfg := redhip.SmokeConfig()
	cfg.RefsPerCore = 25_000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := redhip.RunWorkload(cfg, "mcf", 1)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(res.Refs)) // bytes stand in for references
	}
}

func BenchmarkWorkloadGeneration(b *testing.B) {
	srcs, err := redhip.WorkloadSources("mcf", 1, 64, 1)
	if err != nil {
		b.Fatal(err)
	}
	var rec redhip.TraceRecord
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srcs[0].Next(&rec)
	}
}

func BenchmarkTraceEncodeDecode(b *testing.B) {
	srcs, err := redhip.WorkloadSources("soplex", 1, 64, 1)
	if err != nil {
		b.Fatal(err)
	}
	tr := redhip.CaptureTrace(srcs[0], 100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := redhip.WriteTrace(&buf, tr); err != nil {
			b.Fatal(err)
		}
		if _, err := redhip.ReadTrace(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablation benchmarks --------------------------------------------------------

func ablationBenchRunner(b *testing.B) *redhip.Experiments {
	b.Helper()
	cfg := redhip.SmokeConfig()
	cfg.RefsPerCore = 12_000
	cfg.RecalPeriod = 1_500 // short runs must still recalibrate
	ex, err := redhip.NewExperiments(redhip.ExperimentOptions{Base: cfg, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	return ex
}

func BenchmarkAblationHash(b *testing.B) {
	r := ablationBenchRunner(b)
	for i := 0; i < b.N; i++ {
		if _, err := r.AblationHash(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationCBFCounters(b *testing.B) {
	r := ablationBenchRunner(b)
	for i := 0; i < b.N; i++ {
		if _, err := r.AblationCBFCounters(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationBanks(b *testing.B) {
	r := ablationBenchRunner(b)
	for i := 0; i < b.N; i++ {
		if _, err := r.AblationBanks(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationReplacement(b *testing.B) {
	r := ablationBenchRunner(b)
	for i := 0; i < b.N; i++ {
		if _, err := r.AblationReplacement(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationFills(b *testing.B) {
	r := ablationBenchRunner(b)
	for i := 0; i < b.N; i++ {
		if _, err := r.AblationFills(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationAdaptive(b *testing.B) {
	r := ablationBenchRunner(b)
	for i := 0; i < b.N; i++ {
		if _, err := r.AblationAdaptive(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationMemoryLatency(b *testing.B) {
	r := ablationBenchRunner(b)
	for i := 0; i < b.N; i++ {
		if _, err := r.AblationMemoryLatency(); err != nil {
			b.Fatal(err)
		}
	}
}
