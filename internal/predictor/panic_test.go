package predictor_test

import (
	"strings"
	"testing"

	"redhip/internal/memaddr"
	"redhip/internal/predictor"
)

// TestMirrorEvictUnderflowPanics pins the mirror table's reference-count
// contract: evicting a block that was never filled is an engine bug
// (the mirror would go negative and under-predict forever), so it must
// fail loudly — with a message that names its package, per the project
// rule redhip-lint's invariant pass machine-checks.
func TestMirrorEvictUnderflowPanics(t *testing.T) {
	m, err := predictor.NewMirrorTable(1024, 1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	block := memaddr.Addr(0x40)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("OnEvict of a never-filled block did not panic")
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic value is %T, want string", r)
		}
		if !strings.HasPrefix(msg, "predictor: ") {
			t.Errorf("panic message %q does not name its package (want prefix \"predictor: \")", msg)
		}
	}()
	m.OnEvict(block)
}

// TestMirrorFillEvictBalanced is the control: balanced fill/evict pairs
// never trip the underflow check, including aliased blocks sharing one
// counter.
func TestMirrorFillEvictBalanced(t *testing.T) {
	m, err := predictor.NewMirrorTable(1024, 1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	a := memaddr.Addr(0x40)
	b := memaddr.Addr(0x40 + 1024*8) // aliases onto a's counter
	m.OnFill(a)
	m.OnFill(b)
	if !m.PredictPresent(a) {
		t.Error("filled block predicted absent")
	}
	m.OnEvict(a)
	if !m.PredictPresent(b) {
		t.Error("aliased block predicted absent while still resident")
	}
	m.OnEvict(b)
	if m.PredictPresent(a) {
		t.Error("fully evicted counter still predicts present")
	}
}
