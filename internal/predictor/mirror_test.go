package predictor

import (
	"math/rand"
	"testing"

	"redhip/internal/cache"
	"redhip/internal/memaddr"
)

func TestMirrorTableConstruction(t *testing.T) {
	if _, err := NewMirrorTable(0, 6, 0.02); err == nil {
		t.Fatal("zero size accepted")
	}
	if _, err := NewMirrorTable(1000, 6, 0.02); err == nil {
		t.Fatal("non-power-of-two accepted")
	}
	m, err := NewMirrorTable(4096, 6, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() == "" || m.LookupDelay() != 6 || m.LookupNJ() != 0.02 {
		t.Fatal("metadata")
	}
}

func TestMirrorTracksFillEvict(t *testing.T) {
	m, _ := NewMirrorTable(4096, 6, 0.02)
	b := memaddr.Addr(0x1234).Block()
	if m.PredictPresent(b) {
		t.Fatal("fresh mirror predicted present")
	}
	m.OnFill(b)
	if !m.PredictPresent(b) {
		t.Fatal("filled block absent")
	}
	m.OnEvict(b)
	if m.PredictPresent(b) {
		t.Fatal("evicted block present (no aliasing here)")
	}
}

func TestMirrorAliasedRefcounts(t *testing.T) {
	m, _ := NewMirrorTable(64, 6, 0.02) // 512 entries; easy to alias
	a := memaddr.Addr(0).Block()
	alias := a + 512 // same index
	m.OnFill(a)
	m.OnFill(alias)
	m.OnEvict(a)
	// The aliased entry still has one resident block: must stay present.
	if !m.PredictPresent(alias) {
		t.Fatal("refcount dropped to zero with a resident aliased block")
	}
	m.OnEvict(alias)
	if m.PredictPresent(alias) {
		t.Fatal("entry present after all aliased blocks evicted")
	}
}

func TestMirrorUnderflowPanics(t *testing.T) {
	m, _ := NewMirrorTable(4096, 6, 0.02)
	defer func() {
		if recover() == nil {
			t.Fatal("underflow did not panic")
		}
	}()
	m.OnEvict(memaddr.Addr(0x40).Block())
}

func TestMirrorExactlyMirrorsCache(t *testing.T) {
	// Feed the mirror the fill/evict stream of a real cache; its
	// predictions must equal the aliased ground truth at every point.
	llc, err := cache.New(cache.Geometry{Name: "L4", SizeBytes: 64 << 10, Ways: 4, Banks: 1})
	if err != nil {
		t.Fatal(err)
	}
	m, _ := NewMirrorTable(256, 6, 0.02) // 2048 entries
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 30000; i++ {
		b := memaddr.Addr(rng.Uint64() % (1 << 22)).Block()
		if !llc.Contains(b) {
			ev, was := llc.Fill(b)
			m.OnFill(b)
			if was {
				m.OnEvict(ev)
			}
		}
		if i%997 == 0 {
			probe := memaddr.Addr(rng.Uint64() % (1 << 22)).Block()
			idx := uint64(probe) & 2047
			truth := false
			llc.ForEachBlock(func(r memaddr.Addr) {
				if uint64(r)&2047 == idx {
					truth = true
				}
			})
			if m.PredictPresent(probe) != truth {
				t.Fatalf("mirror disagrees with aliased ground truth at step %d", i)
			}
		}
	}
}

func TestMirrorRecalibrateReportsCost(t *testing.T) {
	llc, _ := cache.New(cache.Geometry{Name: "L4", SizeBytes: 64 << 10, Ways: 4, Banks: 1})
	m, _ := NewMirrorTable(256, 6, 0.02)
	cost := m.Recalibrate(llc, 1, 1)
	if cost.Cycles == 0 || cost.EnergyNJ == 0 {
		t.Fatal("mirror recalibration cost must be nonzero for honest accounting")
	}
	// And it must not disturb the refcounts.
	b := memaddr.Addr(0x40).Block()
	m.OnFill(b)
	m.Recalibrate(llc, 1, 1)
	if !m.PredictPresent(b) {
		t.Fatal("recalibrate disturbed the mirror state")
	}
}
