package predictor

import (
	"math/rand"
	"testing"
	"testing/quick"

	"redhip/internal/cache"
	"redhip/internal/core"
	"redhip/internal/memaddr"
)

func TestNone(t *testing.T) {
	var p None
	if p.Name() != "none" {
		t.Error("name")
	}
	for i := 0; i < 100; i++ {
		if !p.PredictPresent(memaddr.Addr(i)) {
			t.Fatal("None must always predict present")
		}
	}
	if p.LookupDelay() != 0 || p.LookupNJ() != 0 {
		t.Fatal("None must be free")
	}
	p.OnFill(0)
	p.OnEvict(0)
}

func TestOracleTracksGroundTruth(t *testing.T) {
	llc, err := cache.New(cache.Geometry{Name: "L4", SizeBytes: 64 << 10, Ways: 4, Banks: 1})
	if err != nil {
		t.Fatal(err)
	}
	o := NewOracle(llc.Contains)
	b := memaddr.Addr(0x4000).Block()
	if o.PredictPresent(b) {
		t.Fatal("oracle predicted present in empty cache")
	}
	llc.Fill(b)
	if !o.PredictPresent(b) {
		t.Fatal("oracle missed resident block")
	}
	llc.Invalidate(b)
	if o.PredictPresent(b) {
		t.Fatal("oracle predicted evicted block present")
	}
	if o.LookupDelay() != 0 || o.LookupNJ() != 0 {
		t.Fatal("oracle must be free (Section IV)")
	}
}

func TestReDHiPAdapter(t *testing.T) {
	tb, err := core.NewTable(4096, 4)
	if err != nil {
		t.Fatal(err)
	}
	r := NewReDHiP(tb, 6, 0.02)
	if r.Name() != "redhip" {
		t.Error("name")
	}
	b := memaddr.Addr(0x1234).Block()
	if r.PredictPresent(b) {
		t.Fatal("fresh table predicted present")
	}
	r.OnFill(b)
	if !r.PredictPresent(b) {
		t.Fatal("filled block predicted absent")
	}
	r.OnEvict(b) // must be a no-op
	if !r.PredictPresent(b) {
		t.Fatal("eviction cleared a ReDHiP bit — 1-bit entries cannot do that")
	}
	if r.LookupDelay() != 6 || r.LookupNJ() != 0.02 {
		t.Fatalf("cost %d/%v", r.LookupDelay(), r.LookupNJ())
	}
}

func TestReDHiPRecalibratorInterface(t *testing.T) {
	tb, _ := core.NewTable(4096, 4)
	var p Predictor = NewReDHiP(tb, 6, 0.02)
	rc, ok := p.(Recalibrator)
	if !ok {
		t.Fatal("ReDHiP does not implement Recalibrator")
	}
	llc, _ := cache.New(cache.Geometry{Name: "L4", SizeBytes: 64 << 10, Ways: 4, Banks: 1})
	llc.Fill(memaddr.Addr(0x40).Block())
	cost := rc.Recalibrate(llc, 1, 1)
	if cost.Cycles == 0 {
		t.Fatal("recalibration cost zero cycles")
	}
	if !p.PredictPresent(memaddr.Addr(0x40).Block()) {
		t.Fatal("recalibrated table lost resident block")
	}
}

func TestCBFConstruction(t *testing.T) {
	c, err := NewCBF(512*1024, 4, 6, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if c.Entries() != 1<<20 {
		t.Fatalf("512KB at 4 bits: %d entries, want 2^20", c.Entries())
	}
	if c.CounterBits() != 4 {
		t.Fatal("counter bits")
	}
	// ReDHiP at the same area has 4x the entries — the paper's
	// accuracy-per-bit argument.
	tb, _ := core.NewTable(512*1024, 4)
	if uint64(1)<<tb.PBits() != 4*c.Entries() {
		t.Fatalf("entry ratio: redhip 2^%d vs cbf %d", tb.PBits(), c.Entries())
	}
}

func TestCBFConstructionErrors(t *testing.T) {
	if _, err := NewCBF(0, 4, 6, 0.02); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := NewCBF(1024, 1, 6, 0.02); err == nil {
		t.Error("1-bit counters accepted")
	}
	if _, err := NewCBF(1024, 9, 6, 0.02); err == nil {
		t.Error("9-bit counters accepted")
	}
}

func TestCBFNonPowerOfTwoBudget(t *testing.T) {
	// 3-bit counters in 512KB: floor to the largest power of two.
	c, err := NewCBF(512*1024, 3, 6, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if c.Entries() != 1<<20 {
		t.Fatalf("entries = %d, want 2^20", c.Entries())
	}
}

func TestCBFFillEvictBalance(t *testing.T) {
	c, _ := NewCBF(64*1024, 4, 6, 0.02)
	b := memaddr.Addr(0xdeadbe00).Block()
	if c.PredictPresent(b) {
		t.Fatal("empty filter predicted present")
	}
	c.OnFill(b)
	if !c.PredictPresent(b) {
		t.Fatal("filled block absent")
	}
	c.OnEvict(b)
	if c.PredictPresent(b) {
		t.Fatal("evicted block still present (counter should have hit 0)")
	}
}

func TestCBFNoFalseNegatives(t *testing.T) {
	// Conservative property under arbitrary fill/evict interleavings
	// that mirror real cache behaviour (evict only resident blocks).
	f := func(seed int64) bool {
		c, _ := NewCBF(4*1024, 4, 6, 0.02)
		rng := rand.New(rand.NewSource(seed))
		resident := map[memaddr.Addr]bool{}
		order := []memaddr.Addr{}
		for i := 0; i < 3000; i++ {
			if rng.Intn(2) == 0 || len(order) == 0 {
				b := memaddr.Addr(rng.Uint64() % (1 << 24)).Block()
				if !resident[b] {
					resident[b] = true
					order = append(order, b)
					c.OnFill(b)
				}
			} else {
				i := rng.Intn(len(order))
				b := order[i]
				order = append(order[:i], order[i+1:]...)
				delete(resident, b)
				c.OnEvict(b)
			}
		}
		for b := range resident {
			if !c.PredictPresent(b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestCBFSaturationSticks(t *testing.T) {
	c, _ := NewCBF(64, 2, 6, 0.02) // max counter value 3
	b := memaddr.Addr(0).Block()
	for i := 0; i < 10; i++ {
		c.OnFill(b)
	}
	// Saturated counter is disabled: evictions must not decrement it.
	for i := 0; i < 10; i++ {
		c.OnEvict(b)
	}
	if !c.PredictPresent(b) {
		t.Fatal("saturated counter decremented — breaks conservativeness")
	}
	if c.Stats().Saturated == 0 {
		t.Fatal("saturation not counted")
	}
}

func TestCBFXorHashStaysInRange(t *testing.T) {
	c, _ := NewCBF(8*1024, 4, 6, 0.02)
	f := func(raw uint64) bool {
		return c.Index(memaddr.Addr(raw).Block()) < c.Entries()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCBFXorHashMixesHighBits(t *testing.T) {
	// Unlike bits-hash, xor-hash must distinguish some blocks that
	// agree in their low bits.
	c, _ := NewCBF(8*1024, 4, 6, 0.02)
	base := memaddr.Addr(0x1000).Block()
	diff := 0
	for i := uint(20); i < 40; i++ {
		other := base | 1<<i
		if c.Index(other) != c.Index(base) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("xor-hash ignored all high bits")
	}
}

func TestCBFStatsCounts(t *testing.T) {
	c, _ := NewCBF(1024, 4, 6, 0.02)
	b := memaddr.Addr(0x40).Block()
	c.PredictPresent(b)
	c.OnFill(b)
	c.PredictPresent(b)
	s := c.Stats()
	if s.Lookups != 2 || s.PredictedPresent != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestCBFEvictUnknownCountsUnderflow(t *testing.T) {
	c, _ := NewCBF(1024, 4, 6, 0.02)
	c.OnEvict(memaddr.Addr(0x40).Block())
	if c.Stats().Underflows != 1 {
		t.Fatal("underflow not counted")
	}
}

func TestPredictorInterfaceCompliance(t *testing.T) {
	tb, _ := core.NewTable(4096, 4)
	cbf, _ := NewCBF(1024, 4, 6, 0.02)
	for _, p := range []Predictor{None{}, NewOracle(func(memaddr.Addr) bool { return false }), NewReDHiP(tb, 6, 0.02), cbf} {
		if p.Name() == "" {
			t.Errorf("%T has empty name", p)
		}
	}
}
