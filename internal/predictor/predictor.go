// Package predictor defines the LLC-presence predictor interface the
// simulator consults on every L1 miss, and the baseline predictors the
// paper compares ReDHiP against (Section II and Section IV): a no-op
// predictor (the Base configuration), a perfect Oracle, and the
// counting-Bloom-filter scheme of Ghosh et al. at equal area budget.
package predictor

import (
	"fmt"

	"redhip/internal/core"
	"redhip/internal/memaddr"
)

// Predictor predicts whether a block may reside in the covered cache.
// Implementations must be conservative: PredictPresent may return true
// for an absent block (a false positive wastes lookups) but must never
// return false for a resident one (a false negative would send an
// on-chip access to memory).
type Predictor interface {
	// Name identifies the scheme in reports.
	Name() string
	// PredictPresent returns false only if the block is certainly not
	// in the covered cache.
	PredictPresent(block memaddr.Addr) bool
	// OnFill notifies that a block was inserted into the covered cache.
	OnFill(block memaddr.Addr)
	// OnEvict notifies that a block was evicted from the covered cache.
	OnEvict(block memaddr.Addr)
	// LookupDelay is the cycles an L1 miss spends consulting the
	// predictor (table access + wire, Table I).
	LookupDelay() uint32
	// LookupNJ is the dynamic energy of one consultation.
	LookupNJ() float64
}

// Recalibrator is implemented by predictors that support ReDHiP-style
// periodic recalibration from the covered cache's tag array.
type Recalibrator interface {
	Recalibrate(tags core.TagArray, tagReadNJ, lineWriteNJ float64) core.RecalCost
}

// --- None -------------------------------------------------------------------

// None is the Base configuration: no prediction, every L1 miss walks
// the hierarchy.
type None struct{}

// Name implements Predictor.
func (None) Name() string { return "none" }

// PredictPresent implements Predictor; it always predicts present.
func (None) PredictPresent(memaddr.Addr) bool { return true }

// OnFill implements Predictor.
func (None) OnFill(memaddr.Addr) {}

// OnEvict implements Predictor.
func (None) OnEvict(memaddr.Addr) {}

// LookupDelay implements Predictor.
func (None) LookupDelay() uint32 { return 0 }

// LookupNJ implements Predictor.
func (None) LookupNJ() float64 { return 0 }

// --- Oracle -----------------------------------------------------------------

// Oracle predicts LLC presence perfectly and for free — the theoretical
// upper bound of Figures 6 and 7. It is "not the same as constant
// recalibration" (Section IV): a recalibrated 1-bit table still aliases
// multiple blocks onto one entry, while the Oracle does not.
type Oracle struct {
	contains func(memaddr.Addr) bool
}

// NewOracle wraps a ground-truth residency query (cache.Cache.Contains).
func NewOracle(contains func(memaddr.Addr) bool) *Oracle {
	return &Oracle{contains: contains}
}

// Name implements Predictor.
func (o *Oracle) Name() string { return "oracle" }

// PredictPresent implements Predictor.
func (o *Oracle) PredictPresent(b memaddr.Addr) bool { return o.contains(b) }

// OnFill implements Predictor.
func (o *Oracle) OnFill(memaddr.Addr) {}

// OnEvict implements Predictor.
func (o *Oracle) OnEvict(memaddr.Addr) {}

// LookupDelay implements Predictor.
func (o *Oracle) LookupDelay() uint32 { return 0 }

// LookupNJ implements Predictor.
func (o *Oracle) LookupNJ() float64 { return 0 }

// --- ReDHiP adapter -----------------------------------------------------------

// ReDHiP adapts a core.Table to the Predictor interface. Evictions are
// deliberately ignored (the 1-bit entries cannot be decremented); the
// simulator recalibrates the table periodically through the
// Recalibrator interface.
type ReDHiP struct {
	Table *core.Table
	Delay uint32
	NJ    float64
}

// NewReDHiP builds the adapter with the given lookup cost.
func NewReDHiP(t *core.Table, delay uint32, nj float64) *ReDHiP {
	return &ReDHiP{Table: t, Delay: delay, NJ: nj}
}

// Name implements Predictor.
func (r *ReDHiP) Name() string { return "redhip" }

// PredictPresent implements Predictor.
func (r *ReDHiP) PredictPresent(b memaddr.Addr) bool { return r.Table.PredictPresent(b) }

// OnFill implements Predictor.
func (r *ReDHiP) OnFill(b memaddr.Addr) { r.Table.Set(b) }

// OnEvict implements Predictor; it is a no-op by design.
func (r *ReDHiP) OnEvict(memaddr.Addr) {}

// LookupDelay implements Predictor.
func (r *ReDHiP) LookupDelay() uint32 { return r.Delay }

// LookupNJ implements Predictor.
func (r *ReDHiP) LookupNJ() float64 { return r.NJ }

// Recalibrate implements Recalibrator.
func (r *ReDHiP) Recalibrate(tags core.TagArray, tagReadNJ, lineWriteNJ float64) core.RecalCost {
	return r.Table.Recalibrate(tags, tagReadNJ, lineWriteNJ)
}

var _ Recalibrator = (*ReDHiP)(nil)

// --- Counting Bloom Filter ------------------------------------------------------

// CBF is the counting-Bloom-filter predictor of Ghosh et al. [9] given
// the same area budget as ReDHiP (Section IV): one xor-hash function
// and small saturating counters. At 4 bits per counter a 512 KB budget
// affords 2^20 entries — a quarter of ReDHiP's 2^22 1-bit entries,
// which is exactly the paper's "accuracy per bit" argument.
type CBF struct {
	counters []uint8
	idxBits  uint    //redhip:transient construction-time size config
	maxVal   uint8   //redhip:transient derived from ctrBits, rebuilt by NewCBF
	ctrBits  uint    //redhip:transient construction-time counter-width config
	delay    uint32  //redhip:transient construction-time latency config
	nj       float64 //redhip:transient construction-time energy config

	lookups   uint64
	present   uint64
	saturated uint64 // counters stuck at max
	underflow uint64 // evictions of blocks whose counter was already 0
}

// NewCBF builds a counting Bloom filter within sizeBytes of storage
// using counterBits-wide counters (2..8). The entry count is the
// largest power of two that fits the budget.
func NewCBF(sizeBytes uint64, counterBits uint, delay uint32, nj float64) (*CBF, error) {
	if counterBits < 2 || counterBits > 8 {
		return nil, fmt.Errorf("predictor: CBF counter width %d outside [2,8]", counterBits)
	}
	if sizeBytes == 0 {
		return nil, fmt.Errorf("predictor: CBF size must be positive")
	}
	rawEntries := sizeBytes * 8 / uint64(counterBits)
	if rawEntries == 0 {
		return nil, fmt.Errorf("predictor: CBF budget %d bytes too small for %d-bit counters", sizeBytes, counterBits)
	}
	idxBits := uint(0)
	for (uint64(1) << (idxBits + 1)) <= rawEntries {
		idxBits++
	}
	return &CBF{
		counters: make([]uint8, uint64(1)<<idxBits),
		idxBits:  idxBits,
		maxVal:   uint8(1<<counterBits - 1),
		ctrBits:  counterBits,
		delay:    delay,
		nj:       nj,
	}, nil
}

// Entries returns the number of counters.
func (c *CBF) Entries() uint64 { return uint64(len(c.counters)) }

// CounterBits returns the counter width.
func (c *CBF) CounterBits() uint { return c.ctrBits }

// Index computes the xor-hash of a block address: the address is split
// into idxBits-wide chunks that are xor-folded together (Section II's
// "xor-hash achieves higher accuracy than bits-hash"). Note this hash
// is exactly what makes CBF recalibration impractical: the blocks
// mapping to one entry are scattered across the whole cache.
func (c *CBF) Index(block memaddr.Addr) uint64 {
	x := uint64(block)
	mask := uint64(1)<<c.idxBits - 1
	var h uint64
	for x != 0 {
		h ^= x & mask
		x >>= c.idxBits
	}
	return h
}

// Name implements Predictor.
func (c *CBF) Name() string { return "cbf" }

// PredictPresent implements Predictor: present iff the counter is nonzero.
func (c *CBF) PredictPresent(b memaddr.Addr) bool {
	c.lookups++
	if c.counters[c.Index(b)] != 0 {
		c.present++
		return true
	}
	return false
}

// OnFill implements Predictor: increments the counter, saturating at
// the maximum. A saturated counter is disabled — it never decrements
// again, so it conservatively reads "present" forever (Section II).
func (c *CBF) OnFill(b memaddr.Addr) {
	ctr := &c.counters[c.Index(b)]
	if *ctr == c.maxVal {
		return // already saturated/disabled
	}
	*ctr++
	if *ctr == c.maxVal {
		c.saturated++
	}
}

// OnEvict implements Predictor: decrements the counter unless it is
// saturated (disabled) or already zero.
func (c *CBF) OnEvict(b memaddr.Addr) {
	ctr := &c.counters[c.Index(b)]
	switch *ctr {
	case c.maxVal:
		// disabled
	case 0:
		c.underflow++
	default:
		*ctr--
	}
}

// LookupDelay implements Predictor.
func (c *CBF) LookupDelay() uint32 { return c.delay }

// LookupNJ implements Predictor.
func (c *CBF) LookupNJ() float64 { return c.nj }

// SnapshotState copies out the filter's counters and lifetime stats
// for warm-state serialisation.
func (c *CBF) SnapshotState() (counters []uint8, stats [4]uint64) {
	counters = append([]uint8(nil), c.counters...)
	stats = [4]uint64{c.lookups, c.present, c.saturated, c.underflow}
	return counters, stats
}

// RestoreSnapshotState overwrites the filter's counters and stats with
// a previously-snapshotted state. The counter count must match this
// filter's geometry exactly.
func (c *CBF) RestoreSnapshotState(counters []uint8, stats [4]uint64) error {
	if len(counters) != len(c.counters) {
		return fmt.Errorf("predictor: snapshot has %d CBF counters, filter needs %d", len(counters), len(c.counters))
	}
	copy(c.counters, counters)
	c.lookups, c.present, c.saturated, c.underflow = stats[0], stats[1], stats[2], stats[3]
	return nil
}

// CBFStats reports the filter's internal counters.
type CBFStats struct {
	Lookups          uint64
	PredictedPresent uint64
	Saturated        uint64
	Underflows       uint64
}

// Stats returns a snapshot of the filter's counters.
func (c *CBF) Stats() CBFStats {
	return CBFStats{
		Lookups:          c.lookups,
		PredictedPresent: c.present,
		Saturated:        c.saturated,
		Underflows:       c.underflow,
	}
}
