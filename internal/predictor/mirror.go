package predictor

import (
	"fmt"

	"redhip/internal/core"
	"redhip/internal/memaddr"
)

// MirrorTable models the limit point of Figure 12: a ReDHiP table
// recalibrated after *every* L1 miss. A table that is always freshly
// recalibrated is semantically identical to one that exactly mirrors
// the covered cache's contents under the same bits-hash — the only
// inaccuracy left is hash aliasing. The simulator implements that
// mirror directly with per-entry reference counts (pure simulation
// bookkeeping, not proposed hardware), which is vastly cheaper than
// re-sweeping the tag array on every miss.
type MirrorTable struct {
	refs  []uint32
	mask  uint64  //redhip:transient derived from pBits, rebuilt by NewMirrorTable
	pBits uint    //redhip:transient construction-time size config
	delay uint32  //redhip:transient construction-time latency config
	nj    float64 //redhip:transient construction-time energy config
}

// NewMirrorTable builds a mirror of a ReDHiP table of the given size.
func NewMirrorTable(sizeBytes uint64, delay uint32, nj float64) (*MirrorTable, error) {
	entries := sizeBytes * 8
	pBits, err := memaddr.CheckedLog2("mirror table entries", entries)
	if err != nil {
		return nil, err
	}
	return &MirrorTable{
		refs:  make([]uint32, entries),
		mask:  entries - 1,
		pBits: pBits,
		delay: delay,
		nj:    nj,
	}, nil
}

// Name implements Predictor.
func (m *MirrorTable) Name() string { return "redhip-recal-every-miss" }

// PredictPresent implements Predictor.
func (m *MirrorTable) PredictPresent(b memaddr.Addr) bool {
	return m.refs[uint64(b)&m.mask] != 0
}

// OnFill implements Predictor.
func (m *MirrorTable) OnFill(b memaddr.Addr) { m.refs[uint64(b)&m.mask]++ }

// OnEvict implements Predictor.
func (m *MirrorTable) OnEvict(b memaddr.Addr) {
	r := &m.refs[uint64(b)&m.mask]
	if *r == 0 {
		panic(fmt.Sprintf("predictor: mirror table underflow for block %v", b))
	}
	*r--
}

// LookupDelay implements Predictor.
func (m *MirrorTable) LookupDelay() uint32 { return m.delay }

// LookupNJ implements Predictor.
func (m *MirrorTable) LookupNJ() float64 { return m.nj }

// SnapshotRefs copies out the mirror's reference counts for warm-state
// serialisation.
func (m *MirrorTable) SnapshotRefs() []uint32 {
	return append([]uint32(nil), m.refs...)
}

// RestoreRefs overwrites the mirror's reference counts with a
// previously-snapshotted state of matching size.
func (m *MirrorTable) RestoreRefs(refs []uint32) error {
	if len(refs) != len(m.refs) {
		return fmt.Errorf("predictor: snapshot has %d mirror refs, table needs %d", len(refs), len(m.refs))
	}
	copy(m.refs, refs)
	return nil
}

// Recalibrate implements Recalibrator as a no-op that still reports the
// hardware cost one rebuild would have, so overhead accounting stays
// honest if a caller insists on charging it.
func (m *MirrorTable) Recalibrate(tags core.TagArray, tagReadNJ, lineWriteNJ float64) core.RecalCost {
	sets := uint64(tags.NumSets())
	lines := uint64(len(m.refs)) / core.LineBits
	if lines == 0 {
		lines = 1
	}
	return core.RecalCost{
		Cycles:   sets, // unbanked single-ported sweep
		EnergyNJ: float64(sets)*tagReadNJ + float64(lines)*lineWriteNJ,
	}
}
