package experiment

import (
	"strings"
	"testing"

	"redhip/internal/sim"
)

// mustRunner builds a runner, failing the test on invalid options.
func mustRunner(t testing.TB, opts Options) *Runner {
	t.Helper()
	r, err := NewRunner(opts)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// tinyRunner uses the smoke configuration over two workloads so the
// whole figure pipeline stays fast.
func tinyRunner(t *testing.T) *Runner {
	t.Helper()
	cfg := sim.Smoke()
	cfg.RefsPerCore = 8_000
	return mustRunner(t, Options{
		Base:      cfg,
		Seed:      3,
		Workloads: []string{"mcf", "lbm"},
	})
}

func TestOptionsDefaults(t *testing.T) {
	r := mustRunner(t, Options{})
	if len(r.Workloads()) != 11 {
		t.Fatalf("default workloads = %d, want 11", len(r.Workloads()))
	}
	if r.BaseConfig().Cores == 0 {
		t.Fatal("base config not filled")
	}
}

func TestTableIRendering(t *testing.T) {
	r := tinyRunner(t)
	tab := r.TableI()
	s := tab.String()
	for _, want := range []string{"L1", "L4", "Prediction Table", "leakage"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table I missing %q:\n%s", want, s)
		}
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("Table I rows = %d, want 5", len(tab.Rows))
	}
}

func TestRunnerMemoisation(t *testing.T) {
	r := tinyRunner(t)
	if _, err := r.Fig6Speedup(); err != nil {
		t.Fatal(err)
	}
	n := r.CacheSize()
	if n == 0 {
		t.Fatal("no runs cached")
	}
	// Figures 7 and 8 reuse exactly the same runs.
	if _, err := r.Fig7DynamicEnergy(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Fig8Metric(); err != nil {
		t.Fatal(err)
	}
	if r.CacheSize() != n {
		t.Fatalf("figures 7/8 re-ran simulations: %d -> %d", n, r.CacheSize())
	}
}

func TestFig6Shape(t *testing.T) {
	r := tinyRunner(t)
	f, err := r.Fig6Speedup()
	if err != nil {
		t.Fatal(err)
	}
	tab := f.Table
	// scheme + 2 workloads + average.
	if len(tab.Columns) != 4 {
		t.Fatalf("columns = %v", tab.Columns)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 schemes", len(tab.Rows))
	}
	if tab.Rows[0][0] != "oracle" || tab.Rows[3][0] != "redhip" {
		t.Fatalf("scheme order: %v", tab.Rows)
	}
	// Base row is not present (everything is relative to it).
	for _, row := range tab.Rows {
		if row[0] == "base" {
			t.Fatal("base listed as a scheme")
		}
	}
}

func TestFig9AndFig10Shapes(t *testing.T) {
	r := tinyRunner(t)
	f9, err := r.Fig9HitRatesBase()
	if err != nil {
		t.Fatal(err)
	}
	f10, err := r.Fig10HitRatesReDHiP()
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []*Figure{f9, f10} {
		if len(f.Table.Rows) != 4 {
			t.Fatalf("%s rows = %d, want 4 levels", f.ID, len(f.Table.Rows))
		}
	}
	// L1 hit rates must match between the two (prediction happens after
	// the L1 access).
	if f9.Table.Rows[0][1] != f10.Table.Rows[0][1] {
		t.Errorf("L1 hit rate changed with ReDHiP: %s vs %s",
			f9.Table.Rows[0][1], f10.Table.Rows[0][1])
	}
}

func TestFig11Shape(t *testing.T) {
	r := tinyRunner(t)
	f, err := r.Fig11TableSize()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Table.Rows) != len(Fig11TableSizes) {
		t.Fatalf("rows = %d, want %d sizes", len(f.Table.Rows), len(Fig11TableSizes))
	}
	// Largest table listed first (2M), smallest last (64K).
	if f.Table.Rows[0][0] != "2M" || f.Table.Rows[len(f.Table.Rows)-1][0] != "64K" {
		t.Fatalf("size order: %v ... %v", f.Table.Rows[0][0], f.Table.Rows[len(f.Table.Rows)-1][0])
	}
}

func TestFig12Shape(t *testing.T) {
	r := tinyRunner(t)
	f, err := r.Fig12RecalPeriod()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Table.Rows) != len(Fig12RecalPeriods) {
		t.Fatalf("rows = %d", len(f.Table.Rows))
	}
	if f.Table.Rows[0][0] != "1" || f.Table.Rows[len(f.Table.Rows)-1][0] != "never" {
		t.Fatalf("period labels: %v ... %v", f.Table.Rows[0][0], f.Table.Rows[len(f.Table.Rows)-1][0])
	}
}

func TestFig13Shape(t *testing.T) {
	r := tinyRunner(t)
	f, err := r.Fig13Inclusion()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Table.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 policies", len(f.Table.Rows))
	}
	wantOrder := []string{"inclusive", "hybrid", "exclusive"}
	for i, w := range wantOrder {
		if f.Table.Rows[i][0] != w {
			t.Fatalf("policy order %v", f.Table.Rows)
		}
	}
}

func TestFig14And15Shapes(t *testing.T) {
	r := tinyRunner(t)
	f14, err := r.Fig14PrefetchSpeedup()
	if err != nil {
		t.Fatal(err)
	}
	f15, err := r.Fig15PrefetchEnergy()
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []*Figure{f14, f15} {
		if len(f.Table.Rows) != 3 {
			t.Fatalf("%s rows = %d, want 3 mechanisms", f.ID, len(f.Table.Rows))
		}
		if f.Table.Rows[0][0] != "SP only" || f.Table.Rows[2][0] != "SP+ReDHiP" {
			t.Fatalf("%s mechanism order: %v", f.ID, f.Table.Rows)
		}
	}
}

func TestFig1Breakdown(t *testing.T) {
	r := tinyRunner(t)
	f, err := r.Fig1EnergyBreakdown()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Table.Rows) != 4 {
		t.Fatalf("rows = %d", len(f.Table.Rows))
	}
}

func TestAllRegeneratesEverything(t *testing.T) {
	r := tinyRunner(t)
	figs, err := r.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 13 { // Table I + Fig 1 (trend + energy) + Figs 6-15
		t.Fatalf("got %d figures, want 13", len(figs))
	}
	ids := map[string]bool{}
	for _, f := range figs {
		ids[f.ID] = true
		if f.Table == nil || f.Caption == "" {
			t.Errorf("%s incomplete", f.ID)
		}
	}
	for _, want := range []string{"Table I", "Fig 6", "Fig 7", "Fig 8", "Fig 9",
		"Fig 10", "Fig 11", "Fig 12", "Fig 13", "Fig 14", "Fig 15"} {
		if !ids[want] {
			t.Errorf("missing %s", want)
		}
	}
}

func TestRunnerPropagatesErrors(t *testing.T) {
	cfg := sim.Smoke()
	cfg.RefsPerCore = 0 // invalid
	r := mustRunner(t, Options{Base: cfg, Workloads: []string{"mcf"}})
	if _, err := r.Fig6Speedup(); err == nil {
		t.Fatal("invalid config did not error")
	}
}

func TestRunnerUnknownWorkload(t *testing.T) {
	cfg := sim.Smoke()
	cfg.RefsPerCore = 1000
	r := mustRunner(t, Options{Base: cfg, Workloads: []string{"nonesuch"}})
	if _, err := r.Fig6Speedup(); err == nil {
		t.Fatal("unknown workload did not error")
	}
}

func TestProgressCallback(t *testing.T) {
	cfg := sim.Smoke()
	cfg.RefsPerCore = 2_000
	var lines []string
	r := mustRunner(t, Options{
		Base:        cfg,
		Workloads:   []string{"mcf"},
		Parallelism: 1,
		Progress:    func(m string) { lines = append(lines, m) },
	})
	if _, err := r.Fig1EnergyBreakdown(); err != nil {
		t.Fatal(err)
	}
	if len(lines) == 0 {
		t.Fatal("no progress reported")
	}
}

func TestParallelRunnerDeterministic(t *testing.T) {
	mk := func(par int) string {
		cfg := sim.Smoke()
		cfg.RefsPerCore = 4_000
		r := mustRunner(t, Options{Base: cfg, Workloads: []string{"mcf", "lbm"}, Parallelism: par})
		f, err := r.Fig6Speedup()
		if err != nil {
			t.Fatal(err)
		}
		return f.Table.String()
	}
	if mk(1) != mk(4) {
		t.Fatal("parallelism changed figure contents")
	}
}

func TestVerifyAllClaimsHold(t *testing.T) {
	cfg := sim.Smoke()
	cfg.RefsPerCore = 10_000
	r := mustRunner(t, Options{Base: cfg, Seed: 2, Workloads: []string{"mcf", "lbm", "soplex"}})
	checks, err := r.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if len(checks) < 8 {
		t.Fatalf("only %d checks", len(checks))
	}
	for _, c := range checks {
		if !c.Pass {
			t.Errorf("claim failed: %s (%s)", c.Name, c.Detail)
		}
	}
}

func TestVerifyPropagatesErrors(t *testing.T) {
	cfg := sim.Smoke()
	cfg.RefsPerCore = 0
	r := mustRunner(t, Options{Base: cfg, Workloads: []string{"mcf"}})
	if _, err := r.Verify(); err == nil {
		t.Fatal("invalid config did not error")
	}
}
