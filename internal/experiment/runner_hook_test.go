package experiment

import (
	"context"
	"errors"
	"sync"
	"testing"

	"redhip/internal/sim"
)

// TestOnRunHook: every executed run fires OnRun exactly once with the
// run's identity and result; memoised re-requests do not re-fire it.
func TestOnRunHook(t *testing.T) {
	cfg := sim.Smoke()
	cfg.RefsPerCore = 2_000
	schemes := []sim.Scheme{sim.Base, sim.ReDHiP}

	var mu sync.Mutex
	var updates []RunUpdate
	r := mustRunner(t, Options{
		Base:        cfg,
		Workloads:   []string{"mcf"},
		Parallelism: 1,
		OnRun: func(u RunUpdate) {
			mu.Lock()
			updates = append(updates, u)
			mu.Unlock()
		},
	})
	if _, err := r.SchemeSweep("mcf", schemes); err != nil {
		t.Fatal(err)
	}
	if len(updates) != 2 {
		t.Fatalf("OnRun fired %d times, want 2", len(updates))
	}
	for i, u := range updates {
		if u.Err != nil || u.Result == nil {
			t.Fatalf("update %d: err=%v result=%v", i, u.Err, u.Result)
		}
		if u.Workload != "mcf" || u.Scheme != schemes[i] {
			t.Fatalf("update %d = %s/%s, want mcf/%s", i, u.Workload, u.Scheme, schemes[i])
		}
		if u.Completed != i+1 {
			t.Fatalf("update %d Completed = %d, want %d", i, u.Completed, i+1)
		}
	}

	// The second sweep is fully memoised: no new hook firings.
	if _, err := r.SchemeSweep("mcf", schemes); err != nil {
		t.Fatal(err)
	}
	if len(updates) != 2 {
		t.Fatalf("memoised sweep re-fired OnRun: %d updates", len(updates))
	}
}

// TestContextCancellation: a cancelled context stops the runner before
// it executes anything and surfaces the context error.
func TestContextCancellation(t *testing.T) {
	cfg := sim.Smoke()
	cfg.RefsPerCore = 2_000
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the sweep starts

	fired := false
	r := mustRunner(t, Options{
		Base:      cfg,
		Workloads: []string{"mcf"},
		Context:   ctx,
		OnRun:     func(RunUpdate) { fired = true },
	})
	_, err := r.SchemeSweep("mcf", sim.Schemes())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("SchemeSweep with cancelled context = %v, want context.Canceled", err)
	}
	if fired {
		t.Fatal("OnRun fired despite cancelled context")
	}
	if n := r.CacheSize(); n != 0 {
		t.Fatalf("cancelled runner memoised %d runs", n)
	}
}

// TestContextCancellationMidSweep: cancelling from the OnRun hook stops
// the remaining runs of the same sweep. This is the per-scheme pool
// path's contract (DisableSinglePass); the single-pass engine runs the
// whole sweep as one simulation, so its cancellation granularity is
// the pass round, covered by TestContextCancellationSinglePass and
// sim's interrupt test.
func TestContextCancellationMidSweep(t *testing.T) {
	cfg := sim.Smoke()
	cfg.RefsPerCore = 2_000
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var completed int
	r := mustRunner(t, Options{
		Base:              cfg,
		Workloads:         []string{"mcf"},
		Parallelism:       1,
		Context:           ctx,
		DisableSinglePass: true,
		OnRun: func(u RunUpdate) {
			completed = u.Completed
			cancel() // stop after the first run
		},
	})
	_, err := r.SchemeSweep("mcf", sim.Schemes())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-sweep cancel = %v, want context.Canceled", err)
	}
	if completed != 1 {
		t.Fatalf("completed %d runs before cancel took effect, want 1", completed)
	}
	if n := r.CacheSize(); n >= len(sim.Schemes()) {
		t.Fatalf("cancelled sweep still executed all %d runs", n)
	}
}

// TestContextCancellationSinglePass: on the single-pass path the sweep
// is one simulation, so a cancel fired from OnRun lands after the pass
// — its results are kept — but any subsequent sweep fails fast before
// starting a new pass.
func TestContextCancellationSinglePass(t *testing.T) {
	cfg := sim.Smoke()
	cfg.RefsPerCore = 2_000
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	r := mustRunner(t, Options{
		Base:      cfg,
		Workloads: []string{"mcf"},
		Context:   ctx,
		OnRun:     func(RunUpdate) { cancel() },
	})
	if _, err := r.SchemeSweep("mcf", sim.Schemes()); err != nil {
		t.Fatalf("sweep whose pass completed before the cancel: %v", err)
	}
	if n := r.CacheSize(); n != len(sim.Schemes()) {
		t.Fatalf("completed pass memoised %d runs, want %d", n, len(sim.Schemes()))
	}
	if _, err := r.SchemeSweep("milc", sim.Schemes()); !errors.Is(err, context.Canceled) {
		t.Fatalf("post-cancel sweep = %v, want context.Canceled", err)
	}
}
