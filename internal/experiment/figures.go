package experiment

import (
	"fmt"

	"redhip/internal/energy"
	"redhip/internal/sim"
	"redhip/internal/stats"
)

// Figure couples a rendered table with the paper artefact it reproduces.
type Figure struct {
	// ID is the paper artefact ("Table I", "Fig 6", ...).
	ID string
	// Caption summarises what the paper reports there.
	Caption string
	// Table holds the regenerated rows.
	Table *stats.Table
}

// baseJob is the Base-scheme run every normalisation divides by.
func (r *Runner) baseJob(wl string) job {
	cfg := r.opts.Base.WithScheme(sim.Base)
	cfg.EnablePrefetch = false
	return job{workload: wl, cfg: cfg}
}

func (r *Runner) schemeJob(wl string, s sim.Scheme) job {
	cfg := r.opts.Base.WithScheme(s)
	cfg.EnablePrefetch = false
	return job{workload: wl, cfg: cfg}
}

// headlineJobs returns every run Figures 6-10 need.
func (r *Runner) headlineJobs() []job {
	var jobs []job
	for _, wl := range r.opts.Workloads {
		for _, s := range sim.Schemes() {
			jobs = append(jobs, r.schemeJob(wl, s))
		}
	}
	return jobs
}

// columns returns the standard header: workloads in paper order plus
// the average.
func (r *Runner) columns(first string) []string {
	cols := append([]string{first}, r.opts.Workloads...)
	return append(cols, "average")
}

// TableI renders the architecture parameters of Table I as configured,
// which documents exactly what geometry a run used (paper-exact or
// scaled).
func (r *Runner) TableI() *stats.Table {
	cfg := r.opts.Base
	t := stats.NewTable(
		fmt.Sprintf("Table I: architecture parameters (%d cores, %.1f GHz, workload scale 1/%d)",
			cfg.Cores, cfg.Energy.ClockGHz, cfg.WorkloadScale),
		"structure", "size", "ways", "delay (cycles)", "access energy (nJ)", "leakage (W)")
	lv := cfg.Energy.Levels
	row := func(name string, size uint64, ways int, l energy.Level) {
		delay := fmt.Sprintf("%d", lv[l].ParallelDelay())
		e := fmt.Sprintf("%.4f", lv[l].ParallelNJ())
		if lv[l].TagNJ > 0 {
			delay = fmt.Sprintf("tag %d / data %d", lv[l].TagDelay, lv[l].DataDelay)
			e = fmt.Sprintf("tag %.3f / data %.3f", lv[l].TagNJ, lv[l].DataNJ)
		}
		t.AddRow(name, sizeStr(size), fmt.Sprintf("%d", ways), delay, e, fmt.Sprintf("%.4f", lv[l].LeakW))
	}
	row("L1 (private)", cfg.L1.SizeBytes, cfg.L1.Ways, energy.L1)
	row("L2 (private)", cfg.L2.SizeBytes, cfg.L2.Ways, energy.L2)
	row("L3 (private)", cfg.L3.SizeBytes, cfg.L3.Ways, energy.L3)
	row("L4 (shared)", cfg.L4.SizeBytes, cfg.L4.Ways, energy.L4)
	t.AddRow("Prediction Table", sizeStr(cfg.PTBytes), "direct-mapped",
		fmt.Sprintf("access %d + wire %d", cfg.Energy.PTDelay, cfg.Energy.PTWireDelay),
		fmt.Sprintf("%.4f", cfg.Energy.PTAccessNJ), "-")
	return t
}

func sizeStr(b uint64) string {
	switch {
	case b >= 1<<20 && b%(1<<20) == 0:
		return fmt.Sprintf("%dM", b>>20)
	case b >= 1<<10 && b%(1<<10) == 0:
		return fmt.Sprintf("%dK", b>>10)
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// Fig1CacheSizeTrend reproduces the literal Figure 1: the capacities
// and rough introduction years of each cache level in commercial
// processors — the "bigger and deeper" trend that motivates the paper.
// The data is transcribed from the figure; it involves no simulation.
func (r *Runner) Fig1CacheSizeTrend() *Figure {
	t := stats.NewTable("Hardware cache levels in commercial processors: introduction era and typical capacity growth",
		"level", "appeared (approx.)", "early size", "size by 2012", "role")
	t.AddRow("L1", "1987", "4-16K", "32-64K", "minimise access time")
	t.AddRow("L2", "1992", "128-256K", "256K-1M", "latency/hit-rate balance")
	t.AddRow("L3", "2002", "1-2M", "4-32M", "maximise hit rate")
	t.AddRow("L4", "2012", "32-128M", "64-128M (eDRAM)", "off-chip traffic filter")
	return &Figure{
		ID:      "Fig 1",
		Caption: "More levels were introduced over the decades and every level keeps growing; deep 4-level hierarchies make full-hierarchy misses expensive in both latency and energy.",
		Table:   t,
	}
}

// Fig1EnergyBreakdown reproduces the Section I motivation: in the base
// configuration the infrequently accessed L3/L4 consume the bulk
// (~80%) of the dynamic cache energy.
func (r *Runner) Fig1EnergyBreakdown() (*Figure, error) {
	var jobs []job
	for _, wl := range r.opts.Workloads {
		jobs = append(jobs, r.baseJob(wl))
	}
	if err := r.run(jobs); err != nil {
		return nil, err
	}
	t := stats.NewTable("Share of dynamic cache energy by level (Base)", r.columns("level")...)
	shares := make([][]float64, energy.NumLevels)
	for _, wl := range r.opts.Workloads {
		res, err := r.resultFor(r.baseJob(wl))
		if err != nil {
			return nil, err
		}
		total := res.DynamicNJ()
		for l := energy.L1; l < energy.NumLevels; l++ {
			shares[l] = append(shares[l], res.Dynamic.LevelNJ(l)/total)
		}
	}
	for l := energy.L1; l < energy.NumLevels; l++ {
		cells := []string{l.String()}
		for _, v := range shares[l] {
			cells = append(cells, stats.Pct(v, false))
		}
		cells = append(cells, stats.Pct(stats.Mean(shares[l]), false))
		t.AddRow(cells...)
	}
	return &Figure{
		ID:      "Fig 1 (energy motivation)",
		Caption: "Lower levels (L3+L4) consume the overwhelming share of dynamic cache energy despite being accessed infrequently (paper: ~80%).",
		Table:   t,
	}, nil
}

// schemeMetricTable renders one row per scheme with a per-workload
// metric against the Base run.
func (r *Runner) schemeMetricTable(title string, schemes []sim.Scheme,
	metric func(res, base *sim.Result) float64, signed bool) (*stats.Table, error) {
	if err := r.run(r.headlineJobs()); err != nil {
		return nil, err
	}
	t := stats.NewTable(title, r.columns("scheme")...)
	for _, s := range schemes {
		cells := []string{s.String()}
		var vals []float64
		for _, wl := range r.opts.Workloads {
			base, err := r.resultFor(r.baseJob(wl))
			if err != nil {
				return nil, err
			}
			res, err := r.resultFor(r.schemeJob(wl, s))
			if err != nil {
				return nil, err
			}
			v := metric(res, base)
			vals = append(vals, v)
			cells = append(cells, stats.Pct(v, signed))
		}
		cells = append(cells, stats.Pct(stats.Mean(vals), signed))
		t.AddRow(cells...)
	}
	return t, nil
}

// Fig6Speedup reproduces Figure 6: performance speedup of Oracle, CBF,
// Phased Cache and ReDHiP over the Base case.
func (r *Runner) Fig6Speedup() (*Figure, error) {
	t, err := r.schemeMetricTable("Performance speedup vs Base",
		[]sim.Scheme{sim.Oracle, sim.CBF, sim.Phased, sim.ReDHiP},
		func(res, base *sim.Result) float64 { return res.Speedup(base) }, true)
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID:      "Fig 6",
		Caption: "Paper: ReDHiP +8% average (Oracle +13%, CBF <+4%, Phased -3%).",
		Table:   t,
	}, nil
}

// Fig7DynamicEnergy reproduces Figure 7: dynamic energy consumption
// normalised to Base (lower is better).
func (r *Runner) Fig7DynamicEnergy() (*Figure, error) {
	t, err := r.schemeMetricTable("Dynamic energy normalised to Base",
		[]sim.Scheme{sim.Oracle, sim.CBF, sim.Phased, sim.ReDHiP},
		func(res, base *sim.Result) float64 { return res.DynamicEnergyRatio(base) }, false)
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID:      "Fig 7",
		Caption: "Paper: ReDHiP 39% of base (61% saving); Oracle 29%, CBF 82%, Phased 45%.",
		Table:   t,
	}, nil
}

// Fig8Metric reproduces Figure 8: the performance-energy metric, the
// product of performance gain and total (dynamic+static) energy saving.
func (r *Runner) Fig8Metric() (*Figure, error) {
	if err := r.run(r.headlineJobs()); err != nil {
		return nil, err
	}
	t := stats.NewTable("Performance-energy metric (higher is better)", r.columns("scheme")...)
	for _, s := range []sim.Scheme{sim.CBF, sim.Phased, sim.ReDHiP} {
		cells := []string{s.String()}
		var vals []float64
		for _, wl := range r.opts.Workloads {
			base, err := r.resultFor(r.baseJob(wl))
			if err != nil {
				return nil, err
			}
			res, err := r.resultFor(r.schemeJob(wl, s))
			if err != nil {
				return nil, err
			}
			v := res.PerformanceEnergyMetric(base)
			vals = append(vals, v)
			cells = append(cells, fmt.Sprintf("%.3f", v))
		}
		cells = append(cells, fmt.Sprintf("%.3f", stats.Mean(vals)))
		t.AddRow(cells...)
	}
	return &Figure{
		ID:      "Fig 8",
		Caption: "Paper: ReDHiP achieves by far the best performance-energy trade-off.",
		Table:   t,
	}, nil
}

// hitRateFigure renders per-level hit rates for one scheme.
func (r *Runner) hitRateFigure(id, caption string, scheme sim.Scheme) (*Figure, error) {
	var jobs []job
	for _, wl := range r.opts.Workloads {
		jobs = append(jobs, r.schemeJob(wl, scheme))
	}
	if err := r.run(jobs); err != nil {
		return nil, err
	}
	t := stats.NewTable(fmt.Sprintf("Per-level hit rates (%s)", scheme), r.columns("level")...)
	for l := energy.L1; l < energy.NumLevels; l++ {
		cells := []string{l.String()}
		var vals []float64
		for _, wl := range r.opts.Workloads {
			res, err := r.resultFor(r.schemeJob(wl, scheme))
			if err != nil {
				return nil, err
			}
			v := res.HitRate(l)
			vals = append(vals, v)
			cells = append(cells, stats.Pct(v, false))
		}
		cells = append(cells, stats.Pct(stats.Mean(vals), false))
		t.AddRow(cells...)
	}
	return &Figure{ID: id, Caption: caption, Table: t}, nil
}

// Fig9HitRatesBase reproduces Figure 9: hit rate of each cache level in
// the base case.
func (r *Runner) Fig9HitRatesBase() (*Figure, error) {
	return r.hitRateFigure("Fig 9", "Base-case per-level hit rates.", sim.Base)
}

// Fig10HitRatesReDHiP reproduces Figure 10: hit rates with ReDHiP.
// Skipped lookups raise L2/L3/L4 hit rates (paper: +14%/+12%/+18%).
func (r *Runner) Fig10HitRatesReDHiP() (*Figure, error) {
	return r.hitRateFigure("Fig 10", "Per-level hit rates with ReDHiP; paper: L2/L3/L4 improve by 14%/12%/18% average.", sim.ReDHiP)
}

// Fig11TableSizes are the prediction-table capacities of Figure 11 at
// paper scale.
var Fig11TableSizes = []uint64{64 << 10, 128 << 10, 256 << 10, 512 << 10, 1 << 20, 2 << 20}

// Fig11TableSize reproduces Figure 11: ReDHiP dynamic energy as the
// table shrinks from 2MB to 64KB (prediction overhead ignored, as in
// the paper's sensitivity study).
func (r *Runner) Fig11TableSize() (*Figure, error) {
	scale := r.opts.Base.WorkloadScale
	mkJob := func(wl string, paperSize uint64) job {
		cfg := r.opts.Base.WithScheme(sim.ReDHiP)
		cfg.EnablePrefetch = false
		cfg.PTBytes = paperSize / scale
		cfg.IgnorePredictionOverhead = true
		return job{workload: wl, cfg: cfg}
	}
	var jobs []job
	for _, wl := range r.opts.Workloads {
		jobs = append(jobs, r.baseJob(wl))
		for _, sz := range Fig11TableSizes {
			jobs = append(jobs, mkJob(wl, sz))
		}
	}
	if err := r.run(jobs); err != nil {
		return nil, err
	}
	t := stats.NewTable("ReDHiP dynamic energy vs prediction table size (normalised to Base; overhead ignored)",
		r.columns("table size")...)
	for i := len(Fig11TableSizes) - 1; i >= 0; i-- {
		sz := Fig11TableSizes[i]
		cells := []string{sizeStr(sz)}
		var vals []float64
		for _, wl := range r.opts.Workloads {
			base, err := r.resultFor(r.baseJob(wl))
			if err != nil {
				return nil, err
			}
			res, err := r.resultFor(mkJob(wl, sz))
			if err != nil {
				return nil, err
			}
			v := res.DynamicEnergyRatio(base)
			vals = append(vals, v)
			cells = append(cells, stats.Pct(v, false))
		}
		cells = append(cells, stats.Pct(stats.Mean(vals), false))
		t.AddRow(cells...)
	}
	return &Figure{
		ID:      "Fig 11",
		Caption: "Paper: gains become marginal beyond 512KB; the table is almost useless below 64KB.",
		Table:   t,
	}, nil
}

// Fig12RecalPeriods are the recalibration periods of Figure 12 at paper
// scale, in L1 misses; 0 means never recalibrate.
var Fig12RecalPeriods = []uint64{1, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000, 0}

// Fig12RecalPeriod reproduces Figure 12: ReDHiP dynamic energy as the
// recalibration period grows from every miss to never (overhead
// ignored, as in the paper).
func (r *Runner) Fig12RecalPeriod() (*Figure, error) {
	scale := r.opts.Base.WorkloadScale
	mkJob := func(wl string, paperPeriod uint64) job {
		cfg := r.opts.Base.WithScheme(sim.ReDHiP)
		cfg.EnablePrefetch = false
		cfg.IgnorePredictionOverhead = true
		cfg.RecalPeriod = paperPeriod / scale
		if paperPeriod > 0 && cfg.RecalPeriod == 0 {
			cfg.RecalPeriod = 1
		}
		return job{workload: wl, cfg: cfg}
	}
	var jobs []job
	for _, wl := range r.opts.Workloads {
		jobs = append(jobs, r.baseJob(wl))
		for _, p := range Fig12RecalPeriods {
			jobs = append(jobs, mkJob(wl, p))
		}
	}
	if err := r.run(jobs); err != nil {
		return nil, err
	}
	t := stats.NewTable("ReDHiP dynamic energy vs recalibration period in L1 misses (normalised to Base; overhead ignored)",
		r.columns("period")...)
	for _, p := range Fig12RecalPeriods {
		label := fmt.Sprintf("%d", p)
		switch {
		case p == 0:
			label = "never"
		case p >= 1_000_000:
			label = fmt.Sprintf("%dM", p/1_000_000)
		case p >= 1_000:
			label = fmt.Sprintf("%dK", p/1_000)
		}
		cells := []string{label}
		var vals []float64
		for _, wl := range r.opts.Workloads {
			base, err := r.resultFor(r.baseJob(wl))
			if err != nil {
				return nil, err
			}
			res, err := r.resultFor(mkJob(wl, p))
			if err != nil {
				return nil, err
			}
			v := res.DynamicEnergyRatio(base)
			vals = append(vals, v)
			cells = append(cells, stats.Pct(v, false))
		}
		cells = append(cells, stats.Pct(stats.Mean(vals), false))
		t.AddRow(cells...)
	}
	return &Figure{
		ID:      "Fig 12",
		Caption: "Paper: recalibrating at least every 1M L1 misses is critical; more frequent helps little.",
		Table:   t,
	}, nil
}

// Fig13Inclusion reproduces Figure 13: ReDHiP dynamic energy savings
// under the three inclusion policies, each normalised to the Base run
// with the same policy.
func (r *Runner) Fig13Inclusion() (*Figure, error) {
	policies := []sim.InclusionPolicy{sim.Inclusive, sim.Hybrid, sim.Exclusive}
	mkJob := func(wl string, pol sim.InclusionPolicy, s sim.Scheme) job {
		cfg := r.opts.Base.WithScheme(s).WithInclusion(pol)
		cfg.EnablePrefetch = false
		return job{workload: wl, cfg: cfg}
	}
	var jobs []job
	for _, wl := range r.opts.Workloads {
		for _, pol := range policies {
			jobs = append(jobs, mkJob(wl, pol, sim.Base), mkJob(wl, pol, sim.ReDHiP))
		}
	}
	if err := r.run(jobs); err != nil {
		return nil, err
	}
	t := stats.NewTable("ReDHiP dynamic energy savings by inclusion policy (vs Base under the same policy)",
		r.columns("policy")...)
	for _, pol := range policies {
		cells := []string{pol.String()}
		var vals []float64
		for _, wl := range r.opts.Workloads {
			base, err := r.resultFor(mkJob(wl, pol, sim.Base))
			if err != nil {
				return nil, err
			}
			res, err := r.resultFor(mkJob(wl, pol, sim.ReDHiP))
			if err != nil {
				return nil, err
			}
			v := 1 - res.DynamicEnergyRatio(base)
			vals = append(vals, v)
			cells = append(cells, stats.Pct(v, false))
		}
		cells = append(cells, stats.Pct(stats.Mean(vals), false))
		t.AddRow(cells...)
	}
	return &Figure{
		ID:      "Fig 13",
		Caption: "Paper: hybrid ~= inclusive; exclusive saves ~15% less but still >40% over its base.",
		Table:   t,
	}, nil
}

// prefetchJob builds the SP/ReDHiP combination runs of Figures 14-15.
func (r *Runner) prefetchJob(wl string, scheme sim.Scheme, pf bool) job {
	cfg := r.opts.Base.WithScheme(scheme).WithPrefetch(pf)
	return job{workload: wl, cfg: cfg}
}

// Fig14PrefetchSpeedup reproduces Figure 14: speedup of stride prefetch
// only, ReDHiP only, and both combined, over a base with neither.
func (r *Runner) Fig14PrefetchSpeedup() (*Figure, error) {
	return r.prefetchFigure("Fig 14",
		"Paper: SP and ReDHiP speedups are complementary and combine additively.",
		"Speedup vs Base (no prefetch, no prediction)",
		func(res, base *sim.Result) float64 { return res.Speedup(base) }, true)
}

// Fig15PrefetchEnergy reproduces Figure 15: dynamic energy of the same
// three configurations normalised to the no-mechanism base.
func (r *Runner) Fig15PrefetchEnergy() (*Figure, error) {
	return r.prefetchFigure("Fig 15",
		"Paper: prefetching alone costs energy; ReDHiP offsets it; the combination lands between the two.",
		"Dynamic energy normalised to Base (no prefetch, no prediction)",
		func(res, base *sim.Result) float64 { return res.DynamicEnergyRatio(base) }, false)
}

func (r *Runner) prefetchFigure(id, caption, title string,
	metric func(res, base *sim.Result) float64, signed bool) (*Figure, error) {
	type variant struct {
		name   string
		scheme sim.Scheme
		pf     bool
	}
	variants := []variant{
		{"SP only", sim.Base, true},
		{"ReDHiP only", sim.ReDHiP, false},
		{"SP+ReDHiP", sim.ReDHiP, true},
	}
	var jobs []job
	for _, wl := range r.opts.Workloads {
		jobs = append(jobs, r.baseJob(wl))
		for _, v := range variants {
			jobs = append(jobs, r.prefetchJob(wl, v.scheme, v.pf))
		}
	}
	if err := r.run(jobs); err != nil {
		return nil, err
	}
	t := stats.NewTable(title, r.columns("mechanism")...)
	for _, v := range variants {
		cells := []string{v.name}
		var vals []float64
		for _, wl := range r.opts.Workloads {
			base, err := r.resultFor(r.baseJob(wl))
			if err != nil {
				return nil, err
			}
			res, err := r.resultFor(r.prefetchJob(wl, v.scheme, v.pf))
			if err != nil {
				return nil, err
			}
			m := metric(res, base)
			vals = append(vals, m)
			cells = append(cells, stats.Pct(m, signed))
		}
		cells = append(cells, stats.Pct(stats.Mean(vals), signed))
		t.AddRow(cells...)
	}
	return &Figure{ID: id, Caption: caption, Table: t}, nil
}

// All regenerates every table and figure of the evaluation in paper
// order.
func (r *Runner) All() ([]*Figure, error) {
	figs := []*Figure{{
		ID:      "Table I",
		Caption: "Architecture parameters used by the simulation.",
		Table:   r.TableI(),
	}}
	figs = append(figs, r.Fig1CacheSizeTrend())
	builders := []func() (*Figure, error){
		r.Fig1EnergyBreakdown,
		r.Fig6Speedup,
		r.Fig7DynamicEnergy,
		r.Fig8Metric,
		r.Fig9HitRatesBase,
		r.Fig10HitRatesReDHiP,
		r.Fig11TableSize,
		r.Fig12RecalPeriod,
		r.Fig13Inclusion,
		r.Fig14PrefetchSpeedup,
		r.Fig15PrefetchEnergy,
	}
	for _, b := range builders {
		f, err := b()
		if err != nil {
			return nil, err
		}
		figs = append(figs, f)
	}
	return figs, nil
}
