package experiment

import (
	"runtime"
	"testing"

	"redhip/internal/sim"
)

func TestOptionsRejectNegativeParallelism(t *testing.T) {
	opts := Options{Parallelism: -1}
	if err := opts.Validate(); err == nil {
		t.Fatal("Validate accepted Parallelism = -1")
	}
	if _, err := NewRunner(Options{Parallelism: -3}); err == nil {
		t.Fatal("NewRunner accepted Parallelism = -3")
	}
}

func TestOptionsZeroParallelismDefaults(t *testing.T) {
	r := mustRunner(t, Options{})
	if want := runtime.GOMAXPROCS(0); r.opts.Parallelism != want {
		t.Fatalf("Parallelism defaulted to %d, want GOMAXPROCS(0) = %d", r.opts.Parallelism, want)
	}
}

// A scheme sweep with the trace store enabled must generate the
// workload stream exactly once and replay it for every other scheme —
// and produce the same results the store-less runner does.
func TestSchemeSweepSharesOneGeneration(t *testing.T) {
	cfg := sim.Smoke()
	cfg.RefsPerCore = 4_000
	schemes := sim.Schemes()

	cached := mustRunner(t, Options{Base: cfg, Seed: 1, Workloads: []string{"mcf"}})
	live := mustRunner(t, Options{Base: cfg, Seed: 1, Workloads: []string{"mcf"}, DisableTraceCache: true})

	got, err := cached.SchemeSweep("mcf", schemes)
	if err != nil {
		t.Fatal(err)
	}
	want, err := live.SchemeSweep("mcf", schemes)
	if err != nil {
		t.Fatal(err)
	}
	for i, sc := range schemes {
		if got[i].String() != want[i].String() {
			t.Errorf("%s: replayed sweep diverged from live generation:\n  replay: %s\n  live:   %s",
				sc, got[i], want[i])
		}
	}

	st, ok := cached.TraceCacheStats()
	if !ok {
		t.Fatal("trace cache reported disabled on the default runner")
	}
	if st.Misses != 1 {
		t.Errorf("trace cache misses = %d, want 1 (one generation per key)", st.Misses)
	}
	// The single-pass engine pulls the materialised trace once for the
	// whole sweep (every scheme shares the one front), so no replay
	// hits — down from len(schemes)-1 on the per-scheme path.
	if st.Hits != 0 {
		t.Errorf("trace cache hits = %d, want 0 (one Get per single-pass sweep)", st.Hits)
	}
	if _, ok := live.TraceCacheStats(); ok {
		t.Error("TraceCacheStats ok = true on a DisableTraceCache runner")
	}

	gen, simN := cached.PhaseNanos()
	if gen < 0 || simN <= 0 {
		t.Errorf("PhaseNanos = (%d, %d), want non-negative generate and positive simulate", gen, simN)
	}
}
