// Package experiment defines one reproducible experiment per table and
// figure in the paper's evaluation (Section V) and a runner that
// executes the underlying simulations — in parallel across a worker
// pool, with memoisation so the many figures that share runs (e.g. the
// per-workload Base runs every normalisation needs) execute them once.
package experiment

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"

	"redhip/internal/faultinject"
	"redhip/internal/sim"
	"redhip/internal/simstate"
	"redhip/internal/tracestore"
	"redhip/internal/workload"
)

// jobKey identifies one memoised simulation: the workload name plus the
// full configuration, compared field-by-field. Using the struct itself
// as the map key replaces the old fmt.Sprintf("%s|%+v", ...) string
// keys — no formatting on every cache probe, and no risk of two
// configs colliding because they happen to print alike.
type jobKey struct {
	workload string
	cfg      sim.Config
}

// Compile-time guard: jobKey must stay comparable (adding a slice, map
// or function field to sim.Config would break it and this line).
var _ = map[jobKey]bool{}

// Options configure a Runner.
type Options struct {
	// Base is the starting configuration every experiment derives its
	// variants from. Defaults to sim.Scaled().
	Base sim.Config
	// Seed feeds the workload generators.
	Seed uint64
	// Workloads to evaluate; defaults to the paper's eleven.
	Workloads []string
	// Parallelism bounds concurrent simulations. Zero means "one per
	// available CPU" (runtime.GOMAXPROCS(0)); negative values are a
	// configuration error NewRunner rejects.
	Parallelism int
	// Progress, when non-nil, receives one line per completed run.
	Progress func(msg string)
	// OnRun, when non-nil, receives a structured notification after
	// every executed (non-memoised) run. Progress feeds humans; OnRun
	// feeds machine consumers such as redhip-serve's SSE stream. The
	// hook may be called concurrently from worker goroutines and must
	// treat the Result as read-only.
	OnRun func(RunUpdate)
	// Context, when non-nil, cancels in-flight work: once it is done,
	// workers stop picking up pending jobs and run methods return the
	// context's error. Individual simulations are not interrupted
	// mid-run — cancellation takes effect between runs.
	Context context.Context
	// DisableTraceCache turns off the materialise-once trace store, so
	// every run regenerates its reference stream from scratch (the
	// pre-cache behaviour; the sweep benchmark measures against it).
	DisableTraceCache bool
	// TraceCacheBytes bounds the trace store's resident records;
	// defaults to tracestore.DefaultBudgetBytes.
	TraceCacheBytes uint64
	// TraceCache, when non-nil, is a caller-owned store shared with
	// other runners (a session sweeping many figures keeps one store
	// across runner instances so each stream materialises once per
	// session, not once per runner). Mutually exclusive with
	// DisableTraceCache; TraceCacheBytes is ignored.
	TraceCache *tracestore.Store
	// Fault, when non-nil and the build carries the faultinject tag,
	// evaluates the "experiment.run" injection point before every
	// executed run — per-run error, panic and latency injection. Nil
	// falls back to the process-wide injector (faultinject.Active). In
	// builds without the tag the field is inert.
	Fault *faultinject.Injector
	// IntraParallelism bounds the worker goroutines inside one
	// single-pass multi-scheme simulation (sim.RunMulti back halves plus
	// recalibration fan-out). Zero means "auto": divide GOMAXPROCS by
	// the job-level Parallelism so the two layers combined never
	// oversubscribe the machine (see intraWorkers). Negative values are
	// a configuration error. Results are unaffected either way — the
	// knob trades goroutines for wall time only.
	IntraParallelism int
	// DisableSinglePass forces SchemeSweep onto the legacy path: one
	// independent sim.Run per scheme through the job pool. The sweep
	// benchmark's live/cold/warm arms measure against this path; real
	// consumers leave it false and get the one-pass lockstep engine.
	DisableSinglePass bool
	// SnapshotCache, when non-nil, is a caller-owned warm-state snapshot
	// store shared with other runners: jobs with a warmup window warm
	// once per (geometry, workload, seed, warmup, scheme) lineage and
	// branch their measure phases from the cached blob (sim.Warm /
	// sim.RunFromSnapshot — bit-identical to cold runs by the golden
	// contract). Mutually exclusive with SnapshotCacheBytes.
	SnapshotCache *simstate.Store
	// SnapshotCacheBytes, when positive, enables a runner-owned snapshot
	// store with this byte budget. Zero leaves snapshotting off: warm
	// blobs cost memory, so reuse is opt-in.
	SnapshotCacheBytes uint64
}

// Validate rejects option values that fill cannot repair. A negative
// Parallelism used to silently run with NumCPU workers; now it is an
// explicit error, and only zero means "pick a default".
func (o *Options) Validate() error {
	if o.Parallelism < 0 {
		return fmt.Errorf("experiment: Parallelism must be >= 0 (0 = one worker per CPU), got %d", o.Parallelism)
	}
	if o.IntraParallelism < 0 {
		return fmt.Errorf("experiment: IntraParallelism must be >= 0 (0 = auto), got %d", o.IntraParallelism)
	}
	if o.DisableTraceCache && o.TraceCache != nil {
		return fmt.Errorf("experiment: DisableTraceCache and TraceCache are mutually exclusive")
	}
	if o.SnapshotCache != nil && o.SnapshotCacheBytes != 0 {
		return fmt.Errorf("experiment: SnapshotCache and SnapshotCacheBytes are mutually exclusive")
	}
	return nil
}

// intraWorkers resolves the per-pass worker count for a single-pass
// multi-scheme simulation so the two parallelism layers compose
// without oversubscribing: jobWorkers pool goroutines may each drive a
// pass of this many workers, and the product never exceeds procs
// (GOMAXPROCS). requested = 0 means auto (procs / jobWorkers); an
// explicit request is honoured up to the same cap. Floor 1: a machine
// smaller than the job pool still makes progress, it just timeshares.
func intraWorkers(requested, jobWorkers, procs int) int {
	if jobWorkers < 1 {
		jobWorkers = 1
	}
	cap := procs / jobWorkers
	if cap < 1 {
		cap = 1
	}
	n := requested
	if n <= 0 || n > cap {
		n = cap
	}
	return n
}

func (o *Options) fill() {
	if o.Base.Cores == 0 {
		o.Base = sim.Scaled()
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if len(o.Workloads) == 0 {
		o.Workloads = workload.BenchmarkNames()
	}
	if o.Parallelism == 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	if o.Context == nil {
		o.Context = context.Background()
	}
}

// RunUpdate describes one completed simulation run, delivered through
// Options.OnRun.
type RunUpdate struct {
	Workload  string
	Scheme    sim.Scheme
	Inclusion sim.InclusionPolicy
	// Result is the run's output (nil when Err is set). It is shared
	// with the runner's memo cache; callers must not mutate it.
	Result *sim.Result
	Err    error
	// Completed counts runs this runner has executed so far (memoised
	// cache hits do not re-fire the hook and are not counted).
	Completed int
}

// Runner executes and memoises simulation runs.
type Runner struct {
	opts   Options
	traces *tracestore.Store // nil when DisableTraceCache
	snaps  *simstate.Store   // nil unless snapshot branching is enabled

	mu       sync.Mutex
	cache    map[jobKey]*sim.Result
	errs     map[jobKey]error
	genNanos int64 // summed Perf.GenerateNanos over executed runs
	simNanos int64 // summed Perf.SimulateNanos over executed runs
}

// NewRunner builds a runner, or fails on invalid options.
func NewRunner(opts Options) (*Runner, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts.fill()
	r := &Runner{
		opts:  opts,
		cache: make(map[jobKey]*sim.Result),
		errs:  make(map[jobKey]error),
	}
	switch {
	case opts.TraceCache != nil:
		r.traces = opts.TraceCache
	case !opts.DisableTraceCache:
		r.traces = tracestore.New(opts.TraceCacheBytes)
	}
	switch {
	case opts.SnapshotCache != nil:
		r.snaps = opts.SnapshotCache
	case opts.SnapshotCacheBytes > 0:
		r.snaps = simstate.NewStore(opts.SnapshotCacheBytes)
	}
	return r, nil
}

// Workloads returns the evaluated workload names.
func (r *Runner) Workloads() []string { return r.opts.Workloads }

// BaseConfig returns a copy of the base configuration.
func (r *Runner) BaseConfig() sim.Config { return r.opts.Base }

// job is one (workload, config) simulation.
type job struct {
	workload string
	cfg      sim.Config
}

func (j job) key() jobKey {
	return jobKey{workload: j.workload, cfg: j.cfg}
}

// resultFor returns the memoised result for a job, running it if
// needed. Prefer prefetching batches with run() for parallelism.
func (r *Runner) resultFor(j job) (*sim.Result, error) {
	if err := r.run([]job{j}); err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.errs[j.key()]; err != nil {
		return nil, err
	}
	return r.cache[j.key()], nil
}

// run executes all not-yet-cached jobs on a fixed pool of worker
// goroutines: jobs flow through a channel to min(Parallelism, pending)
// workers instead of spawning one goroutine per job behind a
// semaphore, so a figure that wants hundreds of runs starts exactly as
// many goroutines as can make progress.
func (r *Runner) run(jobs []job) error {
	// Deduplicate against the cache under the lock.
	r.mu.Lock()
	pending := make([]job, 0, len(jobs))
	seen := make(map[jobKey]bool, len(jobs))
	for _, j := range jobs {
		k := j.key()
		if seen[k] {
			continue
		}
		seen[k] = true
		if _, ok := r.cache[k]; ok {
			continue
		}
		if _, ok := r.errs[k]; ok {
			continue
		}
		pending = append(pending, j)
	}
	r.mu.Unlock()
	if len(pending) == 0 {
		return r.firstError(jobs)
	}

	workers := r.opts.Parallelism
	if workers > len(pending) {
		workers = len(pending)
	}
	ctx := r.opts.Context
	work := make(chan job)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for j := range work {
				// Drain without executing once the context is done, so
				// the feeder below never blocks on a dead pool.
				if ctx.Err() != nil {
					continue
				}
				r.runOne(j)
			}
		}()
	}
	for _, j := range pending {
		work <- j
	}
	close(work)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	return r.firstError(jobs)
}

// PanicError is a panic recovered from a simulation run, converted to
// an ordinary error so one corrupted run fails its job instead of
// killing the worker pool (or, unrecovered in a pool goroutine, the
// whole process). Stack is captured at the panic site; redhip-serve
// appends it to the failing job's event log.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("experiment: run panicked: %v", e.Value)
}

// runOne executes a single job and records its outcome.
func (r *Runner) runOne(j job) {
	res, err := r.executeIsolated(j)
	r.mu.Lock()
	if err != nil {
		r.errs[j.key()] = err
	} else {
		r.cache[j.key()] = res
	}
	completed := len(r.cache) + len(r.errs)
	r.mu.Unlock()
	if r.opts.OnRun != nil {
		r.opts.OnRun(RunUpdate{
			Workload:  j.workload,
			Scheme:    j.cfg.Scheme,
			Inclusion: j.cfg.Inclusion,
			Result:    res,
			Err:       err,
			Completed: completed,
		})
	}
	if r.opts.Progress != nil {
		if err != nil {
			r.opts.Progress(fmt.Sprintf("%s/%s: ERROR %v", j.workload, j.cfg.Scheme, err))
		} else {
			r.opts.Progress(fmt.Sprintf("%s/%s/%s done (%d refs)", j.workload, j.cfg.Scheme, j.cfg.Inclusion, res.Refs))
		}
	}
}

// firstError returns the error of the first failed job, ordering
// deterministically by (workload, scheme, inclusion) and then by input
// position, regardless of which worker finished first.
func (r *Runner) firstError(jobs []job) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	ordered := make([]job, len(jobs))
	copy(ordered, jobs)
	sort.SliceStable(ordered, func(a, b int) bool {
		ja, jb := ordered[a], ordered[b]
		if ja.workload != jb.workload {
			return ja.workload < jb.workload
		}
		if ja.cfg.Scheme != jb.cfg.Scheme {
			return ja.cfg.Scheme < jb.cfg.Scheme
		}
		return ja.cfg.Inclusion < jb.cfg.Inclusion
	})
	for _, j := range ordered {
		if err := r.errs[j.key()]; err != nil {
			return err
		}
	}
	return nil
}

// executeIsolated is execute behind the runner's panic isolation: a
// panicking simulation (or injected fault) becomes a *PanicError
// recorded like any other run failure, and the worker goroutine
// survives to drain its channel. The faultinject seam sits inside the
// recover scope so injected panics exercise exactly this path.
func (r *Runner) executeIsolated(j job) (res *sim.Result, err error) {
	defer func() {
		if v := recover(); v != nil {
			res, err = nil, &PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	if faultinject.Enabled {
		in := r.opts.Fault
		if in == nil {
			in = faultinject.Active()
		}
		if ferr := in.Point(faultinject.PointExperimentRun); ferr != nil {
			return nil, ferr
		}
	}
	return r.execute(j)
}

// buildSources constructs the per-core reference streams for one run:
// fresh replay cursors over a materialised stream when the trace store
// is enabled, live generators otherwise.
func (r *Runner) buildSources(workloadName string, cfg sim.Config) ([]workload.Source, error) {
	if r.traces != nil {
		mat, err := r.traces.Get(tracestore.Key{
			Workload:    workloadName,
			Cores:       cfg.Cores,
			Scale:       cfg.WorkloadScale,
			Seed:        r.opts.Seed,
			RefsPerCore: cfg.WarmupRefsPerCore + cfg.RefsPerCore,
		})
		if err != nil {
			return nil, err
		}
		return mat.Sources(), nil
	}
	return workload.Sources(workloadName, cfg.Cores, cfg.WorkloadScale, r.opts.Seed)
}

// execute runs one simulation from scratch. With the trace store
// enabled the reference stream comes from a materialised replay —
// generated once per (workload, cores, scale, seed, refs) key and
// shared read-only across every scheme and inclusion variant that needs
// it; otherwise each run regenerates it live.
func (r *Runner) execute(j job) (*sim.Result, error) {
	srcs, err := r.buildSources(j.workload, j.cfg)
	if err != nil {
		return nil, err
	}
	res, err := r.runSolo(j, srcs)
	if err != nil {
		return nil, fmt.Errorf("%s/%s: %w", j.workload, j.cfg.Scheme, err)
	}
	r.mu.Lock()
	r.genNanos += res.Perf.GenerateNanos
	r.simNanos += res.Perf.SimulateNanos
	r.mu.Unlock()
	// Reports label rows by workload name; mix's first source is a SPEC
	// benchmark, so fix the label up here.
	res.Workload = j.workload
	return res, nil
}

// runSolo executes one simulation, branching from a cached warm-state
// snapshot when snapshot branching is enabled: a store hit skips the
// warmup phase entirely; a miss warms once, publishes the blob, and
// measures through the same restore path so both branches are pinned
// bit-identical by the golden contract. Every unusable-snapshot
// condition (sim.ErrSnapshot) degrades to a plain cold run.
func (r *Runner) runSolo(j job, srcs []workload.Source) (*sim.Result, error) {
	if r.snaps == nil || j.cfg.WarmupRefsPerCore == 0 {
		return sim.Run(j.cfg, srcs)
	}
	// The warm key is derived from the first source's name — for mix
	// workloads that is the leading SPEC component, matching what
	// sim.Warm records in the blob's metadata.
	key := simstate.Key(sim.WarmKey(j.cfg, srcs[0].Name(), r.opts.Seed))
	blob, hit := r.snaps.Get(key)
	if !hit {
		warmed, werr := sim.Warm(j.cfg, srcs, r.opts.Seed)
		if werr != nil {
			if errors.Is(werr, sim.ErrSnapshot) {
				// Sources that can't checkpoint (or a warmup-free config
				// racing a store reconfiguration): run cold. Warm rejects
				// these before consuming any records.
				return sim.Run(j.cfg, srcs)
			}
			return nil, werr
		}
		r.snaps.Put(key, warmed)
		blob = warmed
	}
	res, err := sim.RunFromSnapshot(j.cfg, blob, srcs, r.opts.Seed)
	if err != nil {
		if errors.Is(err, sim.ErrSnapshot) {
			// A stale or foreign blob may have partially re-seated the
			// source cursors before being rejected — rebuild them fresh
			// for the cold fallback.
			fresh, serr := r.buildSources(j.workload, j.cfg)
			if serr != nil {
				return nil, serr
			}
			return sim.Run(j.cfg, fresh)
		}
		return nil, err
	}
	r.snaps.RecordRestore(res.Perf.RestoreNanos)
	return res, nil
}

// SchemeSweep simulates one workload under each scheme at the base
// configuration, returning results in scheme order. By default all
// schemes ride one single-pass lockstep simulation (sim.RunMulti): the
// reference stream is decoded once and every scheme's back half
// consumes it in the same pass, bit-identical to independent runs.
// Options.DisableSinglePass reverts to one sim.Run per scheme through
// the job pool — the shape the sweep benchmark's legacy arms measure.
// Memoisation applies on both paths: already-cached schemes are
// excluded from the pass and served from the cache.
func (r *Runner) SchemeSweep(workloadName string, schemes []sim.Scheme) ([]*sim.Result, error) {
	jobs := make([]job, len(schemes))
	for i, sc := range schemes {
		cfg := r.opts.Base
		cfg.Scheme = sc
		jobs[i] = job{workload: workloadName, cfg: cfg}
	}
	if r.opts.DisableSinglePass {
		if err := r.run(jobs); err != nil {
			return nil, err
		}
	} else if err := r.runMultiPass(workloadName, jobs); err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*sim.Result, len(jobs))
	for i, j := range jobs {
		out[i] = r.cache[j.key()]
	}
	return out, nil
}

// runMultiPass executes the not-yet-cached jobs of one scheme sweep as
// a single sim.RunMulti pass and records per-scheme outcomes exactly
// like the job pool would: memo cache entries, OnRun notifications in
// scheme order, Progress lines, phase-time accumulation. Jobs must
// differ only in Scheme (SchemeSweep guarantees this).
func (r *Runner) runMultiPass(workloadName string, jobs []job) error {
	r.mu.Lock()
	pending := make([]job, 0, len(jobs))
	seen := make(map[jobKey]bool, len(jobs))
	for _, j := range jobs {
		k := j.key()
		if seen[k] {
			continue
		}
		seen[k] = true
		if _, ok := r.cache[k]; ok {
			continue
		}
		if _, ok := r.errs[k]; ok {
			continue
		}
		pending = append(pending, j)
	}
	r.mu.Unlock()
	if len(pending) == 0 {
		return r.firstError(jobs)
	}
	if err := r.opts.Context.Err(); err != nil {
		return err
	}

	schemes := make([]sim.Scheme, len(pending))
	for i, j := range pending {
		schemes[i] = j.cfg.Scheme
	}
	results, err := r.executeMultiIsolated(workloadName, pending[0].cfg, schemes)
	if err != nil && results == nil {
		// Pass-level failure (interrupt, source construction, panic):
		// every pending slot fails with the same cause.
		if r.opts.Context.Err() != nil {
			return r.opts.Context.Err()
		}
		results = make([]*sim.Result, len(pending))
	}
	for i, j := range pending {
		var res *sim.Result
		var runErr error
		if results[i] != nil {
			res = results[i]
			res.Workload = workloadName
		} else {
			runErr = fmt.Errorf("%s/%s: %w", workloadName, j.cfg.Scheme, err)
		}
		r.mu.Lock()
		if runErr != nil {
			r.errs[j.key()] = runErr
		} else {
			r.cache[j.key()] = res
			r.genNanos += res.Perf.GenerateNanos
			r.simNanos += res.Perf.SimulateNanos
		}
		completed := len(r.cache) + len(r.errs)
		r.mu.Unlock()
		if r.opts.OnRun != nil {
			r.opts.OnRun(RunUpdate{
				Workload:  workloadName,
				Scheme:    j.cfg.Scheme,
				Inclusion: j.cfg.Inclusion,
				Result:    res,
				Err:       runErr,
				Completed: completed,
			})
		}
		if r.opts.Progress != nil {
			if runErr != nil {
				r.opts.Progress(fmt.Sprintf("%s/%s: ERROR %v", workloadName, j.cfg.Scheme, runErr))
			} else {
				r.opts.Progress(fmt.Sprintf("%s/%s/%s done (%d refs, single-pass)", workloadName, j.cfg.Scheme, j.cfg.Inclusion, res.Refs))
			}
		}
	}
	return r.firstError(jobs)
}

// executeMultiIsolated runs one multi-scheme pass behind the same
// panic isolation and fault seam as per-scheme runs: the injection
// point fires once per pass (it replaces N single runs), and a panic
// fails the whole pass as a *PanicError.
func (r *Runner) executeMultiIsolated(workloadName string, base sim.Config, schemes []sim.Scheme) (results []*sim.Result, err error) {
	defer func() {
		if v := recover(); v != nil {
			results, err = nil, &PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	if faultinject.Enabled {
		in := r.opts.Fault
		if in == nil {
			in = faultinject.Active()
		}
		if ferr := in.Point(faultinject.PointExperimentRun); ferr != nil {
			return nil, ferr
		}
	}
	srcs, err := r.buildSources(workloadName, base)
	if err != nil {
		return nil, err
	}
	ctx := r.opts.Context
	opt := sim.MultiOptions{
		Parallelism: intraWorkers(r.opts.IntraParallelism, r.opts.Parallelism, runtime.GOMAXPROCS(0)),
		Interrupt:   func() error { return ctx.Err() },
	}
	if r.snaps == nil || base.WarmupRefsPerCore == 0 {
		return sim.RunMultiOpt(base, schemes, srcs, opt)
	}

	// Snapshot branching: when every scheme's warm blob is cached the
	// pass restores all engines at the boundary and skips the warmup
	// walk; otherwise a cold pass runs with a sink that captures each
	// scheme's warm state for future passes. sim.ErrSnapshot from the
	// restored pass degrades to the cold path over fresh sources.
	seed := r.opts.Seed
	name := srcs[0].Name()
	keys := make([]simstate.Key, len(schemes))
	blobs := make([][]byte, len(schemes))
	allHit := true
	for i, sc := range schemes {
		keys[i] = simstate.Key(sim.WarmKey(base.WithScheme(sc), name, seed))
		b, ok := r.snaps.Get(keys[i])
		if !ok {
			allHit = false
		}
		blobs[i] = b
	}
	opt.SnapshotSeed = seed
	if allHit {
		ropt := opt
		ropt.Snapshots = blobs
		results, rerr := sim.RunMultiOpt(base, schemes, srcs, ropt)
		if rerr == nil {
			for _, res := range results {
				if res != nil {
					r.snaps.RecordRestore(res.Perf.RestoreNanos)
				}
			}
			return results, nil
		}
		if !errors.Is(rerr, sim.ErrSnapshot) {
			return nil, rerr
		}
		// A rejected blob may have partially re-seated the replay
		// cursors — rebuild sources before falling back cold.
		srcs, err = r.buildSources(workloadName, base)
		if err != nil {
			return nil, err
		}
	}
	opt.SnapshotSink = func(sc sim.Scheme, blob []byte) {
		for i, s := range schemes {
			if s == sc {
				r.snaps.Put(keys[i], blob)
			}
		}
	}
	return sim.RunMultiOpt(base, schemes, srcs, opt)
}

// SnapshotStats snapshots the warm-state store's counters; ok is false
// when snapshot branching is disabled.
func (r *Runner) SnapshotStats() (st simstate.StoreStats, ok bool) {
	if r.snaps == nil {
		return simstate.StoreStats{}, false
	}
	return r.snaps.Stats(), true
}

// TraceCacheStats snapshots the trace store's counters; ok is false
// when the store is disabled.
func (r *Runner) TraceCacheStats() (st tracestore.Stats, ok bool) {
	if r.traces == nil {
		return tracestore.Stats{}, false
	}
	return r.traces.Stats(), true
}

// PhaseNanos returns cumulative wall time the runner's simulations
// spent generating (or replaying) reference streams versus walking the
// hierarchy. Worker parallelism overlaps runs, so the sum can exceed
// elapsed wall time; the split is what matters.
func (r *Runner) PhaseNanos() (generate, simulate int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.genNanos, r.simNanos
}

// CacheSize reports how many runs are memoised (for tests/diagnostics).
func (r *Runner) CacheSize() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.cache)
}
