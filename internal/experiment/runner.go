// Package experiment defines one reproducible experiment per table and
// figure in the paper's evaluation (Section V) and a runner that
// executes the underlying simulations — in parallel across a worker
// pool, with memoisation so the many figures that share runs (e.g. the
// per-workload Base runs every normalisation needs) execute them once.
package experiment

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"redhip/internal/sim"
	"redhip/internal/workload"
)

// jobKey identifies one memoised simulation: the workload name plus the
// full configuration, compared field-by-field. Using the struct itself
// as the map key replaces the old fmt.Sprintf("%s|%+v", ...) string
// keys — no formatting on every cache probe, and no risk of two
// configs colliding because they happen to print alike.
type jobKey struct {
	workload string
	cfg      sim.Config
}

// Compile-time guard: jobKey must stay comparable (adding a slice, map
// or function field to sim.Config would break it and this line).
var _ = map[jobKey]bool{}

// Options configure a Runner.
type Options struct {
	// Base is the starting configuration every experiment derives its
	// variants from. Defaults to sim.Scaled().
	Base sim.Config
	// Seed feeds the workload generators.
	Seed uint64
	// Workloads to evaluate; defaults to the paper's eleven.
	Workloads []string
	// Parallelism bounds concurrent simulations; defaults to NumCPU.
	Parallelism int
	// Progress, when non-nil, receives one line per completed run.
	Progress func(msg string)
}

func (o *Options) fill() {
	if o.Base.Cores == 0 {
		o.Base = sim.Scaled()
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if len(o.Workloads) == 0 {
		o.Workloads = workload.BenchmarkNames()
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.NumCPU()
	}
}

// Runner executes and memoises simulation runs.
type Runner struct {
	opts Options

	mu    sync.Mutex
	cache map[jobKey]*sim.Result
	errs  map[jobKey]error
}

// NewRunner builds a runner.
func NewRunner(opts Options) *Runner {
	opts.fill()
	return &Runner{
		opts:  opts,
		cache: make(map[jobKey]*sim.Result),
		errs:  make(map[jobKey]error),
	}
}

// Workloads returns the evaluated workload names.
func (r *Runner) Workloads() []string { return r.opts.Workloads }

// BaseConfig returns a copy of the base configuration.
func (r *Runner) BaseConfig() sim.Config { return r.opts.Base }

// job is one (workload, config) simulation.
type job struct {
	workload string
	cfg      sim.Config
}

func (j job) key() jobKey {
	return jobKey{workload: j.workload, cfg: j.cfg}
}

// resultFor returns the memoised result for a job, running it if
// needed. Prefer prefetching batches with run() for parallelism.
func (r *Runner) resultFor(j job) (*sim.Result, error) {
	if err := r.run([]job{j}); err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.errs[j.key()]; err != nil {
		return nil, err
	}
	return r.cache[j.key()], nil
}

// run executes all not-yet-cached jobs on a fixed pool of worker
// goroutines: jobs flow through a channel to min(Parallelism, pending)
// workers instead of spawning one goroutine per job behind a
// semaphore, so a figure that wants hundreds of runs starts exactly as
// many goroutines as can make progress.
func (r *Runner) run(jobs []job) error {
	// Deduplicate against the cache under the lock.
	r.mu.Lock()
	pending := make([]job, 0, len(jobs))
	seen := make(map[jobKey]bool, len(jobs))
	for _, j := range jobs {
		k := j.key()
		if seen[k] {
			continue
		}
		seen[k] = true
		if _, ok := r.cache[k]; ok {
			continue
		}
		if _, ok := r.errs[k]; ok {
			continue
		}
		pending = append(pending, j)
	}
	r.mu.Unlock()
	if len(pending) == 0 {
		return r.firstError(jobs)
	}

	workers := r.opts.Parallelism
	if workers > len(pending) {
		workers = len(pending)
	}
	work := make(chan job)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for j := range work {
				r.runOne(j)
			}
		}()
	}
	for _, j := range pending {
		work <- j
	}
	close(work)
	wg.Wait()
	return r.firstError(jobs)
}

// runOne executes a single job and records its outcome.
func (r *Runner) runOne(j job) {
	res, err := r.execute(j)
	r.mu.Lock()
	if err != nil {
		r.errs[j.key()] = err
	} else {
		r.cache[j.key()] = res
	}
	r.mu.Unlock()
	if r.opts.Progress != nil {
		if err != nil {
			r.opts.Progress(fmt.Sprintf("%s/%s: ERROR %v", j.workload, j.cfg.Scheme, err))
		} else {
			r.opts.Progress(fmt.Sprintf("%s/%s/%s done (%d refs)", j.workload, j.cfg.Scheme, j.cfg.Inclusion, res.Refs))
		}
	}
}

// firstError returns the error of the first failed job, ordering
// deterministically by (workload, scheme, inclusion) and then by input
// position, regardless of which worker finished first.
func (r *Runner) firstError(jobs []job) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	ordered := make([]job, len(jobs))
	copy(ordered, jobs)
	sort.SliceStable(ordered, func(a, b int) bool {
		ja, jb := ordered[a], ordered[b]
		if ja.workload != jb.workload {
			return ja.workload < jb.workload
		}
		if ja.cfg.Scheme != jb.cfg.Scheme {
			return ja.cfg.Scheme < jb.cfg.Scheme
		}
		return ja.cfg.Inclusion < jb.cfg.Inclusion
	})
	for _, j := range ordered {
		if err := r.errs[j.key()]; err != nil {
			return err
		}
	}
	return nil
}

// execute runs one simulation from scratch.
func (r *Runner) execute(j job) (*sim.Result, error) {
	srcs, err := workload.Sources(j.workload, j.cfg.Cores, j.cfg.WorkloadScale, r.opts.Seed)
	if err != nil {
		return nil, err
	}
	res, err := sim.Run(j.cfg, srcs)
	if err != nil {
		return nil, fmt.Errorf("%s/%s: %w", j.workload, j.cfg.Scheme, err)
	}
	// Reports label rows by workload name; mix's first source is a SPEC
	// benchmark, so fix the label up here.
	res.Workload = j.workload
	return res, nil
}

// CacheSize reports how many runs are memoised (for tests/diagnostics).
func (r *Runner) CacheSize() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.cache)
}
