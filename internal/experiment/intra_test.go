package experiment

import (
	"testing"
)

// TestIntraWorkersNeverOversubscribes sweeps the combined-parallelism
// grid: whatever the job pool width, the intra-pass request and the
// machine size, jobWorkers x intraWorkers must never exceed GOMAXPROCS
// (with the floor-1 exception when the job pool alone is already wider
// than the machine — then each pass gets exactly one worker and the
// product equals the job pool width, the minimum possible).
func TestIntraWorkersNeverOversubscribes(t *testing.T) {
	for _, procs := range []int{1, 2, 4, 8, 16, 96} {
		for _, jobWorkers := range []int{1, 2, 3, 4, 8, 32} {
			for _, requested := range []int{0, 1, 2, 7, 64} {
				got := intraWorkers(requested, jobWorkers, procs)
				if got < 1 {
					t.Fatalf("intraWorkers(%d, %d, %d) = %d, want >= 1", requested, jobWorkers, procs, got)
				}
				limit := procs
				if jobWorkers > procs {
					limit = jobWorkers // floor-1 timesharing case
				}
				if total := jobWorkers * got; total > limit {
					t.Errorf("intraWorkers(%d, %d, %d) = %d: %d total workers oversubscribe %d procs",
						requested, jobWorkers, procs, got, total, limit)
				}
				if requested > 0 && got > requested {
					t.Errorf("intraWorkers(%d, %d, %d) = %d exceeds the explicit request",
						requested, jobWorkers, procs, got)
				}
			}
		}
	}
}

// TestIntraWorkersAuto pins the auto split: an unset request divides
// the machine evenly across the job pool.
func TestIntraWorkersAuto(t *testing.T) {
	cases := []struct{ jobWorkers, procs, want int }{
		{1, 8, 8},
		{2, 8, 4},
		{3, 8, 2},
		{8, 8, 1},
		{16, 8, 1},
		{1, 1, 1},
	}
	for _, c := range cases {
		if got := intraWorkers(0, c.jobWorkers, c.procs); got != c.want {
			t.Errorf("intraWorkers(0, %d, %d) = %d, want %d", c.jobWorkers, c.procs, got, c.want)
		}
	}
}

// TestOptionsRejectNegativeIntraParallelism mirrors the Parallelism
// validation: negative intra-pass parallelism is a configuration error,
// not a silent default.
func TestOptionsRejectNegativeIntraParallelism(t *testing.T) {
	opts := Options{IntraParallelism: -1}
	if err := opts.Validate(); err == nil {
		t.Fatal("Validate accepted IntraParallelism = -1")
	}
	if _, err := NewRunner(Options{IntraParallelism: -2}); err == nil {
		t.Fatal("NewRunner accepted IntraParallelism = -2")
	}
}
