package experiment

import (
	"fmt"

	"redhip/internal/energy"
	"redhip/internal/sim"
	"redhip/internal/stats"
)

// Check is one verified claim of the paper's evaluation.
type Check struct {
	// Name identifies the claim ("fig6: oracle bounds redhip", ...).
	Name string
	// Pass reports whether the regenerated data supports it.
	Pass bool
	// Detail carries the measured numbers behind the verdict.
	Detail string
}

// Verify regenerates the headline experiments and checks the paper's
// qualitative claims — the orderings and crossovers that constitute
// "reproducing the result" — against the measured data. It returns one
// Check per claim; a production change that silently breaks the
// reproduction fails here before it fails a reader.
func (r *Runner) Verify() ([]Check, error) {
	if err := r.run(r.headlineJobs()); err != nil {
		return nil, err
	}
	var checks []Check
	add := func(name string, pass bool, format string, args ...any) {
		checks = append(checks, Check{Name: name, Pass: pass, Detail: fmt.Sprintf(format, args...)})
	}

	type row struct {
		base, phased, cbf, redhip, oracle *sim.Result
	}
	rows := map[string]row{}
	for _, wl := range r.opts.Workloads {
		var rw row
		var err error
		if rw.base, err = r.resultFor(r.schemeJob(wl, sim.Base)); err != nil {
			return nil, err
		}
		if rw.phased, err = r.resultFor(r.schemeJob(wl, sim.Phased)); err != nil {
			return nil, err
		}
		if rw.cbf, err = r.resultFor(r.schemeJob(wl, sim.CBF)); err != nil {
			return nil, err
		}
		if rw.redhip, err = r.resultFor(r.schemeJob(wl, sim.ReDHiP)); err != nil {
			return nil, err
		}
		if rw.oracle, err = r.resultFor(r.schemeJob(wl, sim.Oracle)); err != nil {
			return nil, err
		}
		rows[wl] = rw
	}

	// Claim: the Oracle is a performance and energy bound on ReDHiP,
	// per workload (Fig 6/7).
	boundOK, worst := true, ""
	for wl, rw := range rows {
		if rw.oracle.Cycles > rw.redhip.Cycles || rw.oracle.DynamicNJ() > rw.redhip.DynamicNJ() {
			boundOK = false
			worst = wl
		}
	}
	if boundOK {
		add("fig6/7: oracle bounds redhip on every workload", true, "")
	} else {
		add("fig6/7: oracle bounds redhip on every workload", false, "violated on %q", worst)
	}

	// Claim: ReDHiP saves dynamic energy over base on every workload,
	// and more than CBF at equal area (Fig 7).
	saveOK, beatCBF := true, true
	var redhipSavings, oracleSavings, cbfSavings, phasedSavings []float64
	var redhipSpeedups, phasedSpeedups []float64
	for _, rw := range rows {
		if rw.redhip.DynamicNJ() >= rw.base.DynamicNJ() {
			saveOK = false
		}
		if rw.redhip.DynamicNJ() >= rw.cbf.DynamicNJ() {
			beatCBF = false
		}
		redhipSavings = append(redhipSavings, 1-rw.redhip.DynamicEnergyRatio(rw.base))
		oracleSavings = append(oracleSavings, 1-rw.oracle.DynamicEnergyRatio(rw.base))
		cbfSavings = append(cbfSavings, 1-rw.cbf.DynamicEnergyRatio(rw.base))
		phasedSavings = append(phasedSavings, 1-rw.phased.DynamicEnergyRatio(rw.base))
		redhipSpeedups = append(redhipSpeedups, rw.redhip.Speedup(rw.base))
		phasedSpeedups = append(phasedSpeedups, rw.phased.Speedup(rw.base))
	}
	add("fig7: redhip saves dynamic energy on every workload", saveOK,
		"redhip %s vs oracle bound %s avg",
		stats.Pct(stats.Mean(redhipSavings), false), stats.Pct(stats.Mean(oracleSavings), false))
	add("fig7: redhip beats CBF at equal area on every workload", beatCBF, "redhip %s vs cbf %s avg",
		stats.Pct(stats.Mean(redhipSavings), false), stats.Pct(stats.Mean(cbfSavings), false))

	// Claim: Phased saves substantial energy but loses performance
	// (Fig 6/7's trade-off).
	add("fig6: phased degrades performance on average",
		stats.Mean(phasedSpeedups) < 0, "avg %s", stats.Pct(stats.Mean(phasedSpeedups), true))
	add("fig7: phased saves substantial dynamic energy",
		stats.Mean(phasedSavings) > 0.3, "avg %s", stats.Pct(stats.Mean(phasedSavings), false))

	// Claim: ReDHiP improves performance on average (Fig 6).
	add("fig6: redhip speeds up on average",
		stats.Mean(redhipSpeedups) > 0, "avg %s", stats.Pct(stats.Mean(redhipSpeedups), true))

	// Claim: Fig 8 — ReDHiP has the best performance-energy product.
	bestOK := true
	for _, rw := range rows {
		m := rw.redhip.PerformanceEnergyMetric(rw.base)
		if rw.cbf.PerformanceEnergyMetric(rw.base) > m+1e-9 ||
			rw.phased.PerformanceEnergyMetric(rw.base) > m+1e-9 {
			bestOK = false
		}
	}
	add("fig8: redhip has the best performance-energy metric per workload", bestOK, "")

	// Claim: Fig 10 — ReDHiP raises L2/L3/L4 hit rates and leaves L1
	// essentially untouched. The comparison carries a small tolerance:
	// the two runs interleave the cores differently in time, so the
	// shared L4's eviction order (and therefore the back-invalidations
	// hitting private levels) drifts slightly between them.
	const hitTol = 0.005
	hitOK := true
	detail := ""
	for wl, rw := range rows {
		d := rw.redhip.HitRate(energy.L1) - rw.base.HitRate(energy.L1)
		if d > hitTol || d < -hitTol {
			hitOK = false
			detail = fmt.Sprintf("%s: L1 moved by %+.3f", wl, d)
		}
		for l := energy.L2; l <= energy.L4; l++ {
			if rw.redhip.HitRate(l) < rw.base.HitRate(l)-hitTol {
				hitOK = false
				detail = fmt.Sprintf("%s: %v dropped %.3f -> %.3f", wl, l,
					rw.base.HitRate(l), rw.redhip.HitRate(l))
			}
		}
	}
	add("fig9/10: redhip raises lower-level hit rates and leaves L1 untouched", hitOK, "%s", detail)

	// Claim: no false negatives anywhere (conservativeness).
	fnOK := true
	for _, rw := range rows {
		if rw.redhip.Pred.FalseNegative+rw.cbf.Pred.FalseNegative+rw.oracle.Pred.FalseNegative != 0 {
			fnOK = false
		}
	}
	add("safety: zero false negatives across all predictors and workloads", fnOK, "")

	return checks, nil
}
