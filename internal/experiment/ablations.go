package experiment

import (
	"fmt"

	"redhip/internal/cache"
	"redhip/internal/core"
	"redhip/internal/sim"
	"redhip/internal/stats"
)

// The ablation studies quantify the design decisions DESIGN.md calls
// out, beyond the figures the paper prints:
//
//   - hash: bits-hash (recalibrable in 1 cycle/set) vs xor-hash
//     (slightly better discrimination, serial recalibration) — the
//     paper's Section III-A/B argument.
//   - cbf-counters: CBF counter width vs entry count at fixed area —
//     the accuracy-per-bit trade-off of Section II.
//   - banks: recalibration banking factor vs stall cycles — the
//     "different parallel degree" knob of Section III-B.
//   - replacement: does ReDHiP's benefit depend on LRU?
//   - fills: lookup-only vs lookup+fill energy accounting.
//   - adaptive: the Section IV disable heuristic on a compute-bound
//     code vs a memory-bound one.

// ablationWorkloads is the subset ablations average over (one
// streaming, one pointer-chasing, one strided code).
var ablationWorkloads = []string{"lbm", "mcf", "milc"}

// AblationHash compares the bits-hash table against an equal-size
// xor-hash table: prediction accuracy, dynamic energy, speedup, and
// the recalibration stall both pay.
func (r *Runner) AblationHash() (*Figure, error) {
	mk := func(wl string, h core.HashKind) job {
		cfg := r.opts.Base.WithScheme(sim.ReDHiP)
		cfg.EnablePrefetch = false
		cfg.PTHash = h
		return job{workload: wl, cfg: cfg}
	}
	var jobs []job
	for _, wl := range ablationWorkloads {
		jobs = append(jobs, r.baseJob(wl), mk(wl, core.HashBits), mk(wl, core.HashXor))
	}
	if err := r.run(jobs); err != nil {
		return nil, err
	}
	t := stats.NewTable("Prediction-table hash ablation (average over "+fmt.Sprint(ablationWorkloads)+")",
		"hash", "accuracy", "dynamic energy vs base", "speedup", "recal stall cycles")
	for _, h := range []core.HashKind{core.HashBits, core.HashXor} {
		var acc, dyn, sp, stall []float64
		for _, wl := range ablationWorkloads {
			base, err := r.resultFor(r.baseJob(wl))
			if err != nil {
				return nil, err
			}
			res, err := r.resultFor(mk(wl, h))
			if err != nil {
				return nil, err
			}
			acc = append(acc, res.Pred.Accuracy())
			dyn = append(dyn, res.DynamicEnergyRatio(base))
			sp = append(sp, res.Speedup(base))
			stall = append(stall, float64(res.Pred.RecalCycles))
		}
		t.AddRow(h.String(),
			stats.Pct(stats.Mean(acc), false),
			stats.Pct(stats.Mean(dyn), false),
			stats.Pct(stats.Mean(sp), true),
			fmt.Sprintf("%.0f", stats.Mean(stall)))
	}
	return &Figure{
		ID:      "Ablation: hash",
		Caption: "The paper's central trade-off (Section III-A/B): xor-hash can discriminate better per lookup, but its entries scatter across the cache so recalibration degrades to one tag per cycle — a stall tens of times larger that erases the accuracy gain. \"Any slight complexity added to the predictor prohibits the possibility of this recalibration process.\"",
		Table:   t,
	}, nil
}

// AblationCBFCounters sweeps the CBF counter width at fixed area: wider
// counters overflow less but afford fewer entries.
func (r *Runner) AblationCBFCounters() (*Figure, error) {
	widths := []uint{2, 3, 4, 8}
	mk := func(wl string, bits uint) job {
		cfg := r.opts.Base.WithScheme(sim.CBF)
		cfg.EnablePrefetch = false
		cfg.CBFCounterBits = bits
		return job{workload: wl, cfg: cfg}
	}
	var jobs []job
	for _, wl := range ablationWorkloads {
		jobs = append(jobs, r.baseJob(wl))
		for _, b := range widths {
			jobs = append(jobs, mk(wl, b))
		}
	}
	if err := r.run(jobs); err != nil {
		return nil, err
	}
	t := stats.NewTable("CBF counter-width ablation at fixed area (average over "+fmt.Sprint(ablationWorkloads)+")",
		"counter bits", "accuracy", "dynamic energy vs base", "speedup")
	for _, b := range widths {
		var acc, dyn, sp []float64
		for _, wl := range ablationWorkloads {
			base, err := r.resultFor(r.baseJob(wl))
			if err != nil {
				return nil, err
			}
			res, err := r.resultFor(mk(wl, b))
			if err != nil {
				return nil, err
			}
			acc = append(acc, res.Pred.Accuracy())
			dyn = append(dyn, res.DynamicEnergyRatio(base))
			sp = append(sp, res.Speedup(base))
		}
		t.AddRow(fmt.Sprintf("%d", b),
			stats.Pct(stats.Mean(acc), false),
			stats.Pct(stats.Mean(dyn), false),
			stats.Pct(stats.Mean(sp), true))
	}
	return &Figure{
		ID:      "Ablation: cbf-counters",
		Caption: "At fixed area, fewer bits per counter buy more entries; ReDHiP's 1-bit limit case plus recalibration is the paper's accuracy-per-bit claim.",
		Table:   t,
	}, nil
}

// AblationBanks sweeps the recalibration banking factor: more banks cut
// the stall linearly at hardware cost (Section III-B's "different
// design effort with different parallel degree").
func (r *Runner) AblationBanks() (*Figure, error) {
	banks := []int{1, 2, 4, 8, 16}
	mk := func(wl string, b int) job {
		cfg := r.opts.Base.WithScheme(sim.ReDHiP)
		cfg.EnablePrefetch = false
		cfg.PTBanks = b
		return job{workload: wl, cfg: cfg}
	}
	var jobs []job
	for _, wl := range ablationWorkloads {
		jobs = append(jobs, r.baseJob(wl))
		for _, b := range banks {
			jobs = append(jobs, mk(wl, b))
		}
	}
	if err := r.run(jobs); err != nil {
		return nil, err
	}
	t := stats.NewTable("Recalibration banking ablation (average over "+fmt.Sprint(ablationWorkloads)+")",
		"banks", "recal stall cycles", "speedup")
	for _, b := range banks {
		var stall, sp []float64
		for _, wl := range ablationWorkloads {
			base, err := r.resultFor(r.baseJob(wl))
			if err != nil {
				return nil, err
			}
			res, err := r.resultFor(mk(wl, b))
			if err != nil {
				return nil, err
			}
			stall = append(stall, float64(res.Pred.RecalCycles))
			sp = append(sp, res.Speedup(base))
		}
		t.AddRow(fmt.Sprintf("%d", b),
			fmt.Sprintf("%.0f", stats.Mean(stall)),
			stats.Pct(stats.Mean(sp), true))
	}
	return &Figure{
		ID:      "Ablation: banks",
		Caption: "Stall cycles scale as sets/banks; even a single bank keeps the total stall negligible at the 1M-miss period.",
		Table:   t,
	}, nil
}

// AblationReplacement checks whether ReDHiP's benefit depends on the
// caches' replacement policy.
func (r *Runner) AblationReplacement() (*Figure, error) {
	policies := []cache.ReplacementPolicy{cache.LRU, cache.FIFO, cache.Random}
	mk := func(wl string, p cache.ReplacementPolicy, s sim.Scheme) job {
		cfg := r.opts.Base.WithScheme(s)
		cfg.EnablePrefetch = false
		cfg.Replacement = p
		return job{workload: wl, cfg: cfg}
	}
	var jobs []job
	for _, wl := range ablationWorkloads {
		for _, p := range policies {
			jobs = append(jobs, mk(wl, p, sim.Base), mk(wl, p, sim.ReDHiP))
		}
	}
	if err := r.run(jobs); err != nil {
		return nil, err
	}
	t := stats.NewTable("Replacement-policy ablation (average over "+fmt.Sprint(ablationWorkloads)+"; each vs base with the same policy)",
		"policy", "dynamic energy saving", "speedup", "accuracy")
	for _, p := range policies {
		var dyn, sp, acc []float64
		for _, wl := range ablationWorkloads {
			base, err := r.resultFor(mk(wl, p, sim.Base))
			if err != nil {
				return nil, err
			}
			res, err := r.resultFor(mk(wl, p, sim.ReDHiP))
			if err != nil {
				return nil, err
			}
			dyn = append(dyn, 1-res.DynamicEnergyRatio(base))
			sp = append(sp, res.Speedup(base))
			acc = append(acc, res.Pred.Accuracy())
		}
		t.AddRow(p.String(),
			stats.Pct(stats.Mean(dyn), false),
			stats.Pct(stats.Mean(sp), true),
			stats.Pct(stats.Mean(acc), false))
	}
	return &Figure{
		ID:      "Ablation: replacement",
		Caption: "ReDHiP predicts presence, not recency: its savings survive FIFO and Random replacement nearly unchanged.",
		Table:   t,
	}, nil
}

// AblationFills contrasts the paper's lookup-only energy accounting
// with accounting that also charges insertion writes.
func (r *Runner) AblationFills() (*Figure, error) {
	mk := func(wl string, s sim.Scheme, fills bool) job {
		cfg := r.opts.Base.WithScheme(s)
		cfg.EnablePrefetch = false
		cfg.ChargeFills = fills
		return job{workload: wl, cfg: cfg}
	}
	var jobs []job
	for _, wl := range ablationWorkloads {
		for _, fills := range []bool{false, true} {
			jobs = append(jobs, mk(wl, sim.Base, fills), mk(wl, sim.ReDHiP, fills), mk(wl, sim.Oracle, fills))
		}
	}
	if err := r.run(jobs); err != nil {
		return nil, err
	}
	t := stats.NewTable("Energy-accounting ablation (average over "+fmt.Sprint(ablationWorkloads)+")",
		"accounting", "ReDHiP dynamic saving", "Oracle dynamic saving")
	for _, fills := range []bool{false, true} {
		label := "lookups only (paper)"
		if fills {
			label = "lookups + fill writes"
		}
		var red, ora []float64
		for _, wl := range ablationWorkloads {
			base, err := r.resultFor(mk(wl, sim.Base, fills))
			if err != nil {
				return nil, err
			}
			res, err := r.resultFor(mk(wl, sim.ReDHiP, fills))
			if err != nil {
				return nil, err
			}
			o, err := r.resultFor(mk(wl, sim.Oracle, fills))
			if err != nil {
				return nil, err
			}
			red = append(red, 1-res.DynamicEnergyRatio(base))
			ora = append(ora, 1-o.DynamicEnergyRatio(base))
		}
		t.AddRow(label, stats.Pct(stats.Mean(red), false), stats.Pct(stats.Mean(ora), false))
	}
	return &Figure{
		ID:      "Ablation: fills",
		Caption: "Charging the fill writes no predictor can avoid compresses all savings; the paper's 71% Oracle bound implies lookup-only accounting.",
		Table:   t,
	}, nil
}

// AblationAdaptive evaluates the Section IV disable heuristic on a
// compute-bound code (where prediction is pure overhead) and a
// memory-bound one (where disabling would forfeit the benefit).
func (r *Runner) AblationAdaptive() (*Figure, error) {
	workloads := []string{"computebound", "mcf"}
	mk := func(wl string, adaptive bool) job {
		cfg := r.opts.Base.WithScheme(sim.ReDHiP)
		cfg.EnablePrefetch = false
		cfg.AdaptiveDisable = adaptive
		return job{workload: wl, cfg: cfg}
	}
	var jobs []job
	for _, wl := range workloads {
		jobs = append(jobs, r.baseJob(wl), mk(wl, false), mk(wl, true))
	}
	if err := r.run(jobs); err != nil {
		return nil, err
	}
	t := stats.NewTable("Adaptive predictor-disable ablation",
		"workload", "variant", "speedup vs base", "dynamic energy vs base", "epochs disabled")
	for _, wl := range workloads {
		base, err := r.resultFor(r.baseJob(wl))
		if err != nil {
			return nil, err
		}
		for _, adaptive := range []bool{false, true} {
			res, err := r.resultFor(mk(wl, adaptive))
			if err != nil {
				return nil, err
			}
			name := "always on"
			disabled := "-"
			if adaptive {
				name = "adaptive"
				disabled = fmt.Sprintf("%d/%d", res.Adaptive.DisabledEpochs, res.Adaptive.Epochs)
			}
			t.AddRow(wl, name,
				stats.Pct(res.Speedup(base), true),
				stats.Pct(res.DynamicEnergyRatio(base), false),
				disabled)
		}
	}
	return &Figure{
		ID:      "Ablation: adaptive",
		Caption: "Section IV: on codes with very high L1 hit rates the mechanism disables itself instead of wasting energy and latency; memory-bound codes keep it on.",
		Table:   t,
	}, nil
}

// Ablations regenerates all ablation studies.
func (r *Runner) Ablations() ([]*Figure, error) {
	builders := []func() (*Figure, error){
		r.AblationHash,
		r.AblationCBFCounters,
		r.AblationBanks,
		r.AblationReplacement,
		r.AblationFills,
		r.AblationAdaptive,
		r.AblationMemoryLatency,
	}
	var figs []*Figure
	for _, b := range builders {
		f, err := b()
		if err != nil {
			return nil, err
		}
		figs = append(figs, f)
	}
	return figs, nil
}

// AblationMemoryLatency extends the paper's 0-cycle memory model with
// real DRAM latencies: the absolute time grows, the relative latency
// benefit of skipping on-chip lookups shrinks, and the energy savings
// are untouched — which is exactly why the paper frames ReDHiP as an
// energy mechanism first.
func (r *Runner) AblationMemoryLatency() (*Figure, error) {
	latencies := []uint32{0, 100, 200, 400}
	mk := func(wl string, lat uint32, s sim.Scheme) job {
		cfg := r.opts.Base.WithScheme(s)
		cfg.EnablePrefetch = false
		cfg.MemoryLatencyCycles = lat
		return job{workload: wl, cfg: cfg}
	}
	var jobs []job
	for _, wl := range ablationWorkloads {
		for _, lat := range latencies {
			jobs = append(jobs, mk(wl, lat, sim.Base), mk(wl, lat, sim.ReDHiP))
		}
	}
	if err := r.run(jobs); err != nil {
		return nil, err
	}
	t := stats.NewTable("Memory-latency ablation (average over "+fmt.Sprint(ablationWorkloads)+"; each vs base at the same latency)",
		"memory latency (cycles)", "ReDHiP speedup", "ReDHiP dynamic saving")
	for _, lat := range latencies {
		var sp, dyn []float64
		for _, wl := range ablationWorkloads {
			base, err := r.resultFor(mk(wl, lat, sim.Base))
			if err != nil {
				return nil, err
			}
			res, err := r.resultFor(mk(wl, lat, sim.ReDHiP))
			if err != nil {
				return nil, err
			}
			sp = append(sp, res.Speedup(base))
			dyn = append(dyn, 1-res.DynamicEnergyRatio(base))
		}
		label := fmt.Sprintf("%d", lat)
		if lat == 0 {
			label = "0 (paper)"
		}
		t.AddRow(label, stats.Pct(stats.Mean(sp), true), stats.Pct(stats.Mean(dyn), false))
	}
	return &Figure{
		ID:      "Ablation: memory-latency",
		Caption: "With real DRAM latency the latency benefit dilutes (off-chip time dominates) while the dynamic-energy savings persist unchanged.",
		Table:   t,
	}, nil
}
