package experiment

import (
	"strconv"
	"strings"
	"testing"

	"redhip/internal/sim"
)

func ablationRunner(t *testing.T) *Runner {
	t.Helper()
	cfg := sim.Smoke()
	cfg.RefsPerCore = 12_000
	// Short runs need a short recalibration period so the stall-cost
	// assertions actually observe recalibrations.
	cfg.RecalPeriod = 1_500
	r, err := NewRunner(Options{Base: cfg, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// cell parses a "12.3%" / "+4.5%" / "171" cell into a float.
func cell(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(strings.TrimPrefix(s, "+"), "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q: %v", s, err)
	}
	return v
}

func TestAblationHashShape(t *testing.T) {
	r := ablationRunner(t)
	f, err := r.AblationHash()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Table.Rows) != 2 {
		t.Fatalf("rows = %d", len(f.Table.Rows))
	}
	bits, xor := f.Table.Rows[0], f.Table.Rows[1]
	if bits[0] != "bits-hash" || xor[0] != "xor-hash" {
		t.Fatalf("row labels %v %v", bits[0], xor[0])
	}
	// The design claim: xor-hash recalibration stalls are far larger
	// (one tag per cycle instead of one set per bank per cycle).
	if cell(t, xor[4]) <= cell(t, bits[4]) {
		t.Fatalf("xor recal stall (%s) not above bits-hash (%s)", xor[4], bits[4])
	}
}

func TestAblationCBFCountersShape(t *testing.T) {
	r := ablationRunner(t)
	f, err := r.AblationCBFCounters()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Table.Rows) != 4 {
		t.Fatalf("rows = %d", len(f.Table.Rows))
	}
	// At fixed area, 2-bit counters (most entries) must not be less
	// accurate than 8-bit (fewest entries).
	if cell(t, f.Table.Rows[0][1]) < cell(t, f.Table.Rows[3][1]) {
		t.Fatalf("2-bit accuracy %s below 8-bit %s", f.Table.Rows[0][1], f.Table.Rows[3][1])
	}
}

func TestAblationBanksMonotone(t *testing.T) {
	r := ablationRunner(t)
	f, err := r.AblationBanks()
	if err != nil {
		t.Fatal(err)
	}
	prev := 1e18
	for _, row := range f.Table.Rows {
		stall := cell(t, row[1])
		if stall > prev {
			t.Fatalf("stall not monotone non-increasing with banks: %v", f.Table.Rows)
		}
		prev = stall
	}
	// Doubling banks from 1 to 2 should roughly halve the stall.
	s1, s2 := cell(t, f.Table.Rows[0][1]), cell(t, f.Table.Rows[1][1])
	if s1 < 1.8*s2 || s1 > 2.2*s2 {
		t.Fatalf("banks 1->2 stall ratio %.2f not ~2", s1/s2)
	}
}

func TestAblationReplacementAllPositive(t *testing.T) {
	r := ablationRunner(t)
	f, err := r.AblationReplacement()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range f.Table.Rows {
		if cell(t, row[1]) <= 0 {
			t.Fatalf("policy %s: no dynamic saving (%s)", row[0], row[1])
		}
	}
}

func TestAblationFillsCompressesSavings(t *testing.T) {
	r := ablationRunner(t)
	f, err := r.AblationFills()
	if err != nil {
		t.Fatal(err)
	}
	lookupOnly, withFills := f.Table.Rows[0], f.Table.Rows[1]
	if cell(t, withFills[1]) >= cell(t, lookupOnly[1]) {
		t.Fatal("charging fills did not compress ReDHiP savings")
	}
	if cell(t, withFills[2]) >= cell(t, lookupOnly[2]) {
		t.Fatal("charging fills did not compress Oracle savings")
	}
}

func TestAblationAdaptiveShape(t *testing.T) {
	r := ablationRunner(t)
	f, err := r.AblationAdaptive()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Table.Rows) != 4 {
		t.Fatalf("rows = %d", len(f.Table.Rows))
	}
	// The compute-bound adaptive row must report disabled epochs.
	adaptiveRow := f.Table.Rows[1]
	if adaptiveRow[0] != "computebound" || adaptiveRow[1] != "adaptive" {
		t.Fatalf("row order: %v", f.Table.Rows)
	}
	if adaptiveRow[4] == "-" || strings.HasPrefix(adaptiveRow[4], "0/") {
		t.Fatalf("compute-bound adaptive run disabled nothing: %q", adaptiveRow[4])
	}
}

func TestAblationsAll(t *testing.T) {
	r := ablationRunner(t)
	figs, err := r.Ablations()
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 7 {
		t.Fatalf("got %d ablations, want 7", len(figs))
	}
	for _, f := range figs {
		if !strings.HasPrefix(f.ID, "Ablation:") || f.Table == nil {
			t.Errorf("bad ablation figure %+v", f.ID)
		}
	}
}

func TestAblationMemoryLatency(t *testing.T) {
	r := ablationRunner(t)
	f, err := r.AblationMemoryLatency()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Table.Rows) != 4 {
		t.Fatalf("rows = %d", len(f.Table.Rows))
	}
	// The latency benefit must shrink as memory latency grows, while
	// the energy saving stays roughly constant.
	sp0 := cell(t, f.Table.Rows[0][1])
	spN := cell(t, f.Table.Rows[len(f.Table.Rows)-1][1])
	if spN >= sp0 {
		t.Fatalf("speedup did not dilute with DRAM latency: %v -> %v", sp0, spN)
	}
	dyn0 := cell(t, f.Table.Rows[0][2])
	dynN := cell(t, f.Table.Rows[len(f.Table.Rows)-1][2])
	if diff := dyn0 - dynN; diff > 5 || diff < -5 {
		t.Fatalf("energy saving moved with latency: %v -> %v", dyn0, dynN)
	}
}

func TestAblationsCount(t *testing.T) {
	r := ablationRunner(t)
	figs, err := r.Ablations()
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 7 {
		t.Fatalf("ablations = %d, want 7", len(figs))
	}
}
