//go:build faultinject

package experiment

import (
	"errors"
	"strings"
	"testing"

	"redhip/internal/faultinject"
	"redhip/internal/sim"
)

// faultOptions pins the per-scheme pool path (DisableSinglePass): one
// injection-point evaluation per run, the granularity these contracts
// are written against. The single-pass path evaluates the point once
// per pass and fails every pending scheme together — covered by the
// SinglePass variants below.
func faultOptions(in *faultinject.Injector) Options {
	cfg := sim.Smoke()
	cfg.RefsPerCore = 1_000
	return Options{Base: cfg, Seed: 1, Workloads: []string{"mcf"}, Parallelism: 1, Fault: in, DisableSinglePass: true}
}

// TestInjectedRunError: an Options.Fault error rule fails exactly the
// scheduled run; once exhausted, a fresh runner completes the same
// sweep cleanly.
func TestInjectedRunError(t *testing.T) {
	in := faultinject.New(3, faultinject.Rule{
		Point: faultinject.PointExperimentRun,
		Times: 1,
		Err:   "transient run failure",
	})
	r := mustRunner(t, faultOptions(in))
	if _, err := r.SchemeSweep("mcf", sim.Schemes()); !faultinject.IsInjected(err) {
		t.Fatalf("SchemeSweep error = %v, want the injected failure", err)
	}
	// Rule exhausted: a fresh runner (fresh memo cache) succeeds.
	r2 := mustRunner(t, faultOptions(in))
	res, err := r2.SchemeSweep("mcf", sim.Schemes())
	if err != nil {
		t.Fatalf("post-exhaustion sweep: %v", err)
	}
	if len(res) != len(sim.Schemes()) {
		t.Fatalf("post-exhaustion sweep returned %d results", len(res))
	}
}

// TestInjectedRunPanicIsolated: an injected panic inside a run is
// recovered into *PanicError — the pool goroutine survives, the error
// carries a stack, and the runner remains usable.
func TestInjectedRunPanicIsolated(t *testing.T) {
	in := faultinject.New(5, faultinject.Rule{
		Point: faultinject.PointExperimentRun,
		Times: 1,
		Panic: "injected run panic",
	})
	r := mustRunner(t, faultOptions(in))
	_, err := r.SchemeSweep("mcf", sim.Schemes())
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("SchemeSweep error = %v (%T), want *PanicError", err, err)
	}
	if !strings.Contains(pe.Error(), "injected run panic") {
		t.Fatalf("PanicError = %q, want injected message", pe.Error())
	}
	if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "goroutine") {
		t.Fatalf("PanicError.Stack missing or malformed: %q", pe.Stack)
	}
	// The runner survived the panic: the un-poisoned schemes are still
	// runnable on the same instance.
	if _, err := r.SchemeSweep("mcf", []sim.Scheme{sim.Schemes()[len(sim.Schemes())-1]}); err != nil {
		t.Fatalf("runner unusable after recovered panic: %v", err)
	}
}

// TestOnRunSeesInjectedFailure: the structured hook observes injected
// run errors like organic ones — serve's breaker feeds on exactly this.
func TestOnRunSeesInjectedFailure(t *testing.T) {
	in := faultinject.New(9, faultinject.Rule{
		Point: faultinject.PointExperimentRun,
		Times: 1,
		Err:   "boom",
	})
	opts := faultOptions(in)
	var failed int
	opts.OnRun = func(u RunUpdate) {
		if u.Err != nil {
			failed++
		}
	}
	r := mustRunner(t, opts)
	if _, err := r.SchemeSweep("mcf", sim.Schemes()); err == nil {
		t.Fatalf("sweep with injected failure succeeded")
	}
	if failed != 1 {
		t.Fatalf("OnRun observed %d failures, want 1", failed)
	}
}

// TestInjectedPassPanicSinglePass: on the single-pass path the pass is
// the failure unit — an injected panic fails every pending scheme with
// the same recovered *PanicError, and schemes already memoised before
// the fault are unaffected.
func TestInjectedPassPanicSinglePass(t *testing.T) {
	in := faultinject.New(5, faultinject.Rule{
		Point: faultinject.PointExperimentRun,
		Times: 1,
		Panic: "injected pass panic",
	})
	opts := faultOptions(in)
	opts.DisableSinglePass = false
	var failed int
	opts.OnRun = func(u RunUpdate) {
		if u.Err != nil {
			failed++
		}
	}
	r := mustRunner(t, opts)
	_, err := r.SchemeSweep("mcf", sim.Schemes())
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("SchemeSweep error = %v (%T), want *PanicError", err, err)
	}
	if !strings.Contains(pe.Error(), "injected pass panic") {
		t.Fatalf("PanicError = %q, want injected message", pe.Error())
	}
	if failed != len(sim.Schemes()) {
		t.Fatalf("OnRun observed %d failures, want every scheme of the failed pass (%d)", failed, len(sim.Schemes()))
	}
	// The runner survived: a different workload sweeps cleanly on the
	// same instance once the rule is exhausted.
	if _, err := r.SchemeSweep("milc", sim.Schemes()); err != nil {
		t.Fatalf("runner unusable after recovered pass panic: %v", err)
	}
}

// TestInjectedPassErrorSinglePassFiresOncePerPass: the experiment.run
// injection point replaces N per-scheme evaluations with one per pass,
// so a Times:1 error rule fails exactly one pass and the next pass
// (same runner, different workload) completes.
func TestInjectedPassErrorSinglePassFiresOncePerPass(t *testing.T) {
	in := faultinject.New(7, faultinject.Rule{
		Point: faultinject.PointExperimentRun,
		Times: 1,
		Err:   "transient pass failure",
	})
	opts := faultOptions(in)
	opts.DisableSinglePass = false
	r := mustRunner(t, opts)
	if _, err := r.SchemeSweep("mcf", sim.Schemes()); !faultinject.IsInjected(err) {
		t.Fatalf("SchemeSweep error = %v, want the injected failure", err)
	}
	res, err := r.SchemeSweep("milc", sim.Schemes())
	if err != nil {
		t.Fatalf("second pass after rule exhaustion: %v", err)
	}
	if len(res) != len(sim.Schemes()) {
		t.Fatalf("second pass returned %d results", len(res))
	}
}
