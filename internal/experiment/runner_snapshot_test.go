package experiment

import (
	"encoding/json"
	"testing"

	"redhip/internal/sim"
	"redhip/internal/simstate"
)

// snapshotOpts is the tiny-runner geometry with a warmup window so the
// snapshot layer has a boundary to branch at.
func snapshotOpts() Options {
	cfg := sim.Smoke()
	cfg.WarmupRefsPerCore = 6_000
	cfg.RefsPerCore = 8_000
	return Options{
		Base:      cfg,
		Seed:      3,
		Workloads: []string{"mcf", "lbm"},
	}
}

// resultJSON canonicalises a result for comparison. Perf carries
// host-side timings and is excluded from JSON, so this covers exactly
// the deterministic simulation outputs the golden contract pins.
func resultJSON(t *testing.T, res *sim.Result) string {
	t.Helper()
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestRunnerSnapshotBranchBitIdentical pins the runner-level contract:
// enabling the snapshot store changes nothing about the results, on
// both the single-pass lockstep path and the legacy per-scheme path.
func TestRunnerSnapshotBranchBitIdentical(t *testing.T) {
	schemes := []sim.Scheme{sim.Base, sim.ReDHiP, sim.Oracle}
	for _, legacy := range []bool{false, true} {
		name := "single-pass"
		if legacy {
			name = "per-scheme"
		}
		t.Run(name, func(t *testing.T) {
			plainOpts := snapshotOpts()
			plainOpts.DisableSinglePass = legacy
			plain := mustRunner(t, plainOpts)
			want, err := plain.SchemeSweep("mcf", schemes)
			if err != nil {
				t.Fatal(err)
			}

			snapOpts := snapshotOpts()
			snapOpts.DisableSinglePass = legacy
			snapOpts.SnapshotCacheBytes = 64 << 20
			snap := mustRunner(t, snapOpts)
			got, err := snap.SchemeSweep("mcf", schemes)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if a, b := resultJSON(t, want[i]), resultJSON(t, got[i]); a != b {
					t.Errorf("%s: snapshot-branched result diverged\n got %s\nwant %s", schemes[i], b, a)
				}
			}
			st, ok := snap.SnapshotStats()
			if !ok {
				t.Fatal("SnapshotStats not ok with snapshotting enabled")
			}
			if st.Puts == 0 {
				t.Errorf("snapshot store saw no Puts after a warmed sweep: %+v", st)
			}

			// A second runner sharing the store must restore rather than
			// re-warm, and still match bit-for-bit.
			reuseOpts := snapshotOpts()
			reuseOpts.DisableSinglePass = legacy
			reuseOpts.SnapshotCache = snap.snaps
			reuse := mustRunner(t, reuseOpts)
			again, err := reuse.SchemeSweep("mcf", schemes)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if a, b := resultJSON(t, want[i]), resultJSON(t, again[i]); a != b {
					t.Errorf("%s: restored-from-shared-store result diverged", schemes[i])
				}
			}
			st2, _ := reuse.SnapshotStats()
			if st2.Hits <= st.Hits {
				t.Errorf("shared store hits did not grow: %d -> %d", st.Hits, st2.Hits)
			}
			if st2.Restores == 0 {
				t.Errorf("no restores recorded on the reuse pass: %+v", st2)
			}
		})
	}
}

// TestRunnerSnapshotMeasureVariants pins the branching win: measure
// windows of different lengths share one warm lineage (the key zeroes
// RefsPerCore), so the second variant restores instead of re-warming.
func TestRunnerSnapshotMeasureVariants(t *testing.T) {
	store := simstate.NewStore(64 << 20)
	run := func(refs uint64) *sim.Result {
		opts := snapshotOpts()
		opts.Base.RefsPerCore = refs
		opts.SnapshotCache = store
		opts.DisableSinglePass = true
		r := mustRunner(t, opts)
		res, err := r.SchemeSweep("mcf", []sim.Scheme{sim.ReDHiP})
		if err != nil {
			t.Fatal(err)
		}
		return res[0]
	}
	short := run(8_000)
	long := run(12_000)
	if short.Refs == long.Refs {
		t.Fatal("variants collapsed to the same measure window")
	}
	st := store.Stats()
	if st.Puts != 1 {
		t.Errorf("Puts = %d, want 1 (one warm lineage across variants)", st.Puts)
	}
	if st.Hits == 0 {
		t.Errorf("second variant did not hit the shared warm state: %+v", st)
	}

	// Each variant must match its own straight-through cold run.
	for _, tc := range []struct {
		refs uint64
		res  *sim.Result
	}{{8_000, short}, {12_000, long}} {
		opts := snapshotOpts()
		opts.Base.RefsPerCore = tc.refs
		opts.DisableSinglePass = true
		r := mustRunner(t, opts)
		cold, err := r.SchemeSweep("mcf", []sim.Scheme{sim.ReDHiP})
		if err != nil {
			t.Fatal(err)
		}
		if a, b := resultJSON(t, cold[0]), resultJSON(t, tc.res); a != b {
			t.Errorf("refs=%d: branched variant diverged from cold run", tc.refs)
		}
	}
}

// TestRunnerSnapshotOptionValidation pins the configuration errors.
func TestRunnerSnapshotOptionValidation(t *testing.T) {
	opts := snapshotOpts()
	opts.SnapshotCache = simstate.NewStore(1 << 20)
	opts.SnapshotCacheBytes = 1 << 20
	if _, err := NewRunner(opts); err == nil {
		t.Fatal("SnapshotCache + SnapshotCacheBytes accepted, want error")
	}
}

// TestRunnerSnapshotDisabledStats pins the ok=false contract.
func TestRunnerSnapshotDisabledStats(t *testing.T) {
	r := mustRunner(t, snapshotOpts())
	if _, ok := r.SnapshotStats(); ok {
		t.Fatal("SnapshotStats ok without a snapshot store")
	}
}
