package experiment

import (
	"testing"

	"redhip/internal/sim"
)

// TestJobKeyDistinguishesConfigs is the regression test for the old
// string job keys: two configurations that differ in any field must
// memoise as two separate cache entries, and an identical resubmission
// must not rerun. The struct key compares field-by-field, so unlike
// the fmt.Sprintf("%+v") keys there is no formatting step that could
// render two different configs identically.
func TestJobKeyDistinguishesConfigs(t *testing.T) {
	base := sim.Smoke()
	base.RefsPerCore = 500
	base.Scheme = sim.Base

	r, err := NewRunner(Options{Base: base, Seed: 1, Workloads: []string{"mcf"}, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}

	variant := base
	variant.Scheme = sim.ReDHiP
	// A field deep inside the config must affect the key too.
	tweaked := base
	tweaked.Energy.Levels[0].DataNJ += 1e-9

	jobs := []job{
		{workload: "mcf", cfg: base},
		{workload: "mcf", cfg: variant},
		{workload: "mcf", cfg: tweaked},
		{workload: "mcf", cfg: base}, // duplicate: must not add an entry
	}
	if err := r.run(jobs); err != nil {
		t.Fatal(err)
	}
	if got := r.CacheSize(); got != 3 {
		t.Fatalf("expected 3 distinct cached runs, got %d", got)
	}

	// Same workload name under a different key field (workload) is a
	// different job.
	if err := r.run([]job{{workload: "milc", cfg: base}}); err != nil {
		t.Fatal(err)
	}
	if got := r.CacheSize(); got != 4 {
		t.Fatalf("expected 4 cached runs after new workload, got %d", got)
	}

	// Resubmitting everything must be fully memoised (no growth).
	if err := r.run(jobs); err != nil {
		t.Fatal(err)
	}
	if got := r.CacheSize(); got != 4 {
		t.Fatalf("memoisation regressed: expected 4 cached runs, got %d", got)
	}
}
