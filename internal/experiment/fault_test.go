package experiment

import (
	"strings"
	"testing"
)

// TestPanicErrorMessage pins the rendered form workers log and serve
// forwards into job event streams.
func TestPanicErrorMessage(t *testing.T) {
	err := &PanicError{Value: "index out of range", Stack: []byte("goroutine 1 ...")}
	if got := err.Error(); !strings.Contains(got, "run panicked") || !strings.Contains(got, "index out of range") {
		t.Fatalf("PanicError.Error() = %q", got)
	}
}
