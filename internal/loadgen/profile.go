// Package loadgen is the temporal load generator behind cmd/redhip-load:
// it compiles a seeded traffic profile — Poisson or bursty (MMPP-2)
// arrivals shaped into diurnal multi-phase periods, with cohort mixes
// of job templates — into an exact arrival schedule, then drives a
// redhip-serve instance open-loop at that schedule while accounting
// per-cohort latency and outcome splits.
//
// The split matters: schedule construction (profile.go, schedule.go)
// is pure and deterministic — the same profile and seed produce the
// same arrival list to the nanosecond, which is what the golden
// schedule test pins and what makes two load runs against two servers
// comparable. Only the execution layer (run.go) touches the wall
// clock, goroutines and the network; redhip-lint's determinism
// analyzer excludes the package by name (analysis.ServingPackages)
// for that layer's sake.
package loadgen

import (
	"encoding/json"
	"fmt"
)

// Phase is one temporal segment of a profile: a mean arrival rate
// under an arrival model for a duration. A profile's phases play in
// order (and repeat Profile.Cycles times), approximating a diurnal
// pattern — quiet night, morning ramp, lunchtime burst — in
// compressed time.
type Phase struct {
	// Name labels the phase in schedules and reports.
	Name string `json:"name,omitempty"`
	// DurationSeconds is the phase length; required, > 0.
	DurationSeconds float64 `json:"duration_seconds"`
	// RatePerSec is the long-run mean arrival rate; required, > 0.
	RatePerSec float64 `json:"rate_per_sec"`
	// Model is "poisson" (default) or "bursty". Poisson draws
	// exponential inter-arrivals at RatePerSec. Bursty is a 2-state
	// Markov-modulated Poisson process: a baseline state and a burst
	// state whose rate is BurstFactor x baseline, parameterised so the
	// long-run mean stays RatePerSec.
	Model string `json:"model,omitempty"`
	// BurstFactor is the burst-state rate multiplier (default 8).
	BurstFactor float64 `json:"burst_factor,omitempty"`
	// BurstFraction is the long-run fraction of time spent in the burst
	// state (default 0.1).
	BurstFraction float64 `json:"burst_fraction,omitempty"`
	// BurstMeanSeconds is the mean dwell time of one burst
	// (default 0.5).
	BurstMeanSeconds float64 `json:"burst_mean_seconds,omitempty"`
}

// Cohort is one slice of the traffic mix: a job-spec template POSTed
// to /v1/jobs, drawn with probability proportional to Weight. The
// template stays raw JSON so loadgen remains a pure HTTP client with
// no compile-time coupling to the server's spec type.
type Cohort struct {
	// Name labels the cohort in reports; required.
	Name string `json:"name"`
	// Weight is the cohort's draw weight; required, > 0.
	Weight float64 `json:"weight"`
	// Spec is the POST /v1/jobs body submitted for this cohort.
	Spec json.RawMessage `json:"spec"`
}

// Profile is a complete load description: the seed, the phase
// sequence, how many times it cycles, and the cohort mix.
type Profile struct {
	// Name labels the run in reports.
	Name string `json:"name,omitempty"`
	// Seed feeds every random draw; required, > 0. Identical seeds
	// reproduce the arrival schedule exactly.
	Seed uint64 `json:"seed"`
	// Cycles repeats the phase sequence (default 1).
	Cycles int `json:"cycles,omitempty"`
	// Phases play in order each cycle; required.
	Phases []Phase `json:"phases"`
	// Cohorts is the traffic mix; required.
	Cohorts []Cohort `json:"cohorts"`
}

// Normalize fills defaults and validates; the returned profile is what
// BuildSchedule consumes.
func (p Profile) Normalize() (Profile, error) {
	if p.Seed == 0 {
		return Profile{}, fmt.Errorf("loadgen: profile requires a nonzero seed")
	}
	if p.Cycles == 0 {
		p.Cycles = 1
	}
	if p.Cycles < 1 {
		return Profile{}, fmt.Errorf("loadgen: cycles must be >= 1, got %d", p.Cycles)
	}
	if len(p.Phases) == 0 {
		return Profile{}, fmt.Errorf("loadgen: profile requires at least one phase")
	}
	phases := make([]Phase, len(p.Phases))
	copy(phases, p.Phases)
	p.Phases = phases
	for i := range p.Phases {
		ph := &p.Phases[i]
		if ph.DurationSeconds <= 0 {
			return Profile{}, fmt.Errorf("loadgen: phase %d: duration_seconds must be > 0", i)
		}
		if ph.RatePerSec <= 0 {
			return Profile{}, fmt.Errorf("loadgen: phase %d: rate_per_sec must be > 0", i)
		}
		if ph.Model == "" {
			ph.Model = "poisson"
		}
		switch ph.Model {
		case "poisson":
		case "bursty":
			if ph.BurstFactor == 0 {
				ph.BurstFactor = 8
			}
			if ph.BurstFactor <= 1 {
				return Profile{}, fmt.Errorf("loadgen: phase %d: burst_factor must be > 1, got %g", i, ph.BurstFactor)
			}
			if ph.BurstFraction == 0 {
				ph.BurstFraction = 0.1
			}
			if ph.BurstFraction <= 0 || ph.BurstFraction >= 1 {
				return Profile{}, fmt.Errorf("loadgen: phase %d: burst_fraction must be in (0,1), got %g", i, ph.BurstFraction)
			}
			if ph.BurstMeanSeconds == 0 {
				ph.BurstMeanSeconds = 0.5
			}
			if ph.BurstMeanSeconds <= 0 {
				return Profile{}, fmt.Errorf("loadgen: phase %d: burst_mean_seconds must be > 0, got %g", i, ph.BurstMeanSeconds)
			}
		default:
			return Profile{}, fmt.Errorf("loadgen: phase %d: unknown model %q (want poisson or bursty)", i, ph.Model)
		}
	}
	if len(p.Cohorts) == 0 {
		return Profile{}, fmt.Errorf("loadgen: profile requires at least one cohort")
	}
	for i, c := range p.Cohorts {
		if c.Name == "" {
			return Profile{}, fmt.Errorf("loadgen: cohort %d: name is required", i)
		}
		if c.Weight <= 0 {
			return Profile{}, fmt.Errorf("loadgen: cohort %q: weight must be > 0, got %g", c.Name, c.Weight)
		}
		if len(c.Spec) == 0 {
			return Profile{}, fmt.Errorf("loadgen: cohort %q: spec is required", c.Name)
		}
		if !json.Valid(c.Spec) {
			return Profile{}, fmt.Errorf("loadgen: cohort %q: spec is not valid JSON", c.Name)
		}
	}
	return p, nil
}
