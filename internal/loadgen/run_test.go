package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
)

// TestRunAccounting drives a fast schedule at a scripted server that
// cycles through the full outcome palette and checks every response
// lands in the right report bucket.
func TestRunAccounting(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/jobs" || r.Method != http.MethodPost {
			t.Errorf("unexpected request %s %s", r.Method, r.URL.Path)
		}
		switch calls.Add(1) % 5 {
		case 1:
			w.WriteHeader(http.StatusAccepted)
			fmt.Fprint(w, `{"deduped":false}`)
		case 2:
			w.WriteHeader(http.StatusAccepted)
			fmt.Fprint(w, `{"deduped":true}`)
		case 3:
			w.WriteHeader(http.StatusTooManyRequests)
		case 4:
			w.WriteHeader(http.StatusServiceUnavailable)
		case 0:
			w.WriteHeader(http.StatusInternalServerError)
		}
	}))
	defer srv.Close()

	p := Profile{
		Seed:    42,
		Phases:  []Phase{{DurationSeconds: 0.25, RatePerSec: 400}},
		Cohorts: oneCohort(),
	}
	want := len(mustSchedule(t, p))
	if want < 50 {
		t.Fatalf("schedule too small to exercise accounting: %d arrivals", want)
	}

	rep, err := Run(context.Background(), p, Options{BaseURL: srv.URL})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	tot := rep.Total
	if rep.Arrivals != want || tot.Sent != want {
		t.Fatalf("arrivals=%d sent=%d, want %d", rep.Arrivals, tot.Sent, want)
	}
	// The handler's modulo split is exact over the total even though
	// request order is concurrent.
	counts := map[string]int{
		"accepted": tot.Accepted, "deduped": tot.Deduped,
		"429": tot.Rejected429, "503": tot.Rejected503, "5xx": tot.ServerErrors,
	}
	expect := map[string]int{
		"accepted": bucketCount(want, 1) + bucketCount(want, 2),
		"deduped":  bucketCount(want, 2),
		"429":      bucketCount(want, 3),
		"503":      bucketCount(want, 4),
		"5xx":      bucketCount(want, 0),
	}
	for k, got := range counts {
		if got != expect[k] {
			t.Errorf("%s = %d, want %d", k, got, expect[k])
		}
	}
	if tot.NetworkErrors != 0 || tot.OtherHTTP != 0 {
		t.Fatalf("spurious errors: %+v", tot)
	}
	if tot.P50Ms <= 0 || tot.P99Ms < tot.P50Ms || tot.MaxMs < tot.P99Ms {
		t.Fatalf("latency percentiles not ordered: %+v", tot)
	}
	if len(rep.Cohorts) != 1 || rep.Cohorts[0].Name != "a" || rep.Cohorts[0].Sent != want {
		t.Fatalf("cohort report wrong: %+v", rep.Cohorts)
	}

	// The report is machine-readable: it round-trips through its own
	// writer as valid JSON.
	var buf jsonBuffer
	if err := WriteReport(&buf, rep); err != nil {
		t.Fatalf("WriteReport: %v", err)
	}
	var back Report
	if err := json.Unmarshal(buf.data, &back); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if back.Total.Sent != want {
		t.Fatalf("round-tripped total sent %d, want %d", back.Total.Sent, want)
	}
}

// bucketCount is how many of n sequential calls land in modulo slot s
// (1-indexed calls, slots 0..4).
func bucketCount(n, s int) int {
	count := 0
	for call := 1; call <= n; call++ {
		if call%5 == s {
			count++
		}
	}
	return count
}

type jsonBuffer struct{ data []byte }

func (b *jsonBuffer) Write(p []byte) (int, error) {
	b.data = append(b.data, p...)
	return len(p), nil
}

// TestRunNetworkErrors points the generator at a dead address: every
// arrival must be accounted as a network error, none dropped.
func TestRunNetworkErrors(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	srv.Close() // now refusing connections

	p := Profile{
		Seed:    7,
		Phases:  []Phase{{DurationSeconds: 0.1, RatePerSec: 100}},
		Cohorts: oneCohort(),
	}
	want := len(mustSchedule(t, p))
	rep, err := Run(context.Background(), p, Options{BaseURL: srv.URL})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Total.Sent != want || rep.Total.NetworkErrors != want {
		t.Fatalf("sent=%d networkErrors=%d, want both %d", rep.Total.Sent, rep.Total.NetworkErrors, want)
	}
}

// TestRunCancellation stops scheduling when the context dies; the run
// returns promptly with only the arrivals fired before cancellation.
func TestRunCancellation(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
	}))
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the first arrival
	p := Profile{
		Seed:    7,
		Phases:  []Phase{{DurationSeconds: 30, RatePerSec: 1}},
		Cohorts: oneCohort(),
	}
	rep, err := Run(ctx, p, Options{BaseURL: srv.URL})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Total.Sent != 0 {
		t.Fatalf("cancelled run sent %d requests", rep.Total.Sent)
	}
	if rep.WallSeconds > 5 {
		t.Fatalf("cancelled run took %.1fs", rep.WallSeconds)
	}
}
