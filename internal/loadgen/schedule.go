package loadgen

import (
	"fmt"
	"io"
	"math"
	"time"
)

// Arrival is one scheduled request: an offset from the run's start,
// the cohort whose template it submits, and the phase (global index
// across cycles) it belongs to.
type Arrival struct {
	// At is the offset from run start. Nanosecond-exact: the golden
	// schedule test pins these values.
	At time.Duration `json:"at_ns"`
	// Cohort indexes Profile.Cohorts.
	Cohort int `json:"cohort"`
	// Phase is the flat phase index: cycle*len(Phases) + position.
	Phase int `json:"phase"`
	// Burst marks arrivals drawn while an MMPP burst state was active.
	Burst bool `json:"burst,omitempty"`
}

// rng is a splitmix64 generator: tiny, seedable, and stable across
// platforms — the schedule's whole determinism story.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float returns a uniform draw in [0, 1).
func (r *rng) float() float64 { return float64(r.next()>>11) / float64(1<<53) }

// exp returns an exponential draw with the given rate (mean 1/rate).
// 1-u maps the generator's [0,1) onto (0,1], keeping Log's argument
// nonzero.
func (r *rng) exp(rate float64) float64 { return -math.Log(1-r.float()) / rate }

// BuildSchedule expands a normalised profile into its full arrival
// list. The construction is pure: the same profile and seed yield the
// same schedule bit for bit, on any machine.
//
// Poisson phases draw i.i.d. exponential inter-arrivals. Bursty
// phases run a 2-state MMPP: a baseline state and a burst state at
// BurstFactor x the baseline rate, with exponential dwell times
// chosen so the burst state holds BurstFraction of the long run and
// the overall mean stays RatePerSec. State flips and phase boundaries
// simply move time forward and redraw the next inter-arrival — valid
// because the exponential is memoryless. Each phase starts in the
// baseline state, so a phase's schedule does not depend on how the
// previous phase ended.
func BuildSchedule(p Profile) ([]Arrival, error) {
	norm, err := p.Normalize()
	if err != nil {
		return nil, err
	}
	r := &rng{state: norm.Seed}
	var arrivals []Arrival
	var base time.Duration // run-relative start of the current phase
	for cycle := 0; cycle < norm.Cycles; cycle++ {
		for pi, ph := range norm.Phases {
			phaseIdx := cycle*len(norm.Phases) + pi
			end := time.Duration(ph.DurationSeconds * float64(time.Second))

			// Arrival-rate state machine. Poisson is the degenerate
			// one-state case.
			rate := ph.RatePerSec
			burst := false
			nextSwitch := end + 1 // past the phase: never switches
			var baseRate, burstRate, baseDwell, burstDwell float64
			if ph.Model == "bursty" {
				baseRate = ph.RatePerSec / (1 - ph.BurstFraction + ph.BurstFraction*ph.BurstFactor)
				burstRate = baseRate * ph.BurstFactor
				burstDwell = ph.BurstMeanSeconds
				baseDwell = burstDwell * (1 - ph.BurstFraction) / ph.BurstFraction
				rate = baseRate
				nextSwitch = time.Duration(r.exp(1/baseDwell) * float64(time.Second))
			}

			var t time.Duration
			for {
				dt := time.Duration(r.exp(rate) * float64(time.Second))
				at := t + dt
				// A state switch before the candidate arrival: advance to
				// the switch, flip, redraw. Memorylessness makes the
				// discarded draw statistically free.
				for ph.Model == "bursty" && at > nextSwitch && nextSwitch < end {
					t = nextSwitch
					burst = !burst
					if burst {
						rate = burstRate
						nextSwitch = t + time.Duration(r.exp(1/burstDwell)*float64(time.Second))
					} else {
						rate = baseRate
						nextSwitch = t + time.Duration(r.exp(1/baseDwell)*float64(time.Second))
					}
					dt = time.Duration(r.exp(rate) * float64(time.Second))
					at = t + dt
				}
				if at >= end {
					break
				}
				t = at
				arrivals = append(arrivals, Arrival{
					At:     base + t,
					Cohort: pickCohort(r, norm.Cohorts),
					Phase:  phaseIdx,
					Burst:  burst,
				})
			}
			base += end
		}
	}
	return arrivals, nil
}

// pickCohort draws a cohort index proportionally to weight.
func pickCohort(r *rng, cohorts []Cohort) int {
	var total float64
	for _, c := range cohorts {
		total += c.Weight
	}
	u := r.float() * total
	for i, c := range cohorts {
		u -= c.Weight
		if u < 0 {
			return i
		}
	}
	return len(cohorts) - 1 // rounding fell off the end
}

// WriteSchedule renders a schedule one arrival per line
// ("<ns> <cohort> <phase> <burst>"), the diff-stable form
// `redhip-load -print-schedule` emits and the smoke script compares
// across identically-seeded runs.
func WriteSchedule(w io.Writer, arrivals []Arrival) error {
	for _, a := range arrivals {
		b := 0
		if a.Burst {
			b = 1
		}
		if _, err := fmt.Fprintf(w, "%d %d %d %d\n", a.At.Nanoseconds(), a.Cohort, a.Phase, b); err != nil {
			return err
		}
	}
	return nil
}
