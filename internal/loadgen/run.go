package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Options configure a load run's execution layer.
type Options struct {
	// BaseURL is the redhip-serve instance, e.g. "http://localhost:8080".
	BaseURL string
	// Client is the HTTP client (default: 30s timeout).
	Client *http.Client
}

// CohortReport is one cohort's accounting: the outcome split and the
// client-observed submission latency distribution.
type CohortReport struct {
	Name string `json:"name"`
	Sent int    `json:"sent"`
	// Accepted counts 202s; Deduped is the subset whose submission
	// attached to an existing job instead of creating one.
	Accepted int `json:"accepted"`
	Deduped  int `json:"deduped"`
	// Rejected429 is queue-full backpressure; Rejected503 is shedding
	// (breaker, memory, shutdown). Both are the server working as
	// designed under overload — distinct from OtherHTTP and
	// NetworkErrors, which are not.
	Rejected429   int `json:"rejected_429"`
	Rejected503   int `json:"rejected_503"`
	OtherHTTP     int `json:"other_http"`
	ServerErrors  int `json:"server_5xx"`
	NetworkErrors int `json:"network_errors"`
	// Latency percentiles over all finished requests, milliseconds.
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`
	// Replicas counts responses by the X-RedHiP-Replica header — set
	// when the target is a redhip-router, absent against a bare
	// replica. The failover drill asserts traffic spread across
	// survivors with it.
	Replicas map[string]int `json:"replicas,omitempty"`
}

// Report is redhip-load's machine-readable output.
type Report struct {
	Profile     string         `json:"profile,omitempty"`
	Seed        uint64         `json:"seed"`
	Arrivals    int            `json:"arrivals"`
	WallSeconds float64        `json:"wall_seconds"`
	Cohorts     []CohortReport `json:"cohorts"`
	Total       CohortReport   `json:"total"`
}

// cohortAcc accumulates one cohort's outcomes during the run.
type cohortAcc struct {
	mu        sync.Mutex
	rep       CohortReport //redhip:guardedby mu
	latencies []float64    //redhip:guardedby mu // milliseconds
}

// record folds one finished request into the accumulator.
func (a *cohortAcc) record(code int, deduped bool, netErr bool, ms float64, replica string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.rep.Sent++
	if replica != "" {
		if a.rep.Replicas == nil {
			a.rep.Replicas = make(map[string]int)
		}
		a.rep.Replicas[replica]++
	}
	switch {
	case netErr:
		a.rep.NetworkErrors++
		return // no latency sample: the request never completed
	case code == http.StatusAccepted:
		a.rep.Accepted++
		if deduped {
			a.rep.Deduped++
		}
	case code == http.StatusTooManyRequests:
		a.rep.Rejected429++
	case code == http.StatusServiceUnavailable:
		a.rep.Rejected503++
	case code >= 500:
		a.rep.ServerErrors++
	default:
		a.rep.OtherHTTP++
	}
	a.latencies = append(a.latencies, ms)
}

// report finalises the accumulator into percentiles.
func (a *cohortAcc) report() CohortReport {
	a.mu.Lock()
	defer a.mu.Unlock()
	rep := a.rep
	if len(a.latencies) > 0 {
		ls := make([]float64, len(a.latencies))
		copy(ls, a.latencies)
		sort.Float64s(ls)
		rep.P50Ms = percentile(ls, 0.50)
		rep.P95Ms = percentile(ls, 0.95)
		rep.P99Ms = percentile(ls, 0.99)
		rep.MaxMs = ls[len(ls)-1]
	}
	return rep
}

// percentile is the nearest-rank percentile of a sorted slice.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Run executes a profile open-loop against a server: every scheduled
// arrival fires at its offset regardless of how previous requests are
// faring — lagging responses pile up concurrency instead of slowing
// the arrival process, which is what makes the generator an honest
// overload probe. Returns the per-cohort report; ctx cancellation
// stops scheduling new arrivals and drains in-flight ones.
func Run(ctx context.Context, p Profile, opts Options) (*Report, error) {
	norm, err := p.Normalize()
	if err != nil {
		return nil, err
	}
	schedule, err := BuildSchedule(norm)
	if err != nil {
		return nil, err
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	url := opts.BaseURL + "/v1/jobs"

	accs := make([]*cohortAcc, len(norm.Cohorts))
	for i, c := range norm.Cohorts {
		accs[i] = &cohortAcc{rep: CohortReport{Name: c.Name}}
	}

	start := time.Now()
	timer := time.NewTimer(0)
	defer timer.Stop()
	var wg sync.WaitGroup
scheduling:
	for _, a := range schedule {
		d := time.Until(start.Add(a.At))
		if d > 0 {
			timer.Reset(d)
			select {
			case <-timer.C:
			case <-ctx.Done():
				break scheduling
			}
		} else if ctx.Err() != nil {
			break scheduling
		}
		wg.Add(1)
		go func(spec json.RawMessage, acc *cohortAcc) {
			defer wg.Done()
			submit(ctx, client, url, spec, acc)
		}(norm.Cohorts[a.Cohort].Spec, accs[a.Cohort])
	}
	wg.Wait()

	rep := &Report{
		Profile:     norm.Name,
		Seed:        norm.Seed,
		Arrivals:    len(schedule),
		WallSeconds: time.Since(start).Seconds(),
	}
	var totalLat []float64
	for _, a := range accs {
		cr := a.report()
		rep.Cohorts = append(rep.Cohorts, cr)
		rep.Total.Sent += cr.Sent
		rep.Total.Accepted += cr.Accepted
		rep.Total.Deduped += cr.Deduped
		rep.Total.Rejected429 += cr.Rejected429
		rep.Total.Rejected503 += cr.Rejected503
		rep.Total.OtherHTTP += cr.OtherHTTP
		rep.Total.ServerErrors += cr.ServerErrors
		rep.Total.NetworkErrors += cr.NetworkErrors
		for replica, n := range cr.Replicas {
			if rep.Total.Replicas == nil {
				rep.Total.Replicas = make(map[string]int)
			}
			rep.Total.Replicas[replica] += n
		}
		a.mu.Lock()
		totalLat = append(totalLat, a.latencies...)
		a.mu.Unlock()
	}
	rep.Total.Name = "total"
	if len(totalLat) > 0 {
		sort.Float64s(totalLat)
		rep.Total.P50Ms = percentile(totalLat, 0.50)
		rep.Total.P95Ms = percentile(totalLat, 0.95)
		rep.Total.P99Ms = percentile(totalLat, 0.99)
		rep.Total.MaxMs = totalLat[len(totalLat)-1]
	}
	return rep, nil
}

// submit POSTs one cohort template and records the outcome.
func submit(ctx context.Context, client *http.Client, url string, spec json.RawMessage, acc *cohortAcc) {
	t0 := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(spec))
	if err != nil {
		acc.record(0, false, true, 0, "")
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	ms := float64(time.Since(t0)) / float64(time.Millisecond)
	if err != nil {
		acc.record(0, false, true, ms, "")
		return
	}
	defer resp.Body.Close()
	var body struct {
		Deduped bool `json:"deduped"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&body) // non-202 bodies lack the field; zero value is right
	acc.record(resp.StatusCode, body.Deduped, false, ms, resp.Header.Get("X-RedHiP-Replica"))
}

// WriteReport renders the report as indented JSON.
func WriteReport(w io.Writer, rep *Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return fmt.Errorf("loadgen: write report: %w", err)
	}
	return nil
}
