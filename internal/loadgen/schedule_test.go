package loadgen

import (
	"bytes"
	"encoding/json"
	"hash/fnv"
	"strings"
	"testing"
	"time"
)

// oneCohort is the minimal valid mix.
func oneCohort() []Cohort {
	return []Cohort{{Name: "a", Weight: 1, Spec: json.RawMessage(`{}`)}}
}

func mustSchedule(t *testing.T, p Profile) []Arrival {
	t.Helper()
	sched, err := BuildSchedule(p)
	if err != nil {
		t.Fatalf("BuildSchedule: %v", err)
	}
	return sched
}

func renderSchedule(t *testing.T, sched []Arrival) string {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteSchedule(&buf, sched); err != nil {
		t.Fatalf("WriteSchedule: %v", err)
	}
	return buf.String()
}

// TestGoldenSchedules pins the exact schedules for fixed seeds. These
// are load-bearing constants: the smoke script's bit-identity check
// and any cross-machine reproduction of a load experiment rely on the
// schedule being a pure function of (profile, seed). If this test
// breaks, the generator's output changed and every published
// experiment seed is invalidated — bump deliberately, never casually.
func TestGoldenSchedules(t *testing.T) {
	cases := []struct {
		name       string
		profile    Profile
		arrivals   int
		fnv64a     uint64
		firstLines []string
		burst      int
		cohortB    int
	}{
		{
			name: "poisson",
			profile: Profile{
				Seed:    42,
				Phases:  []Phase{{DurationSeconds: 2, RatePerSec: 5}},
				Cohorts: oneCohort(),
			},
			arrivals: 13,
			fnv64a:   0xe807ab3ab0aa5c48,
			firstLines: []string{
				"270622119 0 0 0",
				"335934734 0 0 0",
				"343689171 0 0 0",
			},
		},
		{
			name: "bursty",
			profile: Profile{
				Seed:   42,
				Phases: []Phase{{DurationSeconds: 6, RatePerSec: 10, Model: "bursty", BurstFraction: 0.2}},
				Cohorts: []Cohort{
					{Name: "a", Weight: 3, Spec: json.RawMessage(`{}`)},
					{Name: "b", Weight: 1, Spec: json.RawMessage(`{}`)},
				},
			},
			arrivals: 68,
			fnv64a:   0x791934e22a0cc832,
			firstLines: []string{
				"41819212 0 0 0",
				"143071674 0 0 0",
				"629475522 0 0 0",
			},
			burst:   45,
			cohortB: 16,
		},
		{
			name: "diurnal",
			profile: Profile{
				Seed:   7,
				Cycles: 2,
				Phases: []Phase{
					{Name: "night", DurationSeconds: 1, RatePerSec: 2},
					{Name: "peak", DurationSeconds: 1, RatePerSec: 20, Model: "bursty", BurstFactor: 4, BurstFraction: 0.25, BurstMeanSeconds: 0.2},
				},
				Cohorts: oneCohort(),
			},
			arrivals: 38,
			fnv64a:   0x841e6d3788b868b7,
			firstLines: []string{
				"247008629 0 0 0",
				"1052700085 0 1 0",
				"1107914637 0 1 0",
			},
			burst: 14,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sched := mustSchedule(t, tc.profile)
			if len(sched) != tc.arrivals {
				t.Fatalf("%d arrivals, want %d", len(sched), tc.arrivals)
			}
			text := renderSchedule(t, sched)
			h := fnv.New64a()
			h.Write([]byte(text))
			if got := h.Sum64(); got != tc.fnv64a {
				t.Fatalf("schedule hash %#x, want %#x — generator output changed", got, tc.fnv64a)
			}
			lines := strings.Split(text, "\n")
			for i, want := range tc.firstLines {
				if lines[i] != want {
					t.Fatalf("line %d = %q, want %q", i, lines[i], want)
				}
			}
			var burst, cohortB int
			for _, a := range sched {
				if a.Burst {
					burst++
				}
				if a.Cohort == 1 {
					cohortB++
				}
			}
			if burst != tc.burst {
				t.Fatalf("%d burst arrivals, want %d", burst, tc.burst)
			}
			if cohortB != tc.cohortB {
				t.Fatalf("%d cohort-1 arrivals, want %d", cohortB, tc.cohortB)
			}
		})
	}
}

func TestScheduleDeterminismAndSeedSensitivity(t *testing.T) {
	base := Profile{
		Seed:    1234,
		Phases:  []Phase{{DurationSeconds: 3, RatePerSec: 20, Model: "bursty"}},
		Cohorts: oneCohort(),
	}
	a := renderSchedule(t, mustSchedule(t, base))
	b := renderSchedule(t, mustSchedule(t, base))
	if a != b {
		t.Fatalf("identical profiles produced different schedules")
	}
	reseeded := base
	reseeded.Seed = 1235
	if c := renderSchedule(t, mustSchedule(t, reseeded)); c == a {
		t.Fatalf("different seeds produced identical schedules")
	}
}

func TestScheduleInvariants(t *testing.T) {
	p := Profile{
		Seed:   99,
		Cycles: 3,
		Phases: []Phase{
			{DurationSeconds: 1, RatePerSec: 30},
			{DurationSeconds: 2, RatePerSec: 40, Model: "bursty", BurstFraction: 0.3},
		},
		Cohorts: []Cohort{
			{Name: "a", Weight: 2, Spec: json.RawMessage(`{}`)},
			{Name: "b", Weight: 1, Spec: json.RawMessage(`{}`)},
		},
	}
	sched := mustSchedule(t, p)
	if len(sched) == 0 {
		t.Fatalf("empty schedule")
	}
	total := time.Duration((1 + 2) * 3 * float64(time.Second))
	phases := len(p.Phases) * 3
	var prev time.Duration
	for i, a := range sched {
		if a.At < prev {
			t.Fatalf("arrival %d at %v precedes arrival %d at %v", i, a.At, i-1, prev)
		}
		prev = a.At
		if a.At < 0 || a.At >= total {
			t.Fatalf("arrival %d at %v outside the run [0, %v)", i, a.At, total)
		}
		if a.Cohort < 0 || a.Cohort > 1 {
			t.Fatalf("arrival %d cohort %d out of range", i, a.Cohort)
		}
		if a.Phase < 0 || a.Phase >= phases {
			t.Fatalf("arrival %d phase %d out of range", i, a.Phase)
		}
		// Burst states only exist in the bursty phase (odd flat index).
		if a.Burst && a.Phase%2 == 0 {
			t.Fatalf("arrival %d marked burst in a poisson phase", i)
		}
	}
}

func TestProfileNormalize(t *testing.T) {
	valid := Profile{
		Seed:    1,
		Phases:  []Phase{{DurationSeconds: 1, RatePerSec: 1, Model: "bursty"}},
		Cohorts: oneCohort(),
	}
	norm, err := valid.Normalize()
	if err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	ph := norm.Phases[0]
	if norm.Cycles != 1 || ph.BurstFactor != 8 || ph.BurstFraction != 0.1 || ph.BurstMeanSeconds != 0.5 {
		t.Fatalf("defaults not applied: cycles=%d phase=%+v", norm.Cycles, ph)
	}
	// Normalize must not mutate the caller's phase slice.
	if valid.Phases[0].BurstFactor != 0 {
		t.Fatalf("Normalize mutated the input profile")
	}

	bad := []struct {
		name   string
		mutate func(*Profile)
	}{
		{"zero seed", func(p *Profile) { p.Seed = 0 }},
		{"negative cycles", func(p *Profile) { p.Cycles = -1 }},
		{"no phases", func(p *Profile) { p.Phases = nil }},
		{"zero duration", func(p *Profile) { p.Phases[0].DurationSeconds = 0 }},
		{"zero rate", func(p *Profile) { p.Phases[0].RatePerSec = 0 }},
		{"unknown model", func(p *Profile) { p.Phases[0].Model = "fractal" }},
		{"burst factor <= 1", func(p *Profile) { p.Phases[0].BurstFactor = 1 }},
		{"burst fraction >= 1", func(p *Profile) { p.Phases[0].BurstFraction = 1 }},
		{"negative burst dwell", func(p *Profile) { p.Phases[0].BurstMeanSeconds = -1 }},
		{"no cohorts", func(p *Profile) { p.Cohorts = nil }},
		{"unnamed cohort", func(p *Profile) { p.Cohorts[0].Name = "" }},
		{"zero weight", func(p *Profile) { p.Cohorts[0].Weight = 0 }},
		{"missing spec", func(p *Profile) { p.Cohorts[0].Spec = nil }},
		{"invalid spec", func(p *Profile) { p.Cohorts[0].Spec = json.RawMessage(`{`) }},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			p := Profile{
				Seed:    1,
				Phases:  []Phase{{DurationSeconds: 1, RatePerSec: 1, Model: "bursty"}},
				Cohorts: []Cohort{{Name: "a", Weight: 1, Spec: json.RawMessage(`{}`)}},
			}
			tc.mutate(&p)
			if _, err := p.Normalize(); err == nil {
				t.Fatalf("Normalize accepted %s", tc.name)
			}
		})
	}
}
