//go:build redhipassert

package redhipassert

// Enabled selects the checked build: `go test -tags redhipassert`
// re-validates every structural invariant after each mutation.
const Enabled = true
