//go:build !redhipassert

package redhipassert

// Enabled is false in production builds; `if redhipassert.Enabled`
// blocks are dead-code-eliminated and cost nothing on the hot path.
const Enabled = false
