// Package redhipassert is the build-tag-gated assertion layer for the
// simulator's structural invariants: the inclusive-hierarchy contract,
// the prediction-table mirror, the packed recency-order permutations.
//
// Hot code guards its checks with
//
//	if redhipassert.Enabled {
//	    redhipassert.Check(c.orderIsPermutation(si), "cache: recency order corrupted")
//	}
//
// Enabled is a constant selected by the `redhipassert` build tag: false
// in production builds, so the compiler deletes the guarded block and
// the hot path pays nothing; true under `go test -tags redhipassert`,
// where every mutation is re-validated. The invariant analyzer in
// internal/analysis/invariant statically requires exported mutating
// methods on the guarded types to carry such a check.
package redhipassert

// Check panics with msg when cond is false. Messages must be prefixed
// with the calling package's name ("cache: ...") — redhip-lint's
// invariant pass enforces this so a firing assertion names its
// subsystem.
func Check(cond bool, msg string) {
	if !cond {
		panic(msg)
	}
}
