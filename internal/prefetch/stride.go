// Package prefetch implements the hardware stride prefetcher the paper
// combines with ReDHiP in Section V-C: a PC-indexed reference
// prediction table in the style of Fu, Patel and Janssens [8], with the
// classic initial/transient/steady state machine. The paper sizes the
// table "large enough so that its accuracy is comparable with the best
// prefetching techniques"; the default configuration follows suit.
package prefetch

import (
	"fmt"

	"redhip/internal/memaddr"
)

// Config parameterises the prefetcher.
type Config struct {
	// TableEntries is the number of reference-prediction-table entries
	// (power of two).
	TableEntries int
	// Degree is how many blocks ahead are prefetched once a stride is
	// steady.
	Degree int
}

// DefaultConfig returns the configuration used in the evaluation: a
// generously sized table with degree-2 prefetch.
func DefaultConfig() Config { return Config{TableEntries: 4096, Degree: 2} }

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.TableEntries <= 0 || !memaddr.IsPow2(uint64(c.TableEntries)) {
		return fmt.Errorf("prefetch: table entries %d must be a positive power of two", c.TableEntries)
	}
	if c.Degree <= 0 || c.Degree > 8 {
		return fmt.Errorf("prefetch: degree %d outside [1,8]", c.Degree)
	}
	return nil
}

// Entry states of the reference prediction table.
const (
	stateInitial uint8 = iota
	stateTransient
	stateSteady
)

type rptEntry struct {
	pc       memaddr.Addr
	lastAddr memaddr.Addr
	stride   int64
	state    uint8
	valid    bool
}

// Stats counts prefetcher activity.
type Stats struct {
	Observations uint64 // misses the prefetcher trained on
	Issued       uint64 // prefetch addresses emitted
	SteadyHits   uint64 // observations that found a steady entry
}

// Prefetcher is one core's stride prefetcher. Not safe for concurrent
// use; the simulator gives each core its own.
type Prefetcher struct {
	entries []rptEntry
	mask    uint64 //redhip:transient derived from the entry count, rebuilt by New
	degree  int    //redhip:transient construction-time config knob
	stats   Stats  //redhip:transient measurement counters, deliberately reset at the snapshot boundary
}

// New builds a prefetcher.
func New(cfg Config) (*Prefetcher, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Prefetcher{
		entries: make([]rptEntry, cfg.TableEntries),
		mask:    uint64(cfg.TableEntries - 1),
		degree:  cfg.Degree,
	}, nil
}

// Observe trains the prefetcher on a demand access (pc, addr) and
// appends up to Degree prefetch block addresses to out, returning it.
// The state machine is the classic RPT:
//
//	miss in table          -> allocate, initial
//	stride repeats         -> promote toward steady; steady issues
//	stride changes         -> demote toward initial, learn new stride
//
//redhip:hotpath
func (p *Prefetcher) Observe(pc, addr memaddr.Addr, out []memaddr.Addr) []memaddr.Addr {
	p.stats.Observations++
	e := &p.entries[uint64(pc)&p.mask]
	if !e.valid || e.pc != pc {
		*e = rptEntry{pc: pc, lastAddr: addr, state: stateInitial, valid: true} //redhip:allow alloc -- value store into the table slot, no heap allocation
		return out
	}
	newStride := int64(addr) - int64(e.lastAddr)
	e.lastAddr = addr
	if newStride == 0 {
		return out
	}
	if newStride == e.stride {
		if e.state < stateSteady {
			e.state++
		}
	} else {
		if e.state == stateSteady {
			e.state = stateTransient
		} else {
			e.state = stateInitial
		}
		e.stride = newStride
		return out
	}
	if e.state != stateSteady {
		return out
	}
	p.stats.SteadyHits++
	for d := 1; d <= p.degree; d++ {
		target := int64(addr) + int64(d)*e.stride
		if target < 0 {
			break
		}
		block := memaddr.Addr(target).Block()
		// Skip duplicates within this burst (small strides stay in the
		// same block).
		if len(out) > 0 && out[len(out)-1] == block {
			continue
		}
		if block == addr.Block() {
			continue
		}
		out = append(out, block) //redhip:allow alloc -- amortised growth; the engine retains the buffer across calls
		p.stats.Issued++
	}
	return out
}

// EntryState is one RPT row in serialisable form, used by the
// warm-state snapshot layer.
type EntryState struct {
	PC       uint64
	LastAddr uint64
	Stride   int64
	State    uint8
	Valid    bool
}

// SnapshotEntries copies out the trained table. Stats are not
// captured — the warmup/measure boundary resets them.
func (p *Prefetcher) SnapshotEntries() []EntryState {
	out := make([]EntryState, len(p.entries))
	for i, e := range p.entries {
		out[i] = EntryState{
			PC:       uint64(e.pc),
			LastAddr: uint64(e.lastAddr),
			Stride:   e.stride,
			State:    e.state,
			Valid:    e.valid,
		}
	}
	return out
}

// RestoreEntries overwrites the trained table with a
// previously-snapshotted state of matching size.
func (p *Prefetcher) RestoreEntries(entries []EntryState) error {
	if len(entries) != len(p.entries) {
		return fmt.Errorf("prefetch: snapshot has %d RPT entries, table needs %d", len(entries), len(p.entries))
	}
	for i, e := range entries {
		if e.State > stateSteady {
			return fmt.Errorf("prefetch: snapshot entry %d has invalid state %d", i, e.State)
		}
		p.entries[i] = rptEntry{
			pc:       memaddr.Addr(e.PC),
			lastAddr: memaddr.Addr(e.LastAddr),
			stride:   e.Stride,
			state:    e.State,
			valid:    e.Valid,
		}
	}
	return nil
}

// Stats returns a snapshot of the counters.
func (p *Prefetcher) Stats() Stats { return p.stats }

// ResetStats clears the counters but keeps the trained table, so a
// warmed-up prefetcher can be measured from a clean slate.
func (p *Prefetcher) ResetStats() { p.stats = Stats{} }
