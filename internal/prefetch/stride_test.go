package prefetch

import (
	"testing"

	"redhip/internal/memaddr"
)

func newPF(t *testing.T) *Prefetcher {
	t.Helper()
	p, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestConfigValidation(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{TableEntries: 0, Degree: 2},
		{TableEntries: 100, Degree: 2},
		{TableEntries: 1024, Degree: 0},
		{TableEntries: 1024, Degree: 99},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v accepted", c)
		}
	}
	if _, err := New(Config{TableEntries: 3, Degree: 1}); err == nil {
		t.Error("New accepted bad config")
	}
}

func TestSteadyStreamPrefetches(t *testing.T) {
	p := newPF(t)
	pc := memaddr.Addr(0x400100)
	var out []memaddr.Addr
	// Stride of one block: after the training accesses, prefetches the
	// next blocks ahead.
	for i := 0; i < 6; i++ {
		out = p.Observe(pc, memaddr.Addr(0x10000+i*64), out[:0])
	}
	if len(out) == 0 {
		t.Fatal("steady stride issued no prefetches")
	}
	// Last access was 0x10140; degree-2 prefetch => blocks of
	// 0x10180 and 0x101c0.
	want := []memaddr.Addr{memaddr.Addr(0x10180).Block(), memaddr.Addr(0x101c0).Block()}
	if len(out) != 2 || out[0] != want[0] || out[1] != want[1] {
		t.Fatalf("prefetched %v, want %v", out, want)
	}
}

func TestTrainingTakesThreeStrides(t *testing.T) {
	p := newPF(t)
	pc := memaddr.Addr(0x400100)
	// First access allocates; 2nd sets stride (initial->transient needs
	// a repeat). No prefetch may fire before the stride repeated twice.
	out := p.Observe(pc, 0x1000, nil)
	out = p.Observe(pc, 0x1040, out)
	if len(out) != 0 {
		t.Fatal("prefetched after a single stride observation")
	}
}

func TestStrideChangeResets(t *testing.T) {
	p := newPF(t)
	pc := memaddr.Addr(0x400100)
	var out []memaddr.Addr
	for i := 0; i < 6; i++ {
		out = p.Observe(pc, memaddr.Addr(0x10000+i*64), out[:0])
	}
	if len(out) == 0 {
		t.Fatal("not steady")
	}
	// Break the stride: no prefetch on the disruption.
	out = p.Observe(pc, 0x900000, out[:0])
	if len(out) != 0 {
		t.Fatal("prefetched on broken stride")
	}
	// One repeat of the old stride must not immediately re-issue
	// (demoted to transient).
	out = p.Observe(pc, 0x900040, out[:0])
	if len(out) != 0 {
		t.Fatal("prefetched while transient after disruption")
	}
}

func TestRandomPCsDoNotPrefetch(t *testing.T) {
	p := newPF(t)
	var out []memaddr.Addr
	// Pointer-chase pattern: same PC, erratic strides.
	addrs := []memaddr.Addr{0x1000, 0x88000, 0x2040, 0x440000, 0x99c0, 0x123000}
	for _, a := range addrs {
		out = p.Observe(0x400100, a, out[:0])
		if len(out) != 0 {
			t.Fatalf("prefetched on erratic stride at %v", a)
		}
	}
}

func TestDistinctPCsIndependent(t *testing.T) {
	p := newPF(t)
	var out []memaddr.Addr
	// Two interleaved streams on different PCs must both reach steady.
	issued := 0
	for i := 0; i < 8; i++ {
		out = p.Observe(0x400100, memaddr.Addr(0x10000+i*64), out[:0])
		issued += len(out)
		out = p.Observe(0x400200, memaddr.Addr(0x500000+i*128), out[:0])
		issued += len(out)
	}
	if issued == 0 {
		t.Fatal("interleaved streams never prefetched")
	}
}

func TestPCCollisionReallocates(t *testing.T) {
	cfg := Config{TableEntries: 1, Degree: 1} // every PC collides
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var out []memaddr.Addr
	out = p.Observe(0x100, 0x1000, out[:0])
	out = p.Observe(0x200, 0x2000, out[:0]) // evicts PC 0x100's entry
	out = p.Observe(0x100, 0x1040, out[:0])
	if len(out) != 0 {
		t.Fatal("prefetched from a stale reallocated entry")
	}
}

func TestZeroStrideIgnored(t *testing.T) {
	p := newPF(t)
	var out []memaddr.Addr
	for i := 0; i < 10; i++ {
		out = p.Observe(0x400100, 0x1000, out[:0])
		if len(out) != 0 {
			t.Fatal("prefetched on zero stride")
		}
	}
}

func TestSubBlockStrideDeduplicates(t *testing.T) {
	// An 8-byte stride advances within the same block; prefetch targets
	// must not contain the current block and must deduplicate.
	p, err := New(Config{TableEntries: 64, Degree: 2})
	if err != nil {
		t.Fatal(err)
	}
	var out []memaddr.Addr
	for i := 0; i < 20; i++ {
		out = p.Observe(0x400100, memaddr.Addr(0x10000+i*8), out[:0])
		for _, b := range out {
			if b == memaddr.Addr(0x10000+i*8).Block() {
				t.Fatal("prefetched the currently accessed block")
			}
		}
	}
}

func TestNegativeStride(t *testing.T) {
	p := newPF(t)
	var out []memaddr.Addr
	for i := 10; i >= 0; i-- {
		out = p.Observe(0x400100, memaddr.Addr(0x10000+i*64), out[:0])
	}
	if len(out) == 0 {
		t.Fatal("descending stream never prefetched")
	}
	// Prefetch targets go downward.
	if out[0] >= memaddr.Addr(0x10000).Block() {
		t.Fatalf("descending prefetch target %v not below stream", out[0])
	}
}

func TestStatsCount(t *testing.T) {
	p := newPF(t)
	var out []memaddr.Addr
	for i := 0; i < 10; i++ {
		out = p.Observe(0x400100, memaddr.Addr(0x10000+i*64), out[:0])
	}
	s := p.Stats()
	if s.Observations != 10 {
		t.Errorf("observations %d", s.Observations)
	}
	if s.Issued == 0 || s.SteadyHits == 0 {
		t.Errorf("stats %+v", s)
	}
}
