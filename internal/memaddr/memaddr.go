// Package memaddr defines the physical-address type used throughout the
// simulator and the bit-field arithmetic the paper's Figure 3 describes:
// a 64-byte block offset, a k-bit cache set index, and the remaining tag
// bits. The ReDHiP prediction-table index ("bits-hash") is the lowest p
// bits of the block address, so the set index is always a suffix of the
// PT index whenever p >= k.
package memaddr

import "fmt"

// Addr is a 64-bit physical byte address.
type Addr uint64

// BlockBits is the number of block-offset bits for the 64-byte cache
// blocks used everywhere in the paper (Figure 3).
const BlockBits = 6

// BlockSize is the cache block size in bytes.
const BlockSize = 1 << BlockBits

// Block returns the block address (byte address with the offset removed).
func (a Addr) Block() Addr { return a >> BlockBits }

// BlockBase returns the first byte address of the block containing a.
func (a Addr) BlockBase() Addr { return a &^ (BlockSize - 1) }

// Offset returns the byte offset of a within its block.
func (a Addr) Offset() uint { return uint(a & (BlockSize - 1)) }

// FromBlock converts a block address back to the byte address of the
// block's first byte.
func FromBlock(block Addr) Addr { return block << BlockBits }

// String renders the address in hex, e.g. "0x00007f2a4c10".
func (a Addr) String() string { return fmt.Sprintf("0x%012x", uint64(a)) }

// SetIndex extracts the set index of a block address for a cache with
// 2^setBits sets. The argument must be a block address (already shifted).
func SetIndex(block Addr, setBits uint) uint64 {
	return uint64(block) & (1<<setBits - 1)
}

// Tag extracts the tag of a block address for a cache with 2^setBits
// sets: everything above the set index.
func Tag(block Addr, setBits uint) uint64 {
	return uint64(block) >> setBits
}

// BlockFromSetTag reconstructs a block address from its set index and
// tag for a cache with 2^setBits sets. It is the inverse of
// SetIndex/Tag and is used by the recalibration logic, which walks the
// LLC tag array set by set.
func BlockFromSetTag(set, tag uint64, setBits uint) Addr {
	return Addr(tag<<setBits | set&(1<<setBits-1))
}

// PTIndex computes the ReDHiP bits-hash: the lowest pBits bits of the
// block address (Figure 3). The block offset must already be removed.
func PTIndex(block Addr, pBits uint) uint64 {
	return uint64(block) & (1<<pBits - 1)
}

func isPow2(v uint64) bool { return v != 0 && v&(v-1) == 0 }

// IsPow2 reports whether v is a power of two.
func IsPow2(v uint64) bool { return isPow2(v) }

// CheckedLog2 returns log2(v), or an error when v is not a power of two.
func CheckedLog2(what string, v uint64) (uint, error) {
	if !isPow2(v) {
		return 0, fmt.Errorf("memaddr: %s (%d) must be a power of two", what, v)
	}
	var bits uint
	for v > 1 {
		v >>= 1
		bits++
	}
	return bits, nil
}
