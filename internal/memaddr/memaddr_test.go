package memaddr

import (
	"testing"
	"testing/quick"
)

func TestBlockAndOffset(t *testing.T) {
	cases := []struct {
		addr   Addr
		block  Addr
		offset uint
	}{
		{0, 0, 0},
		{1, 0, 1},
		{63, 0, 63},
		{64, 1, 0},
		{65, 1, 1},
		{0xffff_ffff_ffff_ffff, 0x03ff_ffff_ffff_ffff, 63},
	}
	for _, c := range cases {
		if got := c.addr.Block(); got != c.block {
			t.Errorf("Block(%v) = %v, want %v", c.addr, got, c.block)
		}
		if got := c.addr.Offset(); got != c.offset {
			t.Errorf("Offset(%v) = %d, want %d", c.addr, got, c.offset)
		}
	}
}

func TestBlockBase(t *testing.T) {
	if got := Addr(130).BlockBase(); got != 128 {
		t.Fatalf("BlockBase(130) = %d, want 128", got)
	}
	if got := Addr(128).BlockBase(); got != 128 {
		t.Fatalf("BlockBase(128) = %d, want 128", got)
	}
}

func TestFromBlockRoundTrip(t *testing.T) {
	f := func(raw uint64) bool {
		block := Addr(raw).Block()
		return FromBlock(block).Block() == block
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSetIndexTagRoundTrip(t *testing.T) {
	// For any block address and any set-bit width, splitting into
	// (set, tag) and recombining must reproduce the block address.
	f := func(raw uint64, widthSeed uint8) bool {
		setBits := uint(widthSeed % 32)
		block := Addr(raw) >> BlockBits
		set := SetIndex(block, setBits)
		tag := Tag(block, setBits)
		return BlockFromSetTag(set, tag, setBits) == block
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPTIndexContainsSetIndex(t *testing.T) {
	// Paper, Figure 3: as long as p > k, the PT index contains the set
	// index as its low-order bits, so blocks that collide in the PT
	// also collide in the cache set.
	f := func(raw uint64) bool {
		block := Addr(raw).Block()
		const k, p = 16, 22
		set := SetIndex(block, k)
		pt := PTIndex(block, p)
		return pt&(1<<k-1) == set
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPTIndexWidth(t *testing.T) {
	for p := uint(1); p <= 40; p++ {
		idx := PTIndex(Addr(0xffff_ffff_ffff_ffff), p)
		if idx != 1<<p-1 {
			t.Errorf("PTIndex(all-ones, %d) = %#x, want %#x", p, idx, uint64(1)<<p-1)
		}
	}
}

func TestIsPow2(t *testing.T) {
	for _, v := range []uint64{1, 2, 4, 1024, 1 << 40} {
		if !IsPow2(v) {
			t.Errorf("IsPow2(%d) = false, want true", v)
		}
	}
	for _, v := range []uint64{0, 3, 6, 1023, 1<<40 + 1} {
		if IsPow2(v) {
			t.Errorf("IsPow2(%d) = true, want false", v)
		}
	}
}

func TestCheckedLog2(t *testing.T) {
	bits, err := CheckedLog2("size", 65536)
	if err != nil || bits != 16 {
		t.Fatalf("CheckedLog2(65536) = %d, %v; want 16, nil", bits, err)
	}
	if _, err := CheckedLog2("size", 100); err == nil {
		t.Fatal("CheckedLog2(100) succeeded, want error")
	}
	if _, err := CheckedLog2("size", 0); err == nil {
		t.Fatal("CheckedLog2(0) succeeded, want error")
	}
}

func TestStringFormat(t *testing.T) {
	if got := Addr(0x7f2a4c10).String(); got != "0x00007f2a4c10" {
		t.Fatalf("String = %q", got)
	}
}

func TestPaperGeometry(t *testing.T) {
	// The paper's base design: 64 MB LLC, 16-way, 64 B blocks gives
	// 65536 sets (k = 16); a 512 KB 1-bit PT gives 2^22 entries
	// (p = 22); p - k = 6, one 64-bit PT line per LLC set.
	sets := uint64(64 * 1024 * 1024 / 64 / 16)
	k, err := CheckedLog2("sets", sets)
	if err != nil || k != 16 {
		t.Fatalf("k = %d, %v; want 16", k, err)
	}
	ptEntries := uint64(512 * 1024 * 8)
	p, err := CheckedLog2("pt entries", ptEntries)
	if err != nil || p != 22 {
		t.Fatalf("p = %d, %v; want 22", p, err)
	}
	if p-k != 6 {
		t.Fatalf("p-k = %d, want 6", p-k)
	}
}
