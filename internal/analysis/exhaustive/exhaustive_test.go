package exhaustive_test

import (
	"testing"

	"redhip/internal/analysis/analysistest"
	"redhip/internal/analysis/exhaustive"
)

func TestExhaustive(t *testing.T) {
	analysistest.Run(t, "testdata", exhaustive.Analyzer, "sim")
}
