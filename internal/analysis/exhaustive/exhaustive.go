// Package exhaustive implements the redhip-lint exhaustive-scheme
// analyzer. The simulator's behaviour enums — sim.Scheme,
// sim.InclusionPolicy, cache.ReplacementPolicy, core.HashKind,
// workload.ComponentKind — gate dispatch throughout the engine; a
// switch that lists only some variants lets a newly added sixth scheme
// silently fall through to default (or no-op) behaviour.
//
// For every switch whose tag is one of the checked enum types, each
// constant of that type declared in the type's package must appear in
// some case clause. A default clause is still allowed — it serves the
// "corrupt value" path of String() methods — but it does not excuse a
// missing variant, because falling into default is exactly the silent
// degradation this analyzer exists to prevent. Suppress with
// //redhip:allow nonexhaustive on the switch.
package exhaustive

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"redhip/internal/analysis"
)

// Analyzer is the exhaustive-scheme pass.
var Analyzer = &analysis.Analyzer{
	Name: "exhaustive",
	Doc: "require switches over the scheme/inclusion/policy enums to cover every " +
		"declared variant, so adding a variant cannot silently fall through",
	Run: run,
}

// checkedEnums maps (package tail, type name) to true for the enum
// types whose switches must be exhaustive. Matching by package tail
// keeps the rule identical for the real module and fixture corpora.
var checkedEnums = map[[2]string]bool{
	{"sim", "Scheme"}:              true,
	{"sim", "InclusionPolicy"}:     true,
	{"cache", "ReplacementPolicy"}: true,
	{"core", "HashKind"}:           true,
	{"workload", "ComponentKind"}:  true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			decl, _ := d.(*ast.FuncDecl)
			ast.Inspect(d, func(n ast.Node) bool {
				sw, ok := n.(*ast.SwitchStmt)
				if !ok || sw.Tag == nil {
					return true
				}
				checkSwitch(pass, decl, sw)
				return true
			})
		}
	}
	return nil
}

func checkSwitch(pass *analysis.Pass, decl *ast.FuncDecl, sw *ast.SwitchStmt) {
	tv, ok := pass.TypesInfo.Types[sw.Tag]
	if !ok || tv.Type == nil {
		return
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return
	}
	key := [2]string{analysis.PathTail(obj.Pkg().Path()), obj.Name()}
	if !checkedEnums[key] {
		return
	}
	if pass.Ann.Allowed(sw.Pos(), decl, "nonexhaustive") {
		return
	}
	variants := enumConstants(obj.Pkg(), named)
	if len(variants) < 2 {
		return
	}
	covered := make(map[string]bool)
	for _, stmt := range sw.Body.List {
		clause, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range clause.List {
			// Resolve the case expression to a constant of the enum
			// type, through selectors (sim.Base) and bare idents (Base).
			var id *ast.Ident
			switch e := ast.Unparen(e).(type) {
			case *ast.Ident:
				id = e
			case *ast.SelectorExpr:
				id = e.Sel
			default:
				continue
			}
			if c, ok := pass.TypesInfo.Uses[id].(*types.Const); ok {
				covered[c.Name()] = true
			}
		}
	}
	var missing []string
	for _, v := range variants {
		if !covered[v] {
			missing = append(missing, v)
		}
	}
	if len(missing) > 0 {
		pass.Reportf(sw.Pos(),
			"switch over %s.%s misses variant(s) %s; cover every variant (or annotate //redhip:allow nonexhaustive) so new variants cannot fall through silently",
			key[0], obj.Name(), strings.Join(missing, ", "))
	}
}

// enumConstants lists the names of pkg's package-level constants whose
// type is exactly the named enum type, in declaration order.
func enumConstants(pkg *types.Package, named *types.Named) []string {
	type nameAndPos struct {
		name string
		pos  int
	}
	var consts []nameAndPos
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		if types.Identical(c.Type(), named) {
			consts = append(consts, nameAndPos{name: c.Name(), pos: int(c.Pos())})
		}
	}
	sort.Slice(consts, func(i, j int) bool { return consts[i].pos < consts[j].pos })
	names := make([]string, len(consts))
	for i, c := range consts {
		names[i] = c.name
	}
	return names
}
