// Package sim is an exhaustive-analyzer fixture mirroring the real
// scheme and inclusion enums (matched by package tail + type name).
package sim

type Scheme int

const (
	Base Scheme = iota
	Phased
	CBF
	ReDHiP
	Oracle
)

type InclusionPolicy int

const (
	Inclusive InclusionPolicy = iota
	Hybrid
	Exclusive
)

// name misses Oracle; the default clause does not excuse it.
func name(s Scheme) string {
	switch s { // want `switch over sim.Scheme misses variant\(s\) Oracle`
	case Base:
		return "base"
	case Phased:
		return "phased"
	case CBF:
		return "cbf"
	case ReDHiP:
		return "redhip"
	default:
		return "?"
	}
}

// full covers every variant, including via multi-value cases.
func full(s Scheme) bool {
	switch s {
	case Base, Phased:
		return false
	case CBF, ReDHiP, Oracle:
		return true
	}
	return false
}

// allowedPartial carries the reviewed escape hatch.
func allowedPartial(s Scheme) bool {
	//redhip:allow nonexhaustive -- only phased-family schemes reach here
	switch s {
	case Phased, CBF:
		return true
	}
	return false
}

func otherEnum(p InclusionPolicy) string {
	switch p { // want `switch over sim.InclusionPolicy misses variant\(s\) Exclusive`
	case Inclusive:
		return "inclusive"
	case Hybrid:
		return "hybrid"
	}
	return ""
}

type local int

const (
	localA local = iota
	localB
)

// uncheckedType proves enums outside the configured set are ignored.
func uncheckedType(v local) bool {
	switch v {
	case localA:
		return true
	}
	return false
}
