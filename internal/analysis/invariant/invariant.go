// Package invariant implements the redhip-lint invariant analyzer.
// The structural contracts of the hierarchy — each cache set's packed
// recency order stays a permutation, the prediction table mirrors the
// LLC's live tags — are enforced at runtime by the redhipassert
// build-tag layer. This pass closes the loop statically:
//
//   - every exported method on the guarded types (cache.Cache,
//     core.Table) that mutates its receiver must execute (or call into)
//     a redhipassert check, so a new mutator cannot silently skip the
//     contract — check "noassert";
//   - every panic() and redhipassert.Check message built from a string
//     literal must start with the package name and a colon
//     ("cache: ...", "core: ..."), so a firing assertion names its
//     subsystem — check "panicmsg".
//
// Receiver mutation is detected syntactically: an assignment,
// increment/decrement, or delete whose target is rooted at the
// receiver identifier. Methods that mutate only through helpers
// therefore satisfy the rule by calling a same-type helper that is
// itself covered, or carry //redhip:allow noassert with the reason.
package invariant

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"redhip/internal/analysis"
)

// Analyzer is the invariant pass.
var Analyzer = &analysis.Analyzer{
	Name: "invariant",
	Doc: "require exported mutating methods on cache.Cache and core.Table to run a " +
		"redhipassert check, and panic/assert messages to be package-prefixed",
	Run: run,
}

// guardedTypes maps (package tail, receiver type name) to true for the
// types whose exported mutators must uphold their structural contract
// through redhipassert.
var guardedTypes = map[[2]string]bool{
	{"cache", "Cache"}: true,
	{"core", "Table"}:  true,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg == nil || !analysis.IsSimulationPackage(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			checkPanicMessages(pass, decl)
			checkMutator(pass, decl)
		}
	}
	return nil
}

// checkMutator flags exported guarded-type methods that write their
// receiver without touching redhipassert.
func checkMutator(pass *analysis.Pass, decl *ast.FuncDecl) {
	recvName, ok := guardedReceiver(pass, decl)
	if !ok || !decl.Name.IsExported() {
		return
	}
	if !mutatesReceiver(decl, recvName) {
		return
	}
	if usesAssert(pass, decl) {
		return
	}
	if pass.Ann.Allowed(decl.Pos(), decl, "noassert") {
		return
	}
	pass.Reportf(decl.Name.Pos(),
		"exported mutating method %s writes its receiver without a redhipassert check; guard the post-state (or annotate //redhip:allow noassert with the reason)",
		decl.Name.Name)
}

// guardedReceiver returns the receiver identifier name when decl is a
// method on one of the guarded types.
func guardedReceiver(pass *analysis.Pass, decl *ast.FuncDecl) (string, bool) {
	if decl.Recv == nil || len(decl.Recv.List) != 1 {
		return "", false
	}
	field := decl.Recv.List[0]
	tv, ok := pass.TypesInfo.Types[field.Type]
	if !ok {
		return "", false
	}
	t := tv.Type
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", false
	}
	key := [2]string{analysis.PathTail(named.Obj().Pkg().Path()), named.Obj().Name()}
	if !guardedTypes[key] {
		return "", false
	}
	if len(field.Names) == 0 || field.Names[0].Name == "_" {
		return "", false
	}
	return field.Names[0].Name, true
}

// mutatesReceiver reports whether the method body writes through the
// receiver: an assignment/inc-dec target or delete() map rooted at the
// receiver identifier.
func mutatesReceiver(decl *ast.FuncDecl, recvName string) bool {
	mutates := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if mutates {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if rootedAt(lhs, recvName) {
					mutates = true
					return false
				}
			}
		case *ast.IncDecStmt:
			if rootedAt(n.X, recvName) {
				mutates = true
				return false
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "delete" && len(n.Args) == 2 && rootedAt(n.Args[0], recvName) {
				mutates = true
				return false
			}
		}
		return true
	})
	return mutates
}

// rootedAt reports whether expr is the receiver identifier or a
// selector/index/deref chain hanging off it (c.stats.hits, c.sets[i]).
func rootedAt(expr ast.Expr, recvName string) bool {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			return e.Name == recvName
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		default:
			return false
		}
	}
}

// usesAssert reports whether the body references the redhipassert
// package (an Enabled guard or a Check call) or calls another method on
// the same receiver type — delegation counts because the callee method
// is itself subject to this pass.
func usesAssert(pass *analysis.Pass, decl *ast.FuncDecl) bool {
	found := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok {
			if pkgName, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok &&
				analysis.PathTail(pkgName.Imported().Path()) == "redhipassert" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// checkPanicMessages flags panic() and redhipassert.Check calls whose
// string-literal message does not start with "<pkg>:" — the rule the
// panic-path regression tests pin down.
func checkPanicMessages(pass *analysis.Pass, decl *ast.FuncDecl) {
	pkgTail := analysis.PathTail(pass.Pkg.Path())
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var msgArg ast.Expr
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if fun.Name != "panic" || len(call.Args) != 1 {
				return true
			}
			if _, isBuiltin := pass.TypesInfo.Uses[fun].(*types.Builtin); !isBuiltin {
				return true
			}
			msgArg = call.Args[0]
		case *ast.SelectorExpr:
			id, ok := fun.X.(*ast.Ident)
			if !ok || fun.Sel.Name != "Check" {
				return true
			}
			pkgName, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
			if !ok || analysis.PathTail(pkgName.Imported().Path()) != "redhipassert" {
				return true
			}
			if len(call.Args) < 2 {
				return true
			}
			msgArg = call.Args[1]
		default:
			return true
		}
		lit, ok := messageLiteral(msgArg)
		if !ok {
			return true
		}
		if strings.HasPrefix(lit, pkgTail+":") {
			return true
		}
		if pass.Ann.Allowed(call.Pos(), decl, "panicmsg") {
			return true
		}
		pass.Reportf(call.Pos(),
			"panic/assert message %q must start with %q so a firing invariant names its package",
			lit, pkgTail+": ")
		return true
	})
}

// messageLiteral digs the string literal out of the message argument:
// a plain literal, or the format string of fmt.Sprintf/fmt.Errorf.
func messageLiteral(e ast.Expr) (string, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.BasicLit:
		if e.Kind != token.STRING {
			return "", false
		}
		s, err := strconv.Unquote(e.Value)
		return s, err == nil
	case *ast.CallExpr:
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == "fmt" &&
				(sel.Sel.Name == "Sprintf" || sel.Sel.Name == "Errorf") && len(e.Args) > 0 {
				return messageLiteral(e.Args[0])
			}
		}
	}
	return "", false
}
