package invariant_test

import (
	"testing"

	"redhip/internal/analysis/analysistest"
	"redhip/internal/analysis/invariant"
)

func TestInvariant(t *testing.T) {
	analysistest.Run(t, "testdata", invariant.Analyzer, "cache")
}
