// Package cache is an invariant-analyzer fixture mirroring the guarded
// cache.Cache type.
package cache

import (
	"fmt"

	"redhipassert"
)

type Cache struct {
	tags []uint64
	hits int
}

// Fill mutates structural state with no assertion anywhere in its body.
func (c *Cache) Fill(tag uint64) { // want `exported mutating method Fill`
	c.tags = append(c.tags, tag)
}

// Lookup guards its post-state with the assertion layer.
func (c *Cache) Lookup(tag uint64) bool {
	c.hits++
	if redhipassert.Enabled {
		redhipassert.Check(c.hits >= 0, "cache: hit counter underflow")
	}
	return true
}

// ResetStats carries the reviewed escape hatch.
//
//redhip:allow noassert -- stats-only mutation, no structural state
func (c *Cache) ResetStats() {
	c.hits = 0
}

// Contains is read-only: no assertion required.
func (c *Cache) Contains(tag uint64) bool {
	for _, t := range c.tags {
		if t == tag {
			return true
		}
	}
	return false
}

// drop is unexported: helpers are covered through their exported
// callers, not directly.
func (c *Cache) drop() {
	c.tags = c.tags[:0]
}

func (c *Cache) badPanic(i int) uint64 {
	if i >= len(c.tags) {
		panic("index out of range for tags") // want `must start with "cache: "`
	}
	return c.tags[i]
}

func (c *Cache) badPanicf(i int) {
	panic(fmt.Sprintf("tag %d missing", i)) // want `must start with "cache: "`
}

func (c *Cache) goodPanic(i int) uint64 {
	if i >= len(c.tags) {
		panic(fmt.Sprintf("cache: tag index %d out of range", i))
	}
	return c.tags[i]
}
