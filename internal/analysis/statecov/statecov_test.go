package statecov_test

import (
	"testing"

	"redhip/internal/analysis/analysistest"
	"redhip/internal/analysis/statecov"
)

func TestStatecov(t *testing.T) {
	analysistest.Run(t, "testdata", statecov.Analyzer, "cache", "prefetch", "core")
}
