// Package statecov implements the redhip-lint statecov analyzer:
// snapshot state-coverage for the warm-state serialisation layer.
//
// The simstate codec promises that restoring a snapshot reproduces a
// warm engine bit-identically. That promise breaks the moment someone
// adds a mutable field to a snapshot-reachable struct (cache.Cache,
// core.Table, the predictors, the prefetcher, the engine itself) and
// forgets to thread it through the codec — and it breaks silently,
// only on workloads that exercise the forgotten field. No test can
// enumerate future fields, so the analyzer closes the loop
// structurally: for every type registered in analysis.SnapshotTypes,
// every struct field must either be touched by one of the type's
// registered codec methods (capture or restore — any receiver-rooted
// access counts as serialisation involvement) or carry an explicit
// //redhip:transient <reason> annotation stating why the field is
// deliberately outside the snapshot (config-derived, measurement
// counters zeroed at the boundary, per-run scratch).
//
// A registered codec method that does not exist, or a registered type
// the package no longer declares, is itself a finding, so the registry
// cannot silently go stale.
package statecov

import (
	"go/ast"
	"go/types"
	"strings"

	"redhip/internal/analysis"
)

// Analyzer is the statecov pass.
var Analyzer = &analysis.Analyzer{
	Name: "statecov",
	Doc: "every field of a snapshot-reachable struct (analysis.SnapshotTypes) must be " +
		"serialised by its codec methods or annotated //redhip:transient <reason>",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "main" {
		// Registry keys match import-path tails, and a command or
		// example directory (examples/prefetch) may share a tail with a
		// library package; main packages never host snapshot types.
		return nil
	}
	codecs, ok := analysis.SnapshotTypes[analysis.PathTail(pass.Pkg.Path())]
	if !ok {
		return nil
	}
	for _, codec := range codecs {
		checkType(pass, codec)
	}
	return nil
}

func checkType(pass *analysis.Pass, codec analysis.SnapshotCodec) {
	spec, structAST := findStruct(pass, codec.Type)
	if spec == nil {
		// The registry names a type this package does not declare: the
		// registry went stale (a rename, a move). Report at the package
		// clause so the finding has a stable anchor.
		pass.Reportf(pass.Files[0].Name.Pos(),
			"analysis.SnapshotTypes registers type %s, but package %s does not declare it",
			codec.Type, pass.Pkg.Name())
		return
	}
	obj := pass.Pkg.Scope().Lookup(codec.Type)
	if obj == nil {
		return
	}
	named, ok := obj.Type().(*types.Named)
	if !ok {
		return
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok || structAST == nil {
		pass.Reportf(spec.Name.Pos(), "snapshot type %s is not a struct", codec.Type)
		return
	}

	covered := make(map[*types.Var]bool)
	found := make(map[string]bool)
	structFields := make(map[*types.Var]bool, st.NumFields())
	for i := 0; i < st.NumFields(); i++ {
		structFields[st.Field(i)] = true
	}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil || !isMethodOf(pass, decl, codec.Type) {
				continue
			}
			if !contains(codec.Methods, decl.Name.Name) {
				continue
			}
			found[decl.Name.Name] = true
			ast.Inspect(decl.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				s, ok := pass.TypesInfo.Selections[sel]
				if !ok || s.Kind() != types.FieldVal {
					return true
				}
				if v, ok := s.Obj().(*types.Var); ok && structFields[v] {
					covered[v] = true
				}
				return true
			})
		}
	}
	for _, m := range codec.Methods {
		if !found[m] {
			pass.Reportf(spec.Name.Pos(), "snapshot type %s has no codec method %s (registered in analysis.SnapshotTypes)",
				codec.Type, m)
		}
	}

	// Pair the AST field list with the *types.Var list: each ast.Field
	// contributes one var per name, or exactly one for an embedded
	// field. The pairing gives every field a position to anchor the
	// finding (and the //redhip:transient lookup) on.
	idx := 0
	for _, field := range structAST.Fields.List {
		n := len(field.Names)
		if n == 0 {
			n = 1 // embedded
		}
		for j := 0; j < n; j++ {
			if idx >= st.NumFields() {
				return // type error in the package; nothing sane to check
			}
			v := st.Field(idx)
			idx++
			pos := field.Pos()
			if j < len(field.Names) {
				pos = field.Names[j].Pos()
			}
			if covered[v] || pass.Ann.TransientAt(pos) {
				continue
			}
			pass.Reportf(pos,
				"field %s of snapshot type %s is not serialised by %s and not annotated //redhip:transient — warm restore would silently diverge from a cold run",
				v.Name(), codec.Type, strings.Join(codec.Methods, "/"))
		}
	}
}

// findStruct locates the TypeSpec and StructType AST for name.
func findStruct(pass *analysis.Pass, name string) (*ast.TypeSpec, *ast.StructType) {
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, s := range gd.Specs {
				ts, ok := s.(*ast.TypeSpec)
				if !ok || ts.Name.Name != name {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					return ts, nil
				}
				return ts, st
			}
		}
	}
	return nil, nil
}

// isMethodOf reports whether decl is a method whose receiver base type
// is named typeName.
func isMethodOf(pass *analysis.Pass, decl *ast.FuncDecl, typeName string) bool {
	if decl.Recv == nil || len(decl.Recv.List) != 1 {
		return false
	}
	t := decl.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	id, ok := t.(*ast.Ident)
	return ok && id.Name == typeName
}

func contains(names []string, name string) bool {
	for _, n := range names {
		if n == name {
			return true
		}
	}
	return false
}
