// Package cache is a statecov fixture mirroring the snapshot-reachable
// cache type: covered fields, an annotated transient field, and one
// forgotten field the analyzer must catch.
package cache

// Cache is registered in analysis.SnapshotTypes under the "cache" key
// with codec methods SnapshotState/RestoreSnapshotState.
type Cache struct {
	tagv []uint64
	ord  []uint64
	rng  uint64
	// setBits is derived from the constructor's geometry argument and
	// rebuilt on every NewCache call, so it is deliberately outside the
	// snapshot.
	setBits int //redhip:transient config-derived, rebuilt by the constructor
	scratch []uint64 // want `field scratch of snapshot type Cache is not serialised`
}

// SnapshotState copies out the warm contents.
func (c *Cache) SnapshotState() (tagv, ord []uint64, rng uint64) {
	tagv = append([]uint64(nil), c.tagv...)
	ord = append([]uint64(nil), c.ord...)
	return tagv, ord, c.rng
}

// RestoreSnapshotState overwrites the warm contents.
func (c *Cache) RestoreSnapshotState(tagv, ord []uint64, rng uint64) {
	copy(c.tagv, tagv)
	copy(c.ord, ord)
	c.rng = rng
}
