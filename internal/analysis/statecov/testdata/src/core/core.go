// Package core is a statecov fixture for a stale registry entry:
// analysis.SnapshotTypes registers core.Table, but this package no
// longer declares it (a rename the registry missed).
package core // want `analysis.SnapshotTypes registers type Table, but package core does not declare it`

// RenamedTable is what Table became; the registry still names Table.
type RenamedTable struct {
	words []uint64
}
