// Package prefetch is a statecov fixture whose registered restore
// codec method is missing: the registry promises
// SnapshotEntries/RestoreEntries, the package only delivers the first.
package prefetch

type Prefetcher struct { // want `snapshot type Prefetcher has no codec method RestoreEntries`
	entries []uint64
	degree  int //redhip:transient config knob, reapplied by the constructor
}

// SnapshotEntries copies out the trained table.
func (p *Prefetcher) SnapshotEntries() []uint64 {
	return append([]uint64(nil), p.entries...)
}
