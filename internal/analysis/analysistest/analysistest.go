// Package analysistest runs an analyzer over a fixture corpus and
// checks its diagnostics against expectations written in the fixture
// sources, mirroring golang.org/x/tools/go/analysis/analysistest on
// the project's stdlib-only framework.
//
// Fixtures live under <testdata>/src/<pkg>/ — the corpus is its own
// little source tree, and fixture imports resolve against
// <testdata>/src first, so a fixture package can import a fake
// "redhipassert" without touching the real module.
//
// Expectations are trailing comments of the form
//
//	x := time.Now() // want `wall-clock read`
//
// Each backquoted (or double-quoted) string is a regular expression
// that must match the message of a diagnostic reported on that line.
// Every diagnostic must be matched by a want and every want must be
// matched by a diagnostic, or the test fails.
package analysistest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"redhip/internal/analysis"
	"redhip/internal/analysis/load"
)

// wantRe extracts the quoted expectations from a // want comment.
var wantRe = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads each named package from testdata/src/<pkg>, applies the
// analyzer, and compares diagnostics against the // want expectations
// in the fixture sources.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	srcRoot := filepath.Join(testdata, "src")
	loader, err := load.NewLoader(load.Config{SrcRoots: []string{srcRoot}})
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	for _, name := range pkgs {
		pkg, err := loader.Dir(filepath.Join(srcRoot, name))
		if err != nil {
			t.Fatalf("analysistest: load %s: %v", name, err)
		}
		if pkg == nil {
			t.Fatalf("analysistest: no Go files in fixture %s", name)
		}
		for _, terr := range pkg.TypeErrors {
			t.Errorf("analysistest: fixture %s has type error: %v", name, terr)
		}
		var diags []analysis.Diagnostic
		pass := analysis.NewPass(a, loader.Fset(), pkg.Files, pkg.Types, pkg.Info,
			func(d analysis.Diagnostic) { diags = append(diags, d) })
		if err := a.Run(pass); err != nil {
			t.Fatalf("analysistest: %s on %s: %v", a.Name, name, err)
		}
		checkExpectations(t, loader.Fset(), pkg, a.Name, diags)
	}
}

func checkExpectations(t *testing.T, fset *token.FileSet, pkg *load.Package, analyzer string, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					// A diagnostic anchored on a comment itself (e.g. a
					// malformed //redhip: directive) cannot share its line
					// with a second comment, so the expectation may ride
					// inside the same comment after a nested "// want".
					if i := strings.Index(text, "// want "); i >= 0 {
						rest, ok = text[i+len("// want "):], true
					}
				}
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, m := range wantRe.FindAllStringSubmatch(rest, -1) {
					raw := m[1]
					if raw == "" {
						raw = m[2]
					}
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, raw, err)
						continue
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: raw})
				}
			}
		}
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", position(pos), d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no %s diagnostic matching %q", w.file, w.line, analyzer, w.raw)
		}
	}
}

func position(p token.Position) string {
	return fmt.Sprintf("%s:%d:%d", p.Filename, p.Line, p.Column)
}
