package registry_test

import (
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"redhip/internal/analysis/registry"
)

// TestRegistrySortedUniqueDocumented is the analyzer meta-contract:
// every registered analyzer has a unique non-empty name, a non-empty
// doc string and a Run function, and All() returns them sorted by name
// so redhip-lint -list output and the multichecker run order are
// deterministic.
func TestRegistrySortedUniqueDocumented(t *testing.T) {
	as := registry.All()
	if len(as) < 8 {
		t.Fatalf("registry.All() = %d analyzers, want at least 8", len(as))
	}
	seen := make(map[string]bool)
	var names []string
	for _, a := range as {
		if a.Name == "" {
			t.Error("analyzer with empty Name registered")
			continue
		}
		if seen[a.Name] {
			t.Errorf("analyzer name %q registered twice", a.Name)
		}
		seen[a.Name] = true
		names = append(names, a.Name)
		if strings.TrimSpace(a.Doc) == "" {
			t.Errorf("analyzer %s has an empty Doc", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %s has a nil Run", a.Name)
		}
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("registry.All() not sorted by name: %v", names)
	}
}

// TestEveryAnalyzerHasFixtureCorpus requires each analyzer to ship a
// golden corpus under internal/analysis/<name>/testdata/src containing
// at least one caught case (a `// want` expectation the analysistest
// harness checks) and at least one allowed case exercising the
// //redhip: annotation grammar — so no analyzer lands without both a
// demonstration that it fires and a demonstration of its escape hatch.
func TestEveryAnalyzerHasFixtureCorpus(t *testing.T) {
	for _, a := range registry.All() {
		srcRoot := filepath.Join("..", a.Name, "testdata", "src")
		if _, err := os.Stat(srcRoot); err != nil {
			t.Errorf("analyzer %s has no fixture corpus at %s: %v", a.Name, srcRoot, err)
			continue
		}
		var haveWant, haveAnn bool
		err := filepath.WalkDir(srcRoot, func(path string, d fs.DirEntry, err error) error {
			if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
				return err
			}
			b, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			src := string(b)
			if strings.Contains(src, "// want ") || strings.Contains(src, "// want `") {
				haveWant = true
			}
			if strings.Contains(src, "//redhip:") {
				haveAnn = true
			}
			return nil
		})
		if err != nil {
			t.Errorf("analyzer %s: walking fixtures: %v", a.Name, err)
			continue
		}
		if !haveWant {
			t.Errorf("analyzer %s fixture corpus has no `// want` caught case", a.Name)
		}
		if !haveAnn {
			t.Errorf("analyzer %s fixture corpus has no //redhip: allowed case", a.Name)
		}
	}
}
