// Package registry is the single authoritative list of redhip-lint
// analyzers. The driver (cmd/redhip-lint) and the meta tests both
// consume it, so an analyzer added here is automatically registered,
// listed, run in CI, and held to the fixture-corpus requirements —
// and one added anywhere else fails the meta test.
package registry

import (
	"sort"

	"redhip/internal/analysis"
	"redhip/internal/analysis/annotations"
	"redhip/internal/analysis/determinism"
	"redhip/internal/analysis/exhaustive"
	"redhip/internal/analysis/guarded"
	"redhip/internal/analysis/hotpath"
	"redhip/internal/analysis/invariant"
	"redhip/internal/analysis/statecov"
	"redhip/internal/analysis/unsafeaudit"
)

// All returns every registered analyzer sorted by name, so -list
// output and the multichecker's run order are deterministic and CI
// logs diff cleanly across runs.
func All() []*analysis.Analyzer {
	as := []*analysis.Analyzer{
		annotations.Analyzer,
		determinism.Analyzer,
		exhaustive.Analyzer,
		guarded.Analyzer,
		hotpath.Analyzer,
		invariant.Analyzer,
		statecov.Analyzer,
		unsafeaudit.Analyzer,
	}
	sort.Slice(as, func(i, j int) bool { return as[i].Name < as[j].Name })
	return as
}
