// Package load turns directories of Go source into the type-checked
// packages the redhip-lint analyzers consume. It is the stand-in for
// golang.org/x/tools/go/packages in a build environment that vendors no
// third-party modules: module-local imports are resolved against the
// module root (or against explicit fixture roots), and everything else
// falls back to the standard library's source importer, which
// type-checks GOROOT packages from source — fully offline.
package load

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the import path ("redhip/internal/cache", or the fixture
	// path relative to a source root).
	Path string
	// Dir is the directory the sources were read from.
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects type-checking problems. Analyzers still run
	// over packages with type errors (fixtures sometimes contain
	// deliberately odd code), but drivers should surface them.
	TypeErrors []error
}

// Config parameterises a load.
type Config struct {
	// ModuleRoot is the directory containing go.mod. Empty means "walk
	// upward from the working directory".
	ModuleRoot string
	// SrcRoots are extra directories under which an import path P
	// resolves to <root>/P — the fixture-corpus convention the
	// analysistest harness uses (testdata/src).
	SrcRoots []string
	// Tags are extra build tags considered satisfied ("redhipassert").
	Tags []string
}

// Loader loads and caches packages for one Config.
type Loader struct {
	cfg     Config
	modPath string
	modRoot string
	fset    *token.FileSet
	tags    map[string]bool
	std     types.Importer
	pkgs    map[string]*loaded // memo by import path
	loading map[string]bool    // import-cycle guard
}

type loaded struct {
	pkg *Package
	err error
}

// NewLoader builds a loader, locating the module root and parsing its
// module path from go.mod.
func NewLoader(cfg Config) (*Loader, error) {
	root := cfg.ModuleRoot
	if root == "" {
		wd, err := os.Getwd()
		if err != nil {
			return nil, err
		}
		root = wd
		for {
			if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
				break
			}
			parent := filepath.Dir(root)
			if parent == root {
				return nil, fmt.Errorf("load: no go.mod found above %s", wd)
			}
			root = parent
		}
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	tags := map[string]bool{"gc": true, runtime.GOOS: true, runtime.GOARCH: true}
	if unixGOOS[runtime.GOOS] {
		// "unix" is a derived tag the toolchain implies for these GOOS
		// values; without it a //go:build !unix shim (tracestore's
		// non-mmap fallback) would wrongly load alongside the real one.
		tags["unix"] = true
	}
	l := &Loader{
		cfg:     cfg,
		modPath: modPath,
		modRoot: root,
		fset:    fset,
		tags:    tags,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*loaded),
		loading: make(map[string]bool),
	}
	for _, t := range cfg.Tags {
		l.tags[t] = true
	}
	return l, nil
}

// Fset returns the loader's file set (shared with the source importer).
func (l *Loader) Fset() *token.FileSet { return l.fset }

// ModulePath returns the module path from go.mod.
func (l *Loader) ModulePath() string { return l.modPath }

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("load: no module directive in %s", gomod)
}

// Patterns expands command-line package patterns into loaded packages.
// Supported: "./..." (every package under the module root), "./dir" and
// "dir" (one directory), and fully qualified module import paths.
func (l *Loader) Patterns(patterns ...string) ([]*Package, error) {
	var dirs []string
	seen := make(map[string]bool)
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			subdirs, err := l.walkPackageDirs(l.modRoot)
			if err != nil {
				return nil, err
			}
			for _, d := range subdirs {
				add(d)
			}
		case strings.HasSuffix(pat, "/..."):
			base := strings.TrimSuffix(pat, "/...")
			base = strings.TrimPrefix(base, "./")
			subdirs, err := l.walkPackageDirs(filepath.Join(l.modRoot, base))
			if err != nil {
				return nil, err
			}
			for _, d := range subdirs {
				add(d)
			}
		case strings.HasPrefix(pat, l.modPath):
			add(filepath.Join(l.modRoot, strings.TrimPrefix(strings.TrimPrefix(pat, l.modPath), "/")))
		default:
			add(filepath.Join(l.modRoot, strings.TrimPrefix(pat, "./")))
		}
	}
	var out []*Package
	for _, dir := range dirs {
		pkg, err := l.Dir(dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			out = append(out, pkg)
		}
	}
	return out, nil
}

// walkPackageDirs lists every directory under root holding at least one
// buildable non-test .go file, skipping testdata, VCS and hidden dirs.
func (l *Loader) walkPackageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		files, err := l.sourceFiles(path)
		if err != nil {
			return err
		}
		if len(files) > 0 {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// Dir loads the package in one directory (nil when the directory holds
// no buildable Go files). Results are memoised by import path.
func (l *Loader) Dir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path := l.importPathFor(abs)
	pkg, err := l.load(path, abs)
	if err != nil {
		return nil, err
	}
	return pkg, nil
}

// importPathFor derives the import path of a directory: relative to the
// module root it is modPath/rel; relative to a source root it is the
// bare relative path (the fixture convention).
func (l *Loader) importPathFor(dir string) string {
	for _, root := range l.cfg.SrcRoots {
		if abs, err := filepath.Abs(root); err == nil {
			if rel, err := filepath.Rel(abs, dir); err == nil && !strings.HasPrefix(rel, "..") {
				return filepath.ToSlash(rel)
			}
		}
	}
	if rel, err := filepath.Rel(l.modRoot, dir); err == nil && !strings.HasPrefix(rel, "..") {
		if rel == "." {
			return l.modPath
		}
		return l.modPath + "/" + filepath.ToSlash(rel)
	}
	return filepath.ToSlash(dir)
}

// sourceFiles lists dir's non-test .go files that satisfy the build
// constraints.
func (l *Loader) sourceFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		path := filepath.Join(dir, name)
		ok, err := l.buildable(path)
		if err != nil {
			return nil, err
		}
		if ok {
			files = append(files, path)
		}
	}
	sort.Strings(files)
	return files, nil
}

// buildable evaluates a file's //go:build constraint (and GOOS/GOARCH
// filename suffixes) against the loader's tag set.
func (l *Loader) buildable(path string) (bool, error) {
	if !goosGoarchMatch(filepath.Base(path)) {
		return false, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return false, err
	}
	// Constraints must appear before the package clause; scanning the
	// leading lines is enough.
	for _, line := range strings.Split(string(data), "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "package ") {
			break
		}
		if !constraint.IsGoBuild(trimmed) {
			continue
		}
		expr, err := constraint.Parse(trimmed)
		if err != nil {
			return false, fmt.Errorf("load: %s: %v", path, err)
		}
		return expr.Eval(func(tag string) bool {
			if ok, isRelease := releaseTag(tag); isRelease {
				return ok
			}
			return l.tags[tag]
		}), nil
	}
	return true, nil
}

// unixGOOS lists the GOOS values for which the toolchain implies the
// derived "unix" build tag.
var unixGOOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "hurd": true, "illumos": true, "ios": true,
	"linux": true, "netbsd": true, "openbsd": true, "solaris": true,
}

// goosGoarchMatch rejects files with a foreign _GOOS/_GOARCH suffix.
// The repository has none; the check exists so fixture corpora cannot
// accidentally leak platform-specific files into a run.
func goosGoarchMatch(name string) bool {
	name = strings.TrimSuffix(name, ".go")
	for _, os := range []string{"windows", "darwin", "js", "wasip1", "plan9", "aix", "android", "ios", "solaris", "illumos", "dragonfly", "freebsd", "netbsd", "openbsd"} {
		if os != runtime.GOOS && strings.HasSuffix(name, "_"+os) {
			return false
		}
	}
	for _, arch := range []string{"386", "arm", "arm64", "mips", "mips64", "ppc64", "ppc64le", "riscv64", "s390x", "wasm", "loong64"} {
		if arch != runtime.GOARCH && strings.HasSuffix(name, "_"+arch) {
			return false
		}
	}
	return true
}

// releaseTag evaluates go1.N build tags: go1.N is satisfied when the
// toolchain is at least 1.N.
func releaseTag(tag string) (ok, isRelease bool) {
	if !strings.HasPrefix(tag, "go1.") {
		return false, false
	}
	var minor int
	if _, err := fmt.Sscanf(tag, "go1.%d", &minor); err != nil {
		return false, false
	}
	var current int
	v := runtime.Version() // "go1.24.0" or a devel string
	if _, err := fmt.Sscanf(v, "go1.%d", &current); err != nil {
		return true, true // devel toolchains satisfy all release tags
	}
	return current >= minor, true
}

// load parses and type-checks the package in dir under import path
// path, resolving its imports recursively.
func (l *Loader) load(path, dir string) (*Package, error) {
	if m, ok := l.pkgs[path]; ok {
		return m.pkg, m.err
	}
	if l.loading[path] {
		return nil, fmt.Errorf("load: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	pkg, err := l.loadUncached(path, dir)
	l.pkgs[path] = &loaded{pkg: pkg, err: err}
	return pkg, err
}

func (l *Loader) loadUncached(path, dir string) (*Package, error) {
	files, err := l.sourceFiles(dir)
	if err != nil {
		return nil, fmt.Errorf("load: %q: %v", path, err)
	}
	if len(files) == 0 {
		return nil, nil
	}
	var asts []*ast.File
	for _, f := range files {
		file, err := parser.ParseFile(l.fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("load: %v", err)
		}
		asts = append(asts, file)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: importerFunc(l.importFor),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, _ := conf.Check(path, l.fset, asts, info) // errors collected above
	return &Package{
		Path:       path,
		Dir:        dir,
		Files:      asts,
		Types:      tpkg,
		Info:       info,
		TypeErrors: typeErrs,
	}, nil
}

// importFor resolves one import path: module-local paths against the
// module root, fixture paths against the source roots, and everything
// else through the standard library's source importer.
func (l *Loader) importFor(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		dir := filepath.Join(l.modRoot, strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/"))
		pkg, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("load: no Go files in %q", path)
		}
		return pkg.Types, nil
	}
	for _, root := range l.cfg.SrcRoots {
		dir := filepath.Join(root, filepath.FromSlash(path))
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			pkg, err := l.load(path, dir)
			if err != nil {
				return nil, err
			}
			if pkg != nil {
				return pkg.Types, nil
			}
		}
	}
	return l.std.Import(path)
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
