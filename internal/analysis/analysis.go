// Package analysis is the project's static-analysis framework: a
// deliberately small, dependency-free mirror of the golang.org/x/tools
// go/analysis API surface the redhip-lint analyzers are written
// against. The build environment vendors no third-party modules, so
// the framework is implemented on the standard library alone
// (go/parser + go/types); if x/tools ever becomes available the
// analyzers port over nearly verbatim.
//
// The framework also owns the `//redhip:` annotation grammar shared by
// every analyzer (see DESIGN.md §15 for the full table):
//
//	//redhip:hotpath
//	    In a function's doc comment: marks the function as a hot-path
//	    function whose body the hotpath analyzer audits for heap
//	    allocations, interface dispatch and defer.
//
//	//redhip:allow <check>[ -- reason]
//	    Suppresses diagnostics of the named check. As a trailing
//	    comment it suppresses its own line; as an own-line comment it
//	    suppresses the next code line; in a function's doc comment it
//	    suppresses the whole function. Check names in use: wallclock,
//	    globalrand, maporder, alloc, defer, go, iface, nonexhaustive,
//	    noassert, panicmsg.
//
//	//redhip:transient <reason>
//	    On a snapshot-reachable struct field: the field is
//	    deliberately NOT serialised by the simstate codec (it is
//	    config-derived, measurement-scoped, or per-run scratch). The
//	    statecov analyzer requires every uncovered field to carry one.
//
//	//redhip:guardedby <mutexField>
//	    On a struct field: accesses outside functions that lock the
//	    named mutex (or are *Locked-suffixed helpers, or carry
//	    //redhip:phase-exclusive) are guarded-analyzer findings.
//
//	//redhip:phase-exclusive <reason>
//	    On a line or in a function's doc comment: the access happens
//	    in a documented single-threaded phase (construction, a barrier
//	    round's owner, post-Wait reduction), so lock/atomic discipline
//	    is deliberately not required there.
//
//	//redhip:unsafe-ok <reason>
//	    On a line or in a function's doc comment inside an
//	    UnsafePackages member: justifies one unsafe.Slice /
//	    unsafe.Pointer / pointer-arithmetic site.
//
// A nested "//" inside a directive starts trailing commentary and is
// ignored by the parser. Unknown verbs and missing mandatory arguments
// are collected as annotation errors and reported by the annotations
// analyzer — a typo like //redhip:hotpth fails lint instead of
// silently disabling a contract.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one analysis pass: a named checker over a single
// type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and CLI flags.
	Name string
	// Doc is the one-paragraph description shown by redhip-lint -help.
	Doc string
	// Run applies the analyzer to one package, reporting findings
	// through pass.Report.
	Run func(*Pass) error
}

// Pass carries one package's parsed and type-checked state through an
// Analyzer's Run function.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's syntax trees (non-test files only).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo maps syntax to type information.
	TypesInfo *types.Info
	// Ann is the parsed //redhip: annotation state of the package.
	Ann *Annotations

	report func(Diagnostic)
}

// NewPass builds a Pass for one package. Drivers (redhip-lint and the
// analysistest harness) construct passes; analyzers only consume them.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, report func(Diagnostic)) *Pass {
	return &Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		Ann:       ParseAnnotations(fset, files),
		report:    report,
	}
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Report emits a diagnostic.
func (p *Pass) Report(d Diagnostic) {
	d.Analyzer = p.Analyzer.Name
	p.report(d)
}

// Reportf formats and emits a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// --- //redhip: annotations -----------------------------------------------------

// annPrefix introduces every project annotation comment.
const annPrefix = "//redhip:"

// KnownChecks are the check names //redhip:allow may suppress. An
// allow naming anything else is an annotation error: a misspelled
// check silently suppresses nothing, which is worse than failing.
var KnownChecks = map[string]bool{
	"wallclock":     true,
	"globalrand":    true,
	"maporder":      true,
	"alloc":         true,
	"defer":         true,
	"go":            true,
	"iface":         true,
	"nonexhaustive": true,
	"noassert":      true,
	"panicmsg":      true,
}

// AnnError is one malformed //redhip: directive, reported by the
// annotations analyzer.
type AnnError struct {
	Pos     token.Pos
	Message string
}

// Annotations holds the parsed //redhip: directives of one package.
type Annotations struct {
	fset *token.FileSet
	// allow maps file -> line -> allowed check names. Lines are the
	// directive's effective target: a trailing annotation covers its
	// own line, an own-line annotation covers the next code line (so a
	// trailing annotation never spills onto the following statement or
	// struct field).
	allow map[string]map[int][]string
	// hotpathLines marks lines carrying a //redhip:hotpath directive;
	// a FuncDecl whose doc comment spans such a line is a hot path.
	hotpathLines map[string]map[int]bool
	// transient, phaseExclusive and unsafeOK mark lines carrying the
	// corresponding directive, with the same L / L+1 coverage as allow.
	transient      map[string]map[int]bool
	phaseExclusive map[string]map[int]bool
	unsafeOK       map[string]map[int]bool
	// guardedby maps file -> line -> the mutex field name the
	// annotated struct field is guarded by.
	guardedby map[string]map[int]string

	errs []AnnError
}

// markLine records a boolean line directive.
func markLine(m map[string]map[int]bool, file string, line int) {
	lm := m[file]
	if lm == nil {
		lm = make(map[int]bool)
		m[file] = lm
	}
	lm[line] = true
}

// lineCovered reports whether a boolean line directive targets pos's
// line (targets are resolved at parse time by targetLine).
func lineCovered(m map[string]map[int]bool, p token.Position) bool {
	lm := m[p.Filename]
	return lm != nil && lm[p.Line]
}

// codeLines returns the set of lines in f containing any non-comment
// token, so the parser can tell a trailing annotation (shares its line
// with code) from an own-line one.
func codeLines(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := make(map[int]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case nil:
			return true
		case *ast.Comment, *ast.CommentGroup:
			return false
		}
		lines[fset.Position(n.Pos()).Line] = true
		if end := n.End(); end.IsValid() && end > n.Pos() {
			lines[fset.Position(end-1).Line] = true
		}
		return true
	})
	return lines
}

// targetLine resolves which line a directive at line governs: its own
// line for the trailing form, or the next code line (looking through
// the rest of a stacked comment block) for the own-line form. Returns
// -1 when nothing follows.
func targetLine(code map[int]bool, line int) int {
	if code[line] {
		return line
	}
	for l := line + 1; l <= line+10; l++ {
		if code[l] {
			return l
		}
	}
	return -1
}

// ParseAnnotations scans every comment of files for //redhip:
// directives, collecting malformed ones (unknown verbs, missing
// mandatory arguments) as annotation errors.
func ParseAnnotations(fset *token.FileSet, files []*ast.File) *Annotations {
	a := &Annotations{
		fset:           fset,
		allow:          make(map[string]map[int][]string),
		hotpathLines:   make(map[string]map[int]bool),
		transient:      make(map[string]map[int]bool),
		phaseExclusive: make(map[string]map[int]bool),
		unsafeOK:       make(map[string]map[int]bool),
		guardedby:      make(map[string]map[int]string),
	}
	for _, f := range files {
		code := codeLines(fset, f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, annPrefix) {
					continue
				}
				a.parseDirective(c, strings.TrimPrefix(text, annPrefix), code)
			}
		}
	}
	return a
}

// parseDirective handles one //redhip:<directive> comment.
func (a *Annotations) parseDirective(c *ast.Comment, directive string, code map[int]bool) {
	pos := a.fset.Position(c.Pos())
	errf := func(format string, args ...any) {
		a.errs = append(a.errs, AnnError{Pos: c.Pos(), Message: fmt.Sprintf(format, args...)})
	}
	// A nested "//" starts trailing commentary that is not part of the
	// directive (the analysistest fixtures hang their `// want`
	// expectations there, since a directive-anchored finding and its
	// expectation must share one comment).
	if i := strings.Index(directive, "//"); i >= 0 {
		directive = directive[:i]
	}
	// The optional "-- reason" clause is free text; args precede it.
	main, tail, hasTail := strings.Cut(directive, "--")
	fields := strings.Fields(main)
	if len(fields) == 0 {
		errf("empty //redhip: directive")
		return
	}
	verb, args := fields[0], fields[1:]
	// hasReason: anything after the verb counts as justification,
	// whether written as plain words or behind the "--" separator.
	hasReason := len(args) > 0 || (hasTail && strings.TrimSpace(tail) != "")
	// target is the line this directive governs: its own line when
	// trailing code, the next code line when the comment stands alone.
	target := targetLine(code, pos.Line)
	switch verb {
	case "hotpath":
		if len(args) > 0 {
			errf("//redhip:hotpath takes no arguments (got %q)", strings.Join(args, " "))
			return
		}
		markLine(a.hotpathLines, pos.Filename, pos.Line)
	case "allow":
		if len(args) == 0 {
			errf("//redhip:allow needs at least one check name")
			return
		}
		m := a.allow[pos.Filename]
		if m == nil {
			m = make(map[int][]string)
			a.allow[pos.Filename] = m
		}
		for _, check := range args {
			for _, name := range strings.Split(check, ",") {
				if name == "" {
					continue
				}
				if !KnownChecks[name] {
					errf("//redhip:allow names unknown check %q", name)
					continue
				}
				if target >= 0 {
					m[target] = append(m[target], name)
				}
			}
		}
	case "transient":
		if !hasReason {
			errf("//redhip:transient needs a reason explaining why the field is not snapshotted")
			return
		}
		if target >= 0 {
			markLine(a.transient, pos.Filename, target)
		}
	case "guardedby":
		if len(args) != 1 {
			errf("//redhip:guardedby needs exactly one mutex field name")
			return
		}
		m := a.guardedby[pos.Filename]
		if m == nil {
			m = make(map[int]string)
			a.guardedby[pos.Filename] = m
		}
		if target >= 0 {
			m[target] = args[0]
		}
	case "phase-exclusive":
		if !hasReason {
			errf("//redhip:phase-exclusive needs a reason documenting the single-threaded phase")
			return
		}
		if target >= 0 {
			markLine(a.phaseExclusive, pos.Filename, target)
		}
	case "unsafe-ok":
		if !hasReason {
			errf("//redhip:unsafe-ok needs a reason justifying the unsafe site")
			return
		}
		if target >= 0 {
			markLine(a.unsafeOK, pos.Filename, target)
		}
	default:
		errf("unknown //redhip: annotation verb %q", verb)
	}
}

// Errors returns the malformed directives found while parsing, in
// source order. The annotations analyzer reports them.
func (a *Annotations) Errors() []AnnError { return a.errs }

// AllowsAt reports whether a //redhip:allow annotation for check covers
// pos: a trailing comment on the same line, or an own-line comment
// whose resolved target is this line.
func (a *Annotations) AllowsAt(pos token.Pos, check string) bool {
	p := a.fset.Position(pos)
	lines := a.allow[p.Filename]
	if lines == nil {
		return false
	}
	for _, name := range lines[p.Line] {
		if name == check {
			return true
		}
	}
	return false
}

// FuncAllows reports whether decl's doc comment carries
// //redhip:allow check, suppressing the check for the whole function.
func (a *Annotations) FuncAllows(decl *ast.FuncDecl, check string) bool {
	if decl == nil || decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		text := strings.TrimPrefix(c.Text, annPrefix)
		if text == c.Text {
			continue
		}
		if i := strings.Index(text, "--"); i >= 0 {
			text = text[:i]
		}
		fields := strings.Fields(text)
		if len(fields) >= 2 && fields[0] == "allow" {
			for _, f := range fields[1:] {
				for _, name := range strings.Split(f, ",") {
					if name == check {
						return true
					}
				}
			}
		}
	}
	return false
}

// funcHasVerb reports whether decl's doc comment carries the given
// //redhip:<verb> directive.
func funcHasVerb(decl *ast.FuncDecl, verb string) bool {
	if decl == nil || decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		text := strings.TrimPrefix(c.Text, annPrefix)
		if text == c.Text {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) > 0 && fields[0] == verb {
			return true
		}
	}
	return false
}

// IsHotpath reports whether decl is annotated //redhip:hotpath in its
// doc comment.
func (a *Annotations) IsHotpath(decl *ast.FuncDecl) bool {
	return funcHasVerb(decl, "hotpath")
}

// Allowed reports whether check is suppressed at pos, either by a line
// annotation or by a function-level annotation on the enclosing decl.
func (a *Annotations) Allowed(pos token.Pos, decl *ast.FuncDecl, check string) bool {
	return a.AllowsAt(pos, check) || a.FuncAllows(decl, check)
}

// TransientAt reports whether a //redhip:transient annotation covers
// pos (trailing comment or the line above — the two places a struct
// field annotation can live).
func (a *Annotations) TransientAt(pos token.Pos) bool {
	return lineCovered(a.transient, a.fset.Position(pos))
}

// GuardedByAt returns the mutex field name a //redhip:guardedby
// annotation targeting pos's line names, if any (trailing comment or
// own-line comment above the field).
func (a *Annotations) GuardedByAt(pos token.Pos) (string, bool) {
	p := a.fset.Position(pos)
	lines := a.guardedby[p.Filename]
	if lines == nil {
		return "", false
	}
	mu, ok := lines[p.Line]
	return mu, ok
}

// PhaseExclusive reports whether pos sits in a documented
// single-threaded phase: a //redhip:phase-exclusive line annotation at
// pos, or one in the enclosing function's doc comment.
func (a *Annotations) PhaseExclusive(pos token.Pos, decl *ast.FuncDecl) bool {
	return lineCovered(a.phaseExclusive, a.fset.Position(pos)) || funcHasVerb(decl, "phase-exclusive")
}

// UnsafeOK reports whether an unsafe site at pos carries a
// //redhip:unsafe-ok justification, on the line or on the enclosing
// function's doc comment.
func (a *Annotations) UnsafeOK(pos token.Pos, decl *ast.FuncDecl) bool {
	return lineCovered(a.unsafeOK, a.fset.Position(pos)) || funcHasVerb(decl, "unsafe-ok")
}

// --- shared analyzer helpers ---------------------------------------------------

// PathTail returns the last segment of an import path: the package
// directory name the project's target-set matching keys on. Matching by
// tail keeps the analyzers working identically against the real module
// ("redhip/internal/cache") and against fixture corpora ("cache").
func PathTail(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// CompiledOutPackages are the build-tag-gated instrumentation packages
// whose Enabled constant is false in default builds: redhipassert (the
// invariant checks, compiled in by -tags redhipassert) and faultinject
// (the chaos-testing injection points, compiled in by -tags
// faultinject). A block guarded by `if <pkg>.Enabled { ... }` is dead
// code in production — the compiler deletes it — so the hotpath and
// determinism analyzers skip those blocks instead of demanding waivers
// for code that never ships.
var CompiledOutPackages = map[string]bool{
	"redhipassert": true,
	"faultinject":  true,
}

// IsCompiledOutGuard recognises `if <pkg>.Enabled { ... }` statements
// where <pkg> is one of CompiledOutPackages, matched by import-path
// tail like every other target set. Only the guard's then-arm compiles
// out; callers must still walk the else arm.
func IsCompiledOutGuard(info *types.Info, ifStmt *ast.IfStmt) bool {
	sel, ok := ifStmt.Cond.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Enabled" {
		return false
	}
	ident, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkgName, ok := info.Uses[ident].(*types.PkgName)
	return ok && CompiledOutPackages[PathTail(pkgName.Imported().Path())]
}

// SimulationPackages is the determinism target set: the packages that
// feed the golden Result fingerprints. Anything nondeterministic inside
// them (wall-clock reads, global rand, map-iteration order) can silently
// change simulation results, so the determinism analyzer patrols
// exactly this list.
var SimulationPackages = map[string]bool{
	"sim":        true,
	"cache":      true,
	"core":       true,
	"predictor":  true,
	"prefetch":   true,
	"workload":   true,
	"energy":     true,
	"memaddr":    true,
	"trace":      true,
	"tracestore": true,
}

// IsSimulationPackage reports whether the package at path belongs to
// the determinism target set.
func IsSimulationPackage(path string) bool {
	return SimulationPackages[PathTail(path)]
}

// ServingPackages is the explicit complement of SimulationPackages on
// the serving side of the repo: packages whose job is to run a network
// service, where wall-clock reads, goroutines and timer-driven control
// flow are normal server life, not determinism bugs. The determinism
// analyzer excludes them by name so the server does not accumulate
// //redhip:allow waivers — and so a future refactor that moves
// simulation code into one of these packages is caught by the overlap
// check in the tests rather than silently unpatrolled.
var ServingPackages = map[string]bool{
	"serve":         true,
	"redhip-serve":  true,
	"loadgen":       true,
	"redhip-load":   true,
	"cluster":       true,
	"redhip-router": true,
}

// IsServingPackage reports whether the package at path is a declared
// serving-side package exempt from the determinism contract.
func IsServingPackage(path string) bool {
	return ServingPackages[PathTail(path)]
}

// SerializationPackages are packages whose whole job is encoding and
// decoding state at setup/teardown boundaries — never the
// per-reference loop. The hotpath analyzer skips them entirely:
// serialisation legitimately allocates (growing buffers, decoded
// slices), so a //redhip:hotpath annotation inside one would only
// breed blanket //redhip:allow waivers that teach readers to ignore
// the annotation elsewhere. Note this exempts only the hotpath
// contract; simstate stays under the determinism analyzer's patrol via
// its callers in SimulationPackages.
var SerializationPackages = map[string]bool{
	"simstate": true,
}

// IsSerializationPackage reports whether the package at path is a
// declared serialisation package the hotpath analyzer skips.
func IsSerializationPackage(path string) bool {
	return SerializationPackages[PathTail(path)]
}

// UnsafePackages is the unsafeaudit allowlist: the only packages in
// which `unsafe`, `reflect` and mmap syscalls are legal at all. The
// tracestore disk tier reinterprets mmap'd bytes as records
// (zero-copy replay), and simstate is the serialisation boundary that
// may need the same treatment; everywhere else those imports are a
// finding, not a waiver candidate — the set is the single documented
// escape.
var UnsafePackages = map[string]bool{
	"tracestore": true,
	"simstate":   true,
}

// IsUnsafePackage reports whether the package at path may legally use
// unsafe/reflect/mmap (each unsafe site still needs //redhip:unsafe-ok).
func IsUnsafePackage(path string) bool {
	return UnsafePackages[PathTail(path)]
}

// SnapshotCodec names one snapshot-reachable struct type and the codec
// methods whose receiver-rooted field accesses count as serialisation
// coverage for the statecov analyzer.
type SnapshotCodec struct {
	// Type is the struct type's name within its package.
	Type string
	// Methods are the codec entry points (capture + restore). A field
	// touched by none of them must carry //redhip:transient.
	Methods []string
}

// SnapshotTypes is the statecov registry, keyed by package import-path
// tail: every struct type whose warm state the simstate snapshot layer
// serialises. Adding a field to one of these types without either
// threading it through the named codec methods or annotating it
// //redhip:transient is a lint failure — the exact
// warm-restore ≢ cold-run heisenbug class PR 7 introduced the codec to
// prevent.
var SnapshotTypes = map[string][]SnapshotCodec{
	"sim": {
		{Type: "engine", Methods: []string{"captureSnapshot", "restoreSnapshot"}},
	},
	"cache": {
		{Type: "Cache", Methods: []string{"SnapshotState", "RestoreSnapshotState"}},
	},
	"core": {
		{Type: "Table", Methods: []string{"SnapshotState", "RestoreSnapshotState"}},
	},
	"predictor": {
		{Type: "MirrorTable", Methods: []string{"SnapshotRefs", "RestoreRefs"}},
		{Type: "CBF", Methods: []string{"SnapshotState", "RestoreSnapshotState"}},
	},
	"prefetch": {
		{Type: "Prefetcher", Methods: []string{"SnapshotEntries", "RestoreEntries"}},
	},
}
