// Package analysis is the project's static-analysis framework: a
// deliberately small, dependency-free mirror of the golang.org/x/tools
// go/analysis API surface the redhip-lint analyzers are written
// against. The build environment vendors no third-party modules, so
// the framework is implemented on the standard library alone
// (go/parser + go/types); if x/tools ever becomes available the
// analyzers port over nearly verbatim.
//
// The framework also owns the `//redhip:` annotation grammar shared by
// every analyzer (see DESIGN.md §10):
//
//	//redhip:hotpath
//	    In a function's doc comment: marks the function as a hot-path
//	    function whose body the hotpath analyzer audits for heap
//	    allocations, interface dispatch and defer.
//
//	//redhip:allow <check>[ -- reason]
//	    Suppresses diagnostics of the named check. As a trailing
//	    comment (or on the line immediately above a statement) it
//	    suppresses that line only; in a function's doc comment it
//	    suppresses the whole function. Check names in use: wallclock,
//	    globalrand, maporder, alloc, defer, iface, nonexhaustive,
//	    noassert, panicmsg.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one analysis pass: a named checker over a single
// type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and CLI flags.
	Name string
	// Doc is the one-paragraph description shown by redhip-lint -help.
	Doc string
	// Run applies the analyzer to one package, reporting findings
	// through pass.Report.
	Run func(*Pass) error
}

// Pass carries one package's parsed and type-checked state through an
// Analyzer's Run function.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's syntax trees (non-test files only).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo maps syntax to type information.
	TypesInfo *types.Info
	// Ann is the parsed //redhip: annotation state of the package.
	Ann *Annotations

	report func(Diagnostic)
}

// NewPass builds a Pass for one package. Drivers (redhip-lint and the
// analysistest harness) construct passes; analyzers only consume them.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, report func(Diagnostic)) *Pass {
	return &Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		Ann:       ParseAnnotations(fset, files),
		report:    report,
	}
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Report emits a diagnostic.
func (p *Pass) Report(d Diagnostic) {
	d.Analyzer = p.Analyzer.Name
	p.report(d)
}

// Reportf formats and emits a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// --- //redhip: annotations -----------------------------------------------------

// annPrefix introduces every project annotation comment.
const annPrefix = "//redhip:"

// Annotations holds the parsed //redhip: directives of one package.
type Annotations struct {
	fset *token.FileSet
	// allow maps file -> line -> allowed check names. An annotation on
	// line L suppresses diagnostics on L (trailing comment) and L+1
	// (comment-above form).
	allow map[string]map[int][]string
	// hotpathLines marks lines carrying a //redhip:hotpath directive;
	// a FuncDecl whose doc comment spans such a line is a hot path.
	hotpathLines map[string]map[int]bool
}

// ParseAnnotations scans every comment of files for //redhip:
// directives.
func ParseAnnotations(fset *token.FileSet, files []*ast.File) *Annotations {
	a := &Annotations{
		fset:         fset,
		allow:        make(map[string]map[int][]string),
		hotpathLines: make(map[string]map[int]bool),
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, annPrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				directive := strings.TrimPrefix(text, annPrefix)
				// Strip an optional trailing "-- reason" clause.
				if i := strings.Index(directive, "--"); i >= 0 {
					directive = directive[:i]
				}
				fields := strings.Fields(directive)
				if len(fields) == 0 {
					continue
				}
				switch fields[0] {
				case "hotpath":
					m := a.hotpathLines[pos.Filename]
					if m == nil {
						m = make(map[int]bool)
						a.hotpathLines[pos.Filename] = m
					}
					m[pos.Line] = true
				case "allow":
					m := a.allow[pos.Filename]
					if m == nil {
						m = make(map[int][]string)
						a.allow[pos.Filename] = m
					}
					for _, check := range fields[1:] {
						for _, name := range strings.Split(check, ",") {
							if name != "" {
								m[pos.Line] = append(m[pos.Line], name)
							}
						}
					}
				}
			}
		}
	}
	return a
}

// AllowsAt reports whether a //redhip:allow annotation for check covers
// pos: a trailing comment on the same line, or a comment on the line
// immediately above.
func (a *Annotations) AllowsAt(pos token.Pos, check string) bool {
	p := a.fset.Position(pos)
	lines := a.allow[p.Filename]
	if lines == nil {
		return false
	}
	for _, name := range lines[p.Line] {
		if name == check {
			return true
		}
	}
	for _, name := range lines[p.Line-1] {
		if name == check {
			return true
		}
	}
	return false
}

// FuncAllows reports whether decl's doc comment carries
// //redhip:allow check, suppressing the check for the whole function.
func (a *Annotations) FuncAllows(decl *ast.FuncDecl, check string) bool {
	if decl == nil || decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		text := strings.TrimPrefix(c.Text, annPrefix)
		if text == c.Text {
			continue
		}
		if i := strings.Index(text, "--"); i >= 0 {
			text = text[:i]
		}
		fields := strings.Fields(text)
		if len(fields) >= 2 && fields[0] == "allow" {
			for _, f := range fields[1:] {
				for _, name := range strings.Split(f, ",") {
					if name == check {
						return true
					}
				}
			}
		}
	}
	return false
}

// IsHotpath reports whether decl is annotated //redhip:hotpath in its
// doc comment.
func (a *Annotations) IsHotpath(decl *ast.FuncDecl) bool {
	if decl == nil || decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		if strings.HasPrefix(c.Text, annPrefix+"hotpath") {
			return true
		}
	}
	return false
}

// Allowed reports whether check is suppressed at pos, either by a line
// annotation or by a function-level annotation on the enclosing decl.
func (a *Annotations) Allowed(pos token.Pos, decl *ast.FuncDecl, check string) bool {
	return a.AllowsAt(pos, check) || a.FuncAllows(decl, check)
}

// --- shared analyzer helpers ---------------------------------------------------

// PathTail returns the last segment of an import path: the package
// directory name the project's target-set matching keys on. Matching by
// tail keeps the analyzers working identically against the real module
// ("redhip/internal/cache") and against fixture corpora ("cache").
func PathTail(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// CompiledOutPackages are the build-tag-gated instrumentation packages
// whose Enabled constant is false in default builds: redhipassert (the
// invariant checks, compiled in by -tags redhipassert) and faultinject
// (the chaos-testing injection points, compiled in by -tags
// faultinject). A block guarded by `if <pkg>.Enabled { ... }` is dead
// code in production — the compiler deletes it — so the hotpath and
// determinism analyzers skip those blocks instead of demanding waivers
// for code that never ships.
var CompiledOutPackages = map[string]bool{
	"redhipassert": true,
	"faultinject":  true,
}

// IsCompiledOutGuard recognises `if <pkg>.Enabled { ... }` statements
// where <pkg> is one of CompiledOutPackages, matched by import-path
// tail like every other target set. Only the guard's then-arm compiles
// out; callers must still walk the else arm.
func IsCompiledOutGuard(info *types.Info, ifStmt *ast.IfStmt) bool {
	sel, ok := ifStmt.Cond.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Enabled" {
		return false
	}
	ident, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkgName, ok := info.Uses[ident].(*types.PkgName)
	return ok && CompiledOutPackages[PathTail(pkgName.Imported().Path())]
}

// SimulationPackages is the determinism target set: the packages that
// feed the golden Result fingerprints. Anything nondeterministic inside
// them (wall-clock reads, global rand, map-iteration order) can silently
// change simulation results, so the determinism analyzer patrols
// exactly this list.
var SimulationPackages = map[string]bool{
	"sim":        true,
	"cache":      true,
	"core":       true,
	"predictor":  true,
	"prefetch":   true,
	"workload":   true,
	"energy":     true,
	"memaddr":    true,
	"trace":      true,
	"tracestore": true,
}

// IsSimulationPackage reports whether the package at path belongs to
// the determinism target set.
func IsSimulationPackage(path string) bool {
	return SimulationPackages[PathTail(path)]
}

// ServingPackages is the explicit complement of SimulationPackages on
// the serving side of the repo: packages whose job is to run a network
// service, where wall-clock reads, goroutines and timer-driven control
// flow are normal server life, not determinism bugs. The determinism
// analyzer excludes them by name so the server does not accumulate
// //redhip:allow waivers — and so a future refactor that moves
// simulation code into one of these packages is caught by the overlap
// check in the tests rather than silently unpatrolled.
var ServingPackages = map[string]bool{
	"serve":        true,
	"redhip-serve": true,
}

// IsServingPackage reports whether the package at path is a declared
// serving-side package exempt from the determinism contract.
func IsServingPackage(path string) bool {
	return ServingPackages[PathTail(path)]
}

// SerializationPackages are packages whose whole job is encoding and
// decoding state at setup/teardown boundaries — never the
// per-reference loop. The hotpath analyzer skips them entirely:
// serialisation legitimately allocates (growing buffers, decoded
// slices), so a //redhip:hotpath annotation inside one would only
// breed blanket //redhip:allow waivers that teach readers to ignore
// the annotation elsewhere. Note this exempts only the hotpath
// contract; simstate stays under the determinism analyzer's patrol via
// its callers in SimulationPackages.
var SerializationPackages = map[string]bool{
	"simstate": true,
}

// IsSerializationPackage reports whether the package at path is a
// declared serialisation package the hotpath analyzer skips.
func IsSerializationPackage(path string) bool {
	return SerializationPackages[PathTail(path)]
}
