// Package ann is an annotations-analyzer fixture: well-formed
// //redhip: directives parse silently, malformed ones are findings.
// A finding anchors on the directive comment itself, so each
// expectation rides inside the same comment after a nested "// want"
// (the grammar treats a nested "//" as trailing commentary).
package ann

import "sync"

// hot is correctly annotated.
//
//redhip:hotpath
func hot() int { return 1 }

// typo carries a misspelled verb that would otherwise silently
// disable the hotpath contract.
//
//redhip:hotpth // want `unknown //redhip: annotation verb "hotpth"`
func typo() int { return 2 }

//redhip:hotpath with trailing args // want `//redhip:hotpath takes no arguments`
func argsy() int { return 3 }

type box struct {
	mu    sync.Mutex
	items []int //redhip:guardedby mu
	junk  int   //redhip:guardedby // want `//redhip:guardedby needs exactly one mutex field name`
	wide  int   //redhip:guardedby mu extra // want `//redhip:guardedby needs exactly one mutex field name`
	tmp   int   //redhip:transient scratch, rebuilt each run
	bare  int   //redhip:transient // want `//redhip:transient needs a reason`
}

func use() int {
	x := 0
	x++ //redhip:allow wallclock -- fixture waiver with a reason
	x++ //redhip:allow // want `//redhip:allow needs at least one check name`
	x++ //redhip:allow wallclok // want `//redhip:allow names unknown check "wallclok"`
	//redhip:phase-exclusive // want `//redhip:phase-exclusive needs a reason`
	x--
	//redhip:unsafe-ok // want `//redhip:unsafe-ok needs a reason`
	x--
	var b box
	b.mu.Lock()
	b.items = append(b.items, x, b.junk, b.wide, b.tmp, b.bare)
	b.mu.Unlock()
	return x + hot() + typo() + argsy() + len(b.items)
}
