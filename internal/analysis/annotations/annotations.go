// Package annotations implements the redhip-lint annotations
// analyzer: the grammar police for the //redhip: directive family
// itself. The shared parser (analysis.ParseAnnotations) collects every
// malformed directive — an unknown verb (a typo like //redhip:hotpth
// would otherwise silently disable a contract), an //redhip:allow with
// no or unknown check names, a transient/phase-exclusive/unsafe-ok
// with no reason, a guardedby without its mutex field — and this
// analyzer turns each one into a finding. Every other analyzer trusts
// the parsed state; this one makes sure the parsed state is trustable.
package annotations

import (
	"redhip/internal/analysis"
)

// Analyzer is the annotations pass.
var Analyzer = &analysis.Analyzer{
	Name: "annotations",
	Doc: "flag malformed //redhip: directives: unknown verbs, unknown allow " +
		"checks, and missing mandatory arguments or reasons",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, e := range pass.Ann.Errors() {
		pass.Reportf(e.Pos, "%s", e.Message)
	}
	return nil
}
