package annotations_test

import (
	"testing"

	"redhip/internal/analysis/analysistest"
	"redhip/internal/analysis/annotations"
)

func TestAnnotations(t *testing.T) {
	analysistest.Run(t, "testdata", annotations.Analyzer, "ann")
}
