package determinism_test

import (
	"testing"

	"redhip/internal/analysis/analysistest"
	"redhip/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", determinism.Analyzer, "sim")
}
