// Package determinism implements the redhip-lint determinism analyzer:
// the machine-checked form of the repo's headline guarantee that
// identical configs and seeds produce bit-identical Results. Inside the
// simulation packages (analysis.SimulationPackages) it forbids
//
//   - wall-clock reads (time.Now, time.Since, timers) — check
//     "wallclock". The engine's Perf timing is the one sanctioned user,
//     behind //redhip:allow wallclock.
//   - the global math/rand (and math/rand/v2) generators — check
//     "globalrand". Every source of randomness must be an owned, seeded
//     stream (workload.rng) so runs replay.
//   - ranging over a map while writing state outside the loop — check
//     "maporder". Go randomises map iteration order, so any fold over a
//     map range is order-dependent unless proven commutative; the
//     analyzer cannot prove that, so it asks for an explicit
//     //redhip:allow maporder with a reason.
//
// Serving-side packages (analysis.ServingPackages: internal/serve and
// cmd/redhip-serve) are explicitly outside the contract — a network
// server reads the wall clock and spawns goroutines as a matter of
// course, so the analyzer skips them by name rather than forcing
// waivers through the server.
//
// Blocks guarded by `if redhipassert.Enabled { ... }` or
// `if faultinject.Enabled { ... }` (analysis.CompiledOutPackages) are
// skipped for the same reason the hotpath analyzer skips them: Enabled
// is a build-tag constant, false by default, so the guarded block is
// deleted from the production build and cannot perturb shipped
// determinism — chaos schedules may legitimately sleep or read the
// clock inside an injection guard.
package determinism

import (
	"go/ast"
	"go/types"

	"redhip/internal/analysis"
)

// Analyzer is the determinism pass.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: "forbid wall-clock reads, global math/rand and order-dependent map iteration " +
		"inside the simulation packages that feed the golden Result fingerprints",
	Run: run,
}

// wallclockFuncs are the banned time package functions. time.Duration
// arithmetic and formatting stay legal; only reading the clock (or
// scheduling against it) is nondeterministic.
var wallclockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true, "NewTimer": true, "NewTicker": true,
}

// globalRandFuncs are the math/rand (and v2) top-level functions that
// consume the shared global source. rand.New/NewSource/NewPCG etc.
// construct owned generators and stay legal.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true, "Int63": true, "Int63n": true,
	"Uint32": true, "Uint64": true, "Float32": true, "Float64": true, "NormFloat64": true,
	"ExpFloat64": true, "Perm": true, "Shuffle": true, "Seed": true, "Read": true,
	// math/rand/v2 spellings.
	"IntN": true, "Int32": true, "Int32N": true, "Int64": true, "Int64N": true,
	"UintN": true, "Uint": true, "Uint32N": true, "Uint64N": true, "N": true,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg == nil {
		return nil
	}
	// Serving-side packages (internal/serve, cmd/redhip-serve) are
	// declared non-simulation: wall clock, goroutines and timers are
	// legitimate there, so they are excluded by name instead of via
	// scattered //redhip:allow waivers.
	if analysis.IsServingPackage(pass.Pkg.Path()) {
		return nil
	}
	if !analysis.IsSimulationPackage(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			decl, _ := d.(*ast.FuncDecl) // nil for package-scope var/const decls
			// Bodies of compiled-out guards (redhipassert.Enabled,
			// faultinject.Enabled) never reach the production build;
			// collect them so the main walk skips them. Else arms, if
			// any, still ship and are walked.
			guarded := make(map[*ast.BlockStmt]bool)
			ast.Inspect(d, func(n ast.Node) bool {
				if ifStmt, ok := n.(*ast.IfStmt); ok && analysis.IsCompiledOutGuard(pass.TypesInfo, ifStmt) {
					guarded[ifStmt.Body] = true
				}
				return true
			})
			ast.Inspect(d, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.BlockStmt:
					if guarded[n] {
						return false
					}
				case *ast.CallExpr:
					checkCall(pass, decl, n)
				case *ast.RangeStmt:
					checkMapRange(pass, decl, n)
				}
				return true
			})
		}
	}
	return nil
}

// checkCall flags banned time and math/rand package-level calls.
func checkCall(pass *analysis.Pass, decl *ast.FuncDecl, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	ident, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pkgName, ok := pass.TypesInfo.Uses[ident].(*types.PkgName)
	if !ok {
		return
	}
	switch pkgName.Imported().Path() {
	case "time":
		if wallclockFuncs[sel.Sel.Name] && !pass.Ann.Allowed(call.Pos(), decl, "wallclock") {
			pass.Reportf(call.Pos(),
				"wall-clock read time.%s in simulation package %s breaks run determinism (annotate //redhip:allow wallclock for sanctioned perf timing)",
				sel.Sel.Name, analysis.PathTail(pass.Pkg.Path()))
		}
	case "math/rand", "math/rand/v2":
		if globalRandFuncs[sel.Sel.Name] && !pass.Ann.Allowed(call.Pos(), decl, "globalrand") {
			pass.Reportf(call.Pos(),
				"global rand.%s in simulation package %s is seeded per process, not per run; use an owned seeded generator (workload.rng)",
				sel.Sel.Name, analysis.PathTail(pass.Pkg.Path()))
		}
	}
}

// checkMapRange flags map-range loops whose bodies write state declared
// outside the loop: with randomised iteration order, such folds are
// order-dependent unless every write is commutative, which the analyzer
// cannot prove.
func checkMapRange(pass *analysis.Pass, decl *ast.FuncDecl, rng *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if pass.Ann.Allowed(rng.Pos(), decl, "maporder") {
		return
	}
	if w := findOuterWrite(pass, rng); w != nil {
		pass.Reportf(rng.Pos(),
			"map range writes state outside the loop (%s); iteration order is randomised — restructure deterministically or annotate //redhip:allow maporder with the reason it commutes",
			describeWrite(w))
	}
}

// findOuterWrite returns a node in rng.Body that writes a variable
// declared outside the range statement, or nil.
func findOuterWrite(pass *analysis.Pass, rng *ast.RangeStmt) ast.Node {
	var found ast.Node
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if writesOuter(pass, rng, lhs) {
					found = n
					return false
				}
			}
		case *ast.IncDecStmt:
			if writesOuter(pass, rng, n.X) {
				found = n
				return false
			}
		case *ast.SendStmt:
			found = n
			return false
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "delete" {
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					found = n
					return false
				}
			}
		}
		return true
	})
	return found
}

// writesOuter reports whether lhs resolves to (or dereferences into) a
// variable declared outside the range statement.
func writesOuter(pass *analysis.Pass, rng *ast.RangeStmt, lhs ast.Expr) bool {
	for {
		switch e := lhs.(type) {
		case *ast.Ident:
			if e.Name == "_" {
				return false
			}
			obj := pass.TypesInfo.Defs[e]
			if obj == nil {
				obj = pass.TypesInfo.Uses[e]
			}
			if obj == nil {
				return false
			}
			// A variable whose declaration lies within the range
			// statement is loop-local; anything else is outer state.
			return obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
		case *ast.SelectorExpr:
			lhs = e.X
		case *ast.IndexExpr:
			lhs = e.X
		case *ast.StarExpr:
			lhs = e.X
		case *ast.ParenExpr:
			lhs = e.X
		default:
			return false
		}
	}
}

func describeWrite(n ast.Node) string {
	switch n.(type) {
	case *ast.AssignStmt:
		return "assignment"
	case *ast.IncDecStmt:
		return "increment/decrement"
	case *ast.SendStmt:
		return "channel send"
	case *ast.CallExpr:
		return "map delete"
	}
	return "write"
}
