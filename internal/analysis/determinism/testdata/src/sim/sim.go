// Package sim is a determinism-analyzer fixture: it stands in for the
// real simulation engine package (matched by path tail), so the banned
// constructs below are deliberate.
package sim

import (
	"math/rand"
	"time"

	"faultinject"
)

var total int

// badClock reads the wall clock from simulation code.
func badClock() int64 {
	t := time.Now()              // want `wall-clock read time.Now`
	time.Sleep(time.Millisecond) // want `wall-clock read time.Sleep`
	return t.UnixNano()
}

// okPerfTiming is the sanctioned use: perf instrumentation annotated
// with the escape hatch.
func okPerfTiming() time.Duration {
	start := time.Now() //redhip:allow wallclock -- perf timing only
	return time.Since(start) //redhip:allow wallclock
}

//redhip:allow wallclock -- whole function is perf-report plumbing
func okPerfFunc() time.Time {
	return time.Now()
}

// badGlobalRand draws from the process-global generator.
func badGlobalRand() int {
	return rand.Intn(16) // want `global rand.Intn`
}

// okOwnedRand constructs an owned, seeded stream.
func okOwnedRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(16)
}

// badMapFold writes outer state from a map range.
func badMapFold(m map[string]int) int {
	sum := 0
	for _, v := range m { // want `map range writes state outside the loop`
		sum += v
	}
	return sum
}

// okMapLocal only touches loop-local state.
func okMapLocal(m map[string]int) {
	for k, v := range m {
		kv := k
		n := v
		_ = kv
		_ = n
	}
}

// okAllowedFold is annotated: integer addition commutes, so iteration
// order cannot change the result.
func okAllowedFold(m map[string]int) {
	//redhip:allow maporder -- integer sum commutes
	for _, v := range m {
		total += v
	}
}

// okInjectionGuard shows the compiled-out escape: a faultinject.Enabled
// guard may sleep or read the clock, because the whole block is deleted
// from default builds and cannot perturb shipped determinism.
func okInjectionGuard() {
	if faultinject.Enabled {
		time.Sleep(time.Millisecond)
		if err := faultinject.Fire("sim.step"); err != nil {
			_ = time.Now()
		}
	}
}

// badInjectionElse proves only the guard's then-arm is exempt: the else
// arm ships in production and stays patrolled.
func badInjectionElse() int64 {
	if faultinject.Enabled {
		time.Sleep(time.Millisecond)
		return 0
	}
	return time.Now().UnixNano() // want `wall-clock read time.Now`
}

// okSliceRange proves non-map ranges are ignored.
func okSliceRange(s []int) int {
	sum := 0
	for _, v := range s {
		sum += v
	}
	return sum
}
