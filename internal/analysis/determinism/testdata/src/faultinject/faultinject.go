// Package faultinject is a fixture stand-in for the real
// fault-injection layer; the analyzers match it by import-path tail
// (analysis.CompiledOutPackages).
package faultinject

const Enabled = false

func Fire(point string) error { return nil }
