// Package hotpath implements the redhip-lint hotpath analyzer: the
// compile-time companion to the AllocsPerRun tests. Functions annotated
// //redhip:hotpath (the engine reference loop, the cache way scans, the
// prediction-table lookups) must stay allocation-free and
// dispatch-free, so inside their bodies the analyzer flags
//
//   - heap-allocating constructs: make, new, composite literals,
//     append, string concatenation/conversion — check "alloc";
//   - interface dispatch: calls through interface-typed receivers and
//     explicit conversions to interface types — check "iface";
//   - defer and go statements — checks "defer" and "go".
//
// Blocks guarded by `if redhipassert.Enabled { ... }` or
// `if faultinject.Enabled { ... }` (analysis.CompiledOutPackages) are
// skipped: Enabled is a build-tag constant, so in the production build
// the compiler deletes those blocks entirely and nothing inside them
// can reach the hot path.
//
// Serialisation packages (analysis.SerializationPackages, e.g.
// simstate) are skipped wholesale: encode/decode code allocates by
// nature and runs only at warmup/measure boundaries, never inside the
// per-reference loop.
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"

	"redhip/internal/analysis"
)

// Analyzer is the hotpath pass.
var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc: "flag heap allocations, interface dispatch and defer inside functions " +
		"annotated //redhip:hotpath",
	Run: run,
}

func run(pass *analysis.Pass) error {
	// Serialisation packages (analysis.SerializationPackages, e.g.
	// simstate) are setup/teardown code by charter: encoding state
	// allocates by nature, so hot-path auditing there is meaningless
	// and the whole package is skipped.
	if analysis.IsSerializationPackage(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil || !pass.Ann.IsHotpath(decl) {
				continue
			}
			checkBody(pass, decl)
		}
	}
	return nil
}

func checkBody(pass *analysis.Pass, decl *ast.FuncDecl) {
	// Bodies of `if redhipassert.Enabled { ... }` and
	// `if faultinject.Enabled { ... }` guards compile out in the
	// production build; collect them so the main walk skips them
	// (else arms, if any, still run in production and are walked).
	assertBlocks := make(map[*ast.BlockStmt]bool)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if ifStmt, ok := n.(*ast.IfStmt); ok && analysis.IsCompiledOutGuard(pass.TypesInfo, ifStmt) {
			assertBlocks[ifStmt.Body] = true
		}
		return true
	})
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BlockStmt:
			if assertBlocks[n] {
				return false
			}
		case *ast.DeferStmt:
			if !pass.Ann.Allowed(n.Pos(), decl, "defer") {
				pass.Reportf(n.Pos(), "defer in hot-path function %s costs a frame-teardown hook per call; restructure or annotate //redhip:allow defer", decl.Name.Name)
			}
		case *ast.GoStmt:
			if !pass.Ann.Allowed(n.Pos(), decl, "go") {
				pass.Reportf(n.Pos(), "goroutine launch in hot-path function %s allocates a stack per call; annotate //redhip:allow go if intentional", decl.Name.Name)
			}
		case *ast.FuncLit:
			if !pass.Ann.Allowed(n.Pos(), decl, "alloc") {
				pass.Reportf(n.Pos(), "closure literal in hot-path function %s may allocate its captured environment; hoist it or annotate //redhip:allow alloc", decl.Name.Name)
			}
			return false // don't double-report the closure's own body
		case *ast.CompositeLit:
			if !pass.Ann.Allowed(n.Pos(), decl, "alloc") {
				pass.Reportf(n.Pos(), "composite literal in hot-path function %s may heap-allocate; hoist the value or annotate //redhip:allow alloc", decl.Name.Name)
			}
			return false
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(pass, n.X) && !pass.Ann.Allowed(n.Pos(), decl, "alloc") {
				pass.Reportf(n.Pos(), "string concatenation in hot-path function %s allocates; annotate //redhip:allow alloc if unavoidable", decl.Name.Name)
			}
		case *ast.CallExpr:
			checkCall(pass, decl, n)
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, decl *ast.FuncDecl, call *ast.CallExpr) {
	// Builtin allocators.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			switch b.Name() {
			case "make", "new", "append":
				if !pass.Ann.Allowed(call.Pos(), decl, "alloc") {
					pass.Reportf(call.Pos(), "%s in hot-path function %s may heap-allocate; preallocate in build/setup or annotate //redhip:allow alloc", b.Name(), decl.Name.Name)
				}
			}
			return
		}
	}
	// Conversions: T(x) where T is an interface type, or
	// string([]byte)/[]byte(string) copies.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if !pass.Ann.Allowed(call.Pos(), decl, "iface") && types.IsInterface(tv.Type) {
			pass.Reportf(call.Pos(), "conversion to interface type %s in hot-path function %s boxes its operand; annotate //redhip:allow iface if intentional", tv.Type, decl.Name.Name)
			return
		}
		if !pass.Ann.Allowed(call.Pos(), decl, "alloc") && isStringByteConversion(tv.Type, pass, call) {
			pass.Reportf(call.Pos(), "string/[]byte conversion in hot-path function %s copies; annotate //redhip:allow alloc if unavoidable", decl.Name.Name)
		}
		return
	}
	// Calls through an interface-typed receiver dispatch dynamically.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if s, ok := pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.MethodVal {
			if types.IsInterface(s.Recv()) && !pass.Ann.Allowed(call.Pos(), decl, "iface") {
				pass.Reportf(call.Pos(), "interface method call %s.%s in hot-path function %s dispatches dynamically; devirtualise (cache the concrete type) or annotate //redhip:allow iface", s.Recv(), sel.Sel.Name, decl.Name.Name)
			}
		}
	}
	// Variadic ...any arguments box every operand (fmt and friends).
	if sig, ok := pass.TypesInfo.Types[call.Fun].Type.(*types.Signature); ok && sig.Variadic() {
		last := sig.Params().At(sig.Params().Len() - 1)
		if slice, ok := last.Type().(*types.Slice); ok && types.IsInterface(slice.Elem()) && len(call.Args) >= sig.Params().Len() {
			if !pass.Ann.Allowed(call.Pos(), decl, "alloc") {
				pass.Reportf(call.Pos(), "variadic ...interface argument in hot-path function %s boxes its operands; annotate //redhip:allow alloc if this path is cold", decl.Name.Name)
			}
		}
	}
}

func isStringType(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isStringByteConversion reports string<->[]byte conversions, which
// copy their operand.
func isStringByteConversion(target types.Type, pass *analysis.Pass, call *ast.CallExpr) bool {
	if len(call.Args) != 1 {
		return false
	}
	src, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok {
		return false
	}
	toString := false
	if b, ok := target.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
		toString = true
	}
	fromString := false
	if b, ok := src.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
		fromString = true
	}
	isByteSlice := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
	}
	return (toString && isByteSlice(src.Type)) || (fromString && isByteSlice(target))
}
