// Package hot is a hotpath-analyzer fixture: each annotated function
// exercises one class of flagged construct, and the unannotated and
// escape-hatched functions prove the analyzer stays quiet elsewhere.
package hot

import (
	"fmt"

	"faultinject"
	"redhipassert"
)

type scanner struct {
	buf []uint64
	n   int
}

type sink interface {
	Put(uint64)
}

type nullSink struct{}

func (nullSink) Put(uint64) {}

type stats struct{ hits, misses int }

//redhip:hotpath
func (s *scanner) scan(tags []uint64, k sink) int {
	hits := 0
	for _, t := range tags {
		if t == 0 {
			continue
		}
		hits++
		s.buf = append(s.buf, t) // want `append in hot-path function scan`
		k.Put(t)                 // want `interface method call`
	}
	defer fmt.Println(hits) // want `defer in hot-path function scan` `variadic`
	return hits
}

//redhip:hotpath
func (s *scanner) grow() {
	s.buf = make([]uint64, 16) // want `make in hot-path function grow`
}

//redhip:hotpath
func box(ns nullSink) sink {
	return sink(ns) // want `conversion to interface type`
}

//redhip:hotpath
func snapshot() stats {
	return stats{} // want `composite literal in hot-path`
}

// checked shows the redhipassert.Enabled escape: the guarded block
// compiles out in production, so its allocations are not flagged.
//
//redhip:hotpath
func (s *scanner) checked(v uint64) {
	s.n++
	if redhipassert.Enabled {
		tmp := make([]uint64, len(s.buf))
		copy(tmp, s.buf)
		redhipassert.Check(len(tmp) == len(s.buf), "hot: copy length mismatch")
	}
}

// faulted shows the faultinject.Enabled escape: the injection guard
// compiles out in production, so its allocations are not flagged —
// but the else arm ships and still is.
//
//redhip:hotpath
func (s *scanner) faulted(v uint64) {
	if faultinject.Enabled {
		points := make([]string, 0, 1)
		points = append(points, "hot.scan")
		for _, p := range points {
			_ = faultinject.Fire(p)
		}
	} else {
		s.buf = append(s.buf, v) // want `append in hot-path function faulted`
	}
	s.n++
}

// amortised shows the explicit escape hatch for a reviewed allocation.
//
//redhip:hotpath
func (s *scanner) amortised(v uint64) {
	s.buf = append(s.buf, v) //redhip:allow alloc -- amortised growth, buffer retained across calls
}

// notHot is unannotated: the analyzer ignores it entirely.
func notHot() []uint64 {
	defer fmt.Println("done")
	return make([]uint64, 4)
}
