// Package simstate is the hotpath fixture for the serialisation-package
// exemption (analysis.SerializationPackages): even an explicit
// //redhip:hotpath annotation in here must produce no diagnostics,
// because encode/decode paths allocate by charter and never run inside
// the per-reference loop.
package simstate

// Encode would trip every hotpath check — make, append, string
// conversion, variadic boxing — were this package not exempt.
//
//redhip:hotpath
func Encode(words []uint64) []byte {
	out := make([]byte, 0, 8*len(words))
	for _, w := range words {
		out = append(out, byte(w))
	}
	out = append(out, []byte("trailer")...)
	return out
}
