// Package redhipassert is a fixture stand-in for the real assertion
// layer; the hotpath analyzer matches it by import-path tail.
package redhipassert

const Enabled = false

func Check(cond bool, msg string) {
	if !cond {
		panic(msg)
	}
}
