package hotpath_test

import (
	"testing"

	"redhip/internal/analysis/analysistest"
	"redhip/internal/analysis/hotpath"
)

func TestHotpath(t *testing.T) {
	analysistest.Run(t, "testdata", hotpath.Analyzer, "hot", "simstate")
}
