// Package guarded implements the redhip-lint guarded analyzer: lock
// and atomic discipline for the concurrent surfaces (the serve job
// store/queue, the tracestore RAM and disk tiers, the simstate store,
// and the parallel recalibration words). Three sub-checks:
//
//  1. guardedby — a struct field annotated //redhip:guardedby <mu>
//     may only be accessed from functions that lock <mu>
//     (mu.Lock()/mu.RLock() anywhere in the body), from helpers whose
//     name ends in "Locked" (the repo's called-with-lock-held
//     convention), or at sites covered by //redhip:phase-exclusive.
//  2. atomic discipline — a field whose address feeds a sync/atomic
//     call anywhere in the package must never be plain-read or
//     plain-written elsewhere, except at //redhip:phase-exclusive
//     sites (documented single-threaded phases: construction, the
//     zeroing before goroutines start, post-Wait reductions).
//  3. goroutine capture — a struct field accessed inside a
//     `go func(){...}` closure must be one of: an inherently
//     concurrency-safe type (sync.*, sync/atomic.*, channels), an
//     atomic call site, guarded under sub-check 1, protected by a
//     lock taken inside the closure, or //redhip:phase-exclusive.
//
// The check is a lexical/typed heuristic, not an alias analysis: it
// resolves field identity through go/types but trusts the lock-call
// and Locked-suffix conventions. The //redhip:phase-exclusive escape
// hatch requires a written reason, which the annotations analyzer
// enforces — the waiver is the audit trail.
package guarded

import (
	"go/ast"
	"go/types"
	"strings"

	"redhip/internal/analysis"
)

// Analyzer is the guarded pass.
var Analyzer = &analysis.Analyzer{
	Name: "guarded",
	Doc: "enforce //redhip:guardedby mutex discipline, forbid plain access to " +
		"atomically-accessed fields, and audit struct fields captured by goroutine closures",
	Run: run,
}

// facts is the per-package collection phase output.
type facts struct {
	// guardedBy maps annotated struct fields to their mutex name.
	guardedBy map[*types.Var]string
	// atomicFields are fields whose address reaches a sync/atomic call.
	atomicFields map[*types.Var]bool
	// atomicSites are the selector nodes appearing inside sync/atomic
	// call arguments — those accesses are the sanctioned ones.
	atomicSites map[*ast.SelectorExpr]bool
}

func run(pass *analysis.Pass) error {
	f := collect(pass)
	if len(f.guardedBy) == 0 && len(f.atomicFields) == 0 && !hasGoStmt(pass) {
		return nil
	}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			checkFunc(pass, f, decl)
		}
	}
	return nil
}

func collect(pass *analysis.Pass) *facts {
	f := &facts{
		guardedBy:    make(map[*types.Var]string),
		atomicFields: make(map[*types.Var]bool),
		atomicSites:  make(map[*ast.SelectorExpr]bool),
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Field:
				// Struct fields annotated //redhip:guardedby <mu>.
				for _, name := range n.Names {
					mu, ok := pass.Ann.GuardedByAt(name.Pos())
					if !ok {
						continue
					}
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok && v.IsField() {
						f.guardedBy[v] = mu
					}
				}
			case *ast.CallExpr:
				if !isAtomicCall(pass, n) {
					return true
				}
				for _, arg := range n.Args {
					ast.Inspect(arg, func(an ast.Node) bool {
						sel, ok := an.(*ast.SelectorExpr)
						if !ok {
							return true
						}
						s, ok := pass.TypesInfo.Selections[sel]
						if !ok || s.Kind() != types.FieldVal {
							return true
						}
						if v, ok := s.Obj().(*types.Var); ok {
							f.atomicFields[v] = true
							f.atomicSites[sel] = true
						}
						return true
					})
				}
			}
			return true
		})
	}
	return f
}

// isAtomicCall reports whether call invokes a sync/atomic function.
func isAtomicCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkg, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	return ok && pkg.Imported().Path() == "sync/atomic"
}

func hasGoStmt(pass *analysis.Pass) bool {
	for _, file := range pass.Files {
		found := false
		ast.Inspect(file, func(n ast.Node) bool {
			if _, ok := n.(*ast.GoStmt); ok {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// lockedMutexes collects the names of mutex fields body locks:
// x.mu.Lock(), x.mu.RLock(), or a bare mu.Lock().
func lockedMutexes(body ast.Node) map[string]bool {
	names := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		switch x := sel.X.(type) {
		case *ast.SelectorExpr:
			names[x.Sel.Name] = true
		case *ast.Ident:
			names[x.Name] = true
		}
		return true
	})
	return names
}

// concurrencySafeType reports whether a field of type t is safe to
// touch from multiple goroutines by its own API contract: sync.Mutex,
// sync.WaitGroup, sync/atomic value types (or pointers to them), and
// channels.
func concurrencySafeType(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		if pkg := named.Obj().Pkg(); pkg != nil {
			if pkg.Path() == "sync" || pkg.Path() == "sync/atomic" {
				return true
			}
		}
	}
	_, isChan := t.Underlying().(*types.Chan)
	return isChan
}

func checkFunc(pass *analysis.Pass, f *facts, decl *ast.FuncDecl) {
	locked := lockedMutexes(decl.Body)
	isLockedHelper := strings.HasSuffix(decl.Name.Name, "Locked")

	ast.Inspect(decl.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			if g, ok := n.(*ast.GoStmt); ok {
				if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
					checkGoClosure(pass, f, decl, lit)
					// The closure body is still walked below for the
					// guardedby/atomic rules; the goroutine rule only
					// adds the capture audit on top.
				}
			}
			return true
		}
		s, ok := pass.TypesInfo.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return true
		}
		v, ok := s.Obj().(*types.Var)
		if !ok {
			return true
		}
		if mu, guarded := f.guardedBy[v]; guarded {
			if !isLockedHelper && !locked[mu] && !pass.Ann.PhaseExclusive(sel.Pos(), decl) {
				pass.Reportf(sel.Pos(),
					"field %s is //redhip:guardedby %s, but %s does not lock %s, is not a *Locked helper, and the access is not //redhip:phase-exclusive",
					v.Name(), mu, decl.Name.Name, mu)
			}
			return true
		}
		if f.atomicFields[v] && !f.atomicSites[sel] && !pass.Ann.PhaseExclusive(sel.Pos(), decl) {
			pass.Reportf(sel.Pos(),
				"field %s is accessed via sync/atomic elsewhere; this plain access races with it — use atomic ops or annotate //redhip:phase-exclusive <reason>",
				v.Name())
		}
		return true
	})
}

// checkGoClosure audits struct fields captured by a go-statement
// closure: anything mutable and not otherwise disciplined needs a
// //redhip:phase-exclusive justification.
func checkGoClosure(pass *analysis.Pass, f *facts, decl *ast.FuncDecl, lit *ast.FuncLit) {
	closureLocks := lockedMutexes(lit.Body)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s, ok := pass.TypesInfo.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return true
		}
		v, ok := s.Obj().(*types.Var)
		if !ok {
			return true
		}
		if _, guarded := f.guardedBy[v]; guarded {
			return true // sub-check 1 owns guarded fields
		}
		if f.atomicSites[sel] || f.atomicFields[v] {
			return true // sub-check 2 owns atomic fields
		}
		if concurrencySafeType(v.Type()) || len(closureLocks) > 0 {
			return true
		}
		if pass.Ann.PhaseExclusive(sel.Pos(), decl) {
			return true
		}
		pass.Reportf(sel.Pos(),
			"field %s is accessed from a goroutine closure in %s without lock, atomic, or //redhip:phase-exclusive discipline",
			v.Name(), decl.Name.Name)
		return true
	})
}
