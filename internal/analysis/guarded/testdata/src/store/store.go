// Package store is a guarded-analyzer fixture exercising all three
// sub-checks: //redhip:guardedby mutex discipline, atomic-field
// discipline, and the goroutine capture audit.
package store

import (
	"sync"
	"sync/atomic"
)

// Store mixes a mutex-guarded map, an atomically-bumped counter, and a
// plain counter touched from goroutines.
type Store struct {
	mu    sync.Mutex
	wg    sync.WaitGroup
	done  chan struct{}
	items map[string]int //redhip:guardedby mu
	hits  uint64
	ticks int
}

// Get locks the mutex before touching items.
func (s *Store) Get(k string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.items[k]
}

// Peek reads items with no lock anywhere in its body.
func (s *Store) Peek(k string) int {
	return s.items[k] // want `field items is //redhip:guardedby mu`
}

// sizeLocked follows the called-with-lock-held naming convention.
func (s *Store) sizeLocked() int { return len(s.items) }

// seed populates the map before the store is shared with anyone.
//
//redhip:phase-exclusive construction: runs before any goroutine sees the store
func (s *Store) seed(k string, v int) {
	if s.items == nil {
		s.items = make(map[string]int)
	}
	s.items[k] = v
}

// Bump is the sanctioned atomic access to hits.
func (s *Store) Bump() { atomic.AddUint64(&s.hits, 1) }

// HitsRacy plain-reads a field Bump touches atomically.
func (s *Store) HitsRacy() uint64 {
	return s.hits // want `field hits is accessed via sync/atomic elsewhere`
}

// HitsFinal reads hits after every writer has been joined.
func (s *Store) HitsFinal() uint64 {
	s.wg.Wait()
	//redhip:phase-exclusive all writers joined by wg.Wait on the line above
	return s.hits
}

// SpinRacy bumps a plain counter from a goroutine with no discipline.
func (s *Store) SpinRacy() {
	s.wg.Add(1)
	go func() {
		s.ticks++ // want `field ticks is accessed from a goroutine closure`
		s.wg.Done()
	}()
}

// SpinDocumented carries the reviewed waiver for the same pattern.
func (s *Store) SpinDocumented() {
	s.wg.Add(1)
	go func() {
		//redhip:phase-exclusive exactly one goroutine owns ticks until wg.Wait
		s.ticks++
		s.wg.Done()
	}()
}

// SpinLocked takes the lock inside the closure, which the audit
// accepts, and signals on a channel field, which is safe by type.
func (s *Store) SpinLocked(k string) {
	go func() {
		s.mu.Lock()
		s.items[k]++
		s.mu.Unlock()
		close(s.done)
	}()
}
