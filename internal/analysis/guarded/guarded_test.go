package guarded_test

import (
	"testing"

	"redhip/internal/analysis/analysistest"
	"redhip/internal/analysis/guarded"
)

func TestGuarded(t *testing.T) {
	analysistest.Run(t, "testdata", guarded.Analyzer, "store")
}
