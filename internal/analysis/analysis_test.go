package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

const annSrc = `package p

//redhip:hotpath
func hot() {
	x := 1 //redhip:allow alloc -- reviewed
	//redhip:allow defer
	y := 2
	z := 3
	_, _, _ = x, y, z
}

//redhip:allow wallclock, globalrand -- perf plumbing
func timed() {}

func plain() {}
`

func parseAnn(t *testing.T) (*token.FileSet, *ast.File, *Annotations) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", annSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f, ParseAnnotations(fset, []*ast.File{f})
}

func funcNamed(f *ast.File, name string) *ast.FuncDecl {
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fd
		}
	}
	return nil
}

// stmtPos returns the position of the i-th statement of fn's body.
func stmtPos(fn *ast.FuncDecl, i int) token.Pos {
	return fn.Body.List[i].Pos()
}

func TestHotpathAnnotation(t *testing.T) {
	_, f, ann := parseAnn(t)
	if !ann.IsHotpath(funcNamed(f, "hot")) {
		t.Error("hot: expected //redhip:hotpath to be recognised")
	}
	if ann.IsHotpath(funcNamed(f, "timed")) || ann.IsHotpath(funcNamed(f, "plain")) {
		t.Error("timed/plain: unexpected hotpath annotation")
	}
}

func TestAllowTrailingAndLineAbove(t *testing.T) {
	_, f, ann := parseAnn(t)
	hot := funcNamed(f, "hot")
	if !ann.AllowsAt(stmtPos(hot, 0), "alloc") {
		t.Error("trailing //redhip:allow alloc not recognised")
	}
	if !ann.AllowsAt(stmtPos(hot, 1), "defer") {
		t.Error("line-above //redhip:allow defer not recognised")
	}
	if ann.AllowsAt(stmtPos(hot, 2), "alloc") || ann.AllowsAt(stmtPos(hot, 2), "defer") {
		t.Error("allow leaked onto an unannotated line")
	}
	if ann.AllowsAt(stmtPos(hot, 0), "defer") {
		t.Error("allow check name not respected")
	}
}

func TestFuncAllowsCommaList(t *testing.T) {
	_, f, ann := parseAnn(t)
	timed := funcNamed(f, "timed")
	for _, check := range []string{"wallclock", "globalrand"} {
		if !ann.FuncAllows(timed, check) {
			t.Errorf("timed: func-level allow %q not recognised", check)
		}
	}
	if ann.FuncAllows(timed, "alloc") {
		t.Error("timed: unexpected allow for alloc")
	}
	if ann.FuncAllows(funcNamed(f, "plain"), "wallclock") {
		t.Error("plain: unexpected func-level allow")
	}
}

func TestPathTail(t *testing.T) {
	cases := map[string]string{
		"redhip/internal/cache": "cache",
		"sim":                   "sim",
		"a/b/c":                 "c",
	}
	for in, want := range cases {
		if got := PathTail(in); got != want {
			t.Errorf("PathTail(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestIsSimulationPackage(t *testing.T) {
	for _, p := range []string{"redhip/internal/sim", "cache", "redhip/internal/tracestore"} {
		if !IsSimulationPackage(p) {
			t.Errorf("IsSimulationPackage(%q) = false, want true", p)
		}
	}
	for _, p := range []string{"redhip/internal/analysis", "redhip/cmd/redhip-sim", "stats"} {
		if IsSimulationPackage(p) {
			t.Errorf("IsSimulationPackage(%q) = true, want false", p)
		}
	}
}

func TestIsServingPackage(t *testing.T) {
	for _, p := range []string{"redhip/internal/serve", "redhip/cmd/redhip-serve", "serve"} {
		if !IsServingPackage(p) {
			t.Errorf("IsServingPackage(%q) = false, want true", p)
		}
	}
	for _, p := range []string{"redhip/internal/sim", "redhip/cmd/redhip-sim", "stats"} {
		if IsServingPackage(p) {
			t.Errorf("IsServingPackage(%q) = true, want false", p)
		}
	}
}

// A package must never be both simulated (determinism-patrolled) and
// serving (determinism-exempt): an overlap would silently exempt
// simulation code from the contract.
func TestSimulationServingSetsDisjoint(t *testing.T) {
	for p := range ServingPackages {
		if SimulationPackages[p] {
			t.Errorf("package %q is in both SimulationPackages and ServingPackages", p)
		}
	}
}

func TestIsSerializationPackage(t *testing.T) {
	for _, p := range []string{"redhip/internal/simstate", "simstate"} {
		if !IsSerializationPackage(p) {
			t.Errorf("IsSerializationPackage(%q) = false, want true", p)
		}
	}
	for _, p := range []string{"redhip/internal/sim", "redhip/internal/tracestore", "serve"} {
		if IsSerializationPackage(p) {
			t.Errorf("IsSerializationPackage(%q) = true, want false", p)
		}
	}
}
