package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

const annSrc = `package p

//redhip:hotpath
func hot() {
	x := 1 //redhip:allow alloc -- reviewed
	//redhip:allow defer
	y := 2
	z := 3
	_, _, _ = x, y, z
}

//redhip:allow wallclock, globalrand -- perf plumbing
func timed() {}

func plain() {}
`

func parseAnn(t *testing.T) (*token.FileSet, *ast.File, *Annotations) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", annSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f, ParseAnnotations(fset, []*ast.File{f})
}

func funcNamed(f *ast.File, name string) *ast.FuncDecl {
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fd
		}
	}
	return nil
}

// stmtPos returns the position of the i-th statement of fn's body.
func stmtPos(fn *ast.FuncDecl, i int) token.Pos {
	return fn.Body.List[i].Pos()
}

func TestHotpathAnnotation(t *testing.T) {
	_, f, ann := parseAnn(t)
	if !ann.IsHotpath(funcNamed(f, "hot")) {
		t.Error("hot: expected //redhip:hotpath to be recognised")
	}
	if ann.IsHotpath(funcNamed(f, "timed")) || ann.IsHotpath(funcNamed(f, "plain")) {
		t.Error("timed/plain: unexpected hotpath annotation")
	}
}

func TestAllowTrailingAndLineAbove(t *testing.T) {
	_, f, ann := parseAnn(t)
	hot := funcNamed(f, "hot")
	if !ann.AllowsAt(stmtPos(hot, 0), "alloc") {
		t.Error("trailing //redhip:allow alloc not recognised")
	}
	if !ann.AllowsAt(stmtPos(hot, 1), "defer") {
		t.Error("line-above //redhip:allow defer not recognised")
	}
	if ann.AllowsAt(stmtPos(hot, 2), "alloc") || ann.AllowsAt(stmtPos(hot, 2), "defer") {
		t.Error("allow leaked onto an unannotated line")
	}
	if ann.AllowsAt(stmtPos(hot, 0), "defer") {
		t.Error("allow check name not respected")
	}
}

func TestFuncAllowsCommaList(t *testing.T) {
	_, f, ann := parseAnn(t)
	timed := funcNamed(f, "timed")
	for _, check := range []string{"wallclock", "globalrand"} {
		if !ann.FuncAllows(timed, check) {
			t.Errorf("timed: func-level allow %q not recognised", check)
		}
	}
	if ann.FuncAllows(timed, "alloc") {
		t.Error("timed: unexpected allow for alloc")
	}
	if ann.FuncAllows(funcNamed(f, "plain"), "wallclock") {
		t.Error("plain: unexpected func-level allow")
	}
}

func TestPathTail(t *testing.T) {
	cases := map[string]string{
		"redhip/internal/cache": "cache",
		"sim":                   "sim",
		"a/b/c":                 "c",
	}
	for in, want := range cases {
		if got := PathTail(in); got != want {
			t.Errorf("PathTail(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestIsSimulationPackage(t *testing.T) {
	for _, p := range []string{"redhip/internal/sim", "cache", "redhip/internal/tracestore"} {
		if !IsSimulationPackage(p) {
			t.Errorf("IsSimulationPackage(%q) = false, want true", p)
		}
	}
	for _, p := range []string{"redhip/internal/analysis", "redhip/cmd/redhip-sim", "stats"} {
		if IsSimulationPackage(p) {
			t.Errorf("IsSimulationPackage(%q) = true, want false", p)
		}
	}
}

func TestIsServingPackage(t *testing.T) {
	for _, p := range []string{"redhip/internal/serve", "redhip/cmd/redhip-serve", "serve", "redhip/internal/cluster", "redhip/cmd/redhip-router"} {
		if !IsServingPackage(p) {
			t.Errorf("IsServingPackage(%q) = false, want true", p)
		}
	}
	for _, p := range []string{"redhip/internal/sim", "redhip/cmd/redhip-sim", "stats"} {
		if IsServingPackage(p) {
			t.Errorf("IsServingPackage(%q) = true, want false", p)
		}
	}
}

// A package must never be both simulated (determinism-patrolled) and
// serving (determinism-exempt): an overlap would silently exempt
// simulation code from the contract.
func TestSimulationServingSetsDisjoint(t *testing.T) {
	for p := range ServingPackages {
		if SimulationPackages[p] {
			t.Errorf("package %q is in both SimulationPackages and ServingPackages", p)
		}
	}
}

func TestIsSerializationPackage(t *testing.T) {
	for _, p := range []string{"redhip/internal/simstate", "simstate"} {
		if !IsSerializationPackage(p) {
			t.Errorf("IsSerializationPackage(%q) = false, want true", p)
		}
	}
	for _, p := range []string{"redhip/internal/sim", "redhip/internal/tracestore", "serve"} {
		if IsSerializationPackage(p) {
			t.Errorf("IsSerializationPackage(%q) = true, want false", p)
		}
	}
}

const verbSrc = `package q

type s struct {
	a int //redhip:transient rebuilt by ctor // nested commentary
	//redhip:transient derived from geometry
	b int
	c int
	d int //redhip:guardedby mu
	e int
}

func f() {
	x := 1 //redhip:phase-exclusive init only
	y := 2
	_, _ = x, y
}

//redhip:phase-exclusive whole function is single-threaded
func g() {
	x := 1
	_ = x
}

//redhip:unsafe-ok POD view
func h() {
	x := 1 //redhip:unsafe-ok aligned view
	y := 2
	_, _ = x, y
}
`

func parseSrc(t *testing.T, src string) (*token.FileSet, *ast.File, *Annotations) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "q.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f, ParseAnnotations(fset, []*ast.File{f})
}

// fieldPos returns the position of the i-th field of the file's first
// struct type.
func fieldPos(t *testing.T, f *ast.File, i int) token.Pos {
	t.Helper()
	for _, d := range f.Decls {
		gd, ok := d.(*ast.GenDecl)
		if !ok {
			continue
		}
		for _, spec := range gd.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok {
				continue
			}
			if st, ok := ts.Type.(*ast.StructType); ok {
				return st.Fields.List[i].Pos()
			}
		}
	}
	t.Fatal("no struct type in fixture")
	return token.NoPos
}

func TestTransientTargetingNoSpill(t *testing.T) {
	_, f, ann := parseSrc(t, verbSrc)
	if !ann.TransientAt(fieldPos(t, f, 0)) {
		t.Error("field a: trailing //redhip:transient not recognised")
	}
	if !ann.TransientAt(fieldPos(t, f, 1)) {
		t.Error("field b: own-line //redhip:transient not recognised")
	}
	// The trailing annotation on a and the own-line annotation above b
	// must both stop at their targets: c is unannotated.
	if ann.TransientAt(fieldPos(t, f, 2)) {
		t.Error("field c: transient annotation spilled onto the next field")
	}
	if ann.TransientAt(fieldPos(t, f, 3)) || ann.TransientAt(fieldPos(t, f, 4)) {
		t.Error("fields d/e: unexpected transient coverage")
	}
	if len(ann.Errors()) != 0 {
		t.Errorf("unexpected annotation errors: %v", ann.Errors())
	}
}

func TestGuardedByTargeting(t *testing.T) {
	_, f, ann := parseSrc(t, verbSrc)
	mu, ok := ann.GuardedByAt(fieldPos(t, f, 3))
	if !ok || mu != "mu" {
		t.Errorf("field d: GuardedByAt = (%q, %v), want (\"mu\", true)", mu, ok)
	}
	if _, ok := ann.GuardedByAt(fieldPos(t, f, 4)); ok {
		t.Error("field e: guardedby annotation spilled onto the next field")
	}
}

func TestPhaseExclusiveLineAndFuncDoc(t *testing.T) {
	_, f, ann := parseSrc(t, verbSrc)
	fd, gd := funcNamed(f, "f"), funcNamed(f, "g")
	if !ann.PhaseExclusive(stmtPos(fd, 0), fd) {
		t.Error("f stmt 0: trailing //redhip:phase-exclusive not recognised")
	}
	if ann.PhaseExclusive(stmtPos(fd, 1), fd) {
		t.Error("f stmt 1: phase-exclusive leaked onto an unannotated line")
	}
	if !ann.PhaseExclusive(stmtPos(gd, 0), gd) {
		t.Error("g: func-doc //redhip:phase-exclusive not recognised")
	}
}

func TestUnsafeOKLineAndFuncDoc(t *testing.T) {
	_, f, ann := parseSrc(t, verbSrc)
	hd := funcNamed(f, "h")
	if !ann.UnsafeOK(stmtPos(hd, 0), hd) {
		t.Error("h stmt 0: trailing //redhip:unsafe-ok not recognised")
	}
	// The func doc also carries unsafe-ok, so even the unannotated
	// statement is covered through the function-level escape hatch.
	if !ann.UnsafeOK(stmtPos(hd, 1), hd) {
		t.Error("h stmt 1: func-doc //redhip:unsafe-ok not recognised")
	}
	fd := funcNamed(f, "f")
	if ann.UnsafeOK(stmtPos(fd, 0), fd) {
		t.Error("f: unexpected unsafe-ok coverage")
	}
}

// Nested "//" inside a directive is trailing commentary, not part of
// the directive's arguments — a reason followed by a nested comment
// must still parse cleanly (field a of verbSrc exercises this too).
func TestNestedCommentaryStripped(t *testing.T) {
	src := "package q\n\nfunc f() {\n\tx := 1 //redhip:allow alloc // reviewed in PR 8\n\t_ = x\n}\n"
	_, f, ann := parseSrc(t, src)
	fd := funcNamed(f, "f")
	if !ann.AllowsAt(stmtPos(fd, 0), "alloc") {
		t.Error("allow with nested commentary not recognised")
	}
	if len(ann.Errors()) != 0 {
		t.Errorf("unexpected annotation errors: %v", ann.Errors())
	}
}

const badSrc = `package r

//redhip:hotpth
func a() {}

func b() {
	x1 := 1 //redhip:transient
	x2 := 2 //redhip:guardedby
	x3 := 3 //redhip:guardedby mu extra
	x4 := 4 //redhip:allow wallclok
	x5 := 5 //redhip:phase-exclusive
	x6 := 6 //redhip:unsafe-ok
	_, _, _, _, _, _ = x1, x2, x3, x4, x5, x6
}
`

func TestMalformedDirectivesAreErrors(t *testing.T) {
	_, _, ann := parseSrc(t, badSrc)
	errs := ann.Errors()
	if len(errs) != 7 {
		t.Fatalf("got %d annotation errors, want 7: %v", len(errs), errs)
	}
	for i, want := range []string{"hotpth", "transient", "guardedby", "guardedby", "wallclok", "phase-exclusive", "unsafe-ok"} {
		if !strings.Contains(errs[i].Message, want) {
			t.Errorf("error %d = %q, want mention of %q", i, errs[i].Message, want)
		}
	}
}

func TestUnsafePackagesAllowlist(t *testing.T) {
	for _, p := range []string{"redhip/internal/tracestore", "simstate"} {
		if !IsUnsafePackage(p) {
			t.Errorf("IsUnsafePackage(%q) = false, want true", p)
		}
	}
	for _, p := range []string{"redhip/internal/sim", "serve", "redhip/internal/core"} {
		if IsUnsafePackage(p) {
			t.Errorf("IsUnsafePackage(%q) = true, want false", p)
		}
	}
}

func TestSnapshotTypesRegistrySane(t *testing.T) {
	if len(SnapshotTypes) == 0 {
		t.Fatal("SnapshotTypes registry is empty")
	}
	for pkg, codecs := range SnapshotTypes {
		if len(codecs) == 0 {
			t.Errorf("package %q registers no snapshot codecs", pkg)
		}
		for _, c := range codecs {
			if c.Type == "" || len(c.Methods) < 2 {
				t.Errorf("package %q has a codec without capture+restore methods: %+v", pkg, c)
			}
			for _, m := range c.Methods {
				if m == "" {
					t.Errorf("package %q codec %s has an empty method name", pkg, c.Type)
				}
			}
		}
	}
}
