// Package tracestore is an unsafeaudit fixture for the allowlisted
// tier: unsafe is legal here, but every pointer-reinterpretation site
// still needs its //redhip:unsafe-ok justification.
package tracestore

import "unsafe"

// recSize is a compile-time constant; Sizeof has no aliasing power and
// needs no justification.
const recSize = unsafe.Sizeof(uint64(0))

// view reinterprets raw bytes as records with the reviewed waiver on
// the line above the site.
func view(b []byte) []uint64 {
	//redhip:unsafe-ok immutable mmap'd file, record layout pinned by recSize
	return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), len(b)/int(recSize))
}

// first reads the leading record; the waiver lives in the function's
// doc comment instead of on the line.
//
//redhip:unsafe-ok the mapping is page-aligned, so the first record is 8-byte aligned
func first(b []byte) uint64 {
	return *(*uint64)(unsafe.Pointer(&b[0]))
}

// bare has a reinterpretation site with no justification anywhere.
func bare(b []byte) *uint64 {
	return (*uint64)(unsafe.Pointer(&b[0])) // want `unsafe.Pointer reinterprets memory`
}
