// Package leaky is an unsafeaudit fixture outside the allowlist: the
// imports themselves are the findings (no annotation can waive them),
// and mmap-family syscalls are flagged per call site.
package leaky

import (
	"reflect" // want `import "reflect" outside the analysis.UnsafePackages allowlist`
	"syscall"
	"unsafe" // want `import "unsafe" outside the analysis.UnsafePackages allowlist`
)

// Kind leans on reflection the production tree bans here.
func Kind(v any) string { return reflect.TypeOf(v).Kind().String() }

// Raw launders a pointer; outside the allowlist the import finding
// already covers the file, so the site itself is not re-reported.
func Raw(p *int) unsafe.Pointer { return unsafe.Pointer(p) }

// MapFile maps a file into memory outside the allowlist.
func MapFile(fd int, n int) ([]byte, error) {
	return syscall.Mmap(fd, 0, n, syscall.PROT_READ, syscall.MAP_SHARED) // want `syscall.Mmap outside the analysis.UnsafePackages allowlist`
}
