// Package unsafeaudit implements the redhip-lint unsafeaudit
// analyzer: containment for the escape hatches the type system cannot
// see through. The policy has two tiers:
//
//   - Outside the analysis.UnsafePackages allowlist (the tracestore
//     disk tier and simstate), importing `unsafe` or `reflect`, or
//     calling an mmap-family syscall (Mmap, Munmap, Madvise, ...), is
//     a finding. There is no annotation that waives this — widening
//     the blast radius means editing the allowlist in analysis.go,
//     which is a reviewed, documented change.
//   - Inside the allowlist, every pointer-reinterpretation site —
//     unsafe.Pointer conversions, unsafe.Slice/SliceData,
//     unsafe.String/StringData, unsafe.Add — must carry a
//     //redhip:unsafe-ok <reason> justification on the line or the
//     enclosing function's doc comment. unsafe.Sizeof/Alignof/Offsetof
//     are compile-time constants with no aliasing power and are
//     exempt.
package unsafeaudit

import (
	"go/ast"
	"go/types"
	"strconv"

	"redhip/internal/analysis"
)

// Analyzer is the unsafeaudit pass.
var Analyzer = &analysis.Analyzer{
	Name: "unsafeaudit",
	Doc: "restrict unsafe/reflect/mmap to the analysis.UnsafePackages allowlist and " +
		"require //redhip:unsafe-ok on every pointer-reinterpretation site",
	Run: run,
}

// pointerOps are the unsafe package members that create or move
// through raw pointers. Sizeof/Alignof/Offsetof are absent on
// purpose: they are untyped constants, not aliasing operations.
var pointerOps = map[string]bool{
	"Pointer":    true,
	"Slice":      true,
	"SliceData":  true,
	"String":     true,
	"StringData": true,
	"Add":        true,
}

// mmapFuncs are the mmap-family syscalls whose misuse outside the
// allowlist can alias arbitrary memory into the process.
var mmapFuncs = map[string]bool{
	"Mmap":     true,
	"Munmap":   true,
	"Madvise":  true,
	"Mlock":    true,
	"Munlock":  true,
	"Mprotect": true,
	"Msync":    true,
}

func run(pass *analysis.Pass) error {
	allowed := analysis.IsUnsafePackage(pass.Pkg.Path())
	for _, file := range pass.Files {
		if !allowed {
			for _, imp := range file.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if path == "unsafe" || path == "reflect" {
					pass.Reportf(imp.Pos(),
						"import %q outside the analysis.UnsafePackages allowlist (tracestore, simstate); widen the allowlist only via a reviewed analysis.go change",
						path)
				}
			}
		}
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if fd.Body != nil {
					checkNode(pass, allowed, fd, fd.Body)
				}
				continue
			}
			checkNode(pass, allowed, nil, d)
		}
	}
	return nil
}

// checkNode walks one declaration (or body) flagging unsafe pointer
// ops and mmap syscalls; decl is the enclosing function, nil at
// package level.
func checkNode(pass *analysis.Pass, allowed bool, decl *ast.FuncDecl, root ast.Node) {
	ast.Inspect(root, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkg, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
		if !ok {
			return true
		}
		switch pkg.Imported().Path() {
		case "unsafe":
			// Outside the allowlist the import finding already covers
			// the file; per-site findings would only repeat it.
			if allowed && pointerOps[sel.Sel.Name] && !pass.Ann.UnsafeOK(sel.Pos(), decl) {
				pass.Reportf(sel.Pos(),
					"unsafe.%s reinterprets memory; justify the site with //redhip:unsafe-ok <reason>",
					sel.Sel.Name)
			}
		case "syscall", "golang.org/x/sys/unix":
			if !allowed && mmapFuncs[sel.Sel.Name] {
				pass.Reportf(sel.Pos(),
					"%s.%s outside the analysis.UnsafePackages allowlist (tracestore, simstate)",
					pkg.Name(), sel.Sel.Name)
			}
		}
		return true
	})
}
