package unsafeaudit_test

import (
	"testing"

	"redhip/internal/analysis/analysistest"
	"redhip/internal/analysis/unsafeaudit"
)

func TestUnsafeAudit(t *testing.T) {
	analysistest.Run(t, "testdata", unsafeaudit.Analyzer, "tracestore", "leaky")
}
