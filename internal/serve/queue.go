package serve

import (
	"errors"
	"sync"
)

// Admission errors. Handlers map ErrQueueFull to 429 + Retry-After and
// ErrShuttingDown to 503.
var (
	ErrQueueFull    = errors.New("serve: job queue full")
	ErrShuttingDown = errors.New("serve: shutting down")
)

// jobQueue is a bounded FIFO of admitted-but-not-started jobs. It is a
// mutex+slice deque rather than a channel so that cancelling a queued
// job removes it immediately — the freed slot admits the next
// submission without waiting for a worker to pop and discard a corpse.
type jobQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []*Job //redhip:guardedby mu
	max    int
	closed bool //redhip:guardedby mu
}

func newJobQueue(max int) *jobQueue {
	q := &jobQueue{max: max}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push admits a job or reports why it cannot.
func (q *jobQueue) push(j *Job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrShuttingDown
	}
	if len(q.items) >= q.max {
		return ErrQueueFull
	}
	q.items = append(q.items, j)
	q.cond.Signal()
	return nil
}

// pop blocks until a job is available or the queue is closed; ok is
// false only on close-and-empty (workers exit then).
func (q *jobQueue) pop() (j *Job, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return nil, false
	}
	j = q.items[0]
	// Shift rather than reslice so the backing array never pins
	// completed jobs.
	copy(q.items, q.items[1:])
	q.items[len(q.items)-1] = nil
	q.items = q.items[:len(q.items)-1]
	return j, true
}

// remove deletes a specific queued job, freeing its slot. It reports
// whether the job was found (false when a worker popped it first).
func (q *jobQueue) remove(j *Job) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for i, it := range q.items {
		if it == j {
			copy(q.items[i:], q.items[i+1:])
			q.items[len(q.items)-1] = nil
			q.items = q.items[:len(q.items)-1]
			return true
		}
	}
	return false
}

// close stops admissions, wakes all waiting workers and returns the
// jobs still queued (the caller cancels them).
func (q *jobQueue) close() []*Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil
	}
	q.closed = true
	drained := q.items
	q.items = nil
	q.cond.Broadcast()
	return drained
}

// depth returns the number of queued jobs.
func (q *jobQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}
