package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"redhip/internal/experiment"
	"redhip/internal/sim"
	"redhip/internal/tracestore"
)

// Options configure a Server. Zero values pick production-lean
// defaults.
type Options struct {
	// Workers is the number of concurrent job executors (default:
	// GOMAXPROCS, min 1).
	Workers int
	// QueueDepth bounds admitted-but-not-started jobs (default 64).
	// A full queue rejects with 429 + Retry-After.
	QueueDepth int
	// TraceCacheBytes bounds the process-wide materialise-once trace
	// store shared by every job (default tracestore.DefaultBudgetBytes).
	TraceCacheBytes uint64
	// MaxStoredJobs bounds resident terminal jobs — the LRU result
	// cache dedup hits resolve against (default 1024).
	MaxStoredJobs int
	// DefaultTimeout bounds a job's execution when its spec does not
	// (default 5m). MaxTimeout caps spec-requested timeouts (default
	// 30m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// RunnerParallelism is each job's simulation parallelism
	// (experiment.Options.Parallelism; default 1 so N workers mean ~N
	// busy cores, not N*GOMAXPROCS).
	RunnerParallelism int
}

func (o *Options) fill() error {
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Workers < 1 {
		return fmt.Errorf("serve: Workers must be >= 1, got %d", o.Workers)
	}
	if o.QueueDepth == 0 {
		o.QueueDepth = 64
	}
	if o.QueueDepth < 1 {
		return fmt.Errorf("serve: QueueDepth must be >= 1, got %d", o.QueueDepth)
	}
	if o.MaxStoredJobs == 0 {
		o.MaxStoredJobs = 1024
	}
	if o.MaxStoredJobs < 1 {
		return fmt.Errorf("serve: MaxStoredJobs must be >= 1, got %d", o.MaxStoredJobs)
	}
	if o.DefaultTimeout == 0 {
		o.DefaultTimeout = 5 * time.Minute
	}
	if o.MaxTimeout == 0 {
		o.MaxTimeout = 30 * time.Minute
	}
	if o.RunnerParallelism == 0 {
		o.RunnerParallelism = 1
	}
	if o.RunnerParallelism < 1 {
		return fmt.Errorf("serve: RunnerParallelism must be >= 1, got %d", o.RunnerParallelism)
	}
	return nil
}

// Server is the redhip-serve core: admission, execution, status, SSE
// and metrics, independent of the listener (cmd/redhip-serve binds it
// to an http.Server; tests drive Handler directly).
type Server struct {
	opts     Options
	queue    *jobQueue
	store    *jobStore
	traces   *tracestore.Store
	metrics  *metrics
	mux      *http.ServeMux
	inflight atomic.Int64
	stopping atomic.Bool
	baseCtx  context.Context
	baseStop context.CancelFunc
	workerWG sync.WaitGroup

	// testHookJobStart, when non-nil, runs in the worker goroutine
	// after a job transitions to running and before its runner starts —
	// tests use it to hold a worker busy deterministically.
	testHookJobStart func(*Job)
}

// New builds a Server and starts its worker pool.
func New(opts Options) (*Server, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	ctx, stop := context.WithCancel(context.Background())
	s := &Server{
		opts:     opts,
		queue:    newJobQueue(opts.QueueDepth),
		store:    newJobStore(opts.MaxStoredJobs),
		traces:   tracestore.New(opts.TraceCacheBytes),
		metrics:  newMetrics(),
		mux:      http.NewServeMux(),
		baseCtx:  ctx,
		baseStop: stop,
	}
	s.routes()
	s.workerWG.Add(opts.Workers)
	for i := 0; i < opts.Workers; i++ {
		go s.worker()
	}
	return s, nil
}

// Handler returns the HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
}

// Shutdown drains the server: new submissions are rejected, queued
// jobs are cancelled, and in-flight jobs run to completion (or until
// ctx expires, at which point their contexts are cancelled and the
// drain continues until they notice). It does not touch any listener —
// callers shut their http.Server down after this returns.
func (s *Server) Shutdown(ctx context.Context) error {
	s.stopping.Store(true)
	for _, j := range s.queue.close() {
		if j.finish(StateCancelled, "server shutting down", nil, time.Now()) {
			s.store.release(j)
			s.metrics.jobFinished(StateCancelled)
		}
	}
	done := make(chan struct{})
	go func() {
		s.workerWG.Wait()
		close(done)
	}()
	for {
		select {
		case <-done:
			return nil
		case <-ctx.Done():
			// Deadline: cancel in-flight job contexts and keep
			// draining — workers exit as soon as their runner
			// returns.
			s.baseStop()
			<-done
			return ctx.Err()
		}
	}
}

// --- workers -------------------------------------------------------------------

func (s *Server) worker() {
	defer s.workerWG.Done()
	for {
		j, ok := s.queue.pop()
		if !ok {
			return
		}
		s.runJob(j)
	}
}

// runJob executes one job end to end: running-state transition, runner
// construction against the shared trace store, per-run progress events,
// terminal state.
func (s *Server) runJob(j *Job) {
	timeout := s.opts.DefaultTimeout
	if t := j.Spec.TimeoutSeconds; t > 0 {
		timeout = time.Duration(t * float64(time.Second))
		if timeout > s.opts.MaxTimeout {
			timeout = s.opts.MaxTimeout
		}
	}
	ctx, cancel := context.WithTimeout(s.baseCtx, timeout)
	defer cancel()
	if !j.start(cancel, time.Now()) {
		// Cancelled while queued and popped before the DELETE could
		// remove it from the queue: finish the cancellation here.
		if j.finish(StateCancelled, "cancelled while queued", nil, time.Now()) {
			s.store.release(j)
			s.metrics.jobFinished(StateCancelled)
		}
		return
	}
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	if s.testHookJobStart != nil {
		s.testHookJobStart(j)
	}

	results, err := s.execute(ctx, j)
	now := time.Now()
	var won bool
	switch {
	case err == nil:
		won = j.finish(StateDone, "", results, now)
	case errors.Is(err, context.Canceled):
		won = j.finish(StateCancelled, "cancelled", nil, now)
	case errors.Is(err, context.DeadlineExceeded):
		won = j.finish(StateFailed, fmt.Sprintf("timeout after %s", timeout), nil, now)
	default:
		won = j.finish(StateFailed, err.Error(), nil, now)
	}
	if won {
		if st := j.stateNow(); st != StateDone {
			// Only successful jobs stay resolvable by key: a retryable
			// failure must not be served from cache forever.
			s.store.release(j)
		}
		s.metrics.jobFinished(j.stateNow())
	}
}

// execute runs the job's full sweep through one experiment.Runner. The
// runner's OnRun hook forwards per-run completions to the job's event
// stream and the latency histograms.
func (s *Server) execute(ctx context.Context, j *Job) ([]*sim.Result, error) {
	spec := j.Spec
	base, err := spec.configForScheme(spec.Schemes[0])
	if err != nil {
		return nil, err
	}
	schemes := make([]sim.Scheme, len(spec.Schemes))
	for i, name := range spec.Schemes {
		if schemes[i], err = parseScheme(name); err != nil {
			return nil, err
		}
	}
	runner, err := experiment.NewRunner(experiment.Options{
		Base:        base,
		Seed:        spec.Seed,
		Workloads:   spec.Workloads,
		Parallelism: s.opts.RunnerParallelism,
		Context:     ctx,
		TraceCache:  s.traces,
		OnRun: func(u experiment.RunUpdate) {
			p := progressData{Workload: u.Workload, Scheme: u.Scheme.String()}
			if u.Err != nil {
				p.Error = u.Err.Error()
			} else {
				p.Refs = u.Result.Refs
				p.Cycles = u.Result.Cycles
				p.WallMS = float64(u.Result.Perf.WallNanos) / 1e6
				s.metrics.observeRun(u.Scheme.String(), float64(u.Result.Perf.WallNanos)/1e9)
			}
			j.progress(p)
		},
	})
	if err != nil {
		return nil, err
	}
	s.metrics.inc(&s.metrics.runnerStarts)

	results := make([]*sim.Result, 0, spec.runs())
	for _, wl := range spec.Workloads {
		res, err := runner.SchemeSweep(wl, schemes)
		if err != nil {
			return nil, err
		}
		results = append(results, res...)
	}
	return results, nil
}

// --- handlers ------------------------------------------------------------------

type submitResponse struct {
	ID    string `json:"id"`
	Key   string `json:"key"`
	State State  `json:"state"`
	// Deduped is true when this submission attached to an existing job
	// instead of creating one.
	Deduped bool   `json:"deduped"`
	Status  string `json:"status_url"`
	Events  string `json:"events_url"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.stopping.Load() {
		s.metrics.inc(&s.metrics.rejectedShutdown)
		httpError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	var spec Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("invalid job spec: %v", err))
		return
	}
	norm, err := spec.normalize()
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}

	j, created := s.store.resolve(norm, time.Now())
	if created {
		if err := s.queue.push(j); err != nil {
			// Admission failed: unwind the registration so the spec can
			// be resubmitted later.
			j.finish(StateCancelled, "not admitted: "+err.Error(), nil, time.Now())
			s.store.release(j)
			if errors.Is(err, ErrShuttingDown) {
				s.metrics.inc(&s.metrics.rejectedShutdown)
				httpError(w, http.StatusServiceUnavailable, "server is shutting down")
				return
			}
			s.metrics.inc(&s.metrics.rejectedFull)
			w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
			httpError(w, http.StatusTooManyRequests, "job queue full")
			return
		}
	} else {
		s.metrics.inc(&s.metrics.deduped)
	}
	s.metrics.inc(&s.metrics.submitted)

	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Location", "/v1/jobs/"+j.ID)
	w.WriteHeader(http.StatusAccepted)
	writeJSON(w, submitResponse{
		ID:      j.ID,
		Key:     j.Key,
		State:   j.stateNow(),
		Deduped: !created,
		Status:  "/v1/jobs/" + j.ID,
		Events:  "/v1/jobs/" + j.ID + "/events",
	})
}

// retryAfterSeconds estimates how long until a queue slot frees:
// queued work divided by worker throughput, from the observed mean
// run latency. Clamped to [1, 60].
func (s *Server) retryAfterSeconds() int {
	avg := s.metrics.avgRunSeconds()
	if avg == 0 {
		return 1
	}
	depth := float64(s.queue.depth() + 1)
	est := math.Ceil(depth * avg / float64(s.opts.Workers))
	if est < 1 {
		return 1
	}
	if est > 60 {
		return 60
	}
	return int(est)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j := s.store.get(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	withResults := r.URL.Query().Get("results") != "false"
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, j.snapshot(withResults))
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.store.list()
	out := make([]Status, len(jobs))
	for i, j := range jobs {
		out[i] = j.snapshot(false)
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, out)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.store.get(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	wasQueued, _ := j.requestCancel()
	if wasQueued && s.queue.remove(j) {
		// The slot is free the moment remove returns; the state flip
		// below is bookkeeping.
		if j.finish(StateCancelled, "cancelled while queued", nil, time.Now()) {
			s.store.release(j)
			s.metrics.jobFinished(StateCancelled)
		}
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, j.snapshot(false))
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.store.get(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	replay, live, unsub := j.subscribe()
	defer unsub()
	for _, ev := range replay {
		writeSSE(w, ev)
	}
	fl.Flush()
	for {
		select {
		case ev, ok := <-live:
			if !ok {
				return // terminal event delivered (or subscriber dropped)
			}
			writeSSE(w, ev)
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// writeSSE renders one event in text/event-stream framing.
func writeSSE(w http.ResponseWriter, ev Event) {
	fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.ID, ev.Type, ev.Data)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	g := gauges{
		QueueDepth: s.queue.depth(),
		InFlight:   int(s.inflight.Load()),
		StoredJobs: s.store.size(),
	}
	s.metrics.writeProm(w, g, s.traces.Stats(), true)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.stopping.Load() {
		httpError(w, http.StatusServiceUnavailable, "shutting down")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// --- small helpers -------------------------------------------------------------

type errorBody struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	writeJSON(w, errorBody{Error: msg})
}

func writeJSON(w http.ResponseWriter, v any) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // client gone is the only failure; nothing to do
}
