package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"redhip/internal/experiment"
	"redhip/internal/faultinject"
	"redhip/internal/sim"
	"redhip/internal/simstate"
	"redhip/internal/tracestore"
	"redhip/internal/version"
)

// Options configure a Server. Zero values pick production-lean
// defaults.
type Options struct {
	// Workers is the number of concurrent job executors (default:
	// GOMAXPROCS, min 1).
	Workers int
	// QueueDepth bounds admitted-but-not-started jobs (default 64).
	// A full queue rejects with 429 + Retry-After.
	QueueDepth int
	// TraceCacheBytes bounds the process-wide materialise-once trace
	// store shared by every job (default tracestore.DefaultBudgetBytes).
	TraceCacheBytes uint64
	// TraceDir, when set, enables the trace store's mmap-backed disk
	// tier: streams evicted from RAM spill to an unlinked temp file in
	// this directory and replay zero-copy instead of regenerating.
	TraceDir string
	// TraceDiskBudgetBytes bounds the disk tier (default
	// tracestore.DefaultDiskBudgetBytes). Requires TraceDir.
	TraceDiskBudgetBytes uint64
	// SnapshotCacheBytes, when > 0, enables the process-wide warm-state
	// snapshot store: jobs with a warmup window warm each (config,
	// workload, seed) lineage once and branch measure runs from the
	// stored blob bit-identically.
	SnapshotCacheBytes uint64
	// MaxStoredJobs bounds resident terminal jobs — the LRU result
	// cache dedup hits resolve against (default 1024).
	MaxStoredJobs int
	// MaxStoredSweeps bounds resident terminal sweeps (default 64).
	MaxStoredSweeps int
	// MaxSweepChildren caps the expanded size of one sweep grid
	// (default 10000). A grid that expands past it is rejected with 400
	// at admission.
	MaxSweepChildren int
	// DefaultTimeout bounds a job's execution when its spec does not
	// (default 5m). MaxTimeout caps spec-requested timeouts (default
	// 30m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// RunnerParallelism is each job's simulation parallelism
	// (experiment.Options.Parallelism; default 1 so N workers mean ~N
	// busy cores, not N*GOMAXPROCS).
	RunnerParallelism int
	// IntraParallelism is each single-pass multi-scheme simulation's
	// internal worker count (experiment.Options.IntraParallelism).
	// Default 0 = auto: GOMAXPROCS divided across Workers x
	// RunnerParallelism, floor 1, so the three layers combined never
	// oversubscribe the machine. Negative is a configuration error.
	IntraParallelism int
	// RetryMaxAttempts caps any spec's retry.max_attempts (default 5;
	// -1 disables retries server-wide).
	RetryMaxAttempts int
	// BreakerThreshold is the consecutive run failures under one scheme
	// that open its circuit (default 5; -1 disables the breaker).
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit sheds before
	// half-opening (default 30s).
	BreakerCooldown time.Duration
	// MemoryBudgetBytes bounds the aggregate estimated trace footprint
	// of admitted jobs (default 1 GiB; -1 disables load shedding).
	MemoryBudgetBytes int64
	// Fault, when non-nil, overrides the process-global injector for
	// this server's injection points (serve.admit, serve.worker,
	// serve.sse) and its runners' experiment.run point. Inert unless
	// built with -tags faultinject.
	Fault *faultinject.Injector
	// RouterURL, when set, runs this instance as a cluster replica: it
	// registers with the redhip-router at this base URL and keeps
	// re-registering (registration is idempotent), and it arms the
	// router-lease watchdog — see internal/serve/cluster.go.
	RouterURL string
	// AdvertiseURL is the base URL the router should reach this replica
	// at. Required when RouterURL is set.
	AdvertiseURL string
	// ReplicaName identifies this replica in the ring (default:
	// AdvertiseURL). Ring placement hashes member names, so a restarted
	// replica keeping its name keeps its key ranges.
	ReplicaName string
	// LeaseTimeout is how long the replica runs without seeing a router
	// health probe before fencing itself — cancelling all non-terminal
	// jobs, because the router has likely declared it dead and re-homed
	// them. It must stay below the router's dead-declaration floor
	// (FailThreshold x 0.75 x ProbeInterval) or fencing cannot prevent
	// split-brain double execution. 0 = auto: start at 2s (below the
	// router defaults' 2.25s floor) and re-derive 3/4 of the floor the
	// router advertises in its registration ack. An explicit value is
	// honoured as-is, with a logged warning if it is not below the
	// advertised floor.
	LeaseTimeout time.Duration

	// leaseAuto records that LeaseTimeout was left zero, letting the
	// registration loop re-derive the lease from the router's ack.
	leaseAuto bool
}

func (o *Options) fill() error {
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Workers < 1 {
		return fmt.Errorf("serve: Workers must be >= 1, got %d", o.Workers)
	}
	if o.QueueDepth == 0 {
		o.QueueDepth = 64
	}
	if o.QueueDepth < 1 {
		return fmt.Errorf("serve: QueueDepth must be >= 1, got %d", o.QueueDepth)
	}
	if o.MaxStoredJobs == 0 {
		o.MaxStoredJobs = 1024
	}
	if o.MaxStoredJobs < 1 {
		return fmt.Errorf("serve: MaxStoredJobs must be >= 1, got %d", o.MaxStoredJobs)
	}
	if o.MaxStoredSweeps == 0 {
		o.MaxStoredSweeps = 64
	}
	if o.MaxStoredSweeps < 1 {
		return fmt.Errorf("serve: MaxStoredSweeps must be >= 1, got %d", o.MaxStoredSweeps)
	}
	if o.MaxSweepChildren == 0 {
		o.MaxSweepChildren = 10000
	}
	if o.MaxSweepChildren < 1 {
		return fmt.Errorf("serve: MaxSweepChildren must be >= 1, got %d", o.MaxSweepChildren)
	}
	if o.DefaultTimeout == 0 {
		o.DefaultTimeout = 5 * time.Minute
	}
	if o.MaxTimeout == 0 {
		o.MaxTimeout = 30 * time.Minute
	}
	if o.RunnerParallelism == 0 {
		o.RunnerParallelism = 1
	}
	if o.RunnerParallelism < 1 {
		return fmt.Errorf("serve: RunnerParallelism must be >= 1, got %d", o.RunnerParallelism)
	}
	if o.IntraParallelism < 0 {
		return fmt.Errorf("serve: IntraParallelism must be >= 0 (0 = auto), got %d", o.IntraParallelism)
	}
	if o.IntraParallelism == 0 {
		// Auto: split the machine across the two outer layers so
		// Workers x RunnerParallelism x IntraParallelism <= GOMAXPROCS.
		o.IntraParallelism = runtime.GOMAXPROCS(0) / (o.Workers * o.RunnerParallelism)
		if o.IntraParallelism < 1 {
			o.IntraParallelism = 1
		}
	}
	if o.RetryMaxAttempts == 0 {
		o.RetryMaxAttempts = 5
	}
	if o.BreakerThreshold == 0 {
		o.BreakerThreshold = 5
	}
	if o.BreakerCooldown == 0 {
		o.BreakerCooldown = 30 * time.Second
	}
	if o.BreakerCooldown < 0 {
		return fmt.Errorf("serve: BreakerCooldown must be > 0, got %s", o.BreakerCooldown)
	}
	if o.MemoryBudgetBytes == 0 {
		o.MemoryBudgetBytes = 1 << 30
	}
	if o.TraceDiskBudgetBytes != 0 && o.TraceDir == "" {
		return fmt.Errorf("serve: TraceDiskBudgetBytes requires TraceDir")
	}
	if o.RouterURL != "" {
		if o.AdvertiseURL == "" {
			return fmt.Errorf("serve: RouterURL requires AdvertiseURL")
		}
		if o.ReplicaName == "" {
			o.ReplicaName = o.AdvertiseURL
		}
		if o.LeaseTimeout == 0 {
			o.leaseAuto = true
			o.LeaseTimeout = 2 * time.Second
		}
		if o.LeaseTimeout < 0 {
			return fmt.Errorf("serve: LeaseTimeout must be > 0, got %s", o.LeaseTimeout)
		}
	}
	return nil
}

// Server is the redhip-serve core: admission, execution, status, SSE
// and metrics, independent of the listener (cmd/redhip-serve binds it
// to an http.Server; tests drive Handler directly).
type Server struct {
	opts     Options
	queue    *jobQueue
	store    *jobStore
	sweeps   *sweepStore
	traces   *tracestore.Store
	snaps    *simstate.Store // nil when SnapshotCacheBytes == 0
	metrics  *metrics
	breaker  *breaker     // nil when BreakerThreshold < 0
	shed     *loadShedder // nil when MemoryBudgetBytes < 0
	mux      *http.ServeMux
	inflight atomic.Int64
	stopping atomic.Bool
	baseCtx  context.Context
	baseStop context.CancelFunc
	workerWG sync.WaitGroup
	sweepWG  sync.WaitGroup

	// Cluster-replica state (inert unless Options.RouterURL is set):
	// the register/watchdog goroutines and the router-lease clock.
	// lastProbe holds the unixnano of the last router probe seen on
	// /readyz; 0 means "no lease held" (never probed, or just fenced).
	// leaseNanos is the effective lease duration — Options.LeaseTimeout
	// until the router's registration ack tightens it (auto mode).
	lastProbe     atomic.Int64
	leaseNanos    atomic.Int64
	clusterCancel context.CancelFunc
	clusterWG     sync.WaitGroup

	// now is the server's clock; tests inject a scripted one to pin
	// Retry-After estimates and HTTP latency accounting.
	now func() time.Time

	// testHookJobStart, when non-nil, runs in the worker goroutine
	// after a job transitions to running and before its runner starts —
	// tests use it to hold a worker busy deterministically.
	testHookJobStart func(*Job)
}

// New builds a Server and starts its worker pool.
func New(opts Options) (*Server, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	traces, err := tracestore.NewWithConfig(tracestore.Config{
		BudgetBytes:     opts.TraceCacheBytes,
		DiskDir:         opts.TraceDir,
		DiskBudgetBytes: opts.TraceDiskBudgetBytes,
	})
	if err != nil {
		return nil, err
	}
	ctx, stop := context.WithCancel(context.Background())
	s := &Server{
		opts:     opts,
		queue:    newJobQueue(opts.QueueDepth),
		store:    newJobStore(opts.MaxStoredJobs),
		sweeps:   newSweepStore(opts.MaxStoredSweeps),
		traces:   traces,
		metrics:  newMetrics(),
		mux:      http.NewServeMux(),
		baseCtx:  ctx,
		baseStop: stop,
		now:      time.Now,
	}
	if opts.SnapshotCacheBytes > 0 {
		s.snaps = simstate.NewStore(opts.SnapshotCacheBytes)
	}
	if opts.BreakerThreshold > 0 {
		s.breaker = newBreaker(opts.BreakerThreshold, opts.BreakerCooldown)
	}
	if opts.MemoryBudgetBytes > 0 {
		s.shed = newLoadShedder(uint64(opts.MemoryBudgetBytes))
	}
	s.routes()
	s.workerWG.Add(opts.Workers)
	for i := 0; i < opts.Workers; i++ {
		go s.worker()
	}
	if opts.RouterURL != "" {
		s.startCluster()
	}
	return s, nil
}

// Handler returns the HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/jobs", s.instrument("jobs", s.handleSubmit))
	s.mux.HandleFunc("GET /v1/jobs", s.instrument("jobs", s.handleList))
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.instrument("job", s.handleGet))
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.instrument("job", s.handleCancel))
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.instrument("events", s.handleEvents))
	s.mux.HandleFunc("GET /v1/jobs/{id}/results", s.instrument("results", s.handleResults))
	s.mux.HandleFunc("POST /v1/sweeps", s.instrument("sweeps", s.handleSweepSubmit))
	s.mux.HandleFunc("GET /v1/sweeps", s.instrument("sweeps", s.handleSweepList))
	s.mux.HandleFunc("GET /v1/sweeps/{id}", s.instrument("sweep", s.handleSweepGet))
	s.mux.HandleFunc("DELETE /v1/sweeps/{id}", s.instrument("sweep", s.handleSweepCancel))
	s.mux.HandleFunc("GET /v1/sweeps/{id}/events", s.instrument("sweep_events", s.handleSweepEvents))
	s.mux.HandleFunc("GET /v1/sweeps/{id}/artifacts", s.instrument("sweep", s.handleSweepArtifacts))
	s.mux.HandleFunc("GET /metrics", s.instrument("metrics", s.handleMetrics))
	s.mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /readyz", s.instrument("readyz", s.handleReadyz))
}

// instrument wraps a handler with per-endpoint HTTP metrics: request
// latency (for SSE endpoints, the stream lifetime), status-code
// counters, and the live in-flight gauge. The wrapper preserves
// http.Flusher so SSE streaming keeps working through it.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := s.now()
		s.metrics.httpStart(endpoint)
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		code := sw.code
		if code == 0 {
			code = http.StatusOK // handler wrote nothing: implicit 200
		}
		s.metrics.httpDone(endpoint, code, s.now().Sub(start).Seconds())
	}
}

// statusWriter records the first status code written so the middleware
// can label its counters. It forwards Flush to the underlying writer,
// keeping SSE handlers streaming.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// fire evaluates a serve-layer injection point against the configured
// injector (Options.Fault, else the process-global one). Call sites
// guard on faultinject.Enabled so production builds pay nothing.
func (s *Server) fire(point string) error {
	in := s.opts.Fault
	if in == nil {
		in = faultinject.Active()
	}
	return in.Point(point)
}

// finalize applies a job's terminal transition exactly once: the
// terminal event (with the dedup key released in the same store-lock
// hold for non-reusable outcomes), the shed reservation release, and
// the terminal-state counter. It reports whether this call won the
// transition.
func (s *Server) finalize(j *Job, state State, errMsg string, results []*sim.Result, now time.Time) bool {
	var won bool
	if state == StateDone {
		won = j.finish(state, errMsg, results, now)
	} else {
		won = s.store.finishRelease(j, state, errMsg, now)
	}
	if won {
		s.shed.release(j.estBytes)
		s.metrics.jobFinished(state)
		if state == StateDone {
			// One completed local execution: the dedup store runs each
			// key's sweep once, so summing this counter across a cluster's
			// replicas equals the number of unique specs executed — the
			// failover drill's no-double-execution invariant. Cancelled
			// and failed runs do not count: they produced no results.
			s.metrics.inc(&s.metrics.executionsDone)
		}
	}
	return won
}

// Shutdown drains the server: new submissions are rejected, queued
// jobs are cancelled, and in-flight jobs run to completion (or until
// ctx expires, at which point their contexts are cancelled and the
// drain continues until they notice). It does not touch any listener —
// callers shut their http.Server down after this returns.
func (s *Server) Shutdown(ctx context.Context) error {
	s.stopping.Store(true)
	if s.clusterCancel != nil {
		// Stop re-registering and fencing first: a drain is deliberate,
		// not a lost lease.
		s.clusterCancel()
		s.clusterWG.Wait()
	}
	// Cancel active sweep orchestrators first: their pending submissions
	// stop, and their already-queued children fall to queue.close below.
	for _, sw := range s.sweeps.list() {
		sw.requestCancel()
	}
	for _, j := range s.queue.close() {
		s.finalize(j, StateCancelled, "server shutting down", nil, time.Now())
	}
	done := make(chan struct{})
	go func() {
		s.workerWG.Wait()
		s.sweepWG.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		// Deadline: cancel in-flight job contexts and keep
		// draining — workers exit as soon as their runner
		// returns.
		s.baseStop()
		<-done
		err = ctx.Err()
	}
	// Workers are drained, so no runner is replaying from the disk
	// tier; release the spill file. (Mappings pinned by still-resident
	// Materialized blocks stay readable until they are collected.)
	_ = s.traces.Close()
	return err
}

// --- workers -------------------------------------------------------------------

func (s *Server) worker() {
	defer s.workerWG.Done()
	for {
		j, ok := s.queue.pop()
		if !ok {
			return
		}
		s.safeRunJob(j)
	}
}

// safeRunJob is the worker's last-resort panic barrier: whatever
// escapes runJob (test hooks included) fails the job cleanly — stack
// in the event log, dedup key released, shed reservation returned —
// instead of killing the worker goroutine and leaking its slot
// forever.
func (s *Server) safeRunJob(j *Job) {
	defer func() {
		if v := recover(); v != nil {
			s.metrics.inc(&s.metrics.workerPanics)
			j.publishPanic(v, debug.Stack())
			s.finalize(j, StateFailed, fmt.Sprintf("worker panicked: %v", v), nil, time.Now())
		}
	}()
	s.runJob(j)
}

// maxAttempts resolves a spec's execution budget against the server
// cap.
func (s *Server) maxAttempts(spec Spec) int {
	if spec.Retry == nil || s.opts.RetryMaxAttempts < 0 {
		return 1
	}
	n := spec.Retry.MaxAttempts
	if n > s.opts.RetryMaxAttempts {
		n = s.opts.RetryMaxAttempts
	}
	if n < 1 {
		n = 1
	}
	return n
}

// retryable reports whether a failed attempt is worth re-executing:
// cancellations and timeouts are deliberate or budget-bound, anything
// else could be transient (an evicted trace, an injected fault, a
// recovered panic).
func retryable(err error) bool {
	return !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
}

// backoffDelay is the wait before re-executing after failed attempt n
// (1-based): exponential from the policy's base, capped, scaled by a
// deterministic jitter factor in [0.5, 1.0) derived from the job key —
// replaying a chaos schedule replays the exact backoff sequence.
func backoffDelay(p *RetryPolicy, key string, attempt int) time.Duration {
	base, limit := 100.0, 5000.0
	if p != nil {
		base, limit = float64(p.BackoffMS), float64(p.MaxBackoffMS)
	}
	d := base * math.Pow(2, float64(attempt-1))
	if d > limit {
		d = limit
	}
	return time.Duration(d * retryJitter(key, attempt) * float64(time.Millisecond))
}

// retryJitter hashes (key, attempt) through FNV-1a and a splitmix64
// finaliser into [0.5, 1.0).
func retryJitter(key string, attempt int) float64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	z := h ^ uint64(attempt)
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return 0.5 + float64(z>>11)/float64(1<<53)*0.5
}

// runJob executes one job end to end: running-state transition, the
// bounded retry loop around executeAttempt, terminal state via
// finalize.
func (s *Server) runJob(j *Job) {
	timeout := s.opts.DefaultTimeout
	if t := j.Spec.TimeoutSeconds; t > 0 {
		timeout = time.Duration(t * float64(time.Second))
		if timeout > s.opts.MaxTimeout {
			timeout = s.opts.MaxTimeout
		}
	}
	ctx, cancel := context.WithTimeout(s.baseCtx, timeout)
	defer cancel()
	if !j.start(cancel, time.Now()) {
		// Cancelled while queued and popped before the DELETE could
		// remove it from the queue: finish the cancellation here.
		s.finalize(j, StateCancelled, "cancelled while queued", nil, time.Now())
		return
	}
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	if s.testHookJobStart != nil {
		s.testHookJobStart(j)
	}

	attempts := s.maxAttempts(j.Spec)
	var results []*sim.Result
	var err error
	for attempt := 1; ; attempt++ {
		j.noteAttempt()
		results, err = s.executeAttempt(ctx, j)
		if err == nil || attempt >= attempts || !retryable(err) {
			break
		}
		delay := backoffDelay(j.Spec.Retry, j.Key, attempt)
		s.metrics.inc(&s.metrics.retries)
		j.publishRetry(attempt, attempts, delay, err)
		select {
		case <-time.After(delay):
		case <-ctx.Done():
		}
		if cerr := ctx.Err(); cerr != nil {
			err = cerr
			break
		}
	}

	now := time.Now()
	switch {
	case err == nil:
		s.finalize(j, StateDone, "", results, now)
	case errors.Is(err, context.Canceled):
		s.finalize(j, StateCancelled, "cancelled", nil, now)
	case errors.Is(err, context.DeadlineExceeded):
		s.finalize(j, StateFailed, fmt.Sprintf("timeout after %s", timeout), nil, now)
	default:
		s.finalize(j, StateFailed, err.Error(), nil, now)
	}
}

// executeAttempt runs one attempt of the job's sweep behind a panic
// barrier: a panic inside the attempt (injected via the serve.worker
// point, or escaping the runner stack) becomes a retryable error whose
// stack lands in the event log. Runner-level panics arrive as
// *experiment.PanicError and get the same event treatment.
func (s *Server) executeAttempt(ctx context.Context, j *Job) (results []*sim.Result, err error) {
	defer func() {
		if v := recover(); v != nil {
			s.metrics.inc(&s.metrics.workerPanics)
			j.publishPanic(v, debug.Stack())
			results, err = nil, fmt.Errorf("run attempt panicked: %v", v)
		}
	}()
	if faultinject.Enabled {
		if ferr := s.fire(faultinject.PointServeWorker); ferr != nil {
			return nil, ferr
		}
	}
	results, err = s.execute(ctx, j)
	var pe *experiment.PanicError
	if errors.As(err, &pe) {
		s.metrics.inc(&s.metrics.workerPanics)
		j.publishPanic(pe.Value, pe.Stack)
	}
	return results, err
}

// execute runs the job's full sweep through one experiment.Runner. The
// runner's OnRun hook forwards per-run completions to the job's event
// stream and the latency histograms.
func (s *Server) execute(ctx context.Context, j *Job) ([]*sim.Result, error) {
	spec := j.Spec
	base, err := spec.configForScheme(spec.Schemes[0])
	if err != nil {
		return nil, err
	}
	schemes := make([]sim.Scheme, len(spec.Schemes))
	for i, name := range spec.Schemes {
		if schemes[i], err = parseScheme(name); err != nil {
			return nil, err
		}
	}
	runner, err := experiment.NewRunner(experiment.Options{
		Base:             base,
		Seed:             spec.Seed,
		Workloads:        spec.Workloads,
		Parallelism:      s.opts.RunnerParallelism,
		IntraParallelism: s.opts.IntraParallelism,
		Context:          ctx,
		TraceCache:       s.traces,
		SnapshotCache:    s.snaps,
		Fault:            s.opts.Fault,
		OnRun: func(u experiment.RunUpdate) {
			p := progressData{Workload: u.Workload, Scheme: u.Scheme.String()}
			if u.Err != nil {
				p.Error = u.Err.Error()
			} else {
				p.Refs = u.Result.Refs
				p.Cycles = u.Result.Cycles
				p.WallMS = float64(u.Result.Perf.WallNanos) / 1e6
				s.metrics.observeRun(u.Scheme.String(), float64(u.Result.Perf.WallNanos)/1e9)
			}
			// Cancellations and timeouts say nothing about the scheme's
			// health, so they do not feed its circuit.
			s.breaker.onRun(u.Scheme.String(), u.Err != nil && retryable(u.Err))
			j.progress(p)
		},
	})
	if err != nil {
		return nil, err
	}
	s.metrics.inc(&s.metrics.runnerStarts)

	results := make([]*sim.Result, 0, spec.runs())
	for _, wl := range spec.Workloads {
		res, err := runner.SchemeSweep(wl, schemes)
		if err != nil {
			return nil, err
		}
		results = append(results, res...)
	}
	return results, nil
}

// --- handlers ------------------------------------------------------------------

type submitResponse struct {
	ID    string `json:"id"`
	Key   string `json:"key"`
	State State  `json:"state"`
	// Deduped is true when this submission attached to an existing job
	// instead of creating one.
	Deduped bool   `json:"deduped"`
	Status  string `json:"status_url"`
	Events  string `json:"events_url"`
}

// admitFault wraps a serve.admit injected fault: a transient admission
// rejection (503 over HTTP, retried by sweep orchestrators).
type admitFault struct{ err error }

func (e *admitFault) Error() string { return e.err.Error() }

// admitSpec runs one normalised spec through the full admission path —
// shutdown gate, injected admission faults, dedup single-flight,
// breaker and memory-shed verdicts, and the bounded queue — and
// returns the resolved job. It is the single door both POST /v1/jobs
// and the sweep orchestrator go through, so every control applies to
// sweep fan-out exactly as it does to direct submissions. Errors are
// typed: ErrShuttingDown, *admitFault, *breakerOpenError, *shedError
// and ErrQueueFull; metrics for each verdict are recorded here.
func (s *Server) admitSpec(norm Spec) (j *Job, created bool, err error) {
	if s.stopping.Load() {
		s.metrics.inc(&s.metrics.rejectedShutdown)
		return nil, false, ErrShuttingDown
	}
	if faultinject.Enabled {
		if ferr := s.fire(faultinject.PointServeAdmit); ferr != nil {
			return nil, false, &admitFault{err: ferr}
		}
	}

	// Breaker and shed verdicts gate creation only (inside resolve's
	// lock, after the dedup check): attaching to existing work costs
	// nothing, so it is never shed.
	est := norm.estimateTraceBytes()
	j, created, err = s.store.resolve(norm, est, s.now(), func() error {
		if err := s.breaker.allow(norm.Schemes); err != nil {
			return err
		}
		return s.shed.reserve(est)
	})
	if err != nil {
		var boe *breakerOpenError
		var se *shedError
		switch {
		case errors.As(err, &boe):
			s.metrics.inc(&s.metrics.shedBreaker)
		case errors.As(err, &se):
			s.metrics.inc(&s.metrics.shedMemory)
		}
		return nil, false, err
	}
	if created {
		if err := s.queue.push(j); err != nil {
			// Admission failed: unwind the registration (key and shed
			// reservation included) so the spec can be resubmitted. Not
			// via finalize — a never-admitted job is a rejection, not a
			// cancellation, in the metrics.
			if s.store.finishRelease(j, StateCancelled, "not admitted: "+err.Error(), s.now()) {
				s.shed.release(j.estBytes)
			}
			if errors.Is(err, ErrShuttingDown) {
				s.metrics.inc(&s.metrics.rejectedShutdown)
			} else {
				s.metrics.inc(&s.metrics.rejectedFull)
			}
			return nil, false, err
		}
	} else {
		s.metrics.inc(&s.metrics.deduped)
	}
	s.metrics.inc(&s.metrics.submitted)
	return j, created, nil
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("invalid job spec: %v", err))
		return
	}
	norm, err := spec.normalize()
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}

	j, created, err := s.admitSpec(norm)
	if err != nil {
		var af *admitFault
		var boe *breakerOpenError
		var se *shedError
		switch {
		case errors.Is(err, ErrShuttingDown):
			httpError(w, http.StatusServiceUnavailable, "server is shutting down")
		case errors.As(err, &af):
			httpError(w, http.StatusServiceUnavailable, err.Error())
		case errors.As(err, &boe):
			w.Header().Set("Retry-After", strconv.Itoa(ceilSeconds(boe.RetryAfter)))
			httpError(w, http.StatusServiceUnavailable, err.Error())
		case errors.As(err, &se) && se.Permanent:
			// No budget this server ever frees will fit the job:
			// resubmitting is futile, so the verdict is a client error.
			httpError(w, http.StatusBadRequest, err.Error())
		case errors.As(err, &se):
			w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
			httpError(w, http.StatusServiceUnavailable, err.Error())
		case errors.Is(err, ErrQueueFull):
			w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
			httpError(w, http.StatusTooManyRequests, "job queue full")
		default:
			httpError(w, http.StatusInternalServerError, err.Error())
		}
		return
	}

	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Location", "/v1/jobs/"+j.ID)
	w.WriteHeader(http.StatusAccepted)
	writeJSON(w, submitResponse{
		ID:      j.ID,
		Key:     j.Key,
		State:   j.stateNow(),
		Deduped: !created,
		Status:  "/v1/jobs/" + j.ID,
		Events:  "/v1/jobs/" + j.ID + "/events",
	})
}

// retryAfterSeconds estimates how long until a queue slot frees. The
// pending work a new submission waits behind has two parts: every
// queued job costs a full mean run latency, and every in-flight run
// costs only its *remaining* latency — mean minus how long it has
// already been executing, floored at zero (a run that has exceeded the
// mean is assumed about to finish). The earlier queue-depth-only
// estimate ignored the in-flight remainder and answered "1" on an idle
// queue even when every worker had just started a multi-second run.
// Clamped to [1, 60].
func (s *Server) retryAfterSeconds() int {
	avg := s.metrics.avgRunSeconds()
	if avg == 0 {
		return 1
	}
	now := s.now()
	var remaining float64
	for _, started := range s.store.runningStarts() {
		r := avg - now.Sub(started).Seconds()
		if r < 0 {
			r = 0
		} else if r > avg {
			r = avg
		}
		remaining += r
	}
	queued := float64(s.queue.depth()+1) * avg
	est := math.Ceil((queued + remaining) / float64(s.opts.Workers))
	if est < 1 {
		return 1
	}
	if est > 60 {
		return 60
	}
	return int(est)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j := s.store.get(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	withResults := r.URL.Query().Get("results") != "false"
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, j.snapshot(withResults))
}

// handleResults answers GET /v1/jobs/{id}/results: the bare result
// array of a done job, nothing else. The cluster router caches these
// bytes and re-serves them verbatim, so a client comparing results
// across replicas (the failover drill's bit-identity check) diffs this
// endpoint's output directly. 409 before the job is done — an absent
// result and an empty result must not look alike.
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	j := s.store.get(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	st := j.snapshot(true)
	if st.State != StateDone {
		httpError(w, http.StatusConflict, fmt.Sprintf("job is %s, results exist only for done jobs", st.State))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, st.Results)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.store.list()
	out := make([]Status, len(jobs))
	for i, j := range jobs {
		out[i] = j.snapshot(false)
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, out)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.store.get(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	wasQueued, _ := j.requestCancel()
	if wasQueued && s.queue.remove(j) {
		// The slot is free the moment remove returns; the state flip
		// below is bookkeeping.
		s.finalize(j, StateCancelled, "cancelled while queued", nil, time.Now())
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, j.snapshot(false))
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.store.get(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	if faultinject.Enabled {
		if ferr := s.fire(faultinject.PointServeSSE); ferr != nil {
			httpError(w, http.StatusServiceUnavailable, ferr.Error())
			return
		}
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	replay, live, unsub := j.subscribe()
	defer unsub()
	for _, ev := range replay {
		writeSSE(w, ev)
	}
	fl.Flush()
	for {
		select {
		case ev, ok := <-live:
			if !ok {
				return // terminal event delivered (or subscriber dropped)
			}
			writeSSE(w, ev)
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// writeSSE renders one event in text/event-stream framing.
func writeSSE(w http.ResponseWriter, ev Event) {
	fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.ID, ev.Type, ev.Data)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	reserved, budget := s.shed.usage()
	stored, active := s.sweeps.sizes()
	g := gauges{
		QueueDepth:     s.queue.depth(),
		InFlight:       int(s.inflight.Load()),
		StoredJobs:     s.store.size(),
		StoredSweeps:   stored,
		ActiveSweeps:   active,
		BreakerOpen:    len(s.breaker.openSchemes()),
		BreakerTrips:   s.breaker.tripCount(),
		MemoryReserved: reserved,
		MemoryBudget:   budget,
		Ready:          s.readiness().Ready,
	}
	var ss simstate.StoreStats
	if s.snaps != nil {
		ss = s.snaps.Stats()
	}
	s.metrics.writeProm(w, g, s.traces.Stats(), true, ss, s.snaps != nil)
}

// healthResponse is the JSON body of GET /healthz.
type healthResponse struct {
	Status  string `json:"status"`
	Version string `json:"version"`
}

// handleHealthz is the liveness probe: 200 as long as the process can
// serve HTTP at all, shutdown drain included — restarting a draining
// process loses in-flight work for no gain. Whether the instance
// should receive NEW traffic is /readyz's question. The payload names
// the build (module version + VCS revision) so a fleet's versions are
// scrapeable.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, healthResponse{Status: "ok", Version: version.String()})
}

// readyResponse is the JSON body of GET /readyz. Reasons is the
// machine-readable vocabulary the cluster router keys its membership
// state machine on: "stopping" means drain (stop routing new work, let
// in-flight jobs finish), "breaker_open:<scheme>" and "shedding" mean
// back off but stay — none of them means dead. The legacy boolean
// fields remain for human eyes and older scrapers.
type readyResponse struct {
	Ready       bool     `json:"ready"`
	Reasons     []string `json:"reasons,omitempty"`
	Stopping    bool     `json:"stopping,omitempty"`
	OpenSchemes []string `json:"breaker_open_schemes,omitempty"`
	MemoryShed  bool     `json:"memory_shed_active,omitempty"`
}

func (s *Server) readiness() readyResponse {
	resp := readyResponse{
		Stopping:    s.stopping.Load(),
		OpenSchemes: s.breaker.openSchemes(),
		MemoryShed:  s.shed.active(),
	}
	resp.Ready = !resp.Stopping && len(resp.OpenSchemes) == 0 && !resp.MemoryShed
	if resp.Stopping {
		resp.Reasons = append(resp.Reasons, "stopping")
	}
	for _, sc := range resp.OpenSchemes {
		resp.Reasons = append(resp.Reasons, "breaker_open:"+sc)
	}
	if resp.MemoryShed {
		resp.Reasons = append(resp.Reasons, "shedding")
	}
	return resp
}

// handleReadyz is the readiness probe: it flips to 503 while the
// instance is draining, any scheme's circuit is open, or the memory
// shedder is actively denying admissions — exactly the windows in
// which a load balancer should route new submissions elsewhere.
//
// A probe carrying RouterProbeHeader is the cluster router checking on
// this replica; seeing one renews the router lease (cluster.go) —
// answering the probe and holding the lease are deliberately the same
// signal, so the router's liveness view and the replica's cannot drift.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if r.Header.Get(RouterProbeHeader) != "" {
		s.renewLease()
	}
	resp := s.readiness()
	code := http.StatusOK
	if !resp.Ready {
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	writeJSON(w, resp)
}

// ceilSeconds rounds a duration up to whole seconds, minimum 1 — the
// only granularity Retry-After speaks.
func ceilSeconds(d time.Duration) int {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return secs
}

// --- small helpers -------------------------------------------------------------

type errorBody struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	writeJSON(w, errorBody{Error: msg})
}

func writeJSON(w http.ResponseWriter, v any) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // client gone is the only failure; nothing to do
}
