package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"time"

	"redhip/internal/version"
)

// RouterProbeHeader marks a GET /readyz as a redhip-router health
// probe. For the replica the probe doubles as a lease renewal: as long
// as probes keep arriving, the router still believes this replica owns
// its key ranges. When they stop for longer than Options.LeaseTimeout
// the replica must assume the router has declared it dead and re-homed
// its jobs — so it fences itself (cancels all non-terminal jobs)
// rather than finish work another replica is now re-executing, which
// would double-execute specs and break the cluster's accounting.
const RouterProbeHeader = "X-RedHiP-Router"

// RegistrationBody is the JSON body of POST /v1/cluster/register —
// what a replica announces to the router. Version carries the full
// build identity (internal/version); the router refuses a ring mixing
// versions, because bit-identical results across replicas are only
// guaranteed at equal code.
type RegistrationBody struct {
	Name    string `json:"name"`
	BaseURL string `json:"base_url"`
	Version string `json:"version"`
}

// startCluster launches the replica-side cluster goroutines:
// the registration loop and the lease watchdog. Options.fill has
// validated RouterURL/AdvertiseURL/LeaseTimeout already.
func (s *Server) startCluster() {
	ctx, cancel := context.WithCancel(context.Background())
	s.clusterCancel = cancel
	s.clusterWG.Add(2)
	go s.registerLoop(ctx)
	go s.leaseWatchdog(ctx)
}

// renewLease records a router probe sighting; the watchdog measures
// lease age from here.
func (s *Server) renewLease() {
	s.lastProbe.Store(time.Now().UnixNano())
}

// registerLoop announces this replica to the router, forever:
// registration is idempotent (the router updates URL/version in
// place), so re-announcing every LeaseTimeout both heals a restarted
// router (which forgot its members) and re-admits this replica after a
// fence. Rejections — version skew, router not up yet — just retry;
// the retry delay is the error path's only state.
func (s *Server) registerLoop(ctx context.Context) {
	defer s.clusterWG.Done()
	payload, err := json.Marshal(RegistrationBody{
		Name:    s.opts.ReplicaName,
		BaseURL: s.opts.AdvertiseURL,
		Version: version.String(),
	})
	if err != nil {
		return // plain struct; cannot fail
	}
	client := &http.Client{Timeout: 5 * time.Second}
	okDelay := s.opts.LeaseTimeout
	failDelay := okDelay / 4
	if failDelay < 50*time.Millisecond {
		failDelay = 50 * time.Millisecond
	}
	timer := time.NewTimer(0)
	defer timer.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-timer.C:
		}
		delay := failDelay
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			s.opts.RouterURL+"/v1/cluster/register", bytes.NewReader(payload))
		if err == nil {
			req.Header.Set("Content-Type", "application/json")
			if resp, derr := client.Do(req); derr == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					delay = okDelay
				}
			}
		}
		timer.Reset(delay)
	}
}

// leaseWatchdog fences the replica when the router lease expires. The
// watchdog only arms after the first probe (lastProbe != 0): a replica
// that never met its router has nothing to fence. Fencing resets the
// clock to unarmed, so one lease loss fences once; the next probe that
// arrives re-arms it and normal service resumes — the fence guards the
// partition window, it is not a terminal state.
func (s *Server) leaseWatchdog(ctx context.Context) {
	defer s.clusterWG.Done()
	tick := s.opts.LeaseTimeout / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		last := s.lastProbe.Load()
		if last == 0 {
			continue
		}
		if time.Since(time.Unix(0, last)) > s.opts.LeaseTimeout {
			s.lastProbe.Store(0)
			s.fenceJobs()
		}
	}
}

// fenceJobs cancels every non-terminal job: queued jobs finish
// cancelled immediately, running jobs have their contexts cancelled
// and reach cancelled through their workers. The point is the
// no-double-execution invariant — by the time the router re-homes this
// replica's jobs (dead declaration takes longer than the lease), none
// of them can still complete here, so exactly one replica ever counts
// each spec's execution. Direct (non-router) submissions are fenced
// too: in cluster mode the router is the front door, and a split-brain
// replica cannot tell who submitted what.
func (s *Server) fenceJobs() {
	s.metrics.inc(&s.metrics.leaseFences)
	for _, j := range s.store.list() {
		wasQueued, _ := j.requestCancel()
		if wasQueued && s.queue.remove(j) {
			s.finalize(j, StateCancelled, "router lease lost: job fenced", nil, time.Now())
		}
	}
}

// ExecutionsDone reports how many jobs completed their sweep on this
// replica — the failover drill sums it across replicas and compares
// with the number of unique specs submitted.
func (s *Server) ExecutionsDone() uint64 {
	return s.metrics.snapshot().ExecutionsDone
}

// LeaseFences reports how many times the lease watchdog fenced this
// replica.
func (s *Server) LeaseFences() uint64 {
	return s.metrics.snapshot().LeaseFences
}
