package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"time"

	"redhip/internal/version"
)

// RouterProbeHeader marks a GET /readyz as a redhip-router health
// probe. For the replica the probe doubles as a lease renewal: as long
// as probes keep arriving, the router still believes this replica owns
// its key ranges. When they stop for longer than Options.LeaseTimeout
// the replica must assume the router has declared it dead and re-homed
// its jobs — so it fences itself (cancels all non-terminal jobs)
// rather than finish work another replica is now re-executing, which
// would double-execute specs and break the cluster's accounting.
const RouterProbeHeader = "X-RedHiP-Router"

// RegistrationBody is the JSON body of POST /v1/cluster/register —
// what a replica announces to the router. Version carries the full
// build identity (internal/version); the router refuses a ring mixing
// versions, because bit-identical results across replicas are only
// guaranteed at equal code.
type RegistrationBody struct {
	Name    string `json:"name"`
	BaseURL string `json:"base_url"`
	Version string `json:"version"`
}

// RegistrationAck is the subset of the router's registration response
// the replica acts on: the router's dead-declaration floor — the
// minimum time between this replica's last successful probe and the
// router declaring it dead and re-homing its jobs. The replica's
// fencing lease must stay below it, or a partitioned replica keeps
// executing work the router has already handed to a new owner.
type RegistrationAck struct {
	DeadAfterMillis int64 `json:"dead_after_ms"`
}

// startCluster launches the replica-side cluster goroutines:
// the registration loop and the lease watchdog. Options.fill has
// validated RouterURL/AdvertiseURL/LeaseTimeout already.
func (s *Server) startCluster() {
	s.leaseNanos.Store(int64(s.opts.LeaseTimeout))
	ctx, cancel := context.WithCancel(context.Background())
	s.clusterCancel = cancel
	s.clusterWG.Add(2)
	go s.registerLoop(ctx)
	go s.leaseWatchdog(ctx)
}

// leaseNow returns the effective lease: Options.LeaseTimeout, unless
// the router's registration ack tightened it (auto mode).
func (s *Server) leaseNow() time.Duration {
	return time.Duration(s.leaseNanos.Load())
}

// applyLeaseAck folds the router's advertised dead-declaration floor
// into the effective lease. An auto lease becomes 3/4 of the floor —
// below it (so the fence always precedes re-homing) yet above the
// worst-case probe gap of 1.25 x ProbeInterval (the floor is at least
// FailThreshold >= 1 probe gaps, so 3/4 of it clears one), keeping
// spurious fences rare. An explicit lease is honoured as-is but warned
// about once when it is not below the floor, because then fencing
// cannot prevent split-brain double execution. Returns the updated
// warned flag.
func (s *Server) applyLeaseAck(ack RegistrationAck, warned bool) bool {
	if ack.DeadAfterMillis <= 0 {
		return warned // router predates the advertisement; keep the configured lease
	}
	dead := time.Duration(ack.DeadAfterMillis) * time.Millisecond
	if !s.opts.leaseAuto {
		if s.opts.LeaseTimeout >= dead && !warned {
			log.Printf("serve: LeaseTimeout %s is not below the router's dead-declaration floor %s — a partitioned replica cannot fence before its jobs are re-homed (double-execution risk unless jobs outlive the lease)",
				s.opts.LeaseTimeout, dead)
			return true
		}
		return warned
	}
	derived := dead * 3 / 4
	if derived < 10*time.Millisecond {
		derived = 10 * time.Millisecond
	}
	s.leaseNanos.Store(int64(derived))
	return warned
}

// renewLease records a router probe sighting; the watchdog measures
// lease age from here.
func (s *Server) renewLease() {
	s.lastProbe.Store(time.Now().UnixNano())
}

// registerLoop announces this replica to the router, forever:
// registration is idempotent (the router updates URL/version in
// place), so re-announcing every lease period both heals a restarted
// router (which forgot its members) and re-admits this replica after a
// fence. Each accepted registration carries the router's ack, whose
// dead-declaration floor recalibrates the lease (applyLeaseAck).
// Rejections — version skew, router not up yet — just retry; the retry
// delay is the error path's only state.
func (s *Server) registerLoop(ctx context.Context) {
	defer s.clusterWG.Done()
	payload, err := json.Marshal(RegistrationBody{
		Name:    s.opts.ReplicaName,
		BaseURL: s.opts.AdvertiseURL,
		Version: version.String(),
	})
	if err != nil {
		return // plain struct; cannot fail
	}
	client := &http.Client{Timeout: 5 * time.Second}
	warned := false
	timer := time.NewTimer(0)
	defer timer.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-timer.C:
		}
		registered := false
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			s.opts.RouterURL+"/v1/cluster/register", bytes.NewReader(payload))
		if err == nil {
			req.Header.Set("Content-Type", "application/json")
			if resp, derr := client.Do(req); derr == nil {
				if resp.StatusCode == http.StatusOK {
					registered = true
					var ack RegistrationAck
					if jerr := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&ack); jerr == nil {
						warned = s.applyLeaseAck(ack, warned)
					}
				}
				resp.Body.Close()
			}
		}
		delay := s.leaseNow()
		if !registered {
			delay /= 4
			if delay < 50*time.Millisecond {
				delay = 50 * time.Millisecond
			}
		}
		timer.Reset(delay)
	}
}

// leaseWatchdog fences the replica when the router lease expires. The
// watchdog only arms after the first probe (lastProbe != 0): a replica
// that never met its router has nothing to fence. Fencing resets the
// clock to unarmed, so one lease loss fences once; the next probe that
// arrives re-arms it and normal service resumes — the fence guards the
// partition window, it is not a terminal state.
func (s *Server) leaseWatchdog(ctx context.Context) {
	defer s.clusterWG.Done()
	timer := time.NewTimer(0) // fires at once; each pass re-arms from the live lease
	defer timer.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-timer.C:
		}
		lease := s.leaseNow()
		if last := s.lastProbe.Load(); last != 0 && time.Since(time.Unix(0, last)) > lease {
			s.lastProbe.Store(0)
			s.fenceJobs()
		}
		tick := lease / 4
		if tick < 10*time.Millisecond {
			tick = 10 * time.Millisecond
		}
		timer.Reset(tick)
	}
}

// fenceJobs cancels every non-terminal job: queued jobs finish
// cancelled immediately, running jobs have their contexts cancelled
// and reach cancelled through their workers. The point is the
// no-double-execution invariant — by the time the router re-homes this
// replica's jobs (dead declaration takes longer than the lease), none
// of them can still complete here, so exactly one replica ever counts
// each spec's execution. Direct (non-router) submissions are fenced
// too: in cluster mode the router is the front door, and a split-brain
// replica cannot tell who submitted what.
func (s *Server) fenceJobs() {
	s.metrics.inc(&s.metrics.leaseFences)
	for _, j := range s.store.list() {
		wasQueued, _ := j.requestCancel()
		if wasQueued && s.queue.remove(j) {
			s.finalize(j, StateCancelled, "router lease lost: job fenced", nil, time.Now())
		}
	}
}

// ExecutionsDone reports how many jobs completed their sweep on this
// replica — the failover drill sums it across replicas and compares
// with the number of unique specs submitted.
func (s *Server) ExecutionsDone() uint64 {
	return s.metrics.snapshot().ExecutionsDone
}

// LeaseFences reports how many times the lease watchdog fenced this
// replica.
func (s *Server) LeaseFences() uint64 {
	return s.metrics.snapshot().LeaseFences
}
