package serve

import (
	"testing"
)

func TestSpecNormalizeDefaults(t *testing.T) {
	n, err := Spec{Workloads: []string{"mcf", "mcf", "lbm"}}.normalize()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(n.Workloads); got != 2 {
		t.Fatalf("workloads deduped to %d, want 2", got)
	}
	if got := len(n.Schemes); got != 5 {
		t.Fatalf("default schemes = %d, want all 5", got)
	}
	if n.Geometry != "scaled" || n.Inclusion != "inclusive" || n.Seed != 1 {
		t.Fatalf("defaults not filled: %+v", n)
	}
	if n.runs() != 10 {
		t.Fatalf("runs = %d, want 10", n.runs())
	}
}

// The dedup key hashes the canonical form: spelling defaults out, or
// changing only execution knobs (timeout), must not split jobs; any
// result-affecting field must.
func TestSpecKey(t *testing.T) {
	base, err := Spec{Workloads: []string{"mcf"}}.normalize()
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := Spec{
		Workloads: []string{"mcf"},
		Schemes:   []string{"base", "phased", "cbf", "redhip", "oracle"},
		Geometry:  "scaled",
		Inclusion: "inclusive",
		Seed:      1,
	}.normalize()
	if err != nil {
		t.Fatal(err)
	}
	if base.key() != explicit.key() {
		t.Fatalf("defaulted and explicit specs key differently: %s vs %s", base.key(), explicit.key())
	}

	timed := base
	timed.TimeoutSeconds = 30
	if base.key() != timed.key() {
		t.Fatalf("timeout split the dedup key")
	}

	for name, mutate := range map[string]func(*Spec){
		"workload":  func(s *Spec) { s.Workloads = []string{"lbm"} },
		"schemes":   func(s *Spec) { s.Schemes = []string{"base"} },
		"geometry":  func(s *Spec) { s.Geometry = "smoke" },
		"inclusion": func(s *Spec) { s.Inclusion = "hybrid" },
		"seed":      func(s *Spec) { s.Seed = 7 },
		"refs":      func(s *Spec) { s.RefsPerCore = 123 },
		"cores":     func(s *Spec) { s.Cores = 2 },
		"prefetch":  func(s *Spec) { s.Prefetch = true },
	} {
		m := base
		mutate(&m)
		if m.key() == base.key() {
			t.Errorf("mutating %s did not change the dedup key", name)
		}
	}
}

func TestSpecInvalid(t *testing.T) {
	cases := map[string]Spec{
		"no workloads":   {},
		"bad workload":   {Workloads: []string{"zork"}},
		"bad scheme":     {Workloads: []string{"mcf"}, Schemes: []string{"zork"}},
		"bad geometry":   {Workloads: []string{"mcf"}, Geometry: "zork"},
		"bad inclusion":  {Workloads: []string{"mcf"}, Inclusion: "zork"},
		"negative cores": {Workloads: []string{"mcf"}, Cores: -1},
		"bad timeout":    {Workloads: []string{"mcf"}, TimeoutSeconds: -3},
		"cbf exclusive":  {Workloads: []string{"mcf"}, Schemes: []string{"cbf"}, Inclusion: "exclusive"},
	}
	for name, spec := range cases {
		if _, err := spec.normalize(); err == nil {
			t.Errorf("%s: normalize accepted %+v", name, spec)
		}
	}
}
