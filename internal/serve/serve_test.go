package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// smokeSpec is a tiny job every test can afford: smoke geometry, one
// workload, two schemes, 2k refs per core.
func smokeSpec() Spec {
	return Spec{
		Workloads:   []string{"mcf"},
		Schemes:     []string{"base", "redhip"},
		Geometry:    "smoke",
		RefsPerCore: 2000,
	}
}

type testServer struct {
	t   *testing.T
	s   *Server
	web *httptest.Server
}

func newTestServer(t *testing.T, opts Options) *testServer {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	web := httptest.NewServer(s.Handler())
	t.Cleanup(web.Close)
	return &testServer{t: t, s: s, web: web}
}

// submit POSTs a spec and returns the decoded response; it fails the
// test unless the status code matches want.
func (ts *testServer) submit(spec Spec, want int) submitResponse {
	ts.t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(ts.web.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		ts.t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != want {
		ts.t.Fatalf("POST /v1/jobs = %d, want %d (body %s)", resp.StatusCode, want, raw)
	}
	var out submitResponse
	if want == http.StatusAccepted {
		if err := json.Unmarshal(raw, &out); err != nil {
			ts.t.Fatalf("decode submit response: %v", err)
		}
	}
	return out
}

// submitRaw POSTs a spec and returns the raw response (caller closes).
func (ts *testServer) submitRaw(spec Spec) *http.Response {
	ts.t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(ts.web.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		ts.t.Fatalf("POST /v1/jobs: %v", err)
	}
	return resp
}

// status GETs a job's status.
func (ts *testServer) status(id string) Status {
	ts.t.Helper()
	var st Status
	ts.getJSON("/v1/jobs/"+id, &st)
	return st
}

func (ts *testServer) getJSON(path string, v any) {
	ts.t.Helper()
	resp, err := http.Get(ts.web.URL + path)
	if err != nil {
		ts.t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		ts.t.Fatalf("GET %s = %d (body %s)", path, resp.StatusCode, raw)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		ts.t.Fatalf("decode %s: %v", path, err)
	}
}

// waitState polls until the job reaches a terminal state, failing the
// test on timeout.
func (ts *testServer) waitState(id string, want State) Status {
	ts.t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st := ts.status(id)
		if st.State == want {
			return st
		}
		if st.State.terminal() {
			ts.t.Fatalf("job %s reached %q (err %q), want %q", id, st.State, st.Error, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	ts.t.Fatalf("job %s did not reach %q in time", id, want)
	return Status{}
}

// metricValue scrapes /metrics and returns the value of an unlabelled
// metric, failing if the family is absent.
func (ts *testServer) metricValue(name string) float64 {
	ts.t.Helper()
	resp, err := http.Get(ts.web.URL + "/metrics")
	if err != nil {
		ts.t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` ([0-9.eE+-]+)$`)
	m := re.FindSubmatch(raw)
	if m == nil {
		ts.t.Fatalf("metric %s missing from /metrics:\n%s", name, raw)
	}
	v, err := strconv.ParseFloat(string(m[1]), 64)
	if err != nil {
		ts.t.Fatalf("metric %s value: %v", name, err)
	}
	return v
}

func TestSubmitPollComplete(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 2, QueueDepth: 8})
	sub := ts.submit(smokeSpec(), http.StatusAccepted)
	if sub.Deduped {
		t.Fatalf("first submission marked deduped")
	}
	st := ts.waitState(sub.ID, StateDone)
	if got, want := len(st.Results), 2; got != want {
		t.Fatalf("results = %d, want %d", got, want)
	}
	if st.Completed != st.Total || st.Total != 2 {
		t.Fatalf("progress %d/%d, want 2/2", st.Completed, st.Total)
	}
	for i, scheme := range []string{"base", "redhip"} {
		r := st.Results[i]
		if r.Workload != "mcf" || r.Scheme.String() != scheme {
			t.Fatalf("result %d = %s/%s, want mcf/%s", i, r.Workload, r.Scheme, scheme)
		}
		if r.Refs == 0 || r.Cycles == 0 {
			t.Fatalf("result %d empty: refs=%d cycles=%d", i, r.Refs, r.Cycles)
		}
	}
	if st.StartedAt == nil || st.FinishedAt == nil {
		t.Fatalf("missing timestamps: %+v", st)
	}
	// The single-pass sweep pulls the materialised stream exactly once
	// for every scheme in the job: 1 miss, 0 replay hits.
	if misses := ts.metricValue("redhip_tracestore_misses_total"); misses != 1 {
		t.Fatalf("tracestore misses = %g, want 1", misses)
	}
	if hits := ts.metricValue("redhip_tracestore_hits_total"); hits != 0 {
		t.Fatalf("tracestore hits = %g, want 0 (one Get per single-pass sweep)", hits)
	}
	if v := ts.metricValue("redhip_serve_jobs_completed_total"); v != 1 {
		t.Fatalf("jobs_completed_total = %g, want 1", v)
	}
	if v := ts.metricValue("redhip_serve_runner_executions_total"); v != 1 {
		t.Fatalf("runner_executions_total = %g, want 1", v)
	}
}

func TestSubmitValidation(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 1, QueueDepth: 2})
	cases := []Spec{
		{},                            // no workloads
		{Workloads: []string{"nope"}}, // unknown workload
		{Workloads: []string{"mcf"}, Schemes: []string{"warp"}},                                           // unknown scheme
		{Workloads: []string{"mcf"}, Geometry: "galactic"},                                                // unknown geometry
		{Workloads: []string{"mcf"}, Inclusion: "sideways"},                                               // unknown inclusion
		{Workloads: []string{"mcf"}, Schemes: []string{"cbf"}, Geometry: "smoke", Inclusion: "exclusive"}, // invalid sim.Config
	}
	for i, spec := range cases {
		resp := ts.submitRaw(spec)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: status %d, want 400", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	// Unknown top-level fields are rejected too.
	resp, err := http.Post(ts.web.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"workloads":["mcf"],"frobnicate":1}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: status %d, want 400", resp.StatusCode)
	}
}

func TestJobNotFound(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 1, QueueDepth: 2})
	resp, err := http.Get(ts.web.URL + "/v1/jobs/job-999999")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
}

func TestListJobs(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 2, QueueDepth: 8})
	sub := ts.submit(smokeSpec(), http.StatusAccepted)
	ts.waitState(sub.ID, StateDone)
	var jobs []Status
	ts.getJSON("/v1/jobs", &jobs)
	if len(jobs) != 1 || jobs[0].ID != sub.ID {
		t.Fatalf("list = %+v, want one entry %s", jobs, sub.ID)
	}
	if jobs[0].Results != nil {
		t.Fatalf("list must not embed results")
	}
}

func TestStoreEviction(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 1, QueueDepth: 4, MaxStoredJobs: 2})
	var ids []string
	for seed := uint64(1); seed <= 3; seed++ {
		spec := smokeSpec()
		spec.Seed = seed
		spec.Schemes = []string{"base"}
		sub := ts.submit(spec, http.StatusAccepted)
		ts.waitState(sub.ID, StateDone)
		ids = append(ids, sub.ID)
	}
	resp, err := http.Get(ts.web.URL + "/v1/jobs/" + ids[0])
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted job still resolvable: %d", resp.StatusCode)
	}
	if n := ts.s.store.size(); n != 2 {
		t.Fatalf("store size = %d, want 2", n)
	}
}

func TestHealthz(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 1, QueueDepth: 2})
	resp, err := http.Get(ts.web.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", resp.StatusCode)
	}
}

// sseEvent is one parsed text/event-stream frame.
type sseEvent struct {
	ID   int
	Type string
	Data string
}

// readSSE parses frames from an SSE response body until the stream ends
// or maxEvents frames arrive.
func readSSE(t *testing.T, body io.Reader, maxEvents int) []sseEvent {
	t.Helper()
	var events []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.Type != "" {
				events = append(events, cur)
				if len(events) >= maxEvents {
					return events
				}
			}
			cur = sseEvent{}
		case strings.HasPrefix(line, "id: "):
			fmt.Sscanf(line, "id: %d", &cur.ID)
		case strings.HasPrefix(line, "event: "):
			cur.Type = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.Data = strings.TrimPrefix(line, "data: ")
		}
	}
	return events
}
