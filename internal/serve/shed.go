package serve

import (
	"fmt"
	"sync"
)

// shedError is the admission verdict when a job's estimated trace
// footprint does not fit. Permanent means the job can never fit this
// server's budget (400); otherwise the budget is merely full right now
// (503 + Retry-After).
type shedError struct {
	Est       uint64
	Reserved  uint64
	Budget    uint64
	Permanent bool
}

func (e *shedError) Error() string {
	if e.Permanent {
		return fmt.Sprintf("serve: job needs ~%d trace bytes, exceeding the server budget of %d", e.Est, e.Budget)
	}
	return fmt.Sprintf("serve: admitting this job (~%d trace bytes) would exceed the memory budget (%d of %d bytes reserved)", e.Est, e.Reserved, e.Budget)
}

// loadShedder is byte-budget admission control: each admitted job
// reserves its estimated worst-case trace footprint (workloads ×
// cores × refs × tracestore.RecordBytes) and releases it exactly once
// on its terminal transition. A submission that would push the
// aggregate reservation past the budget is shed at the door instead
// of being admitted into an OOM.
//
// The estimate is deliberately pessimistic (it assumes every
// workload's streams are resident at once, ignoring tracestore
// sharing across jobs): shedding early is recoverable, an OOM kill is
// not.
type loadShedder struct {
	mu       sync.Mutex
	budget   uint64
	reserved uint64
	// lastDenied is the high-water mark of the smallest recently-denied
	// reservation; readiness reports shedding until the freed headroom
	// could admit it again, giving the probe a crisp, deterministic
	// flip instead of one racing individual admissions.
	lastDenied uint64
}

func newLoadShedder(budget uint64) *loadShedder {
	return &loadShedder{budget: budget}
}

// reserve claims est bytes of the budget, or explains why it cannot.
func (l *loadShedder) reserve(est uint64) error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if est > l.budget {
		return &shedError{Est: est, Budget: l.budget, Permanent: true}
	}
	if l.reserved+est > l.budget {
		if l.lastDenied == 0 || est < l.lastDenied {
			l.lastDenied = est
		}
		return &shedError{Est: est, Reserved: l.reserved, Budget: l.budget}
	}
	l.reserved += est
	return nil
}

// release returns a reservation. Callers release exactly once, on the
// job's terminal transition; the clamp below is pure defence.
func (l *loadShedder) release(est uint64) {
	if l == nil || est == 0 {
		return
	}
	l.mu.Lock()
	if est > l.reserved {
		est = l.reserved
	}
	l.reserved -= est
	if l.lastDenied > 0 && l.budget-l.reserved >= l.lastDenied {
		l.lastDenied = 0
	}
	l.mu.Unlock()
}

// active reports whether the shedder has denied an admission that the
// current headroom still could not satisfy — the readiness signal.
func (l *loadShedder) active() bool {
	if l == nil {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastDenied > 0
}

// usage returns the reserved bytes and the budget for /metrics.
func (l *loadShedder) usage() (reserved, budget uint64) {
	if l == nil {
		return 0, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.reserved, l.budget
}
