package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// --- worker panic isolation (regression: panicking job leaked its worker slot) --

// TestWorkerPanicSlotAndKeyRecovery: a panic in the worker's execution
// stack must fail the job cleanly — stack in the event log, dedup key
// released so the spec can be resubmitted, and the worker slot reused
// by the next job. With Workers: 1 the follow-up submissions only
// complete if the panicked worker survived.
func TestWorkerPanicSlotAndKeyRecovery(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 1, QueueDepth: 4})
	var boom atomic.Bool
	boom.Store(true)
	ts.s.testHookJobStart = func(*Job) {
		if boom.CompareAndSwap(true, false) {
			panic("hook exploded")
		}
	}

	sub := ts.submit(specWithSeed(1), http.StatusAccepted)
	st := ts.waitState(sub.ID, StateFailed)
	if !strings.Contains(st.Error, "worker panicked") || !strings.Contains(st.Error, "hook exploded") {
		t.Fatalf("failed job error = %q, want worker panic message", st.Error)
	}
	if v := ts.metricValue("redhip_serve_worker_panics_total"); v != 1 {
		t.Fatalf("worker_panics_total = %g, want 1", v)
	}

	// The stack is in the event log, not just server stderr.
	replay, _, unsub := ts.s.store.get(sub.ID).subscribe()
	unsub()
	var sawPanic bool
	for _, ev := range replay {
		if ev.Type == "panic" {
			var pd panicData
			if err := json.Unmarshal(ev.Data, &pd); err != nil {
				t.Fatalf("panic event payload: %v", err)
			}
			if !strings.Contains(pd.Stack, "goroutine") || pd.Value != "hook exploded" {
				t.Fatalf("panic event = %+v, want stack and value", pd)
			}
			sawPanic = true
		}
	}
	if !sawPanic {
		t.Fatalf("no panic event in log: %+v", replay)
	}

	// Key released: the identical spec resubmits as a fresh job, and the
	// surviving worker slot runs it to completion.
	again := ts.submit(specWithSeed(1), http.StatusAccepted)
	if again.Deduped || again.ID == sub.ID {
		t.Fatalf("resubmission after panic deduped onto the corpse: %+v", again)
	}
	ts.waitState(again.ID, StateDone)
}

// --- dedup-key wedge (regression: failed job stayed key-resolvable) ------------

// TestFinishReleaseAtomicity: finishRelease must deliver the terminal
// event, close subscribers, and drop the key binding in one store-lock
// hold, so no resolve can attach to a terminally failed job.
func TestFinishReleaseAtomicity(t *testing.T) {
	st := newJobStore(8)
	spec, err := smokeSpec().normalize()
	if err != nil {
		t.Fatal(err)
	}
	j, created, err := st.resolve(spec, 0, time.Now(), nil)
	if err != nil || !created {
		t.Fatalf("resolve: created=%v err=%v", created, err)
	}
	_, live, unsub := j.subscribe()
	defer unsub()

	if !st.finishRelease(j, StateFailed, "transient blowup", time.Now()) {
		t.Fatalf("finishRelease lost a transition race on a fresh job")
	}
	// The subscriber sees the terminal event, then the closed channel.
	var last Event
	for ev := range live {
		last = ev
	}
	if last.Type != "failed" {
		t.Fatalf("last streamed event = %q, want failed", last.Type)
	}
	// A second finisher loses; the key is free for a fresh execution.
	if st.finishRelease(j, StateCancelled, "late", time.Now()) {
		t.Fatalf("second finishRelease won")
	}
	j2, created, err := st.resolve(spec, 0, time.Now(), nil)
	if err != nil || !created || j2 == j {
		t.Fatalf("resolve after failure: created=%v err=%v same=%v", created, err, j2 == j)
	}
}

// --- circuit breaker -----------------------------------------------------------

// TestBreakerStateMachine drives one scheme's circuit through
// closed -> open -> half-open -> open -> half-open -> closed with an
// injected clock.
func TestBreakerStateMachine(t *testing.T) {
	clock := time.Unix(1000, 0)
	b := newBreaker(3, time.Minute)
	b.now = func() time.Time { return clock }

	for i := 0; i < 2; i++ {
		b.onRun("base", true)
		if err := b.allow([]string{"base"}); err != nil {
			t.Fatalf("failure %d tripped early: %v", i+1, err)
		}
	}
	b.onRun("base", true) // third consecutive: trip
	err := b.allow([]string{"base", "redhip"})
	boe, ok := err.(*breakerOpenError)
	if !ok || boe.Scheme != "base" || boe.RetryAfter != time.Minute {
		t.Fatalf("allow after trip = %v, want open(base, 1m)", err)
	}
	if got := b.openSchemes(); len(got) != 1 || got[0] != "base" {
		t.Fatalf("openSchemes = %v", got)
	}
	if err := b.allow([]string{"redhip"}); err != nil {
		t.Fatalf("unrelated scheme shed: %v", err)
	}

	// Cooldown passes: half-open admits, a failure re-opens instantly.
	clock = clock.Add(61 * time.Second)
	if err := b.allow([]string{"base"}); err != nil {
		t.Fatalf("half-open did not admit: %v", err)
	}
	b.onRun("base", true)
	if err := b.allow([]string{"base"}); err == nil {
		t.Fatalf("half-open failure did not re-open")
	}
	if got := b.tripCount(); got != 2 {
		t.Fatalf("tripCount = %d, want 2", got)
	}

	// Next cooldown: a success closes for good.
	clock = clock.Add(2 * time.Minute)
	if err := b.allow([]string{"base"}); err != nil {
		t.Fatalf("second half-open did not admit: %v", err)
	}
	b.onRun("base", false)
	b.onRun("base", true)
	b.onRun("base", true)
	if err := b.allow([]string{"base"}); err != nil {
		t.Fatalf("closed circuit shed below threshold: %v", err)
	}
}

// TestBreakerShedsSubmissions: an open circuit sheds matching
// submissions with 503 + Retry-After and flips /readyz, and the
// cooldown restores both.
func TestBreakerShedsSubmissions(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 1, QueueDepth: 4, BreakerThreshold: 2, BreakerCooldown: time.Minute})
	clock := time.Unix(2000, 0)
	ts.s.breaker.now = func() time.Time { return clock }
	ts.s.breaker.onRun("base", true)
	ts.s.breaker.onRun("base", true) // trip

	resp := ts.submitRaw(specWithSeed(7))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submission under open circuit = %d, want 503", resp.StatusCode)
	}
	if sec, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || sec < 1 {
		t.Fatalf("Retry-After = %q, want >= 1s", resp.Header.Get("Retry-After"))
	}
	resp.Body.Close()
	if v := ts.metricValue("redhip_serve_shed_breaker_total"); v != 1 {
		t.Fatalf("shed_breaker_total = %g, want 1", v)
	}
	if v := ts.metricValue("redhip_serve_breaker_trips_total"); v != 1 {
		t.Fatalf("breaker_trips_total = %g, want 1", v)
	}
	assertReadyz(t, ts, http.StatusServiceUnavailable)
	if v := ts.metricValue("redhip_serve_ready"); v != 0 {
		t.Fatalf("ready gauge = %g, want 0", v)
	}

	// Cooldown elapses: readiness returns and the submission is admitted.
	clock = clock.Add(2 * time.Minute)
	assertReadyz(t, ts, http.StatusOK)
	sub := ts.submit(specWithSeed(7), http.StatusAccepted)
	ts.waitState(sub.ID, StateDone)
}

func assertReadyz(t *testing.T, ts *testServer, want int) {
	t.Helper()
	resp, err := http.Get(ts.web.URL + "/readyz")
	if err != nil {
		t.Fatalf("GET /readyz: %v", err)
	}
	var body readyResponse
	if derr := json.NewDecoder(resp.Body).Decode(&body); derr != nil {
		t.Fatalf("decode /readyz: %v", derr)
	}
	resp.Body.Close()
	if resp.StatusCode != want {
		t.Fatalf("/readyz = %d (%+v), want %d", resp.StatusCode, body, want)
	}
	if body.Ready != (want == http.StatusOK) {
		t.Fatalf("/readyz body %+v inconsistent with status %d", body, resp.StatusCode)
	}
}

// --- byte-budget load shedding -------------------------------------------------

// TestMemorySheddingTemporary: a budget sized for exactly one job
// admits the first, sheds the second with 503 + Retry-After while the
// first is in flight, and recovers (readyz included) once the
// reservation is released.
func TestMemorySheddingTemporary(t *testing.T) {
	norm, err := specWithSeed(1).normalize()
	if err != nil {
		t.Fatal(err)
	}
	est := norm.estimateTraceBytes()
	if est == 0 {
		t.Fatalf("estimateTraceBytes = 0 for %+v", norm)
	}
	ts := newTestServer(t, Options{Workers: 1, QueueDepth: 4, MemoryBudgetBytes: int64(est)})
	release := make(chan struct{})
	entered := make(chan struct{}, 4)
	ts.s.testHookJobStart = func(*Job) {
		entered <- struct{}{}
		<-release
	}

	first := ts.submit(specWithSeed(1), http.StatusAccepted)
	<-entered
	if v := ts.metricValue("redhip_serve_memory_reserved_bytes"); v != float64(est) {
		t.Fatalf("memory_reserved_bytes = %g, want %g", v, float64(est))
	}

	resp := ts.submitRaw(specWithSeed(2))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-budget submission = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("over-budget 503 missing Retry-After")
	}
	resp.Body.Close()
	if v := ts.metricValue("redhip_serve_shed_memory_total"); v != 1 {
		t.Fatalf("shed_memory_total = %g, want 1", v)
	}
	assertReadyz(t, ts, http.StatusServiceUnavailable)

	// A duplicate of in-flight work is never shed: it attaches for free.
	dup := ts.submit(specWithSeed(1), http.StatusAccepted)
	if !dup.Deduped {
		t.Fatalf("identical spec not deduped under shed pressure")
	}

	close(release)
	ts.waitState(first.ID, StateDone)
	if v := ts.metricValue("redhip_serve_memory_reserved_bytes"); v != 0 {
		t.Fatalf("reservation not released: memory_reserved_bytes = %g", v)
	}
	assertReadyz(t, ts, http.StatusOK)
	retried := ts.submit(specWithSeed(2), http.StatusAccepted)
	ts.waitState(retried.ID, StateDone)
}

// TestMemorySheddingPermanent: a job whose estimate exceeds the whole
// budget can never be admitted — that is a 400, not a retryable 503.
func TestMemorySheddingPermanent(t *testing.T) {
	norm, err := specWithSeed(1).normalize()
	if err != nil {
		t.Fatal(err)
	}
	est := norm.estimateTraceBytes()
	ts := newTestServer(t, Options{Workers: 1, QueueDepth: 4, MemoryBudgetBytes: int64(est) - 1})
	resp := ts.submitRaw(specWithSeed(1))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("impossible job = %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()
	// A permanent verdict is not "shedding": readiness is unaffected.
	assertReadyz(t, ts, http.StatusOK)
}

// --- retry policy plumbing -----------------------------------------------------

func TestRetryPolicyNormalization(t *testing.T) {
	base := smokeSpec()
	bad := []*RetryPolicy{
		{MaxAttempts: 0},
		{MaxAttempts: -2},
		{MaxAttempts: 3, BackoffMS: -1},
		{MaxAttempts: 3, BackoffMS: 500, MaxBackoffMS: 100},
	}
	for i, p := range bad {
		s := base
		s.Retry = p
		if _, err := s.normalize(); err == nil {
			t.Errorf("case %d: policy %+v normalised", i, p)
		}
	}

	s := base
	s.Retry = &RetryPolicy{MaxAttempts: 4}
	norm, err := s.normalize()
	if err != nil {
		t.Fatal(err)
	}
	if norm.Retry.BackoffMS != 100 || norm.Retry.MaxBackoffMS != 5000 {
		t.Fatalf("defaults not filled: %+v", norm.Retry)
	}
	if s.Retry.BackoffMS != 0 {
		t.Fatalf("normalize mutated the caller's policy: %+v", s.Retry)
	}
	// Retry is execution-only: it must not split the dedup key.
	plain, err := base.normalize()
	if err != nil {
		t.Fatal(err)
	}
	if norm.key() != plain.key() {
		t.Fatalf("retry policy changed the dedup key")
	}
}

func TestMaxAttemptsCap(t *testing.T) {
	s, err := New(Options{Workers: 1, RetryMaxAttempts: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	spec := smokeSpec()
	if got := s.maxAttempts(spec); got != 1 {
		t.Fatalf("no policy: maxAttempts = %d, want 1", got)
	}
	spec.Retry = &RetryPolicy{MaxAttempts: 10}
	if got := s.maxAttempts(spec); got != 3 {
		t.Fatalf("capped: maxAttempts = %d, want 3", got)
	}

	off, err := New(Options{Workers: 1, RetryMaxAttempts: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer off.Shutdown(context.Background())
	if got := off.maxAttempts(spec); got != 1 {
		t.Fatalf("disabled: maxAttempts = %d, want 1", got)
	}
}

// TestBackoffDeterminism: the jittered backoff is a pure function of
// (policy, key, attempt), exponential, and capped.
func TestBackoffDeterminism(t *testing.T) {
	p := &RetryPolicy{MaxAttempts: 6, BackoffMS: 100, MaxBackoffMS: 800}
	prev := time.Duration(0)
	for attempt := 1; attempt <= 5; attempt++ {
		d1 := backoffDelay(p, "cafebabe", attempt)
		d2 := backoffDelay(p, "cafebabe", attempt)
		if d1 != d2 {
			t.Fatalf("attempt %d: nondeterministic backoff %s vs %s", attempt, d1, d2)
		}
		full := float64(100) * float64(int(1)<<(attempt-1))
		if full > 800 {
			full = 800
		}
		lo := time.Duration(full * 0.5 * float64(time.Millisecond))
		hi := time.Duration(full * float64(time.Millisecond))
		if d1 < lo || d1 > hi {
			t.Fatalf("attempt %d: backoff %s outside [%s, %s]", attempt, d1, lo, hi)
		}
		_ = prev
	}
	if d := backoffDelay(p, "cafebabe", 1); d == backoffDelay(p, "deadbeef", 1) {
		t.Fatalf("different keys produced identical jitter (possible, astronomically unlikely)")
	}
}

// --- probes --------------------------------------------------------------------

// TestHealthzLivenessDuringDrain: /healthz stays 200 through shutdown
// (the process is alive and draining); /readyz flips to 503.
func TestHealthzLivenessDuringDrain(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 1, QueueDepth: 2})
	if err := ts.s.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	resp, err := http.Get(ts.web.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz during drain = %d, want 200", resp.StatusCode)
	}
	assertReadyz(t, ts, http.StatusServiceUnavailable)
}
