package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"testing"
)

// TestConcurrentDedupSingleFlight is the subsystem's end-to-end
// acceptance check: N concurrent identical submissions resolve to one
// job, one experiment.Runner execution, and byte-identical result
// payloads for every client. Run it under -race to exercise the
// single-flight path.
func TestConcurrentDedupSingleFlight(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 2, QueueDepth: 8})
	const clients = 16

	spec, _ := json.Marshal(smokeSpec())
	ids := make([]string, clients)
	var wg sync.WaitGroup
	wg.Add(clients)
	for i := 0; i < clients; i++ {
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.web.URL+"/v1/jobs", "application/json", bytes.NewReader(spec))
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				t.Errorf("client %d: status %d", i, resp.StatusCode)
				return
			}
			var sub submitResponse
			if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
				t.Errorf("client %d: decode: %v", i, err)
				return
			}
			ids[i] = sub.ID
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for i := 1; i < clients; i++ {
		if ids[i] != ids[0] {
			t.Fatalf("client %d got job %s, client 0 got %s — dedup split the flight", i, ids[i], ids[0])
		}
	}

	ts.waitState(ids[0], StateDone)

	// Exactly one runner execution; the other 15 submissions were
	// deduplicated onto it.
	snap := ts.s.metrics.snapshot()
	if snap.RunnerStarts != 1 {
		t.Fatalf("runner executions = %d, want 1", snap.RunnerStarts)
	}
	if snap.Deduped != clients-1 {
		t.Fatalf("deduped = %d, want %d", snap.Deduped, clients-1)
	}
	if snap.Submitted != clients {
		t.Fatalf("submitted = %d, want %d", snap.Submitted, clients)
	}

	// Every client polling the job reads bit-identical bytes.
	first := ts.getRaw("/v1/jobs/" + ids[0])
	for i := 1; i < 4; i++ {
		if other := ts.getRaw("/v1/jobs/" + ids[0]); !bytes.Equal(first, other) {
			t.Fatalf("result payloads differ between reads:\n%s\n---\n%s", first, other)
		}
	}

	// A later identical submission is served from the result cache
	// without a new execution.
	late := ts.submit(smokeSpec(), http.StatusAccepted)
	if !late.Deduped || late.ID != ids[0] {
		t.Fatalf("post-completion submission not served from cache: %+v", late)
	}
	if snap := ts.s.metrics.snapshot(); snap.RunnerStarts != 1 {
		t.Fatalf("cache-served submission re-ran the job")
	}
}

// getRaw fetches a path and returns the body bytes.
func (ts *testServer) getRaw(path string) []byte {
	ts.t.Helper()
	resp, err := http.Get(ts.web.URL + path)
	if err != nil {
		ts.t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		ts.t.Fatalf("GET %s = %d", path, resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		ts.t.Fatalf("read %s: %v", path, err)
	}
	return raw
}

// TestSSEProgressBeforeTerminal subscribes to a running job's event
// stream and requires at least one progress event strictly before the
// terminal event — the ISSUE's streaming acceptance criterion.
func TestSSEProgressBeforeTerminal(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 1, QueueDepth: 2})
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	ts.s.testHookJobStart = func(*Job) {
		started <- struct{}{}
		<-release
	}

	spec := smokeSpec() // two runs -> at least two progress events
	sub := ts.submit(spec, http.StatusAccepted)
	<-started // job is running, no runs finished yet

	resp, err := http.Get(ts.web.URL + "/v1/jobs/" + sub.ID + "/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	close(release)

	events := readSSE(t, resp.Body, 16)
	var sawProgress bool
	var terminalAt = -1
	for i, ev := range events {
		switch ev.Type {
		case "progress":
			if terminalAt >= 0 {
				t.Fatalf("progress event after terminal: %+v", events)
			}
			sawProgress = true
			var p progressData
			if err := json.Unmarshal([]byte(ev.Data), &p); err != nil {
				t.Fatalf("progress data: %v", err)
			}
			if p.Total != 2 || p.Completed < 1 || p.Completed > 2 {
				t.Fatalf("progress payload %+v", p)
			}
		case "done":
			terminalAt = i
		case "failed", "cancelled":
			t.Fatalf("job ended %s: %+v", ev.Type, ev)
		}
	}
	if !sawProgress {
		t.Fatalf("no progress event before terminal; events: %+v", events)
	}
	if terminalAt < 0 {
		t.Fatalf("no terminal event; events: %+v", events)
	}
	// Event IDs are the log positions: strictly increasing from 1.
	for i, ev := range events {
		if ev.ID != i+1 {
			t.Fatalf("event %d has id %d", i, ev.ID)
		}
	}
}

// TestSSEReplayAfterCompletion: a subscriber arriving after the job
// finished replays the full log, progress before terminal.
func TestSSEReplayAfterCompletion(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 1, QueueDepth: 2})
	sub := ts.submit(smokeSpec(), http.StatusAccepted)
	ts.waitState(sub.ID, StateDone)

	resp, err := http.Get(ts.web.URL + "/v1/jobs/" + sub.ID + "/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer resp.Body.Close()
	events := readSSE(t, resp.Body, 16)
	if len(events) < 4 { // queued, running, 2x progress, done
		t.Fatalf("replayed %d events, want >= 4: %+v", len(events), events)
	}
	last := events[len(events)-1]
	if last.Type != "done" {
		t.Fatalf("last replayed event = %q, want done", last.Type)
	}
	progress := 0
	for _, ev := range events[:len(events)-1] {
		if ev.Type == "progress" {
			progress++
		}
	}
	if progress != 2 {
		t.Fatalf("replayed %d progress events, want 2", progress)
	}
}
