package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"redhip/internal/sim"
	"redhip/internal/sweep"
)

// This file is the sweep orchestration layer: POST /v1/sweeps expands
// a parameter grid (internal/sweep) into child jobs and feeds them
// through the exact admission door direct submissions use — dedup,
// circuit breakers, memory shedding and the bounded queue all apply to
// sweep fan-out. Per-sweep state, SSE progress (reusing eventLog) and
// the aggregated paper-figure artifacts live here; the grid math and
// the artifact tables stay in the pure internal/sweep package.

// sweepCounts buckets a sweep's children by lifecycle position.
// Pending children have not been submitted yet ("" state).
type sweepCounts struct {
	Pending   int `json:"pending"`
	Queued    int `json:"queued"`
	Running   int `json:"running"`
	Done      int `json:"done"`
	Failed    int `json:"failed"`
	Cancelled int `json:"cancelled"`
}

// childRank orders child states so replayed/duplicate transitions can
// never move a child backwards: pending < queued < running < terminal.
func childRank(st State) int {
	switch st {
	case "":
		return 0
	case StateQueued:
		return 1
	case StateRunning:
		return 2
	}
	return 3
}

// sweepChildEvent is the payload of a "child" progress event.
type sweepChildEvent struct {
	Index   int         `json:"index"`
	Job     string      `json:"job_id,omitempty"`
	State   string      `json:"state"`
	Error   string      `json:"error,omitempty"`
	Deduped bool        `json:"deduped,omitempty"`
	Counts  sweepCounts `json:"counts"`
}

// sweepRun is one accepted sweep: the immutable expanded grid plus the
// orchestrator's mutable progress — child states, per-child results in
// grid order, the event log, and (terminally) the aggregated
// artifacts.
type sweepRun struct {
	// Immutable after creation.
	ID       string
	Grid     sweep.Grid
	Children []sweep.Child

	mu         sync.Mutex
	state      State              //redhip:guardedby mu
	errMsg     string             //redhip:guardedby mu
	childState []State            //redhip:guardedby mu // "" = pending
	childJob   []string           //redhip:guardedby mu // job ID once submitted
	childOwned []bool             //redhip:guardedby mu // true when this sweep created the job
	counts     sweepCounts        //redhip:guardedby mu
	results    [][]*sim.Result    //redhip:guardedby mu // by child index, set on child done
	artifacts  *sweep.Artifacts   //redhip:guardedby mu // non-nil only when state == done
	submitted  time.Time          //redhip:guardedby mu
	finished   time.Time          //redhip:guardedby mu
	cancel     context.CancelFunc //redhip:guardedby mu // orchestrator ctx, non-nil while running
	// cancelRequested bridges the DELETE-races-startup window: the
	// orchestrator installs its cancel func after launch and honours a
	// request that arrived first.
	cancelRequested bool     //redhip:guardedby mu
	log             eventLog //redhip:guardedby mu
}

func newSweepRun(id string, g sweep.Grid, children []sweep.Child, now time.Time) *sweepRun {
	sw := &sweepRun{
		ID:         id,
		Grid:       g,
		Children:   children,
		state:      StateRunning,
		childState: make([]State, len(children)),
		childJob:   make([]string, len(children)),
		childOwned: make([]bool, len(children)),
		counts:     sweepCounts{Pending: len(children)},
		results:    make([][]*sim.Result, len(children)),
		submitted:  now,
	}
	sw.mu.Lock()
	sw.log.appendLocked("running", terminalData{State: StateRunning}, false)
	sw.mu.Unlock()
	return sw
}

// bucketLocked returns the counts bucket a child state belongs to.
func (sw *sweepRun) bucketLocked(st State) *int {
	switch st {
	case "":
		return &sw.counts.Pending
	case StateQueued:
		return &sw.counts.Queued
	case StateRunning:
		return &sw.counts.Running
	case StateDone:
		return &sw.counts.Done
	case StateFailed:
		return &sw.counts.Failed
	}
	return &sw.counts.Cancelled
}

// transitionLocked advances one child's state, keeps the count buckets
// consistent and appends a "child" event. Stale transitions (replays,
// duplicate watcher deliveries) are dropped by rank.
func (sw *sweepRun) transitionLocked(idx int, st State, errMsg string, results []*sim.Result, deduped bool) bool {
	old := sw.childState[idx]
	if childRank(st) <= childRank(old) {
		return false
	}
	*sw.bucketLocked(old)--
	*sw.bucketLocked(st)++
	sw.childState[idx] = st
	if st == StateDone {
		sw.results[idx] = results
	}
	sw.log.appendLocked("child", sweepChildEvent{
		Index:   idx,
		Job:     sw.childJob[idx],
		State:   string(st),
		Error:   errMsg,
		Deduped: deduped,
		Counts:  sw.counts,
	}, false)
	return true
}

// childSubmitted records a child's admission: its job binding, whether
// this sweep created the job (owned) or attached to existing work, and
// the advance to queued.
func (sw *sweepRun) childSubmitted(idx int, jobID string, owned bool) {
	sw.mu.Lock()
	sw.childJob[idx] = jobID
	sw.childOwned[idx] = owned
	sw.transitionLocked(idx, StateQueued, "", nil, !owned)
	sw.mu.Unlock()
}

// childTransition advances one child from its watcher. It reports
// whether the child just reached "failed" — the orchestrator's
// fail-fast trigger.
func (sw *sweepRun) childTransition(idx int, st State, errMsg string, results []*sim.Result) bool {
	sw.mu.Lock()
	advanced := sw.transitionLocked(idx, st, errMsg, results, false)
	sw.mu.Unlock()
	return advanced && st == StateFailed
}

// settle runs after every watcher returned: children never submitted
// are marked cancelled, and the final counts, cancellation flag and
// result set come back for the terminal verdict. The results slice is
// safe to read without the lock from here on — all writers are done.
func (sw *sweepRun) settle() (counts sweepCounts, cancelRequested bool, results [][]*sim.Result) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	for i, st := range sw.childState {
		if st == "" {
			sw.transitionLocked(i, StateCancelled, "", nil, false)
		}
	}
	return sw.counts, sw.cancelRequested, sw.results
}

// finish applies the sweep's terminal transition exactly once; the
// state change, artifacts and terminal event land atomically so an SSE
// subscriber can never observe a terminal sweep without its event.
func (sw *sweepRun) finish(state State, errMsg string, arts *sweep.Artifacts, now time.Time) bool {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if sw.state.terminal() {
		return false
	}
	sw.state = state
	sw.errMsg = errMsg
	sw.artifacts = arts
	sw.finished = now
	sw.cancel = nil
	sw.log.appendLocked(string(state), terminalData{State: state, Error: errMsg}, true)
	return true
}

// setCancel installs the orchestrator's cancel func, honouring a
// cancellation that raced sweep startup.
func (sw *sweepRun) setCancel(cancel context.CancelFunc) {
	sw.mu.Lock()
	requested := sw.cancelRequested
	if !sw.state.terminal() {
		sw.cancel = cancel
	}
	sw.mu.Unlock()
	if requested {
		cancel()
	}
}

// requestCancel asks the sweep to stop and returns the IDs of child
// jobs this sweep created that are not yet terminal — the fan-out set
// the handler cancels. Jobs the sweep merely attached to by dedup are
// excluded here; shared jobs are additionally skipped by the handler.
func (sw *sweepRun) requestCancel() []string {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if sw.state.terminal() {
		return nil
	}
	sw.cancelRequested = true
	if sw.cancel != nil {
		sw.cancel()
	}
	var ids []string
	for i, st := range sw.childState {
		if sw.childOwned[i] && !st.terminal() && sw.childJob[i] != "" {
			ids = append(ids, sw.childJob[i])
		}
	}
	return ids
}

// subscribe returns the replayed event log and a live channel, exactly
// like Job.subscribe.
func (sw *sweepRun) subscribe() (replay []Event, live <-chan Event, unsub func()) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	replay, ch := sw.log.subscribeLocked(sw.state.terminal())
	return replay, ch, func() {
		sw.mu.Lock()
		sw.log.unsubscribeLocked(ch)
		sw.mu.Unlock()
	}
}

// stateNow returns the sweep's current state.
func (sw *sweepRun) stateNow() State {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.state
}

// artifactsSnapshot returns the aggregated artifacts, nil until the
// sweep finishes done.
func (sw *sweepRun) artifactsSnapshot() *sweep.Artifacts {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.artifacts
}

// SweepChildStatus is one child's row in a sweep status response.
type SweepChildStatus struct {
	Index       int    `json:"index"`
	Workload    string `json:"workload"`
	Geometry    string `json:"geometry"`
	Cores       int    `json:"cores,omitempty"`
	RefsPerCore uint64 `json:"refs_per_core,omitempty"`
	Seed        uint64 `json:"seed"`
	Job         string `json:"job_id,omitempty"`
	State       string `json:"state"`
}

// SweepStatus is the JSON shape of GET /v1/sweeps/{id}.
type SweepStatus struct {
	ID             string             `json:"id"`
	State          State              `json:"state"`
	Error          string             `json:"error,omitempty"`
	Grid           sweep.Grid         `json:"grid"`
	Children       int                `json:"children"`
	Runs           int                `json:"runs"`
	Counts         sweepCounts        `json:"counts"`
	SubmittedAt    time.Time          `json:"submitted_at"`
	FinishedAt     *time.Time         `json:"finished_at,omitempty"`
	ArtifactsReady bool               `json:"artifacts_ready"`
	ChildJobs      []SweepChildStatus `json:"child_jobs,omitempty"`
}

// snapshot renders the sweep's current status; withChildren controls
// the (large, for big grids) per-child table.
func (sw *sweepRun) snapshot(withChildren bool) SweepStatus {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	st := SweepStatus{
		ID:             sw.ID,
		State:          sw.state,
		Error:          sw.errMsg,
		Grid:           sw.Grid,
		Children:       len(sw.Children),
		Runs:           len(sw.Children) * len(sw.Grid.Schemes),
		Counts:         sw.counts,
		SubmittedAt:    sw.submitted,
		ArtifactsReady: sw.artifacts != nil,
	}
	if !sw.finished.IsZero() {
		t := sw.finished
		st.FinishedAt = &t
	}
	if withChildren {
		st.ChildJobs = make([]SweepChildStatus, len(sw.Children))
		for i, c := range sw.Children {
			state := string(sw.childState[i])
			if state == "" {
				state = "pending"
			}
			st.ChildJobs[i] = SweepChildStatus{
				Index:       c.Index,
				Workload:    c.Workload,
				Geometry:    c.Geometry,
				Cores:       c.Cores,
				RefsPerCore: c.RefsPerCore,
				Seed:        c.Seed,
				Job:         sw.childJob[i],
				State:       state,
			}
		}
	}
	return st
}

// --- sweep store ---------------------------------------------------------------

// sweepStore indexes sweeps by ID and bounds residency like jobStore:
// terminal sweeps beyond maxSweeps are evicted oldest-first; active
// sweeps are never evicted.
type sweepStore struct {
	mu        sync.Mutex
	nextID    uint64      //redhip:guardedby mu
	byID      map[string]*sweepRun //redhip:guardedby mu
	order     []*sweepRun //redhip:guardedby mu // insertion order, the eviction scan order
	maxSweeps int
}

func newSweepStore(maxSweeps int) *sweepStore {
	return &sweepStore{
		byID:      make(map[string]*sweepRun),
		maxSweeps: maxSweeps,
	}
}

// add registers a new sweep and evicts aged-out terminal ones.
func (st *sweepStore) add(g sweep.Grid, children []sweep.Child, now time.Time) *sweepRun {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.nextID++
	sw := newSweepRun(fmt.Sprintf("sweep-%06d", st.nextID), g, children, now)
	st.byID[sw.ID] = sw
	st.order = append(st.order, sw)
	st.evictLocked()
	return sw
}

// get looks a sweep up by ID.
func (st *sweepStore) get(id string) *sweepRun {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.byID[id]
}

// list snapshots all resident sweeps in insertion order.
func (st *sweepStore) list() []*sweepRun {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]*sweepRun, len(st.order))
	copy(out, st.order)
	return out
}

// evictLocked trims terminal sweeps, oldest first, down to maxSweeps.
// Lock order st.mu -> sw.mu (via stateNow) has no inverse anywhere.
func (st *sweepStore) evictLocked() {
	if len(st.order) <= st.maxSweeps {
		return
	}
	kept := st.order[:0]
	excess := len(st.order) - st.maxSweeps
	for _, sw := range st.order {
		if excess > 0 && sw.stateNow().terminal() {
			delete(st.byID, sw.ID)
			excess--
			continue
		}
		kept = append(kept, sw)
	}
	st.order = kept
}

// sizes returns (resident sweeps, sweeps still orchestrating) for the
// /metrics gauges.
func (st *sweepStore) sizes() (stored, active int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, sw := range st.order {
		if !sw.stateNow().terminal() {
			active++
		}
	}
	return len(st.order), active
}

// --- orchestrator --------------------------------------------------------------

// childSpec builds the job spec for one grid cell: a single workload
// under the grid's full scheme list, so the engine runs the schemes in
// lockstep over one materialised trace and per-job dedup shares cells
// across sweeps and direct submissions.
func childSpec(g sweep.Grid, c sweep.Child) (Spec, error) {
	spec := Spec{
		Workloads:         []string{c.Workload},
		Schemes:           g.Schemes,
		Geometry:          c.Geometry,
		Inclusion:         g.Inclusion,
		Seed:              c.Seed,
		RefsPerCore:       c.RefsPerCore,
		WarmupRefsPerCore: g.WarmupRefsPerCore,
		Cores:             c.Cores,
		Prefetch:          g.Prefetch,
		TimeoutSeconds:    g.TimeoutSeconds,
	}
	return spec.normalize()
}

// admitChild pushes one child spec through admitSpec, absorbing
// transient rejections (full queue, open breaker, memory shed,
// injected admission faults) by waiting out the advertised Retry-After
// and retrying — a sweep is a patient client, so backpressure slows it
// down instead of failing it. Permanent verdicts (shutdown, a spec
// that can never fit the memory budget) and ctx cancellation return
// immediately.
func (s *Server) admitChild(ctx context.Context, spec Spec) (*Job, bool, error) {
	for {
		j, created, err := s.admitSpec(spec)
		if err == nil {
			return j, created, nil
		}
		var boe *breakerOpenError
		var se *shedError
		var af *admitFault
		var delay time.Duration
		switch {
		case errors.Is(err, ErrShuttingDown):
			return nil, false, err
		case errors.As(err, &boe):
			delay = boe.RetryAfter
		case errors.As(err, &se):
			if se.Permanent {
				return nil, false, err
			}
			delay = time.Duration(s.retryAfterSeconds()) * time.Second
		case errors.Is(err, ErrQueueFull), errors.As(err, &af):
			delay = time.Duration(s.retryAfterSeconds()) * time.Second
		default:
			return nil, false, err
		}
		// Clamp the wait: floor keeps a hot retry loop off the admission
		// lock, ceiling keeps the orchestrator responsive to freed slots
		// even when the estimator extrapolates from slow runs.
		if delay < 20*time.Millisecond {
			delay = 20 * time.Millisecond
		} else if delay > 2*time.Second {
			delay = 2 * time.Second
		}
		s.metrics.inc(&s.metrics.sweepAdmitWaits)
		select {
		case <-ctx.Done():
			return nil, false, ctx.Err()
		case <-time.After(delay):
		}
	}
}

// runSweep is the per-sweep orchestrator goroutine: submit children in
// grid order behind a MaxInFlight semaphore, watch each to a terminal
// state, then aggregate. A failed child trips fail-fast — submissions
// stop, in-flight children drain (their jobs may be shared with other
// clients, so they are not cancelled), unsubmitted children settle as
// cancelled.
func (s *Server) runSweep(sw *sweepRun) {
	defer s.sweepWG.Done()
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()
	sw.setCancel(cancel)

	sem := make(chan struct{}, sw.Grid.MaxInFlight)
	var watchers sync.WaitGroup
	var failOnce sync.Once
	failFast := func() { failOnce.Do(cancel) }

	for i, child := range sw.Children {
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
		}
		if ctx.Err() != nil {
			break
		}
		spec, err := childSpec(sw.Grid, child)
		if err != nil {
			// Unreachable after Grid.Normalize, but a child that cannot
			// even form a spec fails the sweep cleanly.
			sw.childTransition(i, StateFailed, err.Error(), nil)
			failFast()
			<-sem
			break
		}
		j, created, err := s.admitChild(ctx, spec)
		if err != nil {
			<-sem
			if ctx.Err() != nil {
				break // cancelled: the child settles as cancelled, not failed
			}
			sw.childTransition(i, StateFailed, "admission failed: "+err.Error(), nil)
			failFast()
			break
		}
		s.metrics.inc(&s.metrics.sweepChildren)
		if !created {
			s.metrics.inc(&s.metrics.sweepChildDedup)
		}
		sw.childSubmitted(i, j.ID, created)
		watchers.Add(1)
		go func(idx int, j *Job) {
			defer watchers.Done()
			defer func() { <-sem }()
			s.watchChild(sw, idx, j, failFast)
		}(i, j)
	}
	watchers.Wait()
	s.finishSweep(sw)
}

// watchChild follows one child job to a terminal state through its
// event log (replay-then-live, the same machinery the SSE endpoint
// uses) and mirrors its transitions into the sweep. If the watcher is
// ever dropped as a slow subscriber it resubscribes; the rank filter
// makes replayed transitions idempotent.
func (s *Server) watchChild(sw *sweepRun, idx int, j *Job, failFast func()) {
	for {
		replay, live, unsub := j.subscribe()
		for _, ev := range replay {
			if s.mirrorChildEvent(sw, idx, j, ev, failFast) {
				unsub()
				return
			}
		}
		for ev := range live {
			if s.mirrorChildEvent(sw, idx, j, ev, failFast) {
				unsub()
				return
			}
		}
		unsub()
		// The live channel closed without a terminal event: dropped as a
		// slow subscriber. Resolve from job state, resubscribing if the
		// job is still live.
		if st := j.stateNow(); st.terminal() {
			snap := j.snapshot(true)
			sw.childTransition(idx, st, snap.Error, snap.Results)
			if st != StateDone {
				failFast()
			}
			return
		}
	}
}

// mirrorChildEvent folds one job event into the sweep; it reports
// whether the child reached a terminal state.
func (s *Server) mirrorChildEvent(sw *sweepRun, idx int, j *Job, ev Event, failFast func()) bool {
	switch ev.Type {
	case string(StateQueued), string(StateRunning):
		sw.childTransition(idx, State(ev.Type), "", nil)
		return false
	case string(StateDone):
		snap := j.snapshot(true)
		sw.childTransition(idx, StateDone, "", snap.Results)
		return true
	case string(StateFailed):
		snap := j.snapshot(false)
		sw.childTransition(idx, StateFailed, snap.Error, nil)
		failFast()
		return true
	case string(StateCancelled):
		// A child cancelled out from under the sweep (direct DELETE,
		// shutdown drain) means the sweep cannot complete either.
		sw.childTransition(idx, StateCancelled, "", nil)
		failFast()
		return true
	}
	return false // progress/retry/panic events stay job-local
}

// finishSweep settles the terminal verdict once every watcher is done:
// all children done -> aggregate artifacts and finish done; otherwise
// cancelled (if requested) or failed. Aggregation runs outside every
// lock — it touches only immutable results.
func (s *Server) finishSweep(sw *sweepRun) {
	counts, cancelRequested, results := sw.settle()
	var state State
	var errMsg string
	var arts *sweep.Artifacts
	switch {
	case counts.Done == len(sw.Children):
		a, err := sweep.Aggregate(sw.Grid, sw.Children, results)
		if err != nil {
			state, errMsg = StateFailed, "aggregate: "+err.Error()
		} else {
			state, arts = StateDone, a
		}
	case cancelRequested:
		state, errMsg = StateCancelled, "cancelled"
	case counts.Failed > 0:
		state, errMsg = StateFailed, fmt.Sprintf("%d of %d children failed", counts.Failed, len(sw.Children))
	default:
		state, errMsg = StateCancelled, fmt.Sprintf("%d of %d children cancelled", counts.Cancelled, len(sw.Children))
	}
	if sw.finish(state, errMsg, arts, time.Now()) {
		s.metrics.sweepFinished(state)
	}
}

// --- handlers ------------------------------------------------------------------

type sweepSubmitResponse struct {
	ID        string `json:"id"`
	State     State  `json:"state"`
	Children  int    `json:"children"`
	Runs      int    `json:"runs"`
	Status    string `json:"status_url"`
	Events    string `json:"events_url"`
	Artifacts string `json:"artifacts_url"`
}

func (s *Server) handleSweepSubmit(w http.ResponseWriter, r *http.Request) {
	var g sweep.Grid
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&g); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("invalid sweep grid: %v", err))
		return
	}
	norm, err := g.Normalize()
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if n := norm.Count(); n > s.opts.MaxSweepChildren {
		httpError(w, http.StatusBadRequest,
			fmt.Sprintf("sweep expands to %d children, cap is %d", n, s.opts.MaxSweepChildren))
		return
	}
	if s.stopping.Load() {
		s.metrics.inc(&s.metrics.rejectedShutdown)
		httpError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	sw := s.sweeps.add(norm, norm.Expand(), s.now())
	s.metrics.inc(&s.metrics.sweepsSubmitted)
	s.sweepWG.Add(1)
	go s.runSweep(sw)

	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Location", "/v1/sweeps/"+sw.ID)
	w.WriteHeader(http.StatusAccepted)
	writeJSON(w, sweepSubmitResponse{
		ID:        sw.ID,
		State:     sw.stateNow(),
		Children:  len(sw.Children),
		Runs:      norm.Runs(),
		Status:    "/v1/sweeps/" + sw.ID,
		Events:    "/v1/sweeps/" + sw.ID + "/events",
		Artifacts: "/v1/sweeps/" + sw.ID + "/artifacts",
	})
}

func (s *Server) handleSweepList(w http.ResponseWriter, r *http.Request) {
	sweeps := s.sweeps.list()
	out := make([]SweepStatus, len(sweeps))
	for i, sw := range sweeps {
		out[i] = sw.snapshot(false)
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, out)
}

func (s *Server) handleSweepGet(w http.ResponseWriter, r *http.Request) {
	sw := s.sweeps.get(r.PathValue("id"))
	if sw == nil {
		httpError(w, http.StatusNotFound, "no such sweep")
		return
	}
	withChildren := r.URL.Query().Get("children") != "false"
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, sw.snapshot(withChildren))
}

// handleSweepCancel cancels the sweep and fans the cancellation out to
// the child jobs this sweep created — except jobs other submitters
// share (dedup attached them): cancelling those would yank results out
// from under an unrelated client.
func (s *Server) handleSweepCancel(w http.ResponseWriter, r *http.Request) {
	sw := s.sweeps.get(r.PathValue("id"))
	if sw == nil {
		httpError(w, http.StatusNotFound, "no such sweep")
		return
	}
	for _, id := range sw.requestCancel() {
		j := s.store.get(id)
		if j == nil || j.snapshot(false).Submissions > 1 {
			continue
		}
		wasQueued, _ := j.requestCancel()
		if wasQueued && s.queue.remove(j) {
			s.finalize(j, StateCancelled, "sweep cancelled", nil, time.Now())
		}
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, sw.snapshot(false))
}

func (s *Server) handleSweepEvents(w http.ResponseWriter, r *http.Request) {
	sw := s.sweeps.get(r.PathValue("id"))
	if sw == nil {
		httpError(w, http.StatusNotFound, "no such sweep")
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	replay, live, unsub := sw.subscribe()
	defer unsub()
	for _, ev := range replay {
		writeSSE(w, ev)
	}
	fl.Flush()
	for {
		select {
		case ev, ok := <-live:
			if !ok {
				return
			}
			writeSSE(w, ev)
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// handleSweepArtifacts serves the aggregated paper-figure tables:
// JSON by default, the rendered text block with ?format=text (the
// form the smoke script diffs for bit-identity).
func (s *Server) handleSweepArtifacts(w http.ResponseWriter, r *http.Request) {
	sw := s.sweeps.get(r.PathValue("id"))
	if sw == nil {
		httpError(w, http.StatusNotFound, "no such sweep")
		return
	}
	arts := sw.artifactsSnapshot()
	if arts == nil {
		httpError(w, http.StatusConflict,
			fmt.Sprintf("sweep is %s: artifacts are available once every child is done", sw.stateNow()))
		return
	}
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, arts.Text)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, arts)
}
