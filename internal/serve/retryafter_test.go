package serve

import (
	"testing"
	"time"
)

// retryAfterServer wires the minimal Server slice retryAfterSeconds
// reads — metrics, store, queue, worker count — under a scripted
// clock, so the estimate is tested arithmetically instead of racing
// real workers.
func retryAfterServer(t *testing.T, workers int, at time.Time) *Server {
	t.Helper()
	return &Server{
		opts:    Options{Workers: workers},
		queue:   newJobQueue(64),
		store:   newJobStore(64),
		metrics: newMetrics(),
		now:     func() time.Time { return at },
	}
}

// startRunningJob registers a distinct job and back-dates its running
// start to the given time.
func startRunningJob(t *testing.T, s *Server, seed uint64, started time.Time) {
	t.Helper()
	spec := Spec{Workloads: []string{"mcf"}, Schemes: []string{"base"}, Geometry: "smoke", Seed: seed, RefsPerCore: 1000}
	norm, err := spec.normalize()
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}
	j, created, err := s.store.resolve(norm, 0, started, nil)
	if err != nil || !created {
		t.Fatalf("resolve: created=%v err=%v", created, err)
	}
	if !j.start(nil, started) {
		t.Fatalf("job did not start")
	}
}

func TestRetryAfterAccountsForInFlightRemainder(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	s := retryAfterServer(t, 2, now)

	// No completed runs yet: no latency signal, answer the minimum.
	if got := s.retryAfterSeconds(); got != 1 {
		t.Fatalf("retryAfter with no history = %d, want 1", got)
	}

	// Mean run latency 4s.
	s.metrics.observeRun("base", 4.0)

	// Two in-flight runs, 1s and 3s into their expected 4s: the
	// remainders are 3s and 1s. Three queued jobs plus the incoming one
	// wait a full mean each: 16s. Two workers drain (16+4)/2 = 10s.
	startRunningJob(t, s, 101, now.Add(-1*time.Second))
	startRunningJob(t, s, 102, now.Add(-3*time.Second))
	for i := 0; i < 3; i++ {
		if err := s.queue.push(&Job{}); err != nil {
			t.Fatalf("push: %v", err)
		}
	}
	if got := s.retryAfterSeconds(); got != 10 {
		t.Fatalf("retryAfter = %d, want 10 (queued 16s + remaining 4s over 2 workers)", got)
	}

	// A run that has blown past the mean contributes zero remainder,
	// not a negative one.
	startRunningJob(t, s, 103, now.Add(-30*time.Second))
	if got := s.retryAfterSeconds(); got != 10 {
		t.Fatalf("retryAfter with an overdue run = %d, want 10", got)
	}

	// A back-dated start in the future (clock skew) clamps at the full
	// mean rather than inflating the estimate beyond one run.
	startRunningJob(t, s, 104, now.Add(50*time.Second))
	if got := s.retryAfterSeconds(); got != 12 {
		t.Fatalf("retryAfter with skewed start = %d, want 12 ((16+4+4)/2)", got)
	}
}

func TestRetryAfterClamps(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)

	// Idle single worker with a tiny mean: floor at 1.
	s := retryAfterServer(t, 4, now)
	s.metrics.observeRun("base", 0.01)
	if got := s.retryAfterSeconds(); got != 1 {
		t.Fatalf("retryAfter floor = %d, want 1", got)
	}

	// One worker, long mean, deep queue: ceiling at 60.
	s = retryAfterServer(t, 1, now)
	s.metrics.observeRun("base", 30.0)
	for i := 0; i < 8; i++ {
		if err := s.queue.push(&Job{}); err != nil {
			t.Fatalf("push: %v", err)
		}
	}
	if got := s.retryAfterSeconds(); got != 60 {
		t.Fatalf("retryAfter ceiling = %d, want 60", got)
	}
}
