package serve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// warmTierServer builds a server with a 1-byte RAM trace budget (every
// stream spills to the disk tier), the disk tier in a test temp dir and
// the warm-state snapshot cache enabled. Skips where mmap is
// unavailable.
func warmTierServer(t *testing.T) *testServer {
	t.Helper()
	s, err := New(Options{
		Workers:            1,
		TraceCacheBytes:    1,
		TraceDir:           t.TempDir(),
		SnapshotCacheBytes: 32 << 20,
	})
	if err != nil {
		t.Skipf("disk tier unavailable: %v", err)
	}
	web := httptest.NewServer(s.Handler())
	t.Cleanup(web.Close)
	return &testServer{t: t, s: s, web: web}
}

// TestWarmStateAndDiskTierMetrics drives warmed jobs through the
// snapshot cache and the forced disk tier and checks that both show up
// on /metrics: spills from the tiny RAM budget, puts from the first
// warmup, hits and restores from a measure-length branch of the same
// warm lineage, and a disk hit when a later job replays the same trace.
func TestWarmStateAndDiskTierMetrics(t *testing.T) {
	ts := warmTierServer(t)
	spec := smokeSpec()
	spec.WarmupRefsPerCore = 1000

	r := ts.submit(spec, http.StatusAccepted)
	ts.waitState(r.ID, StateDone)
	if v := ts.metricValue("redhip_tracestore_spills_total"); v < 1 {
		t.Errorf("spills_total = %g, want >= 1 under a 1-byte RAM budget", v)
	}
	if v := ts.metricValue("redhip_simstate_puts_total"); v < 2 {
		t.Errorf("simstate_puts_total = %g, want >= 2 (one warm blob per scheme)", v)
	}

	// A longer measure window shares the warm lineage: the runner must
	// branch from the stored blobs instead of re-warming.
	longer := spec
	longer.RefsPerCore = 3000
	r2 := ts.submit(longer, http.StatusAccepted)
	ts.waitState(r2.ID, StateDone)
	if v := ts.metricValue("redhip_simstate_hits_total"); v < 2 {
		t.Errorf("simstate_hits_total = %g, want >= 2", v)
	}
	if v := ts.metricValue("redhip_simstate_restores_total"); v < 2 {
		t.Errorf("simstate_restores_total = %g, want >= 2 (restored measure pass)", v)
	}

	// Same trace geometry with an extra scheme: new dedup key, same
	// tracestore key, so the stream must replay from the spill file.
	wider := spec
	wider.Schemes = append(append([]string(nil), spec.Schemes...), "oracle")
	r3 := ts.submit(wider, http.StatusAccepted)
	ts.waitState(r3.ID, StateDone)
	if v := ts.metricValue("redhip_tracestore_disk_hits_total"); v < 1 {
		t.Errorf("disk_hits_total = %g, want >= 1", v)
	}
}

// TestSnapshotMetricsAbsentWhenDisabled pins that the simstate families
// only appear once the operator enables the snapshot cache — a scrape
// of a default server stays byte-compatible with older deployments.
func TestSnapshotMetricsAbsentWhenDisabled(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 1})
	resp, err := http.Get(ts.web.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if strings.Contains(string(raw), "# TYPE redhip_simstate_hits_total ") {
		t.Error("simstate metric family present with the snapshot cache disabled")
	}
}
