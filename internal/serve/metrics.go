package serve

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"redhip/internal/simstate"
	"redhip/internal/tracestore"
)

// runBuckets are the per-scheme run-latency histogram bounds in
// seconds. Smoke runs land in the sub-millisecond buckets, scaled
// sweeps in the middle, paper-geometry runs at the top.
var runBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10, 60}

// httpBuckets are the per-endpoint HTTP request-latency bounds in
// seconds: admission and status calls answer in microseconds to
// milliseconds; the top buckets absorb long-lived SSE streams, whose
// "latency" is the stream lifetime.
var httpBuckets = []float64{0.0005, 0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10, 60}

// histogram is a fixed-bucket Prometheus-style histogram: counts[i]
// observes values <= buckets[i]; sum/count feed the implicit +Inf
// bucket and averages.
type histogram struct {
	buckets []float64 // bucket upper bounds; nil defaults to runBuckets
	counts  []uint64
	sum     float64
	count   uint64
}

func (h *histogram) observe(v float64) {
	if h.buckets == nil {
		h.buckets = runBuckets
	}
	if h.counts == nil {
		h.counts = make([]uint64, len(h.buckets))
	}
	for i, ub := range h.buckets {
		if v <= ub {
			h.counts[i]++
		}
	}
	h.sum += v
	h.count++
}

// endpointMetrics is one HTTP endpoint's instrumentation: a request
// latency histogram, per-status-code counters, and a live in-flight
// gauge — the server-side numbers loadgen reports cross-check against.
type endpointMetrics struct {
	latency  histogram
	codes    map[int]uint64
	inflight int64
}

// metrics is the server's instrumentation: monotone counters plus
// per-scheme run-latency histograms. Gauges (queue depth, in-flight,
// stored jobs) are read live from their owners at render time.
type metrics struct {
	mu               sync.Mutex
	submitted        uint64                // POST /v1/jobs accepted (new or deduped)
	deduped          uint64                // submissions attached to an existing job
	rejectedFull     uint64                // 429s
	rejectedShutdown uint64                // 503s during drain
	completed        uint64                // jobs reaching "done"
	failed           uint64                // jobs reaching "failed"
	cancelled        uint64                // jobs reaching "cancelled"
	runnerStarts     uint64                // experiment.Runner executions launched
	executionsDone   uint64                // jobs whose sweep completed locally (cluster no-double-execution invariant)
	leaseFences      uint64                // router-lease expiries that fenced non-terminal jobs
	retries          uint64                // execution attempts beyond the first
	workerPanics     uint64                // panics recovered in the worker stack
	shedBreaker      uint64                // submissions shed by an open circuit
	shedMemory       uint64                // submissions shed by the byte budget
	sweepsSubmitted  uint64                // POST /v1/sweeps accepted
	sweepsDone       uint64                // sweeps reaching "done"
	sweepsFailed     uint64                // sweeps reaching "failed"
	sweepsCancelled  uint64                // sweeps reaching "cancelled"
	sweepChildren    uint64                // child jobs submitted by sweep orchestrators
	sweepChildDedup  uint64                // sweep children resolved by dedup instead of a fresh run
	sweepAdmitWaits  uint64                // child admissions retried after a transient rejection
	runs             map[string]*histogram       // per-scheme run wall time
	http             map[string]*endpointMetrics // per-endpoint HTTP request metrics
}

func newMetrics() *metrics {
	return &metrics{
		runs: make(map[string]*histogram),
		http: make(map[string]*endpointMetrics),
	}
}

// endpointLocked returns (creating on first use) the instrumentation
// slot for one endpoint label.
func (m *metrics) endpointLocked(endpoint string) *endpointMetrics {
	e := m.http[endpoint]
	if e == nil {
		e = &endpointMetrics{latency: histogram{buckets: httpBuckets}, codes: make(map[int]uint64)}
		m.http[endpoint] = e
	}
	return e
}

// httpStart marks a request in flight on its endpoint.
func (m *metrics) httpStart(endpoint string) {
	m.mu.Lock()
	m.endpointLocked(endpoint).inflight++
	m.mu.Unlock()
}

// httpDone records a finished request: latency, status code, and the
// in-flight decrement.
func (m *metrics) httpDone(endpoint string, code int, seconds float64) {
	m.mu.Lock()
	e := m.endpointLocked(endpoint)
	e.inflight--
	e.latency.observe(seconds)
	e.codes[code]++
	m.mu.Unlock()
}

func (m *metrics) inc(field *uint64) {
	m.mu.Lock()
	*field++
	m.mu.Unlock()
}

// observeRun records one simulation run's wall time under its scheme.
func (m *metrics) observeRun(scheme string, seconds float64) {
	m.mu.Lock()
	h := m.runs[scheme]
	if h == nil {
		h = &histogram{}
		m.runs[scheme] = h
	}
	h.observe(seconds)
	m.mu.Unlock()
}

// jobFinished bumps the counter matching a terminal state.
func (m *metrics) jobFinished(s State) {
	switch s {
	case StateDone:
		m.inc(&m.completed)
	case StateFailed:
		m.inc(&m.failed)
	case StateCancelled:
		m.inc(&m.cancelled)
	}
}

// sweepFinished bumps the counter matching a sweep's terminal state.
func (m *metrics) sweepFinished(s State) {
	switch s {
	case StateDone:
		m.inc(&m.sweepsDone)
	case StateFailed:
		m.inc(&m.sweepsFailed)
	case StateCancelled:
		m.inc(&m.sweepsCancelled)
	}
}

// avgRunSeconds returns the mean observed run latency, or 0 before the
// first observation. The Retry-After estimate derives from it.
func (m *metrics) avgRunSeconds() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var sum float64
	var n uint64
	for _, h := range m.runs {
		sum += h.sum
		n += h.count
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// snapshot copies the counter block for tests and the renderer.
type metricsSnapshot struct {
	Submitted, Deduped, RejectedFull, RejectedShutdown uint64
	Completed, Failed, Cancelled, RunnerStarts         uint64
	ExecutionsDone, LeaseFences                        uint64
	Retries, WorkerPanics, ShedBreaker, ShedMemory     uint64
	SweepsSubmitted, SweepsDone, SweepsFailed          uint64
	SweepsCancelled, SweepChildren, SweepChildDedup    uint64
	SweepAdmitWaits                                    uint64
}

func (m *metrics) snapshot() metricsSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	return metricsSnapshot{
		Submitted: m.submitted, Deduped: m.deduped,
		RejectedFull: m.rejectedFull, RejectedShutdown: m.rejectedShutdown,
		Completed: m.completed, Failed: m.failed, Cancelled: m.cancelled,
		RunnerStarts:   m.runnerStarts,
		ExecutionsDone: m.executionsDone, LeaseFences: m.leaseFences,
		Retries: m.retries, WorkerPanics: m.workerPanics,
		ShedBreaker: m.shedBreaker, ShedMemory: m.shedMemory,
		SweepsSubmitted: m.sweepsSubmitted, SweepsDone: m.sweepsDone,
		SweepsFailed: m.sweepsFailed, SweepsCancelled: m.sweepsCancelled,
		SweepChildren: m.sweepChildren, SweepChildDedup: m.sweepChildDedup,
		SweepAdmitWaits: m.sweepAdmitWaits,
	}
}

// gauges are the live values the renderer reads from the server.
type gauges struct {
	QueueDepth     int
	InFlight       int
	StoredJobs     int
	StoredSweeps   int
	ActiveSweeps   int // sweeps not yet terminal
	BreakerOpen    int // schemes with an open circuit
	BreakerTrips   uint64
	MemoryReserved uint64
	MemoryBudget   uint64
	Ready          bool
}

// writeProm renders everything in Prometheus text exposition format.
// Families are emitted in a fixed order and label values sorted, so
// scrapes are diffable.
func (m *metrics) writeProm(w io.Writer, g gauges, ts tracestore.Stats, tsOK bool, ss simstate.StoreStats, ssOK bool) {
	s := m.snapshot()
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}

	counter("redhip_serve_jobs_submitted_total", "Accepted job submissions (new plus deduplicated).", s.Submitted)
	counter("redhip_serve_jobs_deduped_total", "Submissions attached to an existing job by dedup key.", s.Deduped)
	counter("redhip_serve_jobs_rejected_total", "Submissions rejected with 429 because the queue was full.", s.RejectedFull)
	counter("redhip_serve_jobs_shutdown_rejected_total", "Submissions rejected with 503 during shutdown.", s.RejectedShutdown)
	counter("redhip_serve_jobs_completed_total", "Jobs that finished successfully.", s.Completed)
	counter("redhip_serve_jobs_failed_total", "Jobs that finished with an error.", s.Failed)
	counter("redhip_serve_jobs_cancelled_total", "Jobs cancelled while queued or running.", s.Cancelled)
	counter("redhip_serve_runner_executions_total", "experiment.Runner executions launched (one per non-deduplicated job).", s.RunnerStarts)
	counter("redhip_serve_executions_done_total", "Jobs whose sweep completed on this replica (summed across a cluster, equals unique specs executed).", s.ExecutionsDone)
	counter("redhip_serve_lease_fences_total", "Router-lease expiries that fenced (cancelled) this replica's non-terminal jobs.", s.LeaseFences)
	counter("redhip_serve_retries_total", "Job execution attempts beyond each job's first.", s.Retries)
	counter("redhip_serve_worker_panics_total", "Panics recovered in the worker execution stack.", s.WorkerPanics)
	counter("redhip_serve_shed_breaker_total", "Submissions shed with 503 by an open circuit breaker.", s.ShedBreaker)
	counter("redhip_serve_shed_memory_total", "Submissions shed by the trace-memory byte budget.", s.ShedMemory)
	counter("redhip_serve_breaker_trips_total", "Circuit-breaker transitions to open, over all schemes.", g.BreakerTrips)
	counter("redhip_serve_sweeps_submitted_total", "POST /v1/sweeps accepted.", s.SweepsSubmitted)
	counter("redhip_serve_sweeps_completed_total", "Sweeps whose every child finished and whose artifacts aggregated.", s.SweepsDone)
	counter("redhip_serve_sweeps_failed_total", "Sweeps that ended failed.", s.SweepsFailed)
	counter("redhip_serve_sweeps_cancelled_total", "Sweeps cancelled by DELETE or shutdown.", s.SweepsCancelled)
	counter("redhip_serve_sweep_children_total", "Child jobs submitted through sweep orchestration.", s.SweepChildren)
	counter("redhip_serve_sweep_children_deduped_total", "Sweep children resolved by dedup instead of a fresh execution.", s.SweepChildDedup)
	counter("redhip_serve_sweep_admit_waits_total", "Sweep child admissions retried after a transient rejection (queue full, breaker open, memory shed).", s.SweepAdmitWaits)

	gauge("redhip_serve_queue_depth", "Jobs admitted and waiting for a worker.", float64(g.QueueDepth))
	gauge("redhip_serve_inflight", "Jobs currently executing.", float64(g.InFlight))
	gauge("redhip_serve_jobs_stored", "Jobs resident in the store (all states).", float64(g.StoredJobs))
	gauge("redhip_serve_sweeps_stored", "Sweeps resident in the store (all states).", float64(g.StoredSweeps))
	gauge("redhip_serve_sweeps_active", "Sweeps currently orchestrating children.", float64(g.ActiveSweeps))
	gauge("redhip_serve_breaker_open_schemes", "Schemes whose circuit is currently open.", float64(g.BreakerOpen))
	gauge("redhip_serve_memory_reserved_bytes", "Trace bytes reserved by admitted jobs.", float64(g.MemoryReserved))
	gauge("redhip_serve_memory_budget_bytes", "Trace-memory admission budget (0 = shedding disabled).", float64(g.MemoryBudget))
	ready := 0.0
	if g.Ready {
		ready = 1.0
	}
	gauge("redhip_serve_ready", "1 when the instance would answer /readyz with 200.", ready)

	// Per-scheme run-latency histograms.
	const hn = "redhip_serve_run_duration_seconds"
	fmt.Fprintf(w, "# HELP %s Wall time of individual simulation runs by scheme.\n# TYPE %s histogram\n", hn, hn)
	m.mu.Lock()
	schemes := make([]string, 0, len(m.runs))
	for sc := range m.runs {
		schemes = append(schemes, sc)
	}
	sort.Strings(schemes)
	for _, sc := range schemes {
		h := m.runs[sc]
		for i, ub := range runBuckets {
			fmt.Fprintf(w, "%s_bucket{scheme=%q,le=%q} %d\n", hn, sc, fmt.Sprintf("%g", ub), h.counts[i])
		}
		fmt.Fprintf(w, "%s_bucket{scheme=%q,le=\"+Inf\"} %d\n", hn, sc, h.count)
		fmt.Fprintf(w, "%s_sum{scheme=%q} %g\n", hn, sc, h.sum)
		fmt.Fprintf(w, "%s_count{scheme=%q} %d\n", hn, sc, h.count)
	}

	// Per-endpoint HTTP request metrics: latency histogram, status-code
	// counters and the live in-flight gauge. Sorted labels keep scrapes
	// diffable; loadgen's client-side report cross-checks against these.
	endpoints := make([]string, 0, len(m.http))
	for ep := range m.http {
		endpoints = append(endpoints, ep)
	}
	sort.Strings(endpoints)
	const dn = "redhip_serve_http_request_duration_seconds"
	fmt.Fprintf(w, "# HELP %s HTTP request latency by endpoint (SSE streams observe their whole lifetime).\n# TYPE %s histogram\n", dn, dn)
	for _, ep := range endpoints {
		h := &m.http[ep].latency
		for i, ub := range httpBuckets {
			var c uint64
			if h.counts != nil {
				c = h.counts[i]
			}
			fmt.Fprintf(w, "%s_bucket{endpoint=%q,le=%q} %d\n", dn, ep, fmt.Sprintf("%g", ub), c)
		}
		fmt.Fprintf(w, "%s_bucket{endpoint=%q,le=\"+Inf\"} %d\n", dn, ep, h.count)
		fmt.Fprintf(w, "%s_sum{endpoint=%q} %g\n", dn, ep, h.sum)
		fmt.Fprintf(w, "%s_count{endpoint=%q} %d\n", dn, ep, h.count)
	}
	const rn = "redhip_serve_http_requests_total"
	fmt.Fprintf(w, "# HELP %s HTTP requests finished, by endpoint and status code.\n# TYPE %s counter\n", rn, rn)
	for _, ep := range endpoints {
		codes := make([]int, 0, len(m.http[ep].codes))
		for c := range m.http[ep].codes {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			fmt.Fprintf(w, "%s{endpoint=%q,code=\"%d\"} %d\n", rn, ep, c, m.http[ep].codes[c])
		}
	}
	const fn = "redhip_serve_http_inflight"
	fmt.Fprintf(w, "# HELP %s HTTP requests currently being served, by endpoint.\n# TYPE %s gauge\n", fn, fn)
	for _, ep := range endpoints {
		fmt.Fprintf(w, "%s{endpoint=%q} %d\n", fn, ep, m.http[ep].inflight)
	}
	m.mu.Unlock()

	if tsOK {
		counter("redhip_tracestore_hits_total", "Trace store gets served from a resident entry.", ts.Hits)
		counter("redhip_tracestore_misses_total", "Trace store materialisations started.", ts.Misses)
		counter("redhip_tracestore_evictions_total", "Trace store LRU evictions.", ts.Evictions)
		gauge("redhip_tracestore_entries", "Trace store resident entries.", float64(ts.Entries))
		gauge("redhip_tracestore_bytes", "Trace store resident bytes.", float64(ts.Bytes))
		gauge("redhip_tracestore_budget_bytes", "Trace store byte budget.", float64(ts.BudgetBytes))
		gauge("redhip_tracestore_hit_ratio", "Fraction of trace store gets served from cache.", ts.HitRate())
		counter("redhip_tracestore_materialize_nanos_total", "Cumulative nanoseconds spent materialising streams.", uint64(ts.MaterializeNanos))
		counter("redhip_tracestore_materializations_total", "Trace store materialisations completed.", ts.Materializations)
		counter("redhip_tracestore_spills_total", "Trace blocks spilled from RAM to the disk tier.", ts.Spills)
		counter("redhip_tracestore_spilled_bytes_total", "Bytes written to the disk tier's spill file.", ts.SpilledBytes)
		counter("redhip_tracestore_disk_hits_total", "Trace store gets served zero-copy from the disk tier.", ts.DiskHits)
		counter("redhip_tracestore_disk_evictions_total", "Blocks evicted from the disk tier's budget.", ts.DiskEvictions)
		gauge("redhip_tracestore_disk_entries", "Blocks resident in the disk tier.", float64(ts.DiskEntries))
		gauge("redhip_tracestore_disk_bytes", "Disk tier resident bytes (separate from RAM bytes).", float64(ts.DiskBytes))
		gauge("redhip_tracestore_disk_budget_bytes", "Disk tier byte budget (0 = tier disabled).", float64(ts.DiskBudgetBytes))
	}

	if ssOK {
		counter("redhip_simstate_hits_total", "Warm-state snapshot store gets served from a stored blob.", ss.Hits)
		counter("redhip_simstate_misses_total", "Warm-state snapshot store gets that required a fresh warmup.", ss.Misses)
		counter("redhip_simstate_puts_total", "Warm-state blobs stored after a warmup.", ss.Puts)
		counter("redhip_simstate_evictions_total", "Warm-state snapshot store LRU evictions.", ss.Evictions)
		counter("redhip_simstate_restores_total", "Engine restores branched from stored warm-state blobs.", ss.Restores)
		counter("redhip_simstate_restore_nanos_total", "Cumulative decode+restore wall nanoseconds.", uint64(ss.RestoreNanos))
		gauge("redhip_simstate_entries", "Warm-state blobs resident in the snapshot store.", float64(ss.Entries))
		gauge("redhip_simstate_bytes", "Warm-state snapshot store resident bytes.", float64(ss.Bytes))
		gauge("redhip_simstate_budget_bytes", "Warm-state snapshot store byte budget.", float64(ss.BudgetBytes))
		gauge("redhip_simstate_hit_ratio", "Fraction of snapshot store gets served from a stored blob.", ss.HitRate())
	}
}
