package serve

import (
	"fmt"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// metricsText scrapes /metrics raw.
func (ts *testServer) metricsText() string {
	ts.t.Helper()
	resp, err := http.Get(ts.web.URL + "/metrics")
	if err != nil {
		ts.t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	var b strings.Builder
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		b.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return b.String()
}

// labeledValue extracts one labeled sample, e.g.
// labeledValue(text, `redhip_serve_http_requests_total{endpoint="jobs",code="202"}`).
func labeledValue(t *testing.T, text, sample string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(sample) + ` (\S+)$`)
	m := re.FindStringSubmatch(text)
	if m == nil {
		t.Fatalf("sample %s not found in /metrics", sample)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("sample %s = %q: %v", sample, m[1], err)
	}
	return v
}

// TestHTTPEndpointMetrics checks the per-endpoint instrumentation:
// requests land in the right endpoint/code counter, the latency
// histogram accumulates, and the in-flight gauge tracks a handler that
// is actually blocked inside a request.
func TestHTTPEndpointMetrics(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 1, QueueDepth: 4})

	// One accepted job submission, one invalid one, one status GET.
	r := ts.submit(smokeSpec(), http.StatusAccepted)
	ts.waitState(r.ID, StateDone)
	resp, err := http.Post(ts.web.URL+"/v1/jobs", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	ts.status(r.ID)

	text := ts.metricsText()
	if v := labeledValue(t, text, `redhip_serve_http_requests_total{endpoint="jobs",code="202"}`); v != 1 {
		t.Errorf("jobs/202 = %g, want 1", v)
	}
	if v := labeledValue(t, text, `redhip_serve_http_requests_total{endpoint="jobs",code="400"}`); v != 1 {
		t.Errorf("jobs/400 = %g, want 1", v)
	}
	if v := labeledValue(t, text, `redhip_serve_http_requests_total{endpoint="job",code="200"}`); v < 1 {
		t.Errorf("job/200 = %g, want >= 1", v)
	}
	if v := labeledValue(t, text, `redhip_serve_http_request_duration_seconds_count{endpoint="jobs"}`); v != 2 {
		t.Errorf("jobs duration count = %g, want 2", v)
	}
	// The scrape itself is in flight while it renders.
	if v := labeledValue(t, text, `redhip_serve_http_inflight{endpoint="metrics"}`); v != 1 {
		t.Errorf("metrics inflight = %g, want 1 (the scrape itself)", v)
	}
	// Everything else is idle by now.
	if v := labeledValue(t, text, `redhip_serve_http_inflight{endpoint="jobs"}`); v != 0 {
		t.Errorf("jobs inflight = %g, want 0", v)
	}

	// Hold a worker mid-job and park a request inside the SSE handler:
	// its in-flight gauge must show it.
	release := make(chan struct{})
	ts.s.testHookJobStart = func(*Job) { <-release }
	held := ts.submit(heldSpec(), http.StatusAccepted)
	stream, err := http.Get(ts.web.URL + "/v1/jobs/" + held.ID + "/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer stream.Body.Close()
	// The SSE request counts as in flight until the job finishes.
	deadline := 200
	for ; deadline > 0; deadline-- {
		if labeledValueOK(ts.metricsText(), `redhip_serve_http_inflight{endpoint="events"}`, 1) {
			break
		}
	}
	if deadline == 0 {
		t.Fatalf("events inflight never reached 1")
	}
	close(release)
	ts.waitState(held.ID, StateDone)
}

// heldSpec differs from smokeSpec so the two jobs don't dedup.
func heldSpec() Spec {
	return Spec{Workloads: []string{"milc"}, Schemes: []string{"base"}, Geometry: "smoke", RefsPerCore: 1000}
}

func labeledValueOK(text, sample string, want float64) bool {
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(sample) + ` (\S+)$`)
	m := re.FindStringSubmatch(text)
	if m == nil {
		return false
	}
	return m[1] == fmt.Sprintf("%g", want)
}
