package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"testing"
	"time"
)

// specWithSeed returns a one-run smoke spec distinguished by seed, so
// tests can mint arbitrarily many non-colliding jobs.
func specWithSeed(seed uint64) Spec {
	s := smokeSpec()
	s.Schemes = []string{"base"}
	s.Seed = seed
	return s
}

// deleteJob issues DELETE /v1/jobs/{id}.
func (ts *testServer) deleteJob(id string) Status {
	ts.t.Helper()
	req, _ := http.NewRequest(http.MethodDelete, ts.web.URL+"/v1/jobs/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		ts.t.Fatalf("DELETE: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		ts.t.Fatalf("DELETE = %d, want 200", resp.StatusCode)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		ts.t.Fatalf("decode cancel response: %v", err)
	}
	return st
}

// TestQueueFullBackpressure: with one busy worker and a single queue
// slot, the third submission gets 429 + Retry-After; cancelling the
// queued job frees its slot so the next submission is admitted.
func TestQueueFullBackpressure(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 1, QueueDepth: 1})
	release := make(chan struct{})
	entered := make(chan struct{}, 8)
	ts.s.testHookJobStart = func(*Job) {
		entered <- struct{}{}
		<-release
	}
	defer close(entered)

	running := ts.submit(specWithSeed(1), http.StatusAccepted)
	<-entered // worker occupied
	queued := ts.submit(specWithSeed(2), http.StatusAccepted)

	// Queue full: reject with 429 and a Retry-After hint.
	resp := ts.submitRaw(specWithSeed(3))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submission = %d, want 429", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	resp.Body.Close()
	if sec, err := strconv.Atoi(ra); err != nil || sec < 1 {
		t.Fatalf("Retry-After = %q, want integer >= 1", ra)
	}
	if v := ts.metricValue("redhip_serve_jobs_rejected_total"); v != 1 {
		t.Fatalf("jobs_rejected_total = %g, want 1", v)
	}

	// Cancelling the queued job frees its slot immediately.
	st := ts.deleteJob(queued.ID)
	if st.State != StateCancelled {
		t.Fatalf("cancelled job state = %q", st.State)
	}
	if d := ts.s.queue.depth(); d != 0 {
		t.Fatalf("queue depth after cancel = %d, want 0", d)
	}
	admitted := ts.submit(specWithSeed(4), http.StatusAccepted)

	close(release)
	ts.waitState(running.ID, StateDone)
	ts.waitState(admitted.ID, StateDone)
	if v := ts.metricValue("redhip_serve_jobs_cancelled_total"); v != 1 {
		t.Fatalf("jobs_cancelled_total = %g, want 1", v)
	}
}

// TestCancelRunning: DELETE on a running job cancels its context; the
// worker observes it between runs and the job ends "cancelled", not
// "done".
func TestCancelRunning(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 1, QueueDepth: 2})
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	ts.s.testHookJobStart = func(*Job) {
		started <- struct{}{}
		<-release
	}

	sub := ts.submit(specWithSeed(1), http.StatusAccepted)
	<-started
	ts.deleteJob(sub.ID)
	close(release)

	st := ts.waitState(sub.ID, StateCancelled)
	if st.Results != nil {
		t.Fatalf("cancelled job has results")
	}
	// A cancelled job's key is released: resubmission runs fresh.
	resub := ts.submit(specWithSeed(1), http.StatusAccepted)
	if resub.Deduped {
		t.Fatalf("resubmission after cancel was deduped")
	}
	ts.waitState(resub.ID, StateDone)
}

// TestJobTimeout: a spec-level timeout expires while the worker is
// held, and the job fails with a timeout error instead of hanging.
func TestJobTimeout(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 1, QueueDepth: 2})
	ts.s.testHookJobStart = func(*Job) {
		time.Sleep(80 * time.Millisecond) // outlive the 20ms budget below
	}
	spec := specWithSeed(1)
	spec.TimeoutSeconds = 0.02
	sub := ts.submit(spec, http.StatusAccepted)
	st := ts.waitState(sub.ID, StateFailed)
	if st.Error == "" {
		t.Fatalf("timeout job has empty error")
	}
}

// TestGracefulShutdown: in-flight jobs complete, queued jobs are
// cancelled, and new submissions are rejected while draining.
func TestGracefulShutdown(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 1, QueueDepth: 4})
	release := make(chan struct{})
	entered := make(chan struct{}, 8)
	ts.s.testHookJobStart = func(*Job) {
		entered <- struct{}{}
		<-release
	}

	inflight := ts.submit(specWithSeed(1), http.StatusAccepted)
	<-entered
	queued := ts.submit(specWithSeed(2), http.StatusAccepted)

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownErr <- ts.s.Shutdown(ctx)
	}()

	// Shutdown flips the stopping flag synchronously; wait for it to be
	// visible, then verify new work is rejected.
	waitFor(t, func() bool { return ts.s.stopping.Load() })
	resp := ts.submitRaw(specWithSeed(3))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submission while draining = %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()

	// The queued job is cancelled by the drain without ever running.
	st := ts.waitState(queued.ID, StateCancelled)
	if st.StartedAt != nil {
		t.Fatalf("queued job ran during shutdown")
	}

	close(release)
	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// The in-flight job completed with full results.
	fin := ts.status(inflight.ID)
	if fin.State != StateDone || len(fin.Results) != 1 {
		t.Fatalf("in-flight job after drain: state=%q results=%d", fin.State, len(fin.Results))
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("condition not reached in time")
}

// TestQueueUnit exercises the deque directly: FIFO order, slot
// accounting on remove, and close-drains semantics.
func TestQueueUnit(t *testing.T) {
	q := newJobQueue(2)
	a := newJob("a", smokeSpec(), time.Now())
	b := newJob("b", smokeSpec(), time.Now())
	c := newJob("c", smokeSpec(), time.Now())
	if err := q.push(a); err != nil {
		t.Fatal(err)
	}
	if err := q.push(b); err != nil {
		t.Fatal(err)
	}
	if err := q.push(c); err != ErrQueueFull {
		t.Fatalf("push over capacity = %v, want ErrQueueFull", err)
	}
	if !q.remove(a) {
		t.Fatalf("remove(a) failed")
	}
	if q.remove(a) {
		t.Fatalf("double remove(a) succeeded")
	}
	if err := q.push(c); err != nil {
		t.Fatalf("push after remove: %v", err)
	}
	got, ok := q.pop()
	if !ok || got != b {
		t.Fatalf("pop = %v, want b", got)
	}
	drained := q.close()
	if len(drained) != 1 || drained[0] != c {
		t.Fatalf("close drained %d jobs, want [c]", len(drained))
	}
	if _, ok := q.pop(); ok {
		t.Fatalf("pop after close returned a job")
	}
	if err := q.push(a); err != ErrShuttingDown {
		t.Fatalf("push after close = %v, want ErrShuttingDown", err)
	}
}
