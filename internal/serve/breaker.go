package serve

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// breakerState is one scheme's circuit position.
type breakerState int

const (
	// breakerClosed admits normally; consecutive run failures count
	// toward the threshold.
	breakerClosed breakerState = iota
	// breakerHalfOpen admits probes after the cooldown: the next run
	// outcome for the scheme decides between closed and open.
	breakerHalfOpen
	// breakerOpen sheds every admission naming the scheme with 503 +
	// Retry-After until the cooldown elapses.
	breakerOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerHalfOpen:
		return "half-open"
	case breakerOpen:
		return "open"
	}
	return fmt.Sprintf("breakerState(%d)", int(s))
}

// breakerOpenError is the admission verdict for a shed job; handlers
// map it to 503 with Retry-After = ceil(RetryAfter seconds).
type breakerOpenError struct {
	Scheme     string
	RetryAfter time.Duration
}

func (e *breakerOpenError) Error() string {
	return fmt.Sprintf("serve: circuit breaker open for scheme %q (retry in %s)", e.Scheme, e.RetryAfter.Round(time.Second))
}

// schemeBreaker is one scheme's circuit.
type schemeBreaker struct {
	state    breakerState
	fails    int // consecutive run failures while closed
	openedAt time.Time
}

// breaker is the per-scheme circuit breaker: repeated run failures
// under one scheme trip its circuit, and admissions naming a tripped
// scheme are shed instead of burning worker slots on a sweep that is
// currently failing (a poisoned geometry, a faulty backend, an
// injected chaos schedule). State is per scheme because failures are:
// a broken "cbf" sweep says nothing about "redhip" jobs.
//
// The state machine is the classic three-state breaker: closed ->
// (threshold consecutive run failures) -> open -> (cooldown elapses)
// -> half-open -> one run outcome -> closed or open again. Half-open
// admits traffic rather than a single bookkept probe: the first run
// outcome for the scheme decides, which keeps admission unwind paths
// (queue full, shed) free of probe-token leaks.
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injected by tests for deterministic cooldowns
	schemes   map[string]*schemeBreaker
	trips     uint64
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{
		threshold: threshold,
		cooldown:  cooldown,
		now:       time.Now,
		schemes:   make(map[string]*schemeBreaker),
	}
}

// allow admits or sheds a job naming the given schemes. An open
// circuit past its cooldown flips to half-open and admits; an open
// circuit inside the cooldown sheds with the remaining wait.
func (b *breaker) allow(schemes []string) error {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, sc := range schemes {
		sb := b.schemes[sc]
		if sb == nil || sb.state != breakerOpen {
			continue
		}
		since := b.now().Sub(sb.openedAt)
		if since >= b.cooldown {
			sb.state = breakerHalfOpen
			continue
		}
		return &breakerOpenError{Scheme: sc, RetryAfter: b.cooldown - since}
	}
	return nil
}

// onRun feeds one run outcome into the scheme's circuit. Successes
// close it and reset the failure streak; failures extend the streak,
// trip the circuit at the threshold, and re-trip a half-open circuit
// immediately.
func (b *breaker) onRun(scheme string, failed bool) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	sb := b.schemes[scheme]
	if !failed {
		if sb != nil {
			sb.state = breakerClosed
			sb.fails = 0
		}
		return
	}
	if sb == nil {
		sb = &schemeBreaker{}
		b.schemes[scheme] = sb
	}
	switch sb.state {
	case breakerHalfOpen:
		sb.state = breakerOpen
		sb.openedAt = b.now()
		b.trips++
	case breakerClosed:
		sb.fails++
		if sb.fails >= b.threshold {
			sb.state = breakerOpen
			sb.openedAt = b.now()
			b.trips++
		}
	case breakerOpen:
		// Stragglers from jobs admitted before the trip; the cooldown
		// window is not extended — bounded shed time mirrors bounded
		// staleness everywhere else in the system.
	}
}

// openSchemes returns the schemes whose circuit is currently open
// (inside its cooldown), sorted — the readiness probe's shed signal.
func (b *breaker) openSchemes() []string {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []string
	for sc, sb := range b.schemes {
		if sb.state == breakerOpen && b.now().Sub(sb.openedAt) < b.cooldown {
			out = append(out, sc)
		}
	}
	sort.Strings(out)
	return out
}

// tripCount returns how many times any circuit has tripped.
func (b *breaker) tripCount() uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}
