package serve

import "encoding/json"

// eventLog is the append-only progress log shared by jobs and sweeps:
// a monotone event sequence plus live fan-out to subscribers, with
// replay-then-live semantics (late subscribers replay the log from the
// start, so no event is ever lost to subscription timing).
//
// The log deliberately has no mutex of its own: every method carries
// the Locked suffix and requires the owner's mutex held, so the owner
// can make a state transition and its event land atomically — a
// subscriber can never observe a terminal state whose event is missing
// from the log. Job guards its log with Job.mu, sweepRun with
// sweepRun.mu.
type eventLog struct {
	events []Event
	subs   map[chan Event]bool
}

// appendLocked marshals payload, appends the event and fans it out to
// live subscribers. A subscriber too slow to keep up is dropped (its
// channel closed) rather than blocking the publisher; it can reconnect
// and replay. When terminal is true every remaining subscriber is
// closed after delivery — the log is complete.
func (l *eventLog) appendLocked(typ string, payload any, terminal bool) {
	data, err := json.Marshal(payload)
	if err != nil {
		data = []byte(`{}`)
	}
	ev := Event{ID: len(l.events) + 1, Type: typ, Data: data}
	l.events = append(l.events, ev)
	for ch := range l.subs {
		select {
		case ch <- ev:
		default:
			// Slow subscriber: drop it rather than block the worker. It
			// can reconnect and replay the log.
			close(ch)
			delete(l.subs, ch)
		}
	}
	if terminal {
		for ch := range l.subs {
			close(ch)
			delete(l.subs, ch)
		}
	}
}

// subscribeLocked returns a copy of the log so far plus a live channel.
// When the owner is already terminal the channel comes back closed —
// replay is the whole story. The caller must eventually pass the
// channel to unsubscribeLocked (under the owner's mutex) unless it was
// closed by a terminal event.
func (l *eventLog) subscribeLocked(terminal bool) (replay []Event, ch chan Event) {
	replay = make([]Event, len(l.events))
	copy(replay, l.events)
	ch = make(chan Event, 256)
	if terminal {
		close(ch)
		return replay, ch
	}
	if l.subs == nil {
		l.subs = make(map[chan Event]bool)
	}
	l.subs[ch] = true
	return replay, ch
}

// unsubscribeLocked detaches a live subscriber early. Safe to call
// after a terminal close (the subscription is already gone then).
func (l *eventLog) unsubscribeLocked(ch chan Event) {
	if l.subs[ch] {
		delete(l.subs, ch)
		close(ch)
	}
}
