package serve

import (
	"fmt"
	"sync"
	"time"
)

// jobStore indexes jobs by ID (lookup) and by dedup key
// (single-flight). It bounds residency: terminal jobs beyond maxJobs
// are evicted oldest-first; live (queued/running) jobs are never
// evicted, so an ID handed to a client stays resolvable until its job
// ends and ages out.
type jobStore struct {
	mu      sync.Mutex
	nextID  uint64
	byID    map[string]*Job
	byKey   map[string]*Job
	order   []*Job // insertion order, the eviction scan order
	maxJobs int
}

func newJobStore(maxJobs int) *jobStore {
	return &jobStore{
		byID:    make(map[string]*Job),
		byKey:   make(map[string]*Job),
		maxJobs: maxJobs,
	}
}

// resolve is the single-flight heart of dedup: under one lock it either
// attaches the submission to the job currently owning the spec's key
// (queued, running, or completed-and-cached) or registers a fresh job.
// created=false means the caller must not enqueue anything.
func (st *jobStore) resolve(spec Spec, now time.Time) (j *Job, created bool) {
	key := spec.key()
	st.mu.Lock()
	defer st.mu.Unlock()
	if existing := st.byKey[key]; existing != nil {
		existing.attach()
		return existing, false
	}
	st.nextID++
	j = newJob(fmt.Sprintf("job-%06d", st.nextID), spec, now)
	st.byID[j.ID] = j
	st.byKey[key] = j
	st.order = append(st.order, j)
	st.evictLocked()
	return j, true
}

// get looks a job up by ID.
func (st *jobStore) get(id string) *Job {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.byID[id]
}

// release drops the key -> job binding when a job ends in a state whose
// result cannot be reused (failed or cancelled): the next identical
// submission gets a fresh execution, mirroring tracestore's
// failed-materialisation retry. Done jobs keep their binding — that is
// the LRU result cache.
func (st *jobStore) release(j *Job) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.byKey[j.Key] == j {
		delete(st.byKey, j.Key)
	}
}

// evictLocked trims terminal jobs, oldest first, down to maxJobs
// residents. Live jobs are skipped; they age out after finishing.
func (st *jobStore) evictLocked() {
	if len(st.order) <= st.maxJobs {
		return
	}
	kept := st.order[:0]
	excess := len(st.order) - st.maxJobs
	for _, j := range st.order {
		if excess > 0 && j.stateNow().terminal() {
			delete(st.byID, j.ID)
			if st.byKey[j.Key] == j {
				delete(st.byKey, j.Key)
			}
			excess--
			continue
		}
		kept = append(kept, j)
	}
	st.order = kept
}

// list snapshots all resident jobs in insertion order.
func (st *jobStore) list() []*Job {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]*Job, len(st.order))
	copy(out, st.order)
	return out
}

// size returns the resident job count.
func (st *jobStore) size() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.order)
}
