package serve

import (
	"fmt"
	"sync"
	"time"
)

// jobStore indexes jobs by ID (lookup) and by dedup key
// (single-flight). It bounds residency: terminal jobs beyond maxJobs
// are evicted oldest-first; live (queued/running) jobs are never
// evicted, so an ID handed to a client stays resolvable until its job
// ends and ages out.
type jobStore struct {
	mu      sync.Mutex
	nextID  uint64          //redhip:guardedby mu
	byID    map[string]*Job //redhip:guardedby mu
	byKey   map[string]*Job //redhip:guardedby mu
	order   []*Job          //redhip:guardedby mu // insertion order, the eviction scan order
	maxJobs int
}

func newJobStore(maxJobs int) *jobStore {
	return &jobStore{
		byID:    make(map[string]*Job),
		byKey:   make(map[string]*Job),
		maxJobs: maxJobs,
	}
}

// resolve is the single-flight heart of dedup: under one lock it either
// attaches the submission to the job currently owning the spec's key
// (queued, running, or completed-and-cached) or registers a fresh job.
// created=false means the caller must not enqueue anything.
//
// admit, when non-nil, gates creation only: it runs under st.mu after
// the dedup check, so breaker/shed verdicts apply to genuinely new
// work (a dedup hit costs nothing and is never shed) and a shed
// reservation can never race another admission of the same spec.
// estBytes is the reservation a successful admit made; it lands on the
// job so finalize can release it exactly once.
func (st *jobStore) resolve(spec Spec, estBytes uint64, now time.Time, admit func() error) (j *Job, created bool, err error) {
	key := spec.key()
	st.mu.Lock()
	defer st.mu.Unlock()
	if existing := st.byKey[key]; existing != nil {
		existing.attach()
		return existing, false, nil
	}
	if admit != nil {
		if err := admit(); err != nil {
			return nil, false, err
		}
	}
	st.nextID++
	j = newJob(fmt.Sprintf("job-%06d", st.nextID), spec, now)
	j.estBytes = estBytes
	st.byID[j.ID] = j
	st.byKey[key] = j
	st.order = append(st.order, j)
	st.evictLocked()
	return j, true, nil
}

// get looks a job up by ID.
func (st *jobStore) get(id string) *Job {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.byID[id]
}

// finishRelease applies a terminal transition whose result cannot be
// reused (failed or cancelled) and drops the key -> job binding, both
// under one store lock. The next identical submission then gets a
// fresh execution, mirroring tracestore's failed-materialisation
// retry; done jobs keep their binding — that is the LRU result cache.
//
// The single hold is the dedup-wedge fix: with the transition and the
// key release split across two lock acquisitions, a submission could
// attach to a job that had already failed terminally — its SSE
// subscribers closed, its slot gone — and wait forever on a corpse.
// Here no resolve can observe a terminally-failed job that still owns
// its key. Lock order st.mu -> j.mu matches resolve and evictLocked.
func (st *jobStore) finishRelease(j *Job, state State, errMsg string, now time.Time) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	won := j.finish(state, errMsg, nil, now)
	if won && st.byKey[j.Key] == j {
		delete(st.byKey, j.Key)
	}
	return won
}

// evictLocked trims terminal jobs, oldest first, down to maxJobs
// residents. Live jobs are skipped; they age out after finishing.
func (st *jobStore) evictLocked() {
	if len(st.order) <= st.maxJobs {
		return
	}
	kept := st.order[:0]
	excess := len(st.order) - st.maxJobs
	for _, j := range st.order {
		if excess > 0 && j.stateNow().terminal() {
			delete(st.byID, j.ID)
			if st.byKey[j.Key] == j {
				delete(st.byKey, j.Key)
			}
			excess--
			continue
		}
		kept = append(kept, j)
	}
	st.order = kept
}

// runningStarts returns the start times of all currently running jobs
// — the inputs to the Retry-After in-flight-remainder estimate. Lock
// order st.mu -> j.mu matches resolve and evictLocked.
func (st *jobStore) runningStarts() []time.Time {
	st.mu.Lock()
	defer st.mu.Unlock()
	var out []time.Time
	for _, j := range st.order {
		if t, ok := j.runningSince(); ok {
			out = append(out, t)
		}
	}
	return out
}

// list snapshots all resident jobs in insertion order.
func (st *jobStore) list() []*Job {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]*Job, len(st.order))
	copy(out, st.order)
	return out
}

// size returns the resident job count.
func (st *jobStore) size() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.order)
}
