// Package serve is the repo's first serving-side subsystem: a
// stdlib-only HTTP service that accepts simulation sweep jobs as JSON,
// runs them on a bounded worker pool backed by experiment.Runner and a
// process-wide tracestore (so identical streams materialise once per
// process), and exposes status polling, Server-Sent-Events progress
// streaming and a Prometheus-text /metrics endpoint.
//
// Production shape (DESIGN.md §11):
//   - Admission control: a bounded FIFO queue; a full queue rejects
//     with 429 and a Retry-After estimate instead of buffering without
//     bound.
//   - Deduplication: jobs are keyed by a canonical hash of their
//     normalised spec. A submission whose key matches a queued,
//     running or cached-complete job attaches to it (single-flight
//     onto an LRU-bounded job store) instead of re-running.
//   - Cancellation: DELETE frees a queued job's slot immediately and
//     cancels a running job's context (taking effect between runs).
//   - Graceful shutdown: new submissions are rejected, queued jobs are
//     cancelled, in-flight jobs drain to completion.
//
// Unlike the simulation packages, serve legitimately reads the wall
// clock and spawns goroutines; redhip-lint's determinism analyzer
// excludes it by name (analysis.ServingPackages).
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"redhip/internal/sim"
	"redhip/internal/tracestore"
	"redhip/internal/workload"
)

// Spec is the request body of POST /v1/jobs: a sim.Config-shaped sweep
// description. Zero values mean "use the geometry preset's default".
type Spec struct {
	// Workloads to sweep; required, each must be a known benchmark name.
	Workloads []string `json:"workloads"`
	// Schemes to evaluate per workload; default all five.
	Schemes []string `json:"schemes,omitempty"`
	// Geometry preset the config derives from: "paper", "scaled"
	// (default) or "smoke".
	Geometry string `json:"geometry,omitempty"`
	// Inclusion policy: "inclusive" (default), "hybrid" or "exclusive".
	Inclusion string `json:"inclusion,omitempty"`
	// Seed feeds the workload generators (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// RefsPerCore overrides the preset's simulation length.
	RefsPerCore uint64 `json:"refs_per_core,omitempty"`
	// WarmupRefsPerCore runs untimed warm-up references per core.
	WarmupRefsPerCore uint64 `json:"warmup_refs_per_core,omitempty"`
	// Cores overrides the preset's core count.
	Cores int `json:"cores,omitempty"`
	// Prefetch enables the stride prefetcher.
	Prefetch bool `json:"prefetch,omitempty"`
	// TimeoutSeconds bounds the job's execution (not queue wait).
	// Excluded from the dedup key: two specs that differ only in
	// timeout would produce bit-identical results.
	TimeoutSeconds float64 `json:"timeout_seconds,omitempty"`
	// Retry, when set, re-executes the job on retryable failures.
	// Execution-only like TimeoutSeconds, so it is excluded from the
	// dedup key: retried or not, results are bit-identical.
	Retry *RetryPolicy `json:"retry,omitempty"`
}

// RetryPolicy bounds automatic re-execution of a failed job. Attempts
// back off exponentially from BackoffMS (doubling per attempt, capped
// at MaxBackoffMS) with deterministic jitter derived from the job key,
// so a replayed chaos schedule backs off identically. Cancellations
// and timeouts are never retried — only failures that could plausibly
// be transient.
type RetryPolicy struct {
	// MaxAttempts is the total execution budget, first try included.
	// Must be >= 1; the server additionally caps it with
	// Options.RetryMaxAttempts.
	MaxAttempts int `json:"max_attempts"`
	// BackoffMS is the base delay before the second attempt
	// (default 100).
	BackoffMS int `json:"backoff_ms,omitempty"`
	// MaxBackoffMS caps the exponential growth (default 5000).
	MaxBackoffMS int `json:"max_backoff_ms,omitempty"`
}

// normalize fills defaults, validates every field and returns the spec
// in canonical form (explicit schemes, geometry and inclusion; duplicate
// workloads/schemes removed, order preserved). The canonical form is
// what the dedup key hashes, so "schemes omitted" and "all five schemes
// spelled out" collide — that sharing is the point.
func (s Spec) normalize() (Spec, error) {
	if len(s.Workloads) == 0 {
		return Spec{}, fmt.Errorf("serve: spec requires at least one workload")
	}
	known := make(map[string]bool)
	for _, name := range workload.BenchmarkNames() {
		known[name] = true
	}
	s.Workloads = dedupe(s.Workloads)
	for _, w := range s.Workloads {
		if !known[w] {
			return Spec{}, fmt.Errorf("serve: unknown workload %q", w)
		}
	}
	if len(s.Schemes) == 0 {
		for _, sc := range sim.Schemes() {
			s.Schemes = append(s.Schemes, sc.String())
		}
	}
	s.Schemes = dedupe(s.Schemes)
	for _, name := range s.Schemes {
		if _, err := parseScheme(name); err != nil {
			return Spec{}, err
		}
	}
	if s.Geometry == "" {
		s.Geometry = "scaled"
	}
	if _, err := configFor(s.Geometry); err != nil {
		return Spec{}, err
	}
	if s.Inclusion == "" {
		s.Inclusion = "inclusive"
	}
	if _, err := parseInclusion(s.Inclusion); err != nil {
		return Spec{}, err
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Cores < 0 {
		return Spec{}, fmt.Errorf("serve: cores must be >= 0, got %d", s.Cores)
	}
	if s.TimeoutSeconds < 0 {
		return Spec{}, fmt.Errorf("serve: timeout_seconds must be >= 0, got %g", s.TimeoutSeconds)
	}
	if s.Retry != nil {
		r := *s.Retry // copy so normalisation never mutates the caller's policy
		if r.MaxAttempts < 1 {
			return Spec{}, fmt.Errorf("serve: retry.max_attempts must be >= 1, got %d", r.MaxAttempts)
		}
		if r.BackoffMS < 0 || r.MaxBackoffMS < 0 {
			return Spec{}, fmt.Errorf("serve: retry backoff values must be >= 0")
		}
		if r.BackoffMS == 0 {
			r.BackoffMS = 100
		}
		if r.MaxBackoffMS == 0 {
			r.MaxBackoffMS = 5000
		}
		if r.MaxBackoffMS < r.BackoffMS {
			return Spec{}, fmt.Errorf("serve: retry.max_backoff_ms (%d) below retry.backoff_ms (%d)", r.MaxBackoffMS, r.BackoffMS)
		}
		s.Retry = &r
	}
	// Every (scheme, inclusion, overrides) combination must be a valid
	// sim.Config — rejecting impossible sweeps (CBF under a fully
	// exclusive hierarchy, say) at admission beats failing the job
	// after it waited through the queue.
	for _, name := range s.Schemes {
		cfg, err := s.configForScheme(name)
		if err != nil {
			return Spec{}, err
		}
		if err := cfg.Validate(); err != nil {
			return Spec{}, fmt.Errorf("serve: scheme %s: %w", name, err)
		}
	}
	return s, nil
}

// Normalized is the exported face of normalize for the cluster router:
// the router must canonicalise a spec the same way a replica will, so
// the key it hashes for ring placement equals the key the replica
// dedups on. It also forwards the *normalised* spec to replicas, which
// keeps the key stable across a re-home even if normalisation defaults
// ever change between submissions.
func (s Spec) Normalized() (Spec, error) { return s.normalize() }

// CanonicalKey is the exported face of key. The receiver must already
// be normalised (by Normalized); keying a raw spec would let "schemes
// omitted" and "all schemes spelled out" land on different replicas.
func (s Spec) CanonicalKey() string { return s.key() }

// configForScheme builds the full sim.Config one (workload-independent)
// run of this spec uses. The spec must be normalised.
func (s Spec) configForScheme(scheme string) (sim.Config, error) {
	cfg, err := configFor(s.Geometry)
	if err != nil {
		return sim.Config{}, err
	}
	if cfg.Scheme, err = parseScheme(scheme); err != nil {
		return sim.Config{}, err
	}
	if cfg.Inclusion, err = parseInclusion(s.Inclusion); err != nil {
		return sim.Config{}, err
	}
	if s.RefsPerCore > 0 {
		cfg.RefsPerCore = s.RefsPerCore
	}
	if s.Cores > 0 {
		cfg.Cores = s.Cores
	}
	cfg.WarmupRefsPerCore = s.WarmupRefsPerCore
	cfg.EnablePrefetch = s.Prefetch
	return cfg, nil
}

// runs returns the job's total run count: |workloads| x |schemes|.
func (s Spec) runs() int { return len(s.Workloads) * len(s.Schemes) }

// estimateTraceBytes is the job's worst-case resident trace footprint:
// every workload's per-core streams materialised at once. Schemes
// share a workload's trace (the tracestore's whole point), so the
// scheme count does not multiply the estimate. The spec must be
// normalised; the byte-budget load shedder reserves this at admission.
func (s Spec) estimateTraceBytes() uint64 {
	cfg, err := configFor(s.Geometry)
	if err != nil {
		return 0 // unreachable on a normalised spec
	}
	if s.RefsPerCore > 0 {
		cfg.RefsPerCore = s.RefsPerCore
	}
	if s.Cores > 0 {
		cfg.Cores = s.Cores
	}
	refs := cfg.RefsPerCore + s.WarmupRefsPerCore
	return uint64(len(s.Workloads)) * uint64(cfg.Cores) * refs * tracestore.RecordBytes
}

// key returns the dedup key: a short hex SHA-256 of the canonical JSON
// encoding of the normalised spec, with execution-only fields
// (TimeoutSeconds, Retry) zeroed so they do not split
// otherwise-identical jobs.
func (s Spec) key() string {
	s.TimeoutSeconds = 0
	s.Retry = nil
	b, err := json.Marshal(s)
	if err != nil {
		// A Spec is plain data; Marshal cannot fail. Keep the error
		// path total anyway.
		panic(fmt.Sprintf("serve: marshal spec: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:8])
}

// dedupe removes duplicates preserving first-occurrence order.
func dedupe(in []string) []string {
	out := make([]string, 0, len(in))
	seen := make(map[string]bool, len(in))
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

func configFor(geometry string) (sim.Config, error) {
	switch geometry {
	case "paper":
		return sim.Paper(), nil
	case "scaled":
		return sim.Scaled(), nil
	case "smoke":
		return sim.Smoke(), nil
	default:
		return sim.Config{}, fmt.Errorf("serve: unknown geometry %q (want paper, scaled or smoke)", geometry)
	}
}

func parseScheme(name string) (sim.Scheme, error) {
	for _, sc := range sim.Schemes() {
		if sc.String() == name {
			return sc, nil
		}
	}
	return 0, fmt.Errorf("serve: unknown scheme %q", name)
}

func parseInclusion(name string) (sim.InclusionPolicy, error) {
	for _, p := range []sim.InclusionPolicy{sim.Inclusive, sim.Hybrid, sim.Exclusive} {
		if p.String() == name {
			return p, nil
		}
	}
	return 0, fmt.Errorf("serve: unknown inclusion policy %q", name)
}
