//go:build faultinject

// Chaos harness: replay a seeded fault schedule against a live server
// under -race and assert the resilience invariants the production
// build promises — no leaked worker slots, no wedged dedup keys, no
// truncated event logs, and bit-identical results for every job that
// eventually succeeds. Runs only with `go test -tags faultinject`.
package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"redhip/internal/faultinject"
)

// chaosSpec returns the i-th distinct chaos job: a smoke-geometry
// sweep with an aggressive (but bounded) retry policy.
func chaosSpec(i int) Spec {
	s := specWithSeed(uint64(1000 + i))
	s.Retry = &RetryPolicy{MaxAttempts: 6, BackoffMS: 1, MaxBackoffMS: 4}
	return s
}

// canonicalResults renders a job's results with nondeterministic
// host-side measurements excluded (PerfStats is json:"-"), so equality
// is bit-equality of the simulated outcome.
func canonicalResults(t *testing.T, st Status) []byte {
	t.Helper()
	b, err := json.Marshal(st.Results)
	if err != nil {
		t.Fatalf("marshal results: %v", err)
	}
	return b
}

// TestChaosSweep is the acceptance drill from DESIGN.md §12: 200
// submissions against a server whose runner, trace store and worker
// paths all fail on a deterministic schedule.
func TestChaosSweep(t *testing.T) {
	const jobs = 200
	in := faultinject.New(0xC0FFEE,
		faultinject.Rule{Point: faultinject.PointExperimentRun, Prob: 0.15, Err: "chaos: run error"},
		faultinject.Rule{Point: faultinject.PointExperimentRun, Prob: 0.05, Panic: "chaos: run panic"},
		faultinject.Rule{Point: faultinject.PointTracestoreMaterialize, Prob: 0.2, Err: "chaos: materialisation error"},
		faultinject.Rule{Point: faultinject.PointServeWorker, Prob: 0.3, Delay: time.Millisecond},
	)
	// The tracestore point fires through the process-global injector, so
	// the schedule is installed globally; the server picks it up the
	// same way (Options.Fault nil -> faultinject.Active()).
	prev := faultinject.Set(in)
	t.Cleanup(func() { faultinject.Set(prev) })

	ts := newTestServer(t, Options{
		Workers:    4,
		QueueDepth: 256,
		// The drill wants every job admitted and executed to a terminal
		// state: breaker/shed 503s would just thin the sample.
		BreakerThreshold:  -1,
		MemoryBudgetBytes: -1,
		RetryMaxAttempts:  6,
	})

	ids := make([]string, jobs)
	for i := 0; i < jobs; i++ {
		sub := ts.submit(chaosSpec(i), http.StatusAccepted)
		if sub.Deduped {
			t.Fatalf("chaos spec %d unexpectedly deduped", i)
		}
		ids[i] = sub.ID
	}

	final := make([]Status, jobs)
	var failed []int
	for i, id := range ids {
		st := ts.status(id)
		deadline := time.Now().Add(120 * time.Second)
		for !st.State.terminal() {
			if time.Now().After(deadline) {
				t.Fatalf("job %s wedged in %q — leaked slot or stuck retry", id, st.State)
			}
			time.Sleep(2 * time.Millisecond)
			st = ts.status(id)
		}
		switch st.State {
		case StateDone:
		case StateFailed:
			failed = append(failed, i)
		default:
			t.Fatalf("job %s ended %q under chaos (nothing cancels)", id, st.State)
		}
		final[i] = st
	}
	t.Logf("chaos: %d/%d jobs failed terminally, retries=%g, panics=%g",
		len(failed), jobs,
		ts.metricValue("redhip_serve_retries_total"),
		ts.metricValue("redhip_serve_worker_panics_total"))
	if v := ts.metricValue("redhip_serve_retries_total"); v == 0 {
		t.Fatalf("no retries under a 20%%+ fault schedule — injection not wired")
	}

	// Every event log must be contiguous from 1 with exactly one
	// terminal event, and it must be last: a truncated or double-closed
	// SSE replay is how a client sees a corrupted job.
	for i, id := range ids {
		replay, live, unsub := ts.s.store.get(id).subscribe()
		unsub()
		if _, ok := <-live; ok {
			t.Fatalf("job %s: live channel open after terminal state", id)
		}
		terminals := 0
		for k, ev := range replay {
			if ev.ID != k+1 {
				t.Fatalf("job %s: event %d has id %d — log truncated or reordered", id, k, ev.ID)
			}
			switch ev.Type {
			case "done", "failed", "cancelled":
				terminals++
			}
		}
		if terminals != 1 || len(replay) == 0 {
			t.Fatalf("job %s: %d terminal events in a %d-event log", id, terminals, len(replay))
		}
		last := replay[len(replay)-1].Type
		if last != string(final[i].State) {
			t.Fatalf("job %s: last event %q, state %q", id, last, final[i].State)
		}
	}

	// End of chaos. Everything below must behave like a healthy server.
	in.Stop()

	// No leaked worker slots: one fresh job per worker completes.
	for i := 0; i < 4; i++ {
		sub := ts.submit(specWithSeed(uint64(5000+i)), http.StatusAccepted)
		ts.waitState(sub.ID, StateDone)
	}

	// No wedged dedup keys: every terminally-failed spec resubmits as a
	// fresh job — and now succeeds.
	for _, i := range failed {
		sub := ts.submit(chaosSpec(i), http.StatusAccepted)
		if sub.Deduped {
			t.Fatalf("failed spec %d still holds its dedup key", i)
		}
		final[i] = ts.waitState(sub.ID, StateDone)
	}

	// Bit-identical results: a fault-free reference server must agree
	// with every job that succeeded through (or after) the chaos.
	ref := newTestServer(t, Options{Workers: 4, QueueDepth: 256})
	for i := 0; i < jobs; i++ {
		sub := ref.submit(chaosSpec(i), http.StatusAccepted)
		want := ref.waitState(sub.ID, StateDone)
		if got, ref := canonicalResults(t, final[i]), canonicalResults(t, want); !bytes.Equal(got, ref) {
			t.Fatalf("job %d: chaos-survivor results diverge from fault-free reference\nchaos: %s\nref:   %s", i, got, ref)
		}
	}
}

// TestChaosAdmitAndSSEPoints covers the two serve-layer points the
// sweep leaves quiet: an injected admission fault is a clean 503 (no
// residue — the same spec admits next try), and an injected SSE fault
// rejects the stream without touching the job.
func TestChaosAdmitAndSSEPoints(t *testing.T) {
	in := faultinject.New(7,
		faultinject.Rule{Point: faultinject.PointServeAdmit, Times: 1, Err: "chaos: admission fault"},
		faultinject.Rule{Point: faultinject.PointServeSSE, Times: 1, Err: "chaos: sse fault"},
	)
	ts := newTestServer(t, Options{Workers: 1, QueueDepth: 4, Fault: in})

	resp := ts.submitRaw(specWithSeed(1))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("injected admission fault = %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()

	sub := ts.submit(specWithSeed(1), http.StatusAccepted)
	if sub.Deduped {
		t.Fatalf("faulted admission left residue: retry deduped")
	}
	st := ts.waitState(sub.ID, StateDone)

	sse, err := http.Get(ts.web.URL + "/v1/jobs/" + sub.ID + "/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	sse.Body.Close()
	if sse.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("injected SSE fault = %d, want 503", sse.StatusCode)
	}
	sse, err = http.Get(ts.web.URL + "/v1/jobs/" + sub.ID + "/events")
	if err != nil {
		t.Fatalf("GET events retry: %v", err)
	}
	defer sse.Body.Close()
	if sse.StatusCode != http.StatusOK {
		t.Fatalf("SSE after exhausted rule = %d, want 200", sse.StatusCode)
	}
	if st.State != StateDone {
		t.Fatalf("job disturbed by SSE fault: %q", st.State)
	}
}
