package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	"redhip/internal/sweep"
)

// smokeGrid is a small sweep every test can afford: two workloads x
// two seeds of the smoke geometry under two schemes = 4 children,
// 8 runs.
func smokeGrid() sweep.Grid {
	return sweep.Grid{
		Workloads:   []string{"mcf", "milc"},
		Schemes:     []string{"base", "redhip"},
		Geometries:  []string{"smoke"},
		Seeds:       []uint64{1, 2},
		RefsPerCore: []uint64{2000},
	}
}

// submitSweep POSTs a grid and returns the decoded response, failing
// unless the status matches want.
func (ts *testServer) submitSweep(g sweep.Grid, want int) sweepSubmitResponse {
	ts.t.Helper()
	body, _ := json.Marshal(g)
	resp, err := http.Post(ts.web.URL+"/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		ts.t.Fatalf("POST /v1/sweeps: %v", err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != want {
		ts.t.Fatalf("POST /v1/sweeps = %d, want %d (body %s)", resp.StatusCode, want, raw)
	}
	var out sweepSubmitResponse
	if want == http.StatusAccepted {
		if err := json.Unmarshal(raw, &out); err != nil {
			ts.t.Fatalf("decode sweep response: %v", err)
		}
	}
	return out
}

// sweepStatus GETs a sweep's status.
func (ts *testServer) sweepStatus(id string) SweepStatus {
	ts.t.Helper()
	var st SweepStatus
	ts.getJSON("/v1/sweeps/"+id, &st)
	return st
}

// waitSweep polls until the sweep reaches a terminal state.
func (ts *testServer) waitSweep(id string, want State) SweepStatus {
	ts.t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st := ts.sweepStatus(id)
		if st.State == want {
			return st
		}
		if st.State.terminal() {
			ts.t.Fatalf("sweep %s reached %q (err %q), want %q", id, st.State, st.Error, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	ts.t.Fatalf("sweep %s did not reach %q in time", id, want)
	return SweepStatus{}
}

// sweepArtifactsText GETs the rendered artifact block.
func (ts *testServer) sweepArtifactsText(id string) string {
	ts.t.Helper()
	resp, err := http.Get(ts.web.URL + "/v1/sweeps/" + id + "/artifacts?format=text")
	if err != nil {
		ts.t.Fatalf("GET artifacts: %v", err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		ts.t.Fatalf("GET artifacts = %d (body %s)", resp.StatusCode, raw)
	}
	return string(raw)
}

func TestSweepEndToEnd(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 2, QueueDepth: 16})
	sub := ts.submitSweep(smokeGrid(), http.StatusAccepted)
	if sub.Children != 4 || sub.Runs != 8 {
		t.Fatalf("sweep sized %d children / %d runs, want 4 / 8", sub.Children, sub.Runs)
	}

	st := ts.waitSweep(sub.ID, StateDone)
	if st.Counts.Done != 4 || st.Counts.Failed != 0 {
		t.Fatalf("terminal counts %+v", st.Counts)
	}
	if !st.ArtifactsReady {
		t.Fatalf("done sweep has no artifacts")
	}
	if len(st.ChildJobs) != 4 {
		t.Fatalf("status lists %d children", len(st.ChildJobs))
	}
	for _, c := range st.ChildJobs {
		if c.State != string(StateDone) || c.Job == "" {
			t.Fatalf("child %+v not done with a job binding", c)
		}
		// Children went through the real admission path: their jobs are
		// first-class, resolvable by ID.
		if got := ts.status(c.Job); got.State != StateDone {
			t.Fatalf("child job %s is %q", c.Job, got.State)
		}
	}

	// Artifact text renders one hit-rate table per scheme plus the
	// energy table.
	text := ts.sweepArtifactsText(sub.ID)
	for _, want := range []string{
		"Per-level hit rates (base)",
		"Per-level hit rates (redhip)",
		"Dynamic energy normalised to base",
		"mcf", "milc", "average",
	} {
		if !bytes.Contains([]byte(text), []byte(want)) {
			t.Fatalf("artifact text missing %q:\n%s", want, text)
		}
	}

	// A second identical sweep dedups every child onto the cached jobs
	// and must render byte-identical artifacts.
	again := ts.submitSweep(smokeGrid(), http.StatusAccepted)
	ts.waitSweep(again.ID, StateDone)
	if text2 := ts.sweepArtifactsText(again.ID); text2 != text {
		t.Fatalf("re-run artifacts differ:\n--- first\n%s\n--- second\n%s", text, text2)
	}
	if v := ts.metricValue("redhip_serve_sweep_children_deduped_total"); v != 4 {
		t.Fatalf("sweep_children_deduped_total = %g, want 4", v)
	}
	if v := ts.metricValue("redhip_serve_sweeps_completed_total"); v != 2 {
		t.Fatalf("sweeps_completed_total = %g, want 2", v)
	}
	if v := ts.metricValue("redhip_serve_sweeps_active"); v != 0 {
		t.Fatalf("sweeps_active = %g, want 0", v)
	}

	// A fresh server instance running the same grid must also agree —
	// the artifacts derive only from deterministic simulation outputs.
	ts2 := newTestServer(t, Options{Workers: 2, QueueDepth: 16})
	sub2 := ts2.submitSweep(smokeGrid(), http.StatusAccepted)
	ts2.waitSweep(sub2.ID, StateDone)
	if text3 := ts2.sweepArtifactsText(sub2.ID); text3 != text {
		t.Fatalf("cross-server artifacts differ:\n--- server1\n%s\n--- server2\n%s", text, text3)
	}
}

func TestSweepValidation(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 1, QueueDepth: 4, MaxSweepChildren: 3})
	ts.submitSweep(sweep.Grid{}, http.StatusBadRequest)
	ts.submitSweep(sweep.Grid{Workloads: []string{"nope"}}, http.StatusBadRequest)
	// 2 workloads x 2 seeds = 4 children > cap 3.
	over := smokeGrid()
	ts.submitSweep(over, http.StatusBadRequest)

	resp, err := http.Get(ts.web.URL + "/v1/sweeps/sweep-000123")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET unknown sweep = %d, want 404", resp.StatusCode)
	}
}

func TestSweepArtifactsUnavailableWhileRunning(t *testing.T) {
	release := make(chan struct{})
	ts := newTestServer(t, Options{Workers: 1, QueueDepth: 16})
	ts.s.testHookJobStart = func(*Job) { <-release }
	defer close(release)

	g := smokeGrid()
	sub := ts.submitSweep(g, http.StatusAccepted)
	resp, err := http.Get(ts.web.URL + "/v1/sweeps/" + sub.ID + "/artifacts")
	if err != nil {
		t.Fatalf("GET artifacts: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("artifacts while running = %d, want 409", resp.StatusCode)
	}
}

func TestSweepCancelFansOut(t *testing.T) {
	started := make(chan struct{}, 16)
	release := make(chan struct{})
	ts := newTestServer(t, Options{Workers: 1, QueueDepth: 16})
	ts.s.testHookJobStart = func(*Job) {
		started <- struct{}{}
		<-release
	}

	sub := ts.submitSweep(smokeGrid(), http.StatusAccepted)
	// Wait until the first child is actually executing, so the cancel
	// exercises both the running-job path and the queued/pending paths.
	select {
	case <-started:
	case <-time.After(30 * time.Second):
		t.Fatalf("no child started")
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.web.URL+"/v1/sweeps/"+sub.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE sweep: %v", err)
	}
	resp.Body.Close()
	close(release)

	st := ts.waitSweep(sub.ID, StateCancelled)
	if st.Counts.Done == len(st.ChildJobs) {
		t.Fatalf("cancelled sweep completed all children: %+v", st.Counts)
	}
	if v := ts.metricValue("redhip_serve_sweeps_cancelled_total"); v != 1 {
		t.Fatalf("sweeps_cancelled_total = %g, want 1", v)
	}
}

// TestSweepSSEFanout is the replay-then-live contract under concurrent
// fan-out: subscribers attaching at arbitrary points during a running
// sweep must each observe the complete, gap-free event sequence from
// ID 1 through the terminal event. Run with -race this also hammers
// the eventLog's locking discipline from many goroutines.
func TestSweepSSEFanout(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 2, QueueDepth: 16})
	sub := ts.submitSweep(smokeGrid(), http.StatusAccepted)

	const readers = 8
	var wg sync.WaitGroup
	results := make([][]sseEvent, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			// Stagger attachment so some readers replay a prefix and
			// follow live, and late ones replay the whole closed log.
			time.Sleep(time.Duration(slot) * 20 * time.Millisecond)
			resp, err := http.Get(ts.web.URL + "/v1/sweeps/" + sub.ID + "/events")
			if err != nil {
				t.Errorf("reader %d: %v", slot, err)
				return
			}
			defer resp.Body.Close()
			results[slot] = readSSE(t, resp.Body, 1024)
		}(i)
	}
	wg.Wait()
	ts.waitSweep(sub.ID, StateDone)

	for slot, events := range results {
		if len(events) == 0 {
			t.Fatalf("reader %d saw no events", slot)
		}
		for i, ev := range events {
			if ev.ID != i+1 {
				t.Fatalf("reader %d event %d has id %d (gap or reorder)", slot, i, ev.ID)
			}
		}
		last := events[len(events)-1]
		if last.Type != string(StateDone) {
			t.Fatalf("reader %d ended on %q, want done", slot, last.Type)
		}
		if events[0].Type != "running" {
			t.Fatalf("reader %d first event %q, want running", slot, events[0].Type)
		}
		// Child events carry consistent monotone counts.
		var done int
		for _, ev := range events {
			if ev.Type != "child" {
				continue
			}
			var ce sweepChildEvent
			if err := json.Unmarshal([]byte(ev.Data), &ce); err != nil {
				t.Fatalf("reader %d child payload: %v", slot, err)
			}
			if ce.Counts.Done < done {
				t.Fatalf("reader %d saw done count regress: %d -> %d", slot, done, ce.Counts.Done)
			}
			done = ce.Counts.Done
		}
		if done != 4 {
			t.Fatalf("reader %d final done count %d, want 4", slot, done)
		}
	}
	// All readers observed the same total sequence length.
	for slot := 1; slot < readers; slot++ {
		if len(results[slot]) != len(results[0]) {
			t.Fatalf("reader %d saw %d events, reader 0 saw %d", slot, len(results[slot]), len(results[0]))
		}
	}
}

func TestSweepShutdownCancelsOrchestration(t *testing.T) {
	release := make(chan struct{})
	var once sync.Once
	ts := newTestServer(t, Options{Workers: 1, QueueDepth: 16})
	ts.s.testHookJobStart = func(*Job) { <-release }

	sub := ts.submitSweep(smokeGrid(), http.StatusAccepted)
	// Let the orchestrator submit at least one child before draining.
	deadline := time.Now().Add(30 * time.Second)
	for ts.sweepStatus(sub.ID).Counts.Pending == 4 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		done <- ts.s.Shutdown(ctx)
	}()
	once.Do(func() { close(release) })
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Shutdown: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("Shutdown did not drain sweeps")
	}
	if st := ts.sweepStatus(sub.ID); !st.State.terminal() {
		t.Fatalf("sweep still %q after shutdown", st.State)
	}
}
