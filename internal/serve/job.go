package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"redhip/internal/sim"
)

// State is a job's lifecycle position. Transitions are monotone:
// queued -> running -> {done, failed}; queued/running -> cancelled.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// terminal reports whether s is an end state.
func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Terminal is the exported face of terminal — the cluster router
// mirrors job lifecycles and needs the same end-state test.
func (s State) Terminal() bool { return s.terminal() }

// Event is one entry of a job's progress stream, delivered over SSE as
//
//	id: <ID>
//	event: <Type>
//	data: <Data>
//
// The event log is append-only; late subscribers replay it from the
// start, so a progress event is never lost to subscription timing.
type Event struct {
	ID   int
	Type string // "queued", "running", "progress", "retry", "panic", "done", "failed", "cancelled"
	Data json.RawMessage
}

// progressData is the payload of a "progress" event.
type progressData struct {
	Workload  string  `json:"workload"`
	Scheme    string  `json:"scheme"`
	Completed int     `json:"completed"`
	Total     int     `json:"total"`
	Refs      uint64  `json:"refs,omitempty"`
	Cycles    uint64  `json:"cycles,omitempty"`
	Error     string  `json:"error,omitempty"`
	WallMS    float64 `json:"wall_ms,omitempty"`
}

// terminalData is the payload of a terminal event.
type terminalData struct {
	State State  `json:"state"`
	Error string `json:"error,omitempty"`
}

// retryData is the payload of a "retry" event: attempt N failed and
// the job will re-execute after the stated backoff.
type retryData struct {
	Attempt int     `json:"attempt"` // the attempt that just failed (1-based)
	Max     int     `json:"max_attempts"`
	DelayMS float64 `json:"delay_ms"`
	Error   string  `json:"error"`
}

// panicData is the payload of a "panic" event: the recovered value and
// the goroutine stack, so a post-mortem needs no server-side logs.
type panicData struct {
	Value string `json:"value"`
	Stack string `json:"stack"`
}

// Job is one admitted submission and everything it accretes: state,
// progress counters, the event log, subscribers, and (terminally)
// results or an error.
type Job struct {
	// Immutable after creation.
	ID   string
	Key  string
	Spec Spec
	// estBytes is the trace-footprint reservation made at admission;
	// finalize releases it exactly once on the terminal transition.
	estBytes uint64

	mu          sync.Mutex
	state       State              //redhip:guardedby mu
	attempts    int                //redhip:guardedby mu // execution attempts started (retries included)
	err         string             //redhip:guardedby mu
	results     []*sim.Result      //redhip:guardedby mu
	completed   int                //redhip:guardedby mu // runs finished
	total       int                //redhip:guardedby mu // runs planned
	submissions int                //redhip:guardedby mu // POSTs that resolved to this job (1 = no dedup)
	submitted   time.Time          //redhip:guardedby mu
	started     time.Time          //redhip:guardedby mu
	finished    time.Time          //redhip:guardedby mu
	cancel      context.CancelFunc //redhip:guardedby mu // non-nil while running
	// cancelRequested is set when DELETE races the queued->running
	// hand-off: the worker that pops the job consults it in start and
	// abandons the run instead of executing a cancelled job.
	cancelRequested bool     //redhip:guardedby mu
	log             eventLog //redhip:guardedby mu
}

func newJob(id string, spec Spec, now time.Time) *Job {
	j := &Job{
		ID:          id,
		Key:         spec.key(),
		Spec:        spec,
		state:       StateQueued,
		total:       spec.runs(),
		submissions: 1,
		submitted:   now,
	}
	j.publish("queued", terminalData{State: StateQueued})
	return j
}

// publish appends an event and fans it out; callers must NOT hold j.mu.
func (j *Job) publish(typ string, payload any) {
	j.mu.Lock()
	j.publishLocked(typ, payload)
	j.mu.Unlock()
}

// publishLocked is publish with j.mu already held — terminal
// transitions use it so the state change and its event land atomically
// (a subscriber can never observe a terminal state whose event is
// missing from the log). The mechanics live in eventLog, shared with
// the sweep orchestrator.
func (j *Job) publishLocked(typ string, payload any) {
	j.log.appendLocked(typ, payload, j.state.terminal())
}

// subscribe returns the replayed event log and a live channel. The
// channel is closed after the terminal event; unsub must be called when
// the consumer stops reading early.
func (j *Job) subscribe() (replay []Event, live <-chan Event, unsub func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	replay, ch := j.log.subscribeLocked(j.state.terminal())
	return replay, ch, func() {
		j.mu.Lock()
		j.log.unsubscribeLocked(ch)
		j.mu.Unlock()
	}
}

// start transitions queued -> running, installing the cancel func.
// It returns false when the job was cancelled while queued.
func (j *Job) start(cancel context.CancelFunc, now time.Time) bool {
	j.mu.Lock()
	if j.state != StateQueued || j.cancelRequested {
		j.mu.Unlock()
		return false
	}
	j.state = StateRunning
	j.started = now
	j.cancel = cancel
	j.mu.Unlock()
	j.publish("running", terminalData{State: StateRunning})
	return true
}

// noteAttempt records the start of one execution attempt.
func (j *Job) noteAttempt() {
	j.mu.Lock()
	j.attempts++
	j.mu.Unlock()
}

// publishRetry emits a "retry" event after a failed attempt.
func (j *Job) publishRetry(attempt, max int, delay time.Duration, err error) {
	j.publish("retry", retryData{
		Attempt: attempt,
		Max:     max,
		DelayMS: float64(delay) / float64(time.Millisecond),
		Error:   err.Error(),
	})
}

// publishPanic emits a "panic" event carrying the recovered value and
// its stack.
func (j *Job) publishPanic(v any, stack []byte) {
	j.publish("panic", panicData{Value: fmt.Sprint(v), Stack: string(stack)})
}

// progress records one finished run and emits a progress event.
func (j *Job) progress(p progressData) {
	j.mu.Lock()
	j.completed++
	p.Completed = j.completed
	p.Total = j.total
	j.mu.Unlock()
	j.publish("progress", p)
}

// finish transitions to a terminal state and emits the terminal event.
// Later finish calls (a cancel racing completion, say) are no-ops; the
// first terminal state wins. It reports whether this call won.
func (j *Job) finish(state State, errMsg string, results []*sim.Result, now time.Time) bool {
	j.mu.Lock()
	if j.state.terminal() {
		j.mu.Unlock()
		return false
	}
	j.state = state
	j.err = errMsg
	j.results = results
	j.finished = now
	j.cancel = nil
	j.publishLocked(string(state), terminalData{State: state, Error: errMsg})
	j.mu.Unlock()
	return true
}

// requestCancel asks the job to stop. A queued job reports
// wasQueued=true and the caller (the store) removes it from the queue
// and finishes it; a running job has its context cancelled and reaches
// "cancelled" through the worker. Terminal jobs are untouched.
func (j *Job) requestCancel() (wasQueued, wasRunning bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case StateQueued:
		j.cancelRequested = true
		return true, false
	case StateRunning:
		if j.cancel != nil {
			j.cancel()
		}
		return false, true
	}
	return false, false
}

// attach records one more deduplicated submission.
func (j *Job) attach() {
	j.mu.Lock()
	j.submissions++
	j.mu.Unlock()
}

// Status is the JSON shape of GET /v1/jobs/{id}.
type Status struct {
	ID          string        `json:"id"`
	Key         string        `json:"key"`
	State       State         `json:"state"`
	Error       string        `json:"error,omitempty"`
	Spec        Spec          `json:"spec"`
	Completed   int           `json:"completed"`
	Total       int           `json:"total"`
	Attempts    int           `json:"attempts,omitempty"`
	Submissions int           `json:"submissions"`
	SubmittedAt time.Time     `json:"submitted_at"`
	StartedAt   *time.Time    `json:"started_at,omitempty"`
	FinishedAt  *time.Time    `json:"finished_at,omitempty"`
	Results     []*sim.Result `json:"results,omitempty"`
}

// snapshot renders the job's current status. withResults controls
// whether the (potentially large) result array is included.
func (j *Job) snapshot(withResults bool) Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:          j.ID,
		Key:         j.Key,
		State:       j.state,
		Error:       j.err,
		Spec:        j.Spec,
		Completed:   j.completed,
		Total:       j.total,
		Attempts:    j.attempts,
		Submissions: j.submissions,
		SubmittedAt: j.submitted,
	}
	if !j.started.IsZero() {
		t := j.started
		st.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.FinishedAt = &t
	}
	if withResults && j.state == StateDone {
		st.Results = j.results
	}
	return st
}

// stateNow returns the job's current state.
func (j *Job) stateNow() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// runningSince reports when the job started executing, if it is
// currently running.
func (j *Job) runningSince() (time.Time, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateRunning {
		return time.Time{}, false
	}
	return j.started, true
}
