package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestReadyzReasonsJSON: /readyz carries machine-readable reasons the
// cluster router keys its membership state machine on — empty while
// ready, "stopping" while draining — without changing the status-code
// contract.
func TestReadyzReasonsJSON(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 1, QueueDepth: 4})

	resp, err := http.Get(ts.web.URL + "/readyz")
	if err != nil {
		t.Fatalf("GET readyz: %v", err)
	}
	var body readyResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decode readyz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !body.Ready || len(body.Reasons) != 0 {
		t.Fatalf("idle readyz = %d ready=%v reasons=%v, want 200/true/none", resp.StatusCode, body.Ready, body.Reasons)
	}

	ts.s.stopping.Store(true)
	defer ts.s.stopping.Store(false)
	resp, err = http.Get(ts.web.URL + "/readyz")
	if err != nil {
		t.Fatalf("GET readyz: %v", err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decode readyz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || body.Ready {
		t.Fatalf("stopping readyz = %d ready=%v, want 503/false", resp.StatusCode, body.Ready)
	}
	if len(body.Reasons) != 1 || body.Reasons[0] != "stopping" {
		t.Fatalf("stopping reasons = %v, want [stopping]", body.Reasons)
	}
}

// TestExecutionsDoneCounter: each unique spec that completes its sweep
// counts exactly once — deduplicated resubmissions do not inflate it.
// The failover drill sums this across replicas to prove no spec ran
// twice.
func TestExecutionsDoneCounter(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 1, QueueDepth: 4})
	sub := ts.submit(smokeSpec(), http.StatusAccepted)
	ts.waitState(sub.ID, StateDone)
	if got := ts.s.ExecutionsDone(); got != 1 {
		t.Fatalf("ExecutionsDone = %d after one job, want 1", got)
	}

	dup := ts.submit(smokeSpec(), http.StatusAccepted)
	if !dup.Deduped {
		t.Fatal("resubmission of a done spec was not deduped")
	}
	if got := ts.s.ExecutionsDone(); got != 1 {
		t.Fatalf("ExecutionsDone = %d after dedup, want still 1", got)
	}

	resp, err := http.Get(ts.web.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET metrics: %v", err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(raw), "redhip_serve_executions_done_total 1") {
		t.Fatalf("metrics lack executions_done counter:\n%s", raw)
	}
}

// TestLeaseDerivedFromRouterAck: a replica without an explicit
// LeaseTimeout derives its fencing lease from the dead-declaration
// floor the router advertises in its registration ack (3/4 of it, so
// the fence always precedes job re-homing), while an explicitly
// configured lease is honoured untouched.
func TestLeaseDerivedFromRouterAck(t *testing.T) {
	router := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == "/v1/cluster/register" {
			w.WriteHeader(http.StatusOK)
			_, _ = io.WriteString(w, `{"state":"joining","dead_after_ms":400}`)
			return
		}
		http.NotFound(w, r)
	}))
	defer router.Close()

	auto := newTestServer(t, Options{
		Workers:      1,
		QueueDepth:   4,
		RouterURL:    router.URL,
		AdvertiseURL: "http://127.0.0.1:1", // never dialled by this test
		ReplicaName:  "auto-lease",
	})
	want := 300 * time.Millisecond // 3/4 of the advertised 400ms floor
	deadline := time.Now().Add(2 * time.Second)
	for auto.s.leaseNow() != want && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := auto.s.leaseNow(); got != want {
		t.Fatalf("auto lease = %s, want %s derived from the ack", got, want)
	}

	explicit := newTestServer(t, Options{
		Workers:      1,
		QueueDepth:   4,
		RouterURL:    router.URL,
		AdvertiseURL: "http://127.0.0.1:1",
		ReplicaName:  "explicit-lease",
		LeaseTimeout: 5 * time.Second,
	})
	// Give the registration loop time to process at least one ack, then
	// confirm the explicit lease was not recalibrated.
	deadline = time.Now().Add(250 * time.Millisecond)
	for time.Now().Before(deadline) {
		if got := explicit.s.leaseNow(); got != 5*time.Second {
			t.Fatalf("explicit lease = %s, want the configured 5s", got)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestLeaseFenceCancelsJobs: a replica in cluster mode that stops
// seeing router probes for longer than its lease fences itself — every
// non-terminal job is cancelled so the router's re-homed copies are
// the only ones that can complete. The next probe re-arms the lease
// rather than leaving the replica permanently fenced.
func TestLeaseFenceCancelsJobs(t *testing.T) {
	var registrations atomic.Int64
	router := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == "/v1/cluster/register" {
			registrations.Add(1)
			w.WriteHeader(http.StatusOK)
			_, _ = io.WriteString(w, "{}")
			return
		}
		http.NotFound(w, r)
	}))
	defer router.Close()

	ts := newTestServer(t, Options{
		Workers:      1,
		QueueDepth:   4,
		RouterURL:    router.URL,
		AdvertiseURL: "http://127.0.0.1:1", // never dialled by this test
		ReplicaName:  "fence-test",
		LeaseTimeout: 80 * time.Millisecond,
	})

	// A job long enough to still be running when the lease lapses.
	spec := smokeSpec()
	spec.RefsPerCore = 2_000_000
	sub := ts.submit(spec, http.StatusAccepted)

	// One router probe arms the lease; no renewal ever follows.
	req, _ := http.NewRequest(http.MethodGet, ts.web.URL+"/readyz", nil)
	req.Header.Set(RouterProbeHeader, "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("probe readyz: %v", err)
	}
	resp.Body.Close()

	st := ts.waitState(sub.ID, StateCancelled)
	if st.State != StateCancelled {
		t.Fatalf("fenced job state = %q, want cancelled", st.State)
	}
	if got := ts.s.LeaseFences(); got != 1 {
		t.Fatalf("LeaseFences = %d, want 1 (one lease loss fences once)", got)
	}
	if ts.s.ExecutionsDone() != 0 {
		t.Fatal("fenced job still counted as an execution")
	}

	// The replica announced itself to the router at least once.
	deadline := time.Now().Add(2 * time.Second)
	for registrations.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if registrations.Load() == 0 {
		t.Fatal("replica never registered with the router")
	}

	mresp, err := http.Get(ts.web.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET metrics: %v", err)
	}
	raw, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(raw), "redhip_serve_lease_fences_total 1") {
		t.Fatalf("metrics lack lease_fences counter:\n%s", raw)
	}
}
