package trace

import (
	"bytes"
	"testing"
)

// FuzzRead hammers the binary decoder with corrupted inputs: it must
// either return an error or a structurally valid trace — never panic,
// never hang, never allocate absurdly.
func FuzzRead(f *testing.F) {
	// Seed with valid encodings of varied traces.
	seed := []*Trace{
		{Name: "a", CPI: 1.5, Records: []Record{{PC: 1, Addr: 2, Gap: 3}}},
		{Name: "", CPI: 0},
		{Name: "long", CPI: 2, Records: make([]Record, 100)},
	}
	for _, tr := range seed {
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte("RDHT"))
	f.Add([]byte("RDHT\x01garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successful parse must round-trip to an identical byte count
		// of records.
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			t.Fatalf("re-encode of parsed trace failed: %v", err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(back.Records) != len(tr.Records) {
			t.Fatalf("round trip changed record count: %d -> %d", len(tr.Records), len(back.Records))
		}
	})
}
