package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"redhip/internal/memaddr"
)

// Binary trace format ("RDHT"):
//
//	magic   [4]byte  "RDHT"
//	version uint8    1
//	cpi     float64  little-endian bits
//	name    uvarint length + bytes
//	count   uvarint  number of records
//	records: per record
//	    flags  uint8   bit0 = write
//	    pcΔ    varint  signed delta from previous PC
//	    addrΔ  varint  signed delta from previous Addr
//	    gap    uvarint
//
// Delta encoding keeps sequential and strided streams — the common case
// — near one byte per field.

var magic = [4]byte{'R', 'D', 'H', 'T'}

const formatVersion = 1

// ErrBadFormat is returned when a stream does not start with the trace
// magic or has an unsupported version.
var ErrBadFormat = errors.New("trace: bad format")

// Write encodes a trace to w.
func Write(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	if err := bw.WriteByte(formatVersion); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	binary.LittleEndian.PutUint64(buf[:8], math.Float64bits(tr.CPI))
	if _, err := bw.Write(buf[:8]); err != nil {
		return err
	}
	writeUvarint(bw, buf[:], uint64(len(tr.Name)))
	if _, err := bw.WriteString(tr.Name); err != nil {
		return err
	}
	writeUvarint(bw, buf[:], uint64(len(tr.Records)))
	var prevPC, prevAddr memaddr.Addr
	for i := range tr.Records {
		r := &tr.Records[i]
		var flags byte
		if r.Write {
			flags |= 1
		}
		if err := bw.WriteByte(flags); err != nil {
			return err
		}
		writeVarint(bw, buf[:], int64(r.PC)-int64(prevPC))
		writeVarint(bw, buf[:], int64(r.Addr)-int64(prevAddr))
		writeUvarint(bw, buf[:], uint64(r.Gap))
		prevPC, prevAddr = r.PC, r.Addr
	}
	return bw.Flush()
}

// Read decodes a trace from r.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [5]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if [4]byte(hdr[:4]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadFormat, hdr[:4])
	}
	if hdr[4] != formatVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, hdr[4])
	}
	var f64 [8]byte
	if _, err := io.ReadFull(br, f64[:]); err != nil {
		return nil, fmt.Errorf("trace: reading cpi: %w", err)
	}
	tr := &Trace{CPI: math.Float64frombits(binary.LittleEndian.Uint64(f64[:]))}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading name length: %w", err)
	}
	if nameLen > 1<<16 {
		return nil, fmt.Errorf("%w: name length %d too large", ErrBadFormat, nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("trace: reading name: %w", err)
	}
	tr.Name = string(name)
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading count: %w", err)
	}
	if count > 1<<34 {
		return nil, fmt.Errorf("%w: record count %d too large", ErrBadFormat, count)
	}
	tr.Records = make([]Record, count)
	var prevPC, prevAddr int64
	for i := range tr.Records {
		flags, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("trace: record %d flags: %w", i, err)
		}
		pcD, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d pc: %w", i, err)
		}
		addrD, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d addr: %w", i, err)
		}
		gap, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d gap: %w", i, err)
		}
		if gap > math.MaxUint32 {
			return nil, fmt.Errorf("%w: record %d gap %d overflows uint32", ErrBadFormat, i, gap)
		}
		prevPC += pcD
		prevAddr += addrD
		tr.Records[i] = Record{
			PC:    memaddr.Addr(prevPC),
			Addr:  memaddr.Addr(prevAddr),
			Write: flags&1 != 0,
			Gap:   uint32(gap),
		}
	}
	return tr, nil
}

func writeUvarint(w *bufio.Writer, buf []byte, v uint64) {
	n := binary.PutUvarint(buf, v)
	w.Write(buf[:n]) //nolint:errcheck // bufio defers errors to Flush
}

func writeVarint(w *bufio.Writer, buf []byte, v int64) {
	n := binary.PutVarint(buf, v)
	w.Write(buf[:n]) //nolint:errcheck // bufio defers errors to Flush
}
