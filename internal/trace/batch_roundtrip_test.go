package trace_test

import (
	"bytes"
	"testing"

	"redhip/internal/trace"
	"redhip/internal/workload"
)

// FuzzBatchEncodeRoundTrip pins the bit-identity contract of the batch
// pipeline end to end: a workload stream consumed through NextBatch in
// arbitrary (fuzz-chosen) chunk sizes must encode to exactly the same
// bytes as the same stream consumed one Next call at a time, and decode
// back to the same records. Any divergence — a source whose NextBatch
// consumes its RNG in a different order, an encoder sensitive to how
// records were produced — breaks the trace store's replay guarantee.
func FuzzBatchEncodeRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint8(0), []byte{16, 3, 64})
	f.Add(uint64(42), uint8(4), []byte{1})
	f.Add(uint64(7), uint8(10), []byte{})
	f.Add(uint64(9), uint8(255), []byte{63, 1, 1, 40})
	f.Fuzz(func(t *testing.T, seed uint64, widx uint8, chunks []byte) {
		names := workload.BenchmarkNames()
		name := names[int(widx)%len(names)]
		const n = 512
		const scale = 1024

		// Reference stream: record at a time.
		single, err := workload.Sources(name, 1, scale, seed)
		if err != nil {
			t.Fatal(err)
		}
		one := workload.Capture(single[0], n)
		if len(one.Records) != n {
			t.Fatalf("short capture: %d records, want %d", len(one.Records), n)
		}

		// Same stream through NextBatch, chunk sizes driven by the fuzzer.
		fresh, err := workload.Sources(name, 1, scale, seed)
		if err != nil {
			t.Fatal(err)
		}
		bs := workload.AsBatch(fresh[0])
		batched := &trace.Trace{Name: bs.Name(), CPI: bs.CPI()}
		buf := make([]trace.Record, 64)
		ci := 0
		for len(batched.Records) < n {
			sz := len(buf)
			if len(chunks) > 0 {
				sz = 1 + int(chunks[ci%len(chunks)])%len(buf)
				ci++
			}
			if rem := n - len(batched.Records); sz > rem {
				sz = rem
			}
			m := bs.NextBatch(buf[:sz])
			if m == 0 {
				t.Fatalf("%s: NextBatch returned 0 from an endless generator", name)
			}
			batched.Records = append(batched.Records, buf[:m]...)
		}

		var encOne, encBatched bytes.Buffer
		if err := trace.Write(&encOne, one); err != nil {
			t.Fatal(err)
		}
		if err := trace.Write(&encBatched, batched); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(encOne.Bytes(), encBatched.Bytes()) {
			t.Fatalf("%s seed=%d: NextBatch stream encodes differently from record-at-a-time stream", name, seed)
		}

		back, err := trace.Read(bytes.NewReader(encBatched.Bytes()))
		if err != nil {
			t.Fatalf("decode of batch-produced encoding failed: %v", err)
		}
		if len(back.Records) != n {
			t.Fatalf("round trip changed record count: %d -> %d", n, len(back.Records))
		}
		for i := range back.Records {
			if back.Records[i] != one.Records[i] {
				t.Fatalf("%s seed=%d: record %d differs after round trip: %+v != %+v",
					name, seed, i, back.Records[i], one.Records[i])
			}
		}
	})
}
