package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"redhip/internal/memaddr"
)

func sampleTrace() *Trace {
	return &Trace{
		Name: "sample",
		CPI:  1.25,
		Records: []Record{
			{PC: 0x400000, Addr: 0x10000, Write: false, Gap: 3},
			{PC: 0x400004, Addr: 0x10040, Write: true, Gap: 0},
			{PC: 0x400000, Addr: 0x10080, Write: false, Gap: 12},
			{PC: 0x400010, Addr: 0x9000000, Write: false, Gap: 1},
			{PC: 0x400014, Addr: 0x8, Write: true, Gap: 1000000},
		},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, tr)
	}
}

func TestEncodeDecodeEmpty(t *testing.T) {
	tr := &Trace{Name: "", CPI: 0, Records: nil}
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Name != "" || got.CPI != 0 || len(got.Records) != 0 {
		t.Fatalf("got %+v, want empty trace", got)
	}
}

func TestEncodeDecodeQuick(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := &Trace{Name: "q", CPI: rng.Float64() * 4}
		for i := 0; i < int(n); i++ {
			tr.Records = append(tr.Records, Record{
				PC:    memaddr.Addr(rng.Uint64()),
				Addr:  memaddr.Addr(rng.Uint64()),
				Write: rng.Intn(2) == 0,
				Gap:   rng.Uint32(),
			})
		}
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if len(got.Records) == 0 && len(tr.Records) == 0 {
			return got.Name == tr.Name && got.CPI == tr.CPI
		}
		return reflect.DeepEqual(got, tr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestReadRejectsBadMagic(t *testing.T) {
	_, err := Read(strings.NewReader("NOPE\x01garbage"))
	if err == nil {
		t.Fatal("Read accepted bad magic")
	}
}

func TestReadRejectsBadVersion(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[4] = 99 // corrupt version
	if _, err := Read(bytes.NewReader(b)); err == nil {
		t.Fatal("Read accepted bad version")
	}
}

func TestReadRejectsTruncated(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	for _, cut := range []int{1, 4, 5, 10, len(b) - 1} {
		if cut >= len(b) {
			continue
		}
		if _, err := Read(bytes.NewReader(b[:cut])); err == nil {
			t.Errorf("Read accepted trace truncated at %d bytes", cut)
		}
	}
}

func TestDeltaEncodingIsCompact(t *testing.T) {
	// A purely sequential stream should cost ~4 bytes per record
	// (flags + two 1-byte deltas + gap).
	tr := &Trace{Name: "seq", CPI: 1}
	for i := 0; i < 10000; i++ {
		tr.Records = append(tr.Records, Record{
			PC:   0x400000,
			Addr: memaddr.Addr(0x10000 + i*8),
			Gap:  2,
		})
	}
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	perRecord := float64(buf.Len()) / float64(len(tr.Records))
	if perRecord > 6 {
		t.Fatalf("sequential stream costs %.1f bytes/record, want <= 6", perRecord)
	}
}

func TestComputeStats(t *testing.T) {
	s := ComputeStats(sampleTrace().Records)
	if s.Refs != 5 {
		t.Errorf("Refs = %d, want 5", s.Refs)
	}
	if s.Writes != 2 {
		t.Errorf("Writes = %d, want 2", s.Writes)
	}
	if s.NonMemInstrs != 3+0+12+1+1000000 {
		t.Errorf("NonMemInstrs = %d", s.NonMemInstrs)
	}
	if s.MinAddr != 0x8 || s.MaxAddr != 0x9000000 {
		t.Errorf("addr range [%v, %v]", s.MinAddr, s.MaxAddr)
	}
	if s.UniqueBlocks != 5 {
		t.Errorf("UniqueBlocks = %d, want 5", s.UniqueBlocks)
	}
	if s.WriteFraction != 0.4 {
		t.Errorf("WriteFraction = %v, want 0.4", s.WriteFraction)
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	s := ComputeStats(nil)
	if s.Refs != 0 || s.UniqueBlocks != 0 {
		t.Fatalf("stats of empty trace: %+v", s)
	}
}

func TestComputeStatsSameBlock(t *testing.T) {
	recs := []Record{
		{Addr: 0x1000}, {Addr: 0x1008}, {Addr: 0x103f}, // same block
		{Addr: 0x1040}, // next block
	}
	s := ComputeStats(recs)
	if s.UniqueBlocks != 2 {
		t.Fatalf("UniqueBlocks = %d, want 2", s.UniqueBlocks)
	}
}
