// Package trace defines the memory-reference trace format consumed by
// the simulator. The paper instruments benchmarks with Pin and collects
// one trace per process: a sequence of memory references, each carrying
// the instruction address, the data address, the access type, and the
// number of non-memory instructions executed since the previous
// reference (used to charge compute time at the application's average
// CPI, Section IV).
package trace

import "redhip/internal/memaddr"

// Record is one memory reference.
type Record struct {
	// PC is the address of the instruction performing the access. The
	// stride prefetcher indexes its table by PC.
	PC memaddr.Addr
	// Addr is the data byte address accessed.
	Addr memaddr.Addr
	// Write is true for stores, false for loads.
	Write bool
	// Gap is the number of non-memory instructions executed since the
	// previous memory reference on the same core. The simulator
	// charges Gap * CPI cycles of compute time before this access.
	Gap uint32
}

// Trace is an in-memory sequence of records, with the average CPI the
// timing model should use for the non-memory instructions between them.
type Trace struct {
	Name    string
	CPI     float64
	Records []Record
}

// Stats summarises a record stream.
type Stats struct {
	Refs          uint64
	Writes        uint64
	UniqueBlocks  uint64
	NonMemInstrs  uint64
	MinAddr       memaddr.Addr
	MaxAddr       memaddr.Addr
	FootprintMiB  float64 // UniqueBlocks * 64 bytes, in MiB
	WriteFraction float64
}

// ComputeStats scans records and returns summary statistics. It tracks
// unique 64-byte blocks exactly (using a set), so it is intended for
// analysis, not for the hot simulation path.
func ComputeStats(recs []Record) Stats {
	var s Stats
	if len(recs) == 0 {
		return s
	}
	blocks := make(map[memaddr.Addr]struct{}, 1<<16)
	s.MinAddr = recs[0].Addr
	for i := range recs {
		r := &recs[i]
		s.Refs++
		if r.Write {
			s.Writes++
		}
		s.NonMemInstrs += uint64(r.Gap)
		if r.Addr < s.MinAddr {
			s.MinAddr = r.Addr
		}
		if r.Addr > s.MaxAddr {
			s.MaxAddr = r.Addr
		}
		blocks[r.Addr.Block()] = struct{}{}
	}
	s.UniqueBlocks = uint64(len(blocks))
	s.FootprintMiB = float64(s.UniqueBlocks) * memaddr.BlockSize / (1 << 20)
	s.WriteFraction = float64(s.Writes) / float64(s.Refs)
	return s
}
