// Package version derives a human-readable build identity from the
// binary's embedded module and VCS metadata. Every CLI exposes it via
// -version and redhip-serve additionally reports it in the /healthz
// payload, so a report ("loadgen says X, serve says Y") can always name
// the exact revisions involved.
package version

import (
	"fmt"
	"runtime/debug"
	"strings"
)

// String renders the build identity of the running binary:
//
//	redhip (devel) rev 228f2b7d (modified) go1.24.0
//
// Every component degrades gracefully: binaries built without module
// or VCS metadata (go run, test binaries) report what is available.
func String() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "redhip (unknown build)"
	}
	var b strings.Builder
	b.WriteString("redhip")
	if v := info.Main.Version; v != "" {
		fmt.Fprintf(&b, " %s", v)
	}
	var rev, modified string
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				modified = " (modified)"
			}
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		fmt.Fprintf(&b, " rev %s%s", rev, modified)
	}
	fmt.Fprintf(&b, " %s", info.GoVersion)
	return b.String()
}
