package workload

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestProfileJSONRoundTrip(t *testing.T) {
	for _, name := range []string{"mcf", "milc", "pmf"} {
		p, err := ProfileByName(name)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteProfile(&buf, p); err != nil {
			t.Fatalf("%s: write: %v", name, err)
		}
		back, err := ReadProfile(&buf)
		if err != nil {
			t.Fatalf("%s: read: %v", name, err)
		}
		if !reflect.DeepEqual(p, back) {
			t.Fatalf("%s: round trip mismatch:\n%+v\n%+v", name, p, back)
		}
	}
}

func TestProfileJSONKindNames(t *testing.T) {
	p := &Profile{
		Name: "k", CPIVal: 1, MeanGap: 1,
		Components: []ComponentSpec{
			{Kind: KindStrided, Weight: 1, SizeLog2: 20, Strides: []uint64{64, 128}},
		},
	}
	var buf bytes.Buffer
	if err := WriteProfile(&buf, p); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, `"kind": "strided"`) {
		t.Fatalf("kind not named:\n%s", s)
	}
	if !strings.Contains(s, `"strides"`) {
		t.Fatalf("strides missing:\n%s", s)
	}
}

func TestReadProfileRejectsInvalid(t *testing.T) {
	bad := []string{
		``,
		`{`,
		`{"name":"x"}`, // no components, zero CPI
		`{"name":"x","cpi":1,"components":[{"kind":"nonesuch","weight":1,"sizeLog2":14}]}`,
		`{"name":"x","cpi":1,"unknownField":true,"components":[{"kind":"hot","weight":1,"sizeLog2":14}]}`,
		`{"name":"x","cpi":1,"components":[{"kind":"hot","weight":0,"sizeLog2":14}]}`,
	}
	for i, in := range bad {
		if _, err := ReadProfile(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted: %s", i, in)
		}
	}
}

func TestReadProfileGeneratesTraffic(t *testing.T) {
	in := `{
	  "name": "filetest", "cpi": 2, "writeFrac": 0.5, "meanGap": 1,
	  "components": [
	    {"kind": "hot", "weight": 0.9, "sizeLog2": 14},
	    {"kind": "zipf", "weight": 0.1, "sizeLog2": 24, "skew": 2}
	  ]
	}`
	p, err := ReadProfile(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	src, err := New(p, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr := Capture(src, 1000)
	if len(tr.Records) != 1000 || tr.Name != "filetest" || tr.CPI != 2 {
		t.Fatalf("generated trace wrong: %d records, %q, cpi %v", len(tr.Records), tr.Name, tr.CPI)
	}
}

func TestComponentKindJSONUnknownMarshal(t *testing.T) {
	if _, err := ComponentKind(99).MarshalJSON(); err == nil {
		t.Fatal("unknown kind marshalled")
	}
}
