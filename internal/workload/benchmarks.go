package workload

import (
	"fmt"

	"redhip/internal/memaddr"
)

// This file defines the eleven workloads of the paper's evaluation
// (Section IV): eight SPEC 2006 benchmarks chosen to exercise the deep
// hierarchy (astar, bwaves, cactusADM, GemsFDTD, lbm, mcf, milc,
// soplex), the two large-scale applications (blas = Graph500 on
// CombBLAS, pmf = probabilistic matrix factorisation on GraphLab), and
// the 8-way SPEC "mix".
//
// Region sizes are log2 bytes at the paper's machine scale (L1 = 2^15,
// L2 = 2^18, L3 = 2^22, L4 = 2^26). Components sized under 2^15 hit in
// L1, under 2^18 in L2, under 2^22 in L3, under 2^26 in L4, and larger
// regions spill to memory. Weights are calibrated so the base-case
// per-level hit rates have the character the paper reports in Fig. 9:
// high L1 hit rates overall, streaming codes (lbm, bwaves) missing
// straight to memory, pointer-chasing codes (mcf, astar, blas) with the
// lowest L1 and LLC hit rates, and stencil codes (cactusADM) with the
// best locality.

// Shorthand builders keep the profile table readable.
func hot(w float64, sizeLog2 uint) ComponentSpec {
	return ComponentSpec{Kind: KindHot, Weight: w, SizeLog2: sizeLog2}
}
func stream(w float64, sizeLog2 uint) ComponentSpec {
	return ComponentSpec{Kind: KindStream, Weight: w, SizeLog2: sizeLog2}
}
func strided(w float64, sizeLog2 uint, strides ...uint64) ComponentSpec {
	return ComponentSpec{Kind: KindStrided, Weight: w, SizeLog2: sizeLog2, Strides: strides}
}
func chase(w float64, sizeLog2 uint) ComponentSpec {
	return ComponentSpec{Kind: KindChase, Weight: w, SizeLog2: sizeLog2}
}
func zipf(w float64, sizeLog2 uint, skew float64) ComponentSpec {
	return ComponentSpec{Kind: KindZipf, Weight: w, SizeLog2: sizeLog2, Skew: skew}
}

// SPECNames lists the eight SPEC 2006 benchmarks in the paper's
// presentation order.
var SPECNames = []string{
	"bwaves", "GemsFDTD", "lbm", "mcf", "milc", "soplex", "astar", "cactusADM",
}

// profiles maps every single-program benchmark name to its profile.
//
// Component roles, at paper scale: 2^14 = L1-resident hot data; 2^17 =
// L2-resident; 2^20 = L3-resident; 2^22 chase/strided = shared-L4
// resident under 8-core pressure; 2^27+ = spills to memory. Streams
// miss every 8th access straight to memory. The CPI values are the
// whole-application averages the paper's timing model charges for
// non-memory instructions; memory-bound codes (mcf, blas) have the
// highest.
var profiles = map[string]*Profile{
	"bwaves": {
		Name: "bwaves", CPIVal: 2.8, WriteFrac: 0.28, MeanGap: 2,
		Components: []ComponentSpec{
			hot(0.79, 14), stream(0.06, 28),
			hot(0.04, 17), hot(0.03, 20), chase(0.035, 23), chase(0.015, 29),
		},
	},
	"GemsFDTD": {
		Name: "GemsFDTD", CPIVal: 2.6, WriteFrac: 0.31, MeanGap: 2,
		Components: []ComponentSpec{
			hot(1.5375, 14), stream(0.03, 28),
			strided(0.04, 23, 320, 640, 1280),
			hot(0.05, 17), hot(0.03, 20), chase(0.03, 23), chase(0.02, 28),
		},
	},
	"lbm": {
		Name: "lbm", CPIVal: 2.2, WriteFrac: 0.45, MeanGap: 2,
		Components: []ComponentSpec{
			hot(0.7835, 14), stream(0.16, 29),
			hot(0.02, 17), hot(0.02, 20), chase(0.03, 23), chase(0.03, 29),
		},
	},
	"mcf": {
		Name: "mcf", CPIVal: 4.5, WriteFrac: 0.25, MeanGap: 3,
		Components: []ComponentSpec{
			hot(1.4737, 14),
			hot(0.05, 17), hot(0.05, 20), chase(0.08, 23), chase(0.05, 30),
		},
	},
	"milc": {
		Name: "milc", CPIVal: 2.4, WriteFrac: 0.30, MeanGap: 2,
		Components: []ComponentSpec{
			hot(1.4500, 14), stream(0.04, 28),
			strided(0.05, 23, 1024, 2048, 4096, 8192),
			hot(0.04, 17), hot(0.025, 20), chase(0.03, 23), chase(0.015, 28),
		},
	},
	"soplex": {
		Name: "soplex", CPIVal: 2.4, WriteFrac: 0.22, MeanGap: 2,
		Components: []ComponentSpec{
			hot(1.4475, 14), stream(0.03, 27),
			hot(0.05, 17), hot(0.04, 20), chase(0.05, 23), chase(0.02, 28),
		},
	},
	"astar": {
		Name: "astar", CPIVal: 2.8, WriteFrac: 0.26, MeanGap: 3,
		Components: []ComponentSpec{
			hot(1.6200, 14),
			hot(0.05, 17), hot(0.045, 20), chase(0.055, 23), chase(0.03, 27),
		},
	},
	"cactusADM": {
		Name: "cactusADM", CPIVal: 2.2, WriteFrac: 0.33, MeanGap: 2,
		Components: []ComponentSpec{
			hot(1.1781, 14), stream(0.05, 27),
			strided(0.03, 22, 192, 384),
			hot(0.03, 17), hot(0.02, 20), chase(0.015, 23), chase(0.005, 28),
		},
	},
	"pmf": {
		Name: "pmf", CPIVal: 3.2, WriteFrac: 0.35, MeanGap: 2,
		Components: []ComponentSpec{
			hot(1.4000, 14), stream(0.02, 27),
			zipf(0.06, 20, 1.5), zipf(0.05, 23, 1.5), zipf(0.09, 30, 2),
		},
	},
	"blas": {
		Name: "blas", CPIVal: 3.8, WriteFrac: 0.20, MeanGap: 3,
		Components: []ComponentSpec{
			hot(1.2945, 14), stream(0.02, 27),
			hot(0.04, 17), zipf(0.04, 20, 1.5), chase(0.04, 23), chase(0.10, 30),
		},
	},
}

// ComputeBound returns a profile whose working set fits the L1 cache
// almost entirely. The paper's benchmark selection *omits* such codes
// ("benchmarks that have very high L1 cache hit rates or low memory
// traffic") and notes the prediction mechanism "would be disabled to
// not waste energy or add latency" for them — this profile exists to
// exercise exactly that adaptive-disable path.
func ComputeBound() *Profile {
	return &Profile{
		Name: "computebound", CPIVal: 1.2, WriteFrac: 0.3, MeanGap: 2,
		Components: []ComponentSpec{
			hot(0.99, 13),
			// The rare L1 misses re-use an L2-resident region, so they
			// are all on-chip: prediction can never skip anything here
			// and is pure overhead.
			hot(0.01, 18),
		},
	}
}

// ProfileByName returns the profile for a single-program benchmark.
func ProfileByName(name string) (*Profile, error) {
	p, ok := profiles[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown benchmark %q", name)
	}
	return p, nil
}

// BenchmarkNames lists all eleven workloads in the paper's presentation
// order (Figures 6-15): the eight SPEC benchmarks, then mix, pmf, blas.
func BenchmarkNames() []string {
	return []string{
		"bwaves", "GemsFDTD", "lbm", "mcf", "milc", "soplex",
		"astar", "cactusADM", "mix", "pmf", "blas",
	}
}

// coreSpacing separates the address spaces of the per-core copies of a
// multiprogrammed benchmark: the paper duplicates each SPEC trace onto
// all 8 cores as independent processes, so the copies must not share
// physical blocks. Component regions are 1 TiB apart and footprints are
// < 2 GiB, so a 64 GiB per-core stride keeps all copies disjoint. The
// stride deliberately includes a non-round block multiple (it is not a
// multiple of any power of two >= 2^20): physical pages of distinct
// processes land at effectively independent frame numbers, so identical
// per-process access streams must NOT alias onto identical predictor
// entries or cache sets. A round 2^36 stride would collide all copies
// onto the same prediction-table indexes and manufacture false
// positives that do not exist on real hardware.
const coreSpacing = 1<<36 + 1<<20 + 1<<14 + 3*64

// Sources builds the per-core sources for a named workload:
//
//   - SPEC benchmarks are multiprogrammed (Section IV): every core runs
//     an identical copy of the stream in a disjoint address space.
//   - "pmf" and "blas" are parallel applications: the cores share one
//     address space (the same graph/matrix) but follow decorrelated
//     access orders, like the paper's 8 simultaneously-traced processes.
//   - "mix" runs a different SPEC benchmark on every core.
func Sources(name string, cores int, scale, seed uint64) ([]Source, error) {
	if cores <= 0 {
		return nil, fmt.Errorf("workload: cores must be positive, got %d", cores)
	}
	srcs := make([]Source, cores)
	switch name {
	case "mix":
		for i := 0; i < cores; i++ {
			p := profiles[SPECNames[i%len(SPECNames)]]
			s, err := newOffset(p, scale, seed, memaddr.Addr(uint64(i)*coreSpacing))
			if err != nil {
				return nil, err
			}
			srcs[i] = s
		}
	case "pmf", "blas":
		p := profiles[name]
		for i := 0; i < cores; i++ {
			s, err := newOffset(p, scale, seed+uint64(i)*0x9e37, 0)
			if err != nil {
				return nil, err
			}
			srcs[i] = s
		}
	case "computebound":
		// Not part of the paper's evaluated suite (such codes were
		// deliberately omitted); used by the adaptive-disable ablation.
		p := ComputeBound()
		for i := 0; i < cores; i++ {
			s, err := newOffset(p, scale, seed, memaddr.Addr(uint64(i)*coreSpacing))
			if err != nil {
				return nil, err
			}
			srcs[i] = s
		}
	default:
		p, err := ProfileByName(name)
		if err != nil {
			return nil, err
		}
		for i := 0; i < cores; i++ {
			s, err := newOffset(p, scale, seed, memaddr.Addr(uint64(i)*coreSpacing))
			if err != nil {
				return nil, err
			}
			srcs[i] = s
		}
	}
	return srcs, nil
}
