package workload

import (
	"fmt"

	"redhip/internal/memaddr"
)

// A component produces the address stream of one access pattern inside
// a workload. Components generate byte addresses inside a private
// region of the address space; the mixture source (source.go) picks a
// component per access according to the profile weights.
type component interface {
	// next returns the next byte address and a PC slot identifying
	// which synthetic instruction issued it (streams keep a stable PC
	// per sub-stream so the stride prefetcher sees realistic PCs). The
	// rng is owned by the enclosing source, so replays are
	// deterministic.
	next(r *rng) (memaddr.Addr, int)
	// reset re-derives all internal position state from the rng so a
	// source can be replayed from scratch.
	reset(r *rng)
	// footprint returns the region size in bytes the component touches.
	footprint() uint64
	// appendState appends the component's mutable cursor words to out
	// and returns it; restoreState consumes the same words from in,
	// returning the remainder. Together they let the warm-state
	// snapshot layer capture and re-seat a source mid-stream
	// (stateless components contribute zero words).
	appendState(out []uint64) []uint64
	restoreState(in []uint64) ([]uint64, error)
}

// shortState is the shared restoreState error for a state vector that
// ran out of words before a component was satisfied.
func shortState(kind string) error {
	return fmt.Errorf("workload: source state too short for %s component", kind)
}

// region assigns each component a disjoint piece of the address space.
// Regions are spaced 1 TiB apart so no two components ever alias, which
// keeps the locality of each pattern pure.
const regionStride = 1 << 40

func regionBase(i int) memaddr.Addr { return memaddr.Addr(uint64(i+1) * regionStride) }

// --- sequential stream ----------------------------------------------------

// streamComponent walks a region sequentially with a fixed element
// size, wrapping at the end. With 8-byte elements in 64-byte blocks,
// 7 of 8 accesses hit the L1 via spatial locality and every 8th access
// touches a new block — the classic streaming pattern (lbm, bwaves).
type streamComponent struct {
	base    memaddr.Addr
	size    uint64 // bytes
	elem    uint64 // element size in bytes
	pos     uint64
	backing bool // if true, stream reverses at the ends instead of wrapping
	dir     int64
}

func newStream(base memaddr.Addr, size, elem uint64) *streamComponent {
	if elem == 0 {
		elem = 8
	}
	return &streamComponent{base: base, size: size, elem: elem, dir: 1}
}

func (c *streamComponent) next(r *rng) (memaddr.Addr, int) {
	a := c.base + memaddr.Addr(c.pos)
	if c.backing {
		np := int64(c.pos) + c.dir*int64(c.elem)
		if np < 0 || uint64(np) >= c.size {
			c.dir = -c.dir
			np = int64(c.pos) + c.dir*int64(c.elem)
		}
		c.pos = uint64(np)
	} else {
		c.pos += c.elem
		if c.pos >= c.size {
			c.pos = 0
		}
	}
	return a, 0
}

func (c *streamComponent) reset(r *rng) { c.pos = 0; c.dir = 1 }

func (c *streamComponent) footprint() uint64 { return c.size }

func (c *streamComponent) appendState(out []uint64) []uint64 {
	return append(out, c.pos, uint64(c.dir))
}

func (c *streamComponent) restoreState(in []uint64) ([]uint64, error) {
	if len(in) < 2 {
		return nil, shortState("stream")
	}
	pos, dir := in[0], int64(in[1])
	if pos >= c.size {
		return nil, fmt.Errorf("workload: stream position %d outside region of %d bytes", pos, c.size)
	}
	if dir != 1 && dir != -1 {
		return nil, fmt.Errorf("workload: stream direction %d not ±1", dir)
	}
	c.pos, c.dir = pos, dir
	return in[2:], nil
}

// --- strided multi-stream --------------------------------------------------

// stridedComponent interleaves several concurrent streams, each with
// its own large stride — the pattern of multi-dimensional array sweeps
// (milc, GemsFDTD, cactusADM stencils). Large strides defeat spatial
// locality in L1 while remaining perfectly predictable for a stride
// prefetcher.
type stridedComponent struct {
	base    memaddr.Addr
	size    uint64
	strides []uint64
	pos     []uint64
	turn    int
}

func newStrided(base memaddr.Addr, size uint64, strides []uint64) *stridedComponent {
	c := &stridedComponent{base: base, size: size, strides: strides}
	c.pos = make([]uint64, len(strides))
	for i := range c.pos {
		// Offset the streams so they sweep different parts of the region.
		c.pos[i] = (size / uint64(len(strides))) * uint64(i)
	}
	return c
}

func (c *stridedComponent) next(r *rng) (memaddr.Addr, int) {
	i := c.turn
	c.turn = (c.turn + 1) % len(c.strides)
	a := c.base + memaddr.Addr(c.pos[i])
	c.pos[i] += c.strides[i]
	if c.pos[i] >= c.size {
		c.pos[i] -= c.size
	}
	return a, i
}

func (c *stridedComponent) reset(r *rng) {
	c.turn = 0
	for i := range c.pos {
		c.pos[i] = (c.size / uint64(len(c.strides))) * uint64(i)
	}
}

func (c *stridedComponent) footprint() uint64 { return c.size }

func (c *stridedComponent) appendState(out []uint64) []uint64 {
	out = append(out, uint64(c.turn))
	return append(out, c.pos...)
}

func (c *stridedComponent) restoreState(in []uint64) ([]uint64, error) {
	if len(in) < 1+len(c.pos) {
		return nil, shortState("strided")
	}
	if in[0] >= uint64(len(c.strides)) {
		return nil, fmt.Errorf("workload: strided turn %d outside %d streams", in[0], len(c.strides))
	}
	for i, p := range in[1 : 1+len(c.pos)] {
		if p >= c.size {
			return nil, fmt.Errorf("workload: strided stream %d position %d outside region of %d bytes", i, p, c.size)
		}
	}
	c.turn = int(in[0])
	copy(c.pos, in[1:1+len(c.pos)])
	return in[1+len(c.pos):], nil
}

// --- pointer chase ----------------------------------------------------------

// chaseComponent emulates pointer chasing over a region (mcf, astar,
// graph traversals): each access lands on an unpredictable block, with
// the walk visiting every block in the region before repeating. The
// walk is a full-period LCG over the region's block count, which gives
// a deterministic pseudo-random permutation with O(1) state: with
// c odd and a ≡ 1 (mod 4), x' = a*x + c (mod 2^m) has period 2^m
// (Hull–Dobell theorem).
type chaseComponent struct {
	base      memaddr.Addr
	blockBits uint // region holds 2^blockBits blocks
	x         uint64
	inc       uint64 // odd LCG increment; per-instance so two walks over
	// the same shared region follow different orbits (Hull–Dobell
	// holds for any odd increment)
}

func newChase(base memaddr.Addr, blockBits uint) *chaseComponent {
	return &chaseComponent{base: base, blockBits: blockBits}
}

const (
	lcgA = 6364136223846793005 // Knuth MMIX multiplier; a ≡ 1 (mod 4)
	lcgC = 1442695040888963407 // odd increment
)

func (c *chaseComponent) next(r *rng) (memaddr.Addr, int) {
	mask := uint64(1)<<c.blockBits - 1
	inc := c.inc
	if inc == 0 {
		inc = lcgC
	}
	c.x = (lcgA*c.x + inc) & mask
	// Scatter the access within the block a little so offsets look real.
	off := r.intn(memaddr.BlockSize/8) * 8
	return c.base + memaddr.Addr(c.x<<memaddr.BlockBits+off), 0
}

func (c *chaseComponent) reset(r *rng) {
	c.x = r.next() & (1<<c.blockBits - 1)
	c.inc = r.next() | 1
}

func (c *chaseComponent) footprint() uint64 { return 1 << (c.blockBits + memaddr.BlockBits) }

func (c *chaseComponent) appendState(out []uint64) []uint64 {
	return append(out, c.x, c.inc)
}

func (c *chaseComponent) restoreState(in []uint64) ([]uint64, error) {
	if len(in) < 2 {
		return nil, shortState("chase")
	}
	if in[0] >= uint64(1)<<c.blockBits {
		return nil, fmt.Errorf("workload: chase cursor %d outside 2^%d blocks", in[0], c.blockBits)
	}
	if in[1]&1 == 0 {
		return nil, fmt.Errorf("workload: chase increment %d not odd", in[1])
	}
	c.x, c.inc = in[0], in[1]
	return in[2:], nil
}

// --- hot set ---------------------------------------------------------------

// hotComponent accesses a small region uniformly at random — the
// register-spill / stack / hot-data accesses that give real programs
// their high L1 hit rates.
type hotComponent struct {
	base memaddr.Addr
	size uint64
}

func newHot(base memaddr.Addr, size uint64) *hotComponent {
	return &hotComponent{base: base, size: size}
}

func (c *hotComponent) next(r *rng) (memaddr.Addr, int) {
	return c.base + memaddr.Addr(r.intn(c.size/8)*8), int(r.intn(4))
}

func (c *hotComponent) reset(r *rng) {}

func (c *hotComponent) footprint() uint64 { return c.size }

func (c *hotComponent) appendState(out []uint64) []uint64 { return out }

func (c *hotComponent) restoreState(in []uint64) ([]uint64, error) { return in, nil }

// --- zipf over blocks --------------------------------------------------------

// zipfComponent draws blocks from an approximately Zipf-distributed
// popularity ranking over a region: a few blocks are very hot, with a
// long cold tail (sparse matrix rows, graph vertices with power-law
// degree — pmf, blas). Implemented by exponentiating a uniform draw,
// which concentrates mass near rank 0; the skew parameter is the
// exponent (larger = more skewed).
type zipfComponent struct {
	base   memaddr.Addr
	blocks uint64
	skew   float64
}

func newZipf(base memaddr.Addr, size uint64, skew float64) *zipfComponent {
	b := size / memaddr.BlockSize
	if b == 0 {
		b = 1
	}
	return &zipfComponent{base: base, blocks: b, skew: skew}
}

func (c *zipfComponent) next(r *rng) (memaddr.Addr, int) {
	u := r.float64()
	// rank in [0,1): u^skew pushes mass toward 0 for skew > 1.
	rank := u
	for i := 1.0; i < c.skew; i++ {
		rank *= u
	}
	block := uint64(rank * float64(c.blocks))
	if block >= c.blocks {
		block = c.blocks - 1
	}
	off := r.intn(memaddr.BlockSize/8) * 8
	return c.base + memaddr.Addr(block<<memaddr.BlockBits+off), 0
}

func (c *zipfComponent) reset(r *rng) {}

func (c *zipfComponent) footprint() uint64 { return c.blocks * memaddr.BlockSize }

func (c *zipfComponent) appendState(out []uint64) []uint64 { return out }

func (c *zipfComponent) restoreState(in []uint64) ([]uint64, error) { return in, nil }

// --- validation ---------------------------------------------------------------

func validateSize(what string, size uint64) error {
	if size < memaddr.BlockSize {
		return fmt.Errorf("workload: %s region (%d bytes) smaller than one block", what, size)
	}
	return nil
}
