package workload

// rng is a xorshift64* pseudo-random generator. The simulator must be
// fully deterministic (identical seeds produce identical traces and
// therefore identical simulation results down to the counter), so every
// source owns its own rng rather than sharing global state.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15 // xorshift state must be nonzero
	}
	return &rng{state: seed}
}

// next returns the next 64-bit pseudo-random value.
func (r *rng) next() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// intn returns a pseudo-random value in [0, n). n must be > 0.
func (r *rng) intn(n uint64) uint64 {
	if n == 0 {
		panic("workload: intn(0)")
	}
	return r.next() % n
}

// float64 returns a pseudo-random value in [0, 1).
func (r *rng) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}
