package workload

import (
	"strings"
	"testing"
)

// TestIntnZeroPanics pins the rng's n > 0 contract: a zero bound is a
// caller bug (a component with an empty region) and must fail loudly,
// with the package-prefixed message the project's lint rules require.
func TestIntnZeroPanics(t *testing.T) {
	r := newRNG(1)
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("intn(0) did not panic")
		}
		msg, ok := v.(string)
		if !ok {
			t.Fatalf("panic value is %T, want string", v)
		}
		if !strings.HasPrefix(msg, "workload: ") {
			t.Errorf("panic message %q does not name its package (want prefix \"workload: \")", msg)
		}
	}()
	r.intn(0)
}

// TestIntnBoundsAndDeterminism is the control: in-range draws stay in
// [0, n) and identical seeds replay the identical stream — the property
// every workload source is built on.
func TestIntnBoundsAndDeterminism(t *testing.T) {
	a, b := newRNG(42), newRNG(42)
	for i := 0; i < 1000; i++ {
		x, y := a.intn(17), b.intn(17)
		if x != y {
			t.Fatalf("draw %d diverged: %d vs %d for identical seeds", i, x, y)
		}
		if x >= 17 {
			t.Fatalf("draw %d out of range: %d", i, x)
		}
	}
}

// TestZeroSeedRemapped pins the xorshift nonzero-state remap: seed 0
// must produce a working stream, not a stuck all-zero generator.
func TestZeroSeedRemapped(t *testing.T) {
	r := newRNG(0)
	if r.next() == 0 && r.next() == 0 {
		t.Error("zero seed produced a stuck generator")
	}
}
