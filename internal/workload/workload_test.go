package workload

import (
	"testing"
	"testing/quick"

	"redhip/internal/memaddr"
	"redhip/internal/trace"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := newRNG(42), newRNG(42)
	for i := 0; i < 1000; i++ {
		if a.next() != b.next() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := newRNG(0)
	if r.next() == 0 && r.next() == 0 {
		t.Fatal("zero seed produced a dead generator")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := newRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.float64()
		if f < 0 || f >= 1 {
			t.Fatalf("float64() = %v outside [0,1)", f)
		}
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := newRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.intn(17)
		if v >= 17 {
			t.Fatalf("intn(17) = %d", v)
		}
	}
}

func TestRNGIntnZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("intn(0) did not panic")
		}
	}()
	newRNG(1).intn(0)
}

func TestStreamComponentSpatialLocality(t *testing.T) {
	c := newStream(0, 1<<20, 8)
	r := newRNG(1)
	prevBlock := memaddr.Addr(1 << 60)
	newBlocks := 0
	const n = 8000
	for i := 0; i < n; i++ {
		a, _ := c.next(r)
		if b := a.Block(); b != prevBlock {
			newBlocks++
			prevBlock = b
		}
	}
	// 8-byte elements in 64-byte blocks: one new block every 8 accesses.
	if newBlocks != n/8 {
		t.Fatalf("stream touched %d new blocks in %d accesses, want %d", newBlocks, n, n/8)
	}
}

func TestStreamComponentWraps(t *testing.T) {
	c := newStream(0x1000, 64, 8)
	r := newRNG(1)
	var last memaddr.Addr
	for i := 0; i < 9; i++ {
		last, _ = c.next(r)
	}
	if last != 0x1000 {
		t.Fatalf("after wrap, addr = %v, want 0x1000", last)
	}
}

func TestStridedComponentChangesBlocks(t *testing.T) {
	c := newStrided(0, 1<<24, []uint64{320, 640, 1280})
	r := newRNG(1)
	seen := map[memaddr.Addr]bool{}
	prev := map[int]memaddr.Addr{}
	for i := 0; i < 3000; i++ {
		a, slot := c.next(r)
		seen[a.Block()] = true
		if p, ok := prev[slot]; ok && i >= 3 {
			d := int64(a) - int64(p)
			// Each sub-stream must advance by its own constant stride
			// (modulo region wrap).
			if d != []int64{320, 640, 1280}[slot] && d < 0 {
				// wrap is allowed
				continue
			}
			if d != []int64{320, 640, 1280}[slot] {
				t.Fatalf("slot %d stride %d", slot, d)
			}
		}
		prev[slot] = a
	}
	if len(seen) < 2900 {
		t.Fatalf("strides >= block size must touch a new block nearly every access; got %d blocks", len(seen))
	}
}

func TestChaseComponentFullPeriod(t *testing.T) {
	// The LCG walk must visit every block in the region exactly once
	// per period (Hull–Dobell full-period property).
	const bits = 10
	c := newChase(0, bits)
	r := newRNG(3)
	c.reset(r)
	seen := make(map[memaddr.Addr]bool, 1<<bits)
	for i := 0; i < 1<<bits; i++ {
		a, _ := c.next(r)
		b := a.Block()
		if seen[b] {
			t.Fatalf("block %v revisited before full period at step %d", b, i)
		}
		seen[b] = true
	}
	if len(seen) != 1<<bits {
		t.Fatalf("visited %d blocks, want %d", len(seen), 1<<bits)
	}
}

func TestChaseComponentStaysInRegion(t *testing.T) {
	c := newChase(regionBase(0), 12)
	r := newRNG(5)
	c.reset(r)
	lo, hi := regionBase(0), regionBase(0)+memaddr.Addr(c.footprint())
	for i := 0; i < 10000; i++ {
		a, _ := c.next(r)
		if a < lo || a >= hi {
			t.Fatalf("chase escaped region: %v not in [%v, %v)", a, lo, hi)
		}
	}
}

func TestHotComponentStaysInRegion(t *testing.T) {
	c := newHot(0x1000, 4096)
	r := newRNG(9)
	for i := 0; i < 10000; i++ {
		a, _ := c.next(r)
		if a < 0x1000 || a >= 0x1000+4096 {
			t.Fatalf("hot escaped region: %v", a)
		}
	}
}

func TestZipfComponentSkew(t *testing.T) {
	c := newZipf(0, 1<<20, 2)
	r := newRNG(11)
	blocks := c.footprint() / memaddr.BlockSize
	lowHalf := 0
	const n = 20000
	for i := 0; i < n; i++ {
		a, _ := c.next(r)
		if uint64(a.Block()) < blocks/2 {
			lowHalf++
		}
	}
	// With skew 2 the low-rank half must receive well over half the mass.
	if float64(lowHalf)/n < 0.6 {
		t.Fatalf("zipf skew too weak: low half got %.2f of accesses", float64(lowHalf)/n)
	}
}

func TestRegionsDisjoint(t *testing.T) {
	for i := 0; i < 8; i++ {
		lo := regionBase(i)
		hi := lo + regionStride
		next := regionBase(i + 1)
		if next < hi {
			t.Fatalf("regions %d and %d overlap", i, i+1)
		}
	}
}

func TestAllProfilesValidate(t *testing.T) {
	for name, p := range profiles {
		if err := p.Validate(); err != nil {
			t.Errorf("profile %s: %v", name, err)
		}
		if p.Name != name {
			t.Errorf("profile map key %q != profile name %q", name, p.Name)
		}
	}
}

func TestProfileValidateRejectsBad(t *testing.T) {
	bad := []*Profile{
		{Name: "", CPIVal: 1, Components: []ComponentSpec{hot(1, 14)}},
		{Name: "x", CPIVal: 0, Components: []ComponentSpec{hot(1, 14)}},
		{Name: "x", CPIVal: 1},
		{Name: "x", CPIVal: 1, WriteFrac: 2, Components: []ComponentSpec{hot(1, 14)}},
		{Name: "x", CPIVal: 1, Components: []ComponentSpec{hot(0, 14)}},
		{Name: "x", CPIVal: 1, Components: []ComponentSpec{hot(1, 50)}},
		{Name: "x", CPIVal: 1, Components: []ComponentSpec{{Kind: KindStrided, Weight: 1, SizeLog2: 20}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad profile %d validated", i)
		}
	}
}

func TestBenchmarkNamesComplete(t *testing.T) {
	names := BenchmarkNames()
	if len(names) != 11 {
		t.Fatalf("got %d benchmarks, want 11", len(names))
	}
	for _, n := range names {
		if n == "mix" {
			continue
		}
		if _, err := ProfileByName(n); err != nil {
			t.Errorf("benchmark %q has no profile: %v", n, err)
		}
	}
}

func TestProfileByNameUnknown(t *testing.T) {
	if _, err := ProfileByName("nonesuch"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestSourceDeterministic(t *testing.T) {
	for _, name := range []string{"mcf", "lbm", "pmf"} {
		p, err := ProfileByName(name)
		if err != nil {
			t.Fatal(err)
		}
		a, err := New(p, 16, 1)
		if err != nil {
			t.Fatal(err)
		}
		b, err := New(p, 16, 1)
		if err != nil {
			t.Fatal(err)
		}
		var ra, rb trace.Record
		for i := 0; i < 5000; i++ {
			a.Next(&ra)
			b.Next(&rb)
			if ra != rb {
				t.Fatalf("%s: record %d diverged: %+v vs %+v", name, i, ra, rb)
			}
		}
	}
}

func TestSourceSeedsDiffer(t *testing.T) {
	p, _ := ProfileByName("mcf")
	a, _ := New(p, 16, 1)
	b, _ := New(p, 16, 2)
	var ra, rb trace.Record
	same := 0
	for i := 0; i < 1000; i++ {
		a.Next(&ra)
		b.Next(&rb)
		if ra == rb {
			same++
		}
	}
	if same > 100 {
		t.Fatalf("different seeds produced %d/1000 identical records", same)
	}
}

func TestSourceRejectsBadScale(t *testing.T) {
	p, _ := ProfileByName("mcf")
	if _, err := New(p, 3, 1); err == nil {
		t.Fatal("scale 3 accepted")
	}
	if _, err := New(p, 0, 1); err == nil {
		t.Fatal("scale 0 accepted")
	}
}

func TestSourceWriteFraction(t *testing.T) {
	p, _ := ProfileByName("lbm") // WriteFrac 0.45
	s, _ := New(p, 16, 1)
	var r trace.Record
	writes := 0
	const n = 50000
	for i := 0; i < n; i++ {
		s.Next(&r)
		if r.Write {
			writes++
		}
	}
	got := float64(writes) / n
	if got < 0.40 || got > 0.50 {
		t.Fatalf("write fraction %.3f, want ~0.45", got)
	}
}

func TestSourceMeanGap(t *testing.T) {
	p, _ := ProfileByName("bwaves") // MeanGap 2
	s, _ := New(p, 16, 1)
	var r trace.Record
	var total uint64
	const n = 50000
	for i := 0; i < n; i++ {
		s.Next(&r)
		total += uint64(r.Gap)
	}
	mean := float64(total) / n
	if mean < 1.5 || mean > 2.5 {
		t.Fatalf("mean gap %.2f, want ~2", mean)
	}
}

func TestSourcesSPECDisjointPerCore(t *testing.T) {
	srcs, err := Sources("mcf", 4, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	var recs [4]trace.Record
	for i := 0; i < 2000; i++ {
		for c := range srcs {
			srcs[c].Next(&recs[c])
		}
		// Identical streams (same seed) offset by disjoint address spaces.
		for c := 1; c < 4; c++ {
			want := recs[0].Addr + memaddr.Addr(uint64(c)*coreSpacing)
			if recs[c].Addr != want {
				t.Fatalf("core %d addr %v, want offset copy %v", c, recs[c].Addr, want)
			}
		}
	}
}

func TestSourcesParallelAppShareAddressSpace(t *testing.T) {
	srcs, err := Sources("blas", 4, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Collect block sets per core; parallel apps must overlap heavily.
	sets := make([]map[memaddr.Addr]bool, 4)
	var r trace.Record
	for c, s := range srcs {
		sets[c] = map[memaddr.Addr]bool{}
		for i := 0; i < 20000; i++ {
			s.Next(&r)
			sets[c][r.Addr.Block()] = true
		}
	}
	shared := 0
	for b := range sets[0] {
		if sets[1][b] {
			shared++
		}
	}
	if shared == 0 {
		t.Fatal("parallel app cores share no blocks")
	}
}

func TestSourcesMixDistinct(t *testing.T) {
	srcs, err := Sources("mix", 8, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, s := range srcs {
		names[s.Name()] = true
	}
	if len(names) != 8 {
		t.Fatalf("mix uses %d distinct benchmarks, want 8", len(names))
	}
}

func TestSourcesErrors(t *testing.T) {
	if _, err := Sources("nonesuch", 8, 16, 1); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if _, err := Sources("mcf", 0, 16, 1); err == nil {
		t.Fatal("zero cores accepted")
	}
}

func TestCapture(t *testing.T) {
	p, _ := ProfileByName("astar")
	s, _ := New(p, 16, 1)
	tr := Capture(s, 1000)
	if len(tr.Records) != 1000 {
		t.Fatalf("captured %d records", len(tr.Records))
	}
	if tr.Name != "astar" || tr.CPI != 2.8 {
		t.Fatalf("trace metadata %q cpi=%v", tr.Name, tr.CPI)
	}
}

func TestTraceSourceReplay(t *testing.T) {
	p, _ := ProfileByName("astar")
	s, _ := New(p, 16, 1)
	tr := Capture(s, 100)
	ts := FromTrace(tr)
	var r trace.Record
	for i := 0; i < 100; i++ {
		if !ts.Next(&r) {
			t.Fatalf("trace source ended early at %d", i)
		}
		if r != tr.Records[i] {
			t.Fatalf("record %d mismatch", i)
		}
	}
	if ts.Next(&r) {
		t.Fatal("trace source did not end")
	}
	ts.Rewind()
	if !ts.Next(&r) || r != tr.Records[0] {
		t.Fatal("rewind failed")
	}
}

func TestL1HitRateProxy(t *testing.T) {
	// The components sized <= 2^14 (scaled: 2^10) should dominate; as a
	// proxy for the paper's ~91.5% average L1 hit rate, check that for
	// every benchmark a large majority of accesses fall in hot regions
	// or repeat a recently used block.
	for _, name := range SPECNames {
		p, _ := ProfileByName(name)
		hotW, total := 0.0, 0.0
		for _, c := range p.Components {
			if c.SizeLog2 <= 15 {
				hotW += c.Weight
			}
			// Streams get 7/8 spatial hits.
			if c.Kind == KindStream {
				hotW += c.Weight * 7 / 8
			}
			total += c.Weight
		}
		if frac := hotW / total; frac < 0.72 {
			t.Errorf("%s: only %.2f of accesses have L1-level locality", name, frac)
		}
	}
}

func TestHashNameStable(t *testing.T) {
	if hashName("mcf") != hashName("mcf") {
		t.Fatal("hashName unstable")
	}
	if hashName("mcf") == hashName("lbm") {
		t.Fatal("hashName collision between benchmark names")
	}
}

func TestScaleShrinksFootprint(t *testing.T) {
	f := func(seedRaw uint16) bool {
		p, _ := ProfileByName("lbm")
		big, _ := New(p, 1, uint64(seedRaw))
		small, _ := New(p, 64, uint64(seedRaw))
		sb := trace.ComputeStats(Capture(big, 4000).Records)
		ss := trace.ComputeStats(Capture(small, 4000).Records)
		// The scaled-down workload must span a smaller address range
		// within each region.
		return ss.UniqueBlocks <= sb.UniqueBlocks+64
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
