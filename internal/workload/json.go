package workload

import (
	"encoding/json"
	"fmt"
	"io"
)

// JSON (de)serialisation of workload profiles, so custom workloads can
// be defined in files and fed to the CLI tools:
//
//	{
//	  "name": "kvstore",
//	  "cpi": 2.5,
//	  "writeFrac": 0.3,
//	  "meanGap": 2,
//	  "components": [
//	    {"kind": "hot",    "weight": 0.8,  "sizeLog2": 14},
//	    {"kind": "zipf",   "weight": 0.1,  "sizeLog2": 24, "skew": 1.5},
//	    {"kind": "chase",  "weight": 0.1,  "sizeLog2": 28}
//	  ]
//	}

var kindNames = map[ComponentKind]string{
	KindHot:     "hot",
	KindStream:  "stream",
	KindStrided: "strided",
	KindChase:   "chase",
	KindZipf:    "zipf",
}

// MarshalJSON renders the kind by name.
func (k ComponentKind) MarshalJSON() ([]byte, error) {
	name, ok := kindNames[k]
	if !ok {
		return nil, fmt.Errorf("workload: unknown component kind %d", int(k))
	}
	return json.Marshal(name)
}

// UnmarshalJSON parses a kind name.
func (k *ComponentKind) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	// Scan the kinds in declaration order instead of ranging over the
	// name map: the lookup result is the same, but the loop is
	// deterministic, which is the contract redhip-lint enforces on
	// simulation packages.
	for kind := KindHot; kind <= KindZipf; kind++ {
		if kindNames[kind] == name {
			*k = kind
			return nil
		}
	}
	return fmt.Errorf("workload: unknown component kind %q", name)
}

// jsonProfile is the wire format of a Profile.
type jsonProfile struct {
	Name       string          `json:"name"`
	CPI        float64         `json:"cpi"`
	WriteFrac  float64         `json:"writeFrac"`
	MeanGap    float64         `json:"meanGap"`
	Components []jsonComponent `json:"components"`
}

type jsonComponent struct {
	Kind     ComponentKind `json:"kind"`
	Weight   float64       `json:"weight"`
	SizeLog2 uint          `json:"sizeLog2"`
	Strides  []uint64      `json:"strides,omitempty"`
	Skew     float64       `json:"skew,omitempty"`
}

// WriteProfile encodes a profile as indented JSON.
func WriteProfile(w io.Writer, p *Profile) error {
	jp := jsonProfile{
		Name:      p.Name,
		CPI:       p.CPIVal,
		WriteFrac: p.WriteFrac,
		MeanGap:   p.MeanGap,
	}
	for _, c := range p.Components {
		jp.Components = append(jp.Components, jsonComponent{
			Kind: c.Kind, Weight: c.Weight, SizeLog2: c.SizeLog2,
			Strides: c.Strides, Skew: c.Skew,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jp)
}

// ReadProfile decodes and validates a JSON profile.
func ReadProfile(r io.Reader) (*Profile, error) {
	var jp jsonProfile
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&jp); err != nil {
		return nil, fmt.Errorf("workload: parsing profile: %w", err)
	}
	p := &Profile{
		Name:      jp.Name,
		CPIVal:    jp.CPI,
		WriteFrac: jp.WriteFrac,
		MeanGap:   jp.MeanGap,
	}
	for _, c := range jp.Components {
		p.Components = append(p.Components, ComponentSpec{
			Kind: c.Kind, Weight: c.Weight, SizeLog2: c.SizeLog2,
			Strides: c.Strides, Skew: c.Skew,
		})
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
