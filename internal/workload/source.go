// Package workload generates the synthetic memory-reference streams
// that stand in for the paper's Pin-collected traces of SPEC 2006,
// Graph500/CombBLAS and GraphLab PMF (Section IV).
//
// The paper's predictor sees only the address stream, so what matters
// for reproducing its results is the locality structure of each
// benchmark: the L1 hit rate, how much of the working set fits each
// cache level, the fraction of accesses that miss the whole hierarchy,
// and how predictable the strides are. Each benchmark is modelled as a
// weighted mixture of access-pattern components (hot set, sequential
// stream, multi-stride sweep, pointer chase, Zipf) whose region sizes
// are expressed at the paper's machine scale and divided by the
// configured scale factor, so the same profile drives both the exact
// Table I geometry and the laptop-scale runs.
package workload

import (
	"fmt"
	"sort"

	"redhip/internal/memaddr"
	"redhip/internal/trace"
)

// Source produces an endless stream of memory references. Sources are
// not safe for concurrent use; the simulator gives each core its own.
type Source interface {
	// Name identifies the workload (matches the paper's benchmark names).
	Name() string
	// CPI is the average cycles-per-instruction charged for the
	// non-memory instructions between references (Section IV).
	CPI() float64
	// Next fills rec with the next reference. It returns false only
	// for finite sources; the mixture sources here are endless.
	Next(rec *trace.Record) bool
}

// BatchSource is a Source with a bulk-generation fast path. The
// simulator refills a per-core record buffer through NextBatch in
// blocks of a few thousand records, paying source dispatch once per
// block instead of once per reference.
type BatchSource interface {
	Source
	// NextBatch fills buf with the next len(buf) references and returns
	// the number produced. A short count (n < len(buf)) means the
	// source is exhausted; the records it produces are exactly the
	// records the same source would have produced through repeated
	// Next calls, in the same order.
	NextBatch(buf []trace.Record) int
}

// WindowSource is the zero-copy refinement of BatchSource for sources
// backed by pre-materialised records: instead of copying into the
// caller's buffer, Window hands out read-only views of the backing
// slice. Replaying a materialised stream through this path costs a
// slice header per few thousand records — no per-record work at all.
type WindowSource interface {
	Source
	// Window returns up to max records, advancing the source past
	// them; an empty result means the source is exhausted. The caller
	// must treat the returned slice as immutable and must not retain
	// it across a subsequent Window call.
	Window(max int) []trace.Record
}

// StableWindowSource is the refinement of WindowSource for sources
// whose windows are views of immutable backing storage: the returned
// slices stay valid for the lifetime of the source, not merely until
// the next Window call. The multi-scheme engine front detects this
// capability to retain one window per block and share it across every
// per-scheme back half without copying (tracestore replays qualify;
// live generators do not).
type StableWindowSource interface {
	WindowSource
	// StableWindows reports whether Window results remain valid
	// indefinitely. Implementations return a constant true; the method
	// exists so a wrapper that forwards Window without the stability
	// guarantee cannot satisfy the interface by accident.
	StableWindows() bool
}

// StateSource is a Source whose generation cursor can be captured
// mid-stream and re-seated into a fresh instance: the warm-state
// snapshot layer records each per-core source's state at the
// warmup/measure boundary so a restored engine resumes the exact
// reference stream a straight-through run would have seen. The state
// is an opaque vector of words — callers store and transport it but
// never interpret it.
type StateSource interface {
	Source
	// AppendState appends the source's mutable cursor words to out and
	// returns it.
	AppendState(out []uint64) []uint64
	// RestoreState overwrites the source's cursor from a vector
	// previously produced by AppendState on an identically-constructed
	// source (same profile, scale, seed). It rejects vectors of the
	// wrong shape or with out-of-range cursors.
	RestoreState(state []uint64) error
}

// OffsetStater is implemented by finite replay sources whose state
// after consuming n records is a pure function of n. The multi-scheme
// engine front reads records ahead of engine consumption, so at a
// snapshot boundary the source's own cursor is past the boundary;
// StateAt lets the snapshot layer ask for the state at the boundary
// position without rewinding anything.
type OffsetStater interface {
	// StateAt returns the AppendState vector the source would report
	// after consuming exactly n records from the start.
	StateAt(n uint64) ([]uint64, error)
}

// AsBatch returns s itself when it already implements BatchSource and
// otherwise wraps it in a record-at-a-time adapter, so batch consumers
// (the simulator's refill loop, the trace materialiser) can accept any
// Source.
func AsBatch(s Source) BatchSource {
	if bs, ok := s.(BatchSource); ok {
		return bs
	}
	return batcher{s}
}

// batcher adapts a plain Source to BatchSource by looping Next.
type batcher struct{ Source }

func (b batcher) NextBatch(buf []trace.Record) int {
	for i := range buf {
		if !b.Next(&buf[i]) {
			return i
		}
	}
	return len(buf)
}

// ComponentKind selects one of the access-pattern building blocks.
type ComponentKind int

const (
	// KindHot is uniform traffic over a small hot region (stack,
	// globals); sized to fit L1 it produces the high L1 hit rates real
	// programs show.
	KindHot ComponentKind = iota
	// KindStream is a sequential walk with 8-byte elements.
	KindStream
	// KindStrided interleaves several large-stride sweeps.
	KindStrided
	// KindChase is a pseudo-random permutation walk (pointer chasing).
	KindChase
	// KindZipf draws blocks with a skewed popularity distribution.
	KindZipf
)

func (k ComponentKind) String() string {
	switch k {
	case KindHot:
		return "hot"
	case KindStream:
		return "stream"
	case KindStrided:
		return "strided"
	case KindChase:
		return "chase"
	case KindZipf:
		return "zipf"
	}
	return fmt.Sprintf("ComponentKind(%d)", int(k))
}

// ComponentSpec describes one component of a workload mixture.
type ComponentSpec struct {
	Kind ComponentKind
	// Weight is the probability mass of this component (the specs of a
	// profile are normalised).
	Weight float64
	// SizeLog2 is log2 of the region size in bytes at paper scale
	// (e.g. 26 = 64 MiB). Scaling subtracts log2(scale).
	SizeLog2 uint
	// Strides, for KindStrided, are the per-stream strides in bytes.
	Strides []uint64
	// Skew, for KindZipf, is the popularity skew (>= 1).
	Skew float64
}

// Profile is a complete workload description.
type Profile struct {
	Name string
	// CPI of the non-memory instructions (Section IV's timing model).
	CPIVal float64
	// WriteFrac is the fraction of references that are stores.
	WriteFrac float64
	// MeanGap is the average number of non-memory instructions between
	// references (the paper traces average 2: 1.5 B instructions for
	// 500 M references).
	MeanGap float64
	// Components of the mixture.
	Components []ComponentSpec
}

// Validate checks a profile for internal consistency.
func (p *Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("workload: profile has no name")
	}
	if len(p.Components) == 0 {
		return fmt.Errorf("workload: profile %q has no components", p.Name)
	}
	if p.CPIVal <= 0 {
		return fmt.Errorf("workload: profile %q has non-positive CPI %v", p.Name, p.CPIVal)
	}
	if p.WriteFrac < 0 || p.WriteFrac > 1 {
		return fmt.Errorf("workload: profile %q write fraction %v outside [0,1]", p.Name, p.WriteFrac)
	}
	total := 0.0
	for i, c := range p.Components {
		if c.Weight <= 0 {
			return fmt.Errorf("workload: profile %q component %d has non-positive weight", p.Name, i)
		}
		if c.SizeLog2 < memaddr.BlockBits || c.SizeLog2 > 40 {
			return fmt.Errorf("workload: profile %q component %d size 2^%d out of range", p.Name, i, c.SizeLog2)
		}
		if c.Kind == KindStrided && len(c.Strides) == 0 {
			return fmt.Errorf("workload: profile %q component %d strided with no strides", p.Name, i)
		}
		total += c.Weight
	}
	if total <= 0 {
		return fmt.Errorf("workload: profile %q has zero total weight", p.Name)
	}
	return nil
}

// mixSource is the Source implementation: a weighted mixture over
// components with a synthetic PC per (component, slot).
type mixSource struct {
	name       string
	cpi        float64
	writeFrac  float64
	gapCutoff  uint32 // gaps are uniform in [0, 2*mean], preserving the mean
	rng        *rng
	cum        []float64 // cumulative normalised weights
	components []component
	pcBase     []memaddr.Addr
}

// New builds a Source from a profile at the given scale. Scale divides
// every region size (it must be a power of two >= 1); scale 1 is the
// paper's geometry, scale 16 matches sim.ScaledConfig. The seed makes
// the stream reproducible.
func New(p *Profile, scale uint64, seed uint64) (Source, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if !memaddr.IsPow2(scale) {
		return nil, fmt.Errorf("workload: scale %d must be a power of two", scale)
	}
	scaleBits, err := memaddr.CheckedLog2("scale", scale)
	if err != nil {
		return nil, err
	}
	s := &mixSource{
		name:      p.Name,
		cpi:       p.CPIVal,
		writeFrac: p.WriteFrac,
		gapCutoff: uint32(2*p.MeanGap + 1),
		rng:       newRNG(seed ^ hashName(p.Name)),
	}
	total := 0.0
	for _, c := range p.Components {
		total += c.Weight
	}
	acc := 0.0
	for i, c := range p.Components {
		sizeLog := c.SizeLog2
		if sizeLog > memaddr.BlockBits+scaleBits {
			sizeLog -= scaleBits
		} else {
			sizeLog = memaddr.BlockBits // floor at one block
		}
		size := uint64(1) << sizeLog
		if err := validateSize(p.Name, size); err != nil {
			return nil, err
		}
		base := regionBase(i)
		var comp component
		switch c.Kind {
		case KindHot:
			comp = newHot(base, size)
		case KindStream:
			comp = newStream(base, size, 8)
		case KindStrided:
			comp = newStrided(base, size, c.Strides)
		case KindChase:
			comp = newChase(base, sizeLog-memaddr.BlockBits)
		case KindZipf:
			skew := c.Skew
			if skew < 1 {
				skew = 1
			}
			comp = newZipf(base, size, skew)
		default:
			return nil, fmt.Errorf("workload: profile %q component %d: unknown kind %v", p.Name, i, c.Kind)
		}
		comp.reset(s.rng)
		acc += c.Weight / total
		s.cum = append(s.cum, acc)
		s.components = append(s.components, comp)
		// A distinct synthetic code region per component. The spacing
		// is deliberately not a multiple of a power of two: real PCs
		// scatter across prefetcher table indexes, and round spacing
		// would alias every component onto the same RPT entry.
		s.pcBase = append(s.pcBase, memaddr.Addr(0x400000+uint64(i)*0xb3c))
	}
	s.cum[len(s.cum)-1] = 1.0 // guard against float accumulation error
	return s, nil
}

func (s *mixSource) Name() string { return s.name }

func (s *mixSource) CPI() float64 { return s.cpi }

func (s *mixSource) Next(rec *trace.Record) bool {
	u := s.rng.float64()
	ci := sort.SearchFloat64s(s.cum, u)
	if ci == len(s.cum) {
		ci = len(s.cum) - 1
	}
	addr, slot := s.components[ci].next(s.rng)
	rec.Addr = addr
	rec.PC = s.pcBase[ci] + memaddr.Addr(slot*4)
	rec.Write = s.rng.float64() < s.writeFrac
	if s.gapCutoff <= 1 {
		rec.Gap = 0
	} else {
		rec.Gap = uint32(s.rng.intn(uint64(s.gapCutoff)))
	}
	return true
}

// NextBatch implements BatchSource. The loop calls the concrete Next
// directly — no interface dispatch per record — and consumes the RNG in
// exactly the order repeated Next calls would, so batch-generated and
// record-at-a-time streams are bit-identical.
func (s *mixSource) NextBatch(buf []trace.Record) int {
	for i := range buf {
		s.Next(&buf[i])
	}
	return len(buf)
}

// AppendState implements StateSource: the RNG cursor followed by each
// component's cursor words, in component order.
func (s *mixSource) AppendState(out []uint64) []uint64 {
	out = append(out, s.rng.state)
	for _, c := range s.components {
		out = c.appendState(out)
	}
	return out
}

// RestoreState implements StateSource.
func (s *mixSource) RestoreState(state []uint64) error {
	if len(state) < 1 {
		return fmt.Errorf("workload: empty source state")
	}
	if state[0] == 0 {
		return fmt.Errorf("workload: source state has zero RNG cursor")
	}
	rest := state[1:]
	for _, c := range s.components {
		var err error
		if rest, err = c.restoreState(rest); err != nil {
			return err
		}
	}
	if len(rest) != 0 {
		return fmt.Errorf("workload: %d trailing source state words", len(rest))
	}
	s.rng.state = state[0]
	return nil
}

// newOffset builds a Source whose entire address stream is shifted by a
// constant, placing multiprogrammed copies of the same benchmark in
// disjoint address spaces.
func newOffset(p *Profile, scale, seed uint64, offset memaddr.Addr) (Source, error) {
	s, err := New(p, scale, seed)
	if err != nil {
		return nil, err
	}
	if offset == 0 {
		return s, nil
	}
	o := &offsetSource{Source: s, batch: AsBatch(s), offset: offset}
	o.state, _ = s.(StateSource)
	return o, nil
}

type offsetSource struct {
	Source
	batch  BatchSource // the same underlying source, for NextBatch
	state  StateSource // the same underlying source, for snapshotting
	offset memaddr.Addr
}

func (o *offsetSource) Next(rec *trace.Record) bool {
	ok := o.Source.Next(rec)
	rec.Addr += o.offset
	return ok
}

// NextBatch implements BatchSource: bulk-generate, then shift.
func (o *offsetSource) NextBatch(buf []trace.Record) int {
	n := o.batch.NextBatch(buf)
	for i := 0; i < n; i++ {
		buf[i].Addr += o.offset
	}
	return n
}

// AppendState implements StateSource by delegating to the wrapped
// source — the offset is a construction-time constant, not state.
func (o *offsetSource) AppendState(out []uint64) []uint64 {
	return o.state.AppendState(out)
}

// RestoreState implements StateSource.
func (o *offsetSource) RestoreState(state []uint64) error {
	return o.state.RestoreState(state)
}

// hashName mixes the profile name into the seed so distinct benchmarks
// sharing a seed still see decorrelated streams.
func hashName(name string) uint64 {
	var h uint64 = 1469598103934665603 // FNV-1a
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// Capture materialises n references from a source into a Trace, which
// is useful for writing trace files and for tests.
func Capture(src Source, n int) *trace.Trace {
	tr := &trace.Trace{Name: src.Name(), CPI: src.CPI()}
	tr.Records = make([]trace.Record, n)
	for i := 0; i < n; i++ {
		if !src.Next(&tr.Records[i]) {
			tr.Records = tr.Records[:i]
			break
		}
	}
	return tr
}

// TraceSource replays a finite, in-memory record slice as a Source
// (trace files written by cmd/redhip-trace, or streams materialised by
// the experiment runner's trace store). The record slice is read-only:
// any number of TraceSources may replay the same backing slice
// concurrently, each with its own cursor, which is what lets a scheme
// sweep fan out across worker goroutines over one materialised stream.
type TraceSource struct {
	name string
	cpi  float64
	recs []trace.Record
	pos  int
	// pin, when non-nil, keeps the records' backing resource alive: the
	// Go heap needs nothing here, but mmap-backed replays (the trace
	// store's disk tier) are unmapped by a finalizer on the pin, so the
	// source must hold it as long as its cursors and windows can reach
	// the records.
	pin any
}

// FromTrace wraps tr as a Source.
func FromTrace(tr *trace.Trace) *TraceSource {
	return &TraceSource{name: tr.Name, cpi: tr.CPI, recs: tr.Records}
}

// ReplayRecords wraps a shared, read-only record slice as a Source.
// The caller promises not to mutate recs afterwards.
func ReplayRecords(name string, cpi float64, recs []trace.Record) *TraceSource {
	return &TraceSource{name: name, cpi: cpi, recs: recs}
}

// ReplayRecordsPinned is ReplayRecords for records whose backing store
// has an explicit lifetime (an mmap'd disk-tier block): the source
// retains pin so the mapping outlives every cursor over it. Windows
// handed out by Window are guaranteed valid only while the source that
// produced them is still reachable.
func ReplayRecordsPinned(name string, cpi float64, recs []trace.Record, pin any) *TraceSource {
	return &TraceSource{name: name, cpi: cpi, recs: recs, pin: pin}
}

// Name implements Source.
func (t *TraceSource) Name() string { return t.name }

// CPI implements Source.
func (t *TraceSource) CPI() float64 { return t.cpi }

// Next implements Source; it returns false when the trace is exhausted.
func (t *TraceSource) Next(rec *trace.Record) bool {
	if t.pos >= len(t.recs) {
		return false
	}
	*rec = t.recs[t.pos]
	t.pos++
	return true
}

// NextBatch implements BatchSource: one bulk copy per refill.
func (t *TraceSource) NextBatch(buf []trace.Record) int {
	n := copy(buf, t.recs[t.pos:])
	t.pos += n
	return n
}

// Window returns up to max records starting at the cursor as a direct,
// read-only view of the backing slice, advancing the cursor past them.
// It returns an empty slice when the trace is exhausted. The simulator
// prefers this zero-copy path over NextBatch when the source supports
// it.
func (t *TraceSource) Window(max int) []trace.Record {
	end := t.pos + max
	if end > len(t.recs) {
		end = len(t.recs)
	}
	w := t.recs[t.pos:end]
	t.pos = end
	return w
}

// StableWindows implements StableWindowSource: the backing records are
// immutable and outlive the source, so windows never go stale.
func (t *TraceSource) StableWindows() bool { return true }

// AppendState implements StateSource: a replay's only cursor is its
// position.
func (t *TraceSource) AppendState(out []uint64) []uint64 {
	return append(out, uint64(t.pos))
}

// RestoreState implements StateSource.
func (t *TraceSource) RestoreState(state []uint64) error {
	if len(state) != 1 {
		return fmt.Errorf("workload: trace source state has %d words, want 1", len(state))
	}
	if state[0] > uint64(len(t.recs)) {
		return fmt.Errorf("workload: trace position %d beyond %d records", state[0], len(t.recs))
	}
	t.pos = int(state[0])
	return nil
}

// StateAt implements OffsetStater: the state after n records is just n.
func (t *TraceSource) StateAt(n uint64) ([]uint64, error) {
	if n > uint64(len(t.recs)) {
		return nil, fmt.Errorf("workload: trace position %d beyond %d records", n, len(t.recs))
	}
	return []uint64{n}, nil
}

// Rewind restarts the trace from the beginning.
func (t *TraceSource) Rewind() { t.pos = 0 }

// Len returns the total number of records in the trace.
func (t *TraceSource) Len() int { return len(t.recs) }
