package workload

import (
	"strings"
	"testing"
)

// FuzzReadProfile hammers the JSON profile parser: it must either
// reject the input or produce a profile that validates and generates.
func FuzzReadProfile(f *testing.F) {
	f.Add(`{"name":"x","cpi":1,"meanGap":1,"components":[{"kind":"hot","weight":1,"sizeLog2":14}]}`)
	f.Add(`{"name":"y","cpi":2,"components":[{"kind":"strided","weight":1,"sizeLog2":20,"strides":[64]}]}`)
	f.Add(`{`)
	f.Add(`[]`)
	f.Fuzz(func(t *testing.T, in string) {
		p, err := ReadProfile(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("ReadProfile returned an invalid profile: %v", err)
		}
		src, err := New(p, 16, 1)
		if err != nil {
			// Some valid profiles still fail source construction
			// (e.g. region floors); that is an error, not a panic.
			return
		}
		tr := Capture(src, 16)
		if len(tr.Records) != 16 {
			t.Fatalf("generated %d records", len(tr.Records))
		}
	})
}
