package sweep

import (
	"fmt"
	"strings"

	"redhip/internal/energy"
	"redhip/internal/sim"
	"redhip/internal/stats"
)

// Artifacts are a finished sweep's paper-figure outputs: one Fig
// 9-style per-level hit-rate table per scheme, plus a Fig 7-style
// dynamic-energy table (normalised to the base scheme when the grid
// includes it, absolute nanojoules otherwise). Every number derives
// only from deterministic simulation outputs — hit counts, energy
// meters, cycle counts — never from IDs, timestamps or scheduling, so
// two runs of the same grid render byte-identical artifacts no matter
// how their children interleaved or deduplicated.
type Artifacts struct {
	Grid     Grid           `json:"grid"`
	Children int            `json:"children"`
	Runs     int            `json:"runs"`
	HitRates []*stats.Table `json:"hit_rates"`
	Energy   *stats.Table   `json:"energy"`
	// Text is the rendered artifact: every table as aligned monospace
	// text, the form the smoke script diffs for bit-identity.
	Text string `json:"text"`
}

// Aggregate folds the children's results into Artifacts. results is
// indexed by Child.Index; each entry holds one sim.Result per grid
// scheme (the child job's lockstep output). The grid must be
// normalised and every child complete — a sweep with failed children
// has no artifacts.
func Aggregate(g Grid, children []Child, results [][]*sim.Result) (*Artifacts, error) {
	if len(results) != len(children) {
		return nil, fmt.Errorf("sweep: %d result sets for %d children", len(results), len(children))
	}
	// byScheme[s][childIndex] is the cell's result under scheme s.
	byScheme := make(map[string][]*sim.Result, len(g.Schemes))
	for _, name := range g.Schemes {
		byScheme[name] = make([]*sim.Result, len(children))
	}
	for i, set := range results {
		if len(set) == 0 {
			return nil, fmt.Errorf("sweep: child %d has no results", i)
		}
		for _, res := range set {
			if res == nil {
				return nil, fmt.Errorf("sweep: child %d has a nil result", i)
			}
			slot, ok := byScheme[res.Scheme.String()]
			if !ok {
				return nil, fmt.Errorf("sweep: child %d returned result for scheme %q outside the grid", i, res.Scheme)
			}
			slot[i] = res
		}
	}
	for _, name := range g.Schemes {
		for i, res := range byScheme[name] {
			if res == nil {
				return nil, fmt.Errorf("sweep: child %d missing result for scheme %q", i, name)
			}
		}
	}

	wlIndex := make(map[string]int, len(g.Workloads))
	for i, wl := range g.Workloads {
		wlIndex[wl] = i
	}
	cellsPerWorkload := len(g.Geometries) * len(g.Cores) * len(g.RefsPerCore) * len(g.Seeds)

	a := &Artifacts{Grid: g, Children: len(children), Runs: len(children) * len(g.Schemes)}

	// Fig 9-style tables: per-level hit rates for each scheme, one
	// column per workload plus the average, each cell the mean over the
	// workload's grid cells.
	columns := append([]string{"level"}, g.Workloads...)
	columns = append(columns, "average")
	for _, name := range g.Schemes {
		t := stats.NewTable(fmt.Sprintf("Per-level hit rates (%s), mean over %d grid cells/workload", name, cellsPerWorkload), columns...)
		for l := energy.L1; l < energy.NumLevels; l++ {
			cells := []string{l.String()}
			var all []float64
			for _, wl := range g.Workloads {
				var vals []float64
				for i, child := range children {
					if child.Workload != wl {
						continue
					}
					vals = append(vals, byScheme[name][i].HitRate(l))
				}
				all = append(all, stats.Mean(vals))
				cells = append(cells, stats.Pct(stats.Mean(vals), false))
			}
			cells = append(cells, stats.Pct(stats.Mean(all), false))
			t.AddRow(cells...)
		}
		a.HitRates = append(a.HitRates, t)
	}

	// Fig 7-style table: dynamic energy per scheme. When the grid
	// includes the base scheme each cell normalises to its own base run
	// (same workload, geometry, cores, refs, seed), exactly as Figure 7
	// normalises per workload; without a base the table reports
	// absolute dynamic nanojoules.
	base := byScheme[sim.Base.String()]
	energyCols := append([]string{"scheme"}, g.Workloads...)
	energyCols = append(energyCols, "average")
	var et *stats.Table
	if base != nil {
		et = stats.NewTable("Dynamic energy normalised to base (lower is better)", energyCols...)
	} else {
		et = stats.NewTable("Total dynamic energy (nJ)", energyCols...)
	}
	for _, name := range g.Schemes {
		if base != nil && name == sim.Base.String() {
			continue
		}
		cells := []string{name}
		var all []float64
		for _, wl := range g.Workloads {
			var vals []float64
			for i, child := range children {
				if child.Workload != wl {
					continue
				}
				res := byScheme[name][i]
				if base != nil {
					vals = append(vals, res.DynamicEnergyRatio(base[i]))
				} else {
					vals = append(vals, res.DynamicNJ())
				}
			}
			all = append(all, stats.Mean(vals))
			cells = append(cells, energyCell(stats.Mean(vals), base != nil))
		}
		cells = append(cells, energyCell(stats.Mean(all), base != nil))
		t := et
		t.AddRow(cells...)
	}
	a.Energy = et

	var b strings.Builder
	fmt.Fprintf(&b, "sweep aggregate: %d children, %d runs\n\n", a.Children, a.Runs)
	for _, t := range a.HitRates {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	b.WriteString(a.Energy.String())
	a.Text = b.String()
	return a, nil
}

func energyCell(v float64, normalised bool) string {
	if normalised {
		return stats.Pct(v, false)
	}
	return fmt.Sprintf("%.6g", v)
}
