package sweep

import (
	"reflect"
	"strings"
	"testing"

	"redhip/internal/sim"
	"redhip/internal/workload"
)

func TestGridNormalizeDefaults(t *testing.T) {
	g, err := Grid{Workloads: []string{"mcf", "mcf", "milc"}}.Normalize()
	if err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	if !reflect.DeepEqual(g.Workloads, []string{"mcf", "milc"}) {
		t.Errorf("workloads not deduped in order: %v", g.Workloads)
	}
	if len(g.Schemes) != len(sim.Schemes()) {
		t.Errorf("default schemes = %v, want all %d", g.Schemes, len(sim.Schemes()))
	}
	if !reflect.DeepEqual(g.Geometries, []string{"scaled"}) {
		t.Errorf("default geometry = %v", g.Geometries)
	}
	if g.Inclusion != "inclusive" || !reflect.DeepEqual(g.Seeds, []uint64{1}) {
		t.Errorf("defaults: inclusion=%q seeds=%v", g.Inclusion, g.Seeds)
	}
	if !reflect.DeepEqual(g.Cores, []int{0}) || !reflect.DeepEqual(g.RefsPerCore, []uint64{0}) {
		t.Errorf("defaults: cores=%v refs=%v", g.Cores, g.RefsPerCore)
	}
	if g.MaxInFlight != 4 {
		t.Errorf("default max_in_flight = %d", g.MaxInFlight)
	}
}

func TestGridNormalizeErrors(t *testing.T) {
	cases := []struct {
		name string
		grid Grid
	}{
		{"no workloads", Grid{}},
		{"unknown workload", Grid{Workloads: []string{"doom"}}},
		{"unknown scheme", Grid{Workloads: []string{"mcf"}, Schemes: []string{"magic"}}},
		{"unknown geometry", Grid{Workloads: []string{"mcf"}, Geometries: []string{"huge"}}},
		{"unknown inclusion", Grid{Workloads: []string{"mcf"}, Inclusion: "maybe"}},
		{"zero seed", Grid{Workloads: []string{"mcf"}, Seeds: []uint64{0}}},
		{"negative cores", Grid{Workloads: []string{"mcf"}, Cores: []int{-1}}},
		{"negative timeout", Grid{Workloads: []string{"mcf"}, TimeoutSeconds: -1}},
		{"negative in-flight", Grid{Workloads: []string{"mcf"}, MaxInFlight: -1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := tc.grid.Normalize(); err == nil {
				t.Fatalf("Normalize accepted %s", tc.name)
			}
		})
	}
}

// TestExpandOrder pins the canonical expansion order — workload
// outermost, then geometry, cores, refs, seed — that submission and
// aggregation both index by.
func TestExpandOrder(t *testing.T) {
	g, err := Grid{
		Workloads:   []string{"mcf", "milc"},
		Schemes:     []string{"base", "redhip"},
		Geometries:  []string{"smoke"},
		Seeds:       []uint64{1, 2},
		RefsPerCore: []uint64{1000, 2000},
	}.Normalize()
	if err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	if g.Count() != 8 || g.Runs() != 16 {
		t.Fatalf("Count=%d Runs=%d, want 8/16", g.Count(), g.Runs())
	}
	children := g.Expand()
	if len(children) != 8 {
		t.Fatalf("expanded to %d children", len(children))
	}
	want := []Child{
		{0, "mcf", "smoke", 0, 1000, 1},
		{1, "mcf", "smoke", 0, 1000, 2},
		{2, "mcf", "smoke", 0, 2000, 1},
		{3, "mcf", "smoke", 0, 2000, 2},
		{4, "milc", "smoke", 0, 1000, 1},
		{5, "milc", "smoke", 0, 1000, 2},
		{6, "milc", "smoke", 0, 2000, 1},
		{7, "milc", "smoke", 0, 2000, 2},
	}
	if !reflect.DeepEqual(children, want) {
		t.Fatalf("expansion order:\n got %v\nwant %v", children, want)
	}
}

// runGrid executes every child of a normalised grid through the real
// engine, returning results indexed like the orchestrator files them.
func runGrid(t *testing.T, g Grid, children []Child) [][]*sim.Result {
	t.Helper()
	schemes := make([]sim.Scheme, len(g.Schemes))
	byName := make(map[string]sim.Scheme)
	for _, sc := range sim.Schemes() {
		byName[sc.String()] = sc
	}
	for i, name := range g.Schemes {
		schemes[i] = byName[name]
	}
	results := make([][]*sim.Result, len(children))
	for i, c := range children {
		cfg := sim.Smoke()
		if c.RefsPerCore > 0 {
			cfg.RefsPerCore = c.RefsPerCore
		}
		srcs, err := workload.Sources(c.Workload, cfg.Cores, cfg.WorkloadScale, c.Seed)
		if err != nil {
			t.Fatalf("Sources(%s): %v", c.Workload, err)
		}
		res, err := sim.RunMulti(cfg, schemes, srcs)
		if err != nil {
			t.Fatalf("RunMulti(%s seed %d): %v", c.Workload, c.Seed, err)
		}
		results[i] = res
	}
	return results
}

func TestAggregate(t *testing.T) {
	g, err := Grid{
		Workloads:   []string{"mcf", "milc"},
		Schemes:     []string{"base", "redhip"},
		Geometries:  []string{"smoke"},
		Seeds:       []uint64{1, 2},
		RefsPerCore: []uint64{2000},
	}.Normalize()
	if err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	children := g.Expand()
	results := runGrid(t, g, children)

	a, err := Aggregate(g, children, results)
	if err != nil {
		t.Fatalf("Aggregate: %v", err)
	}
	if a.Children != 4 || a.Runs != 8 {
		t.Fatalf("artifact sizes %d/%d, want 4/8", a.Children, a.Runs)
	}
	if len(a.HitRates) != 2 {
		t.Fatalf("%d hit-rate tables, want one per scheme", len(a.HitRates))
	}
	for _, want := range []string{
		"Per-level hit rates (base)",
		"Per-level hit rates (redhip)",
		"Dynamic energy normalised to base",
		"mcf", "milc", "average",
	} {
		if !strings.Contains(a.Text, want) {
			t.Fatalf("artifact text missing %q:\n%s", want, a.Text)
		}
	}

	// Aggregation is a pure fold: the same inputs render the same
	// bytes, and result order within a child must not matter (the
	// orchestrator files whatever order the engine returned).
	b, err := Aggregate(g, children, results)
	if err != nil {
		t.Fatalf("Aggregate (second): %v", err)
	}
	if a.Text != b.Text {
		t.Fatalf("aggregate text unstable across identical inputs")
	}
	flipped := make([][]*sim.Result, len(results))
	for i, set := range results {
		rev := make([]*sim.Result, len(set))
		for j, r := range set {
			rev[len(set)-1-j] = r
		}
		flipped[i] = rev
	}
	c, err := Aggregate(g, children, flipped)
	if err != nil {
		t.Fatalf("Aggregate (flipped): %v", err)
	}
	if c.Text != a.Text {
		t.Fatalf("aggregate text depends on per-child result order")
	}
}

func TestAggregateRejectsIncompleteResults(t *testing.T) {
	g, err := Grid{
		Workloads:   []string{"mcf"},
		Schemes:     []string{"base", "redhip"},
		Geometries:  []string{"smoke"},
		RefsPerCore: []uint64{1000},
	}.Normalize()
	if err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	children := g.Expand()
	results := runGrid(t, g, children)

	if _, err := Aggregate(g, children, nil); err == nil {
		t.Fatalf("Aggregate accepted a missing result set")
	}
	if _, err := Aggregate(g, children, [][]*sim.Result{nil}); err == nil {
		t.Fatalf("Aggregate accepted an empty child result")
	}
	partial := [][]*sim.Result{results[0][:1]}
	if _, err := Aggregate(g, children, partial); err == nil {
		t.Fatalf("Aggregate accepted a child missing a scheme")
	}
}
