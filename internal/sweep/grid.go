// Package sweep turns a parameter grid — the cross product of
// workloads, geometries, core counts, simulation lengths and seeds,
// evaluated under a shared scheme list — into the deterministic child
// jobs a sweep orchestrator submits, and aggregates the children's
// simulation results back into paper-figure artifacts (Fig 9-style
// per-level hit-rate tables and Fig 7-style normalised energy tables).
//
// The package is deliberately pure: grid expansion and aggregation
// read no clocks, spawn no goroutines and iterate no maps, so the
// same grid always yields the same child order and byte-identical
// artifacts. The serving side (internal/serve) owns submission,
// concurrency and progress; redhip-lint's determinism analyzer
// patrols this package like any simulation package.
package sweep

import (
	"fmt"

	"redhip/internal/sim"
	"redhip/internal/workload"
)

// Grid is the request body of POST /v1/sweeps: the axes of a parameter
// sweep. Schemes are evaluated together within each cell (the engine
// runs them in lockstep over one trace), so they multiply runs but not
// child jobs; every other axis multiplies children.
type Grid struct {
	// Workloads to sweep; required.
	Workloads []string `json:"workloads"`
	// Schemes evaluated in every cell; default all five.
	Schemes []string `json:"schemes,omitempty"`
	// Geometries axis; default ["scaled"].
	Geometries []string `json:"geometries,omitempty"`
	// Inclusion policy shared by every cell; default "inclusive".
	Inclusion string `json:"inclusion,omitempty"`
	// Seeds axis; default [1]. Zero is rejected (the job layer would
	// silently rewrite it to 1, colliding with an explicit 1).
	Seeds []uint64 `json:"seeds,omitempty"`
	// Cores axis; default [0] meaning "the geometry preset's count".
	Cores []int `json:"cores,omitempty"`
	// RefsPerCore axis; default [0] meaning "the preset's length".
	RefsPerCore []uint64 `json:"refs_per_core,omitempty"`
	// WarmupRefsPerCore applies to every cell.
	WarmupRefsPerCore uint64 `json:"warmup_refs_per_core,omitempty"`
	// Prefetch applies to every cell.
	Prefetch bool `json:"prefetch,omitempty"`
	// TimeoutSeconds bounds each child's execution.
	TimeoutSeconds float64 `json:"timeout_seconds,omitempty"`
	// MaxInFlight bounds how many children the orchestrator keeps
	// submitted at once; default 4. The ceiling keeps one sweep from
	// monopolising the admission queue.
	MaxInFlight int `json:"max_in_flight,omitempty"`
}

// Child is one cell of the expanded grid: a single workload simulated
// under the grid's full scheme list at one (geometry, cores, refs,
// seed) point. Index is the cell's position in expansion order — the
// aggregation order, and the key the orchestrator files results under.
type Child struct {
	Index       int    `json:"index"`
	Workload    string `json:"workload"`
	Geometry    string `json:"geometry"`
	Cores       int    `json:"cores"`
	RefsPerCore uint64 `json:"refs_per_core"`
	Seed        uint64 `json:"seed"`
}

// Normalize fills defaults, validates every axis and returns the grid
// in canonical form (duplicates removed, order preserved). Child specs
// are re-validated by the job layer at admission; validating here too
// turns an impossible sweep into an immediate 400 instead of a failed
// child after queueing.
func (g Grid) Normalize() (Grid, error) {
	if len(g.Workloads) == 0 {
		return Grid{}, fmt.Errorf("sweep: grid requires at least one workload")
	}
	known := make(map[string]bool)
	for _, name := range workload.BenchmarkNames() {
		known[name] = true
	}
	g.Workloads = dedupeStrings(g.Workloads)
	for _, w := range g.Workloads {
		if !known[w] {
			return Grid{}, fmt.Errorf("sweep: unknown workload %q", w)
		}
	}
	if len(g.Schemes) == 0 {
		for _, sc := range sim.Schemes() {
			g.Schemes = append(g.Schemes, sc.String())
		}
	}
	g.Schemes = dedupeStrings(g.Schemes)
	schemes := make(map[string]bool)
	for _, sc := range sim.Schemes() {
		schemes[sc.String()] = true
	}
	for _, name := range g.Schemes {
		if !schemes[name] {
			return Grid{}, fmt.Errorf("sweep: unknown scheme %q", name)
		}
	}
	if len(g.Geometries) == 0 {
		g.Geometries = []string{"scaled"}
	}
	g.Geometries = dedupeStrings(g.Geometries)
	for _, geo := range g.Geometries {
		switch geo {
		case "paper", "scaled", "smoke":
		default:
			return Grid{}, fmt.Errorf("sweep: unknown geometry %q (want paper, scaled or smoke)", geo)
		}
	}
	if g.Inclusion == "" {
		g.Inclusion = "inclusive"
	}
	switch g.Inclusion {
	case "inclusive", "hybrid", "exclusive":
	default:
		return Grid{}, fmt.Errorf("sweep: unknown inclusion policy %q", g.Inclusion)
	}
	if len(g.Seeds) == 0 {
		g.Seeds = []uint64{1}
	}
	g.Seeds = dedupeUint64(g.Seeds)
	for _, s := range g.Seeds {
		if s == 0 {
			return Grid{}, fmt.Errorf("sweep: seed must be >= 1")
		}
	}
	if len(g.Cores) == 0 {
		g.Cores = []int{0}
	}
	g.Cores = dedupeInts(g.Cores)
	for _, c := range g.Cores {
		if c < 0 {
			return Grid{}, fmt.Errorf("sweep: cores must be >= 0, got %d", c)
		}
	}
	if len(g.RefsPerCore) == 0 {
		g.RefsPerCore = []uint64{0}
	}
	g.RefsPerCore = dedupeUint64(g.RefsPerCore)
	if g.TimeoutSeconds < 0 {
		return Grid{}, fmt.Errorf("sweep: timeout_seconds must be >= 0, got %g", g.TimeoutSeconds)
	}
	if g.MaxInFlight < 0 {
		return Grid{}, fmt.Errorf("sweep: max_in_flight must be >= 0, got %d", g.MaxInFlight)
	}
	if g.MaxInFlight == 0 {
		g.MaxInFlight = 4
	}
	return g, nil
}

// Count returns the child count of the expanded grid without
// materialising it, so an oversized sweep is rejected in O(1).
func (g Grid) Count() int {
	return len(g.Workloads) * len(g.Geometries) * len(g.Cores) * len(g.RefsPerCore) * len(g.Seeds)
}

// Runs returns the total simulation runs the sweep performs:
// children x schemes.
func (g Grid) Runs() int { return g.Count() * len(g.Schemes) }

// Expand materialises the grid's cells in canonical order — workload
// outermost, then geometry, cores, refs, seed — which is both the
// submission order and the aggregation order. The grid must be
// normalised.
func (g Grid) Expand() []Child {
	children := make([]Child, 0, g.Count())
	for _, wl := range g.Workloads {
		for _, geo := range g.Geometries {
			for _, cores := range g.Cores {
				for _, refs := range g.RefsPerCore {
					for _, seed := range g.Seeds {
						children = append(children, Child{
							Index:       len(children),
							Workload:    wl,
							Geometry:    geo,
							Cores:       cores,
							RefsPerCore: refs,
							Seed:        seed,
						})
					}
				}
			}
		}
	}
	return children
}

func dedupeStrings(in []string) []string {
	out := make([]string, 0, len(in))
	seen := make(map[string]bool, len(in))
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

func dedupeUint64(in []uint64) []uint64 {
	out := make([]uint64, 0, len(in))
	seen := make(map[uint64]bool, len(in))
	for _, v := range in {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

func dedupeInts(in []int) []int {
	out := make([]int, 0, len(in))
	seen := make(map[int]bool, len(in))
	for _, v := range in {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}
