package core

import (
	"testing"

	"redhip/internal/memaddr"
)

// TestTableOpsAllocationFree pins the zero-allocation contract of the
// prediction table's per-access operations: PredictPresent runs on
// every L1 miss and Set on every LLC fill, so neither may touch the
// heap in steady state.
func TestTableOpsAllocationFree(t *testing.T) {
	tb, err := NewTable(64<<10, 4)
	if err != nil {
		t.Fatal(err)
	}
	var sink bool
	if n := testing.AllocsPerRun(100, func() {
		for i := 0; i < 512; i++ {
			b := memaddr.Addr(i * 97)
			tb.Set(b)
			sink = tb.PredictPresent(b)
		}
	}); n != 0 {
		t.Errorf("table Set/PredictPresent allocated %.0f times per run, want 0", n)
	}
	_ = sink
}
