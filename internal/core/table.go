// Package core implements the paper's contribution: the ReDHiP
// prediction table (Section III). The table is a direct-mapped bit map
// over the hashed block address — one bit per entry, no counters, no
// associativity — indexed by the "bits-hash": the lowest p bits of the
// address after the block offset (Figure 3). A set bit means "the block
// may be in the LLC"; a clear bit means "the block is definitely not in
// any cache" (given an inclusive LLC), so the whole hierarchy below L1
// can be skipped.
//
// Bits are set when blocks are filled into the LLC and never cleared on
// eviction; instead the table is periodically *recalibrated* — rebuilt
// from the LLC tag array. Because the LLC set index is a suffix of the
// PT index whenever p >= k, all the blocks that map onto one 64-bit PT
// line live in the same LLC set, so one line is recomputed from one
// set's 16 tags with a 6-bit decoder per tag and an OR tree, in a
// single cycle (Figure 4); banking recalibrates several sets per cycle
// (Figure 5).
package core

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"redhip/internal/memaddr"
	"redhip/internal/redhipassert"
)

// LineBits is the width of one prediction-table line. A 64-bit line
// matches one 16-way LLC set when p-k = 6 (Table I's base design).
const LineBits = 64

// HashKind selects the table's index hash.
type HashKind int

const (
	// HashBits is the paper's bits-hash: the lowest p bits of the block
	// address. It is what makes one-cycle-per-set recalibration
	// possible, because the LLC set index is a suffix of the PT index.
	HashBits HashKind = iota
	// HashXor folds the block address into p bits by xor, like the CBF
	// baseline. Slightly more accurate per lookup, but the blocks
	// mapping to one entry scatter across the whole cache, so
	// recalibration degrades to a serial one-tag-per-cycle sweep
	// (Section III-B: "several million cycles"). Provided for the
	// ablation study of the paper's central design trade-off.
	HashXor
)

// String names the hash.
func (h HashKind) String() string {
	switch h {
	case HashBits:
		return "bits-hash"
	case HashXor:
		return "xor-hash"
	}
	return fmt.Sprintf("HashKind(%d)", int(h))
}

// Table is the ReDHiP prediction table.
type Table struct {
	words []uint64
	pBits uint     //redhip:transient geometry-derived index width, fixed by NewTableHash
	banks int      //redhip:transient construction config, fixed by NewTableHash
	mask  uint64   //redhip:transient derived from the entry count, rebuilt by NewTableHash
	hash  HashKind //redhip:transient construction config, fixed by NewTableHash

	// Counters for diagnostics and the evaluation.
	lookups  uint64
	predHits uint64 // predicted present
	sets     uint64 // Set() calls that flipped a bit 0->1
	recals   uint64

	recalBuf []uint64 //redhip:transient reusable tag scratch so Recalibrate stays allocation-free
}

// NewTable builds a prediction table of the given size in bytes, which
// must be a power of two. banks is the recalibration parallelism
// (Section IV uses 4: "the prediction table is split into 4 banks so
// that 4 sets can be recalibrated at the same time").
func NewTable(sizeBytes uint64, banks int) (*Table, error) {
	return NewTableHash(sizeBytes, banks, HashBits)
}

// NewTableHash builds a prediction table with an explicit hash kind.
// HashBits is the paper's design; HashXor exists for the ablation of
// the accuracy/recalibrability trade-off.
func NewTableHash(sizeBytes uint64, banks int, hash HashKind) (*Table, error) {
	if hash != HashBits && hash != HashXor {
		return nil, fmt.Errorf("core: unknown hash kind %d", int(hash))
	}
	if banks <= 0 {
		return nil, fmt.Errorf("core: banks must be positive, got %d", banks)
	}
	if sizeBytes < LineBits/8 {
		return nil, fmt.Errorf("core: table size %d smaller than one %d-bit line", sizeBytes, LineBits)
	}
	entries := sizeBytes * 8
	pBits, err := memaddr.CheckedLog2("prediction table entries", entries)
	if err != nil {
		return nil, err
	}
	return &Table{
		words: make([]uint64, entries/LineBits),
		pBits: pBits,
		banks: banks,
		mask:  entries - 1,
		hash:  hash,
	}, nil
}

// NewForCache builds a table at the paper's fixed 0.78% (= 1/128)
// storage-overhead ratio of the covered cache: a 64 MB LLC gets the
// 512 KB base table; in exclusive mode every level gets a table at the
// same ratio (Section III-C).
func NewForCache(cacheSizeBytes uint64, banks int) (*Table, error) {
	return NewTable(cacheSizeBytes/128, banks)
}

// PBits returns the index width p (22 for the 512 KB base design).
func (t *Table) PBits() uint { return t.pBits }

// SizeBytes returns the table capacity in bytes.
//
//redhip:phase-exclusive geometry read; len(words) is fixed at construction and never changes
func (t *Table) SizeBytes() uint64 { return uint64(len(t.words)) * LineBits / 8 }

// Banks returns the recalibration banking factor.
func (t *Table) Banks() int { return t.banks }

// Hash returns the table's hash kind.
func (t *Table) Hash() HashKind { return t.hash }

// Index computes the table index of a block address: the bits-hash
// (lowest p bits) by default, or the xor-fold of all p-bit chunks for
// HashXor tables.
//
//redhip:hotpath
func (t *Table) Index(block memaddr.Addr) uint64 {
	if t.hash == HashBits {
		return uint64(block) & t.mask
	}
	x := uint64(block)
	var h uint64
	for x != 0 {
		h ^= x & t.mask
		x >>= t.pBits
	}
	return h
}

// PredictPresent returns the prediction for a block address: true means
// "may be in the LLC" (access the hierarchy as usual), false means
// "definitely absent" (skip every level below L1).
//
//redhip:hotpath
//redhip:phase-exclusive simulate-phase access; each engine drives its own table from one goroutine, recalibration never overlaps lookups
func (t *Table) PredictPresent(block memaddr.Addr) bool {
	t.lookups++
	idx := t.Index(block)
	if redhipassert.Enabled {
		redhipassert.Check(idx <= t.mask, "core: prediction-table index out of range")
	}
	present := t.words[idx/LineBits]&(1<<(idx%LineBits)) != 0
	if present {
		t.predHits++
	}
	return present
}

// Set marks a block's entry, called when the block is filled into the
// LLC. Evictions do not clear bits (Section III-A: "A bit is set to one
// when an entry is added, but it is not updated to reflect eviction").
//
//redhip:hotpath
//redhip:phase-exclusive simulate-phase access; each engine drives its own table from one goroutine, recalibration never overlaps fills
func (t *Table) Set(block memaddr.Addr) {
	idx := t.Index(block)
	w := &t.words[idx/LineBits]
	bit := uint64(1) << (idx % LineBits)
	if *w&bit == 0 {
		t.sets++
	}
	*w |= bit
	if redhipassert.Enabled {
		redhipassert.Check(t.words[idx/LineBits]&bit != 0, "core: bit not visible after Set")
	}
}

// Clear zeroes the whole table (used by tests, at simulation start, and
// as the pre-fan-out reset inside the recalibration sweeps).
//
//redhip:phase-exclusive runs before any recalibration worker is spawned (or outside recalibration entirely)
func (t *Table) Clear() {
	for i := range t.words {
		t.words[i] = 0
	}
	if redhipassert.Enabled {
		redhipassert.Check(t.PopCount() == 0, "core: bits survived a Clear")
	}
}

// PopCount returns the number of set bits.
//
//redhip:phase-exclusive diagnostics read; callers invoke it between sweeps, never while workers run
func (t *Table) PopCount() uint64 {
	var n uint64
	for _, w := range t.words {
		n += uint64(bits.OnesCount64(w))
	}
	return n
}

// Stats reports the table's counters.
type Stats struct {
	Lookups          uint64
	PredictedPresent uint64
	PredictedAbsent  uint64
	BitsSet          uint64 // 0->1 transitions via Set
	Recalibrations   uint64
}

// Stats returns a snapshot of the counters.
func (t *Table) Stats() Stats {
	return Stats{
		Lookups:          t.lookups,
		PredictedPresent: t.predHits,
		PredictedAbsent:  t.lookups - t.predHits,
		BitsSet:          t.sets,
		Recalibrations:   t.recals,
	}
}

// SnapshotState copies out the table's warm state: the bit-map words
// and the lifetime counters (the counters matter because recalibration
// cadence and PredStats derive from their absolute values).
//
//redhip:phase-exclusive snapshot capture runs on the coordinator with every engine quiesced
func (t *Table) SnapshotState() (words []uint64, counters [4]uint64) {
	words = append([]uint64(nil), t.words...)
	counters = [4]uint64{t.lookups, t.predHits, t.sets, t.recals}
	return words, counters
}

// RestoreSnapshotState overwrites the table's words and counters with a
// previously-snapshotted state. The word count must match this table's
// size exactly.
//
//redhip:phase-exclusive restore runs on the coordinator before the engine is handed to any worker
func (t *Table) RestoreSnapshotState(words []uint64, counters [4]uint64) error {
	if len(words) != len(t.words) {
		return fmt.Errorf("core: snapshot has %d table words, table needs %d", len(words), len(t.words))
	}
	copy(t.words, words)
	t.lookups, t.predHits, t.sets, t.recals = counters[0], counters[1], counters[2], counters[3]
	if redhipassert.Enabled {
		redhipassert.Check(t.predHits <= t.lookups, "core: restored counters inconsistent (predHits > lookups)")
	}
	return nil
}

// TagArray is the view of the covered cache's tag array that the
// recalibration hardware reads: the per-set valid tags. *cache.Cache
// implements it.
type TagArray interface {
	NumSets() int
	SetBits() uint
	TagsInSet(set int, buf []uint64) []uint64
}

// RecalCost is the latency and energy of one full recalibration.
type RecalCost struct {
	// Cycles the machine stalls: ceil(sets/banks), one set per bank per
	// cycle (Section IV: 65536 sets / 4 banks = 16K cycles).
	Cycles uint64
	// EnergyNJ spent reading the tag array and rewriting the table.
	EnergyNJ float64
}

// Recalibrate rebuilds the table from the covered cache's tag array so
// it reflects exactly the current contents (false positives accumulated
// since the last rebuild are flushed; false negatives remain impossible
// because the rebuild happens atomically with respect to fills in the
// simulator). tagReadNJ is charged once per set swept; lineWriteNJ once
// per table word rewritten.
//
//redhip:phase-exclusive sequential sweep; the caller's goroutine owns the table for the whole rebuild
func (t *Table) Recalibrate(tags TagArray, tagReadNJ, lineWriteNJ float64) RecalCost {
	t.Clear()
	k := tags.SetBits()
	sets := tags.NumSets()
	if cap(t.recalBuf) == 0 {
		t.recalBuf = make([]uint64, 0, 32)
	}
	buf := t.recalBuf
	var totalTags uint64
	for s := 0; s < sets; s++ {
		buf = tags.TagsInSet(s, buf[:0])
		totalTags += uint64(len(buf))
		for _, tag := range buf {
			block := memaddr.BlockFromSetTag(uint64(s), tag, k)
			idx := t.Index(block)
			t.words[idx/LineBits] |= 1 << (idx % LineBits)
		}
	}
	t.recalBuf = buf[:0]
	t.recals++
	if redhipassert.Enabled {
		// A freshly rebuilt table reflects the tag array exactly: every
		// false positive accumulated since the last rebuild is gone.
		redhipassert.Check(t.FalsePositiveCount(tags) == 0, "core: false positives survived recalibration")
	}
	cost := RecalCost{
		EnergyNJ: float64(sets)*tagReadNJ + float64(len(t.words))*lineWriteNJ,
	}
	if t.hash == HashBits {
		// One set per bank per cycle: the 6-bit decoders + OR tree of
		// Figure 4 finish a whole set in one cycle.
		cost.Cycles = (uint64(sets) + uint64(t.banks) - 1) / uint64(t.banks)
	} else {
		// xor-hashed entries scatter: each tag must be read, hashed and
		// written back individually (Section III-B's "several million
		// cycles" scenario).
		cost.Cycles = totalTags
	}
	return cost
}

// minParallelSets is the sweep size below which partitioning cannot
// pay for its goroutines; smaller tag arrays recalibrate sequentially
// whatever fan-out the caller asks for.
const minParallelSets = 256

// RecalibrateParallel is Recalibrate with the set sweep partitioned
// into `workers` contiguous set ranges executed concurrently. The
// result is bit-identical to the sequential sweep whatever the worker
// count or interleaving, which is what lets the multi-scheme engine
// use it under the golden-fingerprint determinism contract:
//
//   - the rebuilt words are a disjunction of per-tag bits, and OR is
//     commutative, associative and idempotent — every schedule
//     produces the same bit map (cross-partition word sharing is
//     resolved with atomic read-OR-CAS, exact, not approximate);
//   - EnergyNJ is closed-form in the set and word counts, never
//     accumulated across partitions;
//   - Cycles is closed-form for the bits-hash and an integer tag total
//     for the xor-hash, reduced over partitions in partition order.
//
// workers <= 1 (or a sweep too small to split) delegates to the
// sequential, allocation-free Recalibrate.
func (t *Table) RecalibrateParallel(tags TagArray, tagReadNJ, lineWriteNJ float64, workers int) RecalCost {
	sets := tags.NumSets()
	if workers <= 1 || sets < minParallelSets {
		return t.Recalibrate(tags, tagReadNJ, lineWriteNJ)
	}
	if workers > sets {
		workers = sets
	}
	t.Clear()
	k := tags.SetBits()
	counts := make([]uint64, workers)
	chunk := (sets + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > sets {
			hi = sets
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			buf := make([]uint64, 0, 32)
			var n uint64
			for s := lo; s < hi; s++ {
				buf = tags.TagsInSet(s, buf[:0])
				n += uint64(len(buf))
				for _, tag := range buf {
					block := memaddr.BlockFromSetTag(uint64(s), tag, k)
					idx := t.Index(block)
					wi := idx / LineBits
					bit := uint64(1) << (idx % LineBits)
					// Atomic OR via CAS: partitions sharing a word (k <
					// 6 under the bits-hash, always under the xor-hash)
					// must not lose each other's bits.
					for {
						old := atomic.LoadUint64(&t.words[wi])
						if old&bit != 0 || atomic.CompareAndSwapUint64(&t.words[wi], old, old|bit) {
							break
						}
					}
				}
			}
			counts[w] = n
		}(w, lo, hi)
	}
	wg.Wait()
	// Partition-order reduction: identical to the sequential tag total
	// because integer addition over a fixed partition order is exact.
	var totalTags uint64
	for _, n := range counts {
		totalTags += n
	}
	t.recals++
	if redhipassert.Enabled {
		redhipassert.Check(t.FalsePositiveCount(tags) == 0, "core: false positives survived parallel recalibration")
	}
	cost := RecalCost{
		//redhip:phase-exclusive post-Wait costing read; every worker joined at wg.Wait above
		EnergyNJ: float64(sets)*tagReadNJ + float64(len(t.words))*lineWriteNJ,
	}
	if t.hash == HashBits {
		cost.Cycles = (uint64(sets) + uint64(t.banks) - 1) / uint64(t.banks)
	} else {
		cost.Cycles = totalTags
	}
	return cost
}

// FalsePositiveCount compares the table against the true cache contents
// and returns how many set bits have no resident block mapping to them.
// Used by tests and the accuracy diagnostics; not part of the hardware.
//
//redhip:phase-exclusive diagnostics read; runs after the sweep's workers have joined, or between sweeps
func (t *Table) FalsePositiveCount(tags TagArray) uint64 {
	truth := make([]uint64, len(t.words))
	k := tags.SetBits()
	buf := make([]uint64, 0, 32)
	for s := 0; s < tags.NumSets(); s++ {
		buf = tags.TagsInSet(s, buf[:0])
		for _, tag := range buf {
			block := memaddr.BlockFromSetTag(uint64(s), tag, k)
			idx := t.Index(block)
			truth[idx/LineBits] |= 1 << (idx % LineBits)
		}
	}
	var fp uint64
	for i, w := range t.words {
		fp += uint64(bits.OnesCount64(w &^ truth[i]))
	}
	return fp
}
