package core

import (
	"math/rand"
	"reflect"
	"testing"

	"redhip/internal/cache"
	"redhip/internal/memaddr"
)

// TestRecalibrateParallelMatchesSequential is the bit-identity
// contract of the set-partitioned recalibration sweep: for both index
// hashes and any worker count, the rebuilt table words, the cost model
// and the stats counters must equal a sequential Recalibrate of the
// same tag array. The sweep is exact (not approximately equal)
// because word bit-ORs are commutative/associative/idempotent, the
// energy term is closed-form in set and word counts, and the cycle
// term is either closed-form (bits-hash) or an integer tag total
// reduced in fixed partition order (xor-hash).
func TestRecalibrateParallelMatchesSequential(t *testing.T) {
	const tagReadNJ, lineWriteNJ = 1.171, 0.02
	for _, hash := range []HashKind{HashBits, HashXor} {
		llc := newLLC(t) // 4096 sets: well above minParallelSets
		seq, err := NewTableHash(32*1024, 4, hash)
		if err != nil {
			t.Fatal(err)
		}
		fillRandom(llc, seq, 30000, 9)
		wantCost := seq.Recalibrate(llc, tagReadNJ, lineWriteNJ)
		wantWords := append([]uint64(nil), seq.words...)
		wantStats := seq.Stats()
		for _, workers := range []int{1, 2, 3, 4, 7, 16, 5000} {
			par, err := NewTableHash(32*1024, 4, hash)
			if err != nil {
				t.Fatal(err)
			}
			// Replay the identical Set history (same stream, same seed,
			// LLC untouched) so the stats counters match seq's, then
			// pollute the words so the sweep's zeroing is exercised.
			rng := rand.New(rand.NewSource(9))
			for i := 0; i < 30000; i++ {
				par.Set(memaddr.Addr(rng.Uint64() % (1 << 30)).Block())
			}
			for i := range par.words {
				par.words[i] = ^uint64(0)
			}
			gotCost := par.RecalibrateParallel(llc, tagReadNJ, lineWriteNJ, workers)
			if gotCost != wantCost {
				t.Errorf("%s workers=%d: cost %+v, want %+v", hash, workers, gotCost, wantCost)
			}
			if !reflect.DeepEqual(par.words, wantWords) {
				t.Errorf("%s workers=%d: table words differ from sequential rebuild", hash, workers)
			}
			if got := par.Stats(); got != wantStats {
				t.Errorf("%s workers=%d: stats %+v, want %+v", hash, workers, got, wantStats)
			}
		}
	}
}

// TestRecalibrateParallelSmallArrayFallsBack pins the sequential
// fallback below minParallelSets: a small tag array must take the
// plain sweep (identical words and cost) no matter the fan-out.
func TestRecalibrateParallelSmallArrayFallsBack(t *testing.T) {
	// 64 KB / 16-way => 64 sets, below minParallelSets.
	small, err := cache.New(cache.Geometry{Name: "L4", SizeBytes: 64 << 10, Ways: 16, Banks: 4})
	if err != nil {
		t.Fatal(err)
	}
	seq := newPT(t, 1024)
	par := newPT(t, 1024)
	fillRandom(small, seq, 5000, 3)
	fillRandom(small, par, 5000, 3)
	wantCost := seq.Recalibrate(small, 1, 1)
	gotCost := par.RecalibrateParallel(small, 1, 1, 8)
	if gotCost != wantCost {
		t.Errorf("cost %+v, want %+v", gotCost, wantCost)
	}
	if !reflect.DeepEqual(par.words, seq.words) {
		t.Errorf("small-array parallel rebuild differs from sequential")
	}
}
