package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"redhip/internal/cache"
	"redhip/internal/memaddr"
)

func newLLC(t *testing.T) *cache.Cache {
	t.Helper()
	// Scaled LLC: 4 MB, 16-way => 4096 sets (k=12).
	c, err := cache.New(cache.Geometry{Name: "L4", SizeBytes: 4 << 20, Ways: 16, Banks: 4})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func newPT(t *testing.T, size uint64) *Table {
	t.Helper()
	tb, err := NewTable(size, 4)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestNewTableValidation(t *testing.T) {
	if _, err := NewTable(512*1024, 4); err != nil {
		t.Errorf("512KB table: %v", err)
	}
	if _, err := NewTable(0, 4); err == nil {
		t.Error("zero-size table accepted")
	}
	if _, err := NewTable(1000, 4); err == nil {
		t.Error("non-power-of-two size accepted")
	}
	if _, err := NewTable(512*1024, 0); err == nil {
		t.Error("zero banks accepted")
	}
	if _, err := NewTable(4, 1); err == nil {
		t.Error("table smaller than one line accepted")
	}
}

func TestPaperTableDimensions(t *testing.T) {
	tb := newPT(t, 512*1024)
	if tb.PBits() != 22 {
		t.Errorf("p = %d, want 22 (512KB of 1-bit entries)", tb.PBits())
	}
	if tb.SizeBytes() != 512*1024 {
		t.Errorf("size = %d", tb.SizeBytes())
	}
}

func TestNewForCacheOverheadRatio(t *testing.T) {
	// 0.78% of the LLC: 64MB -> 512KB, 4MB -> 32KB, 256KB -> 2KB.
	cases := []struct{ cacheSize, tableSize uint64 }{
		{64 << 20, 512 << 10},
		{4 << 20, 32 << 10},
		{256 << 10, 2 << 10},
	}
	for _, c := range cases {
		tb, err := NewForCache(c.cacheSize, 4)
		if err != nil {
			t.Fatalf("NewForCache(%d): %v", c.cacheSize, err)
		}
		if tb.SizeBytes() != c.tableSize {
			t.Errorf("NewForCache(%d) = %d bytes, want %d", c.cacheSize, tb.SizeBytes(), c.tableSize)
		}
		ratio := float64(tb.SizeBytes()) / float64(c.cacheSize)
		if ratio < 0.0077 || ratio > 0.0079 {
			t.Errorf("overhead ratio %.5f, want ~0.0078", ratio)
		}
	}
}

func TestIndexIsBitsHash(t *testing.T) {
	tb := newPT(t, 512*1024)
	f := func(raw uint64) bool {
		block := memaddr.Addr(raw).Block()
		return tb.Index(block) == uint64(block)&(1<<22-1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSetThenPredict(t *testing.T) {
	tb := newPT(t, 4096)
	b := memaddr.Addr(0x123456).Block()
	if tb.PredictPresent(b) {
		t.Fatal("fresh table predicted present")
	}
	tb.Set(b)
	if !tb.PredictPresent(b) {
		t.Fatal("set block predicted absent")
	}
	s := tb.Stats()
	if s.Lookups != 2 || s.PredictedPresent != 1 || s.PredictedAbsent != 1 || s.BitsSet != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestSetIdempotent(t *testing.T) {
	tb := newPT(t, 4096)
	b := memaddr.Addr(0x40).Block()
	tb.Set(b)
	tb.Set(b)
	if tb.PopCount() != 1 {
		t.Fatalf("popcount %d after double set", tb.PopCount())
	}
	if tb.Stats().BitsSet != 1 {
		t.Fatalf("BitsSet %d, want 1 (second set was no-op)", tb.Stats().BitsSet)
	}
}

func TestAliasingCollisions(t *testing.T) {
	// Two blocks whose low p bits agree must share an entry — the
	// "fundamental inaccuracy" the paper attributes the Oracle gap to.
	tb := newPT(t, 4096) // p = 15
	b1 := memaddr.Addr(0).Block()
	b2 := b1 + (1 << 15) // same low 15 bits
	tb.Set(b1)
	if !tb.PredictPresent(b2) {
		t.Fatal("aliased block not predicted present")
	}
}

func TestClear(t *testing.T) {
	tb := newPT(t, 4096)
	for i := 0; i < 100; i++ {
		tb.Set(memaddr.Addr(i * 64).Block())
	}
	tb.Clear()
	if tb.PopCount() != 0 {
		t.Fatal("clear left bits set")
	}
}

// fillRandom fills the LLC with n random blocks and sets the PT on each
// fill, mirroring what the simulator does.
func fillRandom(llc *cache.Cache, tb *Table, n int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		b := memaddr.Addr(rng.Uint64() % (1 << 30)).Block()
		llc.Fill(b)
		tb.Set(b)
	}
}

func TestNoFalseNegativesInvariant(t *testing.T) {
	// THE safety property: every block resident in the LLC must be
	// predicted present, at any point in the fill stream and after any
	// recalibration. A false negative would send an on-chip access to
	// memory and break correctness.
	llc := newLLC(t)
	tb := newPT(t, 32*1024) // 0.78% of 4MB
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50000; i++ {
		b := memaddr.Addr(rng.Uint64() % (1 << 28)).Block()
		llc.Fill(b)
		tb.Set(b)
		if i%9973 == 0 {
			llc.ForEachBlock(func(blk memaddr.Addr) {
				if !tb.PredictPresent(blk) {
					t.Fatalf("false negative for resident block %v at step %d", blk, i)
				}
			})
		}
	}
	tb.Recalibrate(llc, 1, 1)
	llc.ForEachBlock(func(blk memaddr.Addr) {
		if !tb.PredictPresent(blk) {
			t.Fatalf("false negative after recalibration for %v", blk)
		}
	})
}

func TestRecalibrationRemovesStaleBits(t *testing.T) {
	llc := newLLC(t)
	tb := newPT(t, 32*1024)
	fillRandom(llc, tb, 200000, 3)
	fpBefore := tb.FalsePositiveCount(llc)
	if fpBefore == 0 {
		t.Fatal("expected stale bits before recalibration (evictions never clear)")
	}
	tb.Recalibrate(llc, 1, 1)
	if fp := tb.FalsePositiveCount(llc); fp != 0 {
		t.Fatalf("%d false positives remain after recalibration", fp)
	}
	if tb.Stats().Recalibrations != 1 {
		t.Fatal("recalibration not counted")
	}
}

func TestRecalibrationMatchesGroundTruth(t *testing.T) {
	// After recalibration the table must equal the OR of the resident
	// blocks' hash bits exactly: popcount == distinct resident indexes.
	llc := newLLC(t)
	tb := newPT(t, 32*1024)
	fillRandom(llc, tb, 100000, 11)
	tb.Recalibrate(llc, 1, 1)
	distinct := map[uint64]bool{}
	llc.ForEachBlock(func(b memaddr.Addr) { distinct[tb.Index(b)] = true })
	if tb.PopCount() != uint64(len(distinct)) {
		t.Fatalf("popcount %d != %d distinct resident hashes", tb.PopCount(), len(distinct))
	}
}

func TestRecalCostModel(t *testing.T) {
	// Paper, Section IV: 64MB LLC (65536 sets), 4 banks => 16384 cycles.
	llc, err := cache.New(cache.Geometry{Name: "L4", SizeBytes: 64 << 20, Ways: 16, Banks: 4})
	if err != nil {
		t.Fatal(err)
	}
	tb := newPT(t, 512*1024)
	cost := tb.Recalibrate(llc, 1.171, 0.02)
	if cost.Cycles != 16384 {
		t.Fatalf("recal cycles = %d, want 16384", cost.Cycles)
	}
	wantNJ := 65536*1.171 + 65536*0.02 // 65536 sets read; 2^22/64 = 65536 lines written
	if diff := cost.EnergyNJ - wantNJ; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("recal energy = %v, want %v", cost.EnergyNJ, wantNJ)
	}
}

func TestRecalCostBanksScaling(t *testing.T) {
	llc := newLLC(t) // 4096 sets
	for _, banks := range []int{1, 2, 4, 8} {
		tb, err := NewTable(32*1024, banks)
		if err != nil {
			t.Fatal(err)
		}
		cost := tb.Recalibrate(llc, 1, 1)
		want := uint64((4096 + banks - 1) / banks)
		if cost.Cycles != want {
			t.Errorf("banks=%d: cycles %d, want %d", banks, cost.Cycles, want)
		}
	}
}

func TestSmallTableStillSound(t *testing.T) {
	// Even a table much smaller than the LLC's set count (p < k) must
	// preserve the no-false-negative property after recalibration.
	llc := newLLC(t)           // k = 12
	tb := newPT(t, LineBits/8) // p = 6 < k: one 64-bit line
	fillRandom(llc, tb, 20000, 5)
	tb.Recalibrate(llc, 1, 1)
	llc.ForEachBlock(func(b memaddr.Addr) {
		if !tb.PredictPresent(b) {
			t.Fatalf("false negative with tiny table for %v", b)
		}
	})
}

func TestLargerTablesFewerCollisions(t *testing.T) {
	// Fig. 11's premise: larger tables discriminate better. Measure
	// false-positive rate against absent blocks after identical fills.
	llc := newLLC(t)
	probe := func(sizeBytes uint64) float64 {
		llc.Flush()
		tb := newPT(t, sizeBytes)
		fillRandom(llc, tb, 100000, 21)
		tb.Recalibrate(llc, 1, 1)
		rng := rand.New(rand.NewSource(99))
		fp, n := 0, 0
		for i := 0; i < 20000; i++ {
			b := memaddr.Addr(rng.Uint64() % (1 << 28)).Block()
			if llc.Contains(b) {
				continue
			}
			n++
			if tb.PredictPresent(b) {
				fp++
			}
		}
		return float64(fp) / float64(n)
	}
	small := probe(2 * 1024)
	large := probe(128 * 1024)
	if large >= small {
		t.Fatalf("false-positive rate did not drop with table size: small=%v large=%v", small, large)
	}
}

func TestPredictionAccuracyPerBitVsCounters(t *testing.T) {
	// The paper's key insight: at equal area, 1-bit entries + recal
	// beat counters because they afford 4-8x more entries. Proxy test:
	// a 1-bit table with 8x the entries of a hypothetical 8-bit-counter
	// table has a strictly lower collision probability per entry.
	tb1, _ := NewTable(32*1024, 4) // 2^18 1-bit entries
	tb8, _ := NewTable(4*1024, 4)  // what fits in the same area at 8 bits/entry: 2^15
	if tb1.PBits() != tb8.PBits()+3 {
		t.Fatalf("entry count advantage wrong: %d vs %d", tb1.PBits(), tb8.PBits())
	}
}
