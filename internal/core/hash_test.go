package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"redhip/internal/cache"
	"redhip/internal/memaddr"
)

func TestHashKindNames(t *testing.T) {
	if HashBits.String() != "bits-hash" || HashXor.String() != "xor-hash" {
		t.Fatal("names")
	}
	if HashKind(9).String() == "" {
		t.Fatal("out-of-range name")
	}
}

func TestNewTableHashValidation(t *testing.T) {
	if _, err := NewTableHash(4096, 4, HashKind(9)); err == nil {
		t.Fatal("bad hash kind accepted")
	}
	tb, err := NewTableHash(4096, 4, HashXor)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Hash() != HashXor {
		t.Fatal("hash kind not stored")
	}
	def, _ := NewTable(4096, 4)
	if def.Hash() != HashBits {
		t.Fatal("default hash not bits")
	}
}

func TestXorIndexInRange(t *testing.T) {
	tb, _ := NewTableHash(4096, 4, HashXor)
	f := func(raw uint64) bool {
		return tb.Index(memaddr.Addr(raw).Block()) < uint64(1)<<tb.PBits()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestXorIndexMixesHighBits(t *testing.T) {
	tb, _ := NewTableHash(4096, 4, HashXor)
	base := memaddr.Addr(0x1000).Block()
	changed := 0
	for i := uint(20); i < 40; i++ {
		if tb.Index(base|1<<i) != tb.Index(base) {
			changed++
		}
	}
	if changed == 0 {
		t.Fatal("xor-hash ignores high bits")
	}
	// bits-hash by definition ignores bits above p.
	bits, _ := NewTableHash(4096, 4, HashBits)
	if bits.Index(base|1<<40) != bits.Index(base) {
		t.Fatal("bits-hash unexpectedly sensitive to high bits")
	}
}

func TestXorTableSound(t *testing.T) {
	// The conservativeness invariant must hold for the xor variant too.
	llc, err := cache.New(cache.Geometry{Name: "L4", SizeBytes: 1 << 20, Ways: 16, Banks: 4})
	if err != nil {
		t.Fatal(err)
	}
	tb, err := NewTableHash(8*1024, 4, HashXor)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50000; i++ {
		b := memaddr.Addr(rng.Uint64() % (1 << 28)).Block()
		llc.Fill(b)
		tb.Set(b)
	}
	tb.Recalibrate(llc, 1, 1)
	llc.ForEachBlock(func(b memaddr.Addr) {
		if !tb.PredictPresent(b) {
			t.Fatalf("xor table false negative for %v", b)
		}
	})
}

func TestXorRecalSerialCost(t *testing.T) {
	// The design argument quantified: xor recalibration costs one cycle
	// per resident tag, not one per set per bank.
	llc, err := cache.New(cache.Geometry{Name: "L4", SizeBytes: 1 << 20, Ways: 16, Banks: 4})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100000; i++ {
		llc.Fill(memaddr.Addr(rng.Uint64() % (1 << 28)).Block())
	}
	resident := uint64(llc.ValidBlocks())

	bitsTab, _ := NewTableHash(8*1024, 4, HashBits)
	xorTab, _ := NewTableHash(8*1024, 4, HashXor)
	cb := bitsTab.Recalibrate(llc, 1, 1)
	cx := xorTab.Recalibrate(llc, 1, 1)
	if wantBits := uint64(llc.NumSets() / 4); cb.Cycles != wantBits {
		t.Fatalf("bits-hash recal cycles %d, want %d", cb.Cycles, wantBits)
	}
	if cx.Cycles != resident {
		t.Fatalf("xor-hash recal cycles %d, want %d (one per resident tag)", cx.Cycles, resident)
	}
	if cx.Cycles <= cb.Cycles {
		t.Fatal("xor recalibration not more expensive than bits-hash")
	}
}

func TestMirrorEquivalenceToFreshRecal(t *testing.T) {
	// A bits-hash table freshly recalibrated must predict exactly like
	// a refcount mirror of the same size over the same contents — the
	// property the simulator's per-miss-recal model relies on.
	llc, err := cache.New(cache.Geometry{Name: "L4", SizeBytes: 1 << 19, Ways: 8, Banks: 4})
	if err != nil {
		t.Fatal(err)
	}
	tb, _ := NewTable(4096, 4)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 30000; i++ {
		llc.Fill(memaddr.Addr(rng.Uint64() % (1 << 26)).Block())
	}
	tb.Recalibrate(llc, 1, 1)
	// Rebuild ground truth per index.
	truth := map[uint64]bool{}
	llc.ForEachBlock(func(b memaddr.Addr) { truth[tb.Index(b)] = true })
	for i := 0; i < 20000; i++ {
		b := memaddr.Addr(rng.Uint64() % (1 << 26)).Block()
		if tb.PredictPresent(b) != truth[tb.Index(b)] {
			t.Fatalf("fresh table disagrees with contents mirror for %v", b)
		}
	}
}
