package stats

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// BarChart renders labelled values as horizontal ASCII bars — a
// terminal rendition of the paper's bar figures.
type BarChart struct {
	Title string
	Unit  string
	// Width is the maximum bar width in characters (default 48).
	Width  int
	labels []string
	values []float64
}

// NewBarChart creates a chart.
func NewBarChart(title, unit string) *BarChart {
	return &BarChart{Title: title, Unit: unit, Width: 48}
}

// Add appends one bar.
func (b *BarChart) Add(label string, value float64) {
	b.labels = append(b.labels, label)
	b.values = append(b.values, value)
}

// String renders the chart. Negative values extend left of the axis.
func (b *BarChart) String() string {
	if len(b.values) == 0 {
		return b.Title + "\n(empty)\n"
	}
	width := b.Width
	if width <= 0 {
		width = 48
	}
	maxAbs := 0.0
	labelW := 0
	for i, v := range b.values {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
		if len(b.labels[i]) > labelW {
			labelW = len(b.labels[i])
		}
	}
	if maxAbs == 0 {
		maxAbs = 1
	}
	hasNeg := false
	for _, v := range b.values {
		if v < 0 {
			hasNeg = true
			break
		}
	}
	var sb strings.Builder
	if b.Title != "" {
		fmt.Fprintf(&sb, "%s\n", b.Title)
	}
	for i, v := range b.values {
		bar := int(math.Round(math.Abs(v) / maxAbs * float64(width)))
		if bar == 0 && v != 0 {
			bar = 1
		}
		fmt.Fprintf(&sb, "%-*s ", labelW, b.labels[i])
		if hasNeg {
			// Two-sided axis: negatives grow left, positives right.
			if v < 0 {
				sb.WriteString(strings.Repeat(" ", width-bar))
				sb.WriteString(strings.Repeat("▒", bar))
				sb.WriteString("|")
				sb.WriteString(strings.Repeat(" ", width))
			} else {
				sb.WriteString(strings.Repeat(" ", width))
				sb.WriteString("|")
				sb.WriteString(strings.Repeat("█", bar))
				sb.WriteString(strings.Repeat(" ", width-bar))
			}
		} else {
			sb.WriteString(strings.Repeat("█", bar))
			sb.WriteString(strings.Repeat(" ", width-bar))
		}
		fmt.Fprintf(&sb, "  %.1f%s\n", v, b.Unit)
	}
	return sb.String()
}

// ParseCell extracts the numeric value from a rendered table cell like
// "+8.3%", "61.2%", "1.202" or "171". It reports false for
// non-numeric cells such as "-" or row labels.
func ParseCell(cell string) (float64, bool) {
	s := strings.TrimSpace(cell)
	s = strings.TrimPrefix(s, "+")
	s = strings.TrimSuffix(s, "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// Chart renders one column of a table (by index) as a bar chart, one
// bar per row, labelled by the row's first cell. Non-numeric cells are
// skipped. The typical use is charting the "average" column of a
// figure, paper-style.
func (t *Table) Chart(col int) *BarChart {
	unit := ""
	if col >= 0 && col < len(t.Columns) {
		// Percent columns render with a % unit.
		for _, row := range t.Rows {
			if col < len(row) && strings.HasSuffix(strings.TrimSpace(row[col]), "%") {
				unit = "%"
				break
			}
		}
	}
	c := NewBarChart(t.Title, unit)
	for _, row := range t.Rows {
		if col < 0 || col >= len(row) {
			continue
		}
		if v, ok := ParseCell(row[col]); ok {
			c.Add(row[0], v)
		}
	}
	return c
}
