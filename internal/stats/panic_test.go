package stats_test

import (
	"strings"
	"testing"

	"redhip/internal/stats"
)

// TestAddRowWidthMismatchPanics pins the table's row-width contract and
// the project rule (machine-checked by redhip-lint's invariant pass)
// that panic messages name their package.
func TestAddRowWidthMismatchPanics(t *testing.T) {
	cases := []struct {
		name  string
		cells []string
	}{
		{"too few", []string{"only-one"}},
		{"too many", []string{"a", "b", "c", "d"}},
		{"empty", nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tab := stats.NewTable("t", "col1", "col2", "col3")
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("AddRow(%d cells) on a 3-column table did not panic", len(tc.cells))
				}
				msg, ok := r.(string)
				if !ok {
					t.Fatalf("panic value is %T, want string", r)
				}
				if !strings.HasPrefix(msg, "stats: ") {
					t.Errorf("panic message %q does not name its package (want prefix \"stats: \")", msg)
				}
			}()
			tab.AddRow(tc.cells...)
		})
	}
}

// TestAddRowExactWidthOK is the control: a matching row is accepted.
func TestAddRowExactWidthOK(t *testing.T) {
	tab := stats.NewTable("t", "col1", "col2")
	tab.AddRow("a", "b")
	if !strings.Contains(tab.String(), "a") {
		t.Error("accepted row missing from rendered table")
	}
}
