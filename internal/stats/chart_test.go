package stats

import (
	"strings"
	"testing"
)

func TestParseCell(t *testing.T) {
	cases := []struct {
		in   string
		want float64
		ok   bool
	}{
		{"+8.3%", 8.3, true},
		{"-3.0%", -3, true},
		{"61.2%", 61.2, true},
		{"1.202", 1.202, true},
		{"171", 171, true},
		{" 42 ", 42, true},
		{"-", 0, false},
		{"oracle", 0, false},
		{"", 0, false},
	}
	for _, c := range cases {
		v, ok := ParseCell(c.in)
		if ok != c.ok || (ok && v != c.want) {
			t.Errorf("ParseCell(%q) = %v, %v; want %v, %v", c.in, v, ok, c.want, c.ok)
		}
	}
}

func TestBarChartRendersAllBars(t *testing.T) {
	c := NewBarChart("title", "%")
	c.Add("a", 10)
	c.Add("bb", 5)
	s := c.String()
	if !strings.Contains(s, "title") || !strings.Contains(s, "a ") || !strings.Contains(s, "bb") {
		t.Fatalf("missing parts:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	// The larger value gets the longer bar.
	if strings.Count(lines[1], "█") <= strings.Count(lines[2], "█") {
		t.Fatal("bar lengths not proportional")
	}
}

func TestBarChartNegativeAxis(t *testing.T) {
	c := NewBarChart("t", "%")
	c.Add("up", 8)
	c.Add("down", -3)
	s := c.String()
	if !strings.Contains(s, "▒") {
		t.Fatal("negative bar glyph missing")
	}
	if !strings.Contains(s, "|") {
		t.Fatal("axis missing")
	}
	if !strings.Contains(s, "-3.0%") {
		t.Fatal("negative value label missing")
	}
}

func TestBarChartEmpty(t *testing.T) {
	c := NewBarChart("t", "")
	if !strings.Contains(c.String(), "empty") {
		t.Fatal("empty chart rendering")
	}
}

func TestBarChartAllZero(t *testing.T) {
	c := NewBarChart("t", "")
	c.Add("z", 0)
	s := c.String() // must not divide by zero
	if !strings.Contains(s, "0.0") {
		t.Fatalf("zero chart:\n%s", s)
	}
}

func TestBarChartTinyValueStillVisible(t *testing.T) {
	c := NewBarChart("t", "")
	c.Add("big", 1000)
	c.Add("tiny", 0.01)
	lines := strings.Split(strings.TrimRight(c.String(), "\n"), "\n")
	if strings.Count(lines[2], "█") != 1 {
		t.Fatal("tiny nonzero value should render one glyph")
	}
}

func TestTableChart(t *testing.T) {
	tab := NewTable("Speedups", "scheme", "avg")
	tab.AddRow("oracle", "+13.0%")
	tab.AddRow("redhip", "+8.0%")
	tab.AddRow("phased", "-3.0%")
	tab.AddRow("header-ish", "-") // non-numeric: skipped
	c := tab.Chart(1)
	s := c.String()
	if !strings.Contains(s, "oracle") || !strings.Contains(s, "redhip") {
		t.Fatalf("labels missing:\n%s", s)
	}
	if strings.Contains(s, "header-ish") {
		t.Fatal("non-numeric row charted")
	}
	if c.Unit != "%" {
		t.Fatalf("unit = %q", c.Unit)
	}
}

func TestTableChartOutOfRangeColumn(t *testing.T) {
	tab := NewTable("t", "a")
	tab.AddRow("x")
	if got := tab.Chart(5).String(); !strings.Contains(got, "empty") {
		t.Fatalf("out-of-range column: %q", got)
	}
}
