// Package stats provides the small numeric and formatting helpers the
// experiment harness uses to turn simulation results into the rows and
// series the paper's figures report.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of xs, which must all be positive
// (0 is returned for an empty slice). Speedup factors are averaged
// geometrically.
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, nil
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return 0, fmt.Errorf("stats: geomean of non-positive value %v", x)
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs))), nil
}

// Min returns the smallest element (0 for an empty slice).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element (0 for an empty slice).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Table accumulates rows and renders them as aligned text or CSV. The
// experiment harness emits one Table per paper figure.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; it must match the column count.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("stats: row has %d cells for %d columns", len(cells), len(t.Columns)))
	}
	t.Rows = append(t.Rows, cells)
}

// AddFloatRow appends a row of a label plus formatted float cells.
func (t *Table) AddFloatRow(label string, format string, values ...float64) {
	cells := make([]string, 0, len(values)+1)
	cells = append(cells, label)
	for _, v := range values {
		cells = append(cells, fmt.Sprintf(format, v))
	}
	t.AddRow(cells...)
}

// String renders the table as aligned monospace text.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values with a header line.
// Cells containing commas or quotes are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				cell = `"` + strings.ReplaceAll(cell, `"`, `""`) + `"`
			}
			b.WriteString(cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavoured markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return b.String()
}

// Pct formats a fraction as a percentage string like "+8.3%" or "61.2%".
func Pct(v float64, signed bool) string {
	if signed {
		return fmt.Sprintf("%+.1f%%", 100*v)
	}
	return fmt.Sprintf("%.1f%%", 100*v)
}
