package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("empty mean")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("mean")
	}
}

func TestGeoMean(t *testing.T) {
	g, err := GeoMean([]float64{1, 4})
	if err != nil || math.Abs(g-2) > 1e-12 {
		t.Errorf("geomean = %v, %v", g, err)
	}
	if g, err := GeoMean(nil); err != nil || g != 0 {
		t.Errorf("empty geomean = %v, %v", g, err)
	}
	if _, err := GeoMean([]float64{1, -1}); err == nil {
		t.Error("negative accepted")
	}
	if _, err := GeoMean([]float64{0}); err == nil {
		t.Error("zero accepted")
	}
}

func TestGeoMeanBetweenMinMax(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r) + 1
		}
		g, err := GeoMean(xs)
		if err != nil {
			return false
		}
		return g >= Min(xs)-1e-9 && g <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, 1, 2}
	if Min(xs) != 1 || Max(xs) != 3 {
		t.Error("min/max")
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Error("empty min/max")
	}
}

func TestTableString(t *testing.T) {
	tab := NewTable("Title", "a", "bb")
	tab.AddRow("x", "y")
	tab.AddFloatRow("z", "%.1f", 3.14159)
	s := tab.String()
	for _, want := range []string{"Title", "a", "bb", "x", "y", "z", "3.1"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in:\n%s", want, s)
		}
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("lines = %d", len(lines))
	}
}

func TestTableRowMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on row mismatch")
		}
	}()
	NewTable("t", "a", "b").AddRow("only-one")
}

func TestCSV(t *testing.T) {
	tab := NewTable("t", "a", "b")
	tab.AddRow("1,2", `say "hi"`)
	csv := tab.CSV()
	if !strings.Contains(csv, `"1,2"`) {
		t.Errorf("comma not quoted: %s", csv)
	}
	if !strings.Contains(csv, `"say ""hi"""`) {
		t.Errorf("quote not escaped: %s", csv)
	}
	if !strings.HasPrefix(csv, "a,b\n") {
		t.Errorf("header missing: %s", csv)
	}
}

func TestMarkdown(t *testing.T) {
	tab := NewTable("My Table", "a", "b")
	tab.AddRow("1", "2")
	md := tab.Markdown()
	if !strings.Contains(md, "**My Table**") {
		t.Error("title missing")
	}
	if !strings.Contains(md, "| a | b |") || !strings.Contains(md, "| 1 | 2 |") {
		t.Errorf("markdown rows wrong:\n%s", md)
	}
	if !strings.Contains(md, "|---|---|") {
		t.Error("separator missing")
	}
}

func TestPct(t *testing.T) {
	if Pct(0.083, true) != "+8.3%" {
		t.Errorf("signed: %s", Pct(0.083, true))
	}
	if Pct(0.612, false) != "61.2%" {
		t.Errorf("unsigned: %s", Pct(0.612, false))
	}
	if Pct(-0.03, true) != "-3.0%" {
		t.Errorf("negative: %s", Pct(-0.03, true))
	}
}
