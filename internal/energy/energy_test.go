package energy

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) < 1e-9 || math.Abs(a-b) < 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

func TestPaperConstantsMatchTableI(t *testing.T) {
	p := Paper()
	cases := []struct {
		level Level
		delay uint32
		nj    float64
		leak  float64
	}{
		{L1, 2, 0.0144, 0.0013},
		{L2, 6, 0.0634, 0.02},
		{L3, 12, 0.348 + 0.839, 0.16},
		{L4, 22, 1.171 + 5.542, 2.56},
	}
	for _, c := range cases {
		le := p.Levels[c.level]
		if le.ParallelDelay() != c.delay {
			t.Errorf("%v delay %d, want %d", c.level, le.ParallelDelay(), c.delay)
		}
		if !almostEqual(le.ParallelNJ(), c.nj) {
			t.Errorf("%v energy %v, want %v", c.level, le.ParallelNJ(), c.nj)
		}
		if le.LeakW != c.leak {
			t.Errorf("%v leak %v, want %v", c.level, le.LeakW, c.leak)
		}
	}
	if p.PTDelay != 1 || p.PTWireDelay != 5 || p.PTAccessNJ != 0.02 {
		t.Errorf("PT params %d/%d/%v", p.PTDelay, p.PTWireDelay, p.PTAccessNJ)
	}
	if p.ClockGHz != 3.7 {
		t.Errorf("clock %v", p.ClockGHz)
	}
}

func TestPhasedSplitNumbers(t *testing.T) {
	// Table I quotes separate tag/data numbers for L3/L4 precisely so
	// Phased Cache can be modelled: tag access then data on hit.
	p := Paper()
	if p.Levels[L3].TagDelay != 9 || p.Levels[L3].TagNJ != 0.348 {
		t.Errorf("L3 tag: %d cy, %v nJ", p.Levels[L3].TagDelay, p.Levels[L3].TagNJ)
	}
	if p.Levels[L4].TagDelay != 13 || p.Levels[L4].TagNJ != 1.171 {
		t.Errorf("L4 tag: %d cy, %v nJ", p.Levels[L4].TagDelay, p.Levels[L4].TagNJ)
	}
	// The tag:data energy gap the paper cites (1:3 to 1:5).
	for _, l := range []Level{L3, L4} {
		ratio := p.Levels[l].DataNJ / p.Levels[l].TagNJ
		if ratio < 2 || ratio > 6 {
			t.Errorf("%v data:tag ratio %v outside the paper's range", l, ratio)
		}
	}
}

func TestValidate(t *testing.T) {
	p := Paper()
	if err := p.Validate(); err != nil {
		t.Fatalf("paper params invalid: %v", err)
	}
	bad := Paper()
	bad.ClockGHz = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero clock accepted")
	}
	bad = Paper()
	bad.Levels[L2].DataDelay = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero delay accepted")
	}
	bad = Paper()
	bad.Levels[L1].DataNJ = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero energy accepted")
	}
	bad = Paper()
	bad.Levels[L3].LeakW = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative leakage accepted")
	}
}

func TestLevelString(t *testing.T) {
	if L1.String() != "L1" || L4.String() != "L4" {
		t.Fatal("level names wrong")
	}
	if Level(9).String() != "Level(9)" {
		t.Fatal("out-of-range level name wrong")
	}
}

func TestMeterAccumulation(t *testing.T) {
	p := Paper()
	var m Meter
	m.AddParallel(L3, &p)
	m.AddTag(L4, &p)
	m.AddData(L4, &p)
	m.AddFill(L1, &p)
	m.AddPT(0.02)
	m.AddRecal(100)
	if !almostEqual(m.LevelNJ(L3), 1.187) {
		t.Errorf("L3 = %v", m.LevelNJ(L3))
	}
	if !almostEqual(m.LevelNJ(L4), 6.713) {
		t.Errorf("L4 = %v", m.LevelNJ(L4))
	}
	if !almostEqual(m.LevelNJ(L1), 0.0144) {
		t.Errorf("L1 fill = %v", m.LevelNJ(L1))
	}
	want := 1.187 + 6.713 + 0.0144 + 0.02 + 100
	if !almostEqual(m.DynamicNJ(), want) {
		t.Errorf("total = %v, want %v", m.DynamicNJ(), want)
	}
}

func TestMeterAdd(t *testing.T) {
	p := Paper()
	var a, b Meter
	a.AddParallel(L1, &p)
	b.AddParallel(L2, &p)
	b.AddPT(1)
	a.Add(&b)
	if !almostEqual(a.DynamicNJ(), 0.0144+0.0634+1) {
		t.Errorf("merged total = %v", a.DynamicNJ())
	}
}

func TestMeterAddCommutes(t *testing.T) {
	f := func(x, y uint8) bool {
		p := Paper()
		var a, b Meter
		for i := 0; i < int(x); i++ {
			a.AddParallel(L3, &p)
			a.AddPT(0.02)
		}
		for i := 0; i < int(y); i++ {
			b.AddData(L4, &p)
			b.AddRecal(3)
		}
		var ab, ba Meter
		ab.Add(&a)
		ab.Add(&b)
		ba.Add(&b)
		ba.Add(&a)
		return almostEqual(ab.DynamicNJ(), ba.DynamicNJ())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLeakage(t *testing.T) {
	p := Paper()
	// Total leakage: 8*(0.0013+0.02+0.16) + 2.56 = 4.0104 W.
	// Over 3.7e9 cycles (1 second) that is 4.0104 J = 4.0104e9 nJ.
	got := LeakageNJ(&p, 8, 3_700_000_000)
	if !almostEqual(got, 4.0104e9) {
		t.Fatalf("leakage = %v nJ, want 4.0104e9", got)
	}
}

func TestLeakageScalesLinearlyWithTime(t *testing.T) {
	p := Paper()
	a := LeakageNJ(&p, 8, 1000)
	b := LeakageNJ(&p, 8, 2000)
	if !almostEqual(2*a, b) {
		t.Fatalf("leakage not linear in cycles: %v, %v", a, b)
	}
}

func TestLowerLevelsDominate(t *testing.T) {
	// The paper's motivation: L3/L4 accesses are an order of magnitude
	// more expensive than L1/L2, so infrequent lower-level accesses can
	// consume ~80% of dynamic cache energy.
	p := Paper()
	if p.Levels[L4].ParallelNJ() < 100*p.Levels[L1].ParallelNJ() {
		t.Error("L4 access should be >> 100x L1 access energy")
	}
	if p.Levels[L3].ParallelNJ() < 10*p.Levels[L2].ParallelNJ() {
		t.Error("L3 access should be >> 10x L2 access energy")
	}
}

func TestPTAccessNJFor(t *testing.T) {
	if got := PTAccessNJFor(0.02, 512*1024); !almostEqual(got, 0.02) {
		t.Errorf("512KB: %v", got)
	}
	if got := PTAccessNJFor(0.02, 2*1024*1024); !almostEqual(got, 0.04) {
		t.Errorf("2MB: %v, want 0.04", got)
	}
	if got := PTAccessNJFor(0.02, 128*1024); !almostEqual(got, 0.01) {
		t.Errorf("128KB: %v, want 0.01", got)
	}
	if got := PTAccessNJFor(0.02, 0); got != 0 {
		t.Errorf("0B: %v", got)
	}
}
