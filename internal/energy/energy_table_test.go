package energy

import (
	"math"
	"strings"
	"testing"
)

// TestPTAccessNJForScalingTable pins the sqrt-capacity scaling law over
// a spread of table sizes: doubling capacity four times doubles access
// energy twice (sqrt), and the reference size is the fixed point.
func TestPTAccessNJForScalingTable(t *testing.T) {
	const base = 0.02
	cases := []struct {
		name      string
		sizeBytes uint64
		want      float64
	}{
		{"zero size", 0, 0},
		{"1/16 reference", 32 * 1024, base / 4},
		{"1/4 reference", 128 * 1024, base / 2},
		{"reference 512KB", 512 * 1024, base},
		{"4x reference", 2 * 1024 * 1024, base * 2},
		{"16x reference", 8 * 1024 * 1024, base * 4},
		{"64x reference", 32 * 1024 * 1024, base * 8},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := PTAccessNJFor(base, tc.sizeBytes)
			if math.Abs(got-tc.want) > 1e-12 {
				t.Errorf("PTAccessNJFor(%v, %d) = %v, want %v", base, tc.sizeBytes, got, tc.want)
			}
		})
	}
}

// TestValidateErrorTable sweeps every rejection path of Params.Validate
// and checks each error names the package and the offending level —
// the same "diagnostics name their subsystem" rule the lint suite
// enforces on panic messages.
func TestValidateErrorTable(t *testing.T) {
	cases := []struct {
		name     string
		mutate   func(*Params)
		wantPart string
	}{
		{"zero clock", func(p *Params) { p.ClockGHz = 0 }, "clock"},
		{"negative clock", func(p *Params) { p.ClockGHz = -2 }, "clock"},
		{"L1 zero delay", func(p *Params) { p.Levels[L1].TagDelay, p.Levels[L1].DataDelay = 0, 0 }, "L1"},
		{"L2 zero delay", func(p *Params) { p.Levels[L2].TagDelay, p.Levels[L2].DataDelay = 0, 0 }, "L2"},
		{"L3 zero energy", func(p *Params) { p.Levels[L3].TagNJ, p.Levels[L3].DataNJ = 0, 0 }, "L3"},
		{"L4 negative energy", func(p *Params) { p.Levels[L4].TagNJ, p.Levels[L4].DataNJ = 0, -1 }, "L4"},
		{"L4 negative leakage", func(p *Params) { p.Levels[L4].LeakW = -0.5 }, "L4"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := Paper()
			tc.mutate(&p)
			err := p.Validate()
			if err == nil {
				t.Fatal("invalid params accepted")
			}
			if !strings.HasPrefix(err.Error(), "energy: ") {
				t.Errorf("error %q does not name its package", err)
			}
			if !strings.Contains(err.Error(), tc.wantPart) {
				t.Errorf("error %q does not name the offending field (want %q)", err, tc.wantPart)
			}
		})
	}
}

// TestLeakageNJTable pins leakage against hand-computed values: private
// levels leak per core, the shared L4 once, and the total converts
// W -> nJ through the clock.
func TestLeakageNJTable(t *testing.T) {
	p := Paper()
	var perCore, shared float64
	for l := L1; l < NumLevels; l++ {
		if l == L4 {
			shared = p.Levels[l].LeakW
		} else {
			perCore += p.Levels[l].LeakW
		}
	}
	nanosPerCycle := 1.0 / p.ClockGHz
	cases := []struct {
		name   string
		cores  int
		cycles uint64
	}{
		{"single core single cycle", 1, 1},
		{"paper core count", 8, 1000},
		{"many cycles", 4, 1 << 20},
		{"zero cycles", 8, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := (perCore*float64(tc.cores) + shared) * float64(tc.cycles) * nanosPerCycle
			got := LeakageNJ(&p, tc.cores, tc.cycles)
			if math.Abs(got-want) > math.Abs(want)*1e-12 {
				t.Errorf("LeakageNJ(cores=%d, cycles=%d) = %v, want %v", tc.cores, tc.cycles, got, want)
			}
		})
	}
}

// TestMeterCategoryAccountingTable drives each Add* entry point and
// checks both the per-level and the total dynamic views agree.
func TestMeterCategoryAccountingTable(t *testing.T) {
	p := Paper()
	cases := []struct {
		name   string
		charge func(*Meter)
		level  Level
		want   func() float64
	}{
		{"tag only", func(m *Meter) { m.AddTag(L3, &p) }, L3, func() float64 { return p.Levels[L3].TagNJ }},
		{"data only", func(m *Meter) { m.AddData(L3, &p) }, L3, func() float64 { return p.Levels[L3].DataNJ }},
		{"parallel = tag+data", func(m *Meter) { m.AddParallel(L2, &p) }, L2,
			func() float64 { return p.Levels[L2].TagNJ + p.Levels[L2].DataNJ }},
		{"fill charges data write", func(m *Meter) { m.AddFill(L4, &p) }, L4,
			func() float64 { return p.Levels[L4].DataNJ }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var m Meter
			tc.charge(&m)
			want := tc.want()
			if got := m.LevelNJ(tc.level); math.Abs(got-want) > 1e-12 {
				t.Errorf("LevelNJ(%v) = %v, want %v", tc.level, got, want)
			}
			if got := m.DynamicNJ(); math.Abs(got-want) > 1e-12 {
				t.Errorf("DynamicNJ() = %v, want %v (single charge must appear exactly once)", got, want)
			}
		})
	}
	t.Run("pt and recal stay out of the cache levels", func(t *testing.T) {
		var m Meter
		m.AddPT(0.25)
		m.AddRecal(3.5)
		for l := L1; l < NumLevels; l++ {
			if m.LevelNJ(l) != 0 {
				t.Errorf("PT/recal charge leaked into level %v", l)
			}
		}
		if got := m.DynamicNJ(); math.Abs(got-3.75) > 1e-12 {
			t.Errorf("DynamicNJ() = %v, want 3.75 (PT + recalibration both count as dynamic energy)", got)
		}
	})
}
