// Package energy models the dynamic and static energy of the simulated
// hierarchy using the CACTI 6.5-derived constants the paper publishes
// in Table I. Dynamic energy is charged per tag-array and data-array
// access; leakage is integrated over simulated time at the per-cache
// leakage powers (Section IV).
package energy

import (
	"fmt"
	"math"
)

// Level identifies a cache level in the 4-deep hierarchy.
type Level int

// The four cache levels of the paper's hierarchy (Figure 2).
const (
	L1 Level = iota
	L2
	L3
	L4
	NumLevels
)

// String returns "L1".."L4".
func (l Level) String() string {
	if l < L1 || l >= NumLevels {
		return fmt.Sprintf("Level(%d)", int(l))
	}
	return [...]string{"L1", "L2", "L3", "L4"}[l]
}

// CacheEnergy holds the per-access latency/energy constants of one
// cache level. L1 and L2 are small enough that the paper quotes a
// single access delay and energy; we fold those into the data figures
// and set the tag figures to zero, so "parallel access" arithmetic is
// uniform across levels.
type CacheEnergy struct {
	TagDelay  uint32  // cycles
	DataDelay uint32  // cycles; for L1/L2 this is the whole access
	TagNJ     float64 // nJ per tag-array access
	DataNJ    float64 // nJ per data-array access; L1/L2: whole access
	LeakW     float64 // leakage power per cache instance, watts
}

// ParallelDelay is the access latency when tag and data arrays are
// probed in parallel (the base configuration at every level).
func (c CacheEnergy) ParallelDelay() uint32 {
	if c.DataDelay > c.TagDelay {
		return c.DataDelay
	}
	return c.TagDelay
}

// ParallelNJ is the dynamic energy of a parallel tag+data access.
func (c CacheEnergy) ParallelNJ() float64 { return c.TagNJ + c.DataNJ }

// Params collects every timing/energy constant of the simulation.
type Params struct {
	Levels [NumLevels]CacheEnergy
	// Prediction table access: 1 cycle through the table plus the
	// processor-to-LLC wire (Table I).
	PTDelay     uint32
	PTWireDelay uint32
	PTAccessNJ  float64
	// ClockGHz converts cycles to time for leakage integration.
	ClockGHz float64
}

// Paper returns the Table I constants.
func Paper() Params {
	return Params{
		Levels: [NumLevels]CacheEnergy{
			L1: {TagDelay: 0, DataDelay: 2, TagNJ: 0, DataNJ: 0.0144, LeakW: 0.0013},
			L2: {TagDelay: 0, DataDelay: 6, TagNJ: 0, DataNJ: 0.0634, LeakW: 0.02},
			L3: {TagDelay: 9, DataDelay: 12, TagNJ: 0.348, DataNJ: 0.839, LeakW: 0.16},
			L4: {TagDelay: 13, DataDelay: 22, TagNJ: 1.171, DataNJ: 5.542, LeakW: 2.56},
		},
		PTDelay:     1,
		PTWireDelay: 5,
		PTAccessNJ:  0.02,
		ClockGHz:    3.7,
	}
}

// PTAccessNJFor scales the 512 KB prediction table's access energy to a
// different table size. CACTI access energy grows roughly with the
// square root of capacity for small SRAM arrays, so we scale by
// sqrt(size/512KB); the sensitivity study (Fig. 11) deliberately
// ignores prediction overhead, so only the headline results feel this.
func PTAccessNJFor(baseNJ float64, sizeBytes uint64) float64 {
	const refSize = 512 * 1024
	if sizeBytes == 0 {
		return 0
	}
	return baseNJ * math.Sqrt(float64(sizeBytes)/refSize)
}

// Validate sanity-checks the parameters.
func (p *Params) Validate() error {
	if p.ClockGHz <= 0 {
		return fmt.Errorf("energy: clock %v GHz must be positive", p.ClockGHz)
	}
	for l := L1; l < NumLevels; l++ {
		c := p.Levels[l]
		if c.ParallelDelay() == 0 {
			return fmt.Errorf("energy: %v has zero access delay", l)
		}
		if c.ParallelNJ() <= 0 {
			return fmt.Errorf("energy: %v has non-positive access energy", l)
		}
		if c.LeakW < 0 {
			return fmt.Errorf("energy: %v has negative leakage", l)
		}
	}
	return nil
}

// Meter accumulates dynamic energy by level and category. All values
// are nanojoules. Not safe for concurrent use; the simulator owns one.
type Meter struct {
	TagNJ  [NumLevels]float64 // demand lookups, tag arrays
	DataNJ [NumLevels]float64 // demand lookups, data arrays
	FillNJ [NumLevels]float64 // insertion writes
	PTNJ   float64            // prediction-table lookups and updates
	RecalJ float64            // recalibration (tag sweeps + PT rewrites)
}

// AddTag charges one tag-array access at level l.
func (m *Meter) AddTag(l Level, c *Params) { m.TagNJ[l] += c.Levels[l].TagNJ }

// AddData charges one data-array access at level l.
func (m *Meter) AddData(l Level, c *Params) { m.DataNJ[l] += c.Levels[l].DataNJ }

// AddParallel charges a parallel tag+data access at level l.
func (m *Meter) AddParallel(l Level, c *Params) {
	m.TagNJ[l] += c.Levels[l].TagNJ
	m.DataNJ[l] += c.Levels[l].DataNJ
}

// AddFill charges an insertion write (one data-array write) at level l.
func (m *Meter) AddFill(l Level, c *Params) { m.FillNJ[l] += c.Levels[l].DataNJ }

// AddPT charges nj nanojoules of prediction-table energy.
func (m *Meter) AddPT(nj float64) { m.PTNJ += nj }

// AddRecal charges nj nanojoules of recalibration energy.
func (m *Meter) AddRecal(nj float64) { m.RecalJ += nj }

// LevelNJ returns the total dynamic energy charged at level l.
func (m *Meter) LevelNJ(l Level) float64 { return m.TagNJ[l] + m.DataNJ[l] + m.FillNJ[l] }

// DynamicNJ returns the total dynamic energy across all levels plus the
// predictor and recalibration overheads.
func (m *Meter) DynamicNJ() float64 {
	t := m.PTNJ + m.RecalJ
	for l := L1; l < NumLevels; l++ {
		t += m.LevelNJ(l)
	}
	return t
}

// Add accumulates another meter into m (used to merge per-core meters).
func (m *Meter) Add(o *Meter) {
	for l := L1; l < NumLevels; l++ {
		m.TagNJ[l] += o.TagNJ[l]
		m.DataNJ[l] += o.DataNJ[l]
		m.FillNJ[l] += o.FillNJ[l]
	}
	m.PTNJ += o.PTNJ
	m.RecalJ += o.RecalJ
}

// LeakageNJ integrates leakage power over cycles of simulated time.
// Private levels (L1-L3) leak once per core; the shared L4 leaks once.
// watts * cycles / (GHz * 1e9) seconds * 1e9 nJ/J = watts * cycles / GHz.
func LeakageNJ(p *Params, cores int, cycles uint64) float64 {
	watts := p.Levels[L4].LeakW
	for l := L1; l <= L3; l++ {
		watts += p.Levels[l].LeakW * float64(cores)
	}
	return watts * float64(cycles) / p.ClockGHz
}
