package tracestore

import (
	"sync"
	"testing"

	"redhip/internal/trace"
	"redhip/internal/workload"
)

func testKey(workloadName string, refs uint64) Key {
	return Key{Workload: workloadName, Cores: 2, Scale: 64, Seed: 1, RefsPerCore: refs}
}

// Replay must be bit-identical to live generation: same workload
// constructor, same seed, same records in the same order.
func TestReplayMatchesLiveGeneration(t *testing.T) {
	k := testKey("mcf", 5000)
	st := New(0)
	mat, err := st.Get(k)
	if err != nil {
		t.Fatal(err)
	}
	live, err := workload.Sources(k.Workload, k.Cores, k.Scale, k.Seed)
	if err != nil {
		t.Fatal(err)
	}
	replay := mat.Sources()
	if len(replay) != k.Cores {
		t.Fatalf("Sources returned %d cursors, want %d", len(replay), k.Cores)
	}
	var want, got trace.Record
	for c := 0; c < k.Cores; c++ {
		if replay[c].Name() != live[c].Name() || replay[c].CPI() != live[c].CPI() {
			t.Fatalf("core %d metadata mismatch: %s/%v vs %s/%v",
				c, replay[c].Name(), replay[c].CPI(), live[c].Name(), live[c].CPI())
		}
		for i := uint64(0); i < k.RefsPerCore; i++ {
			if !live[c].Next(&want) {
				t.Fatalf("core %d: live source ended at %d", c, i)
			}
			if !replay[c].Next(&got) {
				t.Fatalf("core %d: replay ended at %d, want %d records", c, i, k.RefsPerCore)
			}
			if got != want {
				t.Fatalf("core %d record %d: replay %+v, live %+v", c, i, got, want)
			}
		}
		if replay[c].Next(&got) {
			t.Fatalf("core %d: replay produced more than %d records", c, k.RefsPerCore)
		}
	}
}

// Concurrent Gets for one key must share a single materialisation.
func TestSingleFlight(t *testing.T) {
	st := New(0)
	k := testKey("milc", 2000)
	const callers = 16
	mats := make([]*Materialized, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m, err := st.Get(k)
			if err != nil {
				t.Error(err)
				return
			}
			mats[i] = m
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if mats[i] != mats[0] {
			t.Fatalf("caller %d got a different Materialized than caller 0", i)
		}
	}
	s := st.Stats()
	if s.Misses != 1 {
		t.Fatalf("Misses = %d, want 1 (generation must run once per key)", s.Misses)
	}
	if s.Hits != callers-1 {
		t.Fatalf("Hits = %d, want %d", s.Hits, callers-1)
	}
}

func TestGetError(t *testing.T) {
	st := New(0)
	k := testKey("no-such-workload", 100)
	if _, err := st.Get(k); err == nil {
		t.Fatal("Get of unknown workload succeeded")
	}
	if got := st.Stats().Entries; got != 0 {
		t.Fatalf("failed materialisation left %d entries cached", got)
	}
	// The failure must not poison the key.
	if _, err := st.Get(k); err == nil {
		t.Fatal("second Get of unknown workload succeeded")
	}
}

func TestLRUEviction(t *testing.T) {
	const refs = 1000
	perEntry := uint64(testKeyCores(t)) * refs * RecordBytes
	st := New(2 * perEntry) // room for exactly two entries

	ka, kb, kc := testKey("mcf", refs), testKey("milc", refs), testKey("lbm", refs)
	for _, k := range []Key{ka, kb} {
		if _, err := st.Get(k); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.Get(ka); err != nil { // touch A so B is the LRU
		t.Fatal(err)
	}
	if _, err := st.Get(kc); err != nil { // must evict B
		t.Fatal(err)
	}
	s := st.Stats()
	if s.Evictions != 1 || s.Entries != 2 {
		t.Fatalf("after overflow: evictions=%d entries=%d, want 1 and 2", s.Evictions, s.Entries)
	}
	if s.Bytes > st.budget {
		t.Fatalf("resident bytes %d exceed budget %d", s.Bytes, st.budget)
	}
	misses := s.Misses
	if _, err := st.Get(ka); err != nil { // A must still be resident
		t.Fatal(err)
	}
	if st.Stats().Misses != misses {
		t.Fatal("touching A after eviction re-materialised it; B should have been evicted instead")
	}
	if _, err := st.Get(kb); err != nil { // B was evicted: regenerates
		t.Fatal(err)
	}
	if st.Stats().Misses != misses+1 {
		t.Fatal("evicted B did not re-materialise on Get")
	}
}

func testKeyCores(t *testing.T) int {
	t.Helper()
	return testKey("x", 0).Cores
}

// An entry larger than the whole budget is returned but never cached,
// so it cannot wipe out every resident entry on its way through.
func TestOversizeEntryNotRetained(t *testing.T) {
	const refs = 1000
	perEntry := uint64(testKeyCores(t)) * refs * RecordBytes
	st := New(perEntry) // exactly one small entry fits

	if _, err := st.Get(testKey("mcf", refs)); err != nil {
		t.Fatal(err)
	}
	big, err := st.Get(testKey("milc", 10*refs))
	if err != nil {
		t.Fatal(err)
	}
	if got := big.Refs(0); got != 10*refs {
		t.Fatalf("oversize entry materialised %d refs, want %d", got, 10*refs)
	}
	s := st.Stats()
	if s.Entries != 1 {
		t.Fatalf("entries = %d after oversize Get, want 1 (the small entry)", s.Entries)
	}
	misses := s.Misses
	if _, err := st.Get(testKey("mcf", refs)); err != nil {
		t.Fatal(err)
	}
	if st.Stats().Misses != misses {
		t.Fatal("oversize entry evicted the resident small entry")
	}
}

func TestTraceExportSharesRecords(t *testing.T) {
	st := New(0)
	mat, err := st.Get(testKey("mcf", 500))
	if err != nil {
		t.Fatal(err)
	}
	tr := mat.Trace(1)
	if tr.Name != "mcf" || len(tr.Records) != 500 {
		t.Fatalf("Trace(1) = %q/%d records, want mcf/500", tr.Name, len(tr.Records))
	}
	if &tr.Records[0] != &mat.recs[1][0] {
		t.Fatal("Trace copied the records; it must share the backing slice")
	}
}
