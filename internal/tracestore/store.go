// Package tracestore caches materialised workload reference streams so
// that a sweep which simulates the same (workload, seed, scale, refs)
// point under several schemes pays stream generation once and replays
// it for every scheme after the first.
//
// The cache holds decoded records, not wire-format bytes. Generation
// costs ~16-21 ns/reference on commodity hardware while decoding the
// compact varint wire format costs about the same — replaying through a
// decoder would save nothing. Replaying a decoded slice through
// workload.TraceSource's zero-copy Window path costs a slice header per
// few thousand references, which is what turns a five-scheme sweep's
// five generation passes into one. The wire format remains the
// interchange representation (Materialized.Trace feeds trace.Write);
// the store itself trades memory for time and bounds the trade with a
// byte-budget LRU.
//
// Invariants:
//   - A Materialized stream is immutable after construction. Sources
//     hands out independent read-only cursors over the shared backing
//     slices, so any number of simulations may replay one entry
//     concurrently (the race test exercises exactly this).
//   - Replay is bit-identical to live generation: the records are
//     produced by the same workload.Source batch path the simulator
//     would otherwise drive, so golden Result fingerprints are
//     unchanged by routing a run through the store.
//   - Generation runs exactly once per key. Concurrent callers of Get
//     for the same key block on the first caller's materialisation
//     (single-flight) instead of generating duplicates.
package tracestore

import (
	"fmt"
	"sync"
	"time"
	"unsafe"

	"redhip/internal/faultinject"
	"redhip/internal/redhipassert"
	"redhip/internal/trace"
	"redhip/internal/workload"
)

// DefaultBudgetBytes bounds the store when the caller does not: 256 MiB
// holds ~11 M records (more than 40 scaled-geometry streams), while a
// figure-scale sweep over many workloads recycles the oldest streams
// instead of growing without bound.
const DefaultBudgetBytes = 256 << 20

// RecordBytes is the in-memory cost of one cached record — exported so
// admission control (serve's byte-budget load shedder) can estimate a
// job's trace footprint with the same constant the store charges.
const RecordBytes = uint64(unsafe.Sizeof(trace.Record{}))

// Key identifies one materialised stream: every input that affects the
// generated records. Two jobs that differ only in scheme, inclusion
// policy or cache geometry share a key — that sharing is the point.
type Key struct {
	Workload    string
	Cores       int
	Scale       uint64
	Seed        uint64
	RefsPerCore uint64 // total records per core (warmup + measurement)
}

func (k Key) String() string {
	return fmt.Sprintf("%s/c%d/s%d/seed%d/%dref", k.Workload, k.Cores, k.Scale, k.Seed, k.RefsPerCore)
}

// Materialized is one generated stream: per-core record slices plus the
// source metadata replay needs. It is immutable after construction.
type Materialized struct {
	name string
	cpi  float64
	recs [][]trace.Record
	size uint64
	// pin is non-nil for disk-tier blocks: the record slices alias an
	// mmap'd region whose lifetime is reference counted, and pin holds
	// one of those references on behalf of this block and every replay
	// cursor derived from it.
	pin any
}

// Sources returns fresh replay cursors over the shared records, one per
// core. Each call returns independent cursors, so concurrent
// simulations each call Sources and never share mutable state.
func (m *Materialized) Sources() []workload.Source {
	srcs := make([]workload.Source, len(m.recs))
	for c, r := range m.recs {
		if m.pin != nil {
			srcs[c] = workload.ReplayRecordsPinned(m.name, m.cpi, r, m.pin)
		} else {
			srcs[c] = workload.ReplayRecords(m.name, m.cpi, r)
		}
	}
	return srcs
}

// Bytes is the in-memory footprint charged against the store budget.
func (m *Materialized) Bytes() uint64 { return m.size }

// Refs returns the number of records materialised for one core.
func (m *Materialized) Refs(core int) int { return len(m.recs[core]) }

// Trace exports one core's records in the trace package's container,
// sharing (not copying) the backing slice — the bridge to the wire
// format for trace files. The caller must not mutate the records.
func (m *Materialized) Trace(core int) *trace.Trace {
	return &trace.Trace{Name: m.name, CPI: m.cpi, Records: m.recs[core]}
}

// Stats is a point-in-time snapshot of store behaviour. Hits+Misses
// counts Get calls; Misses counts materialisations started (exactly one
// per key while the entry stays resident, the acceptance check for
// "generation ran once").
type Stats struct {
	Hits        uint64
	Misses      uint64
	Evictions   uint64
	Entries     int
	Bytes       uint64
	BudgetBytes uint64
	// MaterializeNanos is CUMULATIVE wall time across every
	// materialisation this store ever ran — it never resets, so two
	// snapshots straddling an interval must be differenced with Delta
	// before comparison. (A benchmark arm once compared a warm store's
	// lifetime total against a cold store's single fill and concluded
	// the warm arm generated for longer.)
	MaterializeNanos int64
	// Materializations counts completed fill attempts (the divisor for
	// MeanMaterializeNanos).
	Materializations uint64

	// Disk-tier counters, all zero on stores without a disk tier.
	// Spills/SpilledBytes count blocks written to the spill file;
	// DiskHits counts Gets served zero-copy from a spilled block
	// (disjoint from Hits — a disk hit is a RAM Miss); DiskEvictions
	// counts blocks dropped from the tier. Cumulative: Delta them.
	Spills        uint64
	SpilledBytes  uint64
	DiskHits      uint64
	DiskEvictions uint64
	// DiskEntries/DiskBytes/DiskBudgetBytes are the tier's resident
	// gauges, accounted separately from the RAM Bytes so memory
	// admission control never counts spilled blocks against RAM.
	DiskEntries     int
	DiskBytes       uint64
	DiskBudgetBytes uint64
}

// HitRate returns the fraction of Get calls served from a resident
// entry, or 0 before the first Get. Consumers (the runner's sweep
// report, redhip-serve's /metrics) derive it from one snapshot instead
// of racing two counter reads.
func (st Stats) HitRate() float64 {
	total := st.Hits + st.Misses
	if total == 0 {
		return 0
	}
	return float64(st.Hits) / float64(total)
}

// MeanMaterializeNanos returns the average wall time of one
// materialisation in this snapshot, or 0 before the first fill. Use on
// a Delta snapshot for a per-interval mean.
func (st Stats) MeanMaterializeNanos() int64 {
	if st.Materializations == 0 {
		return 0
	}
	return st.MaterializeNanos / int64(st.Materializations)
}

// Delta returns the counter movement between an earlier snapshot and
// this one: Hits, Misses, Evictions, Materializations and
// MaterializeNanos are differenced; the point-in-time gauges (Entries,
// Bytes, BudgetBytes) keep this snapshot's values. This is how
// interval consumers (benchmark arms, scrape deltas) must compare two
// snapshots of a long-lived store — the raw counters are cumulative.
func (st Stats) Delta(prev Stats) Stats {
	d := st
	d.Hits -= prev.Hits
	d.Misses -= prev.Misses
	d.Evictions -= prev.Evictions
	d.Materializations -= prev.Materializations
	d.MaterializeNanos -= prev.MaterializeNanos
	d.Spills -= prev.Spills
	d.SpilledBytes -= prev.SpilledBytes
	d.DiskHits -= prev.DiskHits
	d.DiskEvictions -= prev.DiskEvictions
	return d
}

// entry is one cache slot. ready closes when mat/err are final;
// waiters read them only after <-ready (close gives happens-before).
type entry struct {
	key        Key
	ready      chan struct{}
	mat        *Materialized
	err        error
	prev, next *entry // LRU list, most recent at head
}

// Store is a byte-budget LRU cache of materialised streams, safe for
// concurrent use. The zero value is not usable; call New.
type Store struct {
	mu      sync.Mutex
	budget  uint64
	now     func() int64   // nanosecond clock behind MaterializeNanos
	entries map[Key]*entry //redhip:guardedby mu
	head    *entry         //redhip:guardedby mu // most recently used
	tail    *entry         //redhip:guardedby mu // least recently used
	bytes   uint64         //redhip:guardedby mu
	stats   Stats          //redhip:guardedby mu
	tier    *diskTier      // nil unless Config.DiskDir enabled the disk tier
}

// Config selects a store's tiers. The zero value matches New(0): a
// RAM-only store at the default budget with the wall clock.
type Config struct {
	// BudgetBytes bounds resident records; 0 means DefaultBudgetBytes.
	BudgetBytes uint64
	// Clock, when non-nil, replaces the wall clock behind the
	// MaterializeNanos counter (tests want deterministic Stats).
	Clock func() int64
	// DiskDir, when non-empty, enables the mmap-backed disk tier: RAM
	// evictions and over-budget streams spill to an unlinked temp file
	// created there and replay zero-copy on later Gets. The directory
	// must exist.
	DiskDir string
	// DiskBudgetBytes bounds the spilled blocks; 0 means
	// DefaultDiskBudgetBytes. Ignored without DiskDir.
	DiskBudgetBytes uint64
}

// NewWithConfig builds a store from cfg. It fails when the disk tier is
// requested but cannot be backed (spill file creation fails, or the
// platform has no mmap) — callers degrade by retrying without DiskDir.
func NewWithConfig(cfg Config) (*Store, error) {
	now := cfg.Clock
	if now == nil {
		now = wallclockNanos
	}
	s := NewWithClock(cfg.BudgetBytes, now)
	if cfg.DiskDir != "" {
		budget := cfg.DiskBudgetBytes
		if budget == 0 {
			budget = DefaultDiskBudgetBytes
		}
		tier, err := newDiskTier(cfg.DiskDir, budget)
		if err != nil {
			return nil, err
		}
		s.tier = tier
	}
	return s, nil
}

// Close releases the disk tier: resident blocks drop their mappings
// (blocks pinned by live replays stay mapped until collected) and the
// spill file closes, returning its storage. RAM entries need no
// cleanup. Close is a no-op on RAM-only stores; Get after Close serves
// RAM normally but neither spills nor loads from disk.
func (s *Store) Close() error {
	return s.tier.close()
}

// New returns a store bounded by budgetBytes of cached records
// (DefaultBudgetBytes when 0). Materialisation time is attributed
// through the wall clock; tests that need deterministic Stats inject
// their own clock via NewWithClock.
func New(budgetBytes uint64) *Store {
	return NewWithClock(budgetBytes, wallclockNanos)
}

// NewWithClock is New with an injected nanosecond clock. The clock only
// feeds the MaterializeNanos perf counter — cached records and
// replay behaviour are identical whatever it returns.
func NewWithClock(budgetBytes uint64, now func() int64) *Store {
	if budgetBytes == 0 {
		budgetBytes = DefaultBudgetBytes
	}
	return &Store{
		budget:  budgetBytes,
		now:     now,
		entries: make(map[Key]*entry),
	}
}

// wallclockNanos is the default clock: real time, sanctioned here
// because it feeds a perf counter, never simulated time.
func wallclockNanos() int64 {
	return time.Now().UnixNano() //redhip:allow wallclock -- MaterializeNanos perf attribution only
}

// Get returns the materialised stream for k, generating it on first
// use. Concurrent calls for the same key share one generation: the
// first caller materialises while the rest block until it finishes.
// A failed materialisation is not cached — the next Get retries.
func (s *Store) Get(k Key) (*Materialized, error) {
	if faultinject.Enabled {
		// Delay-only point: widens the single-flight and eviction race
		// windows the chaos harness drives through -race.
		if err := faultinject.Fire(faultinject.PointTracestoreGet); err != nil {
			return nil, err
		}
	}
	s.mu.Lock()
	if e, ok := s.entries[k]; ok {
		s.stats.Hits++
		s.moveToFrontLocked(e)
		s.mu.Unlock()
		<-e.ready
		if e.err != nil {
			return nil, e.err
		}
		return e.mat, nil
	}
	e := &entry{key: k, ready: make(chan struct{})}
	s.entries[k] = e
	s.pushFrontLocked(e)
	s.stats.Misses++
	s.mu.Unlock()

	// The disk tier is probed inside the single-flight window, so
	// concurrent Gets for one spilled key share a single load (and a
	// single mapping reference through the shared Materialized).
	mat, fromDisk := s.tier.load(k)
	var err error
	var elapsed int64
	if !fromDisk {
		start := s.now()
		mat, err = fill(k)
		elapsed = s.now() - start
	}

	var spillVictims []*Materialized
	var spillKeys []Key
	s.mu.Lock()
	if !fromDisk {
		s.stats.MaterializeNanos += elapsed
		s.stats.Materializations++
	}
	e.mat, e.err = mat, err
	switch {
	case err != nil:
		// Drop the entry so a later Get can retry.
		s.removeLocked(e)
	case mat.size > s.budget:
		// Too large to ever fit in RAM: hand it to the waiters but do
		// not retain it (retaining would evict the whole rest of the
		// cache for an entry the next insert throws out anyway). The
		// disk tier, if present, keeps it reachable.
		s.removeLocked(e)
		spillVictims = append(spillVictims, mat)
		spillKeys = append(spillKeys, k)
	default:
		s.bytes += mat.size
		for _, v := range s.evictOverLocked() {
			spillVictims = append(spillVictims, v.mat)
			spillKeys = append(spillKeys, v.key)
		}
	}
	if redhipassert.Enabled {
		redhipassert.Check(s.listConsistentLocked(), "tracestore: LRU list inconsistent after insert/evict")
	}
	s.mu.Unlock()
	close(e.ready)
	// Spills happen outside s.mu: the write is the slow part, and the
	// evicted entries are already unreachable from the RAM map.
	for i, v := range spillVictims {
		s.tier.spill(spillKeys[i], v)
	}
	if err != nil {
		return nil, err
	}
	return mat, nil
}

// Stats returns a snapshot of the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = len(s.entries)
	st.Bytes = s.bytes
	st.BudgetBytes = s.budget
	if t := s.tier; t != nil {
		t.mu.Lock()
		st.Spills = t.spills
		st.SpilledBytes = t.spilledBytes
		st.DiskHits = t.diskHits
		st.DiskEvictions = t.diskEvictions
		st.DiskEntries = len(t.entries)
		st.DiskBytes = t.bytes
		st.DiskBudgetBytes = t.budget
		t.mu.Unlock()
	}
	return st
}

// fill is the single-flight fill body: the faultinject seam (failed or
// slow materialisation) in front of the real generation.
func fill(k Key) (*Materialized, error) {
	if faultinject.Enabled {
		if err := faultinject.Fire(faultinject.PointTracestoreMaterialize); err != nil {
			return nil, err
		}
	}
	return materialize(k)
}

// materialize generates k's stream through the workload batch path —
// one NextBatch call per core fills the whole slice, the same records
// in the same order the simulator would pull live.
func materialize(k Key) (*Materialized, error) {
	srcs, err := workload.Sources(k.Workload, k.Cores, k.Scale, k.Seed)
	if err != nil {
		return nil, err
	}
	m := &Materialized{
		name: srcs[0].Name(),
		cpi:  srcs[0].CPI(),
		recs: make([][]trace.Record, len(srcs)),
	}
	for c, src := range srcs {
		buf := make([]trace.Record, k.RefsPerCore)
		n := workload.AsBatch(src).NextBatch(buf)
		m.recs[c] = buf[:n:n]
		m.size += uint64(n) * RecordBytes
	}
	return m, nil
}

// --- LRU list (s.mu held: the Locked suffix is the guarded analyzer's contract) ------------------------------------------------------

func (s *Store) pushFrontLocked(e *entry) {
	e.prev, e.next = nil, s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *Store) unlinkLocked(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *Store) moveToFrontLocked(e *entry) {
	if s.head == e {
		return
	}
	s.unlinkLocked(e)
	s.pushFrontLocked(e)
}

// removeLocked deletes e from the map and list without touching the
// byte count (callers only remove entries whose size was never charged).
func (s *Store) removeLocked(e *entry) {
	s.unlinkLocked(e)
	delete(s.entries, e.key)
}

// listConsistentLocked verifies the LRU list invariants with s.mu
// held: the head-to-tail walk visits exactly the map's entries with
// coherent prev/next links. Only redhipassert-tagged builds call this.
func (s *Store) listConsistentLocked() bool {
	n := 0
	var prev *entry
	for e := s.head; e != nil; e = e.next {
		if e.prev != prev {
			return false
		}
		if got, ok := s.entries[e.key]; !ok || got != e {
			return false
		}
		prev = e
		n++
	}
	return prev == s.tail && n == len(s.entries)
}

// evictOverLocked drops least-recently-used resident entries until the
// byte count fits the budget, returning the victims so the caller can spill
// them to the disk tier after releasing s.mu. In-flight entries
// (mat == nil) are skipped: their size is unknown and their waiters
// hold no reference yet. Evicted records stay valid for any simulation
// already replaying them — the slices are immutable and garbage
// collected, eviction only drops the store's reference.
func (s *Store) evictOverLocked() []*entry {
	var victims []*entry
	e := s.tail
	for s.bytes > s.budget && e != nil {
		prev := e.prev
		if e.mat != nil {
			s.bytes -= e.mat.size
			s.removeLocked(e)
			s.stats.Evictions++
			victims = append(victims, e)
		}
		e = prev
	}
	return victims
}
