// Package tracestore caches materialised workload reference streams so
// that a sweep which simulates the same (workload, seed, scale, refs)
// point under several schemes pays stream generation once and replays
// it for every scheme after the first.
//
// The cache holds decoded records, not wire-format bytes. Generation
// costs ~16-21 ns/reference on commodity hardware while decoding the
// compact varint wire format costs about the same — replaying through a
// decoder would save nothing. Replaying a decoded slice through
// workload.TraceSource's zero-copy Window path costs a slice header per
// few thousand references, which is what turns a five-scheme sweep's
// five generation passes into one. The wire format remains the
// interchange representation (Materialized.Trace feeds trace.Write);
// the store itself trades memory for time and bounds the trade with a
// byte-budget LRU.
//
// Invariants:
//   - A Materialized stream is immutable after construction. Sources
//     hands out independent read-only cursors over the shared backing
//     slices, so any number of simulations may replay one entry
//     concurrently (the race test exercises exactly this).
//   - Replay is bit-identical to live generation: the records are
//     produced by the same workload.Source batch path the simulator
//     would otherwise drive, so golden Result fingerprints are
//     unchanged by routing a run through the store.
//   - Generation runs exactly once per key. Concurrent callers of Get
//     for the same key block on the first caller's materialisation
//     (single-flight) instead of generating duplicates.
package tracestore

import (
	"fmt"
	"sync"
	"time"
	"unsafe"

	"redhip/internal/faultinject"
	"redhip/internal/redhipassert"
	"redhip/internal/trace"
	"redhip/internal/workload"
)

// DefaultBudgetBytes bounds the store when the caller does not: 256 MiB
// holds ~11 M records (more than 40 scaled-geometry streams), while a
// figure-scale sweep over many workloads recycles the oldest streams
// instead of growing without bound.
const DefaultBudgetBytes = 256 << 20

// RecordBytes is the in-memory cost of one cached record — exported so
// admission control (serve's byte-budget load shedder) can estimate a
// job's trace footprint with the same constant the store charges.
const RecordBytes = uint64(unsafe.Sizeof(trace.Record{}))

// Key identifies one materialised stream: every input that affects the
// generated records. Two jobs that differ only in scheme, inclusion
// policy or cache geometry share a key — that sharing is the point.
type Key struct {
	Workload    string
	Cores       int
	Scale       uint64
	Seed        uint64
	RefsPerCore uint64 // total records per core (warmup + measurement)
}

func (k Key) String() string {
	return fmt.Sprintf("%s/c%d/s%d/seed%d/%dref", k.Workload, k.Cores, k.Scale, k.Seed, k.RefsPerCore)
}

// Materialized is one generated stream: per-core record slices plus the
// source metadata replay needs. It is immutable after construction.
type Materialized struct {
	name string
	cpi  float64
	recs [][]trace.Record
	size uint64
}

// Sources returns fresh replay cursors over the shared records, one per
// core. Each call returns independent cursors, so concurrent
// simulations each call Sources and never share mutable state.
func (m *Materialized) Sources() []workload.Source {
	srcs := make([]workload.Source, len(m.recs))
	for c, r := range m.recs {
		srcs[c] = workload.ReplayRecords(m.name, m.cpi, r)
	}
	return srcs
}

// Bytes is the in-memory footprint charged against the store budget.
func (m *Materialized) Bytes() uint64 { return m.size }

// Refs returns the number of records materialised for one core.
func (m *Materialized) Refs(core int) int { return len(m.recs[core]) }

// Trace exports one core's records in the trace package's container,
// sharing (not copying) the backing slice — the bridge to the wire
// format for trace files. The caller must not mutate the records.
func (m *Materialized) Trace(core int) *trace.Trace {
	return &trace.Trace{Name: m.name, CPI: m.cpi, Records: m.recs[core]}
}

// Stats is a point-in-time snapshot of store behaviour. Hits+Misses
// counts Get calls; Misses counts materialisations started (exactly one
// per key while the entry stays resident, the acceptance check for
// "generation ran once").
type Stats struct {
	Hits        uint64
	Misses      uint64
	Evictions   uint64
	Entries     int
	Bytes       uint64
	BudgetBytes uint64
	// MaterializeNanos is CUMULATIVE wall time across every
	// materialisation this store ever ran — it never resets, so two
	// snapshots straddling an interval must be differenced with Delta
	// before comparison. (A benchmark arm once compared a warm store's
	// lifetime total against a cold store's single fill and concluded
	// the warm arm generated for longer.)
	MaterializeNanos int64
	// Materializations counts completed fill attempts (the divisor for
	// MeanMaterializeNanos).
	Materializations uint64
}

// HitRate returns the fraction of Get calls served from a resident
// entry, or 0 before the first Get. Consumers (the runner's sweep
// report, redhip-serve's /metrics) derive it from one snapshot instead
// of racing two counter reads.
func (st Stats) HitRate() float64 {
	total := st.Hits + st.Misses
	if total == 0 {
		return 0
	}
	return float64(st.Hits) / float64(total)
}

// MeanMaterializeNanos returns the average wall time of one
// materialisation in this snapshot, or 0 before the first fill. Use on
// a Delta snapshot for a per-interval mean.
func (st Stats) MeanMaterializeNanos() int64 {
	if st.Materializations == 0 {
		return 0
	}
	return st.MaterializeNanos / int64(st.Materializations)
}

// Delta returns the counter movement between an earlier snapshot and
// this one: Hits, Misses, Evictions, Materializations and
// MaterializeNanos are differenced; the point-in-time gauges (Entries,
// Bytes, BudgetBytes) keep this snapshot's values. This is how
// interval consumers (benchmark arms, scrape deltas) must compare two
// snapshots of a long-lived store — the raw counters are cumulative.
func (st Stats) Delta(prev Stats) Stats {
	d := st
	d.Hits -= prev.Hits
	d.Misses -= prev.Misses
	d.Evictions -= prev.Evictions
	d.Materializations -= prev.Materializations
	d.MaterializeNanos -= prev.MaterializeNanos
	return d
}

// entry is one cache slot. ready closes when mat/err are final;
// waiters read them only after <-ready (close gives happens-before).
type entry struct {
	key        Key
	ready      chan struct{}
	mat        *Materialized
	err        error
	prev, next *entry // LRU list, most recent at head
}

// Store is a byte-budget LRU cache of materialised streams, safe for
// concurrent use. The zero value is not usable; call New.
type Store struct {
	mu      sync.Mutex
	budget  uint64
	now     func() int64 // nanosecond clock behind MaterializeNanos
	entries map[Key]*entry
	head    *entry // most recently used
	tail    *entry // least recently used
	bytes   uint64
	stats   Stats
}

// New returns a store bounded by budgetBytes of cached records
// (DefaultBudgetBytes when 0). Materialisation time is attributed
// through the wall clock; tests that need deterministic Stats inject
// their own clock via NewWithClock.
func New(budgetBytes uint64) *Store {
	return NewWithClock(budgetBytes, wallclockNanos)
}

// NewWithClock is New with an injected nanosecond clock. The clock only
// feeds the MaterializeNanos perf counter — cached records and
// replay behaviour are identical whatever it returns.
func NewWithClock(budgetBytes uint64, now func() int64) *Store {
	if budgetBytes == 0 {
		budgetBytes = DefaultBudgetBytes
	}
	return &Store{
		budget:  budgetBytes,
		now:     now,
		entries: make(map[Key]*entry),
	}
}

// wallclockNanos is the default clock: real time, sanctioned here
// because it feeds a perf counter, never simulated time.
func wallclockNanos() int64 {
	return time.Now().UnixNano() //redhip:allow wallclock -- MaterializeNanos perf attribution only
}

// Get returns the materialised stream for k, generating it on first
// use. Concurrent calls for the same key share one generation: the
// first caller materialises while the rest block until it finishes.
// A failed materialisation is not cached — the next Get retries.
func (s *Store) Get(k Key) (*Materialized, error) {
	if faultinject.Enabled {
		// Delay-only point: widens the single-flight and eviction race
		// windows the chaos harness drives through -race.
		if err := faultinject.Fire(faultinject.PointTracestoreGet); err != nil {
			return nil, err
		}
	}
	s.mu.Lock()
	if e, ok := s.entries[k]; ok {
		s.stats.Hits++
		s.moveToFront(e)
		s.mu.Unlock()
		<-e.ready
		if e.err != nil {
			return nil, e.err
		}
		return e.mat, nil
	}
	e := &entry{key: k, ready: make(chan struct{})}
	s.entries[k] = e
	s.pushFront(e)
	s.stats.Misses++
	s.mu.Unlock()

	start := s.now()
	mat, err := fill(k)
	elapsed := s.now() - start

	s.mu.Lock()
	s.stats.MaterializeNanos += elapsed
	s.stats.Materializations++
	e.mat, e.err = mat, err
	switch {
	case err != nil:
		// Drop the entry so a later Get can retry.
		s.remove(e)
	case mat.size > s.budget:
		// Too large to ever fit: hand it to the waiters but do not
		// retain it (retaining would evict the whole rest of the cache
		// for an entry the next insert throws out anyway).
		s.remove(e)
	default:
		s.bytes += mat.size
		s.evictOver()
	}
	if redhipassert.Enabled {
		redhipassert.Check(s.listConsistent(), "tracestore: LRU list inconsistent after insert/evict")
	}
	s.mu.Unlock()
	close(e.ready)
	if err != nil {
		return nil, err
	}
	return mat, nil
}

// Stats returns a snapshot of the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = len(s.entries)
	st.Bytes = s.bytes
	st.BudgetBytes = s.budget
	return st
}

// fill is the single-flight fill body: the faultinject seam (failed or
// slow materialisation) in front of the real generation.
func fill(k Key) (*Materialized, error) {
	if faultinject.Enabled {
		if err := faultinject.Fire(faultinject.PointTracestoreMaterialize); err != nil {
			return nil, err
		}
	}
	return materialize(k)
}

// materialize generates k's stream through the workload batch path —
// one NextBatch call per core fills the whole slice, the same records
// in the same order the simulator would pull live.
func materialize(k Key) (*Materialized, error) {
	srcs, err := workload.Sources(k.Workload, k.Cores, k.Scale, k.Seed)
	if err != nil {
		return nil, err
	}
	m := &Materialized{
		name: srcs[0].Name(),
		cpi:  srcs[0].CPI(),
		recs: make([][]trace.Record, len(srcs)),
	}
	for c, src := range srcs {
		buf := make([]trace.Record, k.RefsPerCore)
		n := workload.AsBatch(src).NextBatch(buf)
		m.recs[c] = buf[:n:n]
		m.size += uint64(n) * RecordBytes
	}
	return m, nil
}

// --- LRU list (s.mu held) ------------------------------------------------------

func (s *Store) pushFront(e *entry) {
	e.prev, e.next = nil, s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *Store) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *Store) moveToFront(e *entry) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}

// remove deletes e from the map and list without touching the byte
// count (callers only remove entries whose size was never charged).
func (s *Store) remove(e *entry) {
	s.unlink(e)
	delete(s.entries, e.key)
}

// listConsistent verifies the LRU list invariants with s.mu held: the
// head-to-tail walk visits exactly the map's entries with coherent
// prev/next links. Only redhipassert-tagged builds call this.
func (s *Store) listConsistent() bool {
	n := 0
	var prev *entry
	for e := s.head; e != nil; e = e.next {
		if e.prev != prev {
			return false
		}
		if got, ok := s.entries[e.key]; !ok || got != e {
			return false
		}
		prev = e
		n++
	}
	return prev == s.tail && n == len(s.entries)
}

// evictOver drops least-recently-used resident entries until the byte
// count fits the budget. In-flight entries (mat == nil) are skipped:
// their size is unknown and their waiters hold no reference yet.
func (s *Store) evictOver() {
	e := s.tail
	for s.bytes > s.budget && e != nil {
		prev := e.prev
		if e.mat != nil {
			s.bytes -= e.mat.size
			s.remove(e)
			s.stats.Evictions++
		}
		e = prev
	}
}
