package tracestore_test

import (
	"sync"
	"testing"

	"redhip/internal/sim"
	"redhip/internal/tracestore"
)

// TestConcurrentSchemeReplay fans every scheme out over one
// materialised trace at once — the sweep shape the store exists for.
// Under -race this proves the shared backing records are never written
// after materialisation; deterministically it proves concurrent replay
// produces the same results as serial replay.
func TestConcurrentSchemeReplay(t *testing.T) {
	cfg := sim.Smoke()
	cfg.RefsPerCore = 5000
	cfg.WarmupRefsPerCore = 1000

	st := tracestore.New(0)
	key := tracestore.Key{
		Workload:    "mcf",
		Cores:       cfg.Cores,
		Scale:       cfg.WorkloadScale,
		Seed:        1,
		RefsPerCore: cfg.WarmupRefsPerCore + cfg.RefsPerCore,
	}
	mat, err := st.Get(key)
	if err != nil {
		t.Fatal(err)
	}

	schemes := []sim.Scheme{sim.Base, sim.Phased, sim.CBF, sim.ReDHiP, sim.Oracle}

	serial := make(map[sim.Scheme]string, len(schemes))
	for _, sc := range schemes {
		c := cfg
		c.Scheme = sc
		res, err := sim.Run(c, mat.Sources())
		if err != nil {
			t.Fatalf("serial %s: %v", sc, err)
		}
		serial[sc] = res.String()
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	concurrent := make(map[sim.Scheme]string, len(schemes))
	for _, sc := range schemes {
		wg.Add(1)
		go func(sc sim.Scheme) {
			defer wg.Done()
			c := cfg
			c.Scheme = sc
			res, err := sim.Run(c, mat.Sources())
			if err != nil {
				t.Errorf("concurrent %s: %v", sc, err)
				return
			}
			mu.Lock()
			concurrent[sc] = res.String()
			mu.Unlock()
		}(sc)
	}
	wg.Wait()

	for _, sc := range schemes {
		if concurrent[sc] != serial[sc] {
			t.Errorf("%s: concurrent replay diverged from serial:\n  serial:     %s\n  concurrent: %s",
				sc, serial[sc], concurrent[sc])
		}
	}
	if got := st.Stats().Misses; got != 1 {
		t.Errorf("store misses = %d, want 1 (one generation feeds every scheme)", got)
	}
}
