//go:build !unix

package tracestore

import (
	"errors"
	"os"
)

const mmapSupported = false

func mapFile(*os.File, int64, int) ([]byte, error) {
	return nil, errors.New("tracestore: mmap is unsupported on this platform")
}

func unmapFile([]byte) error { return nil }

func punchHole(*os.File, int64, int64) {}
