//go:build faultinject

package tracestore

import (
	"sync"
	"testing"
	"time"

	"redhip/internal/faultinject"
)

// TestInjectedMaterialisationFailure drives the single-flight fill
// through the faultinject seam on a *valid* workload: the first fill
// is slow (widening the window in which waiters pile onto the entry)
// and then fails; every waiter must receive the injected error, the
// entry must not be cached, and the next Get must materialise cleanly
// once the rule is exhausted. Run with -race.
func TestInjectedMaterialisationFailure(t *testing.T) {
	prev := faultinject.Set(faultinject.New(11,
		faultinject.Rule{
			Point: faultinject.PointTracestoreMaterialize,
			Times: 1,
			Delay: 5 * time.Millisecond,
			Err:   "materialisation failed",
		}))
	t.Cleanup(func() { faultinject.Set(prev) })

	st := New(0)
	k := testKey("mcf", 2000)
	const callers = 16
	errs := make([]error, callers)
	var wg sync.WaitGroup
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer wg.Done()
			_, errs[i] = st.Get(k)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if !faultinject.IsInjected(err) {
			t.Fatalf("caller %d: error = %v, want the injected materialisation failure", i, err)
		}
	}
	if st.Stats().Entries != 0 {
		t.Fatalf("failed fill was cached: %+v", st.Stats())
	}

	// Rule exhausted (Times: 1): the retry materialises for real and
	// replays bit-identically to an untouched store.
	mat, err := st.Get(k)
	if err != nil {
		t.Fatalf("retry Get after exhausted rule: %v", err)
	}
	if mat.Refs(0) != int(k.RefsPerCore) {
		t.Fatalf("retry materialised %d refs, want %d", mat.Refs(0), k.RefsPerCore)
	}
	if st.Stats().Entries != 1 {
		t.Fatalf("retry was not cached: %+v", st.Stats())
	}
}
