//go:build linux

package tracestore

import (
	"os"
	"syscall"
)

// mmapSupported gates the disk tier: NewWithConfig rejects a DiskDir on
// platforms whose shim cannot map the spill file.
const mmapSupported = true

// mapFile maps length bytes of f starting at the page-aligned offset
// off, read-only and shared, so replay windows alias the page cache
// directly instead of copying spilled records back into the heap.
func mapFile(f *os.File, off int64, length int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), off, length, syscall.PROT_READ, syscall.MAP_SHARED)
}

// unmapFile releases a mapFile region.
func unmapFile(b []byte) error {
	return syscall.Munmap(b)
}

// punchHole returns an evicted block's storage to the filesystem while
// keeping the append-only file's size (later blocks keep their
// offsets). Best-effort: filesystems without hole support just keep the
// blocks until the unlinked file closes.
func punchHole(f *os.File, off, length int64) {
	// FALLOC_FL_KEEP_SIZE | FALLOC_FL_PUNCH_HOLE
	const punch = 0x1 | 0x2
	_ = syscall.Fallocate(int(f.Fd()), punch, off, length)
}
