package tracestore

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"unsafe"

	"redhip/internal/redhipassert"
	"redhip/internal/trace"
)

// DefaultDiskBudgetBytes bounds the disk tier when a Config enables it
// without a budget: 1 GiB of spilled records (~45 M references).
const DefaultDiskBudgetBytes = 1 << 30

// diskTier is the mmap-backed victim tier behind a Store: streams
// evicted from (or too large for) the RAM budget are appended to a
// session-private spill file and replayed zero-copy through mmap when a
// later Get wants them back. The file is created in the configured
// directory and unlinked immediately, so the kernel reclaims its
// storage when the store closes even if the process dies first.
//
// Lifetime of a spilled block's mapping is reference counted: the tier
// holds one residency reference from first load until disk eviction,
// and every Materialized handed out pins one more (released by a
// finalizer when the last replay cursor is collected). Eviction under
// concurrent replay therefore never unmaps pages a simulation still
// reads — the disk-tier race test drives exactly this.
type diskTier struct {
	mu       sync.Mutex
	f        *os.File //redhip:guardedby mu // nil after close; guards against use-after-close
	budget   uint64
	writeOff int64 //redhip:guardedby mu // next append offset, 8-aligned
	pageSize int64
	entries  map[Key]*diskEntry //redhip:guardedby mu
	head     *diskEntry         //redhip:guardedby mu // most recently used
	tail     *diskEntry         //redhip:guardedby mu // least recently used
	bytes    uint64             //redhip:guardedby mu

	spills        uint64 //redhip:guardedby mu
	spilledBytes  uint64 //redhip:guardedby mu
	diskHits      uint64 //redhip:guardedby mu
	diskEvictions uint64 //redhip:guardedby mu
}

// diskEntry locates one spilled stream in the file: every core's
// records laid out back to back starting at off. Offsets are 8-aligned
// and RecordBytes is a multiple of 8, so the record views cast from the
// mapping are always aligned.
type diskEntry struct {
	key        Key
	name       string
	cpi        float64
	off        int64
	counts     []int // records per core
	size       uint64
	m          *mapping // non-nil while mapped (first load → eviction)
	prev, next *diskEntry
}

// mapping is one mmap'd view of a spilled block, shared by the tier's
// residency reference and every live Materialized replaying it. refs is
// guarded by the tier mutex; raw becomes nil once unmapped.
type mapping struct {
	raw         []byte
	off         int64 // payload file range, for hole punching
	length      int64
	refs        int
	punchOnFree bool // evicted: punch the hole once the last ref drops
}

// mapPin is the object a disk-backed Materialized (and each of its
// replay cursors) holds to keep the mapping alive; its finalizer
// releases the reference. Windows handed out by TraceSource.Window are
// only guaranteed valid while the source that produced them is
// reachable — the engine holds both for the run's lifetime.
type mapPin struct {
	t *diskTier
	m *mapping
}

func newDiskTier(dir string, budget uint64) (*diskTier, error) {
	if !mmapSupported {
		return nil, fmt.Errorf("tracestore: disk tier needs mmap, unsupported on this platform")
	}
	f, err := os.CreateTemp(dir, "redhip-spill-*.blocks")
	if err != nil {
		return nil, fmt.Errorf("tracestore: create spill file: %w", err)
	}
	// Unlink now: the spill file is scratch with no on-disk identity,
	// and an orphaned file cannot outlive a crashed process.
	_ = os.Remove(f.Name())
	return &diskTier{
		f:        f,
		budget:   budget,
		pageSize: int64(os.Getpagesize()),
		entries:  make(map[Key]*diskEntry),
	}, nil
}

// recordsBytes reinterprets a record slice as its raw byte image for
// the spill write. trace.Record is plain old data — no pointers — so
// the image round-trips exactly through the mmap read path.
func recordsBytes(recs []trace.Record) []byte {
	if len(recs) == 0 {
		return nil
	}
	//redhip:unsafe-ok trace.Record is pointer-free POD; the byte image round-trips exactly through the mmap read path
	return unsafe.Slice((*byte)(unsafe.Pointer(&recs[0])), len(recs)*int(RecordBytes))
}

// spill appends m's records to the file and indexes them under k.
// Already-disk-backed blocks (pin != nil) are skipped: their bytes are
// still resident in the tier, or were deliberately disk-evicted.
func (t *diskTier) spill(k Key, m *Materialized) {
	if t == nil || m == nil || m.pin != nil || m.size > t.budget {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.f == nil {
		return
	}
	if _, ok := t.entries[k]; ok {
		return
	}
	off := t.writeOff
	pos := off
	counts := make([]int, len(m.recs))
	for c, recs := range m.recs {
		if _, err := t.f.WriteAt(recordsBytes(recs), pos); err != nil {
			// A failed spill just forfeits the block; the write cursor
			// stays advanced so a partial write cannot alias a later one.
			t.writeOff = align8(pos)
			return
		}
		counts[c] = len(recs)
		pos += int64(len(recs)) * int64(RecordBytes)
	}
	t.writeOff = align8(pos)
	e := &diskEntry{key: k, name: m.name, cpi: m.cpi, off: off, counts: counts, size: m.size}
	t.entries[k] = e
	t.pushFrontLocked(e)
	t.bytes += e.size
	t.spills++
	t.spilledBytes += e.size
	t.evictOverLocked()
}

// load returns a zero-copy Materialized over k's spilled block, or
// (nil, false) when the tier does not hold it. The returned block pins
// its mapping until the caller's last replay cursor is collected.
func (t *diskTier) load(k Key) (*Materialized, bool) {
	if t == nil {
		return nil, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entries[k]
	if !ok || t.f == nil {
		return nil, false
	}
	t.moveToFrontLocked(e)
	if e.m == nil {
		// Map lazily, from the page floor below the block so the kernel
		// sees an aligned offset; the 8-aligned block start is recovered
		// by slicing the page slack back off.
		floor := e.off &^ (t.pageSize - 1)
		slack := e.off - floor
		raw, err := mapFile(t.f, floor, int(slack+int64(e.size)))
		if err != nil {
			// Unmappable block: drop it so Get falls through to a fresh
			// materialisation instead of failing the run.
			t.removeLocked(e)
			return nil, false
		}
		e.m = &mapping{raw: raw, off: e.off, length: int64(e.size), refs: 1}
	}
	floor := e.off &^ (t.pageSize - 1)
	payload := e.m.raw[e.off-floor:]
	recs := make([][]trace.Record, len(e.counts))
	pos := 0
	for c, n := range e.counts {
		if n == 0 {
			continue
		}
		//redhip:unsafe-ok spill offsets are 8-aligned (align8), so the mapped bytes view back as records
		p := unsafe.Pointer(&payload[pos])
		if redhipassert.Enabled {
			redhipassert.Check(uintptr(p)%8 == 0, "tracestore: spilled block view is misaligned")
		}
		//redhip:unsafe-ok zero-copy view over the pinned mapping; lifetime held by the mapPin finalizer
		recs[c] = unsafe.Slice((*trace.Record)(p), n)
		pos += n * int(RecordBytes)
	}
	e.m.refs++
	pin := &mapPin{t: t, m: e.m}
	runtime.SetFinalizer(pin, func(p *mapPin) { p.t.release(p.m) })
	t.diskHits++
	return &Materialized{name: e.name, cpi: e.cpi, recs: recs, size: e.size, pin: pin}, true
}

// release drops one mapping reference, unmapping (and, if the block was
// evicted, returning its storage) when the last holder lets go. Runs on
// finalizer goroutines as well as eviction paths; it takes only t.mu.
func (t *diskTier) release(m *mapping) {
	t.mu.Lock()
	m.refs--
	if m.refs == 0 && m.raw != nil {
		_ = unmapFile(m.raw)
		m.raw = nil
		if m.punchOnFree && t.f != nil {
			punchHole(t.f, m.off, m.length)
		}
	}
	t.mu.Unlock()
}

// evictOverLocked drops least-recently-used blocks until the accounted
// bytes fit the budget. Blocks still pinned by live replays keep their
// pages mapped (and their file storage) until the last pin drops — the
// punchOnFree flag defers the hole punch to that release.
func (t *diskTier) evictOverLocked() {
	e := t.tail
	for t.bytes > t.budget && e != nil {
		prev := e.prev
		t.evictLocked(e)
		e = prev
	}
}

func (t *diskTier) evictLocked(e *diskEntry) {
	t.removeLocked(e)
	t.diskEvictions++
	if e.m == nil {
		// Never mapped: storage can go back immediately.
		if t.f != nil {
			punchHole(t.f, e.off, int64(e.size))
		}
		return
	}
	e.m.punchOnFree = true
	e.m.refs-- // residency reference
	if e.m.refs == 0 && e.m.raw != nil {
		_ = unmapFile(e.m.raw)
		e.m.raw = nil
		if t.f != nil {
			punchHole(t.f, e.m.off, e.m.length)
		}
	}
	e.m = nil
}

// close drops every resident block and closes the spill file. Mappings
// pinned by live replays survive until their finalizers run; unmapping
// is independent of the file descriptor, so that is safe after close.
func (t *diskTier) close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	for _, e := range t.entries {
		if e.m != nil {
			e.m.refs--
			if e.m.refs == 0 && e.m.raw != nil {
				_ = unmapFile(e.m.raw)
				e.m.raw = nil
			}
			e.m = nil
		}
	}
	t.entries = make(map[Key]*diskEntry)
	t.head, t.tail = nil, nil
	t.bytes = 0
	f := t.f
	t.f = nil
	t.mu.Unlock()
	if f != nil {
		return f.Close()
	}
	return nil
}

func align8(n int64) int64 { return (n + 7) &^ 7 }

// --- disk LRU list (t.mu held: the Locked suffix is the guarded analyzer's contract) -------------------------------------------------

func (t *diskTier) pushFrontLocked(e *diskEntry) {
	e.prev, e.next = nil, t.head
	if t.head != nil {
		t.head.prev = e
	}
	t.head = e
	if t.tail == nil {
		t.tail = e
	}
}

func (t *diskTier) unlinkLocked(e *diskEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		t.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		t.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (t *diskTier) moveToFrontLocked(e *diskEntry) {
	if t.head == e {
		return
	}
	t.unlinkLocked(e)
	t.pushFrontLocked(e)
}

func (t *diskTier) removeLocked(e *diskEntry) {
	t.unlinkLocked(e)
	delete(t.entries, e.key)
	t.bytes -= e.size
}
