//go:build unix && !linux

package tracestore

import (
	"os"
	"syscall"
)

const mmapSupported = true

func mapFile(f *os.File, off int64, length int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), off, length, syscall.PROT_READ, syscall.MAP_SHARED)
}

func unmapFile(b []byte) error {
	return syscall.Munmap(b)
}

// punchHole is a no-op off Linux: evicted blocks stay allocated in the
// unlinked spill file until the store closes.
func punchHole(*os.File, int64, int64) {}
