package tracestore

import (
	"runtime"
	"sync"
	"testing"

	"redhip/internal/trace"
)

// diskStore builds a store whose RAM budget holds roughly ram streams
// of refs records, with the disk tier in a test temp dir.
func diskStore(t *testing.T, ramBytes, diskBytes uint64) *Store {
	t.Helper()
	if !mmapSupported {
		t.Skip("disk tier unsupported on this platform")
	}
	s, err := NewWithConfig(Config{
		BudgetBytes:     ramBytes,
		DiskDir:         t.TempDir(),
		DiskBudgetBytes: diskBytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

// streamBytes is the RAM charge of one testKey stream.
func streamBytes(refs uint64) uint64 { return 2 * refs * RecordBytes }

// collectRecords drains one materialised stream into plain slices so it
// can be compared after the backing entry is evicted or remapped.
func collectRecords(m *Materialized) [][]trace.Record {
	out := make([][]trace.Record, len(m.recs))
	for c := range m.recs {
		out[c] = append([]trace.Record(nil), m.recs[c]...)
	}
	return out
}

// TestDiskSpillRoundTrip pins the tier's core contract: a stream
// evicted from RAM comes back from the spill file bit-identical.
func TestDiskSpillRoundTrip(t *testing.T) {
	const refs = 4000
	s := diskStore(t, streamBytes(refs), 0)
	kA, kB := testKey("mcf", refs), testKey("milc", refs)

	matA, err := s.Get(kA)
	if err != nil {
		t.Fatal(err)
	}
	want := collectRecords(matA)

	// B evicts A (budget fits one stream); A spills to disk.
	if _, err := s.Get(kB); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Evictions != 1 || st.Spills != 1 {
		t.Fatalf("after displacement: Evictions=%d Spills=%d, want 1/1", st.Evictions, st.Spills)
	}
	if st.SpilledBytes != streamBytes(refs) {
		t.Fatalf("SpilledBytes = %d, want %d", st.SpilledBytes, streamBytes(refs))
	}
	if st.DiskEntries != 1 || st.DiskBytes != streamBytes(refs) {
		t.Fatalf("disk gauges = %d entries / %d bytes, want 1 / %d", st.DiskEntries, st.DiskBytes, streamBytes(refs))
	}

	// Reload A: must come from disk, zero-copy, identical records.
	matA2, err := s.Get(kA)
	if err != nil {
		t.Fatal(err)
	}
	st = s.Stats()
	if st.DiskHits != 1 {
		t.Fatalf("DiskHits = %d, want 1", st.DiskHits)
	}
	if st.Materializations != 2 {
		t.Fatalf("Materializations = %d, want 2 (disk hit must not re-generate)", st.Materializations)
	}
	if matA2.pin == nil {
		t.Fatal("disk-loaded block has no mapping pin")
	}
	got := collectRecords(matA2)
	for c := range want {
		if len(got[c]) != len(want[c]) {
			t.Fatalf("core %d: %d records from disk, want %d", c, len(got[c]), len(want[c]))
		}
		for i := range want[c] {
			if got[c][i] != want[c][i] {
				t.Fatalf("core %d record %d: disk %+v, want %+v", c, i, got[c][i], want[c][i])
			}
		}
	}
}

// TestDiskReplaySources pins that Sources over a disk-backed block
// replays through the normal TraceSource path, matching a RAM replay.
func TestDiskReplaySources(t *testing.T) {
	const refs = 3000
	k := testKey("soplex", refs)

	ram := New(0)
	ramMat, err := ram.Get(k)
	if err != nil {
		t.Fatal(err)
	}

	s := diskStore(t, streamBytes(refs), 0)
	if _, err := s.Get(k); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(testKey("lbm", refs)); err != nil { // displace k to disk
		t.Fatal(err)
	}
	diskMat, err := s.Get(k)
	if err != nil {
		t.Fatal(err)
	}
	if s.Stats().DiskHits == 0 {
		t.Fatal("replay did not come from the disk tier")
	}

	a, b := ramMat.Sources(), diskMat.Sources()
	var ra, rb trace.Record
	for c := range a {
		for i := 0; i < refs; i++ {
			okA, okB := a[c].Next(&ra), b[c].Next(&rb)
			if !okA || !okB {
				t.Fatalf("core %d: stream ended early at %d (ram=%v disk=%v)", c, i, okA, okB)
			}
			if ra != rb {
				t.Fatalf("core %d record %d: disk replay %+v, ram %+v", c, i, rb, ra)
			}
		}
	}
}

// TestEvictionUnderConcurrentReplayRAM pins the RAM-tier invariant the
// disk tier's refcounting mirrors: records handed to a running replay
// stay valid after their entry is evicted mid-replay.
func TestEvictionUnderConcurrentReplayRAM(t *testing.T) {
	const refs = 4000
	s := New(streamBytes(refs)) // RAM-only, one stream fits
	k := testKey("mcf", refs)
	mat, err := s.Get(k)
	if err != nil {
		t.Fatal(err)
	}
	want := collectRecords(mat)
	srcs := mat.Sources()

	// Replay halfway, then evict the entry while the cursors are live.
	var rec trace.Record
	for i := 0; i < refs/2; i++ {
		if !srcs[0].Next(&rec) {
			t.Fatalf("stream ended early at %d", i)
		}
	}
	if _, err := s.Get(testKey("milc", refs)); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1", st.Evictions)
	}
	runtime.GC() // must not reclaim the records the cursors still hold

	for i := refs / 2; i < refs; i++ {
		if !srcs[0].Next(&rec) {
			t.Fatalf("stream ended at %d after eviction", i)
		}
		if rec != want[0][i] {
			t.Fatalf("record %d changed after eviction: %+v, want %+v", i, rec, want[0][i])
		}
	}
}

// TestDiskEvictionUnderConcurrentReplay pins the refcounted-mapping
// invariant: disk-evicting a block while replays hold its mmap'd
// records must not unmap the pages under them.
func TestDiskEvictionUnderConcurrentReplay(t *testing.T) {
	const refs = 2000
	// Disk budget fits exactly one spilled stream, so the second spill
	// disk-evicts the first while we are replaying it.
	s := diskStore(t, streamBytes(refs), streamBytes(refs))
	kA, kB, kC := testKey("mcf", refs), testKey("milc", refs), testKey("lbm", refs)

	if _, err := s.Get(kA); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(kB); err != nil { // A spills to disk
		t.Fatal(err)
	}
	matA, err := s.Get(kA) // disk hit: mmap-backed, pinned
	if err != nil {
		t.Fatal(err)
	}
	if s.Stats().DiskHits != 1 {
		t.Fatalf("DiskHits = %d, want 1", s.Stats().DiskHits)
	}
	want := collectRecords(matA)
	srcs := matA.Sources()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// B's eviction spills it to disk, which blows the disk budget
		// and disk-evicts A's block mid-replay.
		if _, err := s.Get(kC); err != nil {
			t.Error(err)
		}
	}()
	var rec trace.Record
	for i := 0; i < refs; i++ {
		if !srcs[0].Next(&rec) {
			t.Fatalf("disk replay ended at %d during eviction", i)
		}
		if rec != want[0][i] {
			t.Fatalf("record %d corrupted during disk eviction: %+v, want %+v", i, rec, want[0][i])
		}
	}
	wg.Wait()

	st := s.Stats()
	if st.DiskEvictions == 0 {
		t.Fatalf("no disk evictions recorded: %+v", st)
	}
	runtime.GC() // run pin finalizers under -race for good measure
	runtime.GC()
}

// TestDiskTierClose pins Close semantics: resident blocks drop, the
// store keeps serving from RAM and regenerating, and pinned mappings
// stay readable.
func TestDiskTierClose(t *testing.T) {
	const refs = 1500
	s := diskStore(t, streamBytes(refs), 0)
	kA, kB := testKey("mcf", refs), testKey("milc", refs)
	if _, err := s.Get(kA); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(kB); err != nil {
		t.Fatal(err)
	}
	matA, err := s.Get(kA) // pinned disk block
	if err != nil {
		t.Fatal(err)
	}
	want := collectRecords(matA)

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	st := s.Stats()
	if st.DiskEntries != 0 || st.DiskBytes != 0 {
		t.Fatalf("disk gauges after close: %d entries / %d bytes, want 0/0", st.DiskEntries, st.DiskBytes)
	}

	// The pinned mapping must still be readable after close.
	got := collectRecords(matA)
	for c := range want {
		for i := range want[c] {
			if got[c][i] != want[c][i] {
				t.Fatalf("core %d record %d unreadable after close", c, i)
			}
		}
	}

	// Get still works — it just regenerates instead of loading.
	before := s.Stats().Materializations
	if _, err := s.Get(kB); err != nil {
		t.Fatal(err)
	}
	if after := s.Stats().Materializations; after != before+1 {
		t.Fatalf("post-close Get materializations %d -> %d, want regeneration", before, after)
	}
}

// TestDiskOversizeStreamSpills pins the oversize path: a stream too
// large for RAM is handed to waiters and parked on disk, so the next
// Get replays it instead of regenerating.
func TestDiskOversizeStreamSpills(t *testing.T) {
	const refs = 2000
	s := diskStore(t, streamBytes(refs)/2, 0) // every stream is oversize
	k := testKey("mcf", refs)
	if _, err := s.Get(k); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Entries != 0 {
		t.Fatalf("oversize stream retained in RAM: %d entries", st.Entries)
	}
	if st.Spills != 1 {
		t.Fatalf("Spills = %d, want 1", st.Spills)
	}
	if _, err := s.Get(k); err != nil {
		t.Fatal(err)
	}
	st = s.Stats()
	if st.DiskHits != 1 || st.Materializations != 1 {
		t.Fatalf("oversize reload: DiskHits=%d Materializations=%d, want 1/1", st.DiskHits, st.Materializations)
	}
}
