package tracestore

import "testing"

// TestMaterializeNanosIsCumulative is the regression test for the
// sweep-benchmark accounting bug: MaterializeNanos accumulates over
// the store's whole lifetime, so an interval consumer that reads the
// raw counter after N fills sees N fills' worth of time — a warm
// store's lifetime total once got compared against a cold store's
// single fill and reported warm generation as slower than cold. The
// scripted clock makes the arithmetic exact: per-interval numbers must
// come from Delta, per-fill means from MeanMaterializeNanos.
func TestMaterializeNanosIsCumulative(t *testing.T) {
	// The clock advances 100ns during the first fill and 300ns during
	// the second (Get reads it twice per materialisation).
	ticks := []int64{0, 100, 1000, 1300}
	i := 0
	s := NewWithClock(0, func() int64 { n := ticks[i]; i++; return n })

	before := s.Stats()
	if _, err := s.Get(testKey("mcf", 500)); err != nil {
		t.Fatal(err)
	}
	afterFirst := s.Stats()
	if afterFirst.MaterializeNanos != 100 || afterFirst.Materializations != 1 {
		t.Fatalf("after first fill: nanos=%d materializations=%d, want 100/1",
			afterFirst.MaterializeNanos, afterFirst.Materializations)
	}
	if _, err := s.Get(testKey("milc", 500)); err != nil {
		t.Fatal(err)
	}
	afterSecond := s.Stats()
	if afterSecond.MaterializeNanos != 400 || afterSecond.Materializations != 2 {
		t.Fatalf("after second fill: nanos=%d materializations=%d, want 400/2",
			afterSecond.MaterializeNanos, afterSecond.Materializations)
	}

	// The bug: reading the raw counter for the second interval would
	// report 400ns. Delta isolates the interval...
	d := afterSecond.Delta(afterFirst)
	if d.MaterializeNanos != 300 || d.Materializations != 1 || d.Misses != 1 {
		t.Errorf("second-interval delta: nanos=%d materializations=%d misses=%d, want 300/1/1",
			d.MaterializeNanos, d.Materializations, d.Misses)
	}
	// ...and the whole-life delta against the zero snapshot is the raw
	// counter, so Delta composes.
	if all := afterSecond.Delta(before); all.MaterializeNanos != 400 {
		t.Errorf("whole-life delta nanos = %d, want 400", all.MaterializeNanos)
	}
	if got := afterSecond.MeanMaterializeNanos(); got != 200 {
		t.Errorf("mean materialize nanos = %d, want 200", got)
	}
	if got := (Stats{}).MeanMaterializeNanos(); got != 0 {
		t.Errorf("mean on empty stats = %d, want 0", got)
	}
}

// TestStatsDeltaKeepsGauges pins Delta's gauge semantics: Entries,
// Bytes and BudgetBytes are point-in-time values and keep the later
// snapshot's reading.
func TestStatsDeltaKeepsGauges(t *testing.T) {
	prev := Stats{Hits: 2, Misses: 1, Entries: 1, Bytes: 100, BudgetBytes: 1000, Evictions: 1}
	cur := Stats{Hits: 5, Misses: 3, Entries: 2, Bytes: 250, BudgetBytes: 1000, Evictions: 1}
	d := cur.Delta(prev)
	if d.Hits != 3 || d.Misses != 2 || d.Evictions != 0 {
		t.Errorf("counter deltas = %+v", d)
	}
	if d.Entries != 2 || d.Bytes != 250 || d.BudgetBytes != 1000 {
		t.Errorf("gauges changed by Delta: %+v", d)
	}
}

// TestHitsDoNotAccrueMaterializeTime: replay hits must leave the
// materialisation counters untouched.
func TestHitsDoNotAccrueMaterializeTime(t *testing.T) {
	ticks := []int64{0, 50}
	i := 0
	s := NewWithClock(0, func() int64 { n := ticks[i]; i++; return n })
	k := testKey("mcf", 400)
	if _, err := s.Get(k); err != nil {
		t.Fatal(err)
	}
	first := s.Stats()
	for n := 0; n < 3; n++ {
		if _, err := s.Get(k); err != nil {
			t.Fatal(err)
		}
	}
	d := s.Stats().Delta(first)
	if d.Hits != 3 || d.Materializations != 0 || d.MaterializeNanos != 0 {
		t.Errorf("hit-only interval delta = %+v, want 3 hits and no materialisation movement", d)
	}
}
