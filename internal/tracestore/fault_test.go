package tracestore

import (
	"strings"
	"sync"
	"testing"
)

// TestConcurrentFailedMaterialisation: every concurrent Get riding a
// single-flight entry whose fill fails must receive the error — never
// a nil error with a zero-length trace — and the entry must not be
// cached, so the next Get retries the fill. Run with -race: the
// waiters read the entry's error across the ready-channel close.
func TestConcurrentFailedMaterialisation(t *testing.T) {
	st := New(0)
	k := testKey("no-such-workload", 1000)
	const callers = 16
	errs := make([]error, callers)
	mats := make([]*Materialized, callers)
	var wg sync.WaitGroup
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer wg.Done()
			mats[i], errs[i] = st.Get(k)
		}(i)
	}
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] == nil {
			t.Fatalf("caller %d: Get returned nil error (mat %v) from a failed fill", i, mats[i])
		}
		if mats[i] != nil {
			t.Fatalf("caller %d: Get returned a materialisation alongside error %v", i, errs[i])
		}
		if !strings.Contains(errs[i].Error(), "no-such-workload") {
			t.Fatalf("caller %d: error %q does not name the workload", i, errs[i])
		}
	}
	stats := st.Stats()
	if stats.Entries != 0 || stats.Bytes != 0 {
		t.Fatalf("failed materialisation left residue: entries=%d bytes=%d", stats.Entries, stats.Bytes)
	}
	// The failed entry was dropped, so a later Get retries the fill
	// (and fails again here, but as a fresh miss).
	if _, err := st.Get(k); err == nil {
		t.Fatalf("retry Get unexpectedly succeeded")
	}
	if got := st.Stats().Misses; got < stats.Misses+1 {
		t.Fatalf("retry did not start a fresh materialisation: misses %d -> %d", stats.Misses, got)
	}
}
