package sim

import (
	"fmt"
	"time"

	"redhip/internal/redhipassert"
	"redhip/internal/trace"
	"redhip/internal/workload"
)

// This file is the shared front half of the multi-scheme engine: one
// trace decode/refill pipeline that feeds every per-scheme back half.
// The front materialises each core's reference stream exactly once, in
// batchRefs-sized blocks whose boundaries are the same boundaries the
// single-scheme engine's refill would cut (blocks never straddle the
// warmup/measurement boundary), so a back half consuming front blocks
// sees byte-for-byte the windows a solo Run would have seen.
//
// Two storage modes, chosen per core at build time:
//
//   - stable: the source implements workload.StableWindowSource
//     (tracestore replays), so a block is a zero-copy view of the
//     immutable backing records — the front stores slice headers only.
//   - generated: live sources are bulk-generated into front-owned
//     slabs. Retired slabs (blocks every consumer has passed) return
//     to a free list, so steady-state generation allocates nothing and
//     resident memory is bounded by the cross-scheme skew plus the
//     lookahead, not the trace length — the paper-scale 500M-reference
//     streams never exist in memory at once.
//
// Concurrency discipline: the RunMulti driver alternates a
// single-threaded generate/retire phase with a parallel simulate
// phase. Block storage is only written between simulate phases and
// only read during them (each feed cursor is owned by one engine), so
// the structure needs no locks; the driver's barrier provides the
// happens-before edges -race checks.

// frontLookahead is how many blocks per core the front generates beyond
// the furthest consumer each round. Larger lookahead means longer
// simulate phases between barriers at the cost of resident records:
// 4 blocks x 4096 records x 24 B = 384 KiB per core.
const frontLookahead = 4

// feedStatus is the outcome of a block pull.
type feedStatus uint8

const (
	feedOK      feedStatus = iota
	feedBlocked            // block not generated yet; suspend and retry next round
	feedEOF                // source exhausted (or stream complete)
)

// coreStream is one core's block pipeline.
type coreStream struct {
	batch  workload.BatchSource  // generated mode (nil in stable mode)
	stable workload.WindowSource // stable mode: zero-copy views

	// ring holds blocks [retired, head) at index blk%len(ring),
	// growing when the live span outruns the capacity.
	ring    [][]trace.Record
	retired uint64 // lowest live block index
	head    uint64 // next block index to generate
	total   uint64 // block count of the full stream (all windows)

	free      [][]trace.Record // retired generated-mode slabs for reuse
	exhausted bool             // source returned a short block
}

// traceFront owns the per-core block pipelines plus the stream
// metadata the back halves need.
type traceFront struct {
	cores    int
	name     string
	cpi      []float64
	streams  []coreStream
	windows  []uint64 // window lengths: optional warmup, then measurement
	genNanos int64    // wall time inside source generation (the generate phase)
}

// newTraceFront builds the front over the per-core sources for the
// window structure cfg describes.
func newTraceFront(cfg *Config, sources []workload.Source) (*traceFront, error) {
	if len(sources) != cfg.Cores {
		return nil, fmt.Errorf("sim: %d sources for %d cores", len(sources), cfg.Cores)
	}
	f := &traceFront{
		cores:   cfg.Cores,
		name:    sources[0].Name(),
		cpi:     make([]float64, cfg.Cores),
		streams: make([]coreStream, cfg.Cores),
	}
	if cfg.WarmupRefsPerCore > 0 {
		f.windows = append(f.windows, cfg.WarmupRefsPerCore)
	}
	f.windows = append(f.windows, cfg.RefsPerCore)
	total := uint64(0)
	for _, l := range f.windows {
		total += (l + batchRefs - 1) / batchRefs
	}
	for c, s := range sources {
		f.cpi[c] = s.CPI()
		st := &f.streams[c]
		st.total = total
		if sw, ok := s.(workload.StableWindowSource); ok && sw.StableWindows() {
			st.stable = sw
		} else {
			st.batch = workload.AsBatch(s)
		}
	}
	return f, nil
}

// blockLen returns the record count of block idx: batchRefs except for
// each window's final block, which holds the remainder so no block
// straddles a warmup/measurement boundary. This is exactly the size a
// solo engine's refill would request at the same point (refill caps at
// the references the core still owes the window).
func (f *traceFront) blockLen(idx uint64) uint64 {
	for _, l := range f.windows {
		nb := (l + batchRefs - 1) / batchRefs
		if idx < nb {
			if idx == nb-1 {
				if rem := l % batchRefs; rem != 0 {
					return rem
				}
			}
			return batchRefs
		}
		idx -= nb
	}
	return 0
}

// extend generates core c's blocks up to and including index upto
// (clamped to the stream's end). Single-threaded: only the driver's
// generate phase calls this, never concurrently with block reads.
func (f *traceFront) extend(c int, upto uint64) {
	st := &f.streams[c]
	for st.head <= upto && st.head < st.total && !st.exhausted {
		want := f.blockLen(st.head)
		start := time.Now() //redhip:allow wallclock -- genNanos perf attribution only
		var blk []trace.Record
		if st.stable != nil {
			blk = st.stable.Window(int(want))
		} else {
			slab := st.slab()
			n := st.batch.NextBatch(slab[:want])
			blk = slab[:n]
		}
		f.genNanos += time.Since(start).Nanoseconds() //redhip:allow wallclock -- genNanos perf attribution only
		if uint64(len(blk)) < want {
			st.exhausted = true
			if len(blk) == 0 {
				return
			}
		}
		st.push(blk)
	}
}

// retire drops core c's blocks below upto: generated-mode slabs return
// to the free list, stable-mode views are released.
func (f *traceFront) retire(c int, upto uint64) {
	st := &f.streams[c]
	for st.retired < upto && st.retired < st.head {
		i := st.retired % uint64(len(st.ring))
		if blk := st.ring[i]; blk != nil && st.batch != nil && cap(blk) >= batchRefs {
			st.free = append(st.free, blk[:0])
		}
		st.ring[i] = nil
		st.retired++
	}
}

// slab returns a generation buffer of batchRefs capacity, reusing a
// retired one when available.
func (st *coreStream) slab() []trace.Record {
	if n := len(st.free); n > 0 {
		s := st.free[n-1]
		st.free = st.free[:n-1]
		return s[:batchRefs]
	}
	return make([]trace.Record, batchRefs)
}

// push appends a block at st.head, growing the ring when the live span
// fills it.
func (st *coreStream) push(blk []trace.Record) {
	if n := uint64(len(st.ring)); n == 0 || st.head-st.retired == n {
		grown := make([][]trace.Record, max(8, 2*len(st.ring)))
		for b := st.retired; b < st.head; b++ {
			grown[b%uint64(len(grown))] = st.ring[b%n]
		}
		st.ring = grown
	}
	st.ring[st.head%uint64(len(st.ring))] = blk
	st.head++
}

// multiFeed is one back half's read cursor over the front: a per-core
// next-block index. Each engine owns exactly one feed, so cursor
// advances are single-threaded even during the parallel simulate
// phase; the blocks themselves are shared read-only.
type multiFeed struct {
	f   *traceFront
	cur []uint64 // per-core next block index
}

func newMultiFeed(f *traceFront) *multiFeed {
	return &multiFeed{f: f, cur: make([]uint64, f.cores)}
}

// next pulls core c's next block. want is the refill size the engine
// computed from its window budget; the front's block boundaries make
// the two agree except when the source ran dry early.
func (m *multiFeed) next(c int, want uint64) ([]trace.Record, feedStatus) {
	st := &m.f.streams[c]
	b := m.cur[c]
	if b >= st.head {
		if st.exhausted || b >= st.total {
			return nil, feedEOF
		}
		return nil, feedBlocked
	}
	blk := st.ring[b%uint64(len(st.ring))]
	if redhipassert.Enabled {
		redhipassert.Check(blk != nil, "sim: multi feed pulled a retired block")
		redhipassert.Check(uint64(len(blk)) == want || st.exhausted,
			"sim: front block size disagrees with engine refill request")
	}
	m.cur[c] = b + 1
	return blk, feedOK
}

// frontCursorBounds returns, for core c, the highest block index safe
// to retire below (minCur) and the furthest consumer position (maxCur).
// A feed's cursor is the NEXT block it will pull, so block cur-1 may
// still be live as the engine's current window (a suspended engine
// holds partially consumed windows on every core, not just the one it
// blocked on) — retirement must stay below cur-1, not cur, or the
// generate phase would recycle a slab an engine is still reading.
func frontCursorBounds(feeds []*multiFeed, c int) (minCur, maxCur uint64) {
	minCur = ^uint64(0)
	for _, m := range feeds {
		if m == nil {
			continue
		}
		low := m.cur[c]
		if low > 0 {
			low-- // block cur-1 may be the engine's live window
		}
		if low < minCur {
			minCur = low
		}
		if m.cur[c] > maxCur {
			maxCur = m.cur[c]
		}
	}
	if minCur == ^uint64(0) {
		minCur = 0
	}
	return minCur, maxCur
}
