package sim

import (
	"fmt"
	"testing"

	"redhip/internal/tracestore"
)

// TestGoldenFingerprintsReplayed re-runs every golden case with its
// reference stream served by the materialise-once trace store instead of
// live generators. The fingerprints must match the recorded ones exactly:
// replay is required to be bit-identical to generation, not merely
// statistically equivalent, or the sweep cache would silently change
// results. The store must also materialise exactly once per distinct
// stream — the sixteen cases share two (mcf for the non-prefetch runs,
// milc for the prefetch runs).
func TestGoldenFingerprintsReplayed(t *testing.T) {
	if *captureGolden {
		t.Skip("-capture regenerates fingerprints from live generation")
	}
	store := tracestore.New(0)
	for _, tc := range goldenCases {
		name := fmt.Sprintf("%s/%s/prefetch=%v", tc.scheme, tc.incl, tc.prefetch)
		cfg := Smoke()
		cfg.Scheme = tc.scheme
		cfg.Inclusion = tc.incl
		cfg.EnablePrefetch = tc.prefetch
		wl := "mcf"
		if tc.prefetch {
			wl = "milc"
		}
		mat, err := store.Get(tracestore.Key{
			Workload:    wl,
			Cores:       cfg.Cores,
			Scale:       cfg.WorkloadScale,
			Seed:        1,
			RefsPerCore: cfg.WarmupRefsPerCore + cfg.RefsPerCore,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(cfg, mat.Sources())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := goldenFingerprint(t, res); got != tc.want {
			t.Errorf("%s: replayed fingerprint %s, want %s — materialised replay diverged from live generation", name, got, tc.want)
		}
	}
	st := store.Stats()
	wantMisses, wantHits := uint64(2), uint64(len(goldenCases)-2)
	if st.Misses != wantMisses || st.Hits != wantHits {
		t.Errorf("store stats %d misses / %d hits, want %d / %d — each distinct stream must materialise exactly once",
			st.Misses, st.Hits, wantMisses, wantHits)
	}
}
