package sim

import (
	"testing"

	"redhip/internal/energy"
	"redhip/internal/memaddr"
	"redhip/internal/workload"
)

// runSmoke runs the tiny test configuration for one workload/scheme.
func runSmoke(t *testing.T, wl string, mutate func(*Config)) *Result {
	t.Helper()
	cfg := Smoke()
	if mutate != nil {
		mutate(&cfg)
	}
	srcs, err := workload.Sources(wl, cfg.Cores, cfg.WorkloadScale, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg, srcs)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunValidatesInputs(t *testing.T) {
	cfg := Smoke()
	srcs, _ := workload.Sources("mcf", cfg.Cores, cfg.WorkloadScale, 1)
	if _, err := Run(cfg, srcs[:1]); err == nil {
		t.Fatal("source/core mismatch accepted")
	}
	bad := cfg
	bad.Cores = 0
	if _, err := Run(bad, srcs); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestDeterminism(t *testing.T) {
	for _, scheme := range Schemes() {
		a := runSmoke(t, "mcf", func(c *Config) { c.Scheme = scheme })
		b := runSmoke(t, "mcf", func(c *Config) { c.Scheme = scheme })
		if a.Cycles != b.Cycles || a.DynamicNJ() != b.DynamicNJ() || a.Refs != b.Refs {
			t.Errorf("%v: nondeterministic results: %d/%d cycles", scheme, a.Cycles, b.Cycles)
		}
		if a.Pred != b.Pred {
			t.Errorf("%v: nondeterministic predictor stats", scheme)
		}
	}
}

func TestRefsAccounting(t *testing.T) {
	res := runSmoke(t, "soplex", nil)
	cfg := Smoke()
	if res.Refs != cfg.RefsPerCore*uint64(cfg.Cores) {
		t.Fatalf("refs = %d, want %d", res.Refs, cfg.RefsPerCore*uint64(cfg.Cores))
	}
	// Every reference performs exactly one L1 lookup.
	if res.Levels[energy.L1].Lookups != res.Refs {
		t.Fatalf("L1 lookups %d != refs %d", res.Levels[energy.L1].Lookups, res.Refs)
	}
	if res.L1Misses != res.Levels[energy.L1].Misses {
		t.Fatalf("L1Misses %d != L1 stats misses %d", res.L1Misses, res.Levels[energy.L1].Misses)
	}
}

func TestBaseWalkConservation(t *testing.T) {
	// In the base inclusive walk: every L1 miss looks up L2; every L2
	// miss looks up L3; every L3 miss looks up L4; every L4 miss
	// fetches from memory.
	res := runSmoke(t, "astar", func(c *Config) { c.Scheme = Base })
	l := res.Levels
	if l[energy.L2].Lookups != l[energy.L1].Misses {
		t.Errorf("L2 lookups %d != L1 misses %d", l[energy.L2].Lookups, l[energy.L1].Misses)
	}
	if l[energy.L3].Lookups != l[energy.L2].Misses {
		t.Errorf("L3 lookups %d != L2 misses %d", l[energy.L3].Lookups, l[energy.L2].Misses)
	}
	if l[energy.L4].Lookups != l[energy.L3].Misses {
		t.Errorf("L4 lookups %d != L3 misses %d", l[energy.L4].Lookups, l[energy.L3].Misses)
	}
	if res.MemoryFetches != l[energy.L4].Misses {
		t.Errorf("memory fetches %d != L4 misses %d", res.MemoryFetches, l[energy.L4].Misses)
	}
}

func TestOracleIsPerfect(t *testing.T) {
	res := runSmoke(t, "mcf", func(c *Config) { c.Scheme = Oracle })
	if res.Pred.FalsePositive != 0 || res.Pred.FalseNegative != 0 {
		t.Fatalf("oracle mispredicted: %+v", res.Pred)
	}
	if res.Pred.Lookups == 0 {
		t.Fatal("oracle never consulted")
	}
	// With a perfect predictor, L4 lookups happen only for resident
	// blocks: the L4 hit rate must be 100%.
	if hr := res.HitRate(energy.L4); res.Levels[energy.L4].Lookups > 0 && hr != 1 {
		t.Fatalf("oracle L4 hit rate %.3f, want 1.0", hr)
	}
}

func TestSchemeOrderings(t *testing.T) {
	// The qualitative relationships of Figures 6-8 must hold on a
	// memory-bound workload.
	results := map[Scheme]*Result{}
	for _, s := range Schemes() {
		results[s] = runSmoke(t, "mcf", func(c *Config) { c.Scheme = s })
	}
	base := results[Base]
	// Oracle is the performance upper bound.
	if results[Oracle].Cycles >= base.Cycles {
		t.Error("oracle not faster than base")
	}
	if results[ReDHiP].Cycles >= base.Cycles {
		t.Error("redhip not faster than base on memory-bound workload")
	}
	if results[Oracle].Cycles > results[ReDHiP].Cycles {
		// Oracle must be at least as fast as ReDHiP.
	} else if results[Oracle].Cycles == results[ReDHiP].Cycles {
		t.Log("oracle == redhip cycles (unusual but not wrong)")
	}
	if results[ReDHiP].Cycles > results[Phased].Cycles {
		t.Error("redhip slower than phased on memory-bound workload")
	}
	// Phased degrades performance (serialised hits).
	if results[Phased].Cycles <= base.Cycles {
		t.Error("phased not slower than base")
	}
	// Energy: every mechanism beats base; oracle is the bound.
	for _, s := range []Scheme{Phased, CBF, ReDHiP, Oracle} {
		if results[s].DynamicNJ() >= base.DynamicNJ() {
			t.Errorf("%v dynamic energy not below base", s)
		}
	}
	if results[Oracle].DynamicNJ() > results[ReDHiP].DynamicNJ() {
		t.Error("oracle dynamic energy above redhip")
	}
	// ReDHiP beats CBF at equal area (the paper's core claim).
	if results[ReDHiP].DynamicNJ() >= results[CBF].DynamicNJ() {
		t.Error("redhip dynamic energy not below cbf at equal area")
	}
	if results[ReDHiP].Pred.Accuracy() <= results[CBF].Pred.Accuracy() {
		t.Error("redhip accuracy not above cbf at equal area")
	}
}

func TestBaseAndPhasedSameHitRates(t *testing.T) {
	// Phased changes timing/energy, not placement: hit rates identical.
	a := runSmoke(t, "soplex", func(c *Config) { c.Scheme = Base })
	b := runSmoke(t, "soplex", func(c *Config) { c.Scheme = Phased })
	for l := energy.L1; l < energy.NumLevels; l++ {
		if a.Levels[l] != b.Levels[l] {
			t.Errorf("%v stats differ between base and phased", l)
		}
	}
}

func TestReDHiPNoFalseNegatives(t *testing.T) {
	// Run asserts internally; exercise all policies and workloads with
	// predictors to make the conservativeness check bite.
	for _, wl := range []string{"mcf", "lbm", "pmf", "mix"} {
		for _, pol := range []InclusionPolicy{Inclusive, Hybrid, Exclusive} {
			res := runSmoke(t, wl, func(c *Config) { c.Scheme = ReDHiP; c.Inclusion = pol })
			if res.Pred.FalseNegative != 0 {
				t.Errorf("%s/%v: %d false negatives", wl, pol, res.Pred.FalseNegative)
			}
		}
	}
}

func TestRecalibrationCadence(t *testing.T) {
	res := runSmoke(t, "mcf", func(c *Config) { c.Scheme = ReDHiP })
	cfg := Smoke()
	want := res.L1Misses / cfg.RecalPeriod
	got := res.Pred.Recalibrations
	if got < want-1 || got > want+1 {
		t.Fatalf("recalibrations = %d, want ~%d (l1 misses %d / period %d)",
			got, want, res.L1Misses, cfg.RecalPeriod)
	}
	if res.Pred.RecalCycles == 0 {
		t.Fatal("recalibration cycles not charged")
	}
	if res.Dynamic.RecalJ == 0 {
		t.Fatal("recalibration energy not charged")
	}
}

func TestNeverRecalibrateIsWorse(t *testing.T) {
	// Stale bits only accumulate via LLC evictions, so run long enough
	// for several recalibration periods' worth of churn.
	mut := func(c *Config) {
		c.Scheme = ReDHiP
		c.IgnorePredictionOverhead = true
		c.RefsPerCore = 80_000
	}
	recal := runSmoke(t, "lbm", mut)
	never := runSmoke(t, "lbm", func(c *Config) {
		mut(c)
		c.RecalPeriod = 0
	})
	if never.Pred.Recalibrations != 0 {
		t.Fatal("recalibrated despite period 0")
	}
	if recal.Pred.Recalibrations == 0 {
		t.Fatal("periodic run never recalibrated; test is vacuous")
	}
	if never.Pred.FalsePositive <= recal.Pred.FalsePositive {
		t.Fatalf("never-recalibrate false positives (%d) not above periodic (%d)",
			never.Pred.FalsePositive, recal.Pred.FalsePositive)
	}
	if never.DynamicNJ() <= recal.DynamicNJ() {
		t.Fatal("never-recalibrate dynamic energy not above periodic")
	}
}

func TestPerMissRecalibrationIsBest(t *testing.T) {
	// Figure 12's left edge: recalibrating every miss (the mirror
	// model) is at least as accurate as any periodic schedule.
	every := runSmoke(t, "mcf", func(c *Config) {
		c.Scheme = ReDHiP
		c.RecalPeriod = 1
		c.IgnorePredictionOverhead = true
	})
	periodic := runSmoke(t, "mcf", func(c *Config) {
		c.Scheme = ReDHiP
		c.IgnorePredictionOverhead = true
	})
	if every.Pred.FalseNegative != 0 {
		t.Fatal("mirror table produced false negatives")
	}
	if every.Pred.Accuracy() < periodic.Pred.Accuracy() {
		t.Fatalf("per-miss recal accuracy %.3f below periodic %.3f",
			every.Pred.Accuracy(), periodic.Pred.Accuracy())
	}
}

func TestIgnorePredictionOverhead(t *testing.T) {
	with := runSmoke(t, "mcf", func(c *Config) { c.Scheme = ReDHiP })
	without := runSmoke(t, "mcf", func(c *Config) {
		c.Scheme = ReDHiP
		c.IgnorePredictionOverhead = true
	})
	if without.Dynamic.PTNJ != 0 || without.Dynamic.RecalJ != 0 {
		t.Fatal("overhead charged despite IgnorePredictionOverhead")
	}
	if with.Dynamic.PTNJ == 0 || with.Dynamic.RecalJ == 0 {
		t.Fatal("overhead not charged in normal mode")
	}
	if without.Cycles >= with.Cycles {
		t.Fatal("removing prediction latency did not speed up the run")
	}
}

func TestChargeFills(t *testing.T) {
	off := runSmoke(t, "mcf", func(c *Config) { c.Scheme = Base })
	on := runSmoke(t, "mcf", func(c *Config) { c.Scheme = Base; c.ChargeFills = true })
	var offFill, onFill float64
	for l := energy.L1; l < energy.NumLevels; l++ {
		offFill += off.Dynamic.FillNJ[l]
		onFill += on.Dynamic.FillNJ[l]
	}
	if offFill != 0 {
		t.Fatal("fill energy charged by default")
	}
	if onFill == 0 {
		t.Fatal("fill energy not charged with ChargeFills")
	}
	if on.Cycles != off.Cycles {
		t.Fatal("fill accounting changed timing")
	}
}

func TestHybridMatchesInclusiveForReDHiP(t *testing.T) {
	// Section III-C/Figure 13: with an inclusive LLC the hybrid policy
	// requires no ReDHiP changes and shows negligible result change.
	inc := runSmoke(t, "milc", func(c *Config) { c.Scheme = ReDHiP })
	hyb := runSmoke(t, "milc", func(c *Config) { c.Scheme = ReDHiP; c.Inclusion = Hybrid })
	incSave := 1 - inc.DynamicNJ()/runSmoke(t, "milc", func(c *Config) { c.Scheme = Base }).DynamicNJ()
	hybBase := runSmoke(t, "milc", func(c *Config) { c.Scheme = Base; c.Inclusion = Hybrid })
	hybSave := 1 - hyb.DynamicNJ()/hybBase.DynamicNJ()
	if diff := incSave - hybSave; diff > 0.15 || diff < -0.15 {
		t.Fatalf("hybrid savings %.3f far from inclusive %.3f", hybSave, incSave)
	}
}

func TestExclusiveStillSaves(t *testing.T) {
	// Figure 13: exclusive saves less than inclusive but still a large
	// fraction over its own base.
	base := runSmoke(t, "mcf", func(c *Config) { c.Scheme = Base; c.Inclusion = Exclusive })
	red := runSmoke(t, "mcf", func(c *Config) { c.Scheme = ReDHiP; c.Inclusion = Exclusive })
	if red.Pred.FalseNegative != 0 {
		t.Fatal("exclusive per-level stack produced false negatives")
	}
	save := 1 - red.DynamicNJ()/base.DynamicNJ()
	if save <= 0.10 {
		t.Fatalf("exclusive ReDHiP saves only %.1f%%", 100*save)
	}
}

func TestExclusiveLevelsDisjoint(t *testing.T) {
	// White-box: after an exclusive run, no block may live in two
	// levels of the same core's private chain, nor in a private level
	// and L4 simultaneously.
	cfg := Smoke()
	cfg.Scheme = Base
	cfg.Inclusion = Exclusive
	srcs, err := workload.Sources("astar", cfg.Cores, cfg.WorkloadScale, 3)
	if err != nil {
		t.Fatal(err)
	}
	e, err := newEngine(cfg, srcs)
	if err != nil {
		t.Fatal(err)
	}
	e.loop(cfg.RefsPerCore)
	for c := 0; c < cfg.Cores; c++ {
		e.l1[c].ForEachBlock(func(b memaddr.Addr) {
			if e.l2[c].Contains(b) || e.l3[c].Contains(b) || e.l4.Contains(b) {
				t.Fatalf("core %d: block %v in L1 and a lower level (exclusivity violated)", c, b)
			}
		})
		e.l2[c].ForEachBlock(func(b memaddr.Addr) {
			if e.l3[c].Contains(b) || e.l4.Contains(b) {
				t.Fatalf("core %d: block %v in L2 and a lower level", c, b)
			}
		})
		e.l3[c].ForEachBlock(func(b memaddr.Addr) {
			if e.l4.Contains(b) {
				t.Fatalf("core %d: block %v in L3 and L4", c, b)
			}
		})
	}
}

func TestInclusionInvariantHolds(t *testing.T) {
	// White-box: after an inclusive run, every block in a private level
	// must be present in the shared L4.
	cfg := Smoke()
	cfg.Scheme = ReDHiP
	srcs, err := workload.Sources("soplex", cfg.Cores, cfg.WorkloadScale, 5)
	if err != nil {
		t.Fatal(err)
	}
	e, err := newEngine(cfg, srcs)
	if err != nil {
		t.Fatal(err)
	}
	e.loop(cfg.RefsPerCore)
	for c := 0; c < cfg.Cores; c++ {
		for _, lvl := range []int{1, 2, 3} {
			var ch interface {
				ForEachBlock(func(memaddr.Addr))
			}
			switch lvl {
			case 1:
				ch = e.l1[c]
			case 2:
				ch = e.l2[c]
			case 3:
				ch = e.l3[c]
			}
			ch.ForEachBlock(func(b memaddr.Addr) {
				if !e.l4.Contains(b) {
					t.Fatalf("core %d L%d: block %v not in inclusive L4", c, lvl, b)
				}
			})
		}
	}
}

func TestPrefetchImprovesStreaming(t *testing.T) {
	// Figure 14: the stride prefetcher accelerates prefetchable codes.
	base := runSmoke(t, "lbm", func(c *Config) { c.Scheme = Base })
	sp := runSmoke(t, "lbm", func(c *Config) { c.Scheme = Base; c.EnablePrefetch = true })
	if sp.Prefetch.Issued == 0 {
		t.Fatal("prefetcher idle on a streaming workload")
	}
	if sp.Prefetch.Useful == 0 {
		t.Fatal("no useful prefetches on a streaming workload")
	}
	if sp.Cycles >= base.Cycles {
		t.Fatal("prefetch did not speed up streaming workload")
	}
	// Figure 15: prefetching costs dynamic energy.
	if sp.DynamicNJ() <= base.DynamicNJ() {
		t.Fatal("prefetch did not cost energy")
	}
}

func TestPrefetchPlusReDHiP(t *testing.T) {
	// Figure 14/15: the combination is faster than either alone on a
	// streaming workload, with energy between SP-only and ReDHiP-only.
	base := runSmoke(t, "lbm", func(c *Config) { c.Scheme = Base })
	sp := runSmoke(t, "lbm", func(c *Config) { c.Scheme = Base; c.EnablePrefetch = true })
	rd := runSmoke(t, "lbm", func(c *Config) { c.Scheme = ReDHiP })
	both := runSmoke(t, "lbm", func(c *Config) { c.Scheme = ReDHiP; c.EnablePrefetch = true })
	if both.Cycles >= sp.Cycles || both.Cycles >= rd.Cycles {
		t.Fatalf("combination (%d) not faster than SP (%d) and ReDHiP (%d)",
			both.Cycles, sp.Cycles, rd.Cycles)
	}
	if both.DynamicNJ() >= sp.DynamicNJ() {
		t.Fatal("ReDHiP did not offset prefetch energy")
	}
	_ = base
}

func TestMixWorkloadRuns(t *testing.T) {
	res := runSmoke(t, "mix", func(c *Config) { c.Scheme = ReDHiP })
	if res.Refs == 0 || res.Pred.FalseNegative != 0 {
		t.Fatalf("mix run bad: %+v", res.Pred)
	}
}

func TestCoreClocksBalanced(t *testing.T) {
	// The min-time interleaving must keep identical multiprogrammed
	// copies roughly in lockstep.
	res := runSmoke(t, "GemsFDTD", nil)
	var min, max uint64 = ^uint64(0), 0
	for _, c := range res.CoreCycles {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if min == 0 || float64(max-min)/float64(max) > 0.05 {
		t.Fatalf("core clocks unbalanced: min %d max %d", min, max)
	}
	if res.Cycles != max {
		t.Fatalf("Cycles %d != max core %d", res.Cycles, max)
	}
}

func TestLeakageTracksCycles(t *testing.T) {
	res := runSmoke(t, "soplex", nil)
	cfg := Smoke()
	want := energy.LeakageNJ(&cfg.Energy, cfg.Cores, res.Cycles)
	if res.LeakageNJ != want {
		t.Fatalf("leakage %v, want %v", res.LeakageNJ, want)
	}
}

func TestResultDerivedMetrics(t *testing.T) {
	base := runSmoke(t, "mcf", func(c *Config) { c.Scheme = Base })
	red := runSmoke(t, "mcf", func(c *Config) { c.Scheme = ReDHiP })
	if base.Speedup(base) != 0 {
		t.Error("self speedup not 0")
	}
	if base.DynamicEnergyRatio(base) != 1 {
		t.Error("self energy ratio not 1")
	}
	if red.PerformanceEnergyMetric(base) <= 1 {
		t.Error("redhip metric not above 1 on memory-bound workload")
	}
	if red.String() == "" {
		t.Error("empty String()")
	}
	if base.TotalNJ() <= base.DynamicNJ() {
		t.Error("total energy must include leakage")
	}
}

func TestCBFInclusiveAccuracyPositive(t *testing.T) {
	res := runSmoke(t, "bwaves", func(c *Config) { c.Scheme = CBF })
	if res.Pred.FalseNegative != 0 {
		t.Fatal("CBF produced false negatives")
	}
	if res.Pred.TrueNegative == 0 {
		t.Fatal("CBF never skipped a walk")
	}
}

func TestPaperScaleSmallRun(t *testing.T) {
	// The exact Table I geometry must run end to end (shortened).
	if testing.Short() {
		t.Skip("paper geometry run skipped in -short mode")
	}
	cfg := Paper()
	cfg.RefsPerCore = 20_000
	srcs, err := workload.Sources("astar", cfg.Cores, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg, srcs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pred.FalseNegative != 0 {
		t.Fatal("false negative at paper scale")
	}
}
