package sim

import (
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"runtime"
	"testing"

	"redhip/internal/tracestore"
	"redhip/internal/workload"
)

// goldenFingerprint renders a Result to a stable hash. JSON encoding is
// canonical for our purposes: field order is struct order, floats use
// the shortest round-trip representation, so two Results hash equal iff
// every counter, cycle count and energy figure is bit-identical.
func goldenFingerprint(t *testing.T, res *Result) string {
	t.Helper()
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatalf("marshal result: %v", err)
	}
	h := fnv.New64a()
	h.Write(b)
	return fmt.Sprintf("%016x", h.Sum64())
}

// goldenRun executes one smoke-geometry run of the named scheme and
// inclusion policy. Non-prefetch cases use mcf; prefetch cases use
// milc, whose strided components actually drive the stride prefetcher
// (mcf issues zero prefetches at smoke scale).
func goldenRun(t *testing.T, scheme Scheme, incl InclusionPolicy, prefetch bool) *Result {
	t.Helper()
	cfg := Smoke()
	cfg.Scheme = scheme
	cfg.Inclusion = incl
	cfg.EnablePrefetch = prefetch
	wl := "mcf"
	if prefetch {
		wl = "milc"
	}
	srcs, err := workload.Sources(wl, cfg.Cores, cfg.WorkloadScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg, srcs)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// goldenCases enumerates every valid scheme x inclusion combination
// (CBF is rejected under Exclusive) plus two prefetch-enabled runs.
type goldenCase struct {
	scheme   Scheme
	incl     InclusionPolicy
	prefetch bool
	want     string
}

// The recorded fingerprints below were captured at the seed revision
// (before the hot-path overhaul) and pin the documented determinism
// contract of Run: the same config and sources must produce
// bit-identical results across runs AND across refactors of the
// simulation core. Regenerate with -run TestGoldenFingerprints -capture
// only when an intentional semantic change is made, and say so in the
// commit message.
var captureGolden = flag.Bool("capture", false, "print golden fingerprints instead of asserting")

var goldenCases = []goldenCase{
	{Base, Inclusive, false, "f7fdb92bd63f4919"},
	{Base, Hybrid, false, "58a601afbc20116f"},
	{Base, Exclusive, false, "06be6574033cf6ce"},
	{Phased, Inclusive, false, "d9ee6451d3cda0ca"},
	{Phased, Hybrid, false, "143ef9f0a646a4d4"},
	{Phased, Exclusive, false, "08bea1e329ca46f9"},
	{CBF, Inclusive, false, "918a4164e5113dce"},
	{CBF, Hybrid, false, "b79a63f640b075a9"},
	{ReDHiP, Inclusive, false, "d6c150e5572db98c"},
	{ReDHiP, Hybrid, false, "32c7528a50213c54"},
	{ReDHiP, Exclusive, false, "66f955623bc23c7b"},
	{Oracle, Inclusive, false, "9425832655b42508"},
	{Oracle, Hybrid, false, "14b68a42361de2c1"},
	{Oracle, Exclusive, false, "adef0ec4a2be439e"},
	{ReDHiP, Inclusive, true, "639076d8eaf051c2"},
	{Base, Exclusive, true, "9953b3574608eb78"},
}

// goldenGroup is one (inclusion, prefetch) slice of the golden cases:
// the schemes that can share a single RunMulti pass (scheme is the only
// config axis RunMulti varies).
type goldenGroup struct {
	incl     InclusionPolicy
	prefetch bool
	schemes  []Scheme
	want     []string
}

// goldenGroups partitions goldenCases by (inclusion, prefetch),
// preserving case order within each group.
func goldenGroups() []goldenGroup {
	var groups []goldenGroup
	for _, tc := range goldenCases {
		found := false
		for i := range groups {
			if groups[i].incl == tc.incl && groups[i].prefetch == tc.prefetch {
				groups[i].schemes = append(groups[i].schemes, tc.scheme)
				groups[i].want = append(groups[i].want, tc.want)
				found = true
				break
			}
		}
		if !found {
			groups = append(groups, goldenGroup{
				incl: tc.incl, prefetch: tc.prefetch,
				schemes: []Scheme{tc.scheme}, want: []string{tc.want},
			})
		}
	}
	return groups
}

// TestGoldenFingerprintsMulti extends the sixteen golden fingerprints
// to the single-pass multi-scheme engine: every golden case, grouped
// into RunMulti passes, must reproduce its recorded fingerprint exactly
// — at parallelism 1, 2 and NumCPU, and through both front modes
// (streaming live generation with slab recycling, and zero-copy stable
// windows from the trace store). Bit-identity across parallelism is
// the deterministic-parallelism contract: worker count may change wall
// time, never results.
func TestGoldenFingerprintsMulti(t *testing.T) {
	if *captureGolden {
		t.Skip("-capture regenerates fingerprints from live generation")
	}
	store := tracestore.New(0)
	for _, par := range []int{1, 2, runtime.NumCPU()} {
		for _, mode := range []string{"live", "stable"} {
			for _, g := range goldenGroups() {
				name := fmt.Sprintf("par=%d/%s/%s/prefetch=%v", par, mode, g.incl, g.prefetch)
				t.Run(name, func(t *testing.T) {
					cfg := Smoke()
					cfg.Inclusion = g.incl
					cfg.EnablePrefetch = g.prefetch
					wl := "mcf"
					if g.prefetch {
						wl = "milc"
					}
					var srcs []workload.Source
					if mode == "live" {
						var err error
						srcs, err = workload.Sources(wl, cfg.Cores, cfg.WorkloadScale, 1)
						if err != nil {
							t.Fatal(err)
						}
					} else {
						mat, err := store.Get(tracestore.Key{
							Workload:    wl,
							Cores:       cfg.Cores,
							Scale:       cfg.WorkloadScale,
							Seed:        1,
							RefsPerCore: cfg.WarmupRefsPerCore + cfg.RefsPerCore,
						})
						if err != nil {
							t.Fatal(err)
						}
						srcs = mat.Sources()
					}
					results, err := RunMultiOpt(cfg, g.schemes, srcs, MultiOptions{Parallelism: par})
					if err != nil {
						t.Fatal(err)
					}
					for i, sc := range g.schemes {
						if got := goldenFingerprint(t, results[i]); got != g.want[i] {
							t.Errorf("%s: RunMulti fingerprint %s, want %s — single-pass engine diverged from sequential Run", sc, got, g.want[i])
						}
					}
				})
			}
		}
	}
}

func TestGoldenFingerprints(t *testing.T) {
	for _, tc := range goldenCases {
		name := fmt.Sprintf("%s/%s/prefetch=%v", tc.scheme, tc.incl, tc.prefetch)
		t.Run(name, func(t *testing.T) {
			res := goldenRun(t, tc.scheme, tc.incl, tc.prefetch)
			got := goldenFingerprint(t, res)
			if *captureGolden {
				t.Logf("golden: {%s, %s, %v, \"%s\"},", tc.scheme, tc.incl, tc.prefetch, got)
				return
			}
			if got != tc.want {
				t.Errorf("fingerprint %s, want %s — sim.Run output changed for %s", got, tc.want, name)
			}
			// Run-to-run determinism: a second run from fresh sources
			// must reproduce the same fingerprint.
			again := goldenFingerprint(t, goldenRun(t, tc.scheme, tc.incl, tc.prefetch))
			if again != got {
				t.Errorf("second run fingerprint %s != first %s", again, got)
			}
		})
	}
}
