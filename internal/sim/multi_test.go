package sim

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"redhip/internal/workload"
)

// multiTestGeometries returns the two geometries the RunMulti property
// test sweeps: plain smoke, and a warmup-bearing two-core variant that
// exercises the phase machine (warmup window → measurement window
// reset) through the shared front.
func multiTestGeometries() map[string]Config {
	warm := Smoke()
	warm.Cores = 2
	warm.RefsPerCore = 20_000
	warm.WarmupRefsPerCore = 5_000
	return map[string]Config{
		"smoke":  Smoke(),
		"warmup": warm,
	}
}

// validSchemes filters Schemes() to those cfg accepts (CBF is rejected
// under Exclusive).
func validSchemes(cfg Config) []Scheme {
	var out []Scheme
	for _, sc := range Schemes() {
		c := cfg.WithScheme(sc)
		if c.Validate() == nil {
			out = append(out, sc)
		}
	}
	return out
}

// stripPerf zeroes the wall-clock performance block, the only Result
// field RunMulti is allowed to report differently from Run.
func stripPerf(r *Result) *Result {
	cp := *r
	cp.Perf = PerfStats{}
	return &cp
}

// TestRunMultiMatchesRun is the field-for-field equivalence property:
// one RunMulti pass over N schemes must produce Results identical
// (Perf excluded) to N independent Run calls over equivalent sources,
// across seeds, geometries and every valid scheme set.
func TestRunMultiMatchesRun(t *testing.T) {
	for geoName, cfg := range multiTestGeometries() {
		for _, incl := range []InclusionPolicy{Inclusive, Hybrid, Exclusive} {
			for _, seed := range []uint64{1, 7} {
				cfg := cfg.WithInclusion(incl)
				name := fmt.Sprintf("%s/%s/seed=%d", geoName, incl, seed)
				t.Run(name, func(t *testing.T) {
					schemes := validSchemes(cfg)
					want := make([]*Result, len(schemes))
					for i, sc := range schemes {
						srcs, err := workload.Sources("mcf", cfg.Cores, cfg.WorkloadScale, seed)
						if err != nil {
							t.Fatal(err)
						}
						res, err := Run(cfg.WithScheme(sc), srcs)
						if err != nil {
							t.Fatalf("Run(%s): %v", sc, err)
						}
						want[i] = res
					}
					srcs, err := workload.Sources("mcf", cfg.Cores, cfg.WorkloadScale, seed)
					if err != nil {
						t.Fatal(err)
					}
					got, err := RunMulti(cfg, schemes, srcs)
					if err != nil {
						t.Fatalf("RunMulti: %v", err)
					}
					for i, sc := range schemes {
						if got[i] == nil {
							t.Fatalf("%s: nil result without error", sc)
						}
						g, w := stripPerf(got[i]), stripPerf(want[i])
						if !reflect.DeepEqual(g, w) {
							t.Errorf("%s: RunMulti result differs from Run:\n got %+v\nwant %+v", sc, g, w)
						}
					}
				})
			}
		}
	}
}

// TestRunMultiInvalidSlot pins the per-slot failure contract: one
// invalid scheme/inclusion combination (CBF under Exclusive) fails its
// own slot only, while the valid schemes in the same pass complete.
func TestRunMultiInvalidSlot(t *testing.T) {
	cfg := Smoke().WithInclusion(Exclusive)
	srcs, err := workload.Sources("mcf", cfg.Cores, cfg.WorkloadScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	schemes := []Scheme{Base, CBF, ReDHiP}
	results, err := RunMulti(cfg, schemes, srcs)
	if err == nil {
		t.Fatal("RunMulti accepted CBF under Exclusive")
	}
	if results[1] != nil {
		t.Errorf("invalid CBF slot returned a result")
	}
	for _, i := range []int{0, 2} {
		if results[i] == nil {
			t.Errorf("%s: valid slot failed alongside the invalid one", schemes[i])
		}
	}
}

// TestRunMultiInterrupt pins the abort path: a failing Interrupt poll
// stops the pass before completion with no results.
func TestRunMultiInterrupt(t *testing.T) {
	cfg := Smoke()
	srcs, err := workload.Sources("mcf", cfg.Cores, cfg.WorkloadScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantErr := fmt.Errorf("deadline exceeded")
	polls := 0
	results, err := RunMultiOpt(cfg, []Scheme{Base, ReDHiP}, srcs, MultiOptions{
		Interrupt: func() error {
			polls++
			if polls > 1 {
				return wantErr
			}
			return nil
		},
	})
	if err == nil || results != nil {
		t.Fatalf("interrupted pass returned results=%v err=%v", results, err)
	}
}

// TestRunMultiRaceAtNumCPU drives RunMulti at full machine parallelism
// over live sources; under -race (the CI pass) this checks the
// barrier discipline of the lock-free block sharing, and in any mode
// it re-checks bit-identity against the sequential engine at whatever
// worker count the host provides.
func TestRunMultiRaceAtNumCPU(t *testing.T) {
	cfg := Smoke()
	schemes := validSchemes(cfg)
	srcs, err := workload.Sources("mcf", cfg.Cores, cfg.WorkloadScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunMultiOpt(cfg, schemes, srcs, MultiOptions{Parallelism: runtime.NumCPU()})
	if err != nil {
		t.Fatal(err)
	}
	for i, sc := range schemes {
		srcs, err := workload.Sources("mcf", cfg.Cores, cfg.WorkloadScale, 1)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Run(cfg.WithScheme(sc), srcs)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(stripPerf(got[i]), stripPerf(want)) {
			t.Errorf("%s: RunMulti at NumCPU diverged from sequential Run", sc)
		}
	}
}
