package sim

import (
	"testing"

	"redhip/internal/workload"
)

// TestRunLoopAllocationFree pins the steady-state contract of the
// simulation core: once the engine is built (scheduler heap, prefetch
// filter and recalibration scratch buffers are all preallocated), the
// reference loop performs zero heap allocations regardless of scheme.
// Sources are in-memory trace replays so workload generation cannot
// hide an engine allocation (or contribute one of its own).
func TestRunLoopAllocationFree(t *testing.T) {
	for _, scheme := range []Scheme{Base, ReDHiP, CBF, Oracle} {
		t.Run(scheme.String(), func(t *testing.T) {
			cfg := Smoke()
			cfg.Scheme = scheme
			cfg.RefsPerCore = 20_000

			gen, err := workload.Sources("mcf", cfg.Cores, cfg.WorkloadScale, 1)
			if err != nil {
				t.Fatal(err)
			}
			srcs := make([]workload.Source, cfg.Cores)
			replays := make([]*workload.TraceSource, cfg.Cores)
			for c := range srcs {
				tr := workload.Capture(gen[c], int(cfg.RefsPerCore))
				replays[c] = workload.FromTrace(tr)
				srcs[c] = replays[c]
			}
			e, err := newEngine(cfg, srcs)
			if err != nil {
				t.Fatal(err)
			}
			// AllocsPerRun warms up with one untimed call, which absorbs
			// any lazy first-use growth; the measured runs must then be
			// allocation-free.
			if n := testing.AllocsPerRun(3, func() {
				for _, r := range replays {
					r.Rewind()
				}
				e.loop(cfg.RefsPerCore)
			}); n != 0 {
				t.Errorf("%s steady-state loop allocated %.0f times per run, want 0", scheme, n)
			}
		})
	}
}
