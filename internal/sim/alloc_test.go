package sim

import (
	"testing"

	"redhip/internal/redhipassert"
	"redhip/internal/trace"
	"redhip/internal/tracestore"
	"redhip/internal/workload"
)

// skipUnderAsserts documents the build-tag trade: redhipassert builds
// re-validate structural invariants after every mutation (Recalibrate
// cross-checks the whole table against the tag array, which allocates
// scratch), so the allocation-free guarantee is a production-build
// property and these tests only pin it there.
func skipUnderAsserts(t *testing.T) {
	t.Helper()
	if redhipassert.Enabled {
		t.Skip("redhipassert build trades allocation-freedom for invariant validation")
	}
}

// TestRunLoopAllocationFree pins the steady-state contract of the
// simulation core: once the engine is built (scheduler heap, prefetch
// filter and recalibration scratch buffers are all preallocated), the
// reference loop performs zero heap allocations regardless of scheme.
// Sources are in-memory trace replays so workload generation cannot
// hide an engine allocation (or contribute one of its own).
func TestRunLoopAllocationFree(t *testing.T) {
	skipUnderAsserts(t)
	for _, scheme := range []Scheme{Base, ReDHiP, CBF, Oracle} {
		t.Run(scheme.String(), func(t *testing.T) {
			cfg := Smoke()
			cfg.Scheme = scheme
			cfg.RefsPerCore = 20_000

			gen, err := workload.Sources("mcf", cfg.Cores, cfg.WorkloadScale, 1)
			if err != nil {
				t.Fatal(err)
			}
			srcs := make([]workload.Source, cfg.Cores)
			replays := make([]*workload.TraceSource, cfg.Cores)
			for c := range srcs {
				tr := workload.Capture(gen[c], int(cfg.RefsPerCore))
				replays[c] = workload.FromTrace(tr)
				srcs[c] = replays[c]
			}
			e, err := newEngine(cfg, srcs)
			if err != nil {
				t.Fatal(err)
			}
			// AllocsPerRun warms up with one untimed call, which absorbs
			// any lazy first-use growth; the measured runs must then be
			// allocation-free.
			if n := testing.AllocsPerRun(3, func() {
				for _, r := range replays {
					r.Rewind()
				}
				e.loop(cfg.RefsPerCore)
			}); n != 0 {
				t.Errorf("%s steady-state loop allocated %.0f times per run, want 0", scheme, n)
			}
		})
	}
}

// batchOnlySource hides TraceSource's Window method, forcing the engine
// onto the copying NextBatch refill path that live generators use.
type batchOnlySource struct{ ts *workload.TraceSource }

func (b batchOnlySource) Name() string                     { return b.ts.Name() }
func (b batchOnlySource) CPI() float64                     { return b.ts.CPI() }
func (b batchOnlySource) Next(rec *trace.Record) bool      { return b.ts.Next(rec) }
func (b batchOnlySource) NextBatch(buf []trace.Record) int { return b.ts.NextBatch(buf) }

// TestBatchRefillAllocationFree pins the copying refill path: once the
// engine's per-core record buffers exist, draining a BatchSource through
// NextBatch block refills performs zero heap allocations. The sources
// deliberately do not expose Window, so this exercises exactly the code
// path live generator sources take.
func TestBatchRefillAllocationFree(t *testing.T) {
	skipUnderAsserts(t)
	cfg := Smoke()
	cfg.RefsPerCore = 20_000

	gen, err := workload.Sources("mcf", cfg.Cores, cfg.WorkloadScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	srcs := make([]workload.Source, cfg.Cores)
	replays := make([]*workload.TraceSource, cfg.Cores)
	for c := range srcs {
		tr := workload.Capture(gen[c], int(cfg.RefsPerCore))
		replays[c] = workload.FromTrace(tr)
		srcs[c] = batchOnlySource{replays[c]}
	}
	e, err := newEngine(cfg, srcs)
	if err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(3, func() {
		for _, r := range replays {
			r.Rewind()
		}
		e.loop(cfg.RefsPerCore)
	}); n != 0 {
		t.Errorf("batch refill loop allocated %.0f times per run, want 0", n)
	}
}

// TestMaterializedReplayAllocationFree pins the zero-copy replay path:
// an engine fed from a trace-store Materialized entry (the scheme-sweep
// configuration) runs its reference loop without heap allocations —
// Window refills hand out slice views of the shared backing records.
func TestMaterializedReplayAllocationFree(t *testing.T) {
	skipUnderAsserts(t)
	cfg := Smoke()
	cfg.RefsPerCore = 20_000

	store := tracestore.New(0)
	mat, err := store.Get(tracestore.Key{
		Workload:    "mcf",
		Cores:       cfg.Cores,
		Scale:       cfg.WorkloadScale,
		Seed:        1,
		RefsPerCore: cfg.WarmupRefsPerCore + cfg.RefsPerCore,
	})
	if err != nil {
		t.Fatal(err)
	}
	srcs := mat.Sources()
	replays := make([]*workload.TraceSource, len(srcs))
	for i, s := range srcs {
		replays[i] = s.(*workload.TraceSource)
	}
	e, err := newEngine(cfg, srcs)
	if err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(3, func() {
		for _, r := range replays {
			r.Rewind()
		}
		e.loop(cfg.RefsPerCore)
	}); n != 0 {
		t.Errorf("materialised replay loop allocated %.0f times per run, want 0", n)
	}
}
