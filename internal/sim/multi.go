package sim

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"redhip/internal/simstate"
	"redhip/internal/workload"
)

// MultiOptions tune a RunMulti pass without affecting its results:
// every knob here changes wall time and goroutine count only. The
// simulated outcome is pinned by the golden fingerprint suite to be
// bit-identical to sequential per-scheme Run calls at any parallelism.
type MultiOptions struct {
	// Parallelism bounds the worker goroutines that advance per-scheme
	// back halves (0 = GOMAXPROCS). It is clamped to the scheme count;
	// when it exceeds the scheme count the surplus is granted to the
	// engines as set-partitioned recalibration fan-out instead.
	Parallelism int
	// Interrupt, when non-nil, is polled between rounds; a non-nil
	// error aborts the pass (no results). The experiment runner feeds
	// its context's Err here so serve job timeouts cut long passes
	// short at the next barrier instead of waiting out the full pass.
	Interrupt func() error
	// Snapshots, when non-nil, replays each scheme's measure phase from
	// a warm-state blob (Snapshots[i] pairs with schemes[i]) instead of
	// simulating the warmup: the sources are re-seated at the boundary,
	// the front generates measure blocks only, and each back half is
	// restored before its first reference. Results are bit-identical to
	// the straight-through pass. Unusable blobs fail their slot with an
	// ErrSnapshot-wrapped error so callers can fall back to a cold pass.
	Snapshots [][]byte
	// SnapshotSink, when non-nil on a cold pass with a warmup window,
	// receives each scheme's warm-state blob as its back half crosses
	// the warmup/measure boundary. The callback runs on worker
	// goroutines and may fire concurrently for different schemes; it
	// must be safe for concurrent use. Capture requires every source to
	// implement workload.OffsetStater (trace replays do; live
	// generators cannot state their cursor at an un-simulated offset),
	// otherwise the pass runs normally and the sink never fires.
	SnapshotSink func(scheme Scheme, blob []byte)
	// SnapshotSeed labels captured blobs and validates restored ones:
	// it must be the seed the sources were built with (sim.WarmKey).
	SnapshotSeed uint64
}

// RunMulti simulates one trace pass under every requested scheme in
// lockstep: the shared front half decodes/generates each core's
// reference stream once, and one back half per scheme (hierarchy
// state, predictor state, energy accounting) consumes the shared
// blocks. Results are returned in schemes order and are bit-identical
// to len(schemes) independent Run calls over equivalent sources —
// per-scheme clocks mean the schemes share the trace, never hierarchy
// state, so lockstep cannot couple them.
//
// On error the returned slice still holds results for the schemes that
// completed; failed slots are nil and the error joins the per-scheme
// failures.
func RunMulti(cfg Config, schemes []Scheme, sources []workload.Source) ([]*Result, error) {
	return RunMultiOpt(cfg, schemes, sources, MultiOptions{})
}

// RunMultiOpt is RunMulti with explicit options.
func RunMultiOpt(cfg Config, schemes []Scheme, sources []workload.Source, opt MultiOptions) ([]*Result, error) {
	var memBefore runtime.MemStats
	runtime.ReadMemStats(&memBefore)
	if len(schemes) == 0 {
		return nil, fmt.Errorf("sim: RunMulti needs at least one scheme")
	}
	if len(sources) != cfg.Cores {
		return nil, fmt.Errorf("sim: %d sources for %d cores", len(sources), cfg.Cores)
	}

	// Restored mode: decode and cross-check the per-scheme warm blobs,
	// re-seat the shared sources at the warmup/measure boundary, and
	// strip the warmup window from the pass — the front then generates
	// measure blocks only.
	snaps, err := decodeMultiSnapshots(&cfg, schemes, sources, &opt)
	if err != nil {
		return nil, err
	}
	runCfg := cfg
	if snaps != nil {
		runCfg.WarmupRefsPerCore = 0
	}

	front, err := newTraceFront(&runCfg, sources)
	if err != nil {
		return nil, err
	}
	engines := make([]*engine, len(schemes))
	errs := make([]error, len(schemes))
	built := 0
	for i, sc := range schemes {
		e, err := newMultiEngine(runCfg.WithScheme(sc), front)
		if err != nil {
			// One invalid combination (e.g. CBF under Exclusive) fails
			// its own slot, like the independent per-scheme runs did.
			errs[i] = err
			continue
		}
		if snaps != nil {
			t0 := time.Now() //redhip:allow wallclock -- Perf restore-time attribution only
			if rerr := e.restoreSnapshot(snaps[i]); rerr != nil {
				errs[i] = fmt.Errorf("%w: %v", ErrSnapshot, rerr)
				continue
			}
			e.restoreNanos = time.Since(t0).Nanoseconds() //redhip:allow wallclock -- Perf restore-time attribution only
		}
		engines[i] = e
		built++
	}
	armSnapshotCapture(&cfg, schemes, engines, sources, front, snaps == nil, &opt)

	workers := opt.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if built > 0 && workers > built {
		// Surplus workers sweep recalibration set partitions instead of
		// idling; results stay bit-identical (RecalibrateParallel's
		// contract), so the grant only changes wall time.
		recal := workers / built
		for _, e := range engines {
			if e != nil {
				e.recalWorkers = recal
			}
		}
		workers = built
	}

	// Round-based lockstep: a single-threaded generate/retire phase
	// alternates with a parallel simulate phase over the still-active
	// engines. The barrier between phases is what makes the lock-free
	// block sharing sound — storage is written only while no engine
	// runs, and engines only read blocks the previous phase published.
	active := make([]*engine, 0, built)
	feeds := make([]*multiFeed, 0, built)
	for _, e := range engines {
		if e != nil {
			e.start()
			active = append(active, e)
			feeds = append(feeds, e.feed)
		}
	}
	work := make(chan *engine)
	var done sync.WaitGroup
	for len(active) > 0 {
		if opt.Interrupt != nil {
			if err := opt.Interrupt(); err != nil {
				return nil, err
			}
		}
		for c := 0; c < cfg.Cores; c++ {
			minCur, maxCur := frontCursorBounds(feeds, c)
			front.retire(c, minCur)
			front.extend(c, maxCur+frontLookahead)
		}
		spawn := workers
		if spawn > len(active) {
			spawn = len(active)
		}
		done.Add(spawn)
		for w := 0; w < spawn; w++ {
			go func() {
				defer done.Done()
				for e := range work {
					t0 := time.Now() //redhip:allow wallclock -- Perf simulate-time attribution only
					e.runChunk()
					//redhip:phase-exclusive each engine is handed to exactly one worker per round; done.Wait publishes the write
					e.simNanos += time.Since(t0).Nanoseconds() //redhip:allow wallclock -- Perf simulate-time attribution only
				}
			}()
		}
		for _, e := range active {
			work <- e
		}
		// Close-and-remake per round: the WaitGroup barrier is the
		// happens-before edge between this simulate phase and the next
		// generate phase.
		close(work)
		done.Wait()
		work = make(chan *engine)
		next := active[:0]
		nextFeeds := feeds[:0]
		for _, e := range active {
			if e.phase != phaseDone {
				next = append(next, e)
				nextFeeds = append(nextFeeds, e.feed)
			}
		}
		active, feeds = next, nextFeeds
	}

	var memAfter runtime.MemStats
	runtime.ReadMemStats(&memAfter)

	// Deterministic reduction: results are assembled in schemes order,
	// each from its own engine's independently accumulated state, so
	// neither worker count nor chunk interleaving can reorder anything.
	// The shared costs (generation wall time, allocation counters) are
	// split evenly with the remainder on the first slot.
	out := make([]*Result, len(schemes))
	n := int64(built)
	if n == 0 {
		return out, errors.Join(errs...)
	}
	genShare, genRem := front.genNanos/n, front.genNanos%n
	allocShare := (memAfter.TotalAlloc - memBefore.TotalAlloc) / uint64(n)
	mallocShare := (memAfter.Mallocs - memBefore.Mallocs) / uint64(n)
	first := true
	failed := false
	for i, e := range engines {
		if e == nil {
			failed = true
			continue
		}
		if e.runErr != nil {
			errs[i] = fmt.Errorf("%s: %w", schemes[i], e.runErr)
			failed = true
			continue
		}
		gen := genShare
		if first {
			gen += genRem
			first = false
		}
		e.res.Perf = PerfStats{
			WallNanos:     e.simNanos + gen + e.restoreNanos,
			GenerateNanos: gen,
			SimulateNanos: e.simNanos,
			RestoreNanos:  e.restoreNanos,
			AllocBytes:    allocShare,
			Mallocs:       mallocShare,
		}
		if secs := float64(e.res.Perf.WallNanos) / 1e9; secs > 0 {
			e.res.Perf.RefsPerSec = float64(e.res.Refs) / secs
		}
		out[i] = e.res
	}
	if failed {
		return out, errors.Join(errs...)
	}
	return out, nil
}

// decodeMultiSnapshots validates opt.Snapshots against the pass and
// re-seats the shared sources at the warmup/measure boundary. It
// returns nil when the pass runs cold (no snapshots requested);
// failures wrap ErrSnapshot so callers can fall back to a cold pass.
func decodeMultiSnapshots(cfg *Config, schemes []Scheme, sources []workload.Source, opt *MultiOptions) ([]*simstate.Snapshot, error) {
	if len(opt.Snapshots) == 0 {
		return nil, nil
	}
	if len(opt.Snapshots) != len(schemes) {
		return nil, fmt.Errorf("%w: %d snapshots for %d schemes", ErrSnapshot, len(opt.Snapshots), len(schemes))
	}
	if cfg.WarmupRefsPerCore == 0 {
		return nil, fmt.Errorf("%w: configuration has no warmup window to restore into", ErrSnapshot)
	}
	states, err := stateSources(sources)
	if err != nil {
		return nil, err
	}
	name := sources[0].Name()
	snaps := make([]*simstate.Snapshot, len(schemes))
	for i, blob := range opt.Snapshots {
		s, err := simstate.Decode(blob)
		if err != nil {
			return nil, fmt.Errorf("%w: scheme %s: %v", ErrSnapshot, schemes[i], err)
		}
		scfg := cfg.WithScheme(schemes[i])
		if err := validateWarmMeta(&s.Meta, &scfg, name, opt.SnapshotSeed); err != nil {
			return nil, fmt.Errorf("scheme %s: %w", schemes[i], err)
		}
		snaps[i] = s
	}
	// Every scheme consumed the same warm prefix, so the source cursors
	// must agree blob-for-blob; a divergence means the blobs are not
	// siblings of one warm lineage.
	for i := 1; i < len(snaps); i++ {
		if !sourceStatesEqual(snaps[0].Sources, snaps[i].Sources) {
			return nil, fmt.Errorf("%w: schemes %s and %s disagree on source cursors", ErrSnapshot, schemes[0], schemes[i])
		}
	}
	if len(snaps[0].Sources) != len(states) {
		return nil, fmt.Errorf("%w: snapshot has %d source cursors, want %d", ErrSnapshot, len(snaps[0].Sources), len(states))
	}
	for i, ss := range states {
		if err := ss.RestoreState(snaps[0].Sources[i]); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrSnapshot, err)
		}
	}
	return snaps, nil
}

func sourceStatesEqual(a, b [][]uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// armSnapshotCapture installs per-engine warm-state capture hooks on a
// cold pass when the caller asked for them and every source can state
// its cursor at the warmup boundary (workload.OffsetStater — the front
// reads ahead of engine consumption, so the live cursor is useless).
// The hooks fire inside worker goroutines as each back half crosses its
// boundary; opt.SnapshotSink's concurrency contract covers that.
func armSnapshotCapture(cfg *Config, schemes []Scheme, engines []*engine, sources []workload.Source, front *traceFront, cold bool, opt *MultiOptions) {
	if !cold || opt.SnapshotSink == nil || cfg.WarmupRefsPerCore == 0 {
		return
	}
	srcState := make([][]uint64, len(sources))
	for i, s := range sources {
		os, ok := s.(workload.OffsetStater)
		if !ok {
			return
		}
		st, err := os.StateAt(cfg.WarmupRefsPerCore)
		if err != nil {
			return
		}
		srcState[i] = st
	}
	for i, e := range engines {
		if e == nil {
			continue
		}
		sc := schemes[i]
		scfg := cfg.WithScheme(sc)
		meta := warmMeta(&scfg, front.name, opt.SnapshotSeed)
		ee := e
		e.snapSink = func() {
			snap := ee.captureSnapshot()
			snap.Meta = meta
			snap.Sources = srcState
			opt.SnapshotSink(sc, simstate.Encode(snap))
		}
	}
}

// newMultiEngine builds a back half fed from the shared front instead
// of owning sources. Identical construction to newEngine otherwise, so
// the back half's simulated behaviour cannot diverge from a solo run.
func newMultiEngine(cfg Config, front *traceFront) (*engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &engine{
		cfg: &cfg,
		par: &cfg.Energy,
		res: &Result{
			Workload:  front.name,
			Scheme:    cfg.Scheme,
			Inclusion: cfg.Inclusion,
		},
		feed: newMultiFeed(front),
	}
	if err := e.build(); err != nil {
		return nil, err
	}
	copy(e.cpi, front.cpi)
	return e, nil
}
