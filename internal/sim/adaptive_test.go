package sim

import (
	"testing"

	"redhip/internal/energy"
	"redhip/internal/workload"
)

// computeBoundSources builds per-core sources of the L1-resident
// profile the adaptive-disable mechanism exists for.
func computeBoundSources(t *testing.T, cfg *Config) []workload.Source {
	t.Helper()
	p := workload.ComputeBound()
	srcs := make([]workload.Source, cfg.Cores)
	for i := range srcs {
		s, err := workload.New(p, cfg.WorkloadScale, uint64(50+i))
		if err != nil {
			t.Fatal(err)
		}
		srcs[i] = s
	}
	return srcs
}

func runAdaptive(t *testing.T, mutate func(*Config)) *Result {
	t.Helper()
	cfg := Smoke()
	cfg.RefsPerCore = 60_000
	cfg.AdaptiveEpochRefs = 4_096
	if mutate != nil {
		mutate(&cfg)
	}
	srcs := computeBoundSources(t, &cfg)
	res, err := Run(cfg, srcs)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestAdaptiveDisablesOnComputeBound(t *testing.T) {
	res := runAdaptive(t, func(c *Config) {
		c.Scheme = ReDHiP
		c.AdaptiveDisable = true
	})
	if res.Adaptive.Epochs == 0 {
		t.Fatal("no epochs completed")
	}
	if float64(res.Adaptive.DisabledEpochs) < 0.5*float64(res.Adaptive.Epochs) {
		t.Fatalf("only %d/%d epochs disabled on an L1-resident workload",
			res.Adaptive.DisabledEpochs, res.Adaptive.Epochs)
	}
}

func TestAdaptiveRemovesOverheadOnComputeBound(t *testing.T) {
	base := runAdaptive(t, func(c *Config) { c.Scheme = Base })
	always := runAdaptive(t, func(c *Config) { c.Scheme = ReDHiP })
	adaptive := runAdaptive(t, func(c *Config) {
		c.Scheme = ReDHiP
		c.AdaptiveDisable = true
	})
	// Always-on prediction must cost something on a workload with no
	// skippable misses; adaptive must claw most of it back.
	if always.Cycles <= base.Cycles {
		t.Fatal("always-on prediction cost nothing on a no-skip workload")
	}
	overheadAlways := always.Cycles - base.Cycles
	var overheadAdaptive uint64
	if adaptive.Cycles > base.Cycles {
		overheadAdaptive = adaptive.Cycles - base.Cycles
	}
	if overheadAdaptive*2 >= overheadAlways {
		t.Fatalf("adaptive overhead %d not under half of always-on %d",
			overheadAdaptive, overheadAlways)
	}
	if adaptive.Dynamic.PTNJ >= always.Dynamic.PTNJ {
		t.Fatal("adaptive did not reduce predictor energy")
	}
}

func TestAdaptiveStaysEnabledOnMemoryBound(t *testing.T) {
	cfg := Smoke()
	cfg.RefsPerCore = 60_000
	cfg.Scheme = ReDHiP
	cfg.AdaptiveDisable = true
	cfg.AdaptiveEpochRefs = 4_096
	srcs, err := workload.Sources("mcf", cfg.Cores, cfg.WorkloadScale, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg, srcs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Adaptive.Epochs == 0 {
		t.Fatal("no epochs")
	}
	if float64(res.Adaptive.DisabledEpochs) > 0.2*float64(res.Adaptive.Epochs) {
		t.Fatalf("%d/%d epochs disabled on a memory-bound workload",
			res.Adaptive.DisabledEpochs, res.Adaptive.Epochs)
	}
}

func TestAdaptiveExclusiveRuns(t *testing.T) {
	res := runAdaptive(t, func(c *Config) {
		c.Scheme = ReDHiP
		c.Inclusion = Exclusive
		c.AdaptiveDisable = true
	})
	if res.Pred.FalseNegative != 0 {
		t.Fatal("false negative under adaptive exclusive")
	}
}

func TestAdaptiveSafetyPreserved(t *testing.T) {
	// Disabling and re-enabling must never create false negatives: the
	// table keeps receiving fills while disabled.
	cfg := Smoke()
	cfg.RefsPerCore = 60_000
	cfg.Scheme = ReDHiP
	cfg.AdaptiveDisable = true
	cfg.AdaptiveEpochRefs = 1_024 // frequent toggling
	srcs, err := workload.Sources("lbm", cfg.Cores, cfg.WorkloadScale, 9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg, srcs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pred.FalseNegative != 0 {
		t.Fatalf("%d false negatives across disable/enable transitions", res.Pred.FalseNegative)
	}
}

func TestMemoryLatencySlowsRuns(t *testing.T) {
	fast := runSmoke(t, "mcf", nil)
	slow := runSmoke(t, "mcf", func(c *Config) { c.MemoryLatencyCycles = 200 })
	if slow.Cycles <= fast.Cycles {
		t.Fatal("DRAM latency did not slow the run")
	}
	if slow.MemoryFetches == 0 {
		t.Fatal("no memory fetches")
	}
}

func TestMemoryLatencyDilutesSpeedup(t *testing.T) {
	speedupAt := func(lat uint32) float64 {
		base := runSmoke(t, "mcf", func(c *Config) {
			c.Scheme = Base
			c.MemoryLatencyCycles = lat
		})
		red := runSmoke(t, "mcf", func(c *Config) {
			c.Scheme = ReDHiP
			c.MemoryLatencyCycles = lat
		})
		return red.Speedup(base)
	}
	if speedupAt(400) >= speedupAt(0) {
		t.Fatal("ReDHiP speedup did not dilute under DRAM latency")
	}
}

func TestWarmupImprovesMeasuredHitRates(t *testing.T) {
	cold := runSmoke(t, "astar", func(c *Config) { c.Scheme = Base; c.RefsPerCore = 10_000 })
	warm := runSmoke(t, "astar", func(c *Config) {
		c.Scheme = Base
		c.RefsPerCore = 10_000
		c.WarmupRefsPerCore = 20_000
	})
	// Measured refs identical; the warm window sees pre-filled caches.
	if warm.Refs != cold.Refs {
		t.Fatalf("warmup changed measured refs: %d vs %d", warm.Refs, cold.Refs)
	}
	if warm.HitRate(energy.L4) <= cold.HitRate(energy.L4) {
		t.Fatalf("warmup did not raise measured L4 hit rate: %.3f vs %.3f",
			warm.HitRate(energy.L4), cold.HitRate(energy.L4))
	}
	// The measurement window restarts the clock: warm cycles must be in
	// the same ballpark as cold cycles, not doubled.
	if warm.Cycles > cold.Cycles*3/2 {
		t.Fatalf("warmup leaked into measured cycles: %d vs %d", warm.Cycles, cold.Cycles)
	}
}

func TestWarmupResetsAllCounters(t *testing.T) {
	res := runSmoke(t, "lbm", func(c *Config) {
		c.Scheme = ReDHiP
		c.EnablePrefetch = true
		c.RefsPerCore = 8_000
		c.WarmupRefsPerCore = 8_000
	})
	if res.Refs != 8_000*4 {
		t.Fatalf("measured refs %d", res.Refs)
	}
	if res.Levels[energy.L1].Lookups != res.Refs {
		t.Fatalf("L1 lookups %d include warmup", res.Levels[energy.L1].Lookups)
	}
	if res.Pred.FalseNegative != 0 {
		t.Fatal("false negative across warmup boundary")
	}
	// Predictor lookups must be bounded by measured L1 misses.
	if res.Pred.Lookups > res.L1Misses {
		t.Fatalf("pred lookups %d > measured misses %d", res.Pred.Lookups, res.L1Misses)
	}
}

func TestWarmupKeepsTrainedState(t *testing.T) {
	// After warmup, the ReDHiP table must already contain the working
	// set: the measured window should show HIGHER accuracy than an
	// unwarmed run of the same length (no cold-start true negatives
	// misclassified... the cold run's early lookups face an empty LLC,
	// which actually favours TNs — so assert on hit rates instead and
	// on the table carrying state: measured recalibrations can be zero
	// while accuracy stays high).
	warm := runSmoke(t, "soplex", func(c *Config) {
		c.Scheme = ReDHiP
		c.RefsPerCore = 6_000
		c.WarmupRefsPerCore = 30_000
	})
	if warm.HitRate(energy.L2) == 0 && warm.HitRate(energy.L3) == 0 {
		t.Fatal("warmed measured window shows no mid-level hits at all")
	}
	if warm.Pred.Lookups == 0 {
		t.Fatal("no predictions measured")
	}
}
