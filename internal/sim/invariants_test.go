package sim

import (
	"testing"

	"redhip/internal/cache"
	"redhip/internal/core"
	"redhip/internal/energy"
	"redhip/internal/memaddr"
	"redhip/internal/trace"
	"redhip/internal/workload"
)

// buildAndLoop runs an engine to completion and returns it for
// white-box inspection of the hierarchy state.
func buildAndLoop(t *testing.T, cfg Config, wl string, seed uint64) *engine {
	t.Helper()
	srcs, err := workload.Sources(wl, cfg.Cores, cfg.WorkloadScale, seed)
	if err != nil {
		t.Fatal(err)
	}
	e, err := newEngine(cfg, srcs)
	if err != nil {
		t.Fatal(err)
	}
	e.loop(cfg.RefsPerCore)
	if e.fnSeen {
		t.Fatalf("false negative for %v", e.fnBlock)
	}
	return e
}

func TestHybridInvariants(t *testing.T) {
	// Hybrid: privates mutually exclusive per core; L4 inclusive of all.
	cfg := Smoke()
	cfg.Scheme = ReDHiP
	cfg.Inclusion = Hybrid
	e := buildAndLoop(t, cfg, "milc", 13)
	for c := 0; c < cfg.Cores; c++ {
		e.l1[c].ForEachBlock(func(b memaddr.Addr) {
			if e.l2[c].Contains(b) || e.l3[c].Contains(b) {
				t.Fatalf("core %d: block %v in L1 and another private level", c, b)
			}
			if !e.l4.Contains(b) {
				t.Fatalf("core %d: L1 block %v missing from inclusive L4", c, b)
			}
		})
		e.l2[c].ForEachBlock(func(b memaddr.Addr) {
			if e.l3[c].Contains(b) {
				t.Fatalf("core %d: block %v in L2 and L3", c, b)
			}
			if !e.l4.Contains(b) {
				t.Fatalf("core %d: L2 block %v missing from inclusive L4", c, b)
			}
		})
		e.l3[c].ForEachBlock(func(b memaddr.Addr) {
			if !e.l4.Contains(b) {
				t.Fatalf("core %d: L3 block %v missing from inclusive L4", c, b)
			}
		})
	}
}

func TestHybridInvariantsWithPrefetch(t *testing.T) {
	cfg := Smoke()
	cfg.Scheme = ReDHiP
	cfg.Inclusion = Hybrid
	cfg.EnablePrefetch = true
	e := buildAndLoop(t, cfg, "lbm", 13)
	for c := 0; c < cfg.Cores; c++ {
		e.l2[c].ForEachBlock(func(b memaddr.Addr) {
			if !e.l4.Contains(b) {
				t.Fatalf("core %d: prefetched L2 block %v missing from inclusive L4", c, b)
			}
		})
	}
}

func TestInclusiveInvariantsWithPrefetch(t *testing.T) {
	cfg := Smoke()
	cfg.Scheme = ReDHiP
	cfg.EnablePrefetch = true
	e := buildAndLoop(t, cfg, "bwaves", 13)
	for c := 0; c < cfg.Cores; c++ {
		e.l1[c].ForEachBlock(func(b memaddr.Addr) {
			if !e.l2[c].Contains(b) || !e.l3[c].Contains(b) || !e.l4.Contains(b) {
				t.Fatalf("core %d: L1 block %v violates inclusion", c, b)
			}
		})
		e.l2[c].ForEachBlock(func(b memaddr.Addr) {
			if !e.l3[c].Contains(b) || !e.l4.Contains(b) {
				t.Fatalf("core %d: L2 block %v violates inclusion", c, b)
			}
		})
	}
}

func TestExclusiveInvariantsWithPrefetch(t *testing.T) {
	cfg := Smoke()
	cfg.Scheme = ReDHiP
	cfg.Inclusion = Exclusive
	cfg.EnablePrefetch = true
	e := buildAndLoop(t, cfg, "GemsFDTD", 13)
	for c := 0; c < cfg.Cores; c++ {
		e.l1[c].ForEachBlock(func(b memaddr.Addr) {
			if e.l2[c].Contains(b) || e.l3[c].Contains(b) || e.l4.Contains(b) {
				t.Fatalf("core %d: exclusivity violated for %v", c, b)
			}
		})
	}
}

// shortSource ends after n records — failure injection for sources
// that die early.
type shortSource struct {
	inner workload.Source
	left  int
}

func (s *shortSource) Name() string { return s.inner.Name() }
func (s *shortSource) CPI() float64 { return s.inner.CPI() }
func (s *shortSource) Next(r *trace.Record) bool {
	if s.left <= 0 {
		return false
	}
	s.left--
	return s.inner.Next(r)
}

func TestEngineToleratesShortSources(t *testing.T) {
	cfg := Smoke()
	cfg.RefsPerCore = 10_000
	srcs, err := workload.Sources("soplex", cfg.Cores, cfg.WorkloadScale, 3)
	if err != nil {
		t.Fatal(err)
	}
	// One core's source dies after 100 records.
	srcs[1] = &shortSource{inner: srcs[1], left: 100}
	res, err := Run(cfg, srcs)
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.RefsPerCore*uint64(cfg.Cores-1) + 100
	if res.Refs != want {
		t.Fatalf("refs = %d, want %d", res.Refs, want)
	}
}

func TestEngineAllSourcesEmpty(t *testing.T) {
	cfg := Smoke()
	srcs, err := workload.Sources("soplex", cfg.Cores, cfg.WorkloadScale, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range srcs {
		srcs[i] = &shortSource{inner: srcs[i], left: 0}
	}
	res, err := Run(cfg, srcs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Refs != 0 || res.Cycles != 0 {
		t.Fatalf("empty run produced refs=%d cycles=%d", res.Refs, res.Cycles)
	}
}

// extremeSource emits adversarial addresses: top bits set, block
// boundaries, and addresses that alias aggressively in the PT.
type extremeSource struct {
	i int
}

func (s *extremeSource) Name() string { return "extreme" }
func (s *extremeSource) CPI() float64 { return 1 }
func (s *extremeSource) Next(r *trace.Record) bool {
	patterns := []memaddr.Addr{
		0xffff_ffff_ffff_ffc0, // near the top of the address space
		0,                     // null page
		1<<63 | 0x40,
		memaddr.Addr(s.i) << 22, // PT-aliasing stride
		memaddr.Addr(s.i) * 64,
	}
	r.Addr = patterns[s.i%len(patterns)] + memaddr.Addr(s.i%3)
	r.PC = 0x400000
	r.Gap = uint32(s.i % 5)
	r.Write = s.i%2 == 0
	s.i++
	return true
}

func TestEngineSurvivesExtremeAddresses(t *testing.T) {
	for _, scheme := range Schemes() {
		for _, pol := range []InclusionPolicy{Inclusive, Hybrid, Exclusive} {
			if scheme == CBF && pol == Exclusive {
				continue
			}
			cfg := Smoke()
			cfg.Cores = 2
			cfg.RefsPerCore = 5_000
			cfg.Scheme = scheme
			cfg.Inclusion = pol
			cfg.EnablePrefetch = true
			res, err := Run(cfg, []workload.Source{&extremeSource{}, &extremeSource{i: 7}})
			if err != nil {
				t.Fatalf("%v/%v: %v", scheme, pol, err)
			}
			if res.Pred.FalseNegative != 0 {
				t.Fatalf("%v/%v: false negatives on extreme addresses", scheme, pol)
			}
		}
	}
}

func TestGoldenDeterminism(t *testing.T) {
	// Regression anchor: the exact counter values of one fixed run.
	// These change ONLY when the simulator's semantics change; update
	// deliberately, never casually.
	cfg := Smoke()
	cfg.RefsPerCore = 5_000
	srcs, err := workload.Sources("mcf", cfg.Cores, cfg.WorkloadScale, 42)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg, srcs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Refs != 20_000 {
		t.Fatalf("refs = %d", res.Refs)
	}
	again, err2 := Run(cfg, mustSources(t, "mcf", &cfg, 42))
	if err2 != nil {
		t.Fatal(err2)
	}
	if res.Cycles != again.Cycles || res.DynamicNJ() != again.DynamicNJ() ||
		res.L1Misses != again.L1Misses || res.Pred != again.Pred {
		t.Fatal("identical run diverged")
	}
}

func mustSources(t *testing.T, wl string, cfg *Config, seed uint64) []workload.Source {
	t.Helper()
	srcs, err := workload.Sources(wl, cfg.Cores, cfg.WorkloadScale, seed)
	if err != nil {
		t.Fatal(err)
	}
	return srcs
}

func TestEnergyConservation(t *testing.T) {
	// Total dynamic energy must equal the sum of its parts exactly.
	res := runSmoke(t, "mcf", func(c *Config) { c.Scheme = ReDHiP; c.ChargeFills = true })
	var sum float64
	for l := energy.L1; l < energy.NumLevels; l++ {
		sum += res.Dynamic.TagNJ[l] + res.Dynamic.DataNJ[l] + res.Dynamic.FillNJ[l]
	}
	sum += res.Dynamic.PTNJ + res.Dynamic.RecalJ
	if diff := sum - res.DynamicNJ(); diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("energy parts sum %v != total %v", sum, res.DynamicNJ())
	}
}

func TestTimingMonotoneInLatency(t *testing.T) {
	// Increasing a level's latency must not speed anything up.
	base := runSmoke(t, "mcf", nil)
	slower := runSmoke(t, "mcf", func(c *Config) {
		c.Energy.Levels[energy.L4].DataDelay *= 2
		c.Energy.Levels[energy.L4].TagDelay *= 2
	})
	if slower.Cycles <= base.Cycles {
		t.Fatal("doubling L4 latency did not slow the run")
	}
}

func TestExclusiveOracleNeverProbesMisses(t *testing.T) {
	// Under Exclusive + Oracle, a level is probed only when the oracle
	// says the block is there, so every probed level must hit.
	res := runSmoke(t, "astar", func(c *Config) {
		c.Scheme = Oracle
		c.Inclusion = Exclusive
	})
	for _, l := range []energy.Level{energy.L2, energy.L3, energy.L4} {
		s := res.Levels[l]
		if s.Lookups > 0 && s.Hits != s.Lookups {
			t.Fatalf("%v: %d lookups but %d hits under exclusive oracle", l, s.Lookups, s.Hits)
		}
	}
}

func TestPrefetchUsefulNeverExceedsIssued(t *testing.T) {
	for _, wl := range []string{"lbm", "milc", "GemsFDTD"} {
		res := runSmoke(t, wl, func(c *Config) { c.EnablePrefetch = true })
		if res.Prefetch.Useful > res.Prefetch.Issued {
			t.Fatalf("%s: useful %d > issued %d", wl, res.Prefetch.Useful, res.Prefetch.Issued)
		}
	}
}

func TestPrefetchDoesNotPerturbDemandCorrectness(t *testing.T) {
	// Prefetching may change contents and hence hit rates, but the walk
	// conservation laws must still hold: L2 lookups equal L1 misses
	// minus predictor skips.
	res := runSmoke(t, "milc", func(c *Config) {
		c.Scheme = ReDHiP
		c.EnablePrefetch = true
	})
	wantL2 := res.Pred.TruePositive + res.Pred.FalsePositive
	if res.Levels[energy.L2].Lookups != wantL2 {
		t.Fatalf("L2 lookups %d != predicted-present count %d",
			res.Levels[energy.L2].Lookups, wantL2)
	}
}

func TestCBFSeesEveryL4Fill(t *testing.T) {
	// The CBF must be notified of exactly the L4 fills and evictions;
	// conservation: fills - evictions = popcount-ish residency. We can
	// check indirectly: a CBF run and a Base run have identical cache
	// contents (the predictor is conservative, so skipped walks are
	// exactly the walks that would have missed everywhere and then
	// filled — and fills still happen on the skip path).
	base := runSmoke(t, "soplex", func(c *Config) { c.Scheme = Base })
	cbf := runSmoke(t, "soplex", func(c *Config) { c.Scheme = CBF })
	if base.Levels[energy.L4].Fills != cbf.Levels[energy.L4].Fills {
		t.Fatalf("L4 fills differ: base %d cbf %d", base.Levels[energy.L4].Fills, cbf.Levels[energy.L4].Fills)
	}
	if base.MemoryFetches != cbf.MemoryFetches {
		t.Fatalf("memory fetches differ: %d vs %d", base.MemoryFetches, cbf.MemoryFetches)
	}
}

func TestPredictorSchemesPreserveContents(t *testing.T) {
	// Stronger form: for inclusive hierarchies, Base/CBF/ReDHiP/Oracle
	// all produce identical fill and eviction counts at every level —
	// prediction changes which lookups happen, never placement.
	var fills [5][4]uint64
	for i, s := range Schemes() {
		res := runSmoke(t, "GemsFDTD", func(c *Config) { c.Scheme = s })
		for l := 0; l < 4; l++ {
			fills[i][l] = res.Levels[l].Fills
		}
	}
	for i := 1; i < 5; i++ {
		if fills[i] != fills[0] {
			t.Fatalf("scheme %v changed placement: fills %v vs base %v",
				Schemes()[i], fills[i], fills[0])
		}
	}
}

func TestRandomConfigInvariants(t *testing.T) {
	// Randomised acceptance: arbitrary combinations of scheme, policy,
	// prefetch, memory latency, replacement and hash must all satisfy
	// the structural invariants (validated config runs, refs conserved,
	// no false negatives, energy parts sum).
	if testing.Short() {
		t.Skip("randomised sweep skipped in -short mode")
	}
	workloads := []string{"mcf", "lbm", "milc", "pmf"}
	rng := uint64(0x1234)
	next := func(n uint64) uint64 { // deterministic LCG selector
		rng = rng*6364136223846793005 + 1442695040888963407
		return (rng >> 33) % n
	}
	for trial := 0; trial < 24; trial++ {
		cfg := Smoke()
		cfg.RefsPerCore = 6_000
		cfg.Scheme = Schemes()[next(5)]
		cfg.Inclusion = InclusionPolicy(next(3))
		if cfg.Scheme == CBF && cfg.Inclusion == Exclusive {
			cfg.Inclusion = Hybrid
		}
		cfg.EnablePrefetch = next(2) == 1
		cfg.MemoryLatencyCycles = uint32(next(3) * 150)
		cfg.Replacement = cache.ReplacementPolicy(next(3))
		cfg.AdaptiveDisable = next(2) == 1
		if cfg.Scheme == ReDHiP && next(3) == 0 {
			cfg.PTHash = core.HashXor
		}
		wl := workloads[next(uint64(len(workloads)))]
		srcs, err := workload.Sources(wl, cfg.Cores, cfg.WorkloadScale, 1+rng%97)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(cfg, srcs)
		if err != nil {
			t.Fatalf("trial %d (%s/%v/%v): %v", trial, wl, cfg.Scheme, cfg.Inclusion, err)
		}
		if res.Refs != cfg.RefsPerCore*uint64(cfg.Cores) {
			t.Fatalf("trial %d: refs %d", trial, res.Refs)
		}
		if res.Pred.FalseNegative != 0 {
			t.Fatalf("trial %d: false negatives", trial)
		}
		if res.Levels[energy.L1].Lookups != res.Refs {
			t.Fatalf("trial %d: L1 lookups %d != refs", trial, res.Levels[energy.L1].Lookups)
		}
		var sum float64
		for l := energy.L1; l < energy.NumLevels; l++ {
			sum += res.Dynamic.TagNJ[l] + res.Dynamic.DataNJ[l] + res.Dynamic.FillNJ[l]
		}
		sum += res.Dynamic.PTNJ + res.Dynamic.RecalJ
		if d := sum - res.DynamicNJ(); d > 1e-6 || d < -1e-6 {
			t.Fatalf("trial %d: energy mismatch", trial)
		}
	}
}

func TestLowerLevelsDominateDynamicEnergy(t *testing.T) {
	// The Section I motivation: L3+L4 consume the overwhelming share of
	// dynamic cache energy in the base case (paper: ~80%).
	res := runSmoke(t, "soplex", func(c *Config) { c.Scheme = Base })
	lower := res.Dynamic.LevelNJ(energy.L3) + res.Dynamic.LevelNJ(energy.L4)
	if share := lower / res.DynamicNJ(); share < 0.7 {
		t.Fatalf("L3+L4 dynamic share %.2f below the motivation threshold", share)
	}
}
