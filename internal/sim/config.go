// Package sim is the trace-driven, cycle-approximate simulator of the
// paper's 8-core, 4-level cache hierarchy (Section IV): private L1/L2/L3
// per core, a shared L4 LLC with the prediction table beside it, a
// deterministic min-time interleaving of the per-core streams, Table I
// timing and energy, and the five evaluated schemes (Base, Phased
// Cache, CBF, ReDHiP, Oracle) under three inclusion policies.
package sim

import (
	"fmt"
	"strings"

	"redhip/internal/cache"
	"redhip/internal/core"
	"redhip/internal/energy"
	"redhip/internal/prefetch"
)

// Scheme selects the mechanism under evaluation (Section IV).
type Scheme int

// The five configurations of Figures 6-8.
const (
	// Base has no prediction; tag and data arrays are accessed in
	// parallel at every level.
	Base Scheme = iota
	// Phased serialises tag and data accesses at L3 and L4.
	Phased
	// CBF consults a counting Bloom filter on every L1 miss.
	CBF
	// ReDHiP consults the recalibrated 1-bit prediction table.
	ReDHiP
	// Oracle consults a perfect, free LLC-presence predictor.
	Oracle
)

// Schemes lists all five in presentation order.
func Schemes() []Scheme { return []Scheme{Base, Phased, CBF, ReDHiP, Oracle} }

// String returns the scheme's report name.
func (s Scheme) String() string {
	switch s {
	case Base:
		return "base"
	case Phased:
		return "phased"
	case CBF:
		return "cbf"
	case ReDHiP:
		return "redhip"
	case Oracle:
		return "oracle"
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

// InclusionPolicy selects how the hierarchy's levels relate
// (Section III-C, Figure 13).
type InclusionPolicy int

// The three policies of Figure 13.
const (
	// Inclusive: every level contains all blocks of the levels above.
	Inclusive InclusionPolicy = iota
	// Hybrid: the private L1/L2/L3 are exclusive among themselves; the
	// shared L4 is inclusive of everything.
	Hybrid
	// Exclusive: all four levels hold disjoint blocks; lower levels act
	// as victim caches.
	Exclusive
)

// String returns the policy's report name.
func (p InclusionPolicy) String() string {
	switch p {
	case Inclusive:
		return "inclusive"
	case Hybrid:
		return "hybrid"
	case Exclusive:
		return "exclusive"
	}
	return fmt.Sprintf("InclusionPolicy(%d)", int(p))
}

// Config fully describes one simulation.
type Config struct {
	// Cores is the number of cores (the paper uses 8).
	Cores int
	// L1..L4 are the cache geometries; L1-L3 are instantiated per core,
	// L4 once.
	L1, L2, L3, L4 cache.Geometry
	// Energy holds the Table I constants.
	Energy energy.Params
	// Scheme selects the mechanism.
	Scheme Scheme
	// Inclusion selects the hierarchy policy.
	Inclusion InclusionPolicy
	// PTBytes is the ReDHiP prediction-table size (512 KB at paper
	// scale). In Exclusive mode this is the L4 table; L2/L3 tables are
	// derived at the same 0.78% overhead ratio of their caches.
	PTBytes uint64
	// PTBanks is the recalibration banking factor (4 in the paper).
	PTBanks int
	// RecalPeriod is the number of L1 misses (across all cores) between
	// recalibrations; 1 recalibrates after every miss, 0 never.
	RecalPeriod uint64
	// CBFCounterBits is the CBF counter width (4 fills the area budget
	// exactly with power-of-two entries).
	CBFCounterBits uint
	// EnablePrefetch turns on the per-core stride prefetcher (Fig 14/15).
	EnablePrefetch bool
	// Prefetch parameterises the prefetcher when enabled.
	Prefetch prefetch.Config
	// RefsPerCore bounds the simulation length.
	RefsPerCore uint64
	// WorkloadScale is the factor workload region sizes are divided by;
	// it must match the scale the Sources were built with.
	WorkloadScale uint64
	// IgnorePredictionOverhead zeroes the predictor's lookup delay,
	// lookup energy and recalibration cost — the paper's sensitivity
	// studies (Figures 11 and 12) do this to isolate table accuracy.
	IgnorePredictionOverhead bool
	// ChargeFills additionally charges a data-array write per block
	// insertion. The paper's accounting covers lookup (read) energy
	// only — its Oracle saves 71% of dynamic energy, which is only
	// reachable if the fill writes that no predictor can avoid are
	// excluded — so this defaults to false; enable it for ablations.
	ChargeFills bool
	// PTHash selects the prediction table's hash: the paper's bits-hash
	// (default, zero value) or xor-hash for the ablation of accuracy vs
	// recalibration cost (Section III-A/B).
	PTHash core.HashKind
	// Replacement selects the replacement policy of every cache level
	// (LRU by default; FIFO/Random for ablations).
	Replacement cache.ReplacementPolicy
	// AdaptiveDisable enables the mechanism Section IV sketches: "In
	// the case when the L1 cache miss rate is very low or the LLC is
	// rarely used, our prediction mechanism would be disabled to not
	// waste energy or add latency." The engine monitors epochs of
	// AdaptiveEpochRefs references and turns prediction off for epochs
	// whose L1 miss rate or useful-skip rate falls below fixed floors,
	// probing periodically to re-enable.
	AdaptiveDisable bool
	// AdaptiveEpochRefs is the adaptive monitoring window in global
	// references (default 16384 when zero).
	AdaptiveEpochRefs uint64
	// MemoryLatencyCycles is the latency of a demand fetch from main
	// memory. The paper treats memory as a 0-delay data store
	// (Section IV), which is the default; set it to model real DRAM
	// and watch the latency benefit dilute while the energy savings
	// persist.
	MemoryLatencyCycles uint32
	// WarmupRefsPerCore runs this many references per core before the
	// measurement window: caches, predictors and prefetchers keep
	// their trained state but every counter, clock and energy meter is
	// reset at the boundary. The paper's traces "skip warm-up phases"
	// the same way.
	WarmupRefsPerCore uint64
}

// Paper returns the exact Table I configuration: 32 KB/256 KB/4 MB
// private levels, 64 MB shared LLC, 512 KB prediction table,
// recalibration every 1 M L1 misses.
func Paper() Config {
	return Config{
		Cores:          8,
		L1:             cache.Geometry{Name: "L1", SizeBytes: 32 << 10, Ways: 4, Banks: 1},
		L2:             cache.Geometry{Name: "L2", SizeBytes: 256 << 10, Ways: 8, Banks: 1},
		L3:             cache.Geometry{Name: "L3", SizeBytes: 4 << 20, Ways: 16, Banks: 1},
		L4:             cache.Geometry{Name: "L4", SizeBytes: 64 << 20, Ways: 16, Banks: 4},
		Energy:         energy.Paper(),
		Scheme:         ReDHiP,
		Inclusion:      Inclusive,
		PTBytes:        512 << 10,
		PTBanks:        4,
		RecalPeriod:    1_000_000,
		CBFCounterBits: 4,
		Prefetch:       prefetch.DefaultConfig(),
		RefsPerCore:    500_000_000,
		WorkloadScale:  1,
	}
}

// Scaled returns the laptop-scale configuration: every cache and the
// prediction table divided by 16, preserving associativities, the
// PT/LLC overhead ratio (0.78%) and p-k = 6; working sets built with
// workload scale 16 warm this hierarchy within a few hundred thousand
// references per core. The recalibration period shrinks by the same
// factor so recalibrations per simulated reference match the paper.
func Scaled() Config {
	c := Paper()
	c.L1.SizeBytes /= 16
	c.L2.SizeBytes /= 16
	c.L3.SizeBytes /= 16
	c.L4.SizeBytes /= 16
	c.PTBytes /= 16
	c.RecalPeriod /= 16
	c.RefsPerCore = 400_000
	c.WorkloadScale = 16
	c.Energy.PTAccessNJ = energy.PTAccessNJFor(c.Energy.PTAccessNJ, c.PTBytes)
	return c
}

// Smoke returns a tiny configuration for unit tests: caches divided by
// 64 and short traces. Results are noisy but directionally correct.
func Smoke() Config {
	c := Paper()
	c.L1.SizeBytes /= 64
	c.L2.SizeBytes /= 64
	c.L3.SizeBytes /= 64
	c.L4.SizeBytes /= 64
	c.PTBytes /= 64
	c.RecalPeriod /= 64
	c.RefsPerCore = 30_000
	c.WorkloadScale = 64
	c.Cores = 4
	c.Energy.PTAccessNJ = energy.PTAccessNJFor(c.Energy.PTAccessNJ, c.PTBytes)
	return c
}

// Validate checks the configuration for consistency.
func (c *Config) Validate() error {
	if c.Cores <= 0 {
		return fmt.Errorf("sim: cores must be positive, got %d", c.Cores)
	}
	for _, g := range []cache.Geometry{c.L1, c.L2, c.L3, c.L4} {
		if _, err := g.Validate(); err != nil {
			return err
		}
	}
	if err := c.Energy.Validate(); err != nil {
		return err
	}
	if c.Scheme < Base || c.Scheme > Oracle {
		return fmt.Errorf("sim: unknown scheme %d", int(c.Scheme))
	}
	if c.Inclusion < Inclusive || c.Inclusion > Exclusive {
		return fmt.Errorf("sim: unknown inclusion policy %d", int(c.Inclusion))
	}
	if c.Scheme == CBF && c.Inclusion == Exclusive {
		return fmt.Errorf("sim: CBF covers only the LLC and is unsafe under a fully exclusive hierarchy")
	}
	if c.Scheme == ReDHiP {
		if c.PTBytes == 0 {
			return fmt.Errorf("sim: ReDHiP requires a prediction table size")
		}
		if c.PTBanks <= 0 {
			return fmt.Errorf("sim: ReDHiP requires positive PT banks")
		}
		if c.Inclusion == Exclusive && c.RecalPeriod == 1 {
			return fmt.Errorf("sim: per-miss recalibration is only modelled for the LLC predictor, not the exclusive per-level stack")
		}
		if c.PTHash != core.HashBits && c.PTHash != core.HashXor {
			return fmt.Errorf("sim: unknown prediction table hash %d", int(c.PTHash))
		}
		if c.PTHash == core.HashXor && c.RecalPeriod == 1 {
			return fmt.Errorf("sim: per-miss recalibration is only modelled for the bits-hash table")
		}
	}
	if c.Replacement < cache.LRU || c.Replacement > cache.Random {
		return fmt.Errorf("sim: unknown replacement policy %d", int(c.Replacement))
	}
	if c.Scheme == CBF && (c.CBFCounterBits < 2 || c.CBFCounterBits > 8) {
		return fmt.Errorf("sim: CBF counter bits %d outside [2,8]", c.CBFCounterBits)
	}
	if c.EnablePrefetch {
		if err := c.Prefetch.Validate(); err != nil {
			return err
		}
	}
	if c.RefsPerCore == 0 {
		return fmt.Errorf("sim: refs per core must be positive")
	}
	if c.WorkloadScale == 0 {
		return fmt.Errorf("sim: workload scale must be positive")
	}
	return nil
}

// WithScheme returns a copy of the config with the scheme replaced.
func (c Config) WithScheme(s Scheme) Config { c.Scheme = s; return c }

// WithInclusion returns a copy with the inclusion policy replaced.
func (c Config) WithInclusion(p InclusionPolicy) Config { c.Inclusion = p; return c }

// WithPrefetch returns a copy with the prefetcher enabled or disabled.
func (c Config) WithPrefetch(on bool) Config { c.EnablePrefetch = on; return c }

// MarshalJSON renders the scheme by name so JSON results are readable.
func (s Scheme) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON parses a scheme name.
func (s *Scheme) UnmarshalJSON(b []byte) error {
	name := strings.Trim(string(b), `"`)
	for _, sc := range Schemes() {
		if sc.String() == name {
			*s = sc
			return nil
		}
	}
	return fmt.Errorf("sim: unknown scheme %q", name)
}

// MarshalJSON renders the policy by name.
func (p InclusionPolicy) MarshalJSON() ([]byte, error) {
	return []byte(`"` + p.String() + `"`), nil
}

// UnmarshalJSON parses a policy name.
func (p *InclusionPolicy) UnmarshalJSON(b []byte) error {
	name := strings.Trim(string(b), `"`)
	for _, pol := range []InclusionPolicy{Inclusive, Hybrid, Exclusive} {
		if pol.String() == name {
			*p = pol
			return nil
		}
	}
	return fmt.Errorf("sim: unknown inclusion policy %q", name)
}
