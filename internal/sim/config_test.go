package sim

import (
	"encoding/json"
	"strings"
	"testing"

	"redhip/internal/energy"
	"redhip/internal/workload"
)

func TestPaperConfigValid(t *testing.T) {
	cfg := Paper()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("paper config invalid: %v", err)
	}
	if cfg.Cores != 8 {
		t.Error("cores")
	}
	if cfg.L4.SizeBytes != 64<<20 || cfg.PTBytes != 512<<10 {
		t.Error("LLC/PT sizes")
	}
	if cfg.RecalPeriod != 1_000_000 {
		t.Error("recal period")
	}
	// 0.78% overhead ratio (paper headline).
	ratio := float64(cfg.PTBytes) / float64(cfg.L4.SizeBytes)
	if ratio < 0.0077 || ratio > 0.0079 {
		t.Errorf("PT/LLC ratio %.5f", ratio)
	}
}

func TestScaledConfigPreservesRatios(t *testing.T) {
	p, s := Paper(), Scaled()
	if err := s.Validate(); err != nil {
		t.Fatalf("scaled config invalid: %v", err)
	}
	if p.L1.SizeBytes/s.L1.SizeBytes != 16 || p.L4.SizeBytes/s.L4.SizeBytes != 16 {
		t.Error("cache scale not 16")
	}
	if p.PTBytes/s.PTBytes != 16 {
		t.Error("PT scale not 16")
	}
	if s.WorkloadScale != 16 {
		t.Error("workload scale")
	}
	// Associativities unchanged.
	if s.L1.Ways != p.L1.Ways || s.L4.Ways != p.L4.Ways {
		t.Error("ways changed")
	}
	// PT/LLC overhead ratio preserved.
	if float64(s.PTBytes)/float64(s.L4.SizeBytes) != float64(p.PTBytes)/float64(p.L4.SizeBytes) {
		t.Error("overhead ratio changed")
	}
}

func TestScaledPreservesPMinusK(t *testing.T) {
	// p-k = 6 must hold at both scales so one PT line covers one LLC set.
	for _, cfg := range []Config{Paper(), Scaled(), Smoke()} {
		llcSets := cfg.L4.SizeBytes / (64 * uint64(cfg.L4.Ways))
		ptEntries := cfg.PTBytes * 8
		if ptEntries/llcSets != 64 {
			t.Errorf("PT entries per LLC set = %d, want 64", ptEntries/llcSets)
		}
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero cores", func(c *Config) { c.Cores = 0 }},
		{"bad L1", func(c *Config) { c.L1.Ways = 0 }},
		{"bad clock", func(c *Config) { c.Energy.ClockGHz = 0 }},
		{"bad scheme", func(c *Config) { c.Scheme = Scheme(99) }},
		{"bad policy", func(c *Config) { c.Inclusion = InclusionPolicy(99) }},
		{"cbf exclusive", func(c *Config) { c.Scheme = CBF; c.Inclusion = Exclusive }},
		{"redhip no table", func(c *Config) { c.Scheme = ReDHiP; c.PTBytes = 0 }},
		{"redhip no banks", func(c *Config) { c.Scheme = ReDHiP; c.PTBanks = 0 }},
		{"redhip exclusive per-miss recal", func(c *Config) {
			c.Scheme = ReDHiP
			c.Inclusion = Exclusive
			c.RecalPeriod = 1
		}},
		{"cbf counter bits", func(c *Config) { c.Scheme = CBF; c.CBFCounterBits = 1 }},
		{"bad prefetch", func(c *Config) { c.EnablePrefetch = true; c.Prefetch.Degree = 0 }},
		{"zero refs", func(c *Config) { c.RefsPerCore = 0 }},
		{"zero scale", func(c *Config) { c.WorkloadScale = 0 }},
	}
	for _, m := range mutations {
		cfg := Paper()
		m.mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: accepted", m.name)
		}
	}
}

func TestSchemeAndPolicyStrings(t *testing.T) {
	names := map[string]bool{}
	for _, s := range Schemes() {
		names[s.String()] = true
	}
	for _, want := range []string{"base", "phased", "cbf", "redhip", "oracle"} {
		if !names[want] {
			t.Errorf("missing scheme %q", want)
		}
	}
	if Inclusive.String() != "inclusive" || Hybrid.String() != "hybrid" || Exclusive.String() != "exclusive" {
		t.Error("policy names")
	}
	if Scheme(42).String() == "" || InclusionPolicy(42).String() == "" {
		t.Error("out-of-range names empty")
	}
}

func TestWithHelpers(t *testing.T) {
	cfg := Paper()
	if cfg.WithScheme(Oracle).Scheme != Oracle {
		t.Error("WithScheme")
	}
	if cfg.WithInclusion(Hybrid).Inclusion != Hybrid {
		t.Error("WithInclusion")
	}
	if !cfg.WithPrefetch(true).EnablePrefetch {
		t.Error("WithPrefetch")
	}
	// Originals untouched (value receivers).
	if cfg.Scheme != ReDHiP || cfg.EnablePrefetch {
		t.Error("helpers mutated the receiver")
	}
}

func TestScaledPTEnergyScaled(t *testing.T) {
	s := Scaled()
	if s.Energy.PTAccessNJ >= energy.Paper().PTAccessNJ {
		t.Error("scaled PT access energy not reduced")
	}
}

func TestSchemeJSONRoundTrip(t *testing.T) {
	for _, s := range Schemes() {
		b, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		var back Scheme
		if err := json.Unmarshal(b, &back); err != nil || back != s {
			t.Fatalf("scheme %v round trip: %v %v", s, back, err)
		}
	}
	var s Scheme
	if err := json.Unmarshal([]byte(`"nonesuch"`), &s); err == nil {
		t.Fatal("unknown scheme unmarshalled")
	}
}

func TestInclusionJSONRoundTrip(t *testing.T) {
	for _, p := range []InclusionPolicy{Inclusive, Hybrid, Exclusive} {
		b, err := json.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		var back InclusionPolicy
		if err := json.Unmarshal(b, &back); err != nil || back != p {
			t.Fatalf("policy %v round trip: %v %v", p, back, err)
		}
	}
	var p InclusionPolicy
	if err := json.Unmarshal([]byte(`"nope"`), &p); err == nil {
		t.Fatal("unknown policy unmarshalled")
	}
}

func TestResultJSONSerialisable(t *testing.T) {
	cfg := Smoke()
	cfg.RefsPerCore = 2_000
	srcs, err := workload.Sources("mcf", cfg.Cores, cfg.WorkloadScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg, srcs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"Scheme":"redhip"`) {
		t.Fatalf("scheme not serialised by name: %s", string(b)[:200])
	}
	var back Result
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Cycles != res.Cycles || back.Scheme != res.Scheme {
		t.Fatal("round trip lost fields")
	}
}

func TestEDPMetric(t *testing.T) {
	cfg := Smoke()
	cfg.RefsPerCore = 3_000
	srcs, _ := workload.Sources("mcf", cfg.Cores, cfg.WorkloadScale, 1)
	base, err := Run(cfg.WithScheme(Base), srcs)
	if err != nil {
		t.Fatal(err)
	}
	srcs2, _ := workload.Sources("mcf", cfg.Cores, cfg.WorkloadScale, 1)
	red, err := Run(cfg.WithScheme(ReDHiP), srcs2)
	if err != nil {
		t.Fatal(err)
	}
	if base.EDP() <= 0 || red.EDP() <= 0 {
		t.Fatal("EDP must be positive")
	}
	if base.EDPRatio(base) != 1 {
		t.Fatal("self EDP ratio")
	}
	// ReDHiP wins both axes on mcf, so its EDP ratio must be < 1.
	if red.EDPRatio(base) >= 1 {
		t.Fatalf("ReDHiP EDP ratio %.3f not below 1", red.EDPRatio(base))
	}
}
