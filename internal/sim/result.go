package sim

import (
	"fmt"
	"strings"

	"redhip/internal/cache"
	"redhip/internal/energy"
)

// PredStats summarises predictor behaviour against ground truth. The
// simulator cross-checks every prediction against the covered cache's
// actual contents, so false negatives (which would be a correctness
// bug) are detected immediately.
type PredStats struct {
	Lookups        uint64
	TruePositive   uint64 // predicted present, was present
	FalsePositive  uint64 // predicted present, was absent (wasted walk)
	TrueNegative   uint64 // predicted absent, was absent (skipped walk)
	FalseNegative  uint64 // must stay zero
	Recalibrations uint64
	RecalCycles    uint64
}

// Accuracy returns the fraction of correct predictions.
func (p *PredStats) Accuracy() float64 {
	if p.Lookups == 0 {
		return 0
	}
	return float64(p.TruePositive+p.TrueNegative) / float64(p.Lookups)
}

// PrefetchStats summarises prefetcher activity across cores.
type PrefetchStats struct {
	Issued uint64 // prefetch requests sent to the hierarchy
	Useful uint64 // prefetched blocks later hit by a demand access
}

// Result holds everything one simulation run produces.
type Result struct {
	// Workload and Scheme identify the run in reports.
	Workload string
	Scheme   Scheme
	// Inclusion is the hierarchy policy the run used.
	Inclusion InclusionPolicy

	// Refs is the total number of demand references simulated.
	Refs uint64
	// Cycles is the execution time: the slowest core's finish time.
	Cycles uint64
	// CoreCycles are the per-core finish times.
	CoreCycles []uint64

	// Levels aggregates per-level cache statistics (L1-L3 summed over
	// cores; L4 is the single shared cache).
	Levels [energy.NumLevels]cache.Stats

	// Dynamic is the dynamic-energy meter; LeakageNJ integrates static
	// energy over Cycles.
	Dynamic   energy.Meter
	LeakageNJ float64

	// L1Misses counts L1 misses (the recalibration clock).
	L1Misses uint64
	// Pred summarises predictor behaviour (zero-valued for Base/Phased).
	Pred PredStats
	// Prefetch summarises prefetcher behaviour when enabled.
	Prefetch PrefetchStats
	// MemoryFetches counts block fetches from main memory.
	MemoryFetches uint64
	// Adaptive summarises the adaptive-disable monitor when enabled.
	Adaptive AdaptiveStats

	// Perf reports host-side measurements of the run itself. It is
	// excluded from JSON so serialised results and golden fingerprints
	// cover only the deterministic simulation outputs.
	Perf PerfStats `json:"-"`
}

// PerfStats measures the simulator, not the simulated machine: how fast
// this run executed and how much it allocated. Wall time is per-run;
// the allocation counters read process-global runtime.MemStats deltas,
// so concurrent runs (the experiment runner's worker pool) pollute each
// other's numbers — treat them as an upper bound there.
type PerfStats struct {
	// WallNanos is the wall-clock duration of sim.Run.
	WallNanos int64
	// GenerateNanos is the slice of WallNanos spent refilling the
	// per-core record windows from the workload sources (trace
	// generation or replay); SimulateNanos is the remainder — the
	// hierarchy walk itself. Generate + Simulate == Wall up to the
	// engine-construction overhead folded into SimulateNanos.
	GenerateNanos int64
	SimulateNanos int64
	// RestoreNanos is the slice of WallNanos spent decoding and applying
	// a warm-state snapshot (zero for cold runs). See sim.RunFromSnapshot.
	RestoreNanos int64
	// RefsPerSec is Refs divided by wall time: the simulator's
	// throughput headline tracked in BENCH_baseline.json.
	RefsPerSec float64
	// AllocBytes and Mallocs are heap-allocation deltas over the run.
	AllocBytes uint64
	Mallocs    uint64
}

// AdaptiveStats counts the adaptive-disable monitor's decisions.
type AdaptiveStats struct {
	// Epochs is the number of completed monitoring windows.
	Epochs uint64
	// DisabledEpochs is how many of them ran with prediction off.
	DisabledEpochs uint64
}

// DynamicNJ returns the total dynamic energy.
func (r *Result) DynamicNJ() float64 { return r.Dynamic.DynamicNJ() }

// TotalNJ returns dynamic plus leakage energy.
func (r *Result) TotalNJ() float64 { return r.DynamicNJ() + r.LeakageNJ }

// HitRate returns the hit rate observed at a level.
func (r *Result) HitRate(l energy.Level) float64 {
	s := r.Levels[l]
	return s.HitRate()
}

// Speedup returns base.Cycles/r.Cycles - 1: the paper's Figure 6 metric
// (positive = faster than base).
func (r *Result) Speedup(base *Result) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(base.Cycles)/float64(r.Cycles) - 1
}

// DynamicEnergyRatio returns r's dynamic energy normalised to base
// (Figure 7 plots this; lower is better).
func (r *Result) DynamicEnergyRatio(base *Result) float64 {
	b := base.DynamicNJ()
	if b == 0 {
		return 0
	}
	return r.DynamicNJ() / b
}

// TotalEnergySaving returns 1 - total/baseTotal: the overall (dynamic +
// static) energy saving the abstract's 22% headline refers to.
func (r *Result) TotalEnergySaving(base *Result) float64 {
	b := base.TotalNJ()
	if b == 0 {
		return 0
	}
	return 1 - r.TotalNJ()/b
}

// PerformanceEnergyMetric is Figure 8's metric: the product of the
// performance gain and the total energy saving, expressed as
// (1+speedup) * (1+saving) so "both better" compounds above 1.
func (r *Result) PerformanceEnergyMetric(base *Result) float64 {
	return (1 + r.Speedup(base)) * (1 + r.TotalEnergySaving(base))
}

// EDP returns the energy-delay product in nanojoule-cycles: total
// energy (dynamic + leakage) times execution time. Lower is better;
// it penalises schemes that trade too much of one axis for the other.
func (r *Result) EDP() float64 {
	return r.TotalNJ() * float64(r.Cycles)
}

// EDPRatio returns r's EDP normalised to base (lower is better).
func (r *Result) EDPRatio(base *Result) float64 {
	b := base.EDP()
	if b == 0 {
		return 0
	}
	return r.EDP() / b
}

// String renders a compact human-readable summary.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s/%s/%s: refs=%d cycles=%d", r.Workload, r.Scheme, r.Inclusion, r.Refs, r.Cycles)
	for l := energy.L1; l < energy.NumLevels; l++ {
		s := r.Levels[l]
		fmt.Fprintf(&b, " %s=%.1f%%", l, 100*s.HitRate())
	}
	fmt.Fprintf(&b, " dyn=%.3g nJ leak=%.3g nJ", r.DynamicNJ(), r.LeakageNJ)
	if r.Pred.Lookups > 0 {
		fmt.Fprintf(&b, " predAcc=%.1f%%", 100*r.Pred.Accuracy())
	}
	return b.String()
}
