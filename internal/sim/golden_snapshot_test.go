package sim

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"redhip/internal/tracestore"
	"redhip/internal/workload"
)

// snapCfg is the smoke geometry with a warmup window: the snapshot
// layer's contract only exists at a warmup/measure boundary.
func snapCfg(scheme Scheme, incl InclusionPolicy, prefetch bool) (Config, string) {
	cfg := Smoke()
	cfg.Scheme = scheme
	cfg.Inclusion = incl
	cfg.EnablePrefetch = prefetch
	cfg.WarmupRefsPerCore = 10_000
	cfg.RefsPerCore = 20_000
	wl := "mcf"
	if prefetch {
		wl = "milc"
	}
	return cfg, wl
}

// TestGoldenSnapshotBranch extends the golden determinism contract to
// the warm-state snapshot layer: for every golden scheme x inclusion
// case, Warm + RunFromSnapshot must reproduce the straight-through
// warmup+measure run bit-for-bit — over live generated sources, which
// exercises every component's cursor capture/restore.
func TestGoldenSnapshotBranch(t *testing.T) {
	for _, tc := range goldenCases {
		name := fmt.Sprintf("%s/%s/prefetch=%v", tc.scheme, tc.incl, tc.prefetch)
		t.Run(name, func(t *testing.T) {
			cfg, wl := snapCfg(tc.scheme, tc.incl, tc.prefetch)
			srcsA, err := workload.Sources(wl, cfg.Cores, cfg.WorkloadScale, 1)
			if err != nil {
				t.Fatal(err)
			}
			straight, err := Run(cfg, srcsA)
			if err != nil {
				t.Fatal(err)
			}
			srcsB, err := workload.Sources(wl, cfg.Cores, cfg.WorkloadScale, 1)
			if err != nil {
				t.Fatal(err)
			}
			blob, err := Warm(cfg, srcsB, 1)
			if err != nil {
				t.Fatal(err)
			}
			branched, err := RunFromSnapshot(cfg, blob, srcsB, 1)
			if err != nil {
				t.Fatal(err)
			}
			want := goldenFingerprint(t, straight)
			if got := goldenFingerprint(t, branched); got != want {
				t.Errorf("snapshot->restore->measure fingerprint %s, want straight-through %s", got, want)
			}
			if branched.Perf.RestoreNanos <= 0 {
				t.Errorf("RestoreNanos = %d, want > 0 on a restored run", branched.Perf.RestoreNanos)
			}
		})
	}
}

// TestGoldenSnapshotBranchMulti pins the multi-scheme equivalents: a
// cold RunMulti pass with a SnapshotSink produces the same results as a
// plain pass, and a pass restored from the captured blobs reproduces
// them again — trace-replay sources, the capture mode's requirement.
func TestGoldenSnapshotBranchMulti(t *testing.T) {
	store := tracestore.New(0)
	for _, g := range goldenGroups() {
		name := fmt.Sprintf("%s/prefetch=%v", g.incl, g.prefetch)
		t.Run(name, func(t *testing.T) {
			cfg, wl := snapCfg(g.schemes[0], g.incl, g.prefetch)
			mat, err := store.Get(tracestore.Key{
				Workload:    wl,
				Cores:       cfg.Cores,
				Scale:       cfg.WorkloadScale,
				Seed:        1,
				RefsPerCore: cfg.WarmupRefsPerCore + cfg.RefsPerCore,
			})
			if err != nil {
				t.Fatal(err)
			}
			straight, err := RunMultiOpt(cfg, g.schemes, mat.Sources(), MultiOptions{Parallelism: 2})
			if err != nil {
				t.Fatal(err)
			}
			want := make([]string, len(g.schemes))
			for i := range straight {
				want[i] = goldenFingerprint(t, straight[i])
			}

			var mu sync.Mutex
			blobs := make([][]byte, len(g.schemes))
			captured, err := RunMultiOpt(cfg, g.schemes, mat.Sources(), MultiOptions{
				Parallelism:  2,
				SnapshotSeed: 1,
				SnapshotSink: func(sc Scheme, blob []byte) {
					mu.Lock()
					defer mu.Unlock()
					for i, s := range g.schemes {
						if s == sc {
							blobs[i] = blob
						}
					}
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			for i := range captured {
				if got := goldenFingerprint(t, captured[i]); got != want[i] {
					t.Errorf("%s: capture pass fingerprint %s, want %s — SnapshotSink changed results", g.schemes[i], got, want[i])
				}
				if blobs[i] == nil {
					t.Fatalf("%s: SnapshotSink never fired", g.schemes[i])
				}
			}

			restored, err := RunMultiOpt(cfg, g.schemes, mat.Sources(), MultiOptions{
				Parallelism:  2,
				Snapshots:    blobs,
				SnapshotSeed: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			for i := range restored {
				if got := goldenFingerprint(t, restored[i]); got != want[i] {
					t.Errorf("%s: restored pass fingerprint %s, want %s — snapshot branch diverged", g.schemes[i], got, want[i])
				}
				if restored[i].Perf.RestoreNanos <= 0 {
					t.Errorf("%s: RestoreNanos = %d, want > 0", g.schemes[i], restored[i].Perf.RestoreNanos)
				}
			}
		})
	}
}

// TestGoldenSnapshotBranchDiskTier forces the replayed traces through
// the trace store's mmap-backed disk tier and pins that the full
// snapshot->restore->measure contract still holds bit-for-bit for every
// golden case: spilled blocks replay exactly like resident ones.
func TestGoldenSnapshotBranchDiskTier(t *testing.T) {
	for _, g := range goldenGroups() {
		name := fmt.Sprintf("%s/prefetch=%v", g.incl, g.prefetch)
		t.Run(name, func(t *testing.T) {
			cfg, wl := snapCfg(g.schemes[0], g.incl, g.prefetch)
			key := tracestore.Key{
				Workload:    wl,
				Cores:       cfg.Cores,
				Scale:       cfg.WorkloadScale,
				Seed:        1,
				RefsPerCore: cfg.WarmupRefsPerCore + cfg.RefsPerCore,
			}

			ram := tracestore.New(0)
			ramMat, err := ram.Get(key)
			if err != nil {
				t.Fatal(err)
			}
			straight, err := RunMultiOpt(cfg, g.schemes, ramMat.Sources(), MultiOptions{Parallelism: 2})
			if err != nil {
				t.Fatal(err)
			}
			want := make([]string, len(g.schemes))
			for i := range straight {
				want[i] = goldenFingerprint(t, straight[i])
			}

			// A store whose RAM budget holds nothing forces every stream
			// through the spill file; the reload is mmap-backed.
			disk, err := tracestore.NewWithConfig(tracestore.Config{
				BudgetBytes: 1,
				DiskDir:     t.TempDir(),
			})
			if err != nil {
				t.Skip("disk tier unavailable:", err)
			}
			defer disk.Close()
			if _, err := disk.Get(key); err != nil { // generate + spill
				t.Fatal(err)
			}
			mat, err := disk.Get(key) // reload from disk
			if err != nil {
				t.Fatal(err)
			}
			if st := disk.Stats(); st.DiskHits == 0 || st.Spills == 0 {
				t.Fatalf("trace not forced through the disk tier: %+v", st)
			}

			var mu sync.Mutex
			blobs := make([][]byte, len(g.schemes))
			captured, err := RunMultiOpt(cfg, g.schemes, mat.Sources(), MultiOptions{
				Parallelism:  2,
				SnapshotSeed: 1,
				SnapshotSink: func(sc Scheme, blob []byte) {
					mu.Lock()
					defer mu.Unlock()
					for i, s := range g.schemes {
						if s == sc {
							blobs[i] = blob
						}
					}
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			for i := range captured {
				if got := goldenFingerprint(t, captured[i]); got != want[i] {
					t.Errorf("%s: disk-tier capture pass fingerprint %s, want %s", g.schemes[i], got, want[i])
				}
				if blobs[i] == nil {
					t.Fatalf("%s: SnapshotSink never fired over disk-tier sources", g.schemes[i])
				}
			}

			restored, err := RunMultiOpt(cfg, g.schemes, mat.Sources(), MultiOptions{
				Parallelism:  2,
				Snapshots:    blobs,
				SnapshotSeed: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			for i := range restored {
				if got := goldenFingerprint(t, restored[i]); got != want[i] {
					t.Errorf("%s: disk-tier restored pass fingerprint %s, want %s", g.schemes[i], got, want[i])
				}
			}
		})
	}
}

// TestSnapshotRejections pins the ErrSnapshot classification: unusable
// blobs must be recoverable (fall back to a cold run), never applied.
func TestSnapshotRejections(t *testing.T) {
	cfg, wl := snapCfg(ReDHiP, Inclusive, false)
	srcs, err := workload.Sources(wl, cfg.Cores, cfg.WorkloadScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := Warm(cfg, srcs, 1)
	if err != nil {
		t.Fatal(err)
	}
	fresh := func() []workload.Source {
		s, err := workload.Sources(wl, cfg.Cores, cfg.WorkloadScale, 1)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	t.Run("corrupt blob", func(t *testing.T) {
		bad := append([]byte(nil), blob...)
		bad[len(bad)/2] ^= 0x40
		if _, err := RunFromSnapshot(cfg, bad, fresh(), 1); !errors.Is(err, ErrSnapshot) {
			t.Errorf("corrupt blob error = %v, want ErrSnapshot", err)
		}
	})
	t.Run("wrong scheme", func(t *testing.T) {
		if _, err := RunFromSnapshot(cfg.WithScheme(Base), blob, fresh(), 1); !errors.Is(err, ErrSnapshot) {
			t.Errorf("wrong-scheme error = %v, want ErrSnapshot", err)
		}
	})
	t.Run("wrong seed", func(t *testing.T) {
		if _, err := RunFromSnapshot(cfg, blob, fresh(), 2); !errors.Is(err, ErrSnapshot) {
			t.Errorf("wrong-seed error = %v, want ErrSnapshot", err)
		}
	})
	t.Run("no warmup window", func(t *testing.T) {
		cold := cfg
		cold.WarmupRefsPerCore = 0
		if _, err := Warm(cold, fresh(), 1); !errors.Is(err, ErrSnapshot) {
			t.Errorf("warmup-free Warm error = %v, want ErrSnapshot", err)
		}
	})
	t.Run("measure length branches", func(t *testing.T) {
		// The warm key zeroes the measure length: one warm state serves
		// measure windows of any length, and each must match its own
		// straight-through run.
		long := cfg
		long.RefsPerCore = 25_000
		srcsA := fresh()
		straight, err := Run(long, srcsA)
		if err != nil {
			t.Fatal(err)
		}
		branched, err := RunFromSnapshot(long, blob, fresh(), 1)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := goldenFingerprint(t, branched), goldenFingerprint(t, straight); got != want {
			t.Errorf("longer measure window fingerprint %s, want %s", got, want)
		}
	})
}
