package sim

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"redhip/internal/cache"
	"redhip/internal/core"
	"redhip/internal/energy"
	"redhip/internal/memaddr"
	"redhip/internal/predictor"
	"redhip/internal/prefetch"
	"redhip/internal/trace"
	"redhip/internal/workload"
)

// predKind caches the dynamic type of the LLC predictor so the per-miss
// consultation dispatches through a switch on concrete types instead of
// three interface calls (PredictPresent/LookupDelay/LookupNJ per miss).
type predKind uint8

const (
	predNone   predKind = iota // Base/Phased, or Exclusive (per-level tables)
	predOracle                 // perfect: prediction == l4.Contains
	predMirror                 // *predictor.MirrorTable (RecalPeriod == 1)
	predTable                  // *core.Table via predictor.ReDHiP
	predCBF                    // *predictor.CBF
)

// pfFilterBits sizes the direct-mapped prefetched-block filter: 2^20
// slots, the same bound the old map-based tracker capped itself at.
const pfFilterBits = 20

// batchRefs is the per-core record-buffer refill size. One refill
// amortises source dispatch and timing over a few thousand references;
// the backing buffer (cores * batchRefs records) is allocated once per
// engine. 4K records x 24 bytes = 96 KiB per core — small enough to
// stay cache-friendly, large enough that refill overhead vanishes.
const batchRefs = 4096

// engine holds the mutable state of one simulation run.
type engine struct {
	cfg *Config
	par *energy.Params //redhip:transient config-derived energy parameters, rebuilt by build

	// Hierarchy: private L1-L3 per core, shared L4.
	l1, l2, l3 []*cache.Cache
	l4         *cache.Cache

	// LLC predictor for CBF/ReDHiP/Oracle under Inclusive/Hybrid.
	// pred is the interface used on cold paths (recalibration, prefetch
	// issue); the kind + concrete pointers below serve the per-miss
	// fast path without interface dispatch.
	pred      predictor.Predictor //redhip:transient interface view over the concrete predictors below, re-wired by build
	kind      predKind            //redhip:transient derived from cfg.Scheme at build
	mirror    *predictor.MirrorTable
	ptable    *core.Table
	cbf       *predictor.CBF
	predDelay float64 //redhip:transient LookupDelay as float64 (config-derived), added to the core clock
	predNJ    float64 //redhip:transient LookupNJ per consultation, config-derived

	// Per-level tables for ReDHiP under Exclusive (Section III-C):
	// exL2/exL3 per core, exL4 shared.
	exL2, exL3 []*core.Table
	exL4       *core.Table
	exDelay    float64 //redhip:transient PTDelay+PTWireDelay for the simultaneous query, config-derived

	// Per-level delays precomputed as float64 so the reference loop
	// performs no uint32 conversions or max() calls.
	parDelay   [energy.NumLevels]float64 //redhip:transient config-derived delay table, rebuilt by build
	tagDelay   [energy.NumLevels]float64 //redhip:transient config-derived delay table, rebuilt by build
	dataDelay  [energy.NumLevels]float64 //redhip:transient config-derived delay table, rebuilt by build
	memLatency float64                   //redhip:transient config-derived, rebuilt by build

	clock []float64         //redhip:transient per-core cycle counts, reset at the warmup/measure boundary
	cpi   []float64         //redhip:transient per-core CPI config, rebuilt by build
	src   []workload.Source //redhip:transient deterministic sources, re-seeded per run by build
	// Batched reference pipeline: the loop consumes records from a
	// per-core window (win[c][pos[c]]) and refills it in blocks of
	// batchRefs through one of two per-core fast paths resolved at
	// build time. wsrc (zero-copy: the window aliases the source's
	// pre-materialised backing records) is preferred; bsrc bulk-
	// generates into the engine-owned bufs. Either way, source
	// dispatch and refill timing are paid once per block, not once per
	// reference.
	bsrc []workload.BatchSource  //redhip:transient refill fast-path view over src, re-resolved by build
	wsrc []workload.WindowSource //redhip:transient refill fast-path view over src, re-resolved by build
	bufs [][]trace.Record        //redhip:transient per-core refill buffers (nil for window sources), per-run scratch
	win  [][]trace.Record        //redhip:transient current per-core record windows, per-run scratch
	pos  []int                   //redhip:transient consumption cursor within win[c], per-run scratch
	pf   []*prefetch.Prefetcher

	// Scheduler state: heap is a binary min-heap of (clock, core id)
	// entries; remaining counts references left per core. Both are
	// allocated once in build so loop is allocation-free. Entries carry
	// their own clock copy so heap comparisons stay inside one cache
	// line instead of chasing e.clock through a second slice; heapDirty
	// flags the one event (recalibration) that bumps every core's clock
	// behind the heap's back.
	heap      []coreEnt //redhip:transient scheduler state, rebuilt at run start
	remaining []uint64  //redhip:transient scheduler state, rebuilt at run start
	heapDirty bool      //redhip:transient scheduler state, rebuilt at run start

	// Multi-scheme back-half wiring (nil/zero for plain Run): feed
	// replaces the direct source refill with block pulls from the shared
	// traceFront, blocked flags a refill that found its next block not
	// yet generated (runWindow suspends instead of popping the core),
	// and phase/runErr/simNanos let the RunMulti driver resume the
	// engine across rounds and collect its outcome. recalWorkers is the
	// set-partitioned recalibration fan-out (1 = the sequential sweep).
	feed         *multiFeed  //redhip:transient multi-scheme driver wiring, re-attached per run
	blocked      bool        //redhip:transient multi-scheme driver wiring, re-attached per run
	phase        enginePhase //redhip:transient multi-scheme driver wiring, re-attached per run
	runErr       error       //redhip:transient multi-scheme driver wiring, re-attached per run
	simNanos     int64       //redhip:transient wall-time accounting, not simulated state
	recalWorkers int         //redhip:transient parallelism config, set by the driver per run
	// snapSink, when non-nil, fires exactly once at the warmup/measure
	// boundary (after resetMeasurement, before the measure window) so
	// the RunMulti driver can capture this back half's warm state;
	// restoreNanos records the time spent re-seating a restored engine.
	snapSink     func() //redhip:transient snapshot plumbing itself, re-attached by the driver
	restoreNanos int64  //redhip:transient wall-time accounting, not simulated state

	meter            energy.Meter //redhip:transient measurement accumulator, reset at the warmup/measure boundary
	res              *Result      //redhip:transient measurement output, reset at the warmup/measure boundary
	missesSinceRecal uint64
	// genNanos accumulates wall time spent inside source refills — the
	// generate phase of the run, as opposed to the simulate phase that
	// is everything else. Sampled once per batch, so the timing itself
	// costs ~two clock reads per few thousand references.
	genNanos int64 //redhip:transient wall-time accounting, not simulated state

	// Adaptive predictor disable (Section IV): per-epoch monitoring.
	adaptOn        bool   // predictor currently consulted
	adaptStreak    int    // consecutive disabled epochs (for probing)
	epochRefs      uint64 // refs seen in the current epoch
	epochStartMiss uint64
	epochStartTN   uint64
	pfBuf          []memaddr.Addr //redhip:transient per-call prefetch scratch buffer
	// prefetched is a direct-mapped filter over hashed block addresses
	// (slot holds block+1, 0 = empty). Collisions overwrite the older
	// mark, so Prefetch.Useful is a slight undercount under pressure —
	// the same stats-only approximation the previous map-based tracker
	// made when it cleared itself at 2^20 entries.
	prefetched []uint64
	pfMarks    int          // live marks, so markUseful can skip early
	fnBlock    memaddr.Addr // first false negative seen, for the error
	fnSeen     bool
}

// Run simulates the configured hierarchy over the per-core sources and
// returns the collected result. sources must have exactly cfg.Cores
// entries. Run is deterministic: the same config and sources produce
// bit-identical results.
func Run(cfg Config, sources []workload.Source) (*Result, error) {
	start := time.Now() //redhip:allow wallclock -- Perf wall-time reporting, not simulated time
	var memBefore runtime.MemStats
	runtime.ReadMemStats(&memBefore)
	e, err := newEngine(cfg, sources)
	if err != nil {
		return nil, err
	}
	if e.cfg.WarmupRefsPerCore > 0 {
		e.loop(e.cfg.WarmupRefsPerCore)
		e.resetMeasurement()
	}
	e.loop(e.cfg.RefsPerCore)
	if e.fnSeen {
		return nil, fmt.Errorf("sim: predictor produced a false negative for block %v — conservativeness violated", e.fnBlock)
	}
	e.collect()
	var memAfter runtime.MemStats
	runtime.ReadMemStats(&memAfter)
	wall := time.Since(start) //redhip:allow wallclock -- Perf wall-time reporting
	e.res.Perf = PerfStats{
		WallNanos:     wall.Nanoseconds(),
		GenerateNanos: e.genNanos,
		SimulateNanos: wall.Nanoseconds() - e.genNanos,
		AllocBytes:    memAfter.TotalAlloc - memBefore.TotalAlloc,
		Mallocs:       memAfter.Mallocs - memBefore.Mallocs,
	}
	if secs := wall.Seconds(); secs > 0 {
		e.res.Perf.RefsPerSec = float64(e.res.Refs) / secs
	}
	return e.res, nil
}

// newEngine validates the configuration and builds a ready-to-run
// engine. Split from Run so the allocation tests and profiling hooks
// can drive the reference loop directly.
func newEngine(cfg Config, sources []workload.Source) (*engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(sources) != cfg.Cores {
		return nil, fmt.Errorf("sim: %d sources for %d cores", len(sources), cfg.Cores)
	}
	e := &engine{
		cfg: &cfg,
		par: &cfg.Energy,
		res: &Result{
			Workload:  sources[0].Name(),
			Scheme:    cfg.Scheme,
			Inclusion: cfg.Inclusion,
		},
		src: sources,
	}
	if err := e.build(); err != nil {
		return nil, err
	}
	return e, nil
}

func (e *engine) build() error {
	cfg := e.cfg
	// Apply the configured replacement policy to every level.
	cfg.L1.Replacement = cfg.Replacement
	cfg.L2.Replacement = cfg.Replacement
	cfg.L3.Replacement = cfg.Replacement
	cfg.L4.Replacement = cfg.Replacement
	e.l1 = make([]*cache.Cache, cfg.Cores)
	e.l2 = make([]*cache.Cache, cfg.Cores)
	e.l3 = make([]*cache.Cache, cfg.Cores)
	e.clock = make([]float64, cfg.Cores)
	e.cpi = make([]float64, cfg.Cores)
	for c := 0; c < cfg.Cores; c++ {
		var err error
		if e.l1[c], err = cache.New(cfg.L1); err != nil {
			return err
		}
		if e.l2[c], err = cache.New(cfg.L2); err != nil {
			return err
		}
		if e.l3[c], err = cache.New(cfg.L3); err != nil {
			return err
		}
		if e.src != nil {
			e.cpi[c] = e.src[c].CPI()
		}
	}
	var err error
	if e.l4, err = cache.New(cfg.L4); err != nil {
		return err
	}

	ptDelay := cfg.Energy.PTDelay + cfg.Energy.PTWireDelay
	ptNJ := cfg.Energy.PTAccessNJ
	if cfg.IgnorePredictionOverhead {
		ptDelay, ptNJ = 0, 0
	}
	switch cfg.Scheme {
	case Base, Phased:
		e.pred = nil
	case Oracle:
		if cfg.Inclusion == Exclusive {
			e.pred = nil // per-level oracle handled inline in the walk
		} else {
			e.pred = predictor.NewOracle(e.l4.Contains)
			e.kind = predOracle
		}
	case CBF:
		cbf, err := predictor.NewCBF(cfg.PTBytes, cfg.CBFCounterBits, ptDelay, ptNJ)
		if err != nil {
			return err
		}
		e.pred = cbf
		e.kind = predCBF
		e.cbf = cbf
	case ReDHiP:
		if cfg.Inclusion == Exclusive {
			// Per-level tables at the same 0.78% overhead ratio.
			e.exL2 = make([]*core.Table, cfg.Cores)
			e.exL3 = make([]*core.Table, cfg.Cores)
			for c := 0; c < cfg.Cores; c++ {
				if e.exL2[c], err = core.NewForCache(cfg.L2.SizeBytes, cfg.PTBanks); err != nil {
					return err
				}
				if e.exL3[c], err = core.NewForCache(cfg.L3.SizeBytes, cfg.PTBanks); err != nil {
					return err
				}
			}
			if e.exL4, err = core.NewTable(cfg.PTBytes, cfg.PTBanks); err != nil {
				return err
			}
			if !cfg.IgnorePredictionOverhead {
				e.exDelay = float64(cfg.Energy.PTDelay + cfg.Energy.PTWireDelay)
			}
		} else if cfg.RecalPeriod == 1 {
			// Recalibrating after every miss == exactly mirroring the
			// LLC contents modulo hash aliasing; simulate that directly.
			m, err := predictor.NewMirrorTable(cfg.PTBytes, ptDelay, ptNJ)
			if err != nil {
				return err
			}
			e.pred = m
			e.kind = predMirror
			e.mirror = m
		} else {
			tb, err := core.NewTableHash(cfg.PTBytes, cfg.PTBanks, cfg.PTHash)
			if err != nil {
				return err
			}
			e.pred = predictor.NewReDHiP(tb, ptDelay, ptNJ)
			e.kind = predTable
			e.ptable = tb
		}
	}
	if e.pred != nil {
		e.predDelay = float64(e.pred.LookupDelay())
		e.predNJ = e.pred.LookupNJ()
	}
	for l := energy.L1; l < energy.NumLevels; l++ {
		lv := &e.par.Levels[l]
		e.parDelay[l] = float64(lv.ParallelDelay())
		e.tagDelay[l] = float64(lv.TagDelay)
		e.dataDelay[l] = float64(lv.DataDelay)
	}
	e.memLatency = float64(cfg.MemoryLatencyCycles)
	e.heap = make([]coreEnt, 0, cfg.Cores)
	e.remaining = make([]uint64, cfg.Cores)
	e.bsrc = make([]workload.BatchSource, cfg.Cores)
	e.wsrc = make([]workload.WindowSource, cfg.Cores)
	e.bufs = make([][]trace.Record, cfg.Cores)
	e.win = make([][]trace.Record, cfg.Cores)
	e.pos = make([]int, cfg.Cores)
	var backing []trace.Record // shared refill arena, one slab for all buffered cores
	for c, s := range e.src {
		if ws, ok := s.(workload.WindowSource); ok {
			e.wsrc[c] = ws // zero-copy replay; no engine-side buffer needed
			continue
		}
		if backing == nil {
			backing = make([]trace.Record, cfg.Cores*batchRefs)
		}
		e.bufs[c] = backing[c*batchRefs : (c+1)*batchRefs]
		e.bsrc[c] = workload.AsBatch(s)
	}

	e.adaptOn = true
	e.recalWorkers = 1 // sequential recalibration unless the multi driver grants spare workers
	if cfg.EnablePrefetch {
		e.pf = make([]*prefetch.Prefetcher, cfg.Cores)
		for c := 0; c < cfg.Cores; c++ {
			if e.pf[c], err = prefetch.New(cfg.Prefetch); err != nil {
				return err
			}
		}
		e.pfBuf = make([]memaddr.Addr, 0, 8)
		e.prefetched = make([]uint64, 1<<pfFilterBits)
	}
	return nil
}

// loop runs one measurement window to completion: beginWindow arms the
// per-core budgets and scheduler heap, runWindow drains them. Run and
// the allocation tests drive this wrapper; the RunMulti driver calls
// the two halves separately because its runWindow may suspend.
func (e *engine) loop(refsPerCore uint64) {
	e.beginWindow(refsPerCore)
	e.runWindow()
}

// beginWindow arms a new window of refsPerCore references per core and
// (re)builds the scheduler heap over the cores with work left.
func (e *engine) beginWindow(refsPerCore uint64) {
	for c := range e.remaining {
		e.remaining[c] = refsPerCore
	}
	e.heapInit()
}

// runWindow runs the deterministic min-time interleaving until the
// armed window completes: the core with the smallest local clock
// executes its next reference (ties break toward the lower core
// index). Cores are scheduled through an indexed binary min-heap keyed
// on (clock, core id) — a total order, so the heap selects exactly the
// core the previous linear scan did, in O(log cores) per reference.
// The loop performs no allocations: the heap and remaining counters
// are built once per engine.
//
// It returns true when the window is complete. In multi-feed mode it
// returns false when a refill found its next block not yet generated:
// the heap and window state stay intact (the winning core has consumed
// nothing), so a later call resumes at exactly the same scheduling
// decision — suspension is invisible to the simulated interleaving.
//
//redhip:hotpath
func (e *engine) runWindow() bool {
	cfg := e.cfg
	adaptive := cfg.AdaptiveDisable
	incl := cfg.Inclusion
	// second caches the best key among the root's children: the minimum
	// of everything except the running core (heap property makes the
	// overall runner-up one of the root's children). While the running
	// core's updated key stays strictly below it, the core is still the
	// unique minimum and the next reference dispatches with a single
	// compare — the heap is only restructured when the lead actually
	// changes hands. Stalls (cache misses, recalibration) push a core
	// hundreds of cycles back, so the cores that are ahead execute long
	// runs of references on this fast path.
	second := e.rootSecond()
	for len(e.heap) > 0 {
		c := int(e.heap[0].id)
		if e.pos[c] == len(e.win[c]) && !e.refill(c) {
			if e.blocked {
				e.blocked = false
				return false
			}
			e.remaining[c] = 0
			e.heapPop()
			second = e.rootSecond()
			continue
		}
		rec := &e.win[c][e.pos[c]]
		e.pos[c]++
		e.remaining[c]--
		e.res.Refs++
		if adaptive {
			e.epochTick()
		}
		e.clock[c] += float64(rec.Gap) * e.cpi[c]
		block := rec.Addr.Block()
		switch incl {
		case Inclusive:
			e.accessInclusive(c, block, rec)
		case Hybrid:
			e.accessHybrid(c, block, rec)
		case Exclusive:
			e.accessExclusive(c, block, rec)
		}
		// Recalibration stalls every core by the same amount — order-
		// preserving, but the cached keys (and second) go stale, so
		// they are refreshed before the next dispatch decision.
		if e.heapDirty {
			e.heapRefresh()
			second = e.rootSecond()
		}
		if e.remaining[c] == 0 {
			e.heapPop()
			second = e.rootSecond()
			continue
		}
		key := coreEnt{clk: e.clock[c], id: int32(c)} //redhip:allow alloc -- stack value struct, never escapes
		e.heap[0] = key
		if !entLess(key, second) {
			second = e.leadChange(key)
		}
	}
	return true
}

// enginePhase is the multi-feed engine's position in the run lifecycle,
// advanced by runChunk as windows complete.
type enginePhase uint8

const (
	phaseWarmup enginePhase = iota
	phaseMeasure
	phaseDone
)

// start arms the engine's first window so runChunk can take over.
func (e *engine) start() {
	if e.cfg.WarmupRefsPerCore > 0 {
		e.beginWindow(e.cfg.WarmupRefsPerCore)
		e.phase = phaseWarmup
		return
	}
	e.beginWindow(e.cfg.RefsPerCore)
	e.phase = phaseMeasure
}

// runChunk advances a multi-feed engine as far as the generated blocks
// allow, crossing the warmup/measurement boundary when it falls inside
// the chunk. It returns true when the run is complete (the result is
// collected, or runErr records why it could not be); false means the
// engine suspended waiting for the front to generate more blocks.
func (e *engine) runChunk() bool {
	for {
		switch e.phase {
		case phaseWarmup:
			if !e.runWindow() {
				return false
			}
			e.resetMeasurement()
			if e.snapSink != nil {
				e.snapSink()
			}
			e.beginWindow(e.cfg.RefsPerCore)
			e.phase = phaseMeasure
		case phaseMeasure:
			if !e.runWindow() {
				return false
			}
			if e.fnSeen {
				e.runErr = fmt.Errorf("sim: predictor produced a false negative for block %v — conservativeness violated", e.fnBlock)
			} else {
				e.collect()
			}
			e.phase = phaseDone
			return true
		default:
			return true
		}
	}
}

// refill replenishes core c's record window with up to batchRefs more
// references (never more than the core still owes this measurement
// window, so buffers drain exactly at warmup/measurement boundaries —
// a refill never strands pre-generated records across windows).
// Returns false when the source is exhausted. Wall time spent here is
// the generate phase of the run and accumulates into genNanos.
func (e *engine) refill(c int) bool {
	want := e.remaining[c]
	if want > batchRefs {
		want = batchRefs
	}
	if e.feed != nil {
		// Multi-scheme mode: pull the next pre-generated block from the
		// shared front. A blocked pull leaves the window untouched so
		// runWindow can suspend and resume at this exact point.
		w, st := e.feed.next(c, want)
		if st == feedBlocked {
			e.blocked = true
			return false
		}
		e.win[c], e.pos[c] = w, 0
		return len(w) > 0
	}
	start := time.Now() //redhip:allow wallclock -- genNanos perf attribution only
	var w []trace.Record
	if ws := e.wsrc[c]; ws != nil {
		w = ws.Window(int(want))
	} else {
		buf := e.bufs[c][:want]
		n := e.bsrc[c].NextBatch(buf)
		w = buf[:n]
	}
	e.genNanos += time.Since(start).Nanoseconds() //redhip:allow wallclock -- genNanos perf attribution only
	e.win[c], e.pos[c] = w, 0
	return len(w) > 0
}

// leadChange re-seats the leader after its key grew to or past the
// cached runner-up, restoring the heap invariant and returning the new
// runner-up. When the whole heap fits in the root plus one child level
// (n <= 5), a single pass over the children finds both the new leader
// and the new runner-up — cheaper than a general sift followed by a
// separate runner-up scan. Deeper heaps fall back to exactly that.
func (e *engine) leadChange(key coreEnt) coreEnt {
	h := e.heap
	n := len(h)
	if n <= 5 {
		mi := 1
		m2 := coreEnt{clk: math.Inf(1), id: int32(len(e.clock))}
		for j := 2; j < n; j++ {
			if entLess(h[j], h[mi]) {
				m2 = h[mi]
				mi = j
			} else if entLess(h[j], m2) {
				m2 = h[j]
			}
		}
		// key >= the old runner-up, which was the minimum child, so
		// swapping it with that child keeps the level ordered.
		h[0], h[mi] = h[mi], key
		if entLess(key, m2) {
			return key
		}
		return m2
	}
	e.siftDown(0)
	return e.rootSecond()
}

// rootSecond returns the minimum key among the root's children — the
// overall runner-up — or a +Inf sentinel when the heap has at most one
// element (a lone core always wins the fast-path compare).
func (e *engine) rootSecond() coreEnt {
	h := e.heap
	n := len(h)
	if n <= 1 {
		return coreEnt{clk: math.Inf(1), id: int32(len(e.clock))}
	}
	end := 5
	if end > n {
		end = n
	}
	m := h[1]
	for j := 2; j < end; j++ {
		if entLess(h[j], m) {
			m = h[j]
		}
	}
	return m
}

// --- core scheduler heap -------------------------------------------------------

// coreEnt is one scheduler-heap entry: a core id with a cached copy of
// its clock, kept inline so heap comparisons never touch e.clock.
type coreEnt struct {
	clk float64
	id  int32
}

// entLess orders entries by (clock, id): the unique minimum under this
// total order is the core a lowest-index-wins linear scan would pick.
func entLess(a, b coreEnt) bool {
	return a.clk < b.clk || (a.clk == b.clk && a.id < b.id)
}

// heapInit (re)builds the scheduler heap over every core with work
// left. Called at the start of each measurement window.
func (e *engine) heapInit() {
	e.heap = e.heap[:0]
	for c := 0; c < e.cfg.Cores; c++ {
		if e.remaining[c] > 0 {
			e.heap = append(e.heap, coreEnt{clk: e.clock[c], id: int32(c)})
		}
	}
	if n := len(e.heap); n > 1 {
		for i := (n - 2) / 4; i >= 0; i-- {
			e.siftDown(i)
		}
	}
	e.heapDirty = false
}

// heapRefresh reloads every cached key from e.clock after an
// order-preserving uniform bump (recalibration stalls all cores by the
// same amount, so the heap shape is still valid — only the values
// moved).
func (e *engine) heapRefresh() {
	h := e.heap
	for i := range h {
		h[i].clk = e.clock[h[i].id]
	}
	e.heapDirty = false
}

// siftDown restores the heap invariant below position i after the
// element there grew (core clocks only ever increase). The heap is
// 4-ary: at the common 4–16 core counts the sift finishes in one or
// two levels, and the four children share a cache line, so the wider
// fan-out costs nothing extra to scan.
func (e *engine) siftDown(i int) {
	h := e.heap
	n := len(h)
	for {
		base := 4*i + 1
		if base >= n {
			return
		}
		m := base
		end := base + 4
		if end > n {
			end = n
		}
		for j := base + 1; j < end; j++ {
			if entLess(h[j], h[m]) {
				m = j
			}
		}
		if !entLess(h[m], h[i]) {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// heapPop removes the root (the core that just ran out of work).
func (e *engine) heapPop() {
	n := len(e.heap) - 1
	e.heap[0] = e.heap[n]
	e.heap = e.heap[:n]
	if n > 1 {
		e.siftDown(0)
	}
}

// --- shared helpers -----------------------------------------------------------

// chargeFill charges insertion-write energy when the configuration
// models it (the paper's lookup-only accounting does not).
func (e *engine) chargeFill(l energy.Level) {
	if e.cfg.ChargeFills {
		e.meter.AddFill(l, e.par)
	}
}

func (e *engine) chargeParallel(c int, l energy.Level) {
	e.meter.AddParallel(l, e.par)
	e.clock[c] += e.parDelay[l]
}

// lookupSplit performs a demand lookup at L3/L4 with split tag/data
// timing. A parallel access (every scheme but Phased) spends tag AND
// data energy on every probe — the wasted data read on a miss is
// exactly what Phased Cache avoids — but resolves a miss as soon as
// the tag comparison completes (TagDelay) and a hit when the data
// array returns (DataDelay). Phased reads the tag array first and
// touches the data array only on a hit: cheaper misses, but hits pay
// tag-then-data latency back to back (the 3% slowdown of Figure 6).
//
//redhip:hotpath
func (e *engine) lookupSplit(c int, l energy.Level, ch *cache.Cache, block memaddr.Addr) bool {
	if e.cfg.Scheme == Phased {
		e.meter.AddTag(l, e.par)
		e.clock[c] += e.tagDelay[l]
		if ch.Lookup(block) {
			e.meter.AddData(l, e.par)
			e.clock[c] += e.dataDelay[l]
			return true
		}
		return false
	}
	e.meter.AddParallel(l, e.par)
	if ch.Lookup(block) {
		e.clock[c] += e.parDelay[l]
		return true
	}
	e.clock[c] += e.tagDelay[l]
	return false
}

// onL1Miss updates the recalibration clock and triggers recalibration
// when the period elapses (a global stall, Section IV).
func (e *engine) onL1Miss() {
	e.res.L1Misses++
	if e.cfg.Scheme != ReDHiP || e.cfg.RecalPeriod <= 1 {
		return
	}
	e.missesSinceRecal++
	if e.missesSinceRecal < e.cfg.RecalPeriod {
		return
	}
	e.missesSinceRecal = 0
	e.recalibrate()
}

func (e *engine) recalibrate() {
	lineNJ := e.par.PTAccessNJ
	var cycles uint64
	var nj float64
	if e.cfg.Inclusion == Exclusive {
		for c := 0; c < e.cfg.Cores; c++ {
			c2 := e.exL2[c].RecalibrateParallel(e.l2[c], e.tagReadNJ(energy.L2), lineNJ, e.recalWorkers)
			c3 := e.exL3[c].RecalibrateParallel(e.l3[c], e.tagReadNJ(energy.L3), lineNJ, e.recalWorkers)
			nj += c2.EnergyNJ + c3.EnergyNJ
			if c2.Cycles > cycles {
				cycles = c2.Cycles
			}
			if c3.Cycles > cycles {
				cycles = c3.Cycles
			}
		}
		c4 := e.exL4.RecalibrateParallel(e.l4, e.tagReadNJ(energy.L4), lineNJ, e.recalWorkers)
		nj += c4.EnergyNJ
		if c4.Cycles > cycles {
			cycles = c4.Cycles
		}
	} else if e.kind == predTable {
		// Direct table access skips the Recalibrator indirection and lets
		// the multi-scheme driver's spare workers sweep set partitions in
		// parallel (bit-identical to the sequential sweep; see
		// core.Table.RecalibrateParallel).
		cost := e.ptable.RecalibrateParallel(e.l4, e.tagReadNJ(energy.L4), lineNJ, e.recalWorkers)
		cycles, nj = cost.Cycles, cost.EnergyNJ
	} else {
		rc, ok := e.pred.(predictor.Recalibrator)
		if !ok {
			return
		}
		cost := rc.Recalibrate(e.l4, e.tagReadNJ(energy.L4), lineNJ)
		cycles, nj = cost.Cycles, cost.EnergyNJ
	}
	e.res.Pred.Recalibrations++
	if e.cfg.IgnorePredictionOverhead {
		return
	}
	e.res.Pred.RecalCycles += cycles
	e.meter.AddRecal(nj)
	for c := range e.clock {
		e.clock[c] += float64(cycles)
	}
	e.heapDirty = true
}

// tagReadNJ is the energy of reading one set's tags during
// recalibration. L1/L2 fold tag+data into one figure, so their whole
// access energy stands in.
func (e *engine) tagReadNJ(l energy.Level) float64 {
	if t := e.par.Levels[l].TagNJ; t > 0 {
		return t
	}
	return e.par.Levels[l].DataNJ
}

// consultLLC asks the LLC predictor about a block after an L1 miss,
// charging the lookup and scoring it against ground truth. It returns
// true when the walk below L1 can be skipped. The predictor is
// dispatched through the cached concrete type — one predictable branch
// instead of three interface calls on every L1 miss.
//
//redhip:hotpath
func (e *engine) consultLLC(c int, block memaddr.Addr) (skip bool) {
	if e.kind == predNone || !e.adaptOn {
		return false
	}
	e.clock[c] += e.predDelay
	e.meter.AddPT(e.predNJ)
	truth := e.l4.Contains(block)
	var present bool
	switch e.kind {
	case predOracle:
		present = truth
	case predMirror:
		present = e.mirror.PredictPresent(block)
	case predTable:
		present = e.ptable.PredictPresent(block)
	default:
		present = e.cbf.PredictPresent(block)
	}
	e.res.Pred.Lookups++
	switch {
	case present && truth:
		e.res.Pred.TruePositive++
	case present && !truth:
		e.res.Pred.FalsePositive++
	case !present && !truth:
		e.res.Pred.TrueNegative++
	default:
		e.res.Pred.FalseNegative++
		if !e.fnSeen {
			e.fnSeen, e.fnBlock = true, block
		}
	}
	return !present
}

// pfSlot hashes a block address into the prefetched filter. Fibonacci
// hashing scatters the region-base structure of the synthetic address
// spaces, which a plain low-bits index would alias heavily.
func pfSlot(block memaddr.Addr) uint64 {
	return (uint64(block) * 0x9e3779b97f4a7c15) >> (64 - pfFilterBits)
}

// markUseful scores a demand hit on a previously prefetched block.
func (e *engine) markUseful(block memaddr.Addr) {
	if e.pfMarks == 0 {
		return
	}
	if s := pfSlot(block); e.prefetched[s] == uint64(block)+1 {
		e.prefetched[s] = 0
		e.pfMarks--
		e.res.Prefetch.Useful++
	}
}

func (e *engine) notePrefetched(block memaddr.Addr) {
	s := pfSlot(block)
	if e.prefetched[s] == 0 {
		e.pfMarks++
	}
	e.prefetched[s] = uint64(block) + 1
}

// train feeds the prefetcher after a demand L1 miss and issues the
// resulting prefetches asynchronously (no demand-path delay).
func (e *engine) train(c int, rec *trace.Record) {
	if e.pf == nil {
		return
	}
	e.pfBuf = e.pf[c].Observe(rec.PC, rec.Addr, e.pfBuf[:0])
	for _, block := range e.pfBuf {
		e.issuePrefetch(c, block)
	}
}

// fetchMemory charges one demand main-memory fetch. The paper models
// memory as a 0-delay, 0-energy data store (Section IV) — the default —
// but Config.MemoryLatencyCycles lets users model real DRAM latency,
// which dilutes the relative latency benefit of skipping on-chip
// lookups while leaving the energy story untouched.
func (e *engine) fetchMemory(c int) {
	e.res.MemoryFetches++
	e.clock[c] += e.memLatency
}

// fetchMemoryAsync counts a prefetch-initiated fetch; its latency is
// hidden by design (that is what prefetching is for).
func (e *engine) fetchMemoryAsync() {
	e.res.MemoryFetches++
}

// resetMeasurement starts the measurement window after warmup: all
// counters, meters and clocks restart at zero while the trained state
// (cache contents, prediction table bits, prefetcher tables, adaptive
// decision, recalibration phase) carries over.
func (e *engine) resetMeasurement() {
	for c := 0; c < e.cfg.Cores; c++ {
		e.l1[c].ResetStats()
		e.l2[c].ResetStats()
		e.l3[c].ResetStats()
		e.clock[c] = 0
	}
	e.l4.ResetStats()
	if e.pf != nil {
		for _, p := range e.pf {
			p.ResetStats()
		}
	}
	e.meter = energy.Meter{}
	e.res.Refs = 0
	e.res.L1Misses = 0
	e.res.MemoryFetches = 0
	e.res.Pred = PredStats{}
	e.res.Prefetch = PrefetchStats{}
	e.res.Adaptive = AdaptiveStats{}
}

// collect aggregates the per-cache statistics into the result.
func (e *engine) collect() {
	sum := func(cs []*cache.Cache) cache.Stats {
		var t cache.Stats
		for _, c := range cs {
			s := c.Stats()
			t.Lookups += s.Lookups
			t.Hits += s.Hits
			t.Misses += s.Misses
			t.Fills += s.Fills
			t.Evictions += s.Evictions
			t.Invalidates += s.Invalidates
		}
		return t
	}
	e.res.Levels[energy.L1] = sum(e.l1)
	e.res.Levels[energy.L2] = sum(e.l2)
	e.res.Levels[energy.L3] = sum(e.l3)
	e.res.Levels[energy.L4] = e.l4.Stats()
	e.res.CoreCycles = make([]uint64, len(e.clock))
	var max float64
	for c, f := range e.clock {
		e.res.CoreCycles[c] = uint64(f)
		if f > max {
			max = f
		}
	}
	e.res.Cycles = uint64(max)
	e.res.Dynamic = e.meter
	e.res.LeakageNJ = energy.LeakageNJ(e.par, e.cfg.Cores, e.res.Cycles)
	if e.pf != nil {
		for _, p := range e.pf {
			e.res.Prefetch.Issued += p.Stats().Issued
		}
	}
}

// Adaptive-disable policy constants (Section IV's sketch): prediction
// is turned off for the next epoch when the finished epoch's L1 miss
// rate falls below adaptMissFloor or — while prediction was on — the
// fraction of L1 misses it skipped falls below adaptSkipFloor. After
// adaptProbeEvery disabled epochs the predictor is re-enabled for one
// probe epoch so phase changes are noticed.
const (
	adaptMissFloor  = 0.02
	adaptSkipFloor  = 0.05
	adaptProbeEvery = 4
	defaultEpoch    = 16384
)

// epochTick advances the adaptive monitoring window by one reference
// and re-evaluates the enable decision at epoch boundaries.
func (e *engine) epochTick() {
	e.epochRefs++
	epoch := e.cfg.AdaptiveEpochRefs
	if epoch == 0 {
		epoch = defaultEpoch
	}
	if e.epochRefs < epoch {
		return
	}
	misses := e.res.L1Misses - e.epochStartMiss
	skips := e.res.Pred.TrueNegative - e.epochStartTN
	missRate := float64(misses) / float64(e.epochRefs)
	e.res.Adaptive.Epochs++
	wasOn := e.adaptOn
	switch {
	case !wasOn:
		e.adaptStreak++
		if e.adaptStreak >= adaptProbeEvery {
			e.adaptOn = true // probe epoch
			e.adaptStreak = 0
		}
	case missRate < adaptMissFloor:
		e.adaptOn = false
	case misses > 0 && float64(skips)/float64(misses) < adaptSkipFloor:
		e.adaptOn = false
	}
	if !e.adaptOn {
		e.res.Adaptive.DisabledEpochs++
	}
	e.epochRefs = 0
	e.epochStartMiss = e.res.L1Misses
	e.epochStartTN = e.res.Pred.TrueNegative
}
