package sim

import (
	"fmt"

	"redhip/internal/cache"
	"redhip/internal/core"
	"redhip/internal/energy"
	"redhip/internal/memaddr"
	"redhip/internal/predictor"
	"redhip/internal/prefetch"
	"redhip/internal/trace"
	"redhip/internal/workload"
)

// engine holds the mutable state of one simulation run.
type engine struct {
	cfg *Config
	par *energy.Params

	// Hierarchy: private L1-L3 per core, shared L4.
	l1, l2, l3 []*cache.Cache
	l4         *cache.Cache

	// LLC predictor for CBF/ReDHiP/Oracle under Inclusive/Hybrid.
	pred predictor.Predictor
	// Per-level tables for ReDHiP under Exclusive (Section III-C):
	// exL2/exL3 per core, exL4 shared.
	exL2, exL3 []*core.Table
	exL4       *core.Table

	clock []float64 // per-core cycle counts
	cpi   []float64
	src   []workload.Source
	pf    []*prefetch.Prefetcher

	meter            energy.Meter
	res              *Result
	missesSinceRecal uint64

	// Adaptive predictor disable (Section IV): per-epoch monitoring.
	adaptOn        bool   // predictor currently consulted
	adaptStreak    int    // consecutive disabled epochs (for probing)
	epochRefs      uint64 // refs seen in the current epoch
	epochStartMiss uint64
	epochStartTN   uint64
	pfBuf          []memaddr.Addr
	prefetched     map[memaddr.Addr]struct{}
	fnBlock        memaddr.Addr // first false negative seen, for the error
	fnSeen         bool
}

// Run simulates the configured hierarchy over the per-core sources and
// returns the collected result. sources must have exactly cfg.Cores
// entries. Run is deterministic: the same config and sources produce
// bit-identical results.
func Run(cfg Config, sources []workload.Source) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(sources) != cfg.Cores {
		return nil, fmt.Errorf("sim: %d sources for %d cores", len(sources), cfg.Cores)
	}
	e := &engine{
		cfg: &cfg,
		par: &cfg.Energy,
		res: &Result{
			Workload:  sources[0].Name(),
			Scheme:    cfg.Scheme,
			Inclusion: cfg.Inclusion,
		},
		src:        sources,
		prefetched: make(map[memaddr.Addr]struct{}),
	}
	if err := e.build(); err != nil {
		return nil, err
	}
	if cfg.WarmupRefsPerCore > 0 {
		e.loop(cfg.WarmupRefsPerCore)
		e.resetMeasurement()
	}
	e.loop(cfg.RefsPerCore)
	if e.fnSeen {
		return nil, fmt.Errorf("sim: predictor produced a false negative for block %v — conservativeness violated", e.fnBlock)
	}
	e.collect()
	return e.res, nil
}

func (e *engine) build() error {
	cfg := e.cfg
	// Apply the configured replacement policy to every level.
	cfg.L1.Replacement = cfg.Replacement
	cfg.L2.Replacement = cfg.Replacement
	cfg.L3.Replacement = cfg.Replacement
	cfg.L4.Replacement = cfg.Replacement
	e.l1 = make([]*cache.Cache, cfg.Cores)
	e.l2 = make([]*cache.Cache, cfg.Cores)
	e.l3 = make([]*cache.Cache, cfg.Cores)
	e.clock = make([]float64, cfg.Cores)
	e.cpi = make([]float64, cfg.Cores)
	for c := 0; c < cfg.Cores; c++ {
		var err error
		if e.l1[c], err = cache.New(cfg.L1); err != nil {
			return err
		}
		if e.l2[c], err = cache.New(cfg.L2); err != nil {
			return err
		}
		if e.l3[c], err = cache.New(cfg.L3); err != nil {
			return err
		}
		e.cpi[c] = e.src[c].CPI()
	}
	var err error
	if e.l4, err = cache.New(cfg.L4); err != nil {
		return err
	}

	ptDelay := cfg.Energy.PTDelay + cfg.Energy.PTWireDelay
	ptNJ := cfg.Energy.PTAccessNJ
	if cfg.IgnorePredictionOverhead {
		ptDelay, ptNJ = 0, 0
	}
	switch cfg.Scheme {
	case Base, Phased:
		e.pred = nil
	case Oracle:
		if cfg.Inclusion == Exclusive {
			e.pred = nil // per-level oracle handled inline in the walk
		} else {
			e.pred = predictor.NewOracle(e.l4.Contains)
		}
	case CBF:
		cbf, err := predictor.NewCBF(cfg.PTBytes, cfg.CBFCounterBits, ptDelay, ptNJ)
		if err != nil {
			return err
		}
		e.pred = cbf
	case ReDHiP:
		if cfg.Inclusion == Exclusive {
			// Per-level tables at the same 0.78% overhead ratio.
			e.exL2 = make([]*core.Table, cfg.Cores)
			e.exL3 = make([]*core.Table, cfg.Cores)
			for c := 0; c < cfg.Cores; c++ {
				if e.exL2[c], err = core.NewForCache(cfg.L2.SizeBytes, cfg.PTBanks); err != nil {
					return err
				}
				if e.exL3[c], err = core.NewForCache(cfg.L3.SizeBytes, cfg.PTBanks); err != nil {
					return err
				}
			}
			if e.exL4, err = core.NewTable(cfg.PTBytes, cfg.PTBanks); err != nil {
				return err
			}
		} else if cfg.RecalPeriod == 1 {
			// Recalibrating after every miss == exactly mirroring the
			// LLC contents modulo hash aliasing; simulate that directly.
			m, err := predictor.NewMirrorTable(cfg.PTBytes, ptDelay, ptNJ)
			if err != nil {
				return err
			}
			e.pred = m
		} else {
			tb, err := core.NewTableHash(cfg.PTBytes, cfg.PTBanks, cfg.PTHash)
			if err != nil {
				return err
			}
			e.pred = predictor.NewReDHiP(tb, ptDelay, ptNJ)
		}
	}

	e.adaptOn = true
	if cfg.EnablePrefetch {
		e.pf = make([]*prefetch.Prefetcher, cfg.Cores)
		for c := 0; c < cfg.Cores; c++ {
			if e.pf[c], err = prefetch.New(cfg.Prefetch); err != nil {
				return err
			}
		}
	}
	return nil
}

// loop runs the deterministic min-time interleaving for refsPerCore
// references per core: the core with the smallest local clock executes
// its next reference (ties break toward the lower core index).
func (e *engine) loop(refsPerCore uint64) {
	cfg := e.cfg
	remaining := make([]uint64, cfg.Cores)
	for c := range remaining {
		remaining[c] = refsPerCore
	}
	var rec trace.Record
	active := cfg.Cores
	for active > 0 {
		c := -1
		for i := 0; i < cfg.Cores; i++ {
			if remaining[i] == 0 {
				continue
			}
			if c == -1 || e.clock[i] < e.clock[c] {
				c = i
			}
		}
		if !e.src[c].Next(&rec) {
			remaining[c] = 0
			active--
			continue
		}
		remaining[c]--
		if remaining[c] == 0 {
			active--
		}
		e.res.Refs++
		if cfg.AdaptiveDisable {
			e.epochTick()
		}
		e.clock[c] += float64(rec.Gap) * e.cpi[c]
		block := rec.Addr.Block()
		switch cfg.Inclusion {
		case Inclusive:
			e.accessInclusive(c, block, &rec)
		case Hybrid:
			e.accessHybrid(c, block, &rec)
		case Exclusive:
			e.accessExclusive(c, block, &rec)
		}
	}
}

// --- shared helpers -----------------------------------------------------------

// chargeFill charges insertion-write energy when the configuration
// models it (the paper's lookup-only accounting does not).
func (e *engine) chargeFill(l energy.Level) {
	if e.cfg.ChargeFills {
		e.meter.AddFill(l, e.par)
	}
}

func (e *engine) chargeParallel(c int, l energy.Level) {
	e.meter.AddParallel(l, e.par)
	e.clock[c] += float64(e.par.Levels[l].ParallelDelay())
}

// lookupSplit performs a demand lookup at L3/L4 with split tag/data
// timing. A parallel access (every scheme but Phased) spends tag AND
// data energy on every probe — the wasted data read on a miss is
// exactly what Phased Cache avoids — but resolves a miss as soon as
// the tag comparison completes (TagDelay) and a hit when the data
// array returns (DataDelay). Phased reads the tag array first and
// touches the data array only on a hit: cheaper misses, but hits pay
// tag-then-data latency back to back (the 3% slowdown of Figure 6).
func (e *engine) lookupSplit(c int, l energy.Level, ch *cache.Cache, block memaddr.Addr) bool {
	lv := &e.par.Levels[l]
	if e.cfg.Scheme == Phased {
		e.meter.AddTag(l, e.par)
		e.clock[c] += float64(lv.TagDelay)
		if ch.Lookup(block) {
			e.meter.AddData(l, e.par)
			e.clock[c] += float64(lv.DataDelay)
			return true
		}
		return false
	}
	e.meter.AddParallel(l, e.par)
	if ch.Lookup(block) {
		e.clock[c] += float64(lv.ParallelDelay())
		return true
	}
	e.clock[c] += float64(lv.TagDelay)
	return false
}

// onL1Miss updates the recalibration clock and triggers recalibration
// when the period elapses (a global stall, Section IV).
func (e *engine) onL1Miss() {
	e.res.L1Misses++
	if e.cfg.Scheme != ReDHiP || e.cfg.RecalPeriod <= 1 {
		return
	}
	e.missesSinceRecal++
	if e.missesSinceRecal < e.cfg.RecalPeriod {
		return
	}
	e.missesSinceRecal = 0
	e.recalibrate()
}

func (e *engine) recalibrate() {
	lineNJ := e.par.PTAccessNJ
	var cycles uint64
	var nj float64
	if e.cfg.Inclusion == Exclusive {
		for c := 0; c < e.cfg.Cores; c++ {
			c2 := e.exL2[c].Recalibrate(e.l2[c], e.tagReadNJ(energy.L2), lineNJ)
			c3 := e.exL3[c].Recalibrate(e.l3[c], e.tagReadNJ(energy.L3), lineNJ)
			nj += c2.EnergyNJ + c3.EnergyNJ
			if c2.Cycles > cycles {
				cycles = c2.Cycles
			}
			if c3.Cycles > cycles {
				cycles = c3.Cycles
			}
		}
		c4 := e.exL4.Recalibrate(e.l4, e.tagReadNJ(energy.L4), lineNJ)
		nj += c4.EnergyNJ
		if c4.Cycles > cycles {
			cycles = c4.Cycles
		}
	} else {
		rc, ok := e.pred.(predictor.Recalibrator)
		if !ok {
			return
		}
		cost := rc.Recalibrate(e.l4, e.tagReadNJ(energy.L4), lineNJ)
		cycles, nj = cost.Cycles, cost.EnergyNJ
	}
	e.res.Pred.Recalibrations++
	if e.cfg.IgnorePredictionOverhead {
		return
	}
	e.res.Pred.RecalCycles += cycles
	e.meter.AddRecal(nj)
	for c := range e.clock {
		e.clock[c] += float64(cycles)
	}
}

// tagReadNJ is the energy of reading one set's tags during
// recalibration. L1/L2 fold tag+data into one figure, so their whole
// access energy stands in.
func (e *engine) tagReadNJ(l energy.Level) float64 {
	if t := e.par.Levels[l].TagNJ; t > 0 {
		return t
	}
	return e.par.Levels[l].DataNJ
}

// consultLLC asks the LLC predictor about a block after an L1 miss,
// charging the lookup and scoring it against ground truth. It returns
// true when the walk below L1 can be skipped.
func (e *engine) consultLLC(c int, block memaddr.Addr) (skip bool) {
	if e.pred == nil || !e.adaptOn {
		return false
	}
	e.clock[c] += float64(e.pred.LookupDelay())
	e.meter.AddPT(e.pred.LookupNJ())
	present := e.pred.PredictPresent(block)
	truth := e.l4.Contains(block)
	e.res.Pred.Lookups++
	switch {
	case present && truth:
		e.res.Pred.TruePositive++
	case present && !truth:
		e.res.Pred.FalsePositive++
	case !present && !truth:
		e.res.Pred.TrueNegative++
	default:
		e.res.Pred.FalseNegative++
		if !e.fnSeen {
			e.fnSeen, e.fnBlock = true, block
		}
	}
	return !present
}

// markUseful scores a demand hit on a previously prefetched block.
func (e *engine) markUseful(block memaddr.Addr) {
	if len(e.prefetched) == 0 {
		return
	}
	if _, ok := e.prefetched[block]; ok {
		delete(e.prefetched, block)
		e.res.Prefetch.Useful++
	}
}

func (e *engine) notePrefetched(block memaddr.Addr) {
	if len(e.prefetched) >= 1<<20 {
		// Bound stats memory; stale marks only affect usefulness stats.
		clear(e.prefetched)
	}
	e.prefetched[block] = struct{}{}
}

// train feeds the prefetcher after a demand L1 miss and issues the
// resulting prefetches asynchronously (no demand-path delay).
func (e *engine) train(c int, rec *trace.Record) {
	if e.pf == nil {
		return
	}
	e.pfBuf = e.pf[c].Observe(rec.PC, rec.Addr, e.pfBuf[:0])
	for _, block := range e.pfBuf {
		e.issuePrefetch(c, block)
	}
}

// fetchMemory charges one demand main-memory fetch. The paper models
// memory as a 0-delay, 0-energy data store (Section IV) — the default —
// but Config.MemoryLatencyCycles lets users model real DRAM latency,
// which dilutes the relative latency benefit of skipping on-chip
// lookups while leaving the energy story untouched.
func (e *engine) fetchMemory(c int) {
	e.res.MemoryFetches++
	e.clock[c] += float64(e.cfg.MemoryLatencyCycles)
}

// fetchMemoryAsync counts a prefetch-initiated fetch; its latency is
// hidden by design (that is what prefetching is for).
func (e *engine) fetchMemoryAsync() {
	e.res.MemoryFetches++
}

// resetMeasurement starts the measurement window after warmup: all
// counters, meters and clocks restart at zero while the trained state
// (cache contents, prediction table bits, prefetcher tables, adaptive
// decision, recalibration phase) carries over.
func (e *engine) resetMeasurement() {
	for c := 0; c < e.cfg.Cores; c++ {
		e.l1[c].ResetStats()
		e.l2[c].ResetStats()
		e.l3[c].ResetStats()
		e.clock[c] = 0
	}
	e.l4.ResetStats()
	if e.pf != nil {
		for _, p := range e.pf {
			p.ResetStats()
		}
	}
	e.meter = energy.Meter{}
	e.res.Refs = 0
	e.res.L1Misses = 0
	e.res.MemoryFetches = 0
	e.res.Pred = PredStats{}
	e.res.Prefetch = PrefetchStats{}
	e.res.Adaptive = AdaptiveStats{}
}

// collect aggregates the per-cache statistics into the result.
func (e *engine) collect() {
	sum := func(cs []*cache.Cache) cache.Stats {
		var t cache.Stats
		for _, c := range cs {
			s := c.Stats()
			t.Lookups += s.Lookups
			t.Hits += s.Hits
			t.Misses += s.Misses
			t.Fills += s.Fills
			t.Evictions += s.Evictions
			t.Invalidates += s.Invalidates
		}
		return t
	}
	e.res.Levels[energy.L1] = sum(e.l1)
	e.res.Levels[energy.L2] = sum(e.l2)
	e.res.Levels[energy.L3] = sum(e.l3)
	e.res.Levels[energy.L4] = e.l4.Stats()
	e.res.CoreCycles = make([]uint64, len(e.clock))
	var max float64
	for c, f := range e.clock {
		e.res.CoreCycles[c] = uint64(f)
		if f > max {
			max = f
		}
	}
	e.res.Cycles = uint64(max)
	e.res.Dynamic = e.meter
	e.res.LeakageNJ = energy.LeakageNJ(e.par, e.cfg.Cores, e.res.Cycles)
	if e.pf != nil {
		for _, p := range e.pf {
			e.res.Prefetch.Issued += p.Stats().Issued
		}
	}
}

// Adaptive-disable policy constants (Section IV's sketch): prediction
// is turned off for the next epoch when the finished epoch's L1 miss
// rate falls below adaptMissFloor or — while prediction was on — the
// fraction of L1 misses it skipped falls below adaptSkipFloor. After
// adaptProbeEvery disabled epochs the predictor is re-enabled for one
// probe epoch so phase changes are noticed.
const (
	adaptMissFloor  = 0.02
	adaptSkipFloor  = 0.05
	adaptProbeEvery = 4
	defaultEpoch    = 16384
)

// epochTick advances the adaptive monitoring window by one reference
// and re-evaluates the enable decision at epoch boundaries.
func (e *engine) epochTick() {
	e.epochRefs++
	epoch := e.cfg.AdaptiveEpochRefs
	if epoch == 0 {
		epoch = defaultEpoch
	}
	if e.epochRefs < epoch {
		return
	}
	misses := e.res.L1Misses - e.epochStartMiss
	skips := e.res.Pred.TrueNegative - e.epochStartTN
	missRate := float64(misses) / float64(e.epochRefs)
	e.res.Adaptive.Epochs++
	wasOn := e.adaptOn
	switch {
	case !wasOn:
		e.adaptStreak++
		if e.adaptStreak >= adaptProbeEvery {
			e.adaptOn = true // probe epoch
			e.adaptStreak = 0
		}
	case missRate < adaptMissFloor:
		e.adaptOn = false
	case misses > 0 && float64(skips)/float64(misses) < adaptSkipFloor:
		e.adaptOn = false
	}
	if !e.adaptOn {
		e.res.Adaptive.DisabledEpochs++
	}
	e.epochRefs = 0
	e.epochStartMiss = e.res.L1Misses
	e.epochStartTN = e.res.Pred.TrueNegative
}
