package sim

import (
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"time"

	"redhip/internal/cache"
	"redhip/internal/core"
	"redhip/internal/memaddr"
	"redhip/internal/prefetch"
	"redhip/internal/redhipassert"
	"redhip/internal/simstate"
	"redhip/internal/workload"
)

// This file is the warm-state snapshot/branch layer: Warm runs a
// configuration's warmup window once and serialises the fully-warmed
// engine (internal/simstate), and RunFromSnapshot re-seats a fresh
// engine from that blob and runs only the measure window. The split is
// exactly the warmup/measure boundary resetMeasurement defines, so a
// restored measure phase is bit-identical to a straight-through
// warmup+measure run — pinned by TestGoldenSnapshotBranch against the
// sixteen golden fingerprints.

// ErrSnapshot marks a snapshot that cannot be used with the given
// configuration and sources — wrong geometry lineage, corrupt blob,
// sources that do not expose cursor state. Callers (the experiment
// runner) treat it as "fall back to a cold run", never as a run
// failure.
var ErrSnapshot = errors.New("sim: snapshot unusable")

// WarmKey digests everything the warm state depends on: the full
// configuration with the measure-window length zeroed (so measure
// variants of any length branch from one warm state), the workload
// name, and the generator seed. Two runs agree on WarmKey iff their
// warmup phases are bit-identical.
func WarmKey(cfg Config, workloadName string, seed uint64) [32]byte {
	cfg.RefsPerCore = 0
	b, err := json.Marshal(&cfg)
	if err != nil {
		// Config is a closed struct of scalars; Marshal cannot fail.
		panic(fmt.Sprintf("sim: marshal config for warm key: %v", err))
	}
	h := sha256.New()
	h.Write(b)
	fmt.Fprintf(h, "|%s|%d", workloadName, seed)
	var k [32]byte
	copy(k[:], h.Sum(nil))
	return k
}

func warmMeta(cfg *Config, workloadName string, seed uint64) simstate.Meta {
	return simstate.Meta{
		ConfigHash: WarmKey(*cfg, workloadName, seed),
		Workload:   workloadName,
		Scheme:     cfg.Scheme.String(),
		Cores:      uint32(cfg.Cores),
		WarmupRefs: cfg.WarmupRefsPerCore,
	}
}

// validateWarmMeta rejects a snapshot taken under a different
// warm-relevant configuration. The clear-text fields produce readable
// errors for the common mismatches; the hash catches everything else.
func validateWarmMeta(m *simstate.Meta, cfg *Config, workloadName string, seed uint64) error {
	switch {
	case m.Workload != workloadName:
		return fmt.Errorf("%w: snapshot is of workload %q, want %q", ErrSnapshot, m.Workload, workloadName)
	case m.Scheme != cfg.Scheme.String():
		return fmt.Errorf("%w: snapshot is of scheme %q, want %q", ErrSnapshot, m.Scheme, cfg.Scheme)
	case m.Cores != uint32(cfg.Cores):
		return fmt.Errorf("%w: snapshot has %d cores, want %d", ErrSnapshot, m.Cores, cfg.Cores)
	case m.WarmupRefs != cfg.WarmupRefsPerCore:
		return fmt.Errorf("%w: snapshot absorbed %d warmup refs/core, want %d", ErrSnapshot, m.WarmupRefs, cfg.WarmupRefsPerCore)
	case m.ConfigHash != WarmKey(*cfg, workloadName, seed):
		return fmt.Errorf("%w: warm-config hash mismatch (geometry, energy, seed or policy differs)", ErrSnapshot)
	}
	return nil
}

// stateSources asserts that every source exposes its cursor state; a
// source that cannot be re-seated cannot participate in snapshotting.
func stateSources(sources []workload.Source) ([]workload.StateSource, error) {
	out := make([]workload.StateSource, len(sources))
	for i, s := range sources {
		ss, ok := s.(workload.StateSource)
		if !ok {
			return nil, fmt.Errorf("%w: source %d (%T) does not expose cursor state", ErrSnapshot, i, s)
		}
		out[i] = ss
	}
	return out, nil
}

// Warm simulates cfg's warmup window over the sources and returns the
// warmed engine serialised as a simstate blob. The sources are left
// positioned at the warmup/measure boundary; RunFromSnapshot re-seats
// them (or fresh equivalents) from the blob, so the same sources can be
// passed straight on. seed labels the blob for WarmKey validation and
// must be the seed the sources were built with.
func Warm(cfg Config, sources []workload.Source, seed uint64) ([]byte, error) {
	if cfg.WarmupRefsPerCore == 0 {
		return nil, fmt.Errorf("%w: configuration has no warmup window to snapshot", ErrSnapshot)
	}
	states, err := stateSources(sources)
	if err != nil {
		return nil, err
	}
	e, err := newEngine(cfg, sources)
	if err != nil {
		return nil, err
	}
	e.loop(cfg.WarmupRefsPerCore)
	e.resetMeasurement()
	snap := e.captureSnapshot()
	snap.Meta = warmMeta(&cfg, sources[0].Name(), seed)
	snap.Sources = make([][]uint64, len(states))
	for i, ss := range states {
		snap.Sources[i] = ss.AppendState(nil)
	}
	return simstate.Encode(snap), nil
}

// RunFromSnapshot restores a warmed engine from blob and runs only the
// measure window, returning a result bit-identical to Run(cfg, ...)
// over cold sources. The sources must be fresh or re-seatable
// equivalents of the ones Warm saw — their cursors are overwritten from
// the blob before the measure window starts. Unusable blobs fail with
// ErrSnapshot so callers can fall back to a cold run.
func RunFromSnapshot(cfg Config, blob []byte, sources []workload.Source, seed uint64) (*Result, error) {
	start := time.Now() //redhip:allow wallclock -- Perf wall-time reporting, not simulated time
	var memBefore runtime.MemStats
	runtime.ReadMemStats(&memBefore)
	snap, err := simstate.Decode(blob)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSnapshot, err)
	}
	if len(sources) == 0 {
		return nil, fmt.Errorf("sim: no sources")
	}
	if err := validateWarmMeta(&snap.Meta, &cfg, sources[0].Name(), seed); err != nil {
		return nil, err
	}
	states, err := stateSources(sources)
	if err != nil {
		return nil, err
	}
	e, err := newEngine(cfg, sources)
	if err != nil {
		return nil, err
	}
	if err := e.restoreWarmState(snap, states); err != nil {
		return nil, err
	}
	restoreNanos := time.Since(start).Nanoseconds() //redhip:allow wallclock -- Perf restore-time attribution only
	e.loop(cfg.RefsPerCore)
	if e.fnSeen {
		return nil, fmt.Errorf("sim: predictor produced a false negative for block %v — conservativeness violated", e.fnBlock)
	}
	e.collect()
	var memAfter runtime.MemStats
	runtime.ReadMemStats(&memAfter)
	wall := time.Since(start) //redhip:allow wallclock -- Perf wall-time reporting
	e.res.Perf = PerfStats{
		WallNanos:     wall.Nanoseconds(),
		GenerateNanos: e.genNanos,
		SimulateNanos: wall.Nanoseconds() - e.genNanos - restoreNanos,
		RestoreNanos:  restoreNanos,
		AllocBytes:    memAfter.TotalAlloc - memBefore.TotalAlloc,
		Mallocs:       memAfter.Mallocs - memBefore.Mallocs,
	}
	if secs := wall.Seconds(); secs > 0 {
		e.res.Perf.RefsPerSec = float64(e.res.Refs) / secs
	}
	return e.res, nil
}

// restoreWarmState re-seats the source cursors and the engine from a
// decoded snapshot. Failures wrap ErrSnapshot: a blob that passed its
// checksum but disagrees with the engine's geometry is a caller-side
// mismatch, recoverable by re-warming.
func (e *engine) restoreWarmState(snap *simstate.Snapshot, states []workload.StateSource) error {
	if len(snap.Sources) != len(states) {
		return fmt.Errorf("%w: snapshot has %d source cursors, want %d", ErrSnapshot, len(snap.Sources), len(states))
	}
	for i, ss := range states {
		if err := ss.RestoreState(snap.Sources[i]); err != nil {
			return fmt.Errorf("%w: %v", ErrSnapshot, err)
		}
	}
	if err := e.restoreSnapshot(snap); err != nil {
		return fmt.Errorf("%w: %v", ErrSnapshot, err)
	}
	return nil
}

// captureSnapshot serialises the engine's warm state. Call only at the
// warmup/measure boundary, immediately after resetMeasurement: stats,
// meters and clocks are zero there, so they are not part of the
// snapshot by construction.
func (e *engine) captureSnapshot() *simstate.Snapshot {
	s := &simstate.Snapshot{}
	grab := func(c *cache.Cache) {
		tagv, ord, rng := c.SnapshotState()
		s.Caches = append(s.Caches, simstate.CacheState{TagV: tagv, Ord: ord, RNG: rng})
	}
	for _, c := range e.l1 {
		grab(c)
	}
	for _, c := range e.l2 {
		grab(c)
	}
	for _, c := range e.l3 {
		grab(c)
	}
	grab(e.l4)
	table := func(t *core.Table) {
		words, ctr := t.SnapshotState()
		s.Tables = append(s.Tables, simstate.TableState{
			Words: words, Lookups: ctr[0], PredHits: ctr[1], Sets: ctr[2], Recals: ctr[3],
		})
	}
	if e.ptable != nil {
		table(e.ptable)
	}
	for _, t := range e.exL2 {
		table(t)
	}
	for _, t := range e.exL3 {
		table(t)
	}
	if e.exL4 != nil {
		table(e.exL4)
	}
	if e.mirror != nil {
		s.Mirror = &simstate.MirrorState{Refs: e.mirror.SnapshotRefs()}
	}
	if e.cbf != nil {
		counters, st := e.cbf.SnapshotState()
		s.CBF = &simstate.CBFState{
			Counters: counters, Lookups: st[0], Present: st[1], Saturated: st[2], Underflow: st[3],
		}
	}
	for _, p := range e.pf {
		ents := p.SnapshotEntries()
		out := make([]simstate.PrefetchEntry, len(ents))
		for i, en := range ents {
			out[i] = simstate.PrefetchEntry{
				PC: en.PC, LastAddr: en.LastAddr, Stride: en.Stride, State: en.State, Valid: en.Valid,
			}
		}
		s.Prefetchers = append(s.Prefetchers, simstate.PrefetcherState{Entries: out})
	}
	for slot, mark := range e.prefetched {
		if mark != 0 {
			s.PFFilter = append(s.PFFilter, simstate.PFSlot{Slot: uint32(slot), Mark: mark})
		}
	}
	s.PFMarks = uint64(e.pfMarks)
	s.MissesSinceRecal = e.missesSinceRecal
	s.Adaptive = simstate.AdaptiveState{
		On:             e.adaptOn,
		Streak:         uint64(e.adaptStreak),
		EpochRefs:      e.epochRefs,
		EpochStartMiss: e.epochStartMiss,
		EpochStartTN:   e.epochStartTN,
	}
	s.FNSeen = e.fnSeen
	s.FNBlock = uint64(e.fnBlock)
	return s
}

// restoreSnapshot overwrites a freshly built engine's warm state from a
// decoded snapshot. The engine must match the snapshot's configuration
// (validated upstream via Meta); residual mismatches — a blob whose
// component inventory disagrees with the engine's — fail here without
// wrapping, and restoreWarmState adds the ErrSnapshot classification.
func (e *engine) restoreSnapshot(s *simstate.Snapshot) error {
	caches := make([]*cache.Cache, 0, 3*len(e.l1)+1)
	caches = append(caches, e.l1...)
	caches = append(caches, e.l2...)
	caches = append(caches, e.l3...)
	caches = append(caches, e.l4)
	if len(s.Caches) != len(caches) {
		return fmt.Errorf("sim: snapshot has %d caches, engine has %d", len(s.Caches), len(caches))
	}
	for i, c := range caches {
		cs := &s.Caches[i]
		if err := c.RestoreSnapshotState(cs.TagV, cs.Ord, cs.RNG); err != nil {
			return err
		}
	}
	tables := make([]*core.Table, 0, 2*len(e.exL2)+1)
	if e.ptable != nil {
		tables = append(tables, e.ptable)
	}
	tables = append(tables, e.exL2...)
	tables = append(tables, e.exL3...)
	if e.exL4 != nil {
		tables = append(tables, e.exL4)
	}
	if len(s.Tables) != len(tables) {
		return fmt.Errorf("sim: snapshot has %d prediction tables, engine has %d", len(s.Tables), len(tables))
	}
	for i, t := range tables {
		ts := &s.Tables[i]
		if err := t.RestoreSnapshotState(ts.Words, [4]uint64{ts.Lookups, ts.PredHits, ts.Sets, ts.Recals}); err != nil {
			return err
		}
	}
	if (e.mirror != nil) != (s.Mirror != nil) {
		return fmt.Errorf("sim: snapshot mirror-table presence disagrees with engine scheme")
	}
	if e.mirror != nil {
		if err := e.mirror.RestoreRefs(s.Mirror.Refs); err != nil {
			return err
		}
	}
	if (e.cbf != nil) != (s.CBF != nil) {
		return fmt.Errorf("sim: snapshot CBF presence disagrees with engine scheme")
	}
	if e.cbf != nil {
		c := s.CBF
		if err := e.cbf.RestoreSnapshotState(c.Counters, [4]uint64{c.Lookups, c.Present, c.Saturated, c.Underflow}); err != nil {
			return err
		}
	}
	if len(s.Prefetchers) != len(e.pf) {
		return fmt.Errorf("sim: snapshot has %d prefetchers, engine has %d", len(s.Prefetchers), len(e.pf))
	}
	for i, p := range e.pf {
		ents := s.Prefetchers[i].Entries
		in := make([]prefetch.EntryState, len(ents))
		for j, en := range ents {
			in[j] = prefetch.EntryState{
				PC: en.PC, LastAddr: en.LastAddr, Stride: en.Stride, State: en.State, Valid: en.Valid,
			}
		}
		if err := p.RestoreEntries(in); err != nil {
			return err
		}
	}
	if e.prefetched == nil && len(s.PFFilter) > 0 {
		return fmt.Errorf("sim: snapshot carries a prefetch filter but prefetching is disabled")
	}
	if uint64(len(s.PFFilter)) != s.PFMarks {
		return fmt.Errorf("sim: snapshot prefetch filter has %d occupied slots but claims %d marks", len(s.PFFilter), s.PFMarks)
	}
	prev := -1
	for _, ps := range s.PFFilter {
		slot := int(ps.Slot)
		if slot <= prev {
			return fmt.Errorf("sim: snapshot prefetch filter slots not strictly ascending at %d", slot)
		}
		if slot >= len(e.prefetched) {
			return fmt.Errorf("sim: snapshot prefetch filter slot %d outside %d-slot filter", slot, len(e.prefetched))
		}
		if ps.Mark == 0 {
			return fmt.Errorf("sim: snapshot prefetch filter slot %d holds an empty mark", slot)
		}
		e.prefetched[slot] = ps.Mark
		prev = slot
	}
	e.pfMarks = int(s.PFMarks)
	e.missesSinceRecal = s.MissesSinceRecal
	e.adaptOn = s.Adaptive.On
	e.adaptStreak = int(s.Adaptive.Streak)
	e.epochRefs = s.Adaptive.EpochRefs
	e.epochStartMiss = s.Adaptive.EpochStartMiss
	e.epochStartTN = s.Adaptive.EpochStartTN
	e.fnSeen = s.FNSeen
	e.fnBlock = memaddr.Addr(s.FNBlock)
	if redhipassert.Enabled {
		live := 0
		for _, m := range e.prefetched {
			if m != 0 {
				live++
			}
		}
		redhipassert.Check(live == e.pfMarks, "sim: restored prefetch-filter mark count diverges from occupancy")
		redhipassert.Check(e.missesSinceRecal == 0 || e.cfg.RecalPeriod == 0 || e.missesSinceRecal < e.cfg.RecalPeriod,
			"sim: restored recalibration clock at or past its period")
	}
	return nil
}
