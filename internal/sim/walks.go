package sim

import (
	"redhip/internal/energy"
	"redhip/internal/memaddr"
	"redhip/internal/trace"
)

// --- inclusive hierarchy (the paper's main configuration) --------------------

// accessInclusive walks the fully inclusive hierarchy: every level
// contains all blocks of the levels above it, so "absent from L4" means
// "absent everywhere" and a predicted-absent L1 miss goes straight to
// memory (Section III).
//
//redhip:hotpath
func (e *engine) accessInclusive(c int, block memaddr.Addr, rec *trace.Record) {
	e.chargeParallel(c, energy.L1)
	if e.l1[c].Lookup(block) {
		return
	}
	e.onL1Miss()
	if e.consultLLC(c, block) {
		e.fetchMemory(c)
		e.fillL4Incl(block)
		e.fillL3Incl(c, block)
		e.fillL2Incl(c, block)
		e.fillL1(c, block)
		e.train(c, rec)
		return
	}
	e.chargeParallel(c, energy.L2)
	if e.l2[c].Lookup(block) {
		e.markUseful(block)
		e.fillL1(c, block)
		e.train(c, rec)
		return
	}
	if e.lookupSplit(c, energy.L3, e.l3[c], block) {
		e.markUseful(block)
		e.fillL2Incl(c, block)
		e.fillL1(c, block)
		e.train(c, rec)
		return
	}
	if e.lookupSplit(c, energy.L4, e.l4, block) {
		e.markUseful(block)
		e.fillL3Incl(c, block)
		e.fillL2Incl(c, block)
		e.fillL1(c, block)
		e.train(c, rec)
		return
	}
	e.fetchMemory(c)
	e.fillL4Incl(block)
	e.fillL3Incl(c, block)
	e.fillL2Incl(c, block)
	e.fillL1(c, block)
	e.train(c, rec)
}

// fillL1 inserts into L1. Under inclusion an L1 victim still lives in
// L2 and below, so nothing else happens.
func (e *engine) fillL1(c int, block memaddr.Addr) {
	e.l1[c].Fill(block)
	e.chargeFill(energy.L1)
}

// fillL2Incl inserts into L2 and back-invalidates the victim from L1 to
// preserve inclusion.
func (e *engine) fillL2Incl(c int, block memaddr.Addr) {
	ev, was := e.l2[c].Fill(block)
	e.chargeFill(energy.L2)
	if was {
		e.l1[c].Invalidate(ev)
	}
}

// fillL3Incl inserts into L3 and back-invalidates the victim from L2
// and L1.
func (e *engine) fillL3Incl(c int, block memaddr.Addr) {
	ev, was := e.l3[c].Fill(block)
	e.chargeFill(energy.L3)
	if was {
		e.l2[c].Invalidate(ev)
		e.l1[c].Invalidate(ev)
	}
}

// fillL4Incl inserts into the shared L4, notifying the predictor and
// back-invalidating the victim from every core's private levels. The
// caller must have established that the block is absent from L4 (a
// lookup or prediction cross-checked against ground truth), so OnFill
// fires exactly once per resident block.
func (e *engine) fillL4Incl(block memaddr.Addr) {
	ev, was := e.l4.Fill(block)
	e.chargeFill(energy.L4)
	if e.pred != nil {
		e.pred.OnFill(block)
	}
	if was {
		if e.pred != nil {
			e.pred.OnEvict(ev)
		}
		for c := 0; c < e.cfg.Cores; c++ {
			e.l3[c].Invalidate(ev)
			e.l2[c].Invalidate(ev)
			e.l1[c].Invalidate(ev)
		}
	}
}

// --- hybrid hierarchy (exclusive privates, inclusive shared LLC) --------------

// accessHybrid walks the hybrid hierarchy of Section III-C: L1/L2/L3
// hold disjoint blocks (victim-cache demotion among them) while the
// shared L4 is inclusive of everything, so the LLC predictor stays
// safe and "no changes are required for ReDHiP".
//
//redhip:hotpath
func (e *engine) accessHybrid(c int, block memaddr.Addr, rec *trace.Record) {
	e.chargeParallel(c, energy.L1)
	if e.l1[c].Lookup(block) {
		return
	}
	e.onL1Miss()
	if e.consultLLC(c, block) {
		e.fetchMemory(c)
		e.fillL4Incl(block)
		e.fillL1Demote(c, block)
		e.train(c, rec)
		return
	}
	e.chargeParallel(c, energy.L2)
	if e.l2[c].Lookup(block) {
		e.markUseful(block)
		e.l2[c].Invalidate(block) // promote: exclusive privates
		e.fillL1Demote(c, block)
		e.train(c, rec)
		return
	}
	if e.lookupSplit(c, energy.L3, e.l3[c], block) {
		e.markUseful(block)
		e.l3[c].Invalidate(block)
		e.fillL1Demote(c, block)
		e.train(c, rec)
		return
	}
	if e.lookupSplit(c, energy.L4, e.l4, block) {
		e.markUseful(block)
		e.fillL1Demote(c, block) // L4 keeps the block: it is inclusive
		e.train(c, rec)
		return
	}
	e.fetchMemory(c)
	e.fillL4Incl(block)
	e.fillL1Demote(c, block)
	e.train(c, rec)
}

// fillL1Demote inserts into L1 with the exclusive demotion chain: the
// L1 victim demotes to L2, L2's victim to L3. L3's victim demotes to L4
// under the fully exclusive policy and is dropped under Hybrid (where
// it still resides in the inclusive L4).
func (e *engine) fillL1Demote(c int, block memaddr.Addr) {
	ev, was := e.l1[c].Fill(block)
	e.chargeFill(energy.L1)
	if was {
		e.demoteToL2(c, ev)
	}
}

func (e *engine) demoteToL2(c int, block memaddr.Addr) {
	ev, was := e.l2[c].Fill(block)
	e.chargeFill(energy.L2)
	if e.exL2 != nil {
		e.exL2[c].Set(block)
	}
	if was {
		e.demoteToL3(c, ev)
	}
}

func (e *engine) demoteToL3(c int, block memaddr.Addr) {
	ev, was := e.l3[c].Fill(block)
	e.chargeFill(energy.L3)
	if e.exL3 != nil {
		e.exL3[c].Set(block)
	}
	if was && e.cfg.Inclusion == Exclusive {
		e.demoteToL4(ev)
	}
}

func (e *engine) demoteToL4(block memaddr.Addr) {
	e.l4.Fill(block)
	e.chargeFill(energy.L4)
	if e.exL4 != nil {
		e.exL4.Set(block)
	}
	// The L4 victim (if any) falls off-chip; nothing tracks it.
}

// --- fully exclusive hierarchy -------------------------------------------------

// predictExclusive queries the per-level prediction (Section III-C:
// "the prediction tables from every level down the hierarchy is
// requested simultaneously"). All three answers cost one table latency;
// each table's lookup energy is charged. Predictions are scored against
// per-level ground truth.
//
//redhip:hotpath
func (e *engine) predictExclusive(c int, block memaddr.Addr) (p2, p3, p4 bool) {
	switch e.cfg.Scheme {
	case Base, Phased:
		return true, true, true
	case CBF:
		// Config.Validate rejects CBF with the exclusive hierarchy, so
		// this arm is unreachable; predict conservatively if it ever runs.
		return true, true, true
	case Oracle:
		return e.l2[c].Contains(block), e.l3[c].Contains(block), e.l4.Contains(block)
	case ReDHiP:
		if !e.adaptOn {
			return true, true, true
		}
		if !e.cfg.IgnorePredictionOverhead {
			e.clock[c] += e.exDelay
			e.meter.AddPT(3 * e.par.PTAccessNJ)
		}
		p2 = e.exL2[c].PredictPresent(block)
		p3 = e.exL3[c].PredictPresent(block)
		p4 = e.exL4.PredictPresent(block)
		e.scorePrediction(p2, e.l2[c].Contains(block), block)
		e.scorePrediction(p3, e.l3[c].Contains(block), block)
		e.scorePrediction(p4, e.l4.Contains(block), block)
		return p2, p3, p4
	}
	return true, true, true
}

func (e *engine) scorePrediction(present, truth bool, block memaddr.Addr) {
	e.res.Pred.Lookups++
	switch {
	case present && truth:
		e.res.Pred.TruePositive++
	case present && !truth:
		e.res.Pred.FalsePositive++
	case !present && !truth:
		e.res.Pred.TrueNegative++
	default:
		e.res.Pred.FalseNegative++
		if !e.fnSeen {
			e.fnSeen, e.fnBlock = true, block
		}
	}
}

// accessExclusive walks the fully exclusive hierarchy: every level
// holds distinct blocks; a hit removes the block from its level and
// promotes it to L1, demoting victims down the chain. Levels whose
// table predicts absent are skipped, and "the request is sent to the
// lowest level where it may exist rather than always restarting at the
// L2 cache" (Section III-C).
//
//redhip:hotpath
func (e *engine) accessExclusive(c int, block memaddr.Addr, rec *trace.Record) {
	e.chargeParallel(c, energy.L1)
	if e.l1[c].Lookup(block) {
		return
	}
	e.onL1Miss()
	p2, p3, p4 := e.predictExclusive(c, block)
	if p2 {
		e.chargeParallel(c, energy.L2)
		if e.l2[c].Lookup(block) {
			e.markUseful(block)
			e.l2[c].Invalidate(block)
			e.fillL1Demote(c, block)
			e.train(c, rec)
			return
		}
	}
	if p3 {
		if e.lookupSplit(c, energy.L3, e.l3[c], block) {
			e.markUseful(block)
			e.l3[c].Invalidate(block)
			e.fillL1Demote(c, block)
			e.train(c, rec)
			return
		}
	}
	if p4 {
		if e.lookupSplit(c, energy.L4, e.l4, block) {
			e.markUseful(block)
			e.l4.Invalidate(block) // exclusive: L4 gives the block up
			e.fillL1Demote(c, block)
			e.train(c, rec)
			return
		}
	}
	e.fetchMemory(c)
	e.fillL1Demote(c, block)
	e.train(c, rec)
}

// --- prefetch issue ---------------------------------------------------------------

// prefetchProbe checks residency for an asynchronous prefetch. It
// charges the same lookup energy a demand access would (prefetches are
// exactly as expensive per probe — that is the energy cost Figure 15
// shows) but adds no demand-path delay and does not perturb demand
// hit/miss statistics or LRU state.
func (e *engine) prefetchProbe(l energy.Level, contains func(memaddr.Addr) bool, block memaddr.Addr) bool {
	if e.cfg.Scheme == Phased && (l == energy.L3 || l == energy.L4) {
		e.meter.AddTag(l, e.par)
		if contains(block) {
			e.meter.AddData(l, e.par)
			return true
		}
		return false
	}
	e.meter.AddParallel(l, e.par)
	return contains(block)
}

// issuePrefetch sends one prefetched block into the hierarchy. Under
// ReDHiP/CBF/Oracle the prefetch consults the predictor first, which is
// how ReDHiP "offsets the energy overhead of hardware data prefetching"
// (Section V-C): predicted-absent prefetches skip every lookup.
func (e *engine) issuePrefetch(c int, block memaddr.Addr) {
	switch e.cfg.Inclusion {
	case Inclusive:
		if e.pred != nil {
			e.meter.AddPT(e.pred.LookupNJ())
			if !e.pred.PredictPresent(block) {
				e.fetchMemoryAsync()
				e.fillL4Incl(block)
				e.fillL3Incl(c, block)
				e.fillL2Incl(c, block)
				e.notePrefetched(block)
				return
			}
		}
		if e.prefetchProbe(energy.L2, e.l2[c].Contains, block) {
			return
		}
		if e.prefetchProbe(energy.L3, e.l3[c].Contains, block) {
			return
		}
		if e.prefetchProbe(energy.L4, e.l4.Contains, block) {
			// On chip but far away: pull it up to L3/L2.
			e.fillL3Incl(c, block)
			e.fillL2Incl(c, block)
			e.notePrefetched(block)
			return
		}
		e.fetchMemoryAsync()
		e.fillL4Incl(block)
		e.fillL3Incl(c, block)
		e.fillL2Incl(c, block)
		e.notePrefetched(block)
	case Hybrid:
		if e.pred != nil {
			e.meter.AddPT(e.pred.LookupNJ())
			if !e.pred.PredictPresent(block) {
				e.fetchMemoryAsync()
				e.fillL4Incl(block)
				e.demoteToL2(c, block)
				e.notePrefetched(block)
				return
			}
		}
		if e.prefetchProbe(energy.L2, e.l2[c].Contains, block) {
			return
		}
		if e.prefetchProbe(energy.L3, e.l3[c].Contains, block) {
			return
		}
		if e.prefetchProbe(energy.L4, e.l4.Contains, block) {
			return // resident in the inclusive L4; leave placement alone
		}
		e.fetchMemoryAsync()
		e.fillL4Incl(block)
		e.demoteToL2(c, block)
		e.notePrefetched(block)
	case Exclusive:
		if e.cfg.Scheme == ReDHiP {
			e.meter.AddPT(3 * e.par.PTAccessNJ)
			p2 := e.exL2[c].PredictPresent(block)
			p3 := e.exL3[c].PredictPresent(block)
			p4 := e.exL4.PredictPresent(block)
			if p2 && e.prefetchProbe(energy.L2, e.l2[c].Contains, block) {
				return
			}
			if p3 && e.prefetchProbe(energy.L3, e.l3[c].Contains, block) {
				return
			}
			if p4 && e.prefetchProbe(energy.L4, e.l4.Contains, block) {
				return
			}
		} else {
			if e.prefetchProbe(energy.L2, e.l2[c].Contains, block) {
				return
			}
			if e.prefetchProbe(energy.L3, e.l3[c].Contains, block) {
				return
			}
			if e.prefetchProbe(energy.L4, e.l4.Contains, block) {
				return
			}
		}
		if e.l1[c].Contains(block) {
			return
		}
		e.fetchMemoryAsync()
		e.demoteToL2(c, block) // prefetch lands in L2, not L1
		e.notePrefetched(block)
	}
}
