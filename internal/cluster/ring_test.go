package cluster

import (
	"fmt"
	"testing"
)

// sampleKeys fabricates n spec-key-shaped strings (16 hex chars, like
// the serve dedup key) deterministically.
func sampleKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("%016x", hash64(fmt.Sprintf("speckey-%d", i)))
	}
	return keys
}

func memberNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("replica-%d", i)
	}
	return names
}

// TestRingDeterministicPlacement: the same member set — in any order —
// yields the same owner for every key, across independently built rings.
func TestRingDeterministicPlacement(t *testing.T) {
	keys := sampleKeys(2000)
	a := NewRing([]string{"replica-0", "replica-1", "replica-2"}, 0)
	b := NewRing([]string{"replica-2", "replica-0", "replica-1"}, 0)
	for _, k := range keys {
		oa, ob := a.Owner(k), b.Owner(k)
		if oa != ob {
			t.Fatalf("key %s: owner %q vs %q for permuted member sets", k, oa, ob)
		}
		if oa == "" {
			t.Fatalf("key %s: empty owner on non-empty ring", k)
		}
	}
	// And again against a rebuilt identical ring.
	c := NewRing([]string{"replica-0", "replica-1", "replica-2"}, 0)
	for _, k := range keys {
		if a.Owner(k) != c.Owner(k) {
			t.Fatalf("key %s: rebuild changed owner", k)
		}
	}
}

// TestRingMinimalMovement: a single join or leave moves at most ~1/N of
// sampled keys (the ISSUE allows ≤ 2/N as slack for vnode variance).
func TestRingMinimalMovement(t *testing.T) {
	keys := sampleKeys(4000)
	for n := 3; n <= 8; n++ {
		base := NewRing(memberNames(n), 0)
		// Join: add one member.
		joined := NewRing(memberNames(n+1), 0)
		movedJoin := 0
		for _, k := range keys {
			was, is := base.Owner(k), joined.Owner(k)
			if was != is {
				movedJoin++
				// Keys may only move TO the newcomer, never between
				// incumbents — the consistent-hashing contract.
				if is != fmt.Sprintf("replica-%d", n) {
					t.Fatalf("n=%d join: key %s moved %s→%s (not to the newcomer)", n, k, was, is)
				}
			}
		}
		if limit := 2 * len(keys) / (n + 1); movedJoin > limit {
			t.Errorf("n=%d join: %d/%d keys moved, limit %d (2/N)", n, movedJoin, len(keys), limit)
		}
		// Leave: drop one member.
		left := NewRing(memberNames(n)[:n-1], 0)
		movedLeave := 0
		for _, k := range keys {
			was, is := base.Owner(k), left.Owner(k)
			if was != is {
				movedLeave++
				// Only keys owned by the leaver may move.
				if was != fmt.Sprintf("replica-%d", n-1) {
					t.Fatalf("n=%d leave: key %s moved %s→%s but %s did not leave", n, k, was, is, was)
				}
			}
		}
		if limit := 2 * len(keys) / n; movedLeave > limit {
			t.Errorf("n=%d leave: %d/%d keys moved, limit %d (2/N)", n, movedLeave, len(keys), limit)
		}
	}
}

// TestRingUniformity: across 3-8 replicas, each member owns its fair
// share of sampled keys within ±15%.
func TestRingUniformity(t *testing.T) {
	keys := sampleKeys(20000)
	for n := 3; n <= 8; n++ {
		ring := NewRing(memberNames(n), 0)
		counts := make(map[string]int)
		for _, k := range keys {
			counts[ring.Owner(k)]++
		}
		fair := float64(len(keys)) / float64(n)
		for _, m := range ring.Members() {
			got := float64(counts[m])
			if dev := (got - fair) / fair; dev > 0.15 || dev < -0.15 {
				t.Errorf("n=%d: member %s owns %.0f keys, fair share %.0f (deviation %+.1f%%)",
					n, m, got, fair, 100*dev)
			}
		}
	}
}

// TestRingEmptyAndSingle covers the degenerate sizes the router meets
// during startup and total outage.
func TestRingEmptyAndSingle(t *testing.T) {
	empty := NewRing(nil, 0)
	if got := empty.Owner("anything"); got != "" {
		t.Fatalf("empty ring owner = %q, want \"\"", got)
	}
	if empty.Size() != 0 {
		t.Fatalf("empty ring size = %d", empty.Size())
	}
	one := NewRing([]string{"solo"}, 0)
	for _, k := range sampleKeys(50) {
		if got := one.Owner(k); got != "solo" {
			t.Fatalf("single-member ring owner = %q", got)
		}
	}
}
