package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"redhip/internal/serve"
)

// --- fake replica --------------------------------------------------------------

// fakeReplica speaks just enough of redhip-serve's job API for the
// router to place, watch and resolve jobs against it, with per-test
// knobs: mode drives what the event stream eventually emits ("done",
// "cancel", or "stall" to hang pre-terminal), ready/notReadyReason
// script /readyz, and reject scripts submission rejections.
type fakeReplica struct {
	t    *testing.T
	name string
	srv  *httptest.Server

	mode           atomic.Value // "done" | "cancel" | "stall"
	ready          atomic.Bool
	notReadyReason atomic.Value // string, reasons[0] while not ready

	mu         sync.Mutex
	rejectCode int    // 0 = accept submissions
	retryAfter string // Retry-After header on rejection
	rejectBody string
	jobs       map[string]string // replica job id -> spec key
	submits    []string          // keys in arrival order, dedups excluded
}

func newFakeReplica(t *testing.T, name string) *fakeReplica {
	t.Helper()
	f := &fakeReplica{t: t, name: name, jobs: make(map[string]string)}
	f.mode.Store("done")
	f.ready.Store(true)
	f.notReadyReason.Store("shedding")
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", f.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}/events", f.handleEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/results", f.handleResults)
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("GET /readyz", f.handleReadyz)
	f.srv = httptest.NewServer(mux)
	t.Cleanup(f.srv.Close)
	return f
}

// setReject scripts every future submission to be rejected.
func (f *fakeReplica) setReject(code int, retryAfter, body string) {
	f.mu.Lock()
	f.rejectCode = code
	f.retryAfter = retryAfter
	f.rejectBody = body
	f.mu.Unlock()
}

// executed returns the keys this replica accepted (created a job for).
func (f *fakeReplica) executed() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.submits...)
}

// resultsFor is the canned result body — distinct per (replica, key)
// so verbatim passthrough is detectable.
func (f *fakeReplica) resultsFor(key string) []byte {
	return []byte(fmt.Sprintf(`[{"key":%q,"served_by":%q}]`, key, f.name))
}

func (f *fakeReplica) handleSubmit(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	if f.rejectCode != 0 {
		code, ra, body := f.rejectCode, f.retryAfter, f.rejectBody
		f.mu.Unlock()
		if ra != "" {
			w.Header().Set("Retry-After", ra)
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		_, _ = io.WriteString(w, body)
		return
	}
	f.mu.Unlock()
	var spec serve.Spec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	norm, err := spec.Normalized()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	key := norm.CanonicalKey()
	f.mu.Lock()
	deduped := false
	var id string
	for jid, k := range f.jobs {
		if k == key {
			id, deduped = jid, true
			break
		}
	}
	if !deduped {
		id = fmt.Sprintf("%s-%d", f.name, len(f.jobs)+1)
		f.jobs[id] = key
		f.submits = append(f.submits, key)
	}
	f.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	fmt.Fprintf(w, `{"id":%q,"key":%q,"state":"queued","deduped":%v}`, id, key, deduped)
}

func (f *fakeReplica) handleEvents(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	_, ok := f.jobs[r.PathValue("id")]
	f.mu.Unlock()
	if !ok {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	fl := w.(http.Flusher)
	w.Header().Set("Content-Type", "text/event-stream")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, "id: 1\nevent: queued\ndata: {\"state\":\"queued\"}\n\n")
	fmt.Fprintf(w, "id: 2\nevent: running\ndata: {\"state\":\"running\"}\n\n")
	fl.Flush()
	for {
		switch f.mode.Load().(string) {
		case "done":
			fmt.Fprintf(w, "id: 3\nevent: done\ndata: {\"state\":\"done\"}\n\n")
			fl.Flush()
			return
		case "cancel":
			fmt.Fprintf(w, "id: 3\nevent: cancelled\ndata: {\"state\":\"cancelled\",\"error\":\"router lease lost: job fenced\"}\n\n")
			fl.Flush()
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-time.After(5 * time.Millisecond):
		}
	}
}

func (f *fakeReplica) handleResults(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	key, ok := f.jobs[r.PathValue("id")]
	f.mu.Unlock()
	if !ok {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(f.resultsFor(key))
}

func (f *fakeReplica) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if f.ready.Load() {
		w.WriteHeader(http.StatusOK)
		_, _ = io.WriteString(w, `{"ready":true}`)
		return
	}
	w.WriteHeader(http.StatusServiceUnavailable)
	fmt.Fprintf(w, `{"ready":false,"reasons":[%q]}`, f.notReadyReason.Load().(string))
}

// --- harness -------------------------------------------------------------------

// newTestRouter builds a router with drill-speed probing and serves it.
func newTestRouter(t *testing.T) (*Router, string) {
	t.Helper()
	rt, err := New(Options{
		ProbeInterval:    20 * time.Millisecond,
		ProbeTimeout:     500 * time.Millisecond,
		FailThreshold:    2,
		SuccessThreshold: 1,
		MaxJobs:          64,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	srv := httptest.NewServer(rt.Handler())
	t.Cleanup(srv.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := rt.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	})
	return rt, srv.URL
}

// register announces a fake replica to the router over HTTP and
// returns the response status code and body.
func register(t *testing.T, routerURL string, f *fakeReplica, vers string) (int, string) {
	t.Helper()
	body, _ := json.Marshal(serve.RegistrationBody{Name: f.name, BaseURL: f.srv.URL, Version: vers})
	resp, err := http.Post(routerURL+"/v1/cluster/register", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("register %s: %v", f.name, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(raw)
}

// waitFor polls cond until it holds, failing the test after 5s.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

// testSpec returns a distinct valid spec per n.
func testSpec(n int) serve.Spec {
	return serve.Spec{
		Workloads:   []string{"mcf"},
		Schemes:     []string{"base", "redhip"},
		Geometry:    "smoke",
		RefsPerCore: uint64(1000 + n),
	}
}

// submitJob POSTs a spec to the router, returning the raw response and
// its decoded body (only on 202).
func submitJob(t *testing.T, routerURL string, spec serve.Spec) (*http.Response, submitResponse) {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(routerURL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var out submitResponse
	if resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("decode submit response: %v (body %s)", err, raw)
		}
	} else {
		out.ID = ""
	}
	resp.Body = io.NopCloser(bytes.NewReader(raw))
	return resp, out
}

// routedStatus GETs one routed job's status.
func routedStatus(t *testing.T, routerURL, id string) RoutedStatus {
	t.Helper()
	resp, err := http.Get(routerURL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatalf("GET job: %v", err)
	}
	defer resp.Body.Close()
	var st RoutedStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode status: %v", err)
	}
	return st
}

// waitRouted polls the routed job until it reaches want.
func waitRouted(t *testing.T, routerURL, id string, want serve.State) RoutedStatus {
	t.Helper()
	var st RoutedStatus
	waitFor(t, fmt.Sprintf("job %s to reach %s", id, want), func() bool {
		st = routedStatus(t, routerURL, id)
		if st.State.Terminal() && st.State != want {
			t.Fatalf("job %s reached %q (err %q), want %q", id, st.State, st.Error, want)
		}
		return st.State == want
	})
	return st
}

// readAllEvents drains a terminal job's router event stream.
func readAllEvents(t *testing.T, routerURL, id string) []serve.Event {
	t.Helper()
	resp, err := http.Get(routerURL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET events = %d", resp.StatusCode)
	}
	br := bufio.NewReader(resp.Body)
	var evs []serve.Event
	for {
		ev, err := readSSE(br)
		if err != nil {
			return evs
		}
		evs = append(evs, ev)
	}
}

// --- tests ---------------------------------------------------------------------

// TestRouterVersionSkew: a ring never mixes build versions — the
// second replica's differing version is refused with 409, and joining
// at the ring's version succeeds (exercised with faked versions, not
// the real build's).
func TestRouterVersionSkew(t *testing.T) {
	_, url := newTestRouter(t)
	a := newFakeReplica(t, "alpha")
	b := newFakeReplica(t, "beta")

	code, body := register(t, url, a, "test-v1")
	if code != http.StatusOK {
		t.Fatalf("register alpha = %d (%s)", code, body)
	}
	// The ack advertises the router's dead-declaration floor
	// (FailThreshold=2 x 0.75 x ProbeInterval=20ms = 30ms) so the
	// replica can derive a fencing lease below it.
	var ack struct {
		DeadAfterMillis int64 `json:"dead_after_ms"`
	}
	if err := json.Unmarshal([]byte(body), &ack); err != nil {
		t.Fatalf("decode register ack: %v (%s)", err, body)
	}
	if ack.DeadAfterMillis != 30 {
		t.Fatalf("dead_after_ms = %d, want 30", ack.DeadAfterMillis)
	}
	code, body = register(t, url, b, "test-v2")
	if code != http.StatusConflict {
		t.Fatalf("skewed register beta = %d, want 409 (%s)", code, body)
	}
	if !strings.Contains(body, "version skew") || !strings.Contains(body, "test-v2") {
		t.Fatalf("skew rejection body does not name the conflict: %s", body)
	}
	if code, body := register(t, url, b, "test-v1"); code != http.StatusOK {
		t.Fatalf("matching register beta = %d (%s)", code, body)
	}
}

// TestRouterVersionSkewEvictsDead: only DEAD members of another
// version yield to a newcomer — a rolling upgrade replacing crashed
// replicas is not wedged by their ghosts.
func TestRouterVersionSkewEvictsDead(t *testing.T) {
	rt, url := newTestRouter(t)
	a := newFakeReplica(t, "alpha")
	if code, body := register(t, url, a, "test-v1"); code != http.StatusOK {
		t.Fatalf("register alpha = %d (%s)", code, body)
	}
	waitFor(t, "alpha in ring", func() bool { return rt.members.Ring().Size() == 1 })
	a.srv.Close()
	waitFor(t, "alpha dead", func() bool { return rt.members.get("alpha").stateNow() == MemberDead })

	b := newFakeReplica(t, "beta")
	if code, body := register(t, url, b, "test-v2"); code != http.StatusOK {
		t.Fatalf("upgrade register beta = %d, want 200 (%s)", code, body)
	}
	if rt.members.get("alpha") != nil {
		t.Fatal("dead old-version member alpha should have been evicted")
	}

	// An evicted name can come back: the upgraded alpha re-registers and
	// must get a fresh prober (the evicted ghost's prober is gone), so it
	// reaches ready instead of being stuck joining forever.
	a2 := newFakeReplica(t, "alpha")
	if code, body := register(t, url, a2, "test-v2"); code != http.StatusOK {
		t.Fatalf("re-register alpha = %d, want 200 (%s)", code, body)
	}
	waitFor(t, "re-registered alpha ready", func() bool {
		m := rt.members.get("alpha")
		return m != nil && m.stateNow() == MemberReady
	})
	waitFor(t, "both upgraded replicas in ring", func() bool { return rt.members.Ring().Size() == 2 })
}

// TestRouterRoutesByKey: with two ready replicas, every submission
// lands on the ring owner of its canonical key, the response names the
// replica, and results pass through byte-for-byte.
func TestRouterRoutesByKey(t *testing.T) {
	rt, url := newTestRouter(t)
	fakes := map[string]*fakeReplica{
		"alpha": newFakeReplica(t, "alpha"),
		"beta":  newFakeReplica(t, "beta"),
	}
	for _, f := range fakes {
		if code, body := register(t, url, f, "test-v1"); code != http.StatusOK {
			t.Fatalf("register %s = %d (%s)", f.name, code, body)
		}
	}
	waitFor(t, "both replicas in ring", func() bool { return rt.members.Ring().Size() == 2 })

	ring := rt.members.Ring()
	perOwner := make(map[string]int)
	for n := 0; n < 8; n++ {
		resp, sub := submitJob(t, url, testSpec(n))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d = %d", n, resp.StatusCode)
		}
		owner := ring.Owner(sub.Key)
		if got := resp.Header.Get(ReplicaHeader); got != owner {
			t.Fatalf("spec %d: %s = %q, ring owner is %q", n, ReplicaHeader, got, owner)
		}
		perOwner[owner]++

		st := waitRouted(t, url, sub.ID, serve.StateDone)
		if st.Replica != owner {
			t.Fatalf("spec %d finished on %q, owner is %q", n, st.Replica, owner)
		}
		rres, err := http.Get(url + "/v1/jobs/" + sub.ID + "/results")
		if err != nil {
			t.Fatalf("GET results: %v", err)
		}
		raw, _ := io.ReadAll(rres.Body)
		rres.Body.Close()
		if want := fakes[owner].resultsFor(sub.Key); !bytes.Equal(raw, want) {
			t.Fatalf("spec %d: results not verbatim:\n got %s\nwant %s", n, raw, want)
		}
	}

	// Each replica executed exactly the keys the ring assigned it.
	for name, f := range fakes {
		if got := len(f.executed()); got != perOwner[name] {
			t.Fatalf("replica %s executed %d jobs, ring assigned %d", name, got, perOwner[name])
		}
	}

	// A repeat submission of a done spec dedups against the cached job.
	resp, sub := submitJob(t, url, testSpec(0))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("dup submit = %d", resp.StatusCode)
	}
	if !sub.Deduped {
		t.Fatal("resubmitted done spec was not deduped")
	}
}

// TestRouterForwardsRetryAfter: a replica's 429 verdict is forwarded
// verbatim — its status, body and Retry-After header, never a
// synthesized one — with the replica named in the response.
func TestRouterForwardsRetryAfter(t *testing.T) {
	rt, url := newTestRouter(t)
	f := newFakeReplica(t, "alpha")
	f.setReject(http.StatusTooManyRequests, "37", `{"error":"queue full (depth 64)"}`)
	if code, body := register(t, url, f, "test-v1"); code != http.StatusOK {
		t.Fatalf("register = %d (%s)", code, body)
	}
	waitFor(t, "replica in ring", func() bool { return rt.members.Ring().Size() == 1 })

	resp, _ := submitJob(t, url, testSpec(0))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "37" {
		t.Fatalf("Retry-After = %q, want the replica's \"37\"", got)
	}
	if got := resp.Header.Get(ReplicaHeader); got != "alpha" {
		t.Fatalf("%s = %q, want alpha", ReplicaHeader, got)
	}
	raw, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(raw), "queue full (depth 64)") {
		t.Fatalf("rejection body not forwarded verbatim: %s", raw)
	}
}

// TestRouterNoReplicas: with an empty ring the router is not ready and
// refuses submissions with a Retry-After.
func TestRouterNoReplicas(t *testing.T) {
	_, url := newTestRouter(t)
	resp, err := http.Get(url + "/readyz")
	if err != nil {
		t.Fatalf("GET readyz: %v", err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz = %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(string(raw), "no_ready_replicas") {
		t.Fatalf("readyz body lacks reason: %s", raw)
	}

	sresp, _ := submitJob(t, url, testSpec(0))
	if sresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit = %d, want 503", sresp.StatusCode)
	}
	if sresp.Header.Get("Retry-After") == "" {
		t.Fatal("empty-ring rejection lacks Retry-After")
	}
}

// TestRouterRehomesOnDeadReplica: SIGKILL equivalent — the owning
// replica's server vanishes mid-job; the router declares it dead,
// re-homes the job to the survivor, and the event stream records the
// hand-off with exactly one terminal event.
func TestRouterRehomesOnDeadReplica(t *testing.T) {
	rt, url := newTestRouter(t)
	fakes := map[string]*fakeReplica{
		"alpha": newFakeReplica(t, "alpha"),
		"beta":  newFakeReplica(t, "beta"),
	}
	for _, f := range fakes {
		f.mode.Store("stall") // nobody finishes until the test says so
		if code, body := register(t, url, f, "test-v1"); code != http.StatusOK {
			t.Fatalf("register %s = %d (%s)", f.name, code, body)
		}
	}
	waitFor(t, "both replicas in ring", func() bool { return rt.members.Ring().Size() == 2 })

	resp, sub := submitJob(t, url, testSpec(0))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	owner := resp.Header.Get(ReplicaHeader)
	victim := fakes[owner]
	var survivor *fakeReplica
	for name, f := range fakes {
		if name != owner {
			survivor = f
		}
	}

	victim.srv.Close() // the kill
	waitFor(t, "victim dead", func() bool { return rt.members.get(owner).stateNow() == MemberDead })
	survivor.mode.Store("done")

	st := waitRouted(t, url, sub.ID, serve.StateDone)
	if st.Replica != survivor.name {
		t.Fatalf("job finished on %q, want survivor %q", st.Replica, survivor.name)
	}
	if st.Rehomes < 1 {
		t.Fatalf("rehomes = %d, want >= 1", st.Rehomes)
	}
	if got := survivor.executed(); len(got) != 1 || got[0] != sub.Key {
		t.Fatalf("survivor executed %v, want exactly [%s]", got, sub.Key)
	}

	evs := readAllEvents(t, url, sub.ID)
	assertEventLog(t, evs, "rehomed", serve.StateDone)
}

// TestRouterRehomesOnUnexpectedCancel: a replica that cancels a job
// nobody asked it to cancel (it fenced or is draining) loses the job
// to a re-home; its not-ready reasons show up in cluster status.
func TestRouterRehomesOnUnexpectedCancel(t *testing.T) {
	rt, url := newTestRouter(t)
	fakes := map[string]*fakeReplica{
		"alpha": newFakeReplica(t, "alpha"),
		"beta":  newFakeReplica(t, "beta"),
	}
	for _, f := range fakes {
		f.mode.Store("stall")
		if code, body := register(t, url, f, "test-v1"); code != http.StatusOK {
			t.Fatalf("register %s = %d (%s)", f.name, code, body)
		}
	}
	waitFor(t, "both replicas in ring", func() bool { return rt.members.Ring().Size() == 2 })

	resp, sub := submitJob(t, url, testSpec(0))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	owner := resp.Header.Get(ReplicaHeader)
	victim := fakes[owner]
	var survivor *fakeReplica
	for name, f := range fakes {
		if name != owner {
			survivor = f
		}
	}

	// The victim goes unready (readyz 503 "shedding") and self-cancels
	// the job, as a fenced replica would. It must leave the ring before
	// the re-home picks an owner, or the job boomerangs back.
	victim.ready.Store(false)
	waitFor(t, "victim out of ring", func() bool { return rt.members.Ring().Size() == 1 })
	if got := rt.members.get(owner).stateNow(); got != MemberUnready {
		t.Fatalf("victim state = %q, want %q", got, MemberUnready)
	}
	survivor.mode.Store("done")
	victim.mode.Store("cancel")

	st := waitRouted(t, url, sub.ID, serve.StateDone)
	if st.Replica != survivor.name {
		t.Fatalf("job finished on %q, want survivor %q", st.Replica, survivor.name)
	}
	if st.Rehomes < 1 {
		t.Fatalf("rehomes = %d, want >= 1", st.Rehomes)
	}
	evs := readAllEvents(t, url, sub.ID)
	assertEventLog(t, evs, "rehomed", serve.StateDone)
}

// TestRouterClientCancelIsHonoured: a DELETE through the router stops
// the job — the replica's resulting "cancelled" terminal is accepted,
// not treated as a fence to re-home from.
func TestRouterClientCancelIsHonoured(t *testing.T) {
	rt, url := newTestRouter(t)
	f := newFakeReplica(t, "alpha")
	f.mode.Store("stall")
	if code, body := register(t, url, f, "test-v1"); code != http.StatusOK {
		t.Fatalf("register = %d (%s)", code, body)
	}
	waitFor(t, "replica in ring", func() bool { return rt.members.Ring().Size() == 1 })

	resp, sub := submitJob(t, url, testSpec(0))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, url+"/v1/jobs/"+sub.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	dresp.Body.Close()
	f.mode.Store("cancel") // replica obliges, emits its cancelled terminal

	st := waitRouted(t, url, sub.ID, serve.StateCancelled)
	if st.Rehomes != 0 {
		t.Fatalf("client cancel triggered %d re-homes, want 0", st.Rehomes)
	}
}

// TestRouterMembershipClassifiesReadyz: the probe loop translates a
// replica's /readyz answers into the membership state machine —
// "stopping" drains, other 503s are unready, transport failure kills,
// and recovery re-admits.
func TestRouterMembershipClassifiesReadyz(t *testing.T) {
	rt, url := newTestRouter(t)
	f := newFakeReplica(t, "alpha")
	if code, body := register(t, url, f, "test-v1"); code != http.StatusOK {
		t.Fatalf("register = %d (%s)", code, body)
	}
	m := rt.members.get("alpha")
	waitFor(t, "ready", func() bool { return m.stateNow() == MemberReady })

	f.notReadyReason.Store("stopping")
	f.ready.Store(false)
	waitFor(t, "draining", func() bool { return m.stateNow() == MemberDraining })
	if rt.members.Ring().Size() != 0 {
		t.Fatal("draining member still in ring")
	}

	f.notReadyReason.Store("breaker_open:redhip")
	waitFor(t, "unready", func() bool { return m.stateNow() == MemberUnready })
	st := m.status()
	if len(st.Reasons) != 1 || st.Reasons[0] != "breaker_open:redhip" {
		t.Fatalf("reasons = %v, want [breaker_open:redhip]", st.Reasons)
	}

	f.ready.Store(true)
	waitFor(t, "ready again", func() bool { return m.stateNow() == MemberReady })
	waitFor(t, "back in ring", func() bool { return rt.members.Ring().Size() == 1 })
}

// assertEventLog checks a routed job's stream is gap-free (IDs 1..n
// contiguous), contains wantType, and ends with exactly one terminal
// event of the wanted state.
func assertEventLog(t *testing.T, evs []serve.Event, wantType string, terminal serve.State) {
	t.Helper()
	if len(evs) == 0 {
		t.Fatal("empty event log")
	}
	sawWanted := false
	terminals := 0
	for i, ev := range evs {
		if ev.ID != i+1 {
			t.Fatalf("event %d has ID %d — gap in the stream: %+v", i, ev.ID, evs)
		}
		if ev.Type == wantType {
			sawWanted = true
		}
		switch ev.Type {
		case string(serve.StateDone), string(serve.StateFailed), string(serve.StateCancelled):
			terminals++
		}
	}
	if !sawWanted {
		t.Fatalf("no %q event in stream: %+v", wantType, evs)
	}
	if terminals != 1 {
		t.Fatalf("%d terminal events, want exactly 1: %+v", terminals, evs)
	}
	if last := evs[len(evs)-1]; last.Type != string(terminal) {
		t.Fatalf("last event is %q, want %q", last.Type, terminal)
	}
}
