//go:build failover

// The failover drill: three REAL redhip-serve replicas behind a real
// router, with a transport that can partition them and listeners that
// can be killed mid-sweep. Run via scripts/failover_smoke.sh or:
//
//	go test -tags failover -race ./internal/cluster/
//
// It asserts the three cluster invariants end to end:
//
//  1. no lost jobs — every accepted submission reaches done;
//  2. no double execution — Server.ExecutionsDone summed across all
//     three replicas equals the number of unique specs executed;
//  3. bit-identical results — every routed job's /results bytes equal
//     a fault-free single-replica reference run of the same spec.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"redhip/internal/serve"
)

// drillLease is the replica-side router lease (drill_plain_test.go /
// drill_race_test.go pick the value per build). Jobs are sized (via
// drillRefs) to run for several times this, so a killed or partitioned
// replica always fences before any in-flight job can complete there —
// the no-double-execution invariant depends on that ordering. The
// race-enabled build stretches the lease: the detector slows the
// replica HTTP handlers enough that a tight lease fences spuriously
// on a loaded (or single-CPU) host. Spurious fences self-heal — the
// cancelled job is re-homed and re-executed, still counted once — but
// each one costs a full re-execution, so the drill would crawl.
const (
	drillRefs = 1_500_000 // ~1s per job without -race, ~14s with
	drillWait = 240 * time.Second
)

// partitionTransport is the router's outbound transport with a kill
// switch per replica host: blocked hosts get transport errors, exactly
// what a network partition looks like to the router's probes and
// submissions.
type partitionTransport struct {
	mu      sync.Mutex
	blocked map[string]bool
}

func (p *partitionTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	p.mu.Lock()
	b := p.blocked[req.URL.Host]
	p.mu.Unlock()
	if b {
		return nil, fmt.Errorf("injected partition: %s unreachable", req.URL.Host)
	}
	return http.DefaultTransport.RoundTrip(req)
}

func (p *partitionTransport) set(host string, blocked bool) {
	p.mu.Lock()
	if p.blocked == nil {
		p.blocked = make(map[string]bool)
	}
	p.blocked[host] = blocked
	p.mu.Unlock()
}

// replica is one in-process redhip-serve instance with its own
// listener, killable without a graceful drain.
type replica struct {
	name string
	s    *serve.Server
	http *http.Server
	host string // host:port, the partition key
	url  string
}

// startReplica boots a serve instance in cluster mode. The listener is
// created first so the advertise URL exists before serve.New starts
// the registration loop.
func startReplica(t *testing.T, name, routerURL string) *replica {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	url := "http://" + l.Addr().String()
	s, err := serve.New(serve.Options{
		Workers:      2,
		QueueDepth:   64,
		RouterURL:    routerURL,
		AdvertiseURL: url,
		ReplicaName:  name,
		LeaseTimeout: drillLease,
	})
	if err != nil {
		t.Fatalf("serve.New(%s): %v", name, err)
	}
	hs := &http.Server{Handler: s.Handler()}
	go func() { _ = hs.Serve(l) }()
	r := &replica{name: name, s: s, http: hs, host: l.Addr().String(), url: url}
	t.Cleanup(func() {
		_ = r.http.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = r.s.Shutdown(ctx)
	})
	return r
}

// kill closes the replica's listener and every open connection — the
// in-process equivalent of SIGKILLing the process from the cluster's
// point of view. The serve.Server itself keeps running (like a real
// kill, nothing graceful happens); its lease fences its jobs.
func (r *replica) kill() { _ = r.http.Close() }

// drillSpec returns the n-th unique drill spec: long enough to
// straddle every failover window.
func drillSpec(n int) serve.Spec {
	return serve.Spec{
		Workloads:   []string{"mcf"},
		Schemes:     []string{"base", "redhip"},
		Geometry:    "smoke",
		RefsPerCore: uint64(drillRefs + n),
	}
}

// submitRetry submits a spec to the router, retrying transient
// rejections (a dying owner yields 502/503 until the ring catches up).
func submitRetry(t *testing.T, routerURL string, spec serve.Spec) (submitResponse, string) {
	t.Helper()
	deadline := time.Now().Add(drillWait)
	for time.Now().Before(deadline) {
		body, _ := json.Marshal(spec)
		resp, err := http.Post(routerURL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			time.Sleep(50 * time.Millisecond)
			continue
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusAccepted {
			var out submitResponse
			if err := json.Unmarshal(raw, &out); err != nil {
				t.Fatalf("decode submit response: %v (%s)", err, raw)
			}
			return out, resp.Header.Get(ReplicaHeader)
		}
		if resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests {
			time.Sleep(100 * time.Millisecond)
			continue
		}
		t.Fatalf("submit = %d (%s)", resp.StatusCode, raw)
	}
	t.Fatal("submit never accepted")
	return submitResponse{}, ""
}

// waitDrillDone waits (drill-length deadline) for a routed job's done.
func waitDrillDone(t *testing.T, routerURL, id string) RoutedStatus {
	t.Helper()
	deadline := time.Now().Add(drillWait)
	for time.Now().Before(deadline) {
		st := routedStatus(t, routerURL, id)
		if st.State == serve.StateDone {
			return st
		}
		if st.State.Terminal() {
			t.Fatalf("job %s reached %q (err %q), want done — a job was lost", id, st.State, st.Error)
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish within %s", id, drillWait)
	return RoutedStatus{}
}

// fetchBytes GETs a URL and returns status and body.
func fetchBytes(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, raw
}

func TestFailoverDrill(t *testing.T) {
	part := &partitionTransport{}
	rt, err := New(Options{
		Seed:             42,
		ProbeInterval:    50 * time.Millisecond,
		ProbeTimeout:     500 * time.Millisecond,
		FailThreshold:    3,
		SuccessThreshold: 1,
		MaxJobs:          256,
		Transport:        part,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	routerSrv := httptest.NewServer(rt.Handler())
	t.Cleanup(routerSrv.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = rt.Shutdown(ctx)
	})

	replicas := []*replica{
		startReplica(t, "r1", routerSrv.URL),
		startReplica(t, "r2", routerSrv.URL),
		startReplica(t, "r3", routerSrv.URL),
	}
	byName := make(map[string]*replica)
	for _, r := range replicas {
		byName[r.name] = r
	}
	waitFor(t, "all three replicas in ring", func() bool { return rt.members.Ring().Size() == 3 })

	// Seeded submission order over the six unique drill specs — the
	// same splitmix used for probe jitter shuffles them, so two runs of
	// the drill replay the identical arrival sequence.
	order := make([]int, 6)
	for i := range order {
		order[i] = i
	}
	for i := len(order) - 1; i > 0; i-- {
		j := int(unitFloat(42, "drill", uint64(i)) * float64(i+1))
		order[i], order[j] = order[j], order[i]
	}
	waveA, waveB, waveC := order[0:2], order[2:4], order[4:6]

	jobs := make(map[int]submitResponse) // spec index -> routed job
	mustRehome := make(map[int]bool)     // jobs whose first owner is taken down

	// --- wave A + kill drill ---------------------------------------------------
	var victim *replica
	for _, n := range waveA {
		sub, owner := submitRetry(t, routerSrv.URL, drillSpec(n))
		jobs[n] = sub
		if victim == nil {
			victim = byName[owner]
			mustRehome[n] = true
		}
	}
	// Duplicate arrival dedups against the in-flight routed job.
	dup, _ := submitRetry(t, routerSrv.URL, drillSpec(waveA[0]))
	if !dup.Deduped || dup.ID != jobs[waveA[0]].ID {
		t.Fatalf("duplicate arrival not deduped: %+v vs %+v", dup, jobs[waveA[0]])
	}

	time.Sleep(150 * time.Millisecond) // let the sweeps start
	t.Logf("killing %s", victim.name)
	victim.kill()
	waitFor(t, victim.name+" declared dead", func() bool {
		return rt.members.get(victim.name).stateNow() == MemberDead
	})

	// --- wave B + partition drill ----------------------------------------------
	var partitioned *replica
	for _, n := range waveB {
		sub, owner := submitRetry(t, routerSrv.URL, drillSpec(n))
		jobs[n] = sub
		if partitioned == nil {
			partitioned = byName[owner]
			mustRehome[n] = true
		}
	}
	time.Sleep(150 * time.Millisecond)
	t.Logf("partitioning %s", partitioned.name)
	part.set(partitioned.host, true)
	waitFor(t, partitioned.name+" declared dead", func() bool {
		return rt.members.get(partitioned.name).stateNow() == MemberDead
	})

	// Give the partitioned replica its full fence window (it must cancel
	// its jobs, not finish them), then heal the partition.
	time.Sleep(2 * drillLease)
	t.Logf("healing %s", partitioned.name)
	part.set(partitioned.host, false)
	waitFor(t, partitioned.name+" back in ring", func() bool {
		return rt.members.get(partitioned.name).stateNow() == MemberReady
	})

	// --- wave C on the healed two-replica ring ---------------------------------
	for _, n := range waveC {
		sub, _ := submitRetry(t, routerSrv.URL, drillSpec(n))
		jobs[n] = sub
	}

	// --- invariant 1: no lost jobs ---------------------------------------------
	for n, sub := range jobs {
		st := waitDrillDone(t, routerSrv.URL, sub.ID)
		if mustRehome[n] && st.Rehomes < 1 {
			t.Errorf("spec %d lost its owner but reports %d re-homes", n, st.Rehomes)
		}
	}

	// Gap-free streams: contiguous router event IDs, exactly one
	// terminal; the re-homed jobs narrate their hand-off.
	for n, sub := range jobs {
		evs := readAllEvents(t, routerSrv.URL, sub.ID)
		want := "routed"
		if mustRehome[n] {
			want = "rehomed"
		}
		assertEventLog(t, evs, want, serve.StateDone)
	}

	// --- invariant 2: no double execution --------------------------------------
	// The killed and partitioned replicas fenced before any of their
	// jobs could finish, so across all three replicas each unique spec
	// executed exactly once.
	var total uint64
	for _, r := range replicas {
		n := r.s.ExecutionsDone()
		t.Logf("%s executed %d (lease fences: %d)", r.name, n, r.s.LeaseFences())
		total += n
	}
	if total != uint64(len(jobs)) {
		t.Fatalf("executions across replicas = %d, want %d (one per unique spec)", total, len(jobs))
	}
	if byName[partitioned.name].s.LeaseFences() == 0 {
		t.Error("partitioned replica never fenced — the drill did not exercise the lease")
	}

	// --- invariant 3: bit-identical results ------------------------------------
	// A fault-free single replica (no router, no failures) is the
	// reference; every routed job's results must match it byte for byte.
	ref, err := serve.New(serve.Options{Workers: 4, QueueDepth: 64})
	if err != nil {
		t.Fatalf("serve.New(reference): %v", err)
	}
	refSrv := httptest.NewServer(ref.Handler())
	t.Cleanup(refSrv.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = ref.Shutdown(ctx)
	})
	refJobs := make(map[int]string)
	for n := range jobs {
		body, _ := json.Marshal(drillSpec(n))
		resp, err := http.Post(refSrv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("reference submit: %v", err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("reference submit = %d (%s)", resp.StatusCode, raw)
		}
		var out submitResponse
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("decode reference submit: %v", err)
		}
		refJobs[n] = out.ID
	}
	for n, rid := range refJobs {
		deadline := time.Now().Add(drillWait)
		for {
			code, _ := fetchBytes(t, refSrv.URL+"/v1/jobs/"+rid+"/results")
			if code == http.StatusOK {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("reference job for spec %d never finished", n)
			}
			time.Sleep(25 * time.Millisecond)
		}
	}
	for n, sub := range jobs {
		code, got := fetchBytes(t, routerSrv.URL+"/v1/jobs/"+sub.ID+"/results")
		if code != http.StatusOK {
			t.Fatalf("router results for spec %d = %d", n, code)
		}
		code, want := fetchBytes(t, refSrv.URL+"/v1/jobs/"+refJobs[n]+"/results")
		if code != http.StatusOK {
			t.Fatalf("reference results for spec %d = %d", n, code)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("spec %d: routed results differ from the fault-free reference\nrouted:    %.200s\nreference: %.200s", n, got, want)
		}
	}

	// The drill actually moved work: the router counted the re-homes.
	if snap := rt.metrics.snapshot(); snap.rehomes < 2 {
		t.Errorf("router re-homed %d jobs, drill expected >= 2", snap.rehomes)
	}
}
